//===- tests/models/graph_spec_test.cpp -----------------------*- C++ -*-===//
///
/// Graph-structured ModelSpec tests: audit shapes and parameter counts for
/// the sequence models, weight-sharing groups, the zero-layer degenerate
/// audit, end-to-end compile + train smoke for the sequence classifiers,
/// and the baselines' rejection of graph-only nodes.
///
//===----------------------------------------------------------------------===//

#include "models/models.h"

#include "compiler/compiler.h"
#include "engine/executor.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace latte;
using namespace latte::compiler;
using namespace latte::core;
using namespace latte::engine;
using namespace latte::models;

namespace {

/// Builds, compiles, seeds, and runs one forward+backward iteration.
void trainSmoke(const ModelSpec &Spec, const CompileOptions &Copts = {}) {
  Net Net(2);
  buildLatte(Net, Spec, /*WithLoss=*/true);
  Executor Ex(compile(Net, Copts));
  Ex.initParams(3);
  const Program &P = Ex.program();
  Rng R(5);
  Tensor In(P.findBuffer(P.DataBuffer)->Dims);
  R.fillGaussian(In, 0.0f, 1.0f);
  Ex.setInput(In);
  Tensor L(P.findBuffer(P.LabelBuffer)->Dims);
  for (int64_t I = 0; I < L.numElements(); ++I)
    L.at(I) = static_cast<float>(R.uniformInt(Spec.NumClasses));
  Ex.setLabels(L);
  Ex.forward();
  Ex.backward();
  EXPECT_TRUE(std::isfinite(Ex.lossValue())) << Spec.Name;
}

} // namespace

TEST(GraphSpecTest, LstmClassifierAudit) {
  ModelSpec Spec = lstmClassifier(3, 6, 5, 4);
  std::vector<LayerAudit> Audit = auditSpec(Spec);
  // 3 slices + 1 lstm + classifier row.
  ASSERT_EQ(Audit.size(), 5u);
  for (int I = 0; I < 3; ++I) {
    EXPECT_EQ(Audit[I].OutDims, Shape({6}));
    EXPECT_EQ(Audit[I].Params, 0);
  }
  EXPECT_EQ(Audit[3].OutDims, Shape({5}));
  // 4 gates x (input proj + recurrent proj), each with bias.
  EXPECT_EQ(Audit[3].Params, 4 * (5 * 6 + 5) + 4 * (5 * 5 + 5));
  EXPECT_EQ(Audit[4].OutDims, Shape({4}));
  EXPECT_EQ(Audit[4].Params, 4 * (5 + 1));
  EXPECT_EQ(countParams(Spec),
            4 * (5 * 6 + 5) + 4 * (5 * 5 + 5) + 4 * (5 + 1));
}

TEST(GraphSpecTest, GruClassifierAudit) {
  ModelSpec Spec = gruClassifier(3, 6, 5, 4);
  std::vector<LayerAudit> Audit = auditSpec(Spec);
  ASSERT_EQ(Audit.size(), 5u);
  EXPECT_EQ(Audit[3].Params, 3 * (5 * 6 + 5) + 3 * (5 * 5 + 5));
}

TEST(GraphSpecTest, AttentionClassifierAudit) {
  ModelSpec Spec = attentionClassifier(4, 6, 5, 4);
  std::vector<LayerAudit> Audit = auditSpec(Spec);
  // attention + classifier.
  ASSERT_EQ(Audit.size(), 2u);
  EXPECT_EQ(Audit[0].OutDims, Shape({4, 5}));
  // Q/K/V projections, each D x F weights + D bias, shared across time.
  EXPECT_EQ(Audit[0].Params, 3 * (5 * 6 + 5));
  // Classifier flattens the (T, D) context.
  EXPECT_EQ(Audit[1].Params, 4 * (4 * 5 + 1));
}

TEST(GraphSpecTest, SharedFcContributesNoParams) {
  ModelSpec Spec;
  Spec.Name = "tied";
  Spec.InputDims = Shape{6};
  Spec.NumClasses = 3;
  LayerSpec A;
  A.K = LayerSpec::Kind::Fc;
  A.Name = "fc1";
  A.Filters = 6;
  Spec.Layers.push_back(A);
  LayerSpec B;
  B.K = LayerSpec::Kind::Fc;
  B.Name = "fc2";
  B.Filters = 6;
  B.ShareWith = "fc1";
  Spec.Layers.push_back(B);
  std::vector<LayerAudit> Audit = auditSpec(Spec);
  ASSERT_EQ(Audit.size(), 3u);
  EXPECT_EQ(Audit[0].Params, 6 * 6 + 6);
  EXPECT_EQ(Audit[1].Params, 0);

  // The built network aliases the tied fields onto the owner's buffers.
  Net Net(2);
  buildLatte(Net, Spec, /*WithLoss=*/true);
  Program P = compile(Net);
  const BufferInfo *W2 = P.findBuffer("fc2_weights");
  ASSERT_NE(W2, nullptr);
  EXPECT_EQ(W2->AliasOf, "fc1_weights");
  trainSmoke(Spec);
}

TEST(GraphSpecTest, ZeroLayerSpecAuditsToClassifierOnly) {
  // The degenerate graph: no layers at all. The audit is just the
  // classifier row over the raw input.
  ModelSpec Spec;
  Spec.Name = "linear";
  Spec.InputDims = Shape{7};
  Spec.NumClasses = 3;
  std::vector<LayerAudit> Audit = auditSpec(Spec);
  ASSERT_EQ(Audit.size(), 1u);
  EXPECT_EQ(Audit[0].Name, "classifier");
  EXPECT_EQ(Audit[0].OutDims, Shape({3}));
  EXPECT_EQ(Audit[0].Params, 3 * (7 + 1));
  EXPECT_EQ(countParams(Spec), 3 * (7 + 1));
  trainSmoke(Spec);
}

TEST(GraphSpecTest, SequenceClassifiersTrainSmoke) {
  trainSmoke(lstmClassifier());
  trainSmoke(gruClassifier());
  trainSmoke(attentionClassifier());
}

TEST(GraphSpecTest, SequenceClassifiersTrainSmokeUnplanned) {
  // The memory planner off-path exercises the per-buffer allocation route
  // for aliased tied weights and the BPTT liveness fallback.
  CompileOptions NoPlan;
  NoPlan.Fusion = false;
  NoPlan.SliceRotation = false;
  trainSmoke(lstmClassifier(), NoPlan);
  trainSmoke(attentionClassifier(), NoPlan);
}

TEST(GraphSpecTest, LstmGateWeightsAreTiedInBuiltNet) {
  ModelSpec Spec = lstmClassifier(3, 6, 5, 4);
  Net Net(2);
  buildLatte(Net, Spec, /*WithLoss=*/true);
  Program P = compile(Net);
  const BufferInfo *T2 = P.findBuffer("lstm_ix_t2_weights");
  ASSERT_NE(T2, nullptr);
  EXPECT_EQ(T2->AliasOf, "lstm_ix_t0_weights");
}

TEST(GraphSpecTest, BaselinesRejectGraphNodes) {
  ModelSpec Lstm = lstmClassifier();
  ModelSpec Attn = attentionClassifier();
  EXPECT_DEATH(
      {
        caffe::CaffeNet Net(2);
        buildCaffe(Net, Lstm, /*WithLoss=*/true);
      },
      "graph-structured");
  EXPECT_DEATH(
      {
        caffe::CaffeNet Net(2);
        buildMocha(Net, Attn, /*WithLoss=*/true);
      },
      "graph-structured");
}

TEST(GraphSpecTest, BaselinesStillLowerFlatSpecs) {
  // The flat CNN suite must keep working through both baselines.
  caffe::CaffeNet Net(2);
  buildCaffe(Net, lenet(), /*WithLoss=*/true);
  caffe::CaffeNet Net2(2);
  buildMocha(Net2, vggFirstThreeLayers(0.1), /*WithLoss=*/true);
}
