//===- tests/core/recurrent_test.cpp --------------------------*- C++ -*-===//
///
/// Recurrent block tests: unrolled LSTM / GRU structure, cross-timestep
/// weight tying, BPTT gradient checks, and learning on a toy sequence
/// task.
///
//===----------------------------------------------------------------------===//

#include "compiler/compiler.h"
#include "core/layers/recurrent.h"
#include "engine/executor.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace latte;
using namespace latte::compiler;
using namespace latte::core;
using namespace latte::engine;
using namespace latte::layers;

namespace {

/// Sequence classifier: T input vectors -> LSTM/GRU -> FC(2) -> loss.
struct SeqNet {
  std::unique_ptr<Net> N;
  std::vector<std::string> InputBuffers;
};

SeqNet makeLstmNet(int64_t Batch, int T, int64_t In, int64_t Hidden,
                   bool Gru = false) {
  SeqNet S;
  S.N = std::make_unique<Net>(Batch);
  std::vector<Ensemble *> Xs;
  for (int I = 0; I < T; ++I) {
    Ensemble *X =
        DataLayer(*S.N, "x" + std::to_string(I), Shape{In});
    Xs.push_back(X);
    S.InputBuffers.push_back(X->valueBuffer());
  }
  RecurrentOutputs R = Gru ? GruLayer(*S.N, "gru", Xs, Hidden)
                           : LstmLayer(*S.N, "lstm", Xs, Hidden);
  Ensemble *Fc = FullyConnectedLayer(*S.N, "fc", R.Hidden.back(), 2);
  Ensemble *Labels = LabelLayer(*S.N, "labels");
  SoftmaxLossLayer(*S.N, "loss", Fc, Labels);
  return S;
}

} // namespace

TEST(RecurrentTest, LstmWeightsAreTiedAcrossTimesteps) {
  SeqNet S = makeLstmNet(2, 3, 4, 5);
  Program P = compile(*S.N);
  // Timestep-0 gate weights own storage; later timesteps alias them.
  const compiler::BufferInfo *T0 = P.findBuffer("lstm_ix_t0_weights");
  const compiler::BufferInfo *T2 = P.findBuffer("lstm_ix_t2_weights");
  ASSERT_NE(T0, nullptr);
  ASSERT_NE(T2, nullptr);
  EXPECT_TRUE(T0->AliasOf.empty());
  EXPECT_EQ(T2->AliasOf, "lstm_ix_t0_weights");
  // Solver bindings exist only for the owners: 8 gate FCs + classifier FC,
  // each with weights and bias.
  EXPECT_EQ(P.Params.size(), 9u * 2u);
}

TEST(RecurrentTest, LstmForwardMatchesManualCell) {
  // One timestep, one unit: check the cell equations by hand.
  SeqNet S = makeLstmNet(1, 1, 1, 1);
  Executor Ex(compile(*S.N));
  auto Set1 = [&](const std::string &Buf, float W, float B) {
    Tensor T(Ex.shape(Buf + "_weights"));
    T.at(0) = W;
    Ex.writeBuffer(Buf + "_weights", T);
    Tensor Bt(Ex.shape(Buf + "_bias"));
    Bt.at(0) = B;
    Ex.writeBuffer(Buf + "_bias", Bt);
  };
  Set1("lstm_ix_t0", 1.0f, 0.1f);
  Set1("lstm_fx_t0", 0.5f, 0.0f);
  Set1("lstm_ox_t0", -0.5f, 0.2f);
  Set1("lstm_gx_t0", 2.0f, 0.0f);
  // Recurrent projections see h0 = 0; zero them anyway for clarity.
  for (const char *G : {"ih", "fh", "oh", "gh"})
    Set1(std::string("lstm_") + G + "_t0", 0.0f, 0.0f);

  Tensor X(Shape{1, 1});
  X.at(0) = 0.8f;
  Ex.writeBuffer("x0_value", X);
  Ex.forward();

  auto Sigmoid = [](double V) { return 1.0 / (1.0 + std::exp(-V)); };
  double I = Sigmoid(0.8 + 0.1);
  double F = Sigmoid(0.4);
  double O = Sigmoid(-0.4 + 0.2);
  double G = std::tanh(1.6);
  double C = F * 0.0 + I * G;
  double H = O * std::tanh(C);
  EXPECT_NEAR(Ex.readBuffer("lstm_c_t0_value").at(0), C, 1e-5);
  EXPECT_NEAR(Ex.readBuffer("lstm_h_t0_value").at(0), H, 1e-5);
}

TEST(RecurrentTest, LstmGradientCheckThroughTime) {
  SeqNet S = makeLstmNet(2, 3, 3, 4);
  Executor Ex(compile(*S.N));
  Ex.initParams(11);
  Rng R(7);
  for (const std::string &Buf : S.InputBuffers) {
    Tensor X(Ex.shape(Buf));
    R.fillGaussian(X, 0.0f, 1.0f);
    Ex.writeBuffer(Buf, X);
  }
  Tensor L(Shape{2, 1});
  L.at(0) = 0.0f;
  L.at(1) = 1.0f;
  Ex.setLabels(L);

  Ex.forward();
  Ex.backward();
  // Finite differences through all three timesteps on a tied gate weight.
  const std::string Param = "lstm_gx_t0_weights";
  Tensor Grad = Ex.readBuffer("lstm_gx_t0_grad_weights");
  Tensor W = Ex.readBuffer(Param);
  const float Eps = 1e-2f;
  for (int64_t I = 0; I < W.numElements(); I += 5) {
    float Orig = W.at(I);
    W.at(I) = Orig + Eps;
    Ex.writeBuffer(Param, W);
    Ex.forward();
    double Plus = Ex.lossValue();
    W.at(I) = Orig - Eps;
    Ex.writeBuffer(Param, W);
    Ex.forward();
    double Minus = Ex.lossValue();
    W.at(I) = Orig;
    Ex.writeBuffer(Param, W);
    EXPECT_NEAR(Grad.at(I), (Plus - Minus) / (2 * Eps), 3e-3)
        << "element " << I;
  }
}

TEST(RecurrentTest, GruGradientCheck) {
  SeqNet S = makeLstmNet(2, 2, 3, 4, /*Gru=*/true);
  Executor Ex(compile(*S.N));
  Ex.initParams(13);
  Rng R(9);
  for (const std::string &Buf : S.InputBuffers) {
    Tensor X(Ex.shape(Buf));
    R.fillGaussian(X, 0.0f, 1.0f);
    Ex.writeBuffer(Buf, X);
  }
  Tensor L(Shape{2, 1});
  L.at(1) = 1.0f;
  Ex.setLabels(L);
  Ex.forward();
  Ex.backward();

  const std::string Param = "gru_nx_t0_weights";
  Tensor Grad = Ex.readBuffer("gru_nx_t0_grad_weights");
  Tensor W = Ex.readBuffer(Param);
  const float Eps = 1e-2f;
  for (int64_t I = 0; I < W.numElements(); I += 4) {
    float Orig = W.at(I);
    W.at(I) = Orig + Eps;
    Ex.writeBuffer(Param, W);
    Ex.forward();
    double Plus = Ex.lossValue();
    W.at(I) = Orig - Eps;
    Ex.writeBuffer(Param, W);
    Ex.forward();
    double Minus = Ex.lossValue();
    W.at(I) = Orig;
    Ex.writeBuffer(Param, W);
    EXPECT_NEAR(Grad.at(I), (Plus - Minus) / (2 * Eps), 3e-3)
        << "element " << I;
  }
}

TEST(RecurrentTest, LstmLearnsOrderSensitiveTask) {
  // Classify whether the large input arrives at the first or the last
  // timestep — impossible without memory of the sequence order.
  const int64_t Batch = 8;
  const int T = 3;
  SeqNet S = makeLstmNet(Batch, T, 2, 6);
  Executor Ex(compile(*S.N));
  Ex.initParams(21);

  Rng R(33);
  double FirstLoss = 0, LastLoss = 0;
  for (int Iter = 0; Iter < 150; ++Iter) {
    std::vector<Tensor> Xs;
    Tensor Labels(Shape{Batch, 1});
    for (int Step = 0; Step < T; ++Step)
      Xs.emplace_back(Shape{Batch, 2});
    for (int64_t B = 0; B < Batch; ++B) {
      int64_t L = R.uniformInt(2);
      Labels.at(B) = static_cast<float>(L);
      int Hot = L == 0 ? 0 : T - 1;
      for (int Step = 0; Step < T; ++Step) {
        Xs[Step].at(B * 2) = Step == Hot ? 2.0f : 0.0f;
        Xs[Step].at(B * 2 + 1) =
            static_cast<float>(R.gaussian(0.0, 0.1));
      }
    }
    for (int Step = 0; Step < T; ++Step)
      Ex.writeBuffer(S.InputBuffers[Step], Xs[Step]);
    Ex.setLabels(Labels);
    Ex.forward();
    Ex.backward();
    // Plain SGD on all parameters.
    for (const compiler::ParamBinding &B : Ex.program().Params) {
      float *P = Ex.data(B.Param);
      const float *G = Ex.data(B.Grad);
      for (int64_t I = 0; I < Ex.size(B.Param); ++I)
        P[I] -= 0.2f * G[I];
    }
    if (Iter == 0)
      FirstLoss = Ex.lossValue();
    LastLoss = Ex.lossValue();
  }
  EXPECT_LT(LastLoss, FirstLoss * 0.5);
  EXPECT_GE(Ex.accuracy(), 0.8);
}

TEST(RecurrentTest, GruStructure) {
  SeqNet S = makeLstmNet(1, 2, 3, 4, /*Gru=*/true);
  Program P = compile(*S.N);
  // 6 gate FCs + classifier, weights+bias each.
  EXPECT_EQ(P.Params.size(), 7u * 2u);
  const compiler::BufferInfo *T1 = P.findBuffer("gru_zx_t1_weights");
  ASSERT_NE(T1, nullptr);
  EXPECT_EQ(T1->AliasOf, "gru_zx_t0_weights");
}
