//===- tests/core/graph_test.cpp ------------------------------*- C++ -*-===//
///
/// Tests of the language core: Net/Ensemble/Connection graph structure,
/// topological ordering, neuron type definitions, and the surface DSL.
///
//===----------------------------------------------------------------------===//

#include "core/layers/layers.h"
#include "ir/printer.h"
#include "ir/visitor.h"

#include <gtest/gtest.h>

using namespace latte;
using namespace latte::core;
using namespace latte::layers;

TEST(NetTest, EnsembleRegistration) {
  Net Net(4);
  EXPECT_EQ(Net.batchSize(), 4);
  Ensemble *Data = DataLayer(Net, "data", Shape{3});
  EXPECT_EQ(Net.findEnsemble("data"), Data);
  EXPECT_EQ(Net.findEnsemble("missing"), nullptr);
  EXPECT_EQ(Data->numNeurons(), 3);
  EXPECT_EQ(Data->kind(), EnsembleKind::Data);
}

TEST(NetDeathTest, DuplicateEnsembleNameIsFatal) {
  Net Net(1);
  DataLayer(Net, "data", Shape{3});
  EXPECT_DEATH(DataLayer(Net, "data", Shape{3}), "already exists");
}

TEST(NetTest, TopologicalOrderRespectsDependencies) {
  Net Net(1);
  Ensemble *Data = DataLayer(Net, "data", Shape{4});
  Ensemble *Fc1 = FullyConnectedLayer(Net, "fc1", Data, 4);
  Ensemble *Fc2 = FullyConnectedLayer(Net, "fc2", Fc1, 4);
  std::vector<Ensemble *> Order = Net.topologicalOrder();
  ASSERT_EQ(Order.size(), 3u);
  auto Pos = [&](Ensemble *E) {
    for (size_t I = 0; I < Order.size(); ++I)
      if (Order[I] == E)
        return I;
    return Order.size();
  };
  EXPECT_LT(Pos(Data), Pos(Fc1));
  EXPECT_LT(Pos(Fc1), Pos(Fc2));
}

TEST(NetDeathTest, NonRecurrentCycleIsFatal) {
  Net Net(1);
  Ensemble *A = DataLayer(Net, "a", Shape{2});
  Ensemble *B = FullyConnectedLayer(Net, "b", A, 2);
  // Feed b back into a forward connection of b: a cycle.
  Net.addConnections(B, B, oneToOneMapping());
  EXPECT_DEATH(Net.topologicalOrder(), "cycle");
}

TEST(NetTest, RecurrentEdgesDoNotOrder) {
  Net Net(1);
  Ensemble *A = DataLayer(Net, "a", Shape{2});
  Ensemble *B = FullyConnectedLayer(Net, "b", A, 2);
  Net.addConnections(B, B, oneToOneMapping(), /*Recurrent=*/true);
  EXPECT_EQ(Net.topologicalOrder().size(), 2u); // no fatal error
}

TEST(NeuronTypeTest, WeightedNeuronAccumulates) {
  NeuronType T = makeWeightedNeuronType();
  NeuronContext Ctx;
  Ctx.InputLengths = {5};
  EXPECT_TRUE(T.forwardAccumulates(Ctx));
  EXPECT_TRUE(T.hasBackward());
  EXPECT_NE(T.findField("weights"), nullptr);
  EXPECT_NE(T.findField("bias"), nullptr);
  EXPECT_EQ(T.findField("nope"), nullptr);
  EXPECT_EQ(T.findField("bias")->LrMult, 2.0f);
}

TEST(NeuronTypeTest, ReluDoesNotAccumulate) {
  NeuronType T = makeReluNeuronType();
  NeuronContext Ctx;
  Ctx.InputLengths = {1};
  EXPECT_FALSE(T.forwardAccumulates(Ctx));
}

TEST(NeuronTypeTest, ForwardBodyShape) {
  NeuronType T = makeWeightedNeuronType();
  NeuronContext Ctx;
  Ctx.InputLengths = {3};
  ir::StmtPtr Fwd = T.makeForward(Ctx);
  std::string Text = ir::printStmt(Fwd.get());
  // Figure 3 structure: MAC loop plus bias add on the surface buffers.
  EXPECT_NE(Text.find("for i in 0:+3"), std::string::npos);
  EXPECT_NE(Text.find("@value[] += (@field:weights[i] * @input0[i])"),
            std::string::npos);
  EXPECT_NE(Text.find("@value[] += @field:bias[0]"), std::string::npos);
}

TEST(NeuronTypeTest, CustomTypesAreAlphaEquivalentToCanonical) {
  // A user writing the same computation with different variable names is
  // still recognized by the pattern matcher's equivalence test.
  using namespace core::dsl;
  using namespace ir;
  NeuronBodyFn Fwd = [](const NeuronContext &Ctx) {
    std::vector<StmtPtr> Stmts;
    Stmts.push_back(forLoop(
        "k", Ctx.inputLength(0),
        accumValue(mul(field("weights", indexList(var("k"))),
                       input(0, var("k"))))));
    Stmts.push_back(accumValue(field("bias", indexList(intConst(0)))));
    return block(std::move(Stmts));
  };
  NeuronType Canon = makeWeightedNeuronType();
  NeuronContext Ctx;
  Ctx.InputLengths = {7};
  StmtPtr A = Fwd(Ctx);
  StmtPtr B = Canon.makeForward(Ctx);
  EXPECT_TRUE(ir::stmtEquivalent(A.get(), B.get()));
}

TEST(NeuronTypeTest, DifferentComputationIsNotEquivalent) {
  NeuronType Max = makeMaxNeuronType();
  NeuronType Avg = makeAvgNeuronType();
  NeuronContext Ctx;
  Ctx.InputLengths = {4};
  ir::StmtPtr A = Max.makeForward(Ctx);
  ir::StmtPtr B = Avg.makeForward(Ctx);
  EXPECT_FALSE(ir::stmtEquivalent(A.get(), B.get()));
}

TEST(DslTest, BufferNameHelpers) {
  using namespace core::dsl;
  EXPECT_EQ(valueBuf(), "@value");
  EXPECT_EQ(inputBuf(2), "@input2");
  EXPECT_EQ(gradInputBuf(0), "@gradinput0");
  EXPECT_EQ(fieldBuf("slope"), "@field:slope");

  std::string Field;
  EXPECT_TRUE(isFieldBuf("@field:weights", Field));
  EXPECT_EQ(Field, "weights");
  EXPECT_FALSE(isFieldBuf("@value", Field));

  int K = -1;
  EXPECT_TRUE(isInputBuf("@input3", K));
  EXPECT_EQ(K, 3);
  EXPECT_FALSE(isInputBuf("@gradinput3", K));
  EXPECT_TRUE(isGradInputBuf("@gradinput12", K));
  EXPECT_EQ(K, 12);
}

TEST(EnsembleTest, BufferNamingScheme) {
  Net Net(1);
  Ensemble *E = DataLayer(Net, "conv1", Shape{2, 3, 3});
  EXPECT_EQ(E->valueBuffer(), "conv1_value");
  EXPECT_EQ(E->gradBuffer(), "conv1_grad");
  EXPECT_EQ(E->inputBuffer(1), "conv1_inputs1");
  EXPECT_EQ(E->gradInputBuffer(0), "conv1_grad_inputs0");
  EXPECT_EQ(E->fieldBuffer("weights"), "conv1_weights");
}

TEST(MappingTest, FullyConnectedCoversSource) {
  MappingFn M = fullyConnectedMapping(Shape{4, 5});
  std::vector<Range> Box = M({2});
  ASSERT_EQ(Box.size(), 2u);
  EXPECT_EQ(Box[0], (Range{0, 4}));
  EXPECT_EQ(Box[1], (Range{0, 5}));
}

TEST(MappingTest, ConvWindowFigure5Semantics) {
  // Figure 5: in_x = (x-1)*stride - pad in 1-based Julia; our 0-based
  // equivalent is x*stride - pad.
  MappingFn M = convWindowMapping(/*Channels=*/3, /*Kernel=*/3,
                                  /*Stride=*/2, /*Pad=*/1);
  std::vector<Range> Box = M({5, 0, 4});
  EXPECT_EQ(Box[0], (Range{0, 3}));      // all input channels
  EXPECT_EQ(Box[1], (Range{-1, 2}));     // y window at y=0 reaches padding
  EXPECT_EQ(Box[2], (Range{7, 10}));     // x window at x=4: 4*2-1 = 7
}

TEST(MappingTest, PoolWindowTracksChannel) {
  MappingFn M = poolWindowMapping(2, 2, 0);
  std::vector<Range> Box = M({3, 1, 2});
  EXPECT_EQ(Box[0], (Range{3, 4}));
  EXPECT_EQ(Box[1], (Range{2, 4}));
  EXPECT_EQ(Box[2], (Range{4, 6}));
}
