//===- tests/core/attention_test.cpp --------------------------*- C++ -*-===//
///
/// Sequence-block layer tests: Slice/Stack plumbing, the time-distributed
/// shared FC (and its GEMM pattern match), and the single-head scaled
/// dot-product attention block checked against a hand-rolled reference.
///
//===----------------------------------------------------------------------===//

#include "compiler/compiler.h"
#include "core/layers/attention.h"
#include "engine/executor.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

using namespace latte;
using namespace latte::compiler;
using namespace latte::core;
using namespace latte::engine;
using namespace latte::layers;

namespace {

bool gemmMatched(const Program &P, const std::string &Name) {
  for (const std::string &E : P.Report.MatchedGemmEnsembles)
    if (E == Name)
      return true;
  return false;
}

} // namespace

TEST(AttentionLayersTest, SliceExtractsOneTimestep) {
  const int64_t T = 3, F = 4, Batch = 2;
  Net Net(Batch);
  Ensemble *Data = DataLayer(Net, "data", Shape{T, F});
  Ensemble *X1 = SliceLayer(Net, "x1", Data, 1);
  EXPECT_EQ(X1->dims(), Shape({F}));

  Executor Ex(compile(Net));
  Tensor In(Shape{Batch, T, F});
  for (int64_t I = 0; I < In.numElements(); ++I)
    In.at(I) = static_cast<float>(I);
  Ex.writeBuffer("data_value", In);
  Ex.forward();
  Tensor Out = Ex.readBuffer("x1_value");
  ASSERT_EQ(Out.numElements(), Batch * F);
  for (int64_t B = 0; B < Batch; ++B)
    for (int64_t J = 0; J < F; ++J)
      EXPECT_EQ(Out.at(B * F + J), In.at(B * T * F + 1 * F + J));
}

TEST(AttentionLayersTest, StackBroadcastsAndSumsGradients) {
  const int64_t T = 3, F = 2, Batch = 1;
  Net Net(Batch);
  Ensemble *Data = DataLayer(Net, "data", Shape{F});
  Ensemble *Seq = StackLayer(Net, "seq", Data, T);
  EXPECT_EQ(Seq->dims(), Shape({T, F}));
  Ensemble *Fc = FullyConnectedLayer(Net, "fc", Seq, 2);
  Ensemble *Labels = LabelLayer(Net, "labels");
  SoftmaxLossLayer(Net, "loss", Fc, Labels);

  Executor Ex(compile(Net));
  Ex.initParams(5);
  Tensor In(Shape{Batch, F});
  In.at(0) = 0.3f;
  In.at(1) = -0.7f;
  Ex.writeBuffer("data_value", In);
  Tensor L(Shape{Batch, 1});
  L.at(0) = 1.0f;
  Ex.setLabels(L);
  Ex.forward();
  // Every row of the stacked sequence is a copy of the input.
  Tensor Out = Ex.readBuffer("seq_value");
  for (int64_t R = 0; R < T; ++R)
    for (int64_t J = 0; J < F; ++J)
      EXPECT_EQ(Out.at(R * F + J), In.at(J));
  // The broadcast backward sums the T per-row gradients into the source.
  Ex.backward();
  Tensor Gin = Ex.readBuffer("data_grad");
  Tensor Gseq = Ex.readBuffer("seq_grad");
  for (int64_t J = 0; J < F; ++J) {
    float Sum = 0;
    for (int64_t R = 0; R < T; ++R)
      Sum += Gseq.at(R * F + J);
    EXPECT_NEAR(Gin.at(J), Sum, 1e-6);
  }
}

TEST(AttentionLayersTest, TimeDistributedFcMatchesGemmAndReference) {
  const int64_t T = 3, F = 4, D = 5, Batch = 2;
  Net Net(Batch);
  Ensemble *Data = DataLayer(Net, "data", Shape{T, F});
  Ensemble *Proj = TimeDistributedFcLayer(Net, "proj", Data, D);
  EXPECT_EQ(Proj->dims(), Shape({T, D}));

  Program P = compile(Net);
  EXPECT_TRUE(gemmMatched(P, "proj"))
      << "time-distributed FC must lower onto the batched GEMM";

  Executor Ex(P.clone());
  Ex.initParams(7);
  Rng R(17);
  Tensor In(Shape{Batch, T, F});
  R.fillGaussian(In, 0.0f, 1.0f);
  Ex.writeBuffer("data_value", In);
  Ex.forward();

  Tensor W = Ex.readBuffer("proj_weights");
  Tensor B = Ex.readBuffer("proj_bias");
  Tensor Out = Ex.readBuffer("proj_value");
  for (int64_t N = 0; N < Batch; ++N)
    for (int64_t S = 0; S < T; ++S)
      for (int64_t O = 0; O < D; ++O) {
        double Acc = B.at(O);
        for (int64_t K = 0; K < F; ++K)
          Acc += W.at(O * F + K) * In.at((N * T + S) * F + K);
        EXPECT_NEAR(Out.at((N * T + S) * D + O), Acc, 1e-4)
            << "n=" << N << " t=" << S << " d=" << O;
      }
}

TEST(AttentionLayersTest, AttentionForwardMatchesReference) {
  const int64_t T = 3, F = 4, D = 2, Batch = 2;
  Net Net(Batch);
  Ensemble *Data = DataLayer(Net, "data", Shape{T, F});
  Ensemble *Ctx = AttentionLayer(Net, "attn", Data, D);
  EXPECT_EQ(Ctx->dims(), Shape({T, D}));

  Executor Ex(compile(Net));
  Ex.initParams(23);
  Rng R(29);
  Tensor In(Shape{Batch, T, F});
  R.fillGaussian(In, 0.0f, 1.0f);
  Ex.writeBuffer("data_value", In);
  Ex.forward();

  auto Wq = Ex.readBuffer("attn_q_weights"), Bq = Ex.readBuffer("attn_q_bias");
  auto Wk = Ex.readBuffer("attn_k_weights"), Bk = Ex.readBuffer("attn_k_bias");
  auto Wv = Ex.readBuffer("attn_v_weights"), Bv = Ex.readBuffer("attn_v_bias");
  Tensor Out = Ex.readBuffer("attn_out_value");

  auto Project = [&](const Tensor &W, const Tensor &B, int64_t N, int64_t S,
                     int64_t O) {
    double Acc = B.at(O);
    for (int64_t K = 0; K < F; ++K)
      Acc += W.at(O * F + K) * In.at((N * T + S) * F + K);
    return Acc;
  };
  const double Scale = 1.0 / std::sqrt(static_cast<double>(D));
  for (int64_t N = 0; N < Batch; ++N) {
    std::vector<double> Q(T * D), K(T * D), V(T * D);
    for (int64_t S = 0; S < T; ++S)
      for (int64_t O = 0; O < D; ++O) {
        Q[S * D + O] = Project(Wq, Bq, N, S, O);
        K[S * D + O] = Project(Wk, Bk, N, S, O);
        V[S * D + O] = Project(Wv, Bv, N, S, O);
      }
    for (int64_t I = 0; I < T; ++I) {
      std::vector<double> Scores(T), Probs(T);
      double Max = -1e30;
      for (int64_t J = 0; J < T; ++J) {
        double Dot = 0;
        for (int64_t O = 0; O < D; ++O)
          Dot += Q[I * D + O] * K[J * D + O];
        Scores[J] = Scale * Dot;
        Max = std::max(Max, Scores[J]);
      }
      double Z = 0;
      for (int64_t J = 0; J < T; ++J)
        Z += std::exp(Scores[J] - Max);
      for (int64_t J = 0; J < T; ++J)
        Probs[J] = std::exp(Scores[J] - Max) / Z;
      for (int64_t O = 0; O < D; ++O) {
        double Acc = 0;
        for (int64_t J = 0; J < T; ++J)
          Acc += Probs[J] * V[J * D + O];
        EXPECT_NEAR(Out.at((N * T + I) * D + O), Acc, 2e-4)
            << "n=" << N << " i=" << I << " d=" << O;
      }
    }
  }
}

TEST(AttentionLayersTest, QkvProjectionsAreGemmMatched) {
  Net Net(2);
  Ensemble *Data = DataLayer(Net, "data", Shape{4, 6});
  AttentionLayer(Net, "attn", Data, 5);
  Program P = compile(Net);
  for (const char *E : {"attn_q", "attn_k", "attn_v"})
    EXPECT_TRUE(gemmMatched(P, E)) << E;
}

TEST(AttentionLayersTest, AttentionGradientCheck) {
  // Finite differences through the whole block: scores, softmax, readout,
  // and all three tied projections.
  const int64_t T = 3, F = 3, D = 2, Batch = 2;
  Net Net(Batch);
  Ensemble *Data = DataLayer(Net, "data", Shape{T, F});
  Ensemble *Ctx = AttentionLayer(Net, "attn", Data, D);
  Ensemble *Fc = FullyConnectedLayer(Net, "fc", Ctx, 3);
  Ensemble *Labels = LabelLayer(Net, "labels");
  SoftmaxLossLayer(Net, "loss", Fc, Labels);

  Executor Ex(compile(Net));
  Ex.initParams(31);
  Rng R(37);
  Tensor In(Shape{Batch, T, F});
  R.fillGaussian(In, 0.0f, 1.0f);
  Ex.writeBuffer("data_value", In);
  Tensor L(Shape{Batch, 1});
  L.at(1) = 2.0f;
  Ex.setLabels(L);
  Ex.forward();
  Ex.backward();

  auto CheckParam = [&](const std::string &Value, const std::string &Grad) {
    Tensor G = Ex.readBuffer(Grad);
    Tensor W = Ex.readBuffer(Value);
    const float Eps = 1e-2f;
    for (int64_t I = 0; I < W.numElements(); I += 2) {
      float Orig = W.at(I);
      W.at(I) = Orig + Eps;
      Ex.writeBuffer(Value, W);
      Ex.forward();
      double Plus = Ex.lossValue();
      W.at(I) = Orig - Eps;
      Ex.writeBuffer(Value, W);
      Ex.forward();
      double Minus = Ex.lossValue();
      W.at(I) = Orig;
      Ex.writeBuffer(Value, W);
      EXPECT_NEAR(G.at(I), (Plus - Minus) / (2 * Eps), 3e-3)
          << Value << " element " << I;
    }
  };
  CheckParam("attn_q_weights", "attn_q_grad_weights");
  CheckParam("attn_k_weights", "attn_k_grad_weights");
  CheckParam("attn_v_weights", "attn_v_grad_weights");
  CheckParam("attn_v_bias", "attn_v_grad_bias");
}
