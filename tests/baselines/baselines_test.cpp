//===- tests/baselines/baselines_test.cpp ---------------------*- C++ -*-===//
///
/// Tests of the Caffe and Mocha baseline frameworks, plus the core
/// integration property: all three systems (Latte, Caffe baseline, Mocha
/// baseline) produce the same outputs and gradients for the same network
/// and the same parameters.
///
//===----------------------------------------------------------------------===//

#include "baselines/caffe/caffe.h"
#include "baselines/mocha/mocha.h"
#include "compiler/compiler.h"
#include "engine/executor.h"
#include "models/models.h"

#include <gtest/gtest.h>

using namespace latte;
using namespace latte::models;

namespace {

/// Copies the baseline net's parameters into the Latte executor, matching
/// layers by name (weights layouts are identical by construction).
void copyParamsToLatte(const caffe::CaffeNet &Net, engine::Executor &Ex) {
  for (const auto &L : Net.layers()) {
    if (L->params().empty())
      continue;
    Tensor W = L->params()[0].Data;
    W.reshape(Ex.readBuffer(L->name() + "_weights").shape());
    Ex.writeBuffer(L->name() + "_weights", W);
    Tensor B = L->params()[1].Data;
    B.reshape(Ex.readBuffer(L->name() + "_bias").shape());
    Ex.writeBuffer(L->name() + "_bias", B);
  }
}

/// Copies parameters between two baseline nets (same architecture).
void copyParams(const caffe::CaffeNet &From, caffe::CaffeNet &To) {
  ASSERT_EQ(From.layers().size(), To.layers().size());
  for (size_t I = 0; I < From.layers().size(); ++I) {
    auto &FP = From.layers()[I]->params();
    auto &TP = To.layers()[I]->params();
    ASSERT_EQ(FP.size(), TP.size());
    for (size_t J = 0; J < FP.size(); ++J)
      TP[J].Data = FP[J].Data;
  }
}

Tensor randomTensor(Shape S, uint64_t Seed) {
  Rng R(Seed);
  Tensor T(std::move(S));
  R.fillGaussian(T, 0.0f, 1.0f);
  return T;
}

Tensor labelsMod(int64_t Batch, int64_t Classes) {
  Tensor L(Shape{Batch});
  for (int64_t I = 0; I < Batch; ++I)
    L.at(I) = static_cast<float>(I % Classes);
  return L;
}

} // namespace

TEST(CaffeBaselineTest, ConvShapesAndParams) {
  caffe::CaffeNet Net(2);
  Net.setInputShape(Shape{3, 8, 8});
  auto *Conv = Net.addLayer(
      std::make_unique<caffe::ConvolutionLayer>("conv", 4, 3, 1, 1));
  Net.addLayer(std::make_unique<caffe::ReluLayer>("relu"));
  Net.addLayer(std::make_unique<caffe::PoolingLayer>(
      "pool", caffe::PoolingLayer::Mode::Max, 2, 2));
  Net.setup(7);
  EXPECT_EQ(Net.outputBlob().shape(), Shape({2, 4, 4, 4}));
  EXPECT_EQ(Conv->params()[0].shape(), Shape({4, 27}));
  EXPECT_EQ(Conv->params()[1].shape(), Shape({4}));
}

TEST(CaffeBaselineTest, InnerProductForwardByHand) {
  caffe::CaffeNet Net(1);
  Net.setInputShape(Shape{2});
  auto *Ip =
      Net.addLayer(std::make_unique<caffe::InnerProductLayer>("ip", 2));
  Net.setup(1);
  Ip->params()[0].Data.at(0) = 1.0f; // W = [[1, 2], [3, 4]]
  Ip->params()[0].Data.at(1) = 2.0f;
  Ip->params()[0].Data.at(2) = 3.0f;
  Ip->params()[0].Data.at(3) = 4.0f;
  Ip->params()[1].Data.at(0) = 0.5f;
  Ip->params()[1].Data.at(1) = -0.5f;
  Net.inputBlob().Data.at(0) = 1.0f;
  Net.inputBlob().Data.at(1) = 1.0f;
  Net.forward();
  EXPECT_FLOAT_EQ(Net.outputBlob().Data.at(0), 3.5f);
  EXPECT_FLOAT_EQ(Net.outputBlob().Data.at(1), 6.5f);
}

TEST(CaffeBaselineTest, LossDecreasesWithManualSgd) {
  caffe::CaffeNet Net(4);
  ModelSpec Spec = mlp(6, {12}, 3);
  // The Caffe baseline lacks Tanh; use a ReLU MLP instead.
  Spec.Layers[1].K = LayerSpec::Kind::Relu;
  Spec.Layers[1].Name = "relu1";
  buildCaffe(Net, Spec, /*WithLoss=*/true);
  Net.setup(3);
  Net.inputBlob().Data = randomTensor(Shape{4, 6}, 11);
  Net.labelBlob().Data = labelsMod(4, 3);

  Net.forward();
  double Loss0 = Net.lossValue();
  for (int Iter = 0; Iter < 30; ++Iter) {
    Net.forward();
    Net.backward();
    for (auto &L : Net.layers())
      for (caffe::Blob &P : L->params())
        for (int64_t I = 0; I < P.count(); ++I)
          P.Data.at(I) -= 0.5f * P.Grad.at(I);
  }
  Net.forward();
  EXPECT_LT(Net.lossValue(), Loss0 * 0.5);
}

TEST(MochaBaselineTest, MatchesCaffeForward) {
  ModelSpec Spec = vggFirstThreeLayers(0.1); // 22x22 input
  caffe::CaffeNet C(2), M(2);
  buildCaffe(C, Spec, true);
  buildMocha(M, Spec, true);
  C.setup(5);
  M.setup(99);
  copyParams(C, M);
  Tensor In = randomTensor(Shape{2, 3, 22, 22}, 21);
  C.inputBlob().Data = In;
  M.inputBlob().Data = In;
  C.labelBlob().Data = labelsMod(2, 10);
  M.labelBlob().Data = labelsMod(2, 10);
  C.forward();
  M.forward();
  EXPECT_NEAR(C.lossValue(), M.lossValue(), 1e-4);
  C.backward();
  M.backward();
  // Compare conv weight gradients.
  const Tensor &Gc = C.layers()[0]->params()[0].Grad;
  const Tensor &Gm = M.layers()[0]->params()[0].Grad;
  EXPECT_EQ(Gc.firstMismatch(Gm, 1e-3f, 1e-3f), -1);
}

// The headline integration property: the three systems agree.
class CrossSystemTest : public testing::TestWithParam<int> {};

TEST_P(CrossSystemTest, LatteMatchesBaselines) {
  ModelSpec Spec;
  switch (GetParam()) {
  case 0:
    Spec = vggFirstThreeLayers(0.1);
    break;
  case 1:
    Spec = vggGroup(2, 0.25); // 64 channels, 28x28
    break;
  case 2:
    Spec = lenet();
    break;
  case 3:
    Spec = mlp(20, {16, 12}, 4);
    // Baselines lack tanh; swap for relu in all three.
    for (LayerSpec &L : Spec.Layers)
      if (L.K == LayerSpec::Kind::Tanh)
        L.K = LayerSpec::Kind::Relu;
    break;
  }
  const int64_t Batch = 2;

  caffe::CaffeNet C(Batch);
  buildCaffe(C, Spec, true);
  C.setup(41);

  core::Net Net(Batch);
  buildLatte(Net, Spec, true);
  engine::Executor Ex(compiler::compile(Net));

  caffe::CaffeNet M(Batch);
  buildMocha(M, Spec, true);
  M.setup(77);

  copyParamsToLatte(C, Ex);
  copyParams(C, M);

  Tensor In = randomTensor(Spec.InputDims.withPrefix(Batch), 1234);
  Tensor Labels = labelsMod(Batch, Spec.NumClasses);
  C.inputBlob().Data = In;
  M.inputBlob().Data = In;
  Ex.setInput(In);
  C.labelBlob().Data = Labels;
  M.labelBlob().Data = Labels;
  Ex.setLabels(Labels);

  C.forward();
  M.forward();
  Ex.forward();
  EXPECT_NEAR(C.lossValue(), Ex.lossValue(), 1e-3);
  EXPECT_NEAR(M.lossValue(), Ex.lossValue(), 1e-3);

  C.backward();
  Ex.backward();
  // First conv/fc layer weight gradients agree.
  const std::string First = Spec.Layers[0].Name;
  Tensor Gl = Ex.readBuffer(First + "_grad_weights");
  Tensor Gc = C.layers()[0]->params()[0].Grad;
  Gc.reshape(Gl.shape());
  EXPECT_EQ(Gl.firstMismatch(Gc, 1e-3f, 1e-2f), -1);
}

INSTANTIATE_TEST_SUITE_P(Models, CrossSystemTest, testing::Range(0, 4));

TEST(ModelSpecTest, AlexNetShapesAndParams) {
  ModelSpec Spec = alexNet();
  std::vector<LayerAudit> Audit = auditSpec(Spec);
  // Canonical AlexNet stage shapes.
  EXPECT_EQ(Audit[0].OutDims, Shape({96, 55, 55}));  // conv1
  EXPECT_EQ(Audit[2].OutDims, Shape({96, 27, 27}));  // pool1
  EXPECT_EQ(Audit[3].OutDims, Shape({256, 27, 27})); // conv2
  EXPECT_EQ(Audit[5].OutDims, Shape({256, 13, 13})); // pool2
  EXPECT_EQ(Audit[12].OutDims, Shape({256, 6, 6}));  // pool5
  // Single-tower (ungrouped) AlexNet, as in the convnet-benchmarks
  // configurations the paper used: 62,378,344 parameters. (The original
  // two-GPU grouped variant has 60,965,224 — smaller by exactly the
  // halved conv2/conv4/conv5 fan-ins, 1,413,120.)
  EXPECT_EQ(countParams(Spec), 62378344);
}

TEST(ModelSpecTest, VggAParams) {
  // VGG model A (VGG-11): 132,863,336 parameters.
  EXPECT_EQ(countParams(vggA()), 132863336);
}

TEST(ModelSpecTest, Vgg16Params) {
  // VGG-16: 138,357,544 parameters.
  EXPECT_EQ(countParams(vgg16()), 138357544);
}

TEST(ModelSpecTest, OverfeatShapes) {
  std::vector<LayerAudit> Audit = auditSpec(overfeat());
  EXPECT_EQ(Audit[0].OutDims, Shape({96, 56, 56}));   // conv1
  EXPECT_EQ(Audit[2].OutDims, Shape({96, 28, 28}));   // pool1
  EXPECT_EQ(Audit[5].OutDims, Shape({256, 12, 12}));  // pool2
  EXPECT_EQ(Audit[12].OutDims, Shape({1024, 6, 6}));  // pool5
  EXPECT_GT(countParams(overfeat()), 130000000);
}

TEST(ModelSpecTest, ScaledSpecsRemainValid) {
  for (double Scale : {0.5, 0.25}) {
    EXPECT_GT(auditSpec(vggA(Scale)).size(), 0u);
    EXPECT_GT(auditSpec(overfeat(Scale)).size(), 0u);
  }
  EXPECT_GT(auditSpec(alexNet(0.5)).size(), 0u);
}

TEST(ModelSpecTest, VggGroupsMatchPaperStructure) {
  // Groups 1-2 have one conv; groups 3-4 have two (the fusion-limited
  // configuration the paper discusses for group 4).
  EXPECT_EQ(vggGroup(1).Layers.size(), 3u);
  EXPECT_EQ(vggGroup(2).Layers.size(), 3u);
  EXPECT_EQ(vggGroup(3).Layers.size(), 5u);
  EXPECT_EQ(vggGroup(4).Layers.size(), 5u);
  EXPECT_EQ(vggGroup(4).InputDims, Shape({256, 28, 28}));
}

TEST(ModelSpecTest, LatteBuildCompilesLenet) {
  core::Net Net(2);
  buildLatte(Net, lenet(), true);
  compiler::Program P = compiler::compile(Net);
  // conv + fc layers matched to GEMM; pools matched to pooling kernels.
  EXPECT_EQ(P.Report.MatchedGemmEnsembles.size(), 4u); // conv1/2, fc1, cls
  EXPECT_EQ(P.Report.MatchedPoolEnsembles.size(), 2u);
  EXPECT_TRUE(P.Report.InterpretedEnsembles.empty());
}
