//===- tests/compiler/memplan_test.cpp ------------------------*- C++ -*-===//
///
/// Unit tests for the liveness-driven memory planner (compiler/memplan.h):
/// interval arithmetic edge cases, alias subsumption, classification,
/// lazy-zero scheduling, plan soundness (no overlapping-lifetime byte
/// sharing), forward-only programs, and the measured arena-vs-eager
/// savings on the shipped models. The savings thresholds are deterministic
/// (the plan depends only on the program, not the machine) and assert the
/// measured values with margin — see EXPERIMENTS.md for why the fused
/// points fold less than the unfused ones.
///
//===----------------------------------------------------------------------===//

#include "compiler/compiler.h"
#include "compiler/memplan.h"
#include "engine/executor.h"
#include "models/models.h"
#include "verify/lattice.h"

#include <gtest/gtest.h>

using namespace latte;
using namespace latte::compiler;

namespace {

Program compileModel(const models::ModelSpec &Spec, int64_t Batch,
                     const CompileOptions &Opts, bool WithLoss = true) {
  core::Net Net(Batch);
  models::buildLatte(Net, Spec, WithLoss);
  return compile(Net, Opts);
}

BufferLifetime life(int64_t Bytes, int64_t Offset, int Begin, int End) {
  BufferLifetime L;
  L.Bytes = Bytes;
  L.Offset = Offset;
  L.LiveBegin = Begin;
  L.LiveEnd = End;
  return L;
}

} // namespace

TEST(MemPlanIntervalTest, LifetimeIntersectionIsInclusive) {
  BufferLifetime A = life(4, 0, 0, 3);
  BufferLifetime B = life(4, 0, 3, 5); // touches A at unit 3
  BufferLifetime C = life(4, 0, 4, 5); // starts after A ends
  EXPECT_TRUE(A.overlapsLifetime(B));
  EXPECT_TRUE(B.overlapsLifetime(A));
  EXPECT_FALSE(A.overlapsLifetime(C));
  EXPECT_FALSE(C.overlapsLifetime(A));
  // Single-unit interval intersects itself.
  BufferLifetime D = life(4, 0, 2, 2);
  EXPECT_TRUE(D.overlapsLifetime(D));
}

TEST(MemPlanIntervalTest, ZeroSizeBuffersNeverOverlapBytes) {
  BufferLifetime A = life(0, 0, 0, 9);
  BufferLifetime B = life(64, 0, 0, 9);
  EXPECT_FALSE(A.overlapsBytes(B));
  EXPECT_FALSE(B.overlapsBytes(A));
  EXPECT_FALSE(A.overlapsBytes(A));
  BufferLifetime C = life(64, 32, 0, 9); // [32,96) vs B's [0,64)
  EXPECT_TRUE(B.overlapsBytes(C));
  BufferLifetime D = life(64, 64, 0, 9); // adjacent, no overlap
  EXPECT_FALSE(B.overlapsBytes(D));
}

TEST(MemPlanTest, PlanIsValidSoundAndDeterministic) {
  Program P = compileModel(models::lenet(), 2, {});
  const MemoryPlan &Plan = P.Plan;
  ASSERT_TRUE(Plan.Valid);
  EXPECT_GT(Plan.ArenaBytes, 0);
  EXPECT_GT(Plan.EagerBytes, 0);

  for (const BufferLifetime &L : Plan.Lifetimes) {
    if (L.Bytes == 0)
      continue;
    EXPECT_EQ(L.Offset % Plan.Alignment, 0) << L.Name;
    EXPECT_LE(L.Offset + L.Bytes, Plan.ArenaBytes) << L.Name;
    EXPECT_LE(L.LiveBegin, L.LiveEnd) << L.Name;
    // Soundness: no two simultaneously-live roots may share bytes.
    for (const BufferLifetime &M : Plan.Lifetimes) {
      if (&L == &M)
        continue;
      EXPECT_FALSE(L.overlapsLifetime(M) && L.overlapsBytes(M))
          << L.Name << " vs " << M.Name;
    }
  }

  // Planning is a pure function of the program.
  MemoryPlan Replanned = planMemory(P);
  EXPECT_EQ(Plan.str(), Replanned.str());
}

TEST(MemPlanTest, AliasMembersShareTheRootPlacement) {
  Program P = compileModel(models::vggFirstThreeLayers(0.25), 2, {});
  ASSERT_TRUE(P.Plan.Valid);
  int Aliases = 0;
  for (const BufferInfo &B : P.Buffers) {
    if (B.AliasOf.empty())
      continue;
    ++Aliases;
    const BufferInfo *Root = P.resolveAlias(B.Name);
    ASSERT_NE(Root, nullptr) << B.Name;
    EXPECT_TRUE(Root->AliasOf.empty()) << B.Name;
    // Only roots get offsets; members resolve through the root's entry.
    EXPECT_EQ(P.Plan.Offsets.count(B.Name), 0u) << B.Name;
    EXPECT_EQ(P.Plan.Offsets.count(Root->Name), 1u) << B.Name;
  }
  ASSERT_GT(Aliases, 0) << "expected the 1:1 connections to alias";

  // Alias-of-alias chains resolve transitively to the same root.
  BufferInfo Chained;
  const BufferInfo *FirstAlias = nullptr;
  for (const BufferInfo &B : P.Buffers)
    if (!B.AliasOf.empty()) {
      FirstAlias = &B;
      break;
    }
  Chained.Name = "test_alias_of_alias";
  Chained.AliasOf = FirstAlias->Name;
  Chained.Dims = FirstAlias->Dims;
  P.Buffers.push_back(Chained);
  const BufferInfo *Root = P.resolveAlias("test_alias_of_alias");
  ASSERT_NE(Root, nullptr);
  EXPECT_TRUE(Root->AliasOf.empty());
  EXPECT_EQ(Root, P.resolveAlias(FirstAlias->Name));
}

TEST(MemPlanTest, ForwardOnlyRunKeepsValuesReadable) {
  // Inference-style use: no loss ensemble, only forward() is ever run.
  // (The compiler still synthesizes a backward program; the plan covers
  // both, and value roots stay retained either way.)
  Program P = compileModel(models::mlp(16, {32, 16}, 4), 2, {},
                           /*WithLoss=*/false);
  ASSERT_TRUE(P.Plan.Valid);
  EXPECT_GT(P.Plan.NumForwardUnits, 0);

  engine::Executor Ex(std::move(P));
  Ex.initParams(1);
  Tensor In(Shape{2, 16});
  Rng R(7);
  R.fillGaussian(In, 0.0f, 1.0f);
  Ex.setInput(In);
  Ex.forward();
  // Value roots are retained, so the output stays readable.
  Tensor Out = Ex.readBuffer("classifier_value");
  EXPECT_EQ(Out.numElements(), 2 * 4);
}

TEST(MemPlanTest, ClassificationAndRetainedAtExit) {
  Program P = compileModel(models::vggFirstThreeLayers(0.25), 2, {});
  const MemoryPlan &Plan = P.Plan;
  ASSERT_TRUE(Plan.Valid);
  int Pinned = 0, Retained = 0, Interval = 0;
  for (const BufferLifetime &L : Plan.Lifetimes) {
    if (L.Pinned)
      ++Pinned;
    else if (L.Retained)
      ++Retained;
    else
      ++Interval;
    if (L.Pinned || L.Retained) {
      // Whole-timeline allocation (replay safety) and exit visibility.
      EXPECT_EQ(L.LiveBegin, 0) << L.Name;
      EXPECT_TRUE(Plan.retainedAtExit(L.Name)) << L.Name;
    }
  }
  // The three classes all occur on a conv/pool net with loss.
  EXPECT_GT(Pinned, 0);
  EXPECT_GT(Retained, 0);
  EXPECT_GT(Interval, 0);

  // Params pinned; param gradients retained for the solver.
  const BufferLifetime *W = Plan.lifetime("conv1_1_weights");
  ASSERT_NE(W, nullptr);
  EXPECT_TRUE(W->Pinned);
  const BufferLifetime *G = Plan.lifetime("conv1_1_grad_weights");
  ASSERT_NE(G, nullptr);
  EXPECT_TRUE(G->Retained);
}

TEST(MemPlanTest, LazyZeroScheduleTargetsIntervalFirstRefs) {
  Program P = compileModel(models::vggFirstThreeLayers(0.25), 2, {});
  const MemoryPlan &Plan = P.Plan;
  ASSERT_TRUE(Plan.Valid);
  int Total = Plan.NumForwardUnits + Plan.NumBackwardUnits;
  for (const auto &Entry : Plan.ZeroBefore) {
    EXPECT_GE(Entry.first, 0);
    EXPECT_LT(Entry.first, Total);
    for (const std::string &Root : Entry.second) {
      const BufferLifetime *L = Plan.lifetime(Root);
      ASSERT_NE(L, nullptr) << Root;
      EXPECT_FALSE(L->Pinned) << Root;
      EXPECT_FALSE(L->Retained) << Root;
      EXPECT_EQ(L->FirstRef, Entry.first) << Root;
    }
  }
}

// Measured savings (deterministic): the unfused point folds the staggered
// per-layer backward buffers; the fully fused point keeps each chain's
// buffers alive together inside one batch loop, so it folds less (that is
// the fusion-vs-memory trade-off, not a planner defect).
TEST(MemPlanTest, UnfusedVgg3ArenaSavesAtLeast9Percent) {
  // The fig13 ablation's "no cross-layer optimizations" point (pattern
  // matching on, tiling/fusion off); measured 10.3% at scale 1.0.
  CompileOptions NoFuse;
  NoFuse.Tiling = false;
  NoFuse.Fusion = false;
  Program P = compileModel(models::vggFirstThreeLayers(1.0), 2, NoFuse);
  ASSERT_TRUE(P.Plan.Valid);
  double Saved = 1.0 - double(P.Plan.ArenaBytes) / double(P.Plan.EagerBytes);
  EXPECT_GE(Saved, 0.09) << P.Plan.str();
}

TEST(MemPlanTest, InterpretedVgg3ArenaSavesAtLeast15Percent) {
  // Mask 0 (fully interpreted): the gather/scatter scratch buffers the
  // pattern matchers would have eliminated are all pass-local intervals,
  // so this point folds the most; measured 19.3% at scale 1.0.
  Program P = compileModel(models::vggFirstThreeLayers(1.0), 2,
                           verify::optionsForMask(0));
  ASSERT_TRUE(P.Plan.Valid);
  double Saved = 1.0 - double(P.Plan.ArenaBytes) / double(P.Plan.EagerBytes);
  EXPECT_GE(Saved, 0.15) << P.Plan.str();
}

TEST(MemPlanTest, FusedVgg16ArenaSavesAtLeast6Percent) {
  Program P = compileModel(models::vgg16(0.25), 2, {});
  ASSERT_TRUE(P.Plan.Valid);
  double Saved = 1.0 - double(P.Plan.ArenaBytes) / double(P.Plan.EagerBytes);
  EXPECT_GE(Saved, 0.06) << P.Plan.str();
}

// Sub-unit slice rotation (compiler/rotate.h): the fused point folds ~0%
// because every chain-internal buffer shares the chain's single timeline
// unit — but the backward chain's col2im scratch is proven ItemPrivate by
// the sub-unit effect analysis and shrinks to a 2-slice modular pool,
// giving back (B - D) item slices the unit-granular planner never could.
TEST(MemPlanTest, SliceRotationShrinksFusedVgg3Arena) {
  CompileOptions Base; // the full default pipeline: fused chains
  Program Unrotated = compileModel(models::vggFirstThreeLayers(0.25), 4, Base);
  CompileOptions Rot = Base;
  Rot.SliceRotation = true;
  Program Rotated = compileModel(models::vggFirstThreeLayers(0.25), 4, Rot);
  ASSERT_TRUE(Unrotated.Plan.Valid);
  ASSERT_TRUE(Rotated.Plan.Valid);

  EXPECT_TRUE(Unrotated.Rotations.empty());
  ASSERT_FALSE(Rotated.Rotations.empty());
  for (const RotationInfo &RI : Rotated.Rotations) {
    EXPECT_GE(RI.Slices, 1) << RI.Buffer;
    EXPECT_LT(RI.Slices, 4) << RI.Buffer;
    EXPECT_GT(RI.SliceElems, 0) << RI.Buffer;
    EXPECT_GT(RI.SavedBytes, 0) << RI.Buffer;
    const BufferInfo *Root = Rotated.findBuffer(RI.Buffer);
    ASSERT_NE(Root, nullptr) << RI.Buffer;
    EXPECT_EQ(Root->Dims[0], RI.Slices) << RI.Buffer;
  }

  // Measured floor (deterministic, like the savings bounds above): the
  // backward fused chain's conv1_1_grad_inputs0 rotates from 4 item
  // slices to 2, returning 677376 bytes at scale 0.25 / batch 4.
  EXPECT_LT(Rotated.Plan.ArenaBytes, Unrotated.Plan.ArenaBytes);
  EXPECT_GE(Unrotated.Plan.ArenaBytes - Rotated.Plan.ArenaBytes, 650000)
      << Rotated.Plan.str();
}

TEST(MemPlanTest, ArenaNeverExceedsEagerPlusAlignmentSlack) {
  for (unsigned Mask : {0x00u, 0x0fu, 0x33u, 0x3fu}) {
    CompileOptions Opts = verify::optionsForMask(Mask);
    for (const models::ModelSpec &Spec :
         {models::lenet(), models::mlp(16, {32}, 4),
          models::vggFirstThreeLayers(0.25)}) {
      Program P = compileModel(Spec, 2, Opts);
      ASSERT_TRUE(P.Plan.Valid);
      int64_t Slack =
          int64_t(P.Plan.Lifetimes.size() + 1) * P.Plan.Alignment;
      EXPECT_LE(P.Plan.ArenaBytes, P.Plan.EagerBytes + Slack)
          << Spec.Name << " mask " << Mask;
    }
  }
}
