//===- tests/compiler/analysis_test.cpp -----------------------*- C++ -*-===//
///
/// Shared-variable analysis (§5.2): probing mapping functions recovers
/// shared dimensions, window structure, and one-to-one identities.
///
//===----------------------------------------------------------------------===//

#include "compiler/analysis.h"

#include <gtest/gtest.h>

using namespace latte;
using namespace latte::compiler;
using namespace latte::core;

namespace {

Connection makeConn(MappingFn Fn) {
  Connection C;
  C.Mapping = std::move(Fn);
  return C;
}

} // namespace

TEST(AnalysisTest, FullyConnectedIsFullyShared) {
  Shape Src{30};
  Connection C = makeConn(fullyConnectedMapping(Src));
  ConnectionInfo Info = analyzeConnection(C, Shape{10});
  EXPECT_TRUE(Info.FullyShared);
  EXPECT_TRUE(Info.SharedDims[0]);
  EXPECT_EQ(Info.WindowVolume, 30);
  EXPECT_FALSE(Info.OneToOne);
  EXPECT_TRUE(Info.Linear);
}

TEST(AnalysisTest, OneToOne) {
  Connection C = makeConn(oneToOneMapping());
  ConnectionInfo Info = analyzeConnection(C, Shape{4, 5, 6});
  EXPECT_TRUE(Info.OneToOne);
  EXPECT_EQ(Info.WindowVolume, 1);
  EXPECT_FALSE(Info.FullyShared);
  for (bool S : Info.SharedDims)
    EXPECT_FALSE(S);
}

TEST(AnalysisTest, ConvWindowSharesChannelDim) {
  // 3 input channels, 3x3 kernel, stride 1, pad 1 over a (8, 10, 10) sink.
  Connection C = makeConn(convWindowMapping(3, 3, 1, 1));
  ConnectionInfo Info = analyzeConnection(C, Shape{8, 10, 10});
  ASSERT_EQ(Info.SharedDims.size(), 3u);
  EXPECT_TRUE(Info.SharedDims[0]);  // independent of output channel
  EXPECT_FALSE(Info.SharedDims[1]); // slides in y
  EXPECT_FALSE(Info.SharedDims[2]); // slides in x
  EXPECT_EQ(Info.WindowVolume, 3 * 3 * 3);
  EXPECT_EQ(Info.Strides[1][1], 1); // y stride
  EXPECT_EQ(Info.Strides[2][2], 1);
  EXPECT_EQ(Info.Strides[1][2], 0); // y does not move x
  EXPECT_EQ(Info.BaseBox[1].Begin, -1); // padding
  EXPECT_TRUE(Info.Linear);
}

TEST(AnalysisTest, StridedConvWindow) {
  Connection C = makeConn(convWindowMapping(3, 11, 4, 0));
  ConnectionInfo Info = analyzeConnection(C, Shape{96, 54, 54});
  EXPECT_EQ(Info.Strides[1][1], 4);
  EXPECT_EQ(Info.Strides[2][2], 4);
  EXPECT_EQ(Info.WindowSizes[1], 11);
  EXPECT_EQ(Info.BaseBox[1].Begin, 0);
}

TEST(AnalysisTest, PoolWindowSharesNothing) {
  Connection C = makeConn(poolWindowMapping(2, 2, 0));
  ConnectionInfo Info = analyzeConnection(C, Shape{16, 5, 5});
  EXPECT_FALSE(Info.SharedDims[0]); // channel moves with the sink channel
  EXPECT_EQ(Info.Strides[0][0], 1);
  EXPECT_EQ(Info.WindowSizes[0], 1);
  EXPECT_EQ(Info.Strides[1][1], 2);
  EXPECT_EQ(Info.WindowSizes[1], 2);
  EXPECT_EQ(Info.WindowVolume, 4);
}

TEST(AnalysisTest, NonLinearMappingDetected) {
  Connection C = makeConn([](const std::vector<int64_t> &Sink) {
    int64_t Q = Sink[0] * Sink[0]; // quadratic motion
    return std::vector<Range>{{Q, Q + 1}};
  });
  ConnectionInfo Info = analyzeConnection(C, Shape{10});
  EXPECT_FALSE(Info.Linear);
}

TEST(AnalysisTest, SingletonDimsAreShared) {
  Connection C = makeConn(fullyConnectedMapping(Shape{7}));
  ConnectionInfo Info = analyzeConnection(C, Shape{1});
  EXPECT_TRUE(Info.FullyShared);
}

TEST(AnalysisDeathTest, NonUniformWindowIsFatal) {
  Connection C = makeConn([](const std::vector<int64_t> &Sink) {
    // Window volume grows with the index: not a homogeneous ensemble.
    return std::vector<Range>{{0, 1 + Sink[0]}};
  });
  EXPECT_DEATH(analyzeConnection(C, Shape{5}), "window size varies");
}

TEST(AnalysisTest, FieldMapIdentityDefault) {
  FieldStorage S;
  S.StorageDims = Shape{4, 5};
  FieldMapInfo Info = analyzeFieldMap(S, Shape{4, 5});
  EXPECT_TRUE(Info.IsProjection);
  EXPECT_EQ(Info.DimSelectors, (std::vector<int>{0, 1}));
}

TEST(AnalysisTest, FieldMapChannelProjection) {
  FieldStorage S;
  S.StorageDims = Shape{8};
  S.Map = [](const std::vector<int64_t> &Sink) {
    return std::vector<int64_t>{Sink[0]};
  };
  FieldMapInfo Info = analyzeFieldMap(S, Shape{8, 6, 6});
  EXPECT_TRUE(Info.IsProjection);
  EXPECT_EQ(Info.DimSelectors, (std::vector<int>{0}));
}

TEST(AnalysisTest, FieldMapBroadcastConstant) {
  FieldStorage S;
  S.StorageDims = Shape{1};
  S.Map = [](const std::vector<int64_t> &) {
    return std::vector<int64_t>{0};
  };
  FieldMapInfo Info = analyzeFieldMap(S, Shape{8, 6, 6});
  EXPECT_TRUE(Info.IsProjection);
  EXPECT_EQ(Info.DimSelectors, (std::vector<int>{-1}));
}

TEST(AnalysisTest, FieldMapNonProjectionRejected) {
  FieldStorage S;
  S.StorageDims = Shape{8};
  S.Map = [](const std::vector<int64_t> &Sink) {
    return std::vector<int64_t>{Sink[0] / 2}; // stride-2 projection
  };
  FieldMapInfo Info = analyzeFieldMap(S, Shape{8, 6, 6});
  EXPECT_FALSE(Info.IsProjection);
}
