//===- tests/compiler/compile_exec_test.cpp -------------------*- C++ -*-===//
///
/// End-to-end compiler + engine tests: numeric correctness of matched
/// paths (FC GEMM, conv GEMM, pooling, activations), the interpreted
/// fallback, optimization-level equivalence, and finite-difference
/// gradient checks.
///
//===----------------------------------------------------------------------===//

#include "compiler/compiler.h"
#include "core/layers/layers.h"
#include "engine/executor.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace latte;
using namespace latte::compiler;
using namespace latte::core;
using namespace latte::engine;
using namespace latte::layers;

namespace {

Tensor filled(Shape S, std::function<float(int64_t)> Fn) {
  Tensor T(std::move(S));
  for (int64_t I = 0; I < T.numElements(); ++I)
    T.at(I) = Fn(I);
  return T;
}

} // namespace

TEST(CompileExecTest, FullyConnectedForwardMatchesByHand) {
  Net Net(2);
  Ensemble *Data = DataLayer(Net, "data", Shape{3});
  Ensemble *Fc = FullyConnectedLayer(Net, "fc", Data, 2);
  (void)Fc;
  Program P = compile(Net);
  EXPECT_TRUE(P.Report.gemmMatched("fc"));

  Executor Ex(std::move(P));
  // x0 = (1, 2, 3), x1 = (0, 1, 0); W = [[1,0,0],[0,2,0]]; b = (10, 20).
  Ex.setInput(filled(Shape{2, 3}, [](int64_t I) {
    const float V[] = {1, 2, 3, 0, 1, 0};
    return V[I];
  }));
  Ex.writeBuffer("fc_weights", filled(Shape{2, 3}, [](int64_t I) {
                   const float V[] = {1, 0, 0, 0, 2, 0};
                   return V[I];
                 }));
  Ex.writeBuffer("fc_bias", filled(Shape{2, 1}, [](int64_t I) {
                   return I == 0 ? 10.0f : 20.0f;
                 }));
  Ex.forward();
  Tensor Out = Ex.readBuffer("fc_value");
  EXPECT_FLOAT_EQ(Out.at({0, 0}), 1 + 10);
  EXPECT_FLOAT_EQ(Out.at({0, 1}), 4 + 20);
  EXPECT_FLOAT_EQ(Out.at({1, 0}), 0 + 10);
  EXPECT_FLOAT_EQ(Out.at({1, 1}), 2 + 20);
}

TEST(CompileExecTest, ConvForwardMatchesByHand) {
  Net Net(1);
  Ensemble *Data = DataLayer(Net, "data", Shape{1, 3, 3});
  ConvolutionLayer(Net, "conv", Data, 1, 2, 1, 0);
  Program P = compile(Net);
  EXPECT_TRUE(P.Report.gemmMatched("conv"));

  Executor Ex(std::move(P));
  Ex.setInput(filled(Shape{1, 1, 3, 3},
                     [](int64_t I) { return static_cast<float>(I + 1); }));
  // Filter = [[1, 0], [0, 1]], bias = 0.5.
  Ex.writeBuffer("conv_weights", filled(Shape{1, 4}, [](int64_t I) {
                   return (I == 0 || I == 3) ? 1.0f : 0.0f;
                 }));
  Ex.writeBuffer("conv_bias",
                 filled(Shape{1, 1}, [](int64_t) { return 0.5f; }));
  Ex.forward();
  Tensor Out = Ex.readBuffer("conv_value");
  // Windows: {1,2,4,5} -> 1+5; {2,3,5,6} -> 2+6; {4..} -> 4+8; {5..} -> 5+9.
  EXPECT_FLOAT_EQ(Out.at(0), 6.5f);
  EXPECT_FLOAT_EQ(Out.at(1), 8.5f);
  EXPECT_FLOAT_EQ(Out.at(2), 12.5f);
  EXPECT_FLOAT_EQ(Out.at(3), 14.5f);
}

TEST(CompileExecTest, ConvWithPaddingZeroExtends) {
  Net Net(1);
  Ensemble *Data = DataLayer(Net, "data", Shape{1, 2, 2});
  ConvolutionLayer(Net, "conv", Data, 1, 3, 1, 1);
  Program P = compile(Net);
  Executor Ex(std::move(P));
  Ex.setInput(filled(Shape{1, 1, 2, 2}, [](int64_t) { return 1.0f; }));
  Ex.writeBuffer("conv_weights",
                 filled(Shape{1, 9}, [](int64_t) { return 1.0f; }));
  Ex.forward();
  Tensor Out = Ex.readBuffer("conv_value");
  // Top-left output sees a 2x2 live region of ones.
  EXPECT_FLOAT_EQ(Out.at(0), 4.0f);
}

TEST(CompileExecTest, ReluAndPoolMatchedAndCorrect) {
  Net Net(1);
  Ensemble *Data = DataLayer(Net, "data", Shape{1, 4, 4});
  Ensemble *Conv = ConvolutionLayer(Net, "conv", Data, 2, 1, 1, 0);
  Ensemble *Relu = ReluLayer(Net, "relu", Conv);
  MaxPoolingLayer(Net, "pool", Relu, 2, 2);
  Program P = compile(Net);
  EXPECT_TRUE(P.Report.gemmMatched("conv"));
  ASSERT_EQ(P.Report.MatchedPoolEnsembles.size(), 1u);
  ASSERT_EQ(P.Report.MatchedActivationEnsembles.size(), 1u);

  Executor Ex(std::move(P));
  Ex.setInput(filled(Shape{1, 1, 4, 4}, [](int64_t I) {
    return static_cast<float>(I) - 8.0f; // values -8..7
  }));
  // Identity 1x1 filters: channel0 = +x, channel1 = -x.
  Ex.writeBuffer("conv_weights", filled(Shape{2, 1}, [](int64_t I) {
                   return I == 0 ? 1.0f : -1.0f;
                 }));
  Ex.forward();
  Tensor Pool = Ex.readBuffer("pool_value");
  ASSERT_EQ(Pool.shape(), Shape({1, 2, 2, 2}));
  // Channel 0 after relu: max(x, 0); pooling picks the max of each 2x2.
  EXPECT_FLOAT_EQ(Pool.at({0, 0, 0, 0}), 0.0f);  // all negative -> 0
  EXPECT_FLOAT_EQ(Pool.at({0, 0, 1, 1}), 7.0f);  // bottom-right block
  // Channel 1 = relu(-x): top-left block has the most negative x.
  EXPECT_FLOAT_EQ(Pool.at({0, 1, 0, 0}), 8.0f);
  EXPECT_FLOAT_EQ(Pool.at({0, 1, 1, 1}), 0.0f);
}

TEST(CompileExecTest, VggStyleGroupIsFused) {
  Net Net(2);
  Ensemble *Data = DataLayer(Net, "data", Shape{3, 16, 16});
  Ensemble *Conv = ConvolutionLayer(Net, "conv1", Data, 4, 3, 1, 1);
  Ensemble *Relu = ReluLayer(Net, "relu1", Conv);
  MaxPoolingLayer(Net, "pool1", Relu, 2, 2);
  CompileOptions Opts;
  Opts.TileSize = 4;
  Opts.MinRowsToTile = 4;
  Program P = compile(Net, Opts);
  ASSERT_EQ(P.Report.FusionGroups.size(), 1u);
  EXPECT_EQ(P.Report.FusionGroups[0],
            (std::vector<std::string>{"conv1", "relu1", "pool1"}));
  EXPECT_GT(P.Report.NumTiledLoops, 0);
}

TEST(CompileExecTest, OverlappingPoolIsNotFused) {
  // AlexNet-style 3x3 stride-2 pooling overlaps: no fusion with producer.
  Net Net(1);
  Ensemble *Data = DataLayer(Net, "data", Shape{2, 17, 17});
  Ensemble *Conv = ConvolutionLayer(Net, "conv1", Data, 2, 3, 1, 1);
  Ensemble *Relu = ReluLayer(Net, "relu1", Conv);
  MaxPoolingLayer(Net, "pool1", Relu, 3, 2);
  Program P = compile(Net);
  for (const auto &Group : P.Report.FusionGroups)
    for (const std::string &Name : Group)
      EXPECT_NE(Name, "pool1");
}

TEST(CompileExecTest, PaddedConvDoesNotFuseWithProducer) {
  // conv2 (3x3 stride 1, pad 1) consuming pool1 reads across tile rows:
  // fusion between pool1 and conv2 must not happen.
  Net Net(1);
  Ensemble *Data = DataLayer(Net, "data", Shape{2, 16, 16});
  Ensemble *Conv1 = ConvolutionLayer(Net, "conv1", Data, 2, 3, 1, 1);
  Ensemble *Pool1 = MaxPoolingLayer(Net, "pool1", Conv1, 2, 2);
  ConvolutionLayer(Net, "conv2", Pool1, 2, 3, 1, 1);
  Program P = compile(Net);
  for (const auto &Group : P.Report.FusionGroups)
    for (const std::string &Name : Group)
      EXPECT_NE(Name, "conv2");
}

TEST(CompileExecTest, InterpretedFallbackPRelu) {
  Net Net(2);
  Ensemble *Data = DataLayer(Net, "data", Shape{4});
  PReluLayer(Net, "prelu", Data);
  Program P = compile(Net);
  ASSERT_EQ(P.Report.InterpretedEnsembles.size(), 1u);
  EXPECT_EQ(P.Report.InterpretedEnsembles[0], "prelu");

  Executor Ex(std::move(P));
  Ex.setInput(filled(Shape{2, 4}, [](int64_t I) {
    return static_cast<float>(I) - 3.5f; // mixed signs
  }));
  Ex.forward();
  Tensor Out = Ex.readBuffer("prelu_value");
  // Slope initialized to 0.25.
  EXPECT_FLOAT_EQ(Out.at(0), -3.5f * 0.25f);
  EXPECT_FLOAT_EQ(Out.at(7), 3.5f);
}

TEST(CompileExecTest, OptimizationLevelsAgree) {
  auto BuildAndRun = [](const CompileOptions &Opts) {
    Net Net(2);
    Ensemble *Data = DataLayer(Net, "data", Shape{3, 8, 8});
    Ensemble *Conv = ConvolutionLayer(Net, "conv1", Data, 4, 3, 1, 1);
    Ensemble *Relu = ReluLayer(Net, "relu1", Conv);
    Ensemble *Pool = MaxPoolingLayer(Net, "pool1", Relu, 2, 2);
    Ensemble *Fc = FullyConnectedLayer(Net, "fc", Pool, 5);
    Ensemble *Labels = LabelLayer(Net, "labels");
    SoftmaxLossLayer(Net, "loss", Fc, Labels);

    ExecOptions EO;
    EO.VectorKernels = Opts.VectorKernels;
    EO.Parallel = Opts.Parallelize;
    Executor Ex(compile(Net, Opts), EO);
    Ex.initParams(1234);
    Rng R(777);
    Tensor In(Shape{2, 3, 8, 8});
    R.fillGaussian(In, 0.0f, 1.0f);
    Ex.setInput(In);
    Ex.setLabels(filled(Shape{2, 1}, [](int64_t I) {
      return static_cast<float>(I % 5);
    }));
    Ex.forward();
    Ex.backward();
    Tensor Grad = Ex.readBuffer("conv1_grad_weights");
    Tensor Prob = Ex.readBuffer(Ex.program().ProbBuffer);
    return std::pair<Tensor, Tensor>(std::move(Prob), std::move(Grad));
  };

  CompileOptions Ref;
  Ref.PatternMatchGemm = false;
  Ref.PatternMatchKernels = false;
  Ref.Tiling = false;
  Ref.Fusion = false;
  Ref.Parallelize = false;
  Ref.VectorKernels = false;
  auto [RefProb, RefGrad] = BuildAndRun(Ref);

  for (int Mask = 0; Mask < 16; ++Mask) {
    CompileOptions O;
    O.PatternMatchGemm = Mask & 1;
    O.PatternMatchKernels = Mask & 2;
    O.Tiling = Mask & 4;
    O.Fusion = Mask & 8;
    O.TileSize = 4;
    O.MinRowsToTile = 2;
    auto [Prob, Grad] = BuildAndRun(O);
    EXPECT_EQ(Prob.firstMismatch(RefProb, 1e-4f, 1e-3f), -1)
        << "prob mismatch at options mask " << Mask;
    EXPECT_EQ(Grad.firstMismatch(RefGrad, 1e-3f, 1e-2f), -1)
        << "grad mismatch at options mask " << Mask;
  }
}

namespace {

/// Finite-difference gradient check of d(meanLoss)/d(param) at a few
/// sampled parameter positions.
void checkParamGradient(Executor &Ex, const std::string &ParamBuf,
                        const std::string &GradBuf, float Tol) {
  Ex.forward();
  Ex.backward();
  Tensor Grad = Ex.readBuffer(GradBuf);
  Tensor Param = Ex.readBuffer(ParamBuf);
  const float Eps = 1e-2f;
  int64_t N = Param.numElements();
  int64_t Stride = std::max<int64_t>(1, N / 7);
  for (int64_t I = 0; I < N; I += Stride) {
    float Orig = Param.at(I);
    Param.at(I) = Orig + Eps;
    Ex.writeBuffer(ParamBuf, Param);
    Ex.forward();
    double LossPlus = Ex.lossValue();
    Param.at(I) = Orig - Eps;
    Ex.writeBuffer(ParamBuf, Param);
    Ex.forward();
    double LossMinus = Ex.lossValue();
    Param.at(I) = Orig;
    Ex.writeBuffer(ParamBuf, Param);
    double Numeric = (LossPlus - LossMinus) / (2.0 * Eps);
    EXPECT_NEAR(Grad.at(I), Numeric, Tol)
        << ParamBuf << " element " << I;
  }
}

} // namespace

TEST(CompileExecTest, GradientCheckMlp) {
  Net Net(4);
  Ensemble *Data = DataLayer(Net, "data", Shape{6});
  Ensemble *Fc1 = FullyConnectedLayer(Net, "fc1", Data, 8);
  Ensemble *Act = TanhLayer(Net, "act1", Fc1);
  Ensemble *Fc2 = FullyConnectedLayer(Net, "fc2", Act, 3);
  Ensemble *Labels = LabelLayer(Net, "labels");
  SoftmaxLossLayer(Net, "loss", Fc2, Labels);

  Executor Ex(compile(Net));
  Ex.initParams(99);
  Rng R(5);
  Tensor In(Shape{4, 6});
  R.fillGaussian(In, 0.0f, 1.0f);
  Ex.setInput(In);
  Ex.setLabels(filled(Shape{4, 1}, [](int64_t I) {
    return static_cast<float>(I % 3);
  }));
  checkParamGradient(Ex, "fc1_weights", "fc1_grad_weights", 2e-3f);
  checkParamGradient(Ex, "fc2_bias", "fc2_grad_bias", 2e-3f);
}

TEST(CompileExecTest, GradientCheckConvNet) {
  Net Net(2);
  Ensemble *Data = DataLayer(Net, "data", Shape{2, 6, 6});
  Ensemble *Conv = ConvolutionLayer(Net, "conv", Data, 3, 3, 1, 1);
  Ensemble *Relu = ReluLayer(Net, "relu", Conv);
  Ensemble *Pool = MaxPoolingLayer(Net, "pool", Relu, 2, 2);
  Ensemble *Fc = FullyConnectedLayer(Net, "fc", Pool, 4);
  Ensemble *Labels = LabelLayer(Net, "labels");
  SoftmaxLossLayer(Net, "loss", Fc, Labels);

  Executor Ex(compile(Net));
  Ex.initParams(31);
  Rng R(6);
  Tensor In(Shape{2, 2, 6, 6});
  R.fillGaussian(In, 0.0f, 1.0f);
  Ex.setInput(In);
  Ex.setLabels(filled(Shape{2, 1}, [](int64_t I) {
    return static_cast<float>(I % 4);
  }));
  checkParamGradient(Ex, "conv_weights", "conv_grad_weights", 5e-3f);
  checkParamGradient(Ex, "conv_bias", "conv_grad_bias", 5e-3f);
  checkParamGradient(Ex, "fc_weights", "fc_grad_weights", 5e-3f);
}

TEST(CompileExecTest, GradientCheckInterpretedPRelu) {
  Net Net(3);
  Ensemble *Data = DataLayer(Net, "data", Shape{5});
  Ensemble *Fc1 = FullyConnectedLayer(Net, "fc1", Data, 6);
  Ensemble *Act = PReluLayer(Net, "prelu", Fc1);
  Ensemble *Fc2 = FullyConnectedLayer(Net, "fc2", Act, 2);
  Ensemble *Labels = LabelLayer(Net, "labels");
  SoftmaxLossLayer(Net, "loss", Fc2, Labels);

  Executor Ex(compile(Net));
  Ex.initParams(17);
  Rng R(8);
  Tensor In(Shape{3, 5});
  R.fillGaussian(In, 0.0f, 1.0f);
  Ex.setInput(In);
  Ex.setLabels(filled(Shape{3, 1}, [](int64_t I) {
    return static_cast<float>(I % 2);
  }));
  checkParamGradient(Ex, "prelu_slope", "prelu_grad_slope", 2e-3f);
  checkParamGradient(Ex, "fc1_weights", "fc1_grad_weights", 2e-3f);
}

TEST(CompileExecTest, SoftmaxLayerForwardAndLossValue) {
  Net Net(2);
  Ensemble *Data = DataLayer(Net, "data", Shape{4});
  Ensemble *Labels = LabelLayer(Net, "labels");
  SoftmaxLossLayer(Net, "loss", Data, Labels);
  Program P = compile(Net);
  Executor Ex(std::move(P));
  Ex.setInput(filled(Shape{2, 4}, [](int64_t I) {
    return I < 4 ? static_cast<float>(I) : 0.0f;
  }));
  Ex.setLabels(filled(Shape{2, 1}, [](int64_t) { return 3.0f; }));
  Ex.forward();
  EXPECT_GT(Ex.lossValue(), 0.0);
  Tensor Prob = Ex.readBuffer(Ex.program().ProbBuffer);
  float Sum = 0;
  for (int I = 0; I < 4; ++I)
    Sum += Prob.at(I);
  EXPECT_NEAR(Sum, 1.0f, 1e-5f);
  // Second item is uniform: accuracy counts argmax == 3 only for item 0
  // when logits favor class 3.
  EXPECT_GE(Ex.accuracy(), 0.5);
}
