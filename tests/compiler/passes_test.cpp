//===- tests/compiler/passes_test.cpp -------------------------*- C++ -*-===//
///
/// Structural tests of the optimization pipeline: tiling plans, tile-size
/// scaling under fusion (Figure 11), parallelization annotations
/// (collapse(2), §5.4.3), fusion barriers around normalization ensembles
/// (§5.5), and backward-pass fusion.
///
//===----------------------------------------------------------------------===//

#include "compiler/compiler.h"
#include "core/layers/layers.h"
#include "ir/printer.h"
#include "ir/visitor.h"

#include <gtest/gtest.h>

using namespace latte;
using namespace latte::compiler;
using namespace latte::core;
using namespace latte::ir;
using namespace latte::layers;

namespace {

/// Collects every TiledLoopStmt in a program in traversal order.
std::vector<const TiledLoopStmt *> tiledLoops(const Stmt *Root) {
  std::vector<const TiledLoopStmt *> Loops;
  walkStmts(Root, [&](const Stmt *S) {
    if (const auto *T = dyn_cast<TiledLoopStmt>(S))
      Loops.push_back(T);
  });
  return Loops;
}

CompileOptions smallNetOpts() {
  CompileOptions Opts;
  Opts.TileSize = 4;
  Opts.MinRowsToTile = 4;
  return Opts;
}

} // namespace

TEST(PassesTest, FusionScalesProducerTiles) {
  // conv (Y=16) + relu + pool2 (Y=8): after fusion all three live in one
  // tiled loop whose tile count comes from the pool and whose producer
  // tile size is scaled by the dependence distance 2 (Figure 11).
  Net Net(1);
  Ensemble *Data = DataLayer(Net, "data", Shape{2, 16, 16});
  Ensemble *Conv = ConvolutionLayer(Net, "conv", Data, 2, 3, 1, 1);
  Ensemble *Relu = ReluLayer(Net, "relu", Conv);
  MaxPoolingLayer(Net, "pool", Relu, 2, 2);
  Program P = compile(Net, smallNetOpts());

  std::vector<const TiledLoopStmt *> Fwd = tiledLoops(P.Forward.get());
  ASSERT_EQ(Fwd.size(), 1u) << printStmt(P.Forward.get());
  // Pool rows = 8, planned tile 4 -> 2 tiles; distance 2.
  EXPECT_EQ(Fwd[0]->numTiles(), 2);
  EXPECT_EQ(Fwd[0]->dependenceDistance(), 2);
  // The fused body contains the conv GEMM, activation, and pooling kernels
  // instantiated per tile: conv rows per tile = 16 / 2 = 8.
  std::string Body = printStmt(Fwd[0]->body());
  EXPECT_NE(Body.find("sgemm("), std::string::npos);
  EXPECT_NE(Body.find("act_fwd("), std::string::npos);
  EXPECT_NE(Body.find("max_pool_fwd("), std::string::npos);
  // Conv GEMM covers 8 rows x 16 cols = 128 columns per tile.
  EXPECT_NE(Body.find("sgemm(conv_weights, conv_inputs0"),
            std::string::npos);
}

TEST(PassesTest, BackwardIsAlsoFused) {
  Net Net(1);
  Ensemble *Data = DataLayer(Net, "data", Shape{2, 16, 16});
  Ensemble *Conv = ConvolutionLayer(Net, "conv", Data, 2, 3, 1, 1);
  Ensemble *Relu = ReluLayer(Net, "relu", Conv);
  MaxPoolingLayer(Net, "pool", Relu, 2, 2);
  Program P = compile(Net, smallNetOpts());

  // Backward: pool-bwd, relu-bwd, and the conv input-gradient GEMM share
  // one tiled loop (the paper's 15x backward speedup relies on this).
  // The recompute pass may insert its re-gather clone (itself a tiled
  // im2col loop) ahead of the fused chain, so search rather than assume
  // the chain is first.
  std::vector<const TiledLoopStmt *> Bwd = tiledLoops(P.Backward.get());
  ASSERT_GE(Bwd.size(), 1u);
  bool FoundFusedChain = false;
  for (const TiledLoopStmt *L : Bwd) {
    std::string Body = printStmt(L->body());
    if (Body.find("max_pool_bwd(") != std::string::npos &&
        Body.find("act_bwd(") != std::string::npos &&
        Body.find("sgemm(") != std::string::npos)
      FoundFusedChain = true;
  }
  EXPECT_TRUE(FoundFusedChain) << printStmt(P.Backward.get());
}

TEST(PassesTest, CollapseAnnotationOnFusedGroups) {
  Net Net(4);
  Ensemble *Data = DataLayer(Net, "data", Shape{2, 16, 16});
  Ensemble *Conv = ConvolutionLayer(Net, "conv", Data, 2, 3, 1, 1);
  ReluLayer(Net, "relu", Conv);
  Program P = compile(Net, smallNetOpts());

  bool SawCollapsedBatchLoop = false;
  walkStmts(P.Forward.get(), [&](const Stmt *S) {
    if (const auto *F = dyn_cast<ForStmt>(S))
      if (F->var() == "n" && F->annotations().Parallel &&
          F->annotations().Collapse == 2)
        SawCollapsedBatchLoop = true;
  });
  EXPECT_TRUE(SawCollapsedBatchLoop) << printStmt(P.Forward.get());
}

TEST(PassesTest, NoParallelAnnotationsWhenDisabled) {
  Net Net(4);
  Ensemble *Data = DataLayer(Net, "data", Shape{2, 8, 8});
  ConvolutionLayer(Net, "conv", Data, 2, 3, 1, 1);
  CompileOptions Opts;
  Opts.Parallelize = false;
  Program P = compile(Net, Opts);
  walkStmts(P.Forward.get(), [&](const Stmt *S) {
    if (const auto *F = dyn_cast<ForStmt>(S)) {
      EXPECT_FALSE(F->annotations().Parallel);
    }
  });
}

TEST(PassesTest, BarrierEmittedForNormalizationEnsembles) {
  Net Net(2);
  Ensemble *Data = DataLayer(Net, "data", Shape{6});
  Ensemble *Fc = FullyConnectedLayer(Net, "fc", Data, 4);
  SoftmaxLayer(Net, "softmax", Fc);
  Program P = compile(Net);
  bool SawBarrier = false;
  walkStmts(P.Forward.get(), [&](const Stmt *S) {
    if (isa<BarrierStmt>(S))
      SawBarrier = true;
  });
  EXPECT_TRUE(SawBarrier);
}

TEST(PassesTest, TilingHonorsMinRowsThreshold) {
  Net Net(1);
  Ensemble *Data = DataLayer(Net, "data", Shape{2, 16, 16});
  ConvolutionLayer(Net, "conv", Data, 2, 3, 1, 1);
  CompileOptions Big;
  Big.TileSize = 4;
  Big.MinRowsToTile = 64; // 16 rows < 64: stay untiled
  Program P = compile(Net, Big);
  EXPECT_EQ(P.Report.NumTiledLoops, 0);
  EXPECT_TRUE(tiledLoops(P.Forward.get()).empty());
}

TEST(PassesTest, TileSizePicksDivisor) {
  // Rows = 18, requested tile 8 -> largest divisor <= 8 is 6.
  Net Net(1);
  Ensemble *Data = DataLayer(Net, "data", Shape{2, 18, 18});
  ConvolutionLayer(Net, "conv", Data, 2, 3, 1, 1);
  CompileOptions Opts;
  Opts.TileSize = 8;
  Opts.MinRowsToTile = 4;
  Program P = compile(Net, Opts);
  std::vector<const TiledLoopStmt *> Loops = tiledLoops(P.Forward.get());
  ASSERT_EQ(Loops.size(), 1u);
  EXPECT_EQ(Loops[0]->tileSize(), 6);
  EXPECT_EQ(Loops[0]->numTiles(), 3);
}

TEST(PassesTest, FcLayersAreWholeBatchGemms) {
  // FC layers lower to one whole-batch GEMM outside any batch loop
  // (shared-variable analysis: all neurons consume the same inputs).
  Net Net(4);
  Ensemble *Data = DataLayer(Net, "data", Shape{10});
  FullyConnectedLayer(Net, "fc", Data, 5);
  Program P = compile(Net);
  std::string Text = printStmt(P.Forward.get());
  EXPECT_NE(Text.find("sgemm(fc_inputs0, fc_weights, fc_value"),
            std::string::npos);
  // No batch loop at all: the program is two kernel calls.
  bool SawFor = false;
  walkStmts(P.Forward.get(), [&](const Stmt *S) {
    if (isa<ForStmt>(S))
      SawFor = true;
  });
  EXPECT_FALSE(SawFor) << Text;
}

TEST(PassesTest, FcInputAliasesSourceValues) {
  // The Figure 8 optimization: the FC input buffer is the producer's value
  // buffer, not a copy.
  Net Net(2);
  Ensemble *Data = DataLayer(Net, "data", Shape{3, 4, 4});
  Ensemble *Conv = ConvolutionLayer(Net, "conv", Data, 2, 3, 1, 1);
  FullyConnectedLayer(Net, "fc", Conv, 5);
  Program P = compile(Net);
  const BufferInfo *In = P.findBuffer("fc_inputs0");
  ASSERT_NE(In, nullptr);
  EXPECT_EQ(In->AliasOf, "conv_value");
  const BufferInfo *Gin = P.findBuffer("fc_grad_inputs0");
  ASSERT_NE(Gin, nullptr);
  EXPECT_EQ(Gin->AliasOf, "conv_grad");
}

TEST(PassesTest, ActivationValueRunsInPlace) {
  Net Net(2);
  Ensemble *Data = DataLayer(Net, "data", Shape{2, 8, 8});
  Ensemble *Conv = ConvolutionLayer(Net, "conv", Data, 2, 3, 1, 1);
  ReluLayer(Net, "relu", Conv);
  Program P = compile(Net);
  const BufferInfo *V = P.findBuffer("relu_value");
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->AliasOf, "conv_value");
  // Gradients stay private (see declareValueGrad).
  const BufferInfo *G = P.findBuffer("relu_grad");
  ASSERT_NE(G, nullptr);
  EXPECT_TRUE(G->AliasOf.empty());
}

TEST(PassesTest, StridedNonOverlappingConvFusesWithProducer) {
  // A 2x2 stride-2 unpadded convolution satisfies the fusion legality rule
  // (window == stride, no padding), like pooling.
  Net Net(1);
  Ensemble *Data = DataLayer(Net, "data", Shape{2, 16, 16});
  Ensemble *Conv1 = ConvolutionLayer(Net, "conv1", Data, 2, 3, 1, 1);
  Ensemble *Relu = ReluLayer(Net, "relu1", Conv1);
  ConvolutionLayer(Net, "conv2", Relu, 4, 2, 2, 0);
  Program P = compile(Net, smallNetOpts());
  bool Conv2Fused = false;
  for (const auto &Group : P.Report.FusionGroups)
    for (const std::string &Name : Group)
      Conv2Fused |= Name == "conv2";
  EXPECT_TRUE(Conv2Fused);
}
