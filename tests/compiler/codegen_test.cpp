//===- tests/compiler/codegen_test.cpp ------------------------*- C++ -*-===//
///
/// Code-generation tests: the emitted C++ carries the paper's parallel /
/// vector pragmas, compiles standalone with the host compiler, and its
/// numerical results match the in-process engine exactly.
///
//===----------------------------------------------------------------------===//

#include "compiler/codegen_cpp.h"
#include "compiler/compiler.h"
#include "core/layers/layers.h"
#include "engine/executor.h"
#include "support/ltd_format.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

using namespace latte;
using namespace latte::compiler;
using namespace latte::core;
using namespace latte::layers;

namespace {

Net *makeConvNet(int64_t Batch) {
  auto *Net = new core::Net(Batch);
  Ensemble *Data = DataLayer(*Net, "data", Shape{2, 8, 8});
  Ensemble *Conv = ConvolutionLayer(*Net, "conv1", Data, 4, 3, 1, 1);
  Ensemble *Relu = ReluLayer(*Net, "relu1", Conv);
  Ensemble *Pool = MaxPoolingLayer(*Net, "pool1", Relu, 2, 2);
  Ensemble *Fc = FullyConnectedLayer(*Net, "fc1", Pool, 5);
  Ensemble *Labels = LabelLayer(*Net, "labels");
  SoftmaxLossLayer(*Net, "loss", Fc, Labels);
  return Net;
}

} // namespace

TEST(CodegenTest, EmitsParallelAndVectorPragmas) {
  std::unique_ptr<Net> N(makeConvNet(4));
  CompileOptions Opts;
  Opts.TileSize = 2;
  Opts.MinRowsToTile = 2;
  Program P = compile(*N, Opts);
  std::string Src = generateCpp(P);
  // The §5.4.3 parallelization construct.
  EXPECT_NE(Src.find("#pragma omp parallel for collapse(2) "
                     "schedule(static, 1)"),
            std::string::npos);
  // Vectorized kernel inner loops.
  EXPECT_NE(Src.find("#pragma omp simd"), std::string::npos);
  // The matched library kernel.
  EXPECT_NE(Src.find("k_gemm("), std::string::npos);
  // Buffer aliasing from shared-variable analysis shows up.
  EXPECT_NE(Src.find("alias of"), std::string::npos);
  // The driver entry points.
  EXPECT_NE(Src.find("void latte_forward()"), std::string::npos);
  EXPECT_NE(Src.find("void latte_backward()"), std::string::npos);
}

TEST(CodegenTest, SerialProgramHasNoParallelPragma) {
  std::unique_ptr<Net> N(makeConvNet(2));
  CompileOptions Opts;
  Opts.Parallelize = false;
  std::string Src = generateCpp(compile(*N, Opts));
  EXPECT_EQ(Src.find("#pragma omp parallel for"), std::string::npos);
}

TEST(CodegenTest, GeneratedProgramMatchesEngine) {
  // Compile the network, run it in process, then build the generated C++
  // with the host compiler and check outputs and gradients agree.
  std::unique_ptr<Net> N(makeConvNet(2));
  CompileOptions Opts;
  Opts.TileSize = 2;
  Opts.MinRowsToTile = 2;
  Program P = compile(*N, Opts);

  engine::Executor Ex(compile(*N, Opts));
  Ex.initParams(2024);
  Rng R(55);
  Tensor In(Shape{2, 2, 8, 8});
  R.fillGaussian(In, 0.0f, 1.0f);
  Ex.setInput(In);
  Tensor Labels(Shape{2, 1});
  Labels.at(0) = 1.0f;
  Labels.at(1) = 3.0f;
  Ex.setLabels(Labels);
  Ex.forward();
  Ex.backward();

  std::string Dir = testing::TempDir();
  std::string SrcPath = Dir + "/latte_gen.cpp";
  std::string BinPath = Dir + "/latte_gen_bin";
  std::string InPath = Dir + "/latte_gen_in.ltd";
  std::string OutPath = Dir + "/latte_gen_out.ltd";
  ASSERT_TRUE(writeGeneratedProgram(P, SrcPath));

  // Feed the generated program the engine's initial state: data, labels,
  // and parameters (value buffers recompute from scratch).
  std::vector<std::pair<std::string, Tensor>> Inputs;
  Inputs.emplace_back("data_value", In);
  Tensor L(Shape{2});
  L.at(0) = 1.0f;
  L.at(1) = 3.0f;
  Inputs.emplace_back("labels_value", L);
  for (const BufferInfo &B : P.Buffers)
    if (B.Role == BufferRole::Param)
      Inputs.emplace_back(B.Name, Ex.readBuffer(B.Name));
  ASSERT_TRUE(writeLtdFile(InPath, Inputs));

  std::string Compile = "g++ -O2 -fopenmp -o " + BinPath + " " + SrcPath +
                        " 2>" + Dir + "/latte_gen_err.txt";
  ASSERT_EQ(std::system(Compile.c_str()), 0)
      << "generated source failed to compile";
  std::string Run = BinPath + " " + InPath + " " + OutPath + " fwdbwd";
  ASSERT_EQ(std::system(Run.c_str()), 0);

  auto Outputs = readLtdFile(OutPath);
  auto Find = [&](const std::string &Name) -> const Tensor * {
    for (const auto &[N2, T] : Outputs)
      if (N2 == Name)
        return &T;
    return nullptr;
  };
  for (const char *Buf :
       {"pool1_value", "fc1_value", "loss_loss", "conv1_grad_weights",
        "fc1_grad_weights", "conv1_grad_bias"}) {
    const Tensor *Gen = Find(Buf);
    ASSERT_NE(Gen, nullptr) << Buf;
    Tensor Ref = Ex.readBuffer(Buf);
    EXPECT_EQ(Ref.firstMismatch(*Gen, 1e-4f, 1e-3f), -1)
        << "mismatch in " << Buf;
  }
  std::remove(SrcPath.c_str());
  std::remove(BinPath.c_str());
  std::remove(InPath.c_str());
  std::remove(OutPath.c_str());
}

TEST(CodegenTest, EmissionIsByteStable) {
  // The JIT backend keys its shared-object cache on a content hash of the
  // generated source, so emission must be byte-identical run to run:
  // separate compilations of the same net — fresh Program objects, fresh
  // allocator layouts — have to produce the same bytes from both the
  // standalone generator and the JIT task generator. Any iteration over a
  // pointer- or hash-ordered container in either emitter breaks this.
  std::unique_ptr<Net> N(makeConvNet(2));
  CompileOptions Opts;
  Opts.TileSize = 2;
  Opts.MinRowsToTile = 2;
  Opts.Jit = true;
  Program P1 = compile(*N, Opts);
  Program P2 = compile(*N, Opts);
  EXPECT_EQ(generateCpp(P1), generateCpp(P2));
  JitSource J1 = generateJitSource(P1);
  JitSource J2 = generateJitSource(P2);
  EXPECT_EQ(J1.Source, J2.Source);
  ASSERT_EQ(J1.Forward.size(), J2.Forward.size());
  for (size_t I = 0; I < J1.Forward.size(); ++I) {
    EXPECT_EQ(J1.Forward[I].Symbol, J2.Forward[I].Symbol);
    EXPECT_EQ(J1.Forward[I].Jittable, J2.Forward[I].Jittable);
  }
}

TEST(CodegenTest, TiledLoopsAppearInSource) {
  std::unique_ptr<Net> N(makeConvNet(2));
  CompileOptions Opts;
  Opts.TileSize = 2;
  Opts.MinRowsToTile = 2;
  std::string Src = generateCpp(compile(*N, Opts));
  EXPECT_NE(Src.find("// tiled loop over y"), std::string::npos);
  CompileOptions NoTiling;
  NoTiling.Tiling = false;
  std::string Src2 = generateCpp(compile(*N, NoTiling));
  EXPECT_EQ(Src2.find("// tiled loop over y"), std::string::npos);
}
