//===- tests/compiler/fidelity_test.cpp -----------------------*- C++ -*-===//
///
/// Paper-fidelity tests: a hand-written Figure 5 mapping function (not
/// the library helper) is recognized by analysis and pattern-matched to
/// GEMM; the C++ backend emits correct code for interpreted (custom
/// neuron) programs; learning-rate multipliers flow from Param
/// declarations to the solver.
///
//===----------------------------------------------------------------------===//

#include "compiler/codegen_cpp.h"
#include "compiler/compiler.h"
#include "core/layers/layers.h"
#include "engine/executor.h"
#include "solvers/solvers.h"
#include "support/ltd_format.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace latte;
using namespace latte::compiler;
using namespace latte::core;
using namespace latte::engine;
using namespace latte::layers;

TEST(FidelityTest, HandWrittenFigure5MappingIsMatched) {
  // A user writes the Figure 5 mapping directly as a lambda instead of
  // using the library helper; probing-based analysis recovers the same
  // structure and the ensemble still lowers to GEMM.
  const int64_t Channels = 2, Kernel = 3, Stride = 1, Pad = 1;
  Net Net(1);
  Ensemble *Data = DataLayer(Net, "data", Shape{Channels, 8, 8});
  const NeuronType *T = standardType(Net, "WeightedNeuron");
  Ensemble *Conv = Net.addEnsemble("conv", Shape{4, 8, 8}, T);
  FieldStorage Weights;
  Weights.StorageDims = Shape{4};
  Weights.ElemDims = Shape{Channels * Kernel * Kernel};
  Weights.Map = [](const std::vector<int64_t> &Sink) {
    return std::vector<int64_t>{Sink[0]};
  };
  Weights.Init = FieldInitKind::Xavier;
  Weights.FanIn = Channels * Kernel * Kernel;
  Conv->setFieldStorage("weights", std::move(Weights));
  FieldStorage Bias;
  Bias.StorageDims = Shape{4};
  Bias.ElemDims = Shape{1};
  Bias.Map = [](const std::vector<int64_t> &Sink) {
    return std::vector<int64_t>{Sink[0]};
  };
  Conv->setFieldStorage("bias", std::move(Bias));

  // Figure 5, 0-based: in_x = x*stride - pad; window covers all channels.
  Net.addConnections(Data, Conv, [=](const std::vector<int64_t> &Index) {
    int64_t InY = Index[1] * Stride - Pad;
    int64_t InX = Index[2] * Stride - Pad;
    return std::vector<Range>{{0, Channels},
                              {InY, InY + Kernel},
                              {InX, InX + Kernel}};
  });

  Program P = compile(Net);
  EXPECT_TRUE(P.Report.gemmMatched("conv"));
  EXPECT_TRUE(P.Report.InterpretedEnsembles.empty());

  // And it agrees numerically with the library-built equivalent.
  core::Net Ref(1);
  Ensemble *RData = DataLayer(Ref, "data", Shape{Channels, 8, 8});
  ConvolutionLayer(Ref, "conv", RData, 4, Kernel, Stride, Pad);
  Executor A(std::move(P)), B(compile(Ref));
  A.initParams(5);
  B.initParams(5);
  Rng R(77);
  Tensor In(Shape{1, Channels, 8, 8});
  R.fillGaussian(In, 0.0f, 1.0f);
  A.setInput(In);
  B.setInput(In);
  B.writeBuffer("conv_weights", A.readBuffer("conv_weights"));
  B.writeBuffer("conv_bias", A.readBuffer("conv_bias"));
  A.forward();
  B.forward();
  EXPECT_EQ(A.readBuffer("conv_value")
                .firstMismatch(B.readBuffer("conv_value"), 1e-5f, 1e-4f),
            -1);
}

TEST(FidelityTest, CodegenHandlesInterpretedNeurons) {
  // A PReLU (no pattern matches it) goes through the synthesized SoA loop
  // nests; the C++ backend must emit those loops and agree with the
  // engine.
  Net Net(2);
  Ensemble *Data = DataLayer(Net, "data", Shape{5});
  Ensemble *Fc = FullyConnectedLayer(Net, "fc", Data, 6);
  Ensemble *Act = PReluLayer(Net, "prelu", Fc);
  Ensemble *Out = FullyConnectedLayer(Net, "out", Act, 3);
  Ensemble *Labels = LabelLayer(Net, "labels");
  SoftmaxLossLayer(Net, "loss", Out, Labels);
  Program P = compile(Net);
  ASSERT_FALSE(P.Report.InterpretedEnsembles.empty());

  Executor Ex(compile(Net));
  Ex.initParams(99);
  Rng R(3);
  Tensor In(Shape{2, 5});
  R.fillGaussian(In, 0.0f, 1.0f);
  Ex.setInput(In);
  Tensor L(Shape{2, 1});
  L.at(0) = 2.0f;
  Ex.setLabels(L);
  Ex.forward();
  Ex.backward();

  std::string Dir = testing::TempDir();
  std::string SrcPath = Dir + "/latte_interp.cpp";
  std::string BinPath = Dir + "/latte_interp_bin";
  std::string InPath = Dir + "/latte_interp_in.ltd";
  std::string OutPath = Dir + "/latte_interp_out.ltd";
  ASSERT_TRUE(writeGeneratedProgram(P, SrcPath));

  std::vector<std::pair<std::string, Tensor>> Inputs;
  Inputs.emplace_back("data_value", In);
  Tensor Lab(Shape{2});
  Lab.at(0) = 2.0f;
  Inputs.emplace_back("labels_value", Lab);
  for (const BufferInfo &B : P.Buffers)
    if (B.Role == BufferRole::Param)
      Inputs.emplace_back(B.Name, Ex.readBuffer(B.Name));
  ASSERT_TRUE(writeLtdFile(InPath, Inputs));

  ASSERT_EQ(std::system(("g++ -O2 -fopenmp -o " + BinPath + " " + SrcPath +
                         " 2>" + Dir + "/latte_interp_err.txt")
                            .c_str()),
            0);
  ASSERT_EQ(std::system(
                (BinPath + " " + InPath + " " + OutPath + " fwdbwd").c_str()),
            0);
  auto Outputs = readLtdFile(OutPath);
  for (const char *Buf : {"prelu_value", "prelu_grad_slope",
                          "fc_grad_weights", "loss_loss"}) {
    const Tensor *Gen = nullptr;
    for (const auto &[Name, T] : Outputs)
      if (Name == Buf)
        Gen = &T;
    ASSERT_NE(Gen, nullptr) << Buf;
    Tensor Ref = Ex.readBuffer(Buf);
    EXPECT_EQ(Ref.firstMismatch(*Gen, 1e-4f, 1e-3f), -1) << Buf;
  }
  std::remove(SrcPath.c_str());
  std::remove(BinPath.c_str());
  std::remove(InPath.c_str());
  std::remove(OutPath.c_str());
}

TEST(FidelityTest, BiasLearningRateMultiplierReachesSolver) {
  // Figure 4 declares Param(:weights, 1.0) and Param(:bias, 2.0); the
  // WeightedNeuron field specs carry those multipliers into the solver.
  Net Net(2);
  Ensemble *Data = DataLayer(Net, "data", Shape{3});
  FullyConnectedLayer(Net, "fc", Data, 2);
  Program P = compile(Net);
  float WeightsMult = 0, BiasMult = 0;
  for (const ParamBinding &B : P.Params) {
    if (B.Param == "fc_weights")
      WeightsMult = B.LrMult;
    if (B.Param == "fc_bias")
      BiasMult = B.LrMult;
  }
  EXPECT_FLOAT_EQ(WeightsMult, 1.0f);
  EXPECT_FLOAT_EQ(BiasMult, 2.0f);

  // An SGD step moves the bias twice as fast for equal gradients.
  Executor Ex(std::move(P));
  Ex.initParams(1);
  Tensor G(Ex.shape("fc_grad_weights"));
  G.fill(1.0f);
  Ex.writeBuffer("fc_grad_weights", G);
  Tensor Gb(Ex.shape("fc_grad_bias"));
  Gb.fill(1.0f);
  Ex.writeBuffer("fc_grad_bias", Gb);
  Tensor W0 = Ex.readBuffer("fc_weights");
  Tensor B0 = Ex.readBuffer("fc_bias");
  solvers::SolverParameters SP;
  SP.Lr = solvers::LRPolicy::fixed(0.1);
  SP.Momentum = solvers::MomPolicy::fixed(0.0);
  solvers::SgdSolver S(SP);
  S.step(Ex, 0);
  EXPECT_NEAR(Ex.readBuffer("fc_weights").at(0), W0.at(0) - 0.1f, 1e-6f);
  EXPECT_NEAR(Ex.readBuffer("fc_bias").at(0), B0.at(0) - 0.2f, 1e-6f);
}
