//===- tests/compiler/recompute_test.cpp ----------------------*- C++ -*-===//
///
/// Unit tests for the recompute (rematerialization) pass
/// (compiler/recompute.h): the shipped conv models actually rematerialize
/// their im2col gather buffers (clone inserted, two-interval lifetime, no
/// boundary retention), the CompileOptions::Recompute switch restores the
/// retained behavior, the legality gates reject multi-consumer and impure
/// producers, and the measured arena saving on the unfused VGG group-3
/// stack meets the floor the pass was built for. The arena numbers are
/// deterministic (the plan depends only on the program, not the machine),
/// so the floor is asserted exactly like memplan_test's savings bounds.
///
//===----------------------------------------------------------------------===//

#include "analyze/effects.h"
#include "analyze/verifier.h"
#include "compiler/compiler.h"
#include "compiler/memplan.h"
#include "compiler/recompute.h"
#include "ir/visitor.h"
#include "models/models.h"
#include "support/casting.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

using namespace latte;
using namespace latte::compiler;

namespace {

Program compileModel(const models::ModelSpec &Spec, int64_t Batch,
                     const CompileOptions &Opts) {
  core::Net Net(Batch);
  models::buildLatte(Net, Spec, /*WithLoss=*/true);
  return compile(Net, Opts);
}

bool unitTouches(const ir::Stmt *Unit, const analyze::BufferTable &Bufs,
                 const std::string &Root, bool WriteOnly) {
  analyze::UnitEffects E = analyze::collectUnitEffects(Unit, Bufs, nullptr);
  auto It = E.Effects.Buffers.find(Root);
  if (It == E.Effects.Buffers.end())
    return false;
  for (const analyze::Access &A : It->second)
    if (WriteOnly ? A.Write : (A.Read || A.Write))
      return true;
  return false;
}

/// Index of the first top-level unit of \p Block touching \p Root.
int findUnit(const ir::Stmt *Block, const analyze::BufferTable &Bufs,
             const std::string &Root, bool WriteOnly) {
  const auto *B = static_cast<const ir::BlockStmt *>(Block);
  for (size_t I = 0; I < B->stmts().size(); ++I)
    if (unitTouches(B->stmts()[I].get(), Bufs, Root, WriteOnly))
      return static_cast<int>(I);
  return -1;
}

} // namespace

TEST(RecomputeTest, ConvGatherIsRematerializedIntoBackward) {
  // Default options: recompute on. The padded conv stack materializes an
  // im2col inputs buffer whose only backward reader is the weight-gradient
  // GEMM — exactly the shape the pass targets.
  Program P = compileModel(models::vggFirstThreeLayers(0.06), 2, {});
  ASSERT_TRUE(P.Plan.Valid);
  ASSERT_FALSE(P.Recomputes.empty());

  const auto *Bwd = static_cast<const ir::BlockStmt *>(P.Backward.get());
  ASSERT_EQ(P.BackwardTasks.size(), Bwd->stmts().size())
      << "task labels must stay parallel to the backward block";

  for (const RecomputeInfo &RI : P.Recomputes) {
    // The clone sits in backward strictly before its consumer.
    ASSERT_GE(RI.BackwardUnit, 0);
    ASSERT_LT(RI.BackwardUnit, RI.ConsumerUnit);
    ASSERT_LT(static_cast<size_t>(RI.ConsumerUnit), Bwd->stmts().size());
    EXPECT_EQ(P.BackwardTasks[RI.BackwardUnit].Name,
              "recompute[" + RI.Buffer + "]");
    EXPECT_GT(RI.Flops, 0);
    EXPECT_GT(RI.Bytes, 0);

    // The planner gave the root two disjoint intervals instead of
    // whole-timeline retention, and no longer guarantees it at exit.
    const BufferLifetime *L = nullptr;
    for (const BufferLifetime &Cand : P.Plan.Lifetimes)
      if (Cand.Name == RI.Buffer)
        L = &Cand;
    ASSERT_NE(L, nullptr) << RI.Buffer;
    EXPECT_TRUE(L->Recomputed) << RI.Buffer;
    ASSERT_GE(L->Live2Begin, 0) << RI.Buffer;
    EXPECT_GT(L->Live2Begin, L->LiveEnd) << RI.Buffer;
    // No longer boundary-retained: the root joined the interval class
    // (its bytes may still survive to exit when nothing reuses them, so
    // retainedAtExit is not the property to test here).
    EXPECT_FALSE(L->Retained) << RI.Buffer;
    EXPECT_FALSE(L->Pinned) << RI.Buffer;
  }
}

TEST(RecomputeTest, RecomputeOffRetainsGatherAcrossBoundary) {
  Program On = compileModel(models::vggFirstThreeLayers(0.06), 2, {});
  ASSERT_FALSE(On.Recomputes.empty());

  CompileOptions Opts;
  Opts.Recompute = false;
  Program Off = compileModel(models::vggFirstThreeLayers(0.06), 2, Opts);
  ASSERT_TRUE(Off.Plan.Valid);
  EXPECT_TRUE(Off.Recomputes.empty());

  // Every buffer the on-build rematerialized is back to single-interval
  // boundary retention when the pass is disabled.
  for (const RecomputeInfo &RI : On.Recomputes) {
    EXPECT_TRUE(Off.Plan.retainedAtExit(RI.Buffer)) << RI.Buffer;
    for (const BufferLifetime &L : Off.Plan.Lifetimes)
      if (L.Name == RI.Buffer) {
        EXPECT_FALSE(L.Recomputed) << RI.Buffer;
        EXPECT_LT(L.Live2Begin, 0) << RI.Buffer;
      }
  }
  // Backward gained exactly one clone unit per rematerialized buffer.
  const auto *BwdOn = static_cast<const ir::BlockStmt *>(On.Backward.get());
  const auto *BwdOff = static_cast<const ir::BlockStmt *>(Off.Backward.get());
  EXPECT_EQ(BwdOn->stmts().size(),
            BwdOff->stmts().size() + On.Recomputes.size());
}

// Regression: a recomputed root has TWO live intervals, and the verifier
// must compare the clone's write footprints against the forward
// producer's instead of trusting the first interval. A clone that
// re-gathers fewer rows than the producer wrote silently truncates the
// second interval — plan.recompute.coverage has to catch it.
TEST(RecomputeTest, TruncatedRecomputeCloneFailsCoverage) {
  Program P = compileModel(models::vggFirstThreeLayers(0.06), 2, {});
  ASSERT_FALSE(P.Recomputes.empty());
  ASSERT_FALSE(analyze::verifyProgram(P).hasErrors());

  // Halve the RowCount of the clone's im2col re-gather: its write
  // footprint becomes a strict subset of the forward unit's.
  const RecomputeInfo &RI = P.Recomputes.front();
  auto *Bwd = static_cast<ir::BlockStmt *>(P.Backward.get());
  bool Shrunk = false;
  ir::walkStmts(Bwd->stmts()[RI.BackwardUnit].get(), [&](ir::Stmt *S) {
    auto *K = dyn_cast<ir::KernelCallStmt>(S);
    if (!K || K->kernel() != ir::KernelKind::Im2ColRows || Shrunk)
      return;
    int64_t &RowCount = K->intArgs()[6];
    ASSERT_GT(RowCount, 1);
    RowCount /= 2;
    Shrunk = true;
  });
  ASSERT_TRUE(Shrunk) << "clone has no im2col gather to truncate";

  analyze::DiagnosticReport R = analyze::verifyProgram(P);
  EXPECT_TRUE(R.hasErrors());
  EXPECT_TRUE(R.hasCode("plan.recompute.coverage")) << R.render();
}

TEST(RecomputeTest, SecondBackwardConsumerDisqualifiesTheBuffer) {
  // Learn the candidate set from a normal build, then rebuild without the
  // pass, append a cloned copy of each candidate's consumer unit (a second
  // backward reader), and re-run the pass directly: every former candidate
  // must now be rejected — recomputing for one consumer while another
  // still reads the retained bytes would be unsound.
  Program On = compileModel(models::vggFirstThreeLayers(0.06), 2, {});
  ASSERT_FALSE(On.Recomputes.empty());

  CompileOptions Opts;
  Opts.Recompute = false;
  Program P = compileModel(models::vggFirstThreeLayers(0.06), 2, Opts);
  analyze::BufferTable Bufs(P);
  auto *Bwd = static_cast<ir::BlockStmt *>(P.Backward.get());
  for (const RecomputeInfo &RI : On.Recomputes) {
    int Consumer = findUnit(Bwd, Bufs, RI.Buffer, /*WriteOnly=*/false);
    ASSERT_GE(Consumer, 0) << RI.Buffer;
    Bwd->append(Bwd->stmts()[Consumer]->clone());
    P.BackwardTasks.push_back(P.BackwardTasks[Consumer]);
  }

  EXPECT_EQ(recomputeGathers(P), 0);
  EXPECT_TRUE(P.Recomputes.empty());
}

TEST(RecomputeTest, ImpureProducerDisqualifiesTheBuffer) {
  // Wrap each candidate's forward producer so it also writes the buffer
  // through a raw Store: the effects-proven purity split now sees a
  // non-gather write to the root and must reject the candidate instead of
  // cloning a unit whose non-kernel writes it cannot reproduce.
  Program On = compileModel(models::vggFirstThreeLayers(0.06), 2, {});
  ASSERT_FALSE(On.Recomputes.empty());

  CompileOptions Opts;
  Opts.Recompute = false;
  Program P = compileModel(models::vggFirstThreeLayers(0.06), 2, Opts);
  analyze::BufferTable Bufs(P);
  auto *Fwd = static_cast<ir::BlockStmt *>(P.Forward.get());
  for (const RecomputeInfo &RI : On.Recomputes) {
    int Producer = findUnit(Fwd, Bufs, RI.Buffer, /*WriteOnly=*/true);
    ASSERT_GE(Producer, 0) << RI.Buffer;
    std::vector<ir::StmtPtr> Wrapped;
    Wrapped.push_back(std::move(Fwd->stmts()[Producer]));
    std::vector<ir::ExprPtr> Idx;
    Idx.push_back(std::make_unique<ir::IntConstExpr>(0));
    Wrapped.push_back(std::make_unique<ir::StoreStmt>(
        RI.Buffer, std::move(Idx), ir::AccumKind::Assign,
        std::make_unique<ir::FloatConstExpr>(0.0)));
    Fwd->stmts()[Producer] =
        std::make_unique<ir::BlockStmt>(std::move(Wrapped));
  }

  EXPECT_EQ(recomputeGathers(P), 0);
  EXPECT_TRUE(P.Recomputes.empty());
}

TEST(RecomputeTest, UnfusedVggGroup3MeetsArenaSavingsFloor) {
  // The acceptance fixture: three stacked 128->256-channel convs whose
  // im2col buffers dominate retention. With recompute on, the planned
  // arena must come in at least 10% under the recompute-off plan — the
  // headline sublinear-memory claim, asserted as a deterministic floor.
  CompileOptions Base;
  Base.Fusion = false;
  CompileOptions NoRecompute = Base;
  NoRecompute.Recompute = false;

  Program On = compileModel(models::vggGroup(3), 2, Base);
  Program Off = compileModel(models::vggGroup(3), 2, NoRecompute);
  ASSERT_TRUE(On.Plan.Valid);
  ASSERT_TRUE(Off.Plan.Valid);
  ASSERT_FALSE(On.Recomputes.empty());

  EXPECT_LE(static_cast<double>(On.Plan.ArenaBytes),
            0.90 * static_cast<double>(Off.Plan.ArenaBytes))
      << "recompute-on arena " << On.Plan.ArenaBytes
      << " vs recompute-off arena " << Off.Plan.ArenaBytes;
}
