//===- tests/compiler/property_sweep_test.cpp -----------------*- C++ -*-===//
///
/// Parameterized property sweeps: convolution configurations (kernel,
/// stride, pad, channels) checked for baseline agreement and correct
/// gradients; matched-vs-interpreted equivalence of the elementwise
/// ensembles; dropout semantics; standalone softmax backward.
///
//===----------------------------------------------------------------------===//

#include "baselines/caffe/caffe.h"
#include "compiler/compiler.h"
#include "core/layers/layers.h"
#include "engine/executor.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

using namespace latte;
using namespace latte::compiler;
using namespace latte::core;
using namespace latte::engine;
using namespace latte::layers;

namespace {

Tensor randomTensor(Shape S, uint64_t Seed) {
  Rng R(Seed);
  Tensor T(std::move(S));
  R.fillGaussian(T, 0.0f, 1.0f);
  return T;
}

} // namespace

// (kernel, stride, pad, inChannels, filters)
class ConvSweepTest
    : public testing::TestWithParam<std::tuple<int, int, int, int, int>> {};

TEST_P(ConvSweepTest, MatchesCaffeAndGradChecks) {
  auto [Kernel, Stride, Pad, InC, Filters] = GetParam();
  const int64_t H = 9, Batch = 2;
  if ((H + 2 * Pad - Kernel) / Stride + 1 <= 0)
    GTEST_SKIP() << "degenerate geometry";

  // Latte net: conv -> loss over flattened logits via FC to keep the loss
  // scalar well-defined.
  Net Net(Batch);
  Ensemble *Data = DataLayer(Net, "data", Shape{InC, H, H});
  Ensemble *Conv =
      ConvolutionLayer(Net, "conv", Data, Filters, Kernel, Stride, Pad);
  Ensemble *Fc = FullyConnectedLayer(Net, "fc", Conv, 3);
  Ensemble *Labels = LabelLayer(Net, "labels");
  SoftmaxLossLayer(Net, "loss", Fc, Labels);
  Program P = compile(Net);
  EXPECT_TRUE(P.Report.gemmMatched("conv"));
  Executor Ex(std::move(P));
  Ex.initParams(101);

  Tensor In = randomTensor(Shape{Batch, InC, H, H}, 7);
  Ex.setInput(In);
  Tensor L(Shape{Batch, 1});
  L.at(1) = 1.0f;
  Ex.setLabels(L);
  Ex.forward();

  // Caffe baseline with the same parameters agrees on the conv output.
  caffe::CaffeNet C(Batch);
  C.setInputShape(Shape{InC, H, H});
  auto *CL = C.addLayer(std::make_unique<caffe::ConvolutionLayer>(
      "conv", Filters, Kernel, Stride, Pad));
  C.setup(1);
  Tensor W = Ex.readBuffer("conv_weights");
  W.reshape(CL->params()[0].Data.shape());
  CL->params()[0].Data = W;
  Tensor B = Ex.readBuffer("conv_bias");
  B.reshape(CL->params()[1].Data.shape());
  CL->params()[1].Data = B;
  C.inputBlob().Data = In;
  C.forward();
  Tensor LatteOut = Ex.readBuffer("conv_value");
  EXPECT_EQ(C.outputBlob().Data.firstMismatch(LatteOut, 1e-4f, 1e-3f), -1);

  // Finite-difference gradient check on a few weight elements.
  Ex.backward();
  Tensor Grad = Ex.readBuffer("conv_grad_weights");
  Tensor Wl = Ex.readBuffer("conv_weights");
  const float Eps = 1e-2f;
  int64_t Step = std::max<int64_t>(1, Wl.numElements() / 4);
  for (int64_t I = 0; I < Wl.numElements(); I += Step) {
    float Orig = Wl.at(I);
    Wl.at(I) = Orig + Eps;
    Ex.writeBuffer("conv_weights", Wl);
    Ex.forward();
    double Plus = Ex.lossValue();
    Wl.at(I) = Orig - Eps;
    Ex.writeBuffer("conv_weights", Wl);
    Ex.forward();
    double Minus = Ex.lossValue();
    Wl.at(I) = Orig;
    Ex.writeBuffer("conv_weights", Wl);
    EXPECT_NEAR(Grad.at(I), (Plus - Minus) / (2 * Eps), 5e-3)
        << "element " << I;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvSweepTest,
    testing::Values(std::make_tuple(1, 1, 0, 1, 4),  // 1x1 conv
                    std::make_tuple(3, 1, 1, 2, 3),  // "same" conv
                    std::make_tuple(3, 2, 0, 2, 3),  // strided
                    std::make_tuple(2, 2, 0, 3, 2),  // non-overlapping
                    std::make_tuple(5, 1, 2, 1, 2),  // large kernel
                    std::make_tuple(3, 3, 1, 2, 2))); // stride > 1 with pad

TEST(InterpretedEquivalenceTest, ElementwiseEnsembles) {
  // Sum/Mul/Sub ensembles produce identical numerics whether matched to
  // kernels or run through the synthesized interpreter path.
  auto Run = [](bool Matched) {
    Net Net(2);
    Ensemble *A = DataLayer(Net, "a", Shape{6});
    Ensemble *Fc1 = FullyConnectedLayer(Net, "fc1", A, 6);
    Ensemble *Fc2 = FullyConnectedLayer(Net, "fc2", A, 6);
    Ensemble *Sum = AddLayer(Net, "sum", {Fc1, Fc2});
    Ensemble *Prod = MulLayer(Net, "prod", Sum, Fc1);
    Ensemble *Diff = SubLayer(Net, "diff", Prod, Fc2);
    Ensemble *Out = FullyConnectedLayer(Net, "out", Diff, 3);
    Ensemble *Labels = LabelLayer(Net, "labels");
    SoftmaxLossLayer(Net, "loss", Out, Labels);
    CompileOptions Opts;
    Opts.PatternMatchKernels = Matched;
    Program P = compile(Net, Opts);
    if (Matched) {
      EXPECT_TRUE(P.Report.InterpretedEnsembles.size() <= 1)
          << "only SubNeuron may stay interpreted";
    } else {
      EXPECT_GE(P.Report.InterpretedEnsembles.size(), 3u);
    }
    Executor Ex(std::move(P));
    Ex.initParams(11);
    Ex.setInput(randomTensor(Shape{2, 6}, 5));
    Tensor L(Shape{2, 1});
    L.at(0) = 2.0f;
    Ex.setLabels(L);
    Ex.forward();
    Ex.backward();
    return std::make_pair(Ex.readBuffer("diff_value"),
                          Ex.readBuffer("fc1_grad_weights"));
  };
  auto [V1, G1] = Run(true);
  auto [V2, G2] = Run(false);
  EXPECT_EQ(V1.firstMismatch(V2, 1e-5f, 1e-4f), -1);
  EXPECT_EQ(G1.firstMismatch(G2, 1e-5f, 1e-4f), -1);
}

TEST(DropoutTest, MaskScalesSurvivors) {
  Net Net(4);
  Ensemble *Data = DataLayer(Net, "data", Shape{64});
  DropoutLayer(Net, "drop", Data, /*KeepProb=*/0.5);
  Executor Ex(compile(Net));
  Tensor In(Shape{4, 64});
  In.fill(1.0f);
  Ex.setInput(In);
  Ex.forward();
  Tensor Out = Ex.readBuffer("drop_value");
  int64_t Kept = 0;
  for (int64_t I = 0; I < Out.numElements(); ++I) {
    // Survivors are scaled by 1/keep; victims are exactly zero.
    EXPECT_TRUE(Out.at(I) == 0.0f || std::fabs(Out.at(I) - 2.0f) < 1e-6f);
    Kept += Out.at(I) != 0.0f;
  }
  double KeepRate = static_cast<double>(Kept) / Out.numElements();
  EXPECT_NEAR(KeepRate, 0.5, 0.12);
}

TEST(DropoutTest, BackwardRoutesThroughMask) {
  Net Net(2);
  Ensemble *Data = DataLayer(Net, "data", Shape{8});
  Ensemble *Drop = DropoutLayer(Net, "drop", Data, 0.5);
  Ensemble *Fc = FullyConnectedLayer(Net, "fc", Drop, 2);
  Ensemble *Labels = LabelLayer(Net, "labels");
  SoftmaxLossLayer(Net, "loss", Fc, Labels);
  Executor Ex(compile(Net));
  Ex.initParams(3);
  Ex.setInput(randomTensor(Shape{2, 8}, 9));
  Tensor L(Shape{2, 1});
  Ex.setLabels(L);
  Ex.forward();
  Tensor Mask = Ex.readBuffer("drop_mask");
  Ex.backward();
  Tensor DataGrad = Ex.readBuffer("data_grad");
  for (int64_t I = 0; I < Mask.numElements(); ++I) {
    if (Mask.at(I) == 0.0f) {
      EXPECT_EQ(DataGrad.at(I), 0.0f) << "gradient leaked through mask";
    }
  }
}

TEST(SoftmaxLayerTest, StandaloneBackwardGradCheck) {
  // Softmax (not fused with a loss) exercises the full-Jacobian backward:
  // build softmax -> FC -> loss and gradient-check through it.
  Net Net(2);
  Ensemble *Data = DataLayer(Net, "data", Shape{5});
  Ensemble *Sm = SoftmaxLayer(Net, "sm", Data);
  Ensemble *Fc = FullyConnectedLayer(Net, "fc", Sm, 3);
  Ensemble *Labels = LabelLayer(Net, "labels");
  SoftmaxLossLayer(Net, "loss", Fc, Labels);
  Executor Ex(compile(Net));
  Ex.initParams(23);
  Tensor In = randomTensor(Shape{2, 5}, 13);
  Ex.setInput(In);
  Tensor L(Shape{2, 1});
  L.at(0) = 1.0f;
  Ex.setLabels(L);
  Ex.forward();
  Ex.backward();
  Tensor Grad = Ex.readBuffer("data_grad");

  const float Eps = 1e-2f;
  for (int64_t I = 0; I < In.numElements(); I += 3) {
    float Orig = In.at(I);
    In.at(I) = Orig + Eps;
    Ex.setInput(In);
    Ex.forward();
    double Plus = Ex.lossValue();
    In.at(I) = Orig - Eps;
    Ex.setInput(In);
    Ex.forward();
    double Minus = Ex.lossValue();
    In.at(I) = Orig;
    Ex.setInput(In);
    EXPECT_NEAR(Grad.at(I), (Plus - Minus) / (2 * Eps), 2e-3)
        << "element " << I;
  }
}

TEST(AvgPoolLayerTest, MatchedAndGradChecks) {
  Net Net(2);
  Ensemble *Data = DataLayer(Net, "data", Shape{2, 6, 6});
  Ensemble *Pool = AvgPoolingLayer(Net, "pool", Data, 2, 2);
  Ensemble *Fc = FullyConnectedLayer(Net, "fc", Pool, 2);
  Ensemble *Labels = LabelLayer(Net, "labels");
  SoftmaxLossLayer(Net, "loss", Fc, Labels);
  Program P = compile(Net);
  ASSERT_EQ(P.Report.MatchedPoolEnsembles.size(), 1u);
  Executor Ex(std::move(P));
  Ex.initParams(4);
  Tensor In = randomTensor(Shape{2, 2, 6, 6}, 21);
  Ex.setInput(In);
  Tensor L(Shape{2, 1});
  Ex.setLabels(L);
  Ex.forward();
  // Forward: each output is the mean of its window.
  Tensor Out = Ex.readBuffer("pool_value");
  float Expect = (In.at({0, 0, 0, 0}) + In.at({0, 0, 0, 1}) +
                  In.at({0, 0, 1, 0}) + In.at({0, 0, 1, 1})) /
                 4.0f;
  EXPECT_NEAR(Out.at(0), Expect, 1e-5f);

  Ex.backward();
  Tensor Grad = Ex.readBuffer("data_grad");
  const float Eps = 1e-2f;
  for (int64_t I = 0; I < 8; ++I) {
    float Orig = In.at(I);
    In.at(I) = Orig + Eps;
    Ex.setInput(In);
    Ex.forward();
    double Plus = Ex.lossValue();
    In.at(I) = Orig - Eps;
    Ex.setInput(In);
    Ex.forward();
    double Minus = Ex.lossValue();
    In.at(I) = Orig;
    Ex.setInput(In);
    EXPECT_NEAR(Grad.at(I), (Plus - Minus) / (2 * Eps), 2e-3);
  }
}
