//===- tests/engine/engine_test.cpp ---------------------------*- C++ -*-===//
///
/// Direct engine tests: hand-built Programs exercising each kernel-call
/// kind, interpreter statement forms (If, local scalars, min/max
/// accumulation), and the buffer-alias machinery, independent of the
/// compiler front end.
///
//===----------------------------------------------------------------------===//

#include "engine/executor.h"
#include "ir/builder.h"

#include <gtest/gtest.h>

using namespace latte;
using namespace latte::compiler;
using namespace latte::engine;
using namespace latte::ir;

namespace {

/// Minimal program scaffold: named float buffers + a forward block.
class ProgramBuilder {
public:
  ProgramBuilder &buffer(const std::string &Name, Shape Dims,
                         std::string AliasOf = "") {
    BufferInfo B;
    B.Name = Name;
    B.Dims = std::move(Dims);
    B.AliasOf = std::move(AliasOf);
    P.Buffers.push_back(std::move(B));
    return *this;
  }
  ProgramBuilder &table(const std::string &Name,
                        std::vector<int32_t> Entries) {
    IntBufferInfo T;
    T.Name = Name;
    T.Count = static_cast<int64_t>(Entries.size());
    T.Entries = std::move(Entries);
    P.IntBuffers.push_back(std::move(T));
    return *this;
  }
  Executor build(StmtPtr Forward) {
    P.BatchSize = 1;
    P.Forward = std::move(Forward);
    P.Backward = block();
    return Executor(std::move(P));
  }

private:
  Program P;
};

StmtPtr seq(std::vector<StmtPtr> Stmts) { return block(std::move(Stmts)); }

} // namespace

TEST(EngineTest, CopyAddScaleKernels) {
  std::vector<StmtPtr> S;
  S.push_back(kernelCall(KernelKind::Copy,
                         bufArgs(KernelBufArg("b"), KernelBufArg("a")),
                         {4}));
  S.push_back(kernelCall(KernelKind::AddTo,
                         bufArgs(KernelBufArg("b"), KernelBufArg("a")),
                         {4}));
  S.push_back(kernelCall(KernelKind::Scale, bufArgs(KernelBufArg("b")), {4},
                         {0.5}));
  ProgramBuilder PB;
  PB.buffer("a", Shape{4}).buffer("b", Shape{4});
  Executor Ex = PB.build(seq(std::move(S)));
  Tensor A(Shape{4});
  for (int I = 0; I < 4; ++I)
    A.at(I) = static_cast<float>(I + 1);
  Ex.writeBuffer("a", A);
  Ex.forward();
  // b = (a + a) * 0.5 == a.
  EXPECT_EQ(Ex.readBuffer("b").firstMismatch(A, 1e-6f), -1);
}

TEST(EngineTest, MulAddToKernel) {
  std::vector<StmtPtr> S;
  S.push_back(kernelCall(
      KernelKind::MulAddTo,
      bufArgs(KernelBufArg("d"), KernelBufArg("a"), KernelBufArg("b")),
      {3}));
  ProgramBuilder PB;
  PB.buffer("a", Shape{3}).buffer("b", Shape{3}).buffer("d", Shape{3});
  Executor Ex = PB.build(seq(std::move(S)));
  Tensor A(Shape{3}), B(Shape{3}), D(Shape{3});
  A.fill(2.0f);
  B.fill(3.0f);
  D.fill(1.0f);
  Ex.writeBuffer("a", A);
  Ex.writeBuffer("b", B);
  Ex.writeBuffer("d", D);
  Ex.forward();
  EXPECT_FLOAT_EQ(Ex.readBuffer("d").at(0), 7.0f);
}

TEST(EngineTest, RowAndColSums) {
  // src is 2x3: rows sums {6, 15}; col sums {5, 7, 9}.
  std::vector<StmtPtr> S;
  S.push_back(kernelCall(KernelKind::RowSumAdd,
                         bufArgs(KernelBufArg("rows"), KernelBufArg("src")),
                         {2, 3}));
  S.push_back(kernelCall(KernelKind::ColSumAdd,
                         bufArgs(KernelBufArg("cols"), KernelBufArg("src")),
                         {2, 3}));
  ProgramBuilder PB;
  PB.buffer("src", Shape{2, 3}).buffer("rows", Shape{2}).buffer("cols",
                                                                Shape{3});
  Executor Ex = PB.build(seq(std::move(S)));
  Tensor Src(Shape{2, 3});
  for (int I = 0; I < 6; ++I)
    Src.at(I) = static_cast<float>(I + 1);
  Ex.writeBuffer("src", Src);
  Ex.forward();
  EXPECT_FLOAT_EQ(Ex.readBuffer("rows").at(0), 6.0f);
  EXPECT_FLOAT_EQ(Ex.readBuffer("rows").at(1), 15.0f);
  EXPECT_FLOAT_EQ(Ex.readBuffer("cols").at(1), 7.0f);
}

TEST(EngineTest, GatherScatterRoundTripThroughTable) {
  // Table reverses a 4-vector; scatter-add sends it back.
  std::vector<StmtPtr> S;
  S.push_back(kernelCall(
      KernelKind::Gather2D,
      bufArgs(KernelBufArg("dst"), KernelBufArg("src"),
              KernelBufArg("tab")),
      {1, 4, 4}, {}, indexList(intConst(0))));
  S.push_back(kernelCall(
      KernelKind::ScatterAdd2D,
      bufArgs(KernelBufArg("back"), KernelBufArg("dst"),
              KernelBufArg("tab")),
      {1, 4, 4}, {}, indexList(intConst(0))));
  ProgramBuilder PB;
  PB.buffer("src", Shape{4}).buffer("dst", Shape{4}).buffer("back",
                                                            Shape{4});
  PB.table("tab", {3, 2, 1, 0});
  Executor Ex = PB.build(seq(std::move(S)));
  Tensor Src(Shape{4});
  for (int I = 0; I < 4; ++I)
    Src.at(I) = static_cast<float>(10 * (I + 1));
  Ex.writeBuffer("src", Src);
  Ex.forward();
  Tensor Dst = Ex.readBuffer("dst");
  EXPECT_FLOAT_EQ(Dst.at(0), 40.0f);
  EXPECT_FLOAT_EQ(Dst.at(3), 10.0f);
  // Scatter through the same permutation restores the original order.
  EXPECT_EQ(Ex.readBuffer("back").firstMismatch(Src, 1e-6f), -1);
}

TEST(EngineTest, InterpreterIfAndLocals) {
  // for i in 0..4: let m = src[i]; if (m < 0) dst[i] = -m else dst[i] = m
  std::vector<StmtPtr> Body;
  Body.push_back(decl("m", load("src", indexList(var("i")))));
  Body.push_back(ifStmt(
      compare(CompareOpKind::LT, var("m"), floatConst(0.0)),
      storeAssign("dst", indexList(var("i")), neg(var("m"))),
      storeAssign("dst", indexList(var("i")), var("m"))));
  StmtPtr Loop = forLoop("i", 4, block(std::move(Body)));
  ProgramBuilder PB;
  PB.buffer("src", Shape{4}).buffer("dst", Shape{4});
  Executor Ex = PB.build(std::move(Loop));
  Tensor Src(Shape{4});
  Src.at(0) = -2.0f;
  Src.at(1) = 3.0f;
  Src.at(2) = -0.5f;
  Src.at(3) = 0.0f;
  Ex.writeBuffer("src", Src);
  Ex.forward();
  Tensor Dst = Ex.readBuffer("dst");
  EXPECT_FLOAT_EQ(Dst.at(0), 2.0f);
  EXPECT_FLOAT_EQ(Dst.at(1), 3.0f);
  EXPECT_FLOAT_EQ(Dst.at(2), 0.5f);
  EXPECT_FLOAT_EQ(Dst.at(3), 0.0f);
}

TEST(EngineTest, InterpreterMinMaxAccumulation) {
  // dst[0] starts at +inf/-inf and accumulates min/max over src.
  std::vector<StmtPtr> S;
  S.push_back(storeAssign("mx", indexList(intConst(0)), floatConst(-1e30)));
  S.push_back(storeAssign("mn", indexList(intConst(0)), floatConst(1e30)));
  S.push_back(forLoop(
      "i", 5,
      seq([] {
        std::vector<StmtPtr> B;
        B.push_back(store("mx", indexList(intConst(0)),
                          AccumKind::MaxAssign,
                          load("src", indexList(var("i")))));
        B.push_back(store("mn", indexList(intConst(0)),
                          AccumKind::MinAssign,
                          load("src", indexList(var("i")))));
        return B;
      }())));
  ProgramBuilder PB;
  PB.buffer("src", Shape{5}).buffer("mx", Shape{1}).buffer("mn", Shape{1});
  Executor Ex = PB.build(seq(std::move(S)));
  Tensor Src(Shape{5});
  const float V[] = {3, -7, 2, 9, 0};
  for (int I = 0; I < 5; ++I)
    Src.at(I) = V[I];
  Ex.writeBuffer("src", Src);
  Ex.forward();
  EXPECT_FLOAT_EQ(Ex.readBuffer("mx").at(0), 9.0f);
  EXPECT_FLOAT_EQ(Ex.readBuffer("mn").at(0), -7.0f);
}

TEST(EngineTest, AliasChainsResolveToOneStorage) {
  ProgramBuilder PB;
  PB.buffer("owner", Shape{2, 3})
      .buffer("view1", Shape{6}, "owner")
      .buffer("view2", Shape{3, 2}, "view1"); // chain of aliases
  std::vector<StmtPtr> S;
  S.push_back(storeAssign("view2", indexList(intConst(2), intConst(1)),
                          floatConst(42.0)));
  Executor Ex = PB.build(seq(std::move(S)));
  Ex.forward();
  // view2[2,1] is linear element 5 of the shared storage.
  EXPECT_FLOAT_EQ(Ex.readBuffer("owner").at(5), 42.0f);
  EXPECT_FLOAT_EQ(Ex.readBuffer("view1").at(5), 42.0f);
}

TEST(EngineTest, TiledLoopExecutesAllTiles) {
  // tiled loop over 3 tiles of 2 rows: dst[t*2 + r] = t.
  StmtPtr Inner = forLoopFrom(
      "y", mul(var("t"), intConst(2)), 2,
      storeAssign("dst", indexList(var("y")),
                  var("t")));
  auto Tiled =
      std::make_unique<TiledLoopStmt>("t", "y", 3, 2, 1, std::move(Inner));
  ProgramBuilder PB;
  PB.buffer("dst", Shape{6});
  Executor Ex = PB.build(std::move(Tiled));
  Ex.forward();
  Tensor Dst = Ex.readBuffer("dst");
  const float Expect[] = {0, 0, 1, 1, 2, 2};
  for (int I = 0; I < 6; ++I)
    EXPECT_FLOAT_EQ(Dst.at(I), Expect[I]) << I;
}

TEST(EngineDeathTest, UnknownBufferIsFatal) {
  ProgramBuilder PB;
  PB.buffer("a", Shape{1});
  Executor Ex = PB.build(block());
  EXPECT_DEATH(Ex.readBuffer("nope"), "unknown buffer");
}
