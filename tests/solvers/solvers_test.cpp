//===- tests/solvers/solvers_test.cpp -------------------------*- C++ -*-===//

#include "compiler/compiler.h"
#include "core/layers/layers.h"
#include "data/datasets.h"
#include "engine/executor.h"
#include "models/models.h"
#include "solvers/solvers.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

using namespace latte;
using namespace latte::solvers;

TEST(LrPolicyTest, Fixed) {
  LRPolicy P = LRPolicy::fixed(0.1);
  EXPECT_DOUBLE_EQ(P.at(0), 0.1);
  EXPECT_DOUBLE_EQ(P.at(1000), 0.1);
}

TEST(LrPolicyTest, InvMatchesFormula) {
  // The Figure 7 policy: LRPolicy.Inv(0.01, 0.0001, 0.75).
  LRPolicy P = LRPolicy::inv(0.01, 0.0001, 0.75);
  EXPECT_DOUBLE_EQ(P.at(0), 0.01);
  EXPECT_NEAR(P.at(10000), 0.01 * std::pow(2.0, -0.75), 1e-12);
  EXPECT_GT(P.at(100), P.at(1000));
}

TEST(LrPolicyTest, StepAndExp) {
  LRPolicy St = LRPolicy::step(1.0, 0.5, 10);
  EXPECT_DOUBLE_EQ(St.at(9), 1.0);
  EXPECT_DOUBLE_EQ(St.at(10), 0.5);
  EXPECT_DOUBLE_EQ(St.at(25), 0.25);
  LRPolicy Ex = LRPolicy::exp(1.0, 0.9);
  EXPECT_NEAR(Ex.at(2), 0.81, 1e-12);
}

namespace {

/// A tiny learnable problem: logistic regression on two separable blobs.
engine::Executor makeBlobNet(int64_t Batch) {
  core::Net Net(Batch);
  auto *Data = layers::DataLayer(Net, "data", Shape{2});
  auto *Fc = layers::FullyConnectedLayer(Net, "fc", Data, 2);
  auto *Labels = layers::LabelLayer(Net, "labels");
  layers::SoftmaxLossLayer(Net, "loss", Fc, Labels);
  return engine::Executor(compiler::compile(Net));
}

BatchProvider blobBatches() {
  return [](int64_t Iter, Tensor &Data, Tensor &Labels) {
    Rng R(1000 + Iter);
    int64_t B = Data.shape().dim(0);
    for (int64_t I = 0; I < B; ++I) {
      int64_t L = R.uniformInt(2);
      Data.at(I * 2) = static_cast<float>((L ? 2.5 : -2.5) + R.gaussian());
      Data.at(I * 2 + 1) =
          static_cast<float>((L ? -2.0 : 2.0) + R.gaussian());
      Labels.at(I) = static_cast<float>(L);
    }
  };
}

double trainAndMeasure(Solver &S, int64_t Batch = 32) {
  engine::Executor Ex = makeBlobNet(Batch);
  Ex.initParams(5);
  TrainStats Last = solve(S, Ex, blobBatches());
  return Last.Accuracy;
}

} // namespace

TEST(SolverTest, SgdLearnsSeparableBlobs) {
  SolverParameters P;
  P.Lr = LRPolicy::fixed(0.1);
  P.Momentum = MomPolicy::fixed(0.9);
  P.MaxIters = 120;
  SgdSolver S(P);
  EXPECT_GE(trainAndMeasure(S), 0.85);
}

TEST(SolverTest, RmsPropLearns) {
  SolverParameters P;
  P.Lr = LRPolicy::fixed(0.01);
  P.MaxIters = 120;
  RmsPropSolver S(P);
  EXPECT_GE(trainAndMeasure(S), 0.85);
}

TEST(SolverTest, AdaGradLearns) {
  SolverParameters P;
  P.Lr = LRPolicy::fixed(0.1);
  P.MaxIters = 120;
  AdaGradSolver S(P);
  EXPECT_GE(trainAndMeasure(S), 0.85);
}

TEST(SolverTest, AdaDeltaLearns) {
  SolverParameters P;
  P.MaxIters = 200;
  AdaDeltaSolver S(P);
  EXPECT_GE(trainAndMeasure(S), 0.85);
}

TEST(SolverTest, WeightDecayShrinksWeights) {
  SolverParameters P;
  P.Lr = LRPolicy::fixed(0.1);
  P.Momentum = MomPolicy::fixed(0.0);
  P.ReguCoef = 0.5;
  P.MaxIters = 1;
  SgdSolver S(P);
  engine::Executor Ex = makeBlobNet(4);
  Ex.initParams(7);
  // Zero gradients, then a step must shrink weights by lr*regu fraction.
  Tensor W0 = Ex.readBuffer("fc_weights");
  Ex.forward();
  Ex.backward();
  // Overwrite gradients with zero to isolate the decay term.
  Tensor Z(Ex.shape("fc_grad_weights"));
  Ex.writeBuffer("fc_grad_weights", Z);
  Tensor Zb(Ex.shape("fc_grad_bias"));
  Ex.writeBuffer("fc_grad_bias", Zb);
  S.step(Ex, 0);
  Tensor W1 = Ex.readBuffer("fc_weights");
  for (int64_t I = 0; I < W0.numElements(); ++I)
    EXPECT_NEAR(W1.at(I), W0.at(I) * (1.0f - 0.1f * 0.5f), 1e-5f);
}

TEST(SolverTest, MomentumAcceleratesAlongConstantGradient) {
  SolverParameters P;
  P.Lr = LRPolicy::fixed(1.0);
  P.Momentum = MomPolicy::fixed(0.5);
  P.MaxIters = 1;
  SgdSolver S(P);
  engine::Executor Ex = makeBlobNet(4);
  Ex.initParams(7);
  Tensor W0 = Ex.readBuffer("fc_weights");
  // Constant gradient of 1 for two steps: velocities -1 then -1.5.
  Tensor G(Ex.shape("fc_grad_weights"));
  G.fill(1.0f);
  Ex.writeBuffer("fc_grad_weights", G);
  S.step(Ex, 0);
  Tensor W1 = Ex.readBuffer("fc_weights");
  EXPECT_NEAR(W1.at(0), W0.at(0) - 1.0f, 1e-5f);
  Ex.writeBuffer("fc_grad_weights", G);
  S.step(Ex, 1);
  Tensor W2 = Ex.readBuffer("fc_weights");
  EXPECT_NEAR(W2.at(0), W1.at(0) - 1.5f, 1e-5f);
}

TEST(DatasetTest, SyntheticMnistDeterministicAndLabeled) {
  data::SyntheticMnist Ds(100);
  EXPECT_EQ(Ds.itemDims(), Shape({1, 28, 28}));
  Tensor A(Ds.itemDims()), B(Ds.itemDims());
  int64_t La = Ds.fillItem(17, A.data());
  int64_t Lb = Ds.fillItem(17, B.data());
  EXPECT_EQ(La, Lb);
  EXPECT_EQ(La, 17 % 10);
  EXPECT_EQ(A.firstMismatch(B, 0.0f), -1);
  // Different items differ.
  Ds.fillItem(27, B.data());
  EXPECT_NE(A.firstMismatch(B, 1e-3f), -1);
}

TEST(DatasetTest, RandomImagesShapes) {
  data::RandomImages Ds(10, Shape{3, 8, 8}, 5);
  Tensor T(Ds.itemDims());
  EXPECT_EQ(Ds.fillItem(7, T.data()), 2);
  float Sum = 0;
  for (int64_t I = 0; I < T.numElements(); ++I)
    Sum += std::fabs(T.at(I));
  EXPECT_GT(Sum, 0.0f);
}

TEST(DatasetTest, LtdRoundTrip) {
  data::SyntheticMnist Ds(8, 42, 4, 12, 0.1f, 1);
  std::string Path = testing::TempDir() + "/mnist.ltd";
  ASSERT_TRUE(writeDatasetLtd(Ds, Path));
  data::MemoryDataset Loaded = data::readDatasetLtd(Path);
  EXPECT_EQ(Loaded.size(), 8);
  EXPECT_EQ(Loaded.itemDims(), Shape({1, 12, 12}));
  Tensor A(Ds.itemDims()), B(Loaded.itemDims());
  EXPECT_EQ(Ds.fillItem(3, A.data()), Loaded.fillItem(3, B.data()));
  EXPECT_EQ(A.firstMismatch(B, 0.0f), -1);
  std::remove(Path.c_str());
}

TEST(DatasetTest, MlpLearnsSyntheticMnist) {
  // End-to-end sanity: a small MLP reaches high accuracy quickly on the
  // synthetic digits (the full >99% run lives in the Figure 20 bench).
  data::SyntheticMnist Ds(512, 7, 10, 14, 0.15f, 1);
  core::Net Net(16);
  models::ModelSpec Spec = models::mlp(14 * 14, {64}, 10);
  Spec.InputDims = Shape{1, 14, 14};
  models::buildLatte(Net, Spec, true);
  engine::Executor Ex(compiler::compile(Net));
  Ex.initParams(3);

  SolverParameters P;
  P.Lr = LRPolicy::inv(0.05, 0.0001, 0.75);
  P.Momentum = MomPolicy::fixed(0.9);
  P.MaxIters = 150;
  SgdSolver S(P);
  solve(S, Ex, data::batchesOf(Ds));
  EXPECT_GE(data::evaluateAccuracy(Ex, Ds, 256), 0.95);
}
