//===- tests/serve/serve_test.cpp - Serving runtime tests -----------------===//
///
/// Covers the inference serving stack end to end: the micro-batcher's
/// flush triggers, EDF ordering, deadline shedding and prompt shutdown
/// failure, pointer-level weight sharing across replicas and batch sizes,
/// tail-batch padding correctness, the shape-polymorphic compile cache
/// (including single-flight under concurrent misses), asynchronous
/// shape-class installation and the cold-cache degradation ladder, the
/// forward-only memory plan, the inference/training bitwise-identity
/// guarantee across the verification lattice, and the training-only APIs'
/// rejection of inference programs.
///
//===----------------------------------------------------------------------===//

#include "core/layers/layers.h"
#include "serve/batcher.h"
#include "serve/server.h"
#include "support/timer.h"
#include "verify/gradcheck.h"
#include "verify/lattice.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <thread>

using namespace latte;
using namespace std::chrono_literals;

namespace {

models::ModelSpec testSpec() { return models::lenet(); }

Tensor randomItem(const Shape &Dims, uint64_t Seed) {
  Tensor T(Dims);
  Rng R(Seed);
  R.fillGaussian(T, 0.0f, 1.0f);
  return T;
}

serve::Request makeRequest() {
  serve::Request R;
  R.Input = Tensor(Shape{1});
  return R;
}

bool bitwiseEqual(const Tensor &A, const Tensor &B) {
  return A.numElements() == B.numElements() &&
         std::memcmp(A.data(), B.data(),
                     sizeof(float) * static_cast<size_t>(A.numElements())) ==
             0;
}

/// Clears the ProgramCache compile observer even when a test bails on a
/// fatal assertion.
struct ObserverGuard {
  explicit ObserverGuard(std::function<void(const std::string &)> Fn) {
    serve::ProgramCache::setCompileObserverForTests(std::move(Fn));
  }
  ~ObserverGuard() { serve::ProgramCache::setCompileObserverForTests(nullptr); }
};

} // namespace

// --- MicroBatcher ----------------------------------------------------------

TEST(MicroBatcher, FlushesImmediatelyWhenBatchFull) {
  serve::MicroBatcher B(4, std::chrono::microseconds(60'000'000), 64);
  for (int I = 0; I < 4; ++I)
    ASSERT_TRUE(B.enqueue(makeRequest()));
  // Flush deadline is a minute out: only the batch-full trigger can
  // release (default request deadlines are even further).
  std::vector<serve::Request> Batch = B.popBatch();
  EXPECT_EQ(Batch.size(), 4u);
  EXPECT_EQ(B.stats().FullFlushes, 1);
  EXPECT_EQ(B.stats().DeadlineFlushes, 0);
  B.stop();
}

TEST(MicroBatcher, DeadlineReleasesPartialBatch) {
  serve::MicroBatcher B(16, std::chrono::microseconds(2000), 64);
  for (int I = 0; I < 3; ++I)
    ASSERT_TRUE(B.enqueue(makeRequest()));
  Timer Wall;
  std::vector<serve::Request> Batch = B.popBatch();
  EXPECT_EQ(Batch.size(), 3u);
  // Released by the flush bound, not instantly and not never.
  EXPECT_GE(Wall.seconds(), 0.001);
  EXPECT_EQ(B.stats().DeadlineFlushes, 1);
  EXPECT_EQ(B.stats().FullFlushes, 0);
  B.stop();
}

TEST(MicroBatcher, PopsEarliestDeadlineFirst) {
  serve::MicroBatcher B(3, std::chrono::microseconds(60'000'000), 64);
  auto Now = std::chrono::steady_clock::now();
  // Marker in the input distinguishes the requests; deadlines arrive out
  // of order. All far enough out that nothing sheds.
  auto Mk = [&](float Marker, std::chrono::milliseconds Offset,
                serve::Priority Pri) {
    serve::Request R;
    R.Input = Tensor(Shape{1});
    R.Input.data()[0] = Marker;
    R.Pri = Pri;
    R.Deadline = Now + 60s + Offset;
    return R;
  };
  ASSERT_TRUE(B.enqueue(Mk(3, 300ms, serve::Priority::Bulk)));
  ASSERT_TRUE(B.enqueue(Mk(1, 100ms, serve::Priority::Interactive)));
  ASSERT_TRUE(B.enqueue(Mk(2, 200ms, serve::Priority::Standard)));
  std::vector<serve::Request> Batch = B.popBatch(); // batch-full at 3
  ASSERT_EQ(Batch.size(), 3u);
  EXPECT_EQ(Batch[0].Input.data()[0], 1.0f);
  EXPECT_EQ(Batch[1].Input.data()[0], 2.0f);
  EXPECT_EQ(Batch[2].Input.data()[0], 3.0f);
  serve::BatcherStats St = B.stats();
  EXPECT_EQ(St.EnqueuedByClass[0], 1);
  EXPECT_EQ(St.EnqueuedByClass[1], 1);
  EXPECT_EQ(St.EnqueuedByClass[2], 1);
  B.stop();
}

TEST(MicroBatcher, HopelessRequestsFailEarlyWithDeadlineShed) {
  serve::MicroBatcher B(8, std::chrono::microseconds(1000), 64);
  // Born expired: admitted (returns true) but failed on the spot.
  serve::Request R = makeRequest();
  R.Deadline = std::chrono::steady_clock::now() - 1ms;
  std::future<serve::Response> F = R.Result.get_future();
  EXPECT_TRUE(B.enqueue(std::move(R)));
  EXPECT_EQ(F.get().St, serve::Status::DeadlineShed);
  EXPECT_EQ(B.stats().DeadlineShed, 1);

  // Expires while queued: shed at pop time, never dispatched — the fresh
  // request still comes out.
  serve::Request Doomed = makeRequest();
  Doomed.Deadline = std::chrono::steady_clock::now() + 2ms;
  std::future<serve::Response> Fd = Doomed.Result.get_future();
  ASSERT_TRUE(B.enqueue(std::move(Doomed)));
  std::this_thread::sleep_for(5ms);
  serve::Request Fresh = makeRequest();
  Fresh.Input.data()[0] = 42.0f;
  Fresh.Deadline = std::chrono::steady_clock::now() + 60s;
  ASSERT_TRUE(B.enqueue(std::move(Fresh)));
  std::vector<serve::Request> Batch = B.popBatch();
  ASSERT_EQ(Batch.size(), 1u);
  EXPECT_EQ(Batch[0].Input.data()[0], 42.0f);
  EXPECT_EQ(Fd.get().St, serve::Status::DeadlineShed);
  EXPECT_EQ(B.stats().DeadlineShed, 2);
  B.stop();
}

TEST(MicroBatcher, ShedsAtCapacityAndFailsQueuedOnStop) {
  serve::MicroBatcher B(4, std::chrono::microseconds(1000), 2);
  serve::Request R1 = makeRequest(), R2 = makeRequest();
  std::future<serve::Response> F1 = R1.Result.get_future();
  std::future<serve::Response> F2 = R2.Result.get_future();
  EXPECT_TRUE(B.enqueue(std::move(R1)));
  EXPECT_TRUE(B.enqueue(std::move(R2)));
  EXPECT_FALSE(B.enqueue(makeRequest())); // over capacity, promise untouched
  B.stop();
  EXPECT_FALSE(B.enqueue(makeRequest())); // stopped
  EXPECT_EQ(B.stats().Shed, 2);
  // stop() does NOT serve a drain batch: queued requests fail promptly
  // with Shutdown (a caller blocked on the future resolves immediately),
  // and consumers see the empty termination signal.
  EXPECT_EQ(F1.get().St, serve::Status::Shutdown);
  EXPECT_EQ(F2.get().St, serve::Status::Shutdown);
  EXPECT_EQ(B.stats().ShutdownFailed, 2);
  EXPECT_TRUE(B.popBatch().empty());
}

TEST(MicroBatcher, StopUnblocksWaitingCallerPromptly) {
  // Regression pin for the shutdown drain bug: a caller blocked on a
  // queued request's future must resolve at stop() even though no
  // consumer ever pops — previously the request sat queued forever.
  serve::MicroBatcher B(16, std::chrono::microseconds(60'000'000), 64);
  serve::Request R = makeRequest();
  std::future<serve::Response> F = R.Result.get_future();
  ASSERT_TRUE(B.enqueue(std::move(R)));
  std::thread Stopper([&] {
    std::this_thread::sleep_for(20ms);
    B.stop();
  });
  EXPECT_EQ(F.wait_for(10s), std::future_status::ready);
  EXPECT_EQ(F.get().St, serve::Status::Shutdown);
  Stopper.join();
}

TEST(MicroBatcher, BlockedConsumerWakesOnEnqueue) {
  serve::MicroBatcher B(2, std::chrono::microseconds(50'000'000), 64);
  std::atomic<int> Got{-1};
  std::thread Consumer([&] {
    Got = static_cast<int>(B.popBatch().size());
  });
  ASSERT_TRUE(B.enqueue(makeRequest()));
  ASSERT_TRUE(B.enqueue(makeRequest()));
  Consumer.join();
  EXPECT_EQ(Got, 2);
  B.stop();
}

// --- ProgramCache ----------------------------------------------------------

TEST(ProgramCache, ConcurrentMissesOnOneKeyCompileOnce) {
  serve::ProgramCache &Cache = serve::ProgramCache::instance();
  models::ModelSpec Spec = testSpec();
  Spec.Name = "LeNet-singleflight-test"; // private cold key
  compiler::CompileOptions CO;
  constexpr int N = 6;
  serve::ProgramCache::Stats S0 = Cache.stats();
  // The leader's compile is held open until all N threads have missed, so
  // the followers demonstrably coalesce instead of racing past a warm key.
  ObserverGuard Guard([&](const std::string &) {
    Timer Wall;
    while (Cache.stats().Misses - S0.Misses < N && Wall.seconds() < 10.0)
      std::this_thread::sleep_for(1ms);
  });
  std::vector<serve::ProgramCache::ProgramPtr> Got(N);
  std::vector<std::thread> Threads;
  for (int I = 0; I < N; ++I)
    Threads.emplace_back(
        [&, I] { Got[I] = Cache.getOrCompile(Spec, CO, 4); });
  for (std::thread &T : Threads)
    T.join();
  serve::ProgramCache::Stats S1 = Cache.stats();
  EXPECT_EQ(S1.Compiles - S0.Compiles, 1) << "single-flight violated";
  EXPECT_EQ(S1.Misses - S0.Misses, N);
  EXPECT_EQ(S1.Coalesced - S0.Coalesced, N - 1);
  for (int I = 0; I < N; ++I) {
    ASSERT_NE(Got[I], nullptr);
    EXPECT_EQ(Got[I].get(), Got[0].get()) << "thread " << I;
  }
}

TEST(ProgramCache, DistinctKeysCompileInParallel) {
  serve::ProgramCache &Cache = serve::ProgramCache::instance();
  models::ModelSpec Spec = testSpec();
  Spec.Name = "LeNet-parallel-compile-test";
  compiler::CompileOptions CO;
  // Each compiling thread parks in the observer until it has seen the
  // other one arrive: both can only proceed if the cache mutex is not
  // held across compilation.
  std::atomic<int> Arrived{0};
  std::atomic<bool> Overlapped{false};
  ObserverGuard Guard([&](const std::string &) {
    ++Arrived;
    Timer Wall;
    while (Arrived.load() < 2 && Wall.seconds() < 10.0)
      std::this_thread::sleep_for(1ms);
    if (Arrived.load() >= 2)
      Overlapped = true;
  });
  std::thread A([&] { Cache.getOrCompile(Spec, CO, 2); });
  std::thread B([&] { Cache.getOrCompile(Spec, CO, 3); });
  A.join();
  B.join();
  EXPECT_TRUE(Overlapped) << "distinct keys serialized their compiles";
}

TEST(ProgramCache, LookupNeverCompiles) {
  serve::ProgramCache &Cache = serve::ProgramCache::instance();
  models::ModelSpec Spec = testSpec();
  Spec.Name = "LeNet-lookup-test";
  compiler::CompileOptions CO;
  serve::ProgramCache::Stats S0 = Cache.stats();
  EXPECT_EQ(Cache.lookup(Spec, CO, 2), nullptr);
  serve::ProgramCache::Stats S1 = Cache.stats();
  EXPECT_EQ(S1.Compiles, S0.Compiles);
  serve::ProgramCache::ProgramPtr P = Cache.getOrCompile(Spec, CO, 2);
  EXPECT_EQ(Cache.lookup(Spec, CO, 2).get(), P.get());
}

// --- Server ----------------------------------------------------------------

TEST(Server, SharesWeightPointersAcrossReplicasAndBatchSizes) {
  serve::ServeOptions SO;
  SO.Replicas = 2;
  SO.BatchSizes = {1, 4};
  serve::Server Srv(testSpec(), {}, SO);
  ASSERT_TRUE(Srv.waitAllClassesReady(60s));

  const compiler::Program &Prog = Srv.weightMaster().program();
  int Params = 0;
  for (const compiler::BufferInfo &B : Prog.Buffers) {
    if (B.Role != compiler::BufferRole::Param || !B.AliasOf.empty())
      continue;
    ++Params;
    const float *MasterPtr = Srv.weightMaster().data(B.Name);
    for (int R = 0; R < 2; ++R)
      for (int64_t BS : {int64_t(1), int64_t(4)})
        EXPECT_EQ(Srv.replicaExecutor(R, BS).data(B.Name), MasterPtr)
            << "replica " << R << " batch " << BS << " buffer " << B.Name;
  }
  // LeNet: conv1/conv2/fc1/classifier weights + biases.
  EXPECT_GE(Params, 4);
}

TEST(Server, TailBatchPaddingIsBitwiseCorrect) {
  // Only batch size 4 is compiled, so 3 submissions force a padded tail
  // batch once the flush deadline trips.
  serve::ServeOptions SO;
  SO.Replicas = 1;
  SO.BatchSizes = {4};
  SO.FlushDeadlineMicros = 1000;
  SO.Exec.Deterministic = true;
  models::ModelSpec Spec = testSpec();
  serve::Server Srv(Spec, {}, SO);
  Srv.start();

  std::vector<Tensor> Items;
  std::vector<std::future<serve::Response>> Futs(3);
  for (int I = 0; I < 3; ++I)
    Items.push_back(randomItem(Spec.InputDims, 40 + I));
  for (int I = 0; I < 3; ++I)
    ASSERT_TRUE(Srv.submit(Items[I], &Futs[I]));

  // Single-item reference: a private batch-1 inference executor with the
  // same parameter seed.
  core::Net Net(1);
  models::buildLatte(Net, Spec, /*WithLoss=*/true);
  engine::ExecOptions EO;
  EO.Seed = SO.ParamSeed;
  EO.Deterministic = true;
  engine::Executor Ref(compiler::compileForward(Net), EO);

  for (int I = 0; I < 3; ++I) {
    serve::Response Resp = Futs[I].get();
    ASSERT_EQ(Resp.St, serve::Status::Ok) << "item " << I;
    Ref.setInput(Items[I]);
    Ref.forward();
    Tensor Expect = Ref.readBuffer(Ref.program().ProbBuffer);
    EXPECT_TRUE(bitwiseEqual(Resp.Output, Expect)) << "item " << I;
  }
  Srv.stop();
  serve::ServeStats St = Srv.stats();
  EXPECT_EQ(St.Completed, 3);
  EXPECT_GE(St.PaddedSlots, 1);
}

TEST(Server, LoadParamsFromTrainedExecutor) {
  models::ModelSpec Spec = testSpec();
  core::Net Net(2);
  models::buildLatte(Net, Spec, /*WithLoss=*/true);
  engine::ExecOptions EO;
  EO.Seed = 999; // deliberately different from the server's ParamSeed
  engine::Executor Trained(compiler::compile(Net), EO);

  serve::ServeOptions SO;
  SO.Replicas = 1;
  SO.BatchSizes = {1};
  serve::Server Srv(Spec, {}, SO);
  Srv.loadParamsFrom(Trained);
  Srv.start();

  Tensor Item = randomItem(Spec.InputDims, 7);
  std::future<serve::Response> Fut;
  ASSERT_TRUE(Srv.submit(Item, &Fut));
  serve::Response Resp = Fut.get();
  ASSERT_EQ(Resp.St, serve::Status::Ok);
  Srv.stop();

  core::Net RefNet(1);
  models::buildLatte(RefNet, Spec, /*WithLoss=*/true);
  engine::ExecOptions RefEO;
  RefEO.Seed = 999;
  engine::Executor Ref(compiler::compileForward(RefNet), RefEO);
  Ref.setInput(Item);
  Ref.forward();
  EXPECT_TRUE(
      bitwiseEqual(Resp.Output, Ref.readBuffer(Ref.program().ProbBuffer)));
}

TEST(Server, ColdClassesServeChunkedViaFloorUntilInstalled) {
  // The async tentpole's cold path: while the batch-8 class compiles in
  // the background (held open by the observer), a full batch is served
  // chunked through the warm batch-1 floor — requests never block on an
  // inline compile — and the class installs atomically afterwards.
  models::ModelSpec Spec = testSpec();
  Spec.Name = "LeNet-async-install-test";
  compiler::CompileOptions CO;
  compiler::CompileOptions ServerCO = CO;
  ServerCO.Inference = true; // what Server compiles under the hood
  const std::string FloorKey = serve::ProgramCache::key(Spec, ServerCO, 1);
  ObserverGuard Guard([&](const std::string &K) {
    if (K != FloorKey) // only delay the background batch-8 compile
      std::this_thread::sleep_for(300ms);
  });

  serve::ServeOptions SO;
  SO.Replicas = 1;
  SO.BatchSizes = {1, 8};
  // A generous flush deadline makes batch-full the only release trigger:
  // 8 rapid submits deterministically pop as one fill-8 batch.
  SO.FlushDeadlineMicros = 200'000;
  serve::Server Srv(Spec, CO, SO);
  EXPECT_FALSE(Srv.allClassesReady()); // batch-8 is parked in the observer
  Srv.start();

  serve::SubmitOptions SubO;
  SubO.Pri = serve::Priority::Bulk; // generous deadline for slow CI
  std::vector<Tensor> Items;
  for (int I = 0; I < 16; ++I)
    Items.push_back(randomItem(Spec.InputDims, 100 + I));
  std::vector<std::future<serve::Response>> Futs(8);
  for (int I = 0; I < 8; ++I)
    ASSERT_TRUE(Srv.submit(Items[I], &Futs[I], SubO));
  for (int I = 0; I < 8; ++I)
    EXPECT_EQ(Futs[I].get().St, serve::Status::Ok) << "item " << I;

  serve::ServeStats Cold = Srv.stats();
  EXPECT_EQ(Cold.Completed, 8);
  EXPECT_GE(Cold.ChunkedBatches, 1) << "cold batch did not use the floor";

  ASSERT_TRUE(Srv.waitAllClassesReady(60s));
  EXPECT_GT(Srv.allReadySec(), 0.0);
  EXPECT_GE(Srv.stats().ClassesInstalled, 2);
  // Warm now: a full batch runs on the batch-8 class directly.
  for (int I = 0; I < 8; ++I)
    ASSERT_TRUE(Srv.submit(Items[8 + I], &Futs[I], SubO));
  for (int I = 0; I < 8; ++I)
    EXPECT_EQ(Futs[I].get().St, serve::Status::Ok);
  serve::ServeStats Warm = Srv.stats();
  EXPECT_GE(Warm.Fill[8][8], 1) << "warm batch did not use the installed class";
  Srv.stop();
}

TEST(Server, InterpretedFallbackServesWhileJitClassCold) {
  // With Jit requested, the floor is the *interpreted* batch-1 program:
  // while the JIT'd classes are cold (held open by the observer), traffic
  // is served through interpreted dispatch instead of blocking on the .so
  // compile. (In sanitizer builds the JIT gracefully degrades to
  // interpretation, which leaves this ladder structure unchanged.)
  models::ModelSpec Spec = testSpec();
  Spec.Name = "LeNet-jit-fallback-test";
  compiler::CompileOptions CO;
  CO.Jit = true;
  compiler::CompileOptions JitCO = CO;
  JitCO.Inference = true;
  ObserverGuard Guard([&](const std::string &K) {
    // Delay exactly the JIT'd shape classes; interp variants fly.
    for (int64_t BS : {int64_t(1), int64_t(2)})
      if (K == serve::ProgramCache::key(Spec, JitCO, BS))
        std::this_thread::sleep_for(300ms);
  });

  serve::ServeOptions SO;
  SO.Replicas = 1;
  SO.BatchSizes = {1, 2};
  SO.FlushDeadlineMicros = 500;
  serve::Server Srv(Spec, CO, SO);
  EXPECT_FALSE(Srv.allClassesReady());
  Srv.start();

  serve::SubmitOptions SubO;
  SubO.Pri = serve::Priority::Bulk;
  std::future<serve::Response> Fut;
  ASSERT_TRUE(Srv.submit(randomItem(Spec.InputDims, 7), &Fut, SubO));
  EXPECT_EQ(Fut.get().St, serve::Status::Ok);
  EXPECT_GE(Srv.stats().InterpFallbacks, 1)
      << "cold JIT class did not fall back to interpreted dispatch";
  ASSERT_TRUE(Srv.waitAllClassesReady(120s));
  Srv.stop();
}

TEST(Server, DeadlineShedStatusReachesSubmitter) {
  // A request whose explicit deadline evaporates while queued is failed
  // with DeadlineShed by the batcher, never dispatched.
  serve::ServeOptions SO;
  SO.Replicas = 1;
  SO.BatchSizes = {1};
  models::ModelSpec Spec = testSpec();
  serve::Server Srv(Spec, {}, SO); // not started: the request sits queued

  serve::SubmitOptions SubO;
  SubO.DeadlineMicros = 1000; // 1ms
  std::future<serve::Response> Fut;
  ASSERT_TRUE(Srv.submit(randomItem(Spec.InputDims, 3), &Fut, SubO));
  std::this_thread::sleep_for(20ms); // let the deadline pass
  Srv.start();
  EXPECT_EQ(Fut.get().St, serve::Status::DeadlineShed);
  EXPECT_GE(Srv.stats().DeadlineShed, 1);
  Srv.stop();
}

TEST(Server, StopFailsQueuedRequestsWithShutdown) {
  serve::ServeOptions SO;
  SO.Replicas = 1;
  SO.BatchSizes = {1};
  models::ModelSpec Spec = testSpec();
  serve::Server Srv(Spec, {}, SO); // never started: nothing consumes
  std::future<serve::Response> Fut;
  ASSERT_TRUE(Srv.submit(randomItem(Spec.InputDims, 5), &Fut));
  Srv.stop();
  EXPECT_EQ(Fut.get().St, serve::Status::Shutdown);
  EXPECT_EQ(Srv.stats().ShutdownFailed, 1);
}

TEST(Server, ProgramCacheHitsOnSecondServer) {
  serve::ProgramCache &Cache = serve::ProgramCache::instance();
  serve::ServeOptions SO;
  SO.Replicas = 1;
  SO.BatchSizes = {1, 2};
  SO.AsyncCompile = false; // inline compiles keep the stats deterministic
  models::ModelSpec Spec = testSpec();
  Spec.Name = "LeNet-cache-test"; // private cache entries for this test

  serve::Server A(Spec, {}, SO);
  serve::ProgramCache::Stats S1 = Cache.stats();
  serve::Server B(Spec, {}, SO);
  serve::ProgramCache::Stats S2 = Cache.stats();
  EXPECT_EQ(S2.Misses, S1.Misses);     // second server compiled nothing
  EXPECT_EQ(S2.Hits, S1.Hits + 2);     // both batch sizes reused
  EXPECT_EQ(&A.program(1), &B.program(1)); // same shared compilation

  // A different shape class or option class is a different cache key.
  compiler::CompileOptions CO;
  EXPECT_NE(serve::ProgramCache::key(Spec, CO, 1),
            serve::ProgramCache::key(Spec, CO, 2));
  compiler::CompileOptions NoFusion = CO;
  NoFusion.Fusion = false;
  EXPECT_NE(serve::ProgramCache::key(Spec, CO, 1),
            serve::ProgramCache::key(Spec, NoFusion, 1));
}

TEST(Server, ProgramCacheKeyCoversAllProgramShapingOptions) {
  // Regression pin for the fingerprint audit: every program-shaping
  // CompileOptions field must perturb the cache key. The Recompute and
  // SliceRotation era added fields without rekeying, so two option sets
  // aliased one entry and the server served the wrong program.
  models::ModelSpec Spec = testSpec();
  const compiler::CompileOptions Base;
  auto K = [&](const compiler::CompileOptions &CO) {
    return serve::ProgramCache::key(Spec, CO, 2);
  };
  struct FieldFlip {
    const char *Name;
    std::function<void(compiler::CompileOptions &)> Flip;
  };
  const FieldFlip Flips[] = {
      {"PatternMatchGemm", [](auto &C) { C.PatternMatchGemm ^= true; }},
      {"PatternMatchKernels", [](auto &C) { C.PatternMatchKernels ^= true; }},
      {"Tiling", [](auto &C) { C.Tiling ^= true; }},
      {"Fusion", [](auto &C) { C.Fusion ^= true; }},
      {"Parallelize", [](auto &C) { C.Parallelize ^= true; }},
      {"VectorKernels", [](auto &C) { C.VectorKernels ^= true; }},
      {"Recompute", [](auto &C) { C.Recompute ^= true; }},
      {"Jit", [](auto &C) { C.Jit ^= true; }},
      {"SliceRotation", [](auto &C) { C.SliceRotation ^= true; }},
      {"RotateSlices", [](auto &C) { C.RotateSlices = 3; }},
      {"Inference", [](auto &C) { C.Inference ^= true; }},
      {"EvalDropout", [](auto &C) { C.EvalDropout ^= true; }},
      {"GradSyncHooks", [](auto &C) { C.GradSyncHooks ^= true; }},
      {"TileSize", [](auto &C) { C.TileSize += 4; }},
      {"MinRowsToTile", [](auto &C) { C.MinRowsToTile += 8; }},
  };
  for (const FieldFlip &F : Flips) {
    compiler::CompileOptions CO = Base;
    F.Flip(CO);
    EXPECT_NE(K(Base), K(CO)) << "CompileOptions::" << F.Name
                              << " does not reach the cache fingerprint";
  }
  // Graph-structure fields of the spec are program-shaping too.
  models::ModelSpec Tied = Spec;
  Tied.Layers[0].ShareWith = "conv0";
  EXPECT_NE(serve::ProgramCache::key(Spec, Base, 2),
            serve::ProgramCache::key(Tied, Base, 2));
  models::ModelSpec Edged = Spec;
  Edged.Layers[0].Inputs.push_back("data");
  EXPECT_NE(serve::ProgramCache::key(Spec, Base, 2),
            serve::ProgramCache::key(Edged, Base, 2));
  models::ModelSpec Timed = Spec;
  Timed.Layers[0].TimeIndex = 1;
  EXPECT_NE(serve::ProgramCache::key(Spec, Base, 2),
            serve::ProgramCache::key(Timed, Base, 2));
}

TEST(Server, SequenceModelsServeBitwiseLikeTraining) {
  // The graph-structured specs must flow through the whole serving stack:
  // compile cache, replica weight sharing, micro-batching, and the padded
  // tail — and still return the training-forward bits.
  for (const models::ModelSpec &Spec :
       {models::lstmClassifier(), models::attentionClassifier()}) {
    serve::ServeOptions SO;
    SO.Replicas = 1;
    SO.BatchSizes = {2};
    SO.FlushDeadlineMicros = 1000;
    SO.Exec.Deterministic = true;
    serve::Server Srv(Spec, {}, SO);
    Srv.start();
    Tensor Item = randomItem(Spec.InputDims, 77);
    std::future<serve::Response> Fut;
    ASSERT_TRUE(Srv.submit(Item, &Fut));
    serve::Response Resp = Fut.get();
    ASSERT_EQ(Resp.St, serve::Status::Ok) << Spec.Name;
    Srv.stop();

    core::Net Net(1);
    models::buildLatte(Net, Spec, /*WithLoss=*/true);
    engine::ExecOptions EO;
    EO.Seed = SO.ParamSeed;
    EO.Deterministic = true;
    engine::Executor Ref(compiler::compileForward(Net), EO);
    Ref.setInput(Item);
    Ref.forward();
    EXPECT_TRUE(
        bitwiseEqual(Resp.Output, Ref.readBuffer(Ref.program().ProbBuffer)))
        << Spec.Name;
  }
}

// --- inference compilation -------------------------------------------------

TEST(InferenceCompile, ForwardOnlyArenaIsStrictlySmaller) {
  core::Net Net(8);
  models::buildLatte(Net, testSpec(), /*WithLoss=*/true);
  compiler::Program Train = compiler::compile(Net);
  compiler::Program Infer = compiler::compileForward(Net);
  ASSERT_TRUE(Train.Plan.Valid);
  ASSERT_TRUE(Infer.Plan.Valid);
  EXPECT_LT(Infer.Plan.ArenaBytes, Train.Plan.ArenaBytes);
  EXPECT_LT(Infer.Buffers.size(), Train.Buffers.size());
  EXPECT_TRUE(Infer.Inference);
  EXPECT_EQ(Infer.Backward, nullptr);
  EXPECT_TRUE(Infer.Params.empty());
  EXPECT_TRUE(Infer.BackwardTasks.empty());
  // No gradient or solver buffers survive the strip.
  for (const compiler::BufferInfo &B : Infer.Buffers) {
    EXPECT_NE(B.Role, compiler::BufferRole::Grad) << B.Name;
    EXPECT_NE(B.Role, compiler::BufferRole::ParamGrad) << B.Name;
    EXPECT_NE(B.Role, compiler::BufferRole::GradInput) << B.Name;
  }
}

TEST(InferenceCompile, ForwardBitwiseIdenticalToTrainingAcrossLattice) {
  // The tentpole guarantee: for every lattice point of the per-PR tier,
  // the inference-compiled forward produces bit-identical buffers to the
  // training-compiled forward under the same switches. NoMemPlan keeps
  // every buffer readable; Deterministic pins the dropout RNG (vacuous for
  // LeNet, but keeps the recipe right).
  models::ModelSpec Spec = testSpec();
  core::Net Net(2);
  models::buildLatte(Net, Spec, /*WithLoss=*/true);
  Tensor Input = randomItem(Spec.InputDims.withPrefix(2), 0xDA7A);

  verify::LatticeOptions LO; // tile geometry that bites on tiny nets
  for (unsigned Mask : verify::sweepMasks()) {
    compiler::CompileOptions CO = verify::optionsForMask(Mask, LO);
    engine::ExecOptions EO;
    EO.VectorKernels = CO.VectorKernels;
    EO.Parallel = CO.Parallelize;
    EO.Deterministic = true;
    EO.NoMemPlan = true;
    EO.Seed = LO.ParamSeed;
    engine::Executor Train(compiler::compile(Net, CO), EO);
    engine::Executor Infer(compiler::compileForward(Net, CO), EO);
    Train.setInput(Input);
    Infer.setInput(Input);
    Train.forward();
    Infer.forward();

    int64_t Compared = 0;
    for (const compiler::BufferInfo &B : Infer.program().Buffers) {
      if (!B.AliasOf.empty())
        continue; // roots own the bytes; aliases would double-count
      if (!Train.program().findBuffer(B.Name))
        continue;
      Tensor Want = Train.readBuffer(B.Name);
      Tensor Got = Infer.readBuffer(B.Name);
      ASSERT_TRUE(bitwiseEqual(Got, Want))
          << "buffer " << B.Name << " diverges at mask " << Mask << " ("
          << verify::flagString(CO) << ")";
      ++Compared;
    }
    ASSERT_GE(Compared, 8) << "mask " << Mask << " compared too little";
  }
}

TEST(InferenceCompile, EvalDropoutIsOptInExpectationScaling) {
  // A dropout net served two ways. Default: inference keeps the exact
  // training-parity semantics (deterministic mask RNG), preserving the
  // bitwise train/serve contract. Opt-in EvalDropout: the mask RNG is
  // skipped and the activation is scaled by KeepProb (the expectation),
  // the conventional eval-mode dropout.
  const double Keep = 0.8;
  core::Net Net(2);
  core::Ensemble *Data = layers::DataLayer(Net, "data", Shape{6});
  core::Ensemble *Fc = layers::FullyConnectedLayer(Net, "fc", Data, 5);
  core::Ensemble *Drop = layers::DropoutLayer(Net, "drop", Fc, Keep);
  core::Ensemble *Out = layers::FullyConnectedLayer(Net, "out", Drop, 3);
  core::Ensemble *Labels = layers::LabelLayer(Net, "labels");
  layers::SoftmaxLossLayer(Net, "loss", Out, Labels);

  engine::ExecOptions EO;
  EO.Deterministic = true;
  EO.NoMemPlan = true; // keep intermediates readable
  EO.Seed = 17;
  Tensor In = randomItem(Shape{2, 6}, 23);

  engine::Executor Train(compiler::compile(Net), EO);
  engine::Executor InferDefault(compiler::compileForward(Net), EO);
  compiler::CompileOptions Eval;
  Eval.EvalDropout = true;
  engine::Executor InferEval(compiler::compileForward(Net, Eval), EO);
  for (engine::Executor *Ex : {&Train, &InferDefault, &InferEval}) {
    Ex->setInput(In);
    Ex->forward();
  }

  // Default serving path: bitwise identical to the training forward,
  // dropped units and all.
  EXPECT_TRUE(bitwiseEqual(InferDefault.readBuffer("drop_value"),
                           Train.readBuffer("drop_value")));
  EXPECT_TRUE(bitwiseEqual(InferDefault.readBuffer("out_value"),
                           Train.readBuffer("out_value")));

  // Opt-in path: every unit present, scaled by KeepProb; necessarily
  // different from the masked training activation.
  Tensor Src = InferEval.readBuffer("fc_value");
  Tensor Scaled = InferEval.readBuffer("drop_value");
  ASSERT_EQ(Scaled.numElements(), Src.numElements());
  for (int64_t I = 0; I < Src.numElements(); ++I)
    EXPECT_EQ(Scaled.at(I), Src.at(I) * static_cast<float>(Keep))
        << "element " << I;
  EXPECT_FALSE(bitwiseEqual(Scaled, Train.readBuffer("drop_value")));

  // EvalDropout without Inference is inert: training always trains.
  compiler::CompileOptions TrainEval;
  TrainEval.EvalDropout = true;
  engine::Executor Train2(compiler::compile(Net, TrainEval), EO);
  Train2.setInput(In);
  Train2.forward();
  EXPECT_TRUE(bitwiseEqual(Train2.readBuffer("drop_value"),
                           Train.readBuffer("drop_value")));
}

// --- training-only APIs reject inference programs --------------------------

TEST(InferenceCompile, BackwardIsFatalWithDiagnostic) {
  core::Net Net(2);
  models::buildLatte(Net, testSpec(), /*WithLoss=*/true);
  engine::Executor Ex(compiler::compileForward(Net));
  Ex.forward(); // forward still works
  EXPECT_DEATH(Ex.backward(), "inference-compiled");
}

TEST(InferenceCompile, GradCheckRejectsWithDiagnosticInsteadOfCrashing) {
  core::Net Net(2);
  models::buildLatte(Net, testSpec(), /*WithLoss=*/true);
  engine::ExecOptions EO;
  EO.Deterministic = true;
  engine::Executor Ex(compiler::compileForward(Net), EO);
  verify::GradCheckReport R = verify::gradCheck(Ex);
  EXPECT_FALSE(R.Passed);
  EXPECT_EQ(R.NumChecked, 0);
  EXPECT_FALSE(R.Diagnostic.empty());
  EXPECT_NE(R.summary().find("REJECTED"), std::string::npos);
}
