//===- tests/serve/serve_test.cpp - Serving runtime tests -----------------===//
///
/// Covers the inference serving stack end to end: the micro-batcher's two
/// flush triggers and shedding, pointer-level weight sharing across
/// replicas and batch sizes, tail-batch padding correctness, the
/// shape-polymorphic compile cache, the forward-only memory plan, the
/// inference/training bitwise-identity guarantee across the verification
/// lattice, and the training-only APIs' rejection of inference programs.
///
//===----------------------------------------------------------------------===//

#include "serve/batcher.h"
#include "serve/server.h"
#include "support/timer.h"
#include "verify/gradcheck.h"
#include "verify/lattice.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>

using namespace latte;

namespace {

models::ModelSpec testSpec() { return models::lenet(); }

Tensor randomItem(const Shape &Dims, uint64_t Seed) {
  Tensor T(Dims);
  Rng R(Seed);
  R.fillGaussian(T, 0.0f, 1.0f);
  return T;
}

serve::Request makeRequest() {
  serve::Request R;
  R.Input = Tensor(Shape{1});
  return R;
}

bool bitwiseEqual(const Tensor &A, const Tensor &B) {
  return A.numElements() == B.numElements() &&
         std::memcmp(A.data(), B.data(),
                     sizeof(float) * static_cast<size_t>(A.numElements())) ==
             0;
}

} // namespace

// --- MicroBatcher ----------------------------------------------------------

TEST(MicroBatcher, FlushesImmediatelyWhenBatchFull) {
  serve::MicroBatcher B(4, std::chrono::microseconds(60'000'000), 64);
  for (int I = 0; I < 4; ++I)
    ASSERT_TRUE(B.enqueue(makeRequest()));
  // Deadline is a minute out: only the batch-full trigger can release.
  std::vector<serve::Request> Batch = B.popBatch();
  EXPECT_EQ(Batch.size(), 4u);
  EXPECT_EQ(B.stats().FullFlushes, 1);
  EXPECT_EQ(B.stats().DeadlineFlushes, 0);
  B.stop();
}

TEST(MicroBatcher, DeadlineReleasesPartialBatch) {
  serve::MicroBatcher B(16, std::chrono::microseconds(2000), 64);
  for (int I = 0; I < 3; ++I)
    ASSERT_TRUE(B.enqueue(makeRequest()));
  Timer Wall;
  std::vector<serve::Request> Batch = B.popBatch();
  EXPECT_EQ(Batch.size(), 3u);
  // Released by the deadline, not instantly and not never.
  EXPECT_GE(Wall.seconds(), 0.001);
  EXPECT_EQ(B.stats().DeadlineFlushes, 1);
  EXPECT_EQ(B.stats().FullFlushes, 0);
  B.stop();
}

TEST(MicroBatcher, ShedsAtCapacityAndAfterStop) {
  serve::MicroBatcher B(4, std::chrono::microseconds(1000), 2);
  EXPECT_TRUE(B.enqueue(makeRequest()));
  EXPECT_TRUE(B.enqueue(makeRequest()));
  EXPECT_FALSE(B.enqueue(makeRequest())); // over capacity
  B.stop();
  EXPECT_FALSE(B.enqueue(makeRequest())); // stopped
  EXPECT_EQ(B.stats().Shed, 2);
  // stop() drains the remainder, then signals termination with empty.
  EXPECT_EQ(B.popBatch().size(), 2u);
  EXPECT_TRUE(B.popBatch().empty());
}

TEST(MicroBatcher, BlockedConsumerWakesOnEnqueue) {
  serve::MicroBatcher B(2, std::chrono::microseconds(50'000'000), 64);
  std::atomic<int> Got{-1};
  std::thread Consumer([&] {
    Got = static_cast<int>(B.popBatch().size());
  });
  ASSERT_TRUE(B.enqueue(makeRequest()));
  ASSERT_TRUE(B.enqueue(makeRequest()));
  Consumer.join();
  EXPECT_EQ(Got, 2);
  B.stop();
}

// --- Server ----------------------------------------------------------------

TEST(Server, SharesWeightPointersAcrossReplicasAndBatchSizes) {
  serve::ServeOptions SO;
  SO.Replicas = 2;
  SO.BatchSizes = {1, 4};
  serve::Server Srv(testSpec(), {}, SO);

  const compiler::Program &Prog = Srv.weightMaster().program();
  int Params = 0;
  for (const compiler::BufferInfo &B : Prog.Buffers) {
    if (B.Role != compiler::BufferRole::Param || !B.AliasOf.empty())
      continue;
    ++Params;
    const float *MasterPtr = Srv.weightMaster().data(B.Name);
    for (int R = 0; R < 2; ++R)
      for (int64_t BS : {int64_t(1), int64_t(4)})
        EXPECT_EQ(Srv.replicaExecutor(R, BS).data(B.Name), MasterPtr)
            << "replica " << R << " batch " << BS << " buffer " << B.Name;
  }
  // LeNet: conv1/conv2/fc1/classifier weights + biases.
  EXPECT_GE(Params, 4);
}

TEST(Server, TailBatchPaddingIsBitwiseCorrect) {
  // Only batch size 4 is compiled, so 3 submissions force a padded tail
  // batch once the deadline trips.
  serve::ServeOptions SO;
  SO.Replicas = 1;
  SO.BatchSizes = {4};
  SO.FlushDeadlineMicros = 1000;
  SO.Exec.Deterministic = true;
  models::ModelSpec Spec = testSpec();
  serve::Server Srv(Spec, {}, SO);
  Srv.start();

  std::vector<Tensor> Items;
  std::vector<std::future<Tensor>> Futs(3);
  for (int I = 0; I < 3; ++I)
    Items.push_back(randomItem(Spec.InputDims, 40 + I));
  for (int I = 0; I < 3; ++I)
    ASSERT_TRUE(Srv.submit(Items[I], &Futs[I]));

  // Single-item reference: a private batch-1 inference executor with the
  // same parameter seed.
  core::Net Net(1);
  models::buildLatte(Net, Spec, /*WithLoss=*/true);
  engine::ExecOptions EO;
  EO.Seed = SO.ParamSeed;
  EO.Deterministic = true;
  engine::Executor Ref(compiler::compileForward(Net), EO);

  for (int I = 0; I < 3; ++I) {
    Tensor Served = Futs[I].get();
    Ref.setInput(Items[I]);
    Ref.forward();
    Tensor Expect = Ref.readBuffer(Ref.program().ProbBuffer);
    EXPECT_TRUE(bitwiseEqual(Served, Expect)) << "item " << I;
  }
  Srv.stop();
  serve::ServeStats St = Srv.stats();
  EXPECT_EQ(St.Completed, 3);
  EXPECT_GE(St.PaddedSlots, 1);
}

TEST(Server, LoadParamsFromTrainedExecutor) {
  models::ModelSpec Spec = testSpec();
  core::Net Net(2);
  models::buildLatte(Net, Spec, /*WithLoss=*/true);
  engine::ExecOptions EO;
  EO.Seed = 999; // deliberately different from the server's ParamSeed
  engine::Executor Trained(compiler::compile(Net), EO);

  serve::ServeOptions SO;
  SO.Replicas = 1;
  SO.BatchSizes = {1};
  serve::Server Srv(Spec, {}, SO);
  Srv.loadParamsFrom(Trained);
  Srv.start();

  Tensor Item = randomItem(Spec.InputDims, 7);
  std::future<Tensor> Fut;
  ASSERT_TRUE(Srv.submit(Item, &Fut));
  Tensor Served = Fut.get();
  Srv.stop();

  core::Net RefNet(1);
  models::buildLatte(RefNet, Spec, /*WithLoss=*/true);
  engine::ExecOptions RefEO;
  RefEO.Seed = 999;
  engine::Executor Ref(compiler::compileForward(RefNet), RefEO);
  Ref.setInput(Item);
  Ref.forward();
  EXPECT_TRUE(
      bitwiseEqual(Served, Ref.readBuffer(Ref.program().ProbBuffer)));
}

TEST(Server, ProgramCacheHitsOnSecondServer) {
  serve::ProgramCache &Cache = serve::ProgramCache::instance();
  serve::ServeOptions SO;
  SO.Replicas = 1;
  SO.BatchSizes = {1, 2};
  models::ModelSpec Spec = testSpec();
  Spec.Name = "LeNet-cache-test"; // private cache entries for this test

  serve::Server A(Spec, {}, SO);
  serve::ProgramCache::Stats S1 = Cache.stats();
  serve::Server B(Spec, {}, SO);
  serve::ProgramCache::Stats S2 = Cache.stats();
  EXPECT_EQ(S2.Misses, S1.Misses);     // second server compiled nothing
  EXPECT_EQ(S2.Hits, S1.Hits + 2);     // both batch sizes reused
  EXPECT_EQ(&A.program(1), &B.program(1)); // same shared compilation

  // A different shape class or option class is a different cache key.
  compiler::CompileOptions CO;
  EXPECT_NE(serve::ProgramCache::key(Spec, CO, 1),
            serve::ProgramCache::key(Spec, CO, 2));
  compiler::CompileOptions NoFusion = CO;
  NoFusion.Fusion = false;
  EXPECT_NE(serve::ProgramCache::key(Spec, CO, 1),
            serve::ProgramCache::key(Spec, NoFusion, 1));
}

// --- inference compilation -------------------------------------------------

TEST(InferenceCompile, ForwardOnlyArenaIsStrictlySmaller) {
  core::Net Net(8);
  models::buildLatte(Net, testSpec(), /*WithLoss=*/true);
  compiler::Program Train = compiler::compile(Net);
  compiler::Program Infer = compiler::compileForward(Net);
  ASSERT_TRUE(Train.Plan.Valid);
  ASSERT_TRUE(Infer.Plan.Valid);
  EXPECT_LT(Infer.Plan.ArenaBytes, Train.Plan.ArenaBytes);
  EXPECT_LT(Infer.Buffers.size(), Train.Buffers.size());
  EXPECT_TRUE(Infer.Inference);
  EXPECT_EQ(Infer.Backward, nullptr);
  EXPECT_TRUE(Infer.Params.empty());
  EXPECT_TRUE(Infer.BackwardTasks.empty());
  // No gradient or solver buffers survive the strip.
  for (const compiler::BufferInfo &B : Infer.Buffers) {
    EXPECT_NE(B.Role, compiler::BufferRole::Grad) << B.Name;
    EXPECT_NE(B.Role, compiler::BufferRole::ParamGrad) << B.Name;
    EXPECT_NE(B.Role, compiler::BufferRole::GradInput) << B.Name;
  }
}

TEST(InferenceCompile, ForwardBitwiseIdenticalToTrainingAcrossLattice) {
  // The tentpole guarantee: for every lattice point of the per-PR tier,
  // the inference-compiled forward produces bit-identical buffers to the
  // training-compiled forward under the same switches. NoMemPlan keeps
  // every buffer readable; Deterministic pins the dropout RNG (vacuous for
  // LeNet, but keeps the recipe right).
  models::ModelSpec Spec = testSpec();
  core::Net Net(2);
  models::buildLatte(Net, Spec, /*WithLoss=*/true);
  Tensor Input = randomItem(Spec.InputDims.withPrefix(2), 0xDA7A);

  verify::LatticeOptions LO; // tile geometry that bites on tiny nets
  for (unsigned Mask : verify::sweepMasks()) {
    compiler::CompileOptions CO = verify::optionsForMask(Mask, LO);
    engine::ExecOptions EO;
    EO.VectorKernels = CO.VectorKernels;
    EO.Parallel = CO.Parallelize;
    EO.Deterministic = true;
    EO.NoMemPlan = true;
    EO.Seed = LO.ParamSeed;
    engine::Executor Train(compiler::compile(Net, CO), EO);
    engine::Executor Infer(compiler::compileForward(Net, CO), EO);
    Train.setInput(Input);
    Infer.setInput(Input);
    Train.forward();
    Infer.forward();

    int64_t Compared = 0;
    for (const compiler::BufferInfo &B : Infer.program().Buffers) {
      if (!B.AliasOf.empty())
        continue; // roots own the bytes; aliases would double-count
      if (!Train.program().findBuffer(B.Name))
        continue;
      Tensor Want = Train.readBuffer(B.Name);
      Tensor Got = Infer.readBuffer(B.Name);
      ASSERT_TRUE(bitwiseEqual(Got, Want))
          << "buffer " << B.Name << " diverges at mask " << Mask << " ("
          << verify::flagString(CO) << ")";
      ++Compared;
    }
    ASSERT_GE(Compared, 8) << "mask " << Mask << " compared too little";
  }
}

// --- training-only APIs reject inference programs --------------------------

TEST(InferenceCompile, BackwardIsFatalWithDiagnostic) {
  core::Net Net(2);
  models::buildLatte(Net, testSpec(), /*WithLoss=*/true);
  engine::Executor Ex(compiler::compileForward(Net));
  Ex.forward(); // forward still works
  EXPECT_DEATH(Ex.backward(), "inference-compiled");
}

TEST(InferenceCompile, GradCheckRejectsWithDiagnosticInsteadOfCrashing) {
  core::Net Net(2);
  models::buildLatte(Net, testSpec(), /*WithLoss=*/true);
  engine::ExecOptions EO;
  EO.Deterministic = true;
  engine::Executor Ex(compiler::compileForward(Net), EO);
  verify::GradCheckReport R = verify::gradCheck(Ex);
  EXPECT_FALSE(R.Passed);
  EXPECT_EQ(R.NumChecked, 0);
  EXPECT_FALSE(R.Diagnostic.empty());
  EXPECT_NE(R.summary().find("REJECTED"), std::string::npos);
}
