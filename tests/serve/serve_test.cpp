//===- tests/serve/serve_test.cpp - Serving runtime tests -----------------===//
///
/// Covers the inference serving stack end to end: the micro-batcher's two
/// flush triggers and shedding, pointer-level weight sharing across
/// replicas and batch sizes, tail-batch padding correctness, the
/// shape-polymorphic compile cache, the forward-only memory plan, the
/// inference/training bitwise-identity guarantee across the verification
/// lattice, and the training-only APIs' rejection of inference programs.
///
//===----------------------------------------------------------------------===//

#include "core/layers/layers.h"
#include "serve/batcher.h"
#include "serve/server.h"
#include "support/timer.h"
#include "verify/gradcheck.h"
#include "verify/lattice.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <functional>
#include <thread>

using namespace latte;

namespace {

models::ModelSpec testSpec() { return models::lenet(); }

Tensor randomItem(const Shape &Dims, uint64_t Seed) {
  Tensor T(Dims);
  Rng R(Seed);
  R.fillGaussian(T, 0.0f, 1.0f);
  return T;
}

serve::Request makeRequest() {
  serve::Request R;
  R.Input = Tensor(Shape{1});
  return R;
}

bool bitwiseEqual(const Tensor &A, const Tensor &B) {
  return A.numElements() == B.numElements() &&
         std::memcmp(A.data(), B.data(),
                     sizeof(float) * static_cast<size_t>(A.numElements())) ==
             0;
}

} // namespace

// --- MicroBatcher ----------------------------------------------------------

TEST(MicroBatcher, FlushesImmediatelyWhenBatchFull) {
  serve::MicroBatcher B(4, std::chrono::microseconds(60'000'000), 64);
  for (int I = 0; I < 4; ++I)
    ASSERT_TRUE(B.enqueue(makeRequest()));
  // Deadline is a minute out: only the batch-full trigger can release.
  std::vector<serve::Request> Batch = B.popBatch();
  EXPECT_EQ(Batch.size(), 4u);
  EXPECT_EQ(B.stats().FullFlushes, 1);
  EXPECT_EQ(B.stats().DeadlineFlushes, 0);
  B.stop();
}

TEST(MicroBatcher, DeadlineReleasesPartialBatch) {
  serve::MicroBatcher B(16, std::chrono::microseconds(2000), 64);
  for (int I = 0; I < 3; ++I)
    ASSERT_TRUE(B.enqueue(makeRequest()));
  Timer Wall;
  std::vector<serve::Request> Batch = B.popBatch();
  EXPECT_EQ(Batch.size(), 3u);
  // Released by the deadline, not instantly and not never.
  EXPECT_GE(Wall.seconds(), 0.001);
  EXPECT_EQ(B.stats().DeadlineFlushes, 1);
  EXPECT_EQ(B.stats().FullFlushes, 0);
  B.stop();
}

TEST(MicroBatcher, ShedsAtCapacityAndAfterStop) {
  serve::MicroBatcher B(4, std::chrono::microseconds(1000), 2);
  EXPECT_TRUE(B.enqueue(makeRequest()));
  EXPECT_TRUE(B.enqueue(makeRequest()));
  EXPECT_FALSE(B.enqueue(makeRequest())); // over capacity
  B.stop();
  EXPECT_FALSE(B.enqueue(makeRequest())); // stopped
  EXPECT_EQ(B.stats().Shed, 2);
  // stop() drains the remainder, then signals termination with empty.
  EXPECT_EQ(B.popBatch().size(), 2u);
  EXPECT_TRUE(B.popBatch().empty());
}

TEST(MicroBatcher, BlockedConsumerWakesOnEnqueue) {
  serve::MicroBatcher B(2, std::chrono::microseconds(50'000'000), 64);
  std::atomic<int> Got{-1};
  std::thread Consumer([&] {
    Got = static_cast<int>(B.popBatch().size());
  });
  ASSERT_TRUE(B.enqueue(makeRequest()));
  ASSERT_TRUE(B.enqueue(makeRequest()));
  Consumer.join();
  EXPECT_EQ(Got, 2);
  B.stop();
}

// --- Server ----------------------------------------------------------------

TEST(Server, SharesWeightPointersAcrossReplicasAndBatchSizes) {
  serve::ServeOptions SO;
  SO.Replicas = 2;
  SO.BatchSizes = {1, 4};
  serve::Server Srv(testSpec(), {}, SO);

  const compiler::Program &Prog = Srv.weightMaster().program();
  int Params = 0;
  for (const compiler::BufferInfo &B : Prog.Buffers) {
    if (B.Role != compiler::BufferRole::Param || !B.AliasOf.empty())
      continue;
    ++Params;
    const float *MasterPtr = Srv.weightMaster().data(B.Name);
    for (int R = 0; R < 2; ++R)
      for (int64_t BS : {int64_t(1), int64_t(4)})
        EXPECT_EQ(Srv.replicaExecutor(R, BS).data(B.Name), MasterPtr)
            << "replica " << R << " batch " << BS << " buffer " << B.Name;
  }
  // LeNet: conv1/conv2/fc1/classifier weights + biases.
  EXPECT_GE(Params, 4);
}

TEST(Server, TailBatchPaddingIsBitwiseCorrect) {
  // Only batch size 4 is compiled, so 3 submissions force a padded tail
  // batch once the deadline trips.
  serve::ServeOptions SO;
  SO.Replicas = 1;
  SO.BatchSizes = {4};
  SO.FlushDeadlineMicros = 1000;
  SO.Exec.Deterministic = true;
  models::ModelSpec Spec = testSpec();
  serve::Server Srv(Spec, {}, SO);
  Srv.start();

  std::vector<Tensor> Items;
  std::vector<std::future<Tensor>> Futs(3);
  for (int I = 0; I < 3; ++I)
    Items.push_back(randomItem(Spec.InputDims, 40 + I));
  for (int I = 0; I < 3; ++I)
    ASSERT_TRUE(Srv.submit(Items[I], &Futs[I]));

  // Single-item reference: a private batch-1 inference executor with the
  // same parameter seed.
  core::Net Net(1);
  models::buildLatte(Net, Spec, /*WithLoss=*/true);
  engine::ExecOptions EO;
  EO.Seed = SO.ParamSeed;
  EO.Deterministic = true;
  engine::Executor Ref(compiler::compileForward(Net), EO);

  for (int I = 0; I < 3; ++I) {
    Tensor Served = Futs[I].get();
    Ref.setInput(Items[I]);
    Ref.forward();
    Tensor Expect = Ref.readBuffer(Ref.program().ProbBuffer);
    EXPECT_TRUE(bitwiseEqual(Served, Expect)) << "item " << I;
  }
  Srv.stop();
  serve::ServeStats St = Srv.stats();
  EXPECT_EQ(St.Completed, 3);
  EXPECT_GE(St.PaddedSlots, 1);
}

TEST(Server, LoadParamsFromTrainedExecutor) {
  models::ModelSpec Spec = testSpec();
  core::Net Net(2);
  models::buildLatte(Net, Spec, /*WithLoss=*/true);
  engine::ExecOptions EO;
  EO.Seed = 999; // deliberately different from the server's ParamSeed
  engine::Executor Trained(compiler::compile(Net), EO);

  serve::ServeOptions SO;
  SO.Replicas = 1;
  SO.BatchSizes = {1};
  serve::Server Srv(Spec, {}, SO);
  Srv.loadParamsFrom(Trained);
  Srv.start();

  Tensor Item = randomItem(Spec.InputDims, 7);
  std::future<Tensor> Fut;
  ASSERT_TRUE(Srv.submit(Item, &Fut));
  Tensor Served = Fut.get();
  Srv.stop();

  core::Net RefNet(1);
  models::buildLatte(RefNet, Spec, /*WithLoss=*/true);
  engine::ExecOptions RefEO;
  RefEO.Seed = 999;
  engine::Executor Ref(compiler::compileForward(RefNet), RefEO);
  Ref.setInput(Item);
  Ref.forward();
  EXPECT_TRUE(
      bitwiseEqual(Served, Ref.readBuffer(Ref.program().ProbBuffer)));
}

TEST(Server, ProgramCacheHitsOnSecondServer) {
  serve::ProgramCache &Cache = serve::ProgramCache::instance();
  serve::ServeOptions SO;
  SO.Replicas = 1;
  SO.BatchSizes = {1, 2};
  models::ModelSpec Spec = testSpec();
  Spec.Name = "LeNet-cache-test"; // private cache entries for this test

  serve::Server A(Spec, {}, SO);
  serve::ProgramCache::Stats S1 = Cache.stats();
  serve::Server B(Spec, {}, SO);
  serve::ProgramCache::Stats S2 = Cache.stats();
  EXPECT_EQ(S2.Misses, S1.Misses);     // second server compiled nothing
  EXPECT_EQ(S2.Hits, S1.Hits + 2);     // both batch sizes reused
  EXPECT_EQ(&A.program(1), &B.program(1)); // same shared compilation

  // A different shape class or option class is a different cache key.
  compiler::CompileOptions CO;
  EXPECT_NE(serve::ProgramCache::key(Spec, CO, 1),
            serve::ProgramCache::key(Spec, CO, 2));
  compiler::CompileOptions NoFusion = CO;
  NoFusion.Fusion = false;
  EXPECT_NE(serve::ProgramCache::key(Spec, CO, 1),
            serve::ProgramCache::key(Spec, NoFusion, 1));
}

TEST(Server, ProgramCacheKeyCoversAllProgramShapingOptions) {
  // Regression pin for the fingerprint audit: every program-shaping
  // CompileOptions field must perturb the cache key. The Recompute and
  // SliceRotation era added fields without rekeying, so two option sets
  // aliased one entry and the server served the wrong program.
  models::ModelSpec Spec = testSpec();
  const compiler::CompileOptions Base;
  auto K = [&](const compiler::CompileOptions &CO) {
    return serve::ProgramCache::key(Spec, CO, 2);
  };
  struct FieldFlip {
    const char *Name;
    std::function<void(compiler::CompileOptions &)> Flip;
  };
  const FieldFlip Flips[] = {
      {"PatternMatchGemm", [](auto &C) { C.PatternMatchGemm ^= true; }},
      {"PatternMatchKernels", [](auto &C) { C.PatternMatchKernels ^= true; }},
      {"Tiling", [](auto &C) { C.Tiling ^= true; }},
      {"Fusion", [](auto &C) { C.Fusion ^= true; }},
      {"Parallelize", [](auto &C) { C.Parallelize ^= true; }},
      {"VectorKernels", [](auto &C) { C.VectorKernels ^= true; }},
      {"Recompute", [](auto &C) { C.Recompute ^= true; }},
      {"Jit", [](auto &C) { C.Jit ^= true; }},
      {"SliceRotation", [](auto &C) { C.SliceRotation ^= true; }},
      {"RotateSlices", [](auto &C) { C.RotateSlices = 3; }},
      {"Inference", [](auto &C) { C.Inference ^= true; }},
      {"EvalDropout", [](auto &C) { C.EvalDropout ^= true; }},
      {"GradSyncHooks", [](auto &C) { C.GradSyncHooks ^= true; }},
      {"TileSize", [](auto &C) { C.TileSize += 4; }},
      {"MinRowsToTile", [](auto &C) { C.MinRowsToTile += 8; }},
  };
  for (const FieldFlip &F : Flips) {
    compiler::CompileOptions CO = Base;
    F.Flip(CO);
    EXPECT_NE(K(Base), K(CO)) << "CompileOptions::" << F.Name
                              << " does not reach the cache fingerprint";
  }
  // Graph-structure fields of the spec are program-shaping too.
  models::ModelSpec Tied = Spec;
  Tied.Layers[0].ShareWith = "conv0";
  EXPECT_NE(serve::ProgramCache::key(Spec, Base, 2),
            serve::ProgramCache::key(Tied, Base, 2));
  models::ModelSpec Edged = Spec;
  Edged.Layers[0].Inputs.push_back("data");
  EXPECT_NE(serve::ProgramCache::key(Spec, Base, 2),
            serve::ProgramCache::key(Edged, Base, 2));
  models::ModelSpec Timed = Spec;
  Timed.Layers[0].TimeIndex = 1;
  EXPECT_NE(serve::ProgramCache::key(Spec, Base, 2),
            serve::ProgramCache::key(Timed, Base, 2));
}

TEST(Server, SequenceModelsServeBitwiseLikeTraining) {
  // The graph-structured specs must flow through the whole serving stack:
  // compile cache, replica weight sharing, micro-batching, and the padded
  // tail — and still return the training-forward bits.
  for (const models::ModelSpec &Spec :
       {models::lstmClassifier(), models::attentionClassifier()}) {
    serve::ServeOptions SO;
    SO.Replicas = 1;
    SO.BatchSizes = {2};
    SO.FlushDeadlineMicros = 1000;
    SO.Exec.Deterministic = true;
    serve::Server Srv(Spec, {}, SO);
    Srv.start();
    Tensor Item = randomItem(Spec.InputDims, 77);
    std::future<Tensor> Fut;
    ASSERT_TRUE(Srv.submit(Item, &Fut));
    Tensor Served = Fut.get();
    Srv.stop();

    core::Net Net(1);
    models::buildLatte(Net, Spec, /*WithLoss=*/true);
    engine::ExecOptions EO;
    EO.Seed = SO.ParamSeed;
    EO.Deterministic = true;
    engine::Executor Ref(compiler::compileForward(Net), EO);
    Ref.setInput(Item);
    Ref.forward();
    EXPECT_TRUE(
        bitwiseEqual(Served, Ref.readBuffer(Ref.program().ProbBuffer)))
        << Spec.Name;
  }
}

// --- inference compilation -------------------------------------------------

TEST(InferenceCompile, ForwardOnlyArenaIsStrictlySmaller) {
  core::Net Net(8);
  models::buildLatte(Net, testSpec(), /*WithLoss=*/true);
  compiler::Program Train = compiler::compile(Net);
  compiler::Program Infer = compiler::compileForward(Net);
  ASSERT_TRUE(Train.Plan.Valid);
  ASSERT_TRUE(Infer.Plan.Valid);
  EXPECT_LT(Infer.Plan.ArenaBytes, Train.Plan.ArenaBytes);
  EXPECT_LT(Infer.Buffers.size(), Train.Buffers.size());
  EXPECT_TRUE(Infer.Inference);
  EXPECT_EQ(Infer.Backward, nullptr);
  EXPECT_TRUE(Infer.Params.empty());
  EXPECT_TRUE(Infer.BackwardTasks.empty());
  // No gradient or solver buffers survive the strip.
  for (const compiler::BufferInfo &B : Infer.Buffers) {
    EXPECT_NE(B.Role, compiler::BufferRole::Grad) << B.Name;
    EXPECT_NE(B.Role, compiler::BufferRole::ParamGrad) << B.Name;
    EXPECT_NE(B.Role, compiler::BufferRole::GradInput) << B.Name;
  }
}

TEST(InferenceCompile, ForwardBitwiseIdenticalToTrainingAcrossLattice) {
  // The tentpole guarantee: for every lattice point of the per-PR tier,
  // the inference-compiled forward produces bit-identical buffers to the
  // training-compiled forward under the same switches. NoMemPlan keeps
  // every buffer readable; Deterministic pins the dropout RNG (vacuous for
  // LeNet, but keeps the recipe right).
  models::ModelSpec Spec = testSpec();
  core::Net Net(2);
  models::buildLatte(Net, Spec, /*WithLoss=*/true);
  Tensor Input = randomItem(Spec.InputDims.withPrefix(2), 0xDA7A);

  verify::LatticeOptions LO; // tile geometry that bites on tiny nets
  for (unsigned Mask : verify::sweepMasks()) {
    compiler::CompileOptions CO = verify::optionsForMask(Mask, LO);
    engine::ExecOptions EO;
    EO.VectorKernels = CO.VectorKernels;
    EO.Parallel = CO.Parallelize;
    EO.Deterministic = true;
    EO.NoMemPlan = true;
    EO.Seed = LO.ParamSeed;
    engine::Executor Train(compiler::compile(Net, CO), EO);
    engine::Executor Infer(compiler::compileForward(Net, CO), EO);
    Train.setInput(Input);
    Infer.setInput(Input);
    Train.forward();
    Infer.forward();

    int64_t Compared = 0;
    for (const compiler::BufferInfo &B : Infer.program().Buffers) {
      if (!B.AliasOf.empty())
        continue; // roots own the bytes; aliases would double-count
      if (!Train.program().findBuffer(B.Name))
        continue;
      Tensor Want = Train.readBuffer(B.Name);
      Tensor Got = Infer.readBuffer(B.Name);
      ASSERT_TRUE(bitwiseEqual(Got, Want))
          << "buffer " << B.Name << " diverges at mask " << Mask << " ("
          << verify::flagString(CO) << ")";
      ++Compared;
    }
    ASSERT_GE(Compared, 8) << "mask " << Mask << " compared too little";
  }
}

TEST(InferenceCompile, EvalDropoutIsOptInExpectationScaling) {
  // A dropout net served two ways. Default: inference keeps the exact
  // training-parity semantics (deterministic mask RNG), preserving the
  // bitwise train/serve contract. Opt-in EvalDropout: the mask RNG is
  // skipped and the activation is scaled by KeepProb (the expectation),
  // the conventional eval-mode dropout.
  const double Keep = 0.8;
  core::Net Net(2);
  core::Ensemble *Data = layers::DataLayer(Net, "data", Shape{6});
  core::Ensemble *Fc = layers::FullyConnectedLayer(Net, "fc", Data, 5);
  core::Ensemble *Drop = layers::DropoutLayer(Net, "drop", Fc, Keep);
  core::Ensemble *Out = layers::FullyConnectedLayer(Net, "out", Drop, 3);
  core::Ensemble *Labels = layers::LabelLayer(Net, "labels");
  layers::SoftmaxLossLayer(Net, "loss", Out, Labels);

  engine::ExecOptions EO;
  EO.Deterministic = true;
  EO.NoMemPlan = true; // keep intermediates readable
  EO.Seed = 17;
  Tensor In = randomItem(Shape{2, 6}, 23);

  engine::Executor Train(compiler::compile(Net), EO);
  engine::Executor InferDefault(compiler::compileForward(Net), EO);
  compiler::CompileOptions Eval;
  Eval.EvalDropout = true;
  engine::Executor InferEval(compiler::compileForward(Net, Eval), EO);
  for (engine::Executor *Ex : {&Train, &InferDefault, &InferEval}) {
    Ex->setInput(In);
    Ex->forward();
  }

  // Default serving path: bitwise identical to the training forward,
  // dropped units and all.
  EXPECT_TRUE(bitwiseEqual(InferDefault.readBuffer("drop_value"),
                           Train.readBuffer("drop_value")));
  EXPECT_TRUE(bitwiseEqual(InferDefault.readBuffer("out_value"),
                           Train.readBuffer("out_value")));

  // Opt-in path: every unit present, scaled by KeepProb; necessarily
  // different from the masked training activation.
  Tensor Src = InferEval.readBuffer("fc_value");
  Tensor Scaled = InferEval.readBuffer("drop_value");
  ASSERT_EQ(Scaled.numElements(), Src.numElements());
  for (int64_t I = 0; I < Src.numElements(); ++I)
    EXPECT_EQ(Scaled.at(I), Src.at(I) * static_cast<float>(Keep))
        << "element " << I;
  EXPECT_FALSE(bitwiseEqual(Scaled, Train.readBuffer("drop_value")));

  // EvalDropout without Inference is inert: training always trains.
  compiler::CompileOptions TrainEval;
  TrainEval.EvalDropout = true;
  engine::Executor Train2(compiler::compile(Net, TrainEval), EO);
  Train2.setInput(In);
  Train2.forward();
  EXPECT_TRUE(bitwiseEqual(Train2.readBuffer("drop_value"),
                           Train.readBuffer("drop_value")));
}

// --- training-only APIs reject inference programs --------------------------

TEST(InferenceCompile, BackwardIsFatalWithDiagnostic) {
  core::Net Net(2);
  models::buildLatte(Net, testSpec(), /*WithLoss=*/true);
  engine::Executor Ex(compiler::compileForward(Net));
  Ex.forward(); // forward still works
  EXPECT_DEATH(Ex.backward(), "inference-compiled");
}

TEST(InferenceCompile, GradCheckRejectsWithDiagnosticInsteadOfCrashing) {
  core::Net Net(2);
  models::buildLatte(Net, testSpec(), /*WithLoss=*/true);
  engine::ExecOptions EO;
  EO.Deterministic = true;
  engine::Executor Ex(compiler::compileForward(Net), EO);
  verify::GradCheckReport R = verify::gradCheck(Ex);
  EXPECT_FALSE(R.Passed);
  EXPECT_EQ(R.NumChecked, 0);
  EXPECT_FALSE(R.Diagnostic.empty());
  EXPECT_NE(R.summary().find("REJECTED"), std::string::npos);
}
