//===- tests/analyze/races_test.cpp ---------------------------*- C++ -*-===//
///
/// Unit tests for the static race detector: write-write and read-write
/// conflicts across iterations of the parallel batch/tile space, the §6
/// lossy-accumulation whitelist (Note, not Error, in backward programs),
/// conservative-footprint downgrades to Warning, and the bound-region
/// refinement that keeps clipped padded windows from reporting false
/// cross-item conflicts.
///
//===----------------------------------------------------------------------===//

#include "analyze/races.h"

#include "analyze/effects.h"
#include "ir/builder.h"
#include "support/casting.h"

#include <gtest/gtest.h>

using namespace latte;
using namespace latte::analyze;
using namespace latte::compiler;
using namespace latte::ir;

namespace {

StmtPtr blockOf(StmtPtr S) {
  std::vector<StmtPtr> V;
  V.push_back(std::move(S));
  return block(std::move(V));
}

Program makeProg() {
  Program P;
  P.BatchSize = 4;
  BufferInfo A;
  A.Name = "a";
  A.Dims = Shape{8};
  A.Role = BufferRole::Value;
  P.Buffers.push_back(std::move(A));
  return P;
}

/// Collects effects of \p Body under `parallel for n in 0:4` and runs the
/// race detector over them.
DiagnosticReport racesOf(StmtPtr Body, bool IsBackward = false) {
  Program P = makeProg();
  BufferTable Bufs(P);
  StmtPtr Loop = forLoop("n", 4, std::move(Body));
  cast<ForStmt>(Loop.get())->annotations().Parallel = true;
  UnitEffects UE = collectUnitEffects(Loop.get(), Bufs, nullptr);
  DiagnosticReport R;
  detectRaces(UE, IsBackward, "batch[test]", R);
  return R;
}

} // namespace

TEST(RaceTest, DisjointPerIterationWritesAreClean) {
  DiagnosticReport R =
      racesOf(storeAssign("a", indexList(var("n")), floatConst(1.0)));
  EXPECT_TRUE(R.empty()) << R.render();
}

TEST(RaceTest, SharedElementWriteIsWriteWriteError) {
  DiagnosticReport R =
      racesOf(storeAssign("a", indexList(intConst(0)), floatConst(1.0)));
  EXPECT_TRUE(R.hasCode("race.write-write")) << R.render();
  EXPECT_EQ(R.errors(), 1);
}

TEST(RaceTest, CrossIterationReadIsReadWriteError) {
  // a[n] = a[0]: iteration 0 writes the element every other iteration
  // reads.
  DiagnosticReport R = racesOf(
      storeAssign("a", indexList(var("n")),
                  load("a", indexList(intConst(0)))));
  EXPECT_TRUE(R.hasCode("race.read-write")) << R.render();
}

TEST(RaceTest, StridedWritesWithDisjointFootprintsAreClean) {
  // a[2*n] with n in [0,4): elements {0,2,4,6}, pairwise distinct.
  DiagnosticReport R = racesOf(storeAssign(
      "a", indexList(mul(var("n"), intConst(2))), floatConst(0.0)));
  EXPECT_TRUE(R.empty()) << R.render();
}

TEST(RaceTest, AccumulationInBackwardIsWhitelistedAsNote) {
  // The §6 lossy-gradients pattern: every iteration does `a[0] +=`.
  StmtPtr Body = storeAdd("a", indexList(intConst(0)), floatConst(1.0));
  DiagnosticReport R = racesOf(std::move(Body), /*IsBackward=*/true);
  EXPECT_TRUE(R.hasCode("race.lossy-accumulation")) << R.render();
  EXPECT_EQ(R.errors(), 0) << R.render();
  EXPECT_EQ(R.notes(), 1);
}

TEST(RaceTest, AccumulationInForwardIsStillAnError) {
  StmtPtr Body = storeAdd("a", indexList(intConst(0)), floatConst(1.0));
  DiagnosticReport R = racesOf(std::move(Body), /*IsBackward=*/false);
  EXPECT_TRUE(R.hasCode("race.write-write")) << R.render();
}

TEST(RaceTest, SequentialUnitNeverRaces) {
  // No parallel annotation: no dims, no conflicts.
  Program P = makeProg();
  BufferTable Bufs(P);
  StmtPtr Loop = forLoop(
      "n", 4, storeAssign("a", indexList(intConst(0)), floatConst(1.0)));
  UnitEffects UE = collectUnitEffects(Loop.get(), Bufs, nullptr);
  EXPECT_TRUE(UE.Dims.empty());
  DiagnosticReport R;
  detectRaces(UE, false, "seq", R);
  EXPECT_TRUE(R.empty()) << R.render();
}

TEST(RaceTest, InexactOverlapDowngradesToWarning) {
  // Hand-built effects: two per-iteration slices whose conservative
  // (inexact) footprints overlap across iterations. Cannot be proven
  // either way -> Warning, not Error.
  UnitEffects UE;
  UE.Dims.push_back({"n", 0, 2});
  Access W;
  W.Write = true;
  W.Fp.Base.Coeffs["n"] = 4;
  W.Fp.Width = 6; // overhangs into the neighbor's slice
  W.Fp.Exact = false;
  W.Detail = "writer";
  UE.Effects.add("a", W);
  DiagnosticReport R;
  detectRaces(UE, false, "approx", R);
  EXPECT_TRUE(R.hasCode("race.possible")) << R.render();
  EXPECT_EQ(R.errors(), 0);
}

TEST(RaceTest, BoundRegionSuppressesFalseWindowConflict) {
  // The padded-window shape: an inexact read overhangs the per-iteration
  // slice, but its bound region is exactly the slice. Without the bound
  // the footprints overlap across iterations; with it the conflict is
  // refuted.
  UnitEffects UE;
  UE.Dims.push_back({"n", 0, 2});
  Access W;
  W.Write = true;
  W.Fp.Base.Coeffs["n"] = 16;
  W.Fp.Width = 16;
  W.Detail = "producer";
  UE.Effects.add("a", W);
  Access Rd;
  Rd.Read = true;
  Rd.Fp.Base.Coeffs["n"] = 16;
  Rd.Fp.Base.Const = -2; // window model reaches before the slice
  Rd.Fp.Width = 20;
  Rd.Fp.Exact = false;
  Rd.HasBound = true;
  Rd.Bound.Base.Coeffs["n"] = 16;
  Rd.Bound.Width = 16; // runtime clipping keeps it inside the slice
  Rd.Detail = "padded reader";
  UE.Effects.add("a", Rd);
  DiagnosticReport R;
  detectRaces(UE, false, "bounded", R);
  EXPECT_TRUE(R.empty()) << R.render();

  // Same effects minus the bound: reported as a possible race.
  UE.Effects.Buffers["a"][1].HasBound = false;
  DiagnosticReport R2;
  detectRaces(UE, false, "unbounded", R2);
  EXPECT_TRUE(R2.hasCode("race.possible")) << R2.render();
}

TEST(RaceTest, CollapsedTileDimensionParticipates) {
  // parallel for n collapse(2) over a tiled loop: both n and the tile
  // variable are race dimensions; writes disjoint in (n, t) are clean,
  // writes that ignore t collide across tiles.
  Program P;
  P.BatchSize = 2;
  BufferInfo B;
  B.Name = "a";
  B.Dims = Shape{2, 4};
  P.Buffers.push_back(std::move(B));
  BufferTable Bufs(P);

  auto MakeUnit = [&](bool UseTileVar) {
    ExprPtr Col = UseTileVar ? ExprPtr(var("t0")) : ExprPtr(intConst(0));
    auto Tiled = std::make_unique<TiledLoopStmt>(
        "t0", "y", 4, 1, 1,
        blockOf(storeAssign("a", indexList(var("n"), std::move(Col)),
                            floatConst(0.0))));
    Tiled->annotations().Parallel = true;
    auto Loop = std::make_unique<ForStmt>("n", intConst(0), 2,
                                          blockOf(std::move(Tiled)));
    Loop->annotations().Parallel = true;
    Loop->annotations().Collapse = 2;
    return StmtPtr(std::move(Loop));
  };

  StmtPtr Clean = MakeUnit(/*UseTileVar=*/true);
  UnitEffects UE = collectUnitEffects(Clean.get(), Bufs, nullptr);
  EXPECT_TRUE(UE.Collapsed);
  ASSERT_EQ(UE.Dims.size(), 2u);
  DiagnosticReport R;
  detectRaces(UE, false, "collapsed", R);
  EXPECT_TRUE(R.empty()) << R.render();

  StmtPtr Racy = MakeUnit(/*UseTileVar=*/false);
  UnitEffects UE2 = collectUnitEffects(Racy.get(), Bufs, nullptr);
  DiagnosticReport R2;
  detectRaces(UE2, false, "collapsed-racy", R2);
  EXPECT_TRUE(R2.hasCode("race.write-write")) << R2.render();
}
