//===- tests/analyze/verifier_test.cpp ------------------------*- C++ -*-===//
///
/// Unit tests for the static IR verifier: buffer-table integrity (dupes,
/// shapes, alias cycles), parameter bindings, task-label/unit parallelism,
/// loop-nest well-formedness, defined-before-use, kernel arity,
/// footprint bounds checking, and clean verification of real compiled
/// programs (zero false positives on the compiler's own output).
///
//===----------------------------------------------------------------------===//

#include "analyze/verifier.h"

#include "compiler/compiler.h"
#include "core/layers/layers.h"
#include "ir/builder.h"
#include "support/casting.h"
#include "verify/lattice.h"

#include <gtest/gtest.h>

using namespace latte;
using namespace latte::analyze;
using namespace latte::compiler;
using namespace latte::ir;

namespace {

BufferInfo makeBuffer(std::string Name, Shape Dims,
                      BufferRole Role = BufferRole::Value) {
  BufferInfo B;
  B.Name = std::move(Name);
  B.Dims = std::move(Dims);
  B.Role = Role;
  return B;
}

StmtPtr unitBlock(StmtPtr Unit, const char *Label = "forward") {
  std::vector<StmtPtr> V;
  V.push_back(std::move(Unit));
  return block(std::move(V), Label);
}

/// Minimal well-formed program: `parallel for n in 0:4 { x[n] = 0 }`.
Program makeProg(StmtPtr ForwardUnit) {
  Program P;
  P.BatchSize = 4;
  P.Buffers.push_back(makeBuffer("x", Shape{4}));
  P.Forward = unitBlock(std::move(ForwardUnit));
  P.ForwardTasks.push_back({"batch[x]", {"x"}});
  return P;
}

StmtPtr parallelStore(ExprPtr Index, ExprPtr Value) {
  StmtPtr Loop =
      forLoop("n", 4, storeAssign("x", indexList(std::move(Index)),
                                  std::move(Value)));
  cast<ForStmt>(Loop.get())->annotations().Parallel = true;
  return Loop;
}

} // namespace

TEST(VerifierTest, MinimalProgramVerifiesClean) {
  Program P = makeProg(parallelStore(var("n"), floatConst(0.0)));
  DiagnosticReport R = verifyProgram(P);
  EXPECT_FALSE(R.hasErrors()) << R.render();
}

TEST(VerifierTest, UseBeforeDefIsReported) {
  // Index variable 'q' is never bound by a loop.
  Program P = makeProg(parallelStore(var("q"), floatConst(0.0)));
  DiagnosticReport R = verifyProgram(P);
  EXPECT_TRUE(R.hasCode("ir.var-use")) << R.render();
}

TEST(VerifierTest, OutOfBoundsFootprintIsReported) {
  // x[n + 2] with n in [0,4) reaches element 5 of a 4-element buffer.
  Program P =
      makeProg(parallelStore(add(var("n"), intConst(2)), floatConst(0.0)));
  DiagnosticReport R = verifyProgram(P);
  EXPECT_TRUE(R.hasCode("ir.bounds")) << R.render();
}

TEST(VerifierTest, RankMismatchIsReported) {
  StmtPtr Loop = forLoop(
      "n", 4,
      storeAssign("x", indexList(var("n"), intConst(0)), floatConst(0.0)));
  Program P = makeProg(std::move(Loop));
  DiagnosticReport R = verifyProgram(P);
  EXPECT_TRUE(R.hasCode("ir.index-rank")) << R.render();
}

TEST(VerifierTest, WriteWriteRaceIsReported) {
  Program P = makeProg(parallelStore(intConst(0), floatConst(1.0)));
  DiagnosticReport R = verifyProgram(P);
  EXPECT_TRUE(R.hasCode("race.write-write")) << R.render();
}

TEST(VerifierTest, DuplicateBufferIsReported) {
  Program P = makeProg(parallelStore(var("n"), floatConst(0.0)));
  P.Buffers.push_back(makeBuffer("x", Shape{4}));
  DiagnosticReport R = verifyProgram(P);
  EXPECT_TRUE(R.hasCode("buffer.duplicate")) << R.render();
}

TEST(VerifierTest, AliasCycleIsReported) {
  Program P = makeProg(parallelStore(var("n"), floatConst(0.0)));
  BufferInfo A = makeBuffer("u", Shape{4});
  A.AliasOf = "v";
  BufferInfo B = makeBuffer("v", Shape{4});
  B.AliasOf = "u";
  P.Buffers.push_back(std::move(A));
  P.Buffers.push_back(std::move(B));
  DiagnosticReport R = verifyProgram(P);
  EXPECT_TRUE(R.hasCode("buffer.alias")) << R.render();
}

TEST(VerifierTest, AliasSizeMismatchIsReported) {
  Program P = makeProg(parallelStore(var("n"), floatConst(0.0)));
  BufferInfo A = makeBuffer("view", Shape{2});
  A.AliasOf = "x"; // x has 4 elements
  P.Buffers.push_back(std::move(A));
  DiagnosticReport R = verifyProgram(P);
  EXPECT_TRUE(R.hasCode("buffer.alias")) << R.render();
}

TEST(VerifierTest, BrokenParamBindingIsReported) {
  Program P = makeProg(parallelStore(var("n"), floatConst(0.0)));
  P.Params.push_back({"w", "w_grad", 1.0f}); // neither buffer exists
  DiagnosticReport R = verifyProgram(P);
  EXPECT_TRUE(R.hasCode("program.param-bindings")) << R.render();
}

TEST(VerifierTest, LabelUnitCountMismatchIsReported) {
  Program P = makeProg(parallelStore(var("n"), floatConst(0.0)));
  P.ForwardTasks.push_back({"phantom", {}}); // 2 labels, 1 unit
  DiagnosticReport R = verifyProgram(P);
  EXPECT_TRUE(R.hasCode("program.task-labels")) << R.render();
}

TEST(VerifierTest, BarrierLabelMismatchIsReported) {
  Program P = makeProg(barrier("sync"));
  // The unit is a barrier but its label lacks the "barrier:" prefix.
  DiagnosticReport R = verifyProgram(P);
  EXPECT_TRUE(R.hasCode("program.task-labels")) << R.render();
}

TEST(VerifierTest, NestedBarrierIsReported) {
  StmtPtr Loop = forLoop("n", 4, barrier("inside"));
  Program P = makeProg(std::move(Loop));
  DiagnosticReport R = verifyProgram(P);
  EXPECT_TRUE(R.hasCode("ir.barrier-placement")) << R.render();
}

TEST(VerifierTest, KernelArityMismatchIsReported) {
  // Zero expects 1 buffer + 1 int; pass no ints.
  StmtPtr K = kernelCall(KernelKind::Zero, bufArgs(KernelBufArg("x")), {});
  Program P = makeProg(std::move(K));
  DiagnosticReport R = verifyProgram(P);
  EXPECT_TRUE(R.hasCode("kernel.arity")) << R.render();
}

TEST(VerifierTest, DropoutRngInParallelLoopIsReported) {
  StmtPtr Loop = forLoop(
      "n", 4,
      kernelCall(KernelKind::DropoutMask, bufArgs(KernelBufArg("x")), {1},
                 {0.5}));
  cast<ForStmt>(Loop.get())->annotations().Parallel = true;
  Program P = makeProg(std::move(Loop));
  DiagnosticReport R = verifyProgram(P);
  EXPECT_TRUE(R.hasCode("kernel.rng-in-parallel")) << R.render();
}

TEST(VerifierTest, AssignToUndeclaredLocalIsReported) {
  StmtPtr Loop = forLoop(
      "n", 4, assignVar("acc", AccumKind::AddAssign, floatConst(1.0)));
  Program P = makeProg(std::move(Loop));
  DiagnosticReport R = verifyProgram(P);
  EXPECT_TRUE(R.hasCode("ir.var-use")) << R.render();
}

TEST(VerifierTest, CheckTogglesDisableBoundsAndRaces) {
  Program P = makeProg(parallelStore(intConst(0), floatConst(1.0)));
  VerifyOptions Opts;
  Opts.CheckRaces = false;
  DiagnosticReport R = verifyProgram(P, Opts);
  EXPECT_FALSE(R.hasCode("race.write-write")) << R.render();

  Program P2 =
      makeProg(parallelStore(add(var("n"), intConst(2)), floatConst(0.0)));
  VerifyOptions Opts2;
  Opts2.CheckBounds = false;
  DiagnosticReport R2 = verifyProgram(P2, Opts2);
  EXPECT_FALSE(R2.hasCode("ir.bounds")) << R2.render();
}

TEST(VerifierTest, CompiledMlpVerifiesCleanAcrossKeyMasks) {
  // The compiler's own output must verify with zero errors — fully
  // unoptimized (mask 0), all passes but recompute (mask 63), and fully
  // optimized including recompute (mask 127).
  core::Net Net(3);
  using namespace latte::layers;
  core::Ensemble *Data = DataLayer(Net, "data", Shape{12});
  core::Ensemble *Fc1 = FullyConnectedLayer(Net, "fc1", Data, 10);
  core::Ensemble *Act = ReluLayer(Net, "relu1", Fc1, /*InPlace=*/true);
  core::Ensemble *Fc2 = FullyConnectedLayer(Net, "fc2", Act, 4);
  core::Ensemble *Labels = LabelLayer(Net, "labels");
  SoftmaxLossLayer(Net, "loss", Fc2, Labels);

  for (unsigned Mask : {0u, 63u, 127u}) {
    verify::LatticeOptions LO;
    CompileOptions Copts = verify::optionsForMask(Mask, LO);
    Copts.VerifyEach = false; // exercised via verifyProgram directly
    Program P = compile(Net, Copts);
    DiagnosticReport R = verifyProgram(P);
    EXPECT_FALSE(R.hasErrors())
        << "mask " << Mask << ":\n"
        << R.render();
  }
}

TEST(VerifierTest, DiagnosticRenderingIsStructured) {
  Program P = makeProg(parallelStore(intConst(0), floatConst(1.0)));
  DiagnosticReport R = verifyProgram(P);
  ASSERT_TRUE(R.hasErrors());
  std::string Text = R.render();
  EXPECT_NE(Text.find("error [race.write-write]"), std::string::npos) << Text;
  EXPECT_NE(Text.find("batch[x]"), std::string::npos) << Text;
  EXPECT_NE(Text.find("error(s)"), std::string::npos) << Text;
}
