//===- tests/analyze/effects_test.cpp -------------------------*- C++ -*-===//
///
/// Unit tests for the buffer-effect analysis: affine index extraction,
/// footprint canonicalization, per-unit effect collection over stores,
/// loads, and kernel calls, and the conservative widening rules
/// (index-table accesses, padded window kernels and their guaranteed
/// bound regions).
///
//===----------------------------------------------------------------------===//

#include "analyze/effects.h"

#include "ir/builder.h"
#include "support/casting.h"

#include <gtest/gtest.h>

using namespace latte;
using namespace latte::analyze;
using namespace latte::compiler;
using namespace latte::ir;

namespace {

BufferInfo makeBuffer(std::string Name, Shape Dims,
                      BufferRole Role = BufferRole::Value) {
  BufferInfo B;
  B.Name = std::move(Name);
  B.Dims = std::move(Dims);
  B.Role = Role;
  return B;
}

/// Program with one 4x8 value buffer "out" and an 8-element "vec".
Program makeProg() {
  Program P;
  P.BatchSize = 4;
  P.Buffers.push_back(makeBuffer("out", Shape{4, 8}));
  P.Buffers.push_back(makeBuffer("vec", Shape{8}));
  return P;
}

const Access &soleAccess(const UnitEffects &UE, const std::string &Buf) {
  auto It = UE.Effects.Buffers.find(Buf);
  EXPECT_NE(It, UE.Effects.Buffers.end()) << "no accesses on " << Buf;
  EXPECT_EQ(It->second.size(), 1u);
  return It->second.front();
}

} // namespace

TEST(AffineExprTest, ExtractsLinearForms) {
  // 8*n + 3
  ExprPtr E = add(mul(var("n"), intConst(8)), intConst(3));
  AffineExpr A = affineOf(E.get());
  ASSERT_TRUE(A.Affine);
  EXPECT_EQ(A.coeff("n"), 8);
  EXPECT_EQ(A.Const, 3);
  EXPECT_EQ(A.str(), "8*n + 3");

  // (n - n) collapses to the constant 0.
  ExprPtr Z = sub(var("n"), var("n"));
  AffineExpr AZ = affineOf(Z.get());
  EXPECT_TRUE(AZ.isConstant());
  EXPECT_EQ(AZ.Const, 0);
}

TEST(AffineExprTest, NonAffineIsFlagged) {
  ExprPtr E = mul(var("a"), var("b"));
  EXPECT_FALSE(affineOf(E.get()).Affine);
  ExprPtr D = div(var("a"), intConst(2));
  EXPECT_FALSE(affineOf(D.get()).Affine);
}

TEST(FootprintTest, CanonicalizeCoalescesContiguousLevels) {
  Footprint Fp;
  Fp.Width = 4;
  Fp.Levels = {{8, 100}, {8, 4}}; // inner level is contiguous with width
  Fp.canonicalize();
  ASSERT_EQ(Fp.Levels.size(), 1u);
  EXPECT_EQ(Fp.Levels[0].Stride, 100);
  EXPECT_EQ(Fp.Width, 4 * 7 + 4); // 8 steps of 4 starting inside [0,4)
  EXPECT_EQ(Fp.spanEnd(), 100 * 7 + 32);
}

TEST(FootprintTest, CanonicalizeDropsDegenerateLevels) {
  Footprint Fp;
  Fp.Levels = {{1, 100}, {5, 0}, {3, 10}};
  Fp.canonicalize();
  ASSERT_EQ(Fp.Levels.size(), 1u);
  EXPECT_EQ(Fp.Levels[0].Extent, 3);
}

TEST(EffectsTest, StoreUnderParallelAndSequentialLoops) {
  // parallel for n in 0:4 { for i in 0:8 { out[n, i] = 1.0 } }
  Program P = makeProg();
  BufferTable Bufs(P);
  StmtPtr Loop = forLoop(
      "n", 4,
      forLoop("i", 8,
              storeAssign("out", indexList(var("n"), var("i")),
                          floatConst(1.0))));
  cast<ForStmt>(Loop.get())->annotations().Parallel = true;

  UnitEffects UE = collectUnitEffects(Loop.get(), Bufs, nullptr);
  ASSERT_EQ(UE.Dims.size(), 1u);
  EXPECT_EQ(UE.Dims[0].Var, "n");
  EXPECT_EQ(UE.Dims[0].Extent, 4);

  const Access &A = soleAccess(UE, "out");
  EXPECT_TRUE(A.Write);
  EXPECT_FALSE(A.Read);
  EXPECT_TRUE(A.Fp.Exact);
  // The sequential i loop (stride 1, extent 8) coalesces into the width.
  EXPECT_TRUE(A.Fp.Levels.empty());
  EXPECT_EQ(A.Fp.Width, 8);
  EXPECT_EQ(A.Fp.Base.coeff("n"), 8);
}

TEST(EffectsTest, AccumulatingStoreIsReadModifyWrite) {
  Program P = makeProg();
  BufferTable Bufs(P);
  StmtPtr Loop =
      forLoop("n", 4,
              storeAdd("vec", indexList(intConst(0)), floatConst(1.0)));
  cast<ForStmt>(Loop.get())->annotations().Parallel = true;
  UnitEffects UE = collectUnitEffects(Loop.get(), Bufs, nullptr);
  const Access &A = soleAccess(UE, "vec");
  EXPECT_TRUE(A.Write);
  EXPECT_TRUE(A.Read);
  EXPECT_TRUE(A.Accumulating);
  EXPECT_TRUE(A.Fp.Base.isConstant());
}

TEST(EffectsTest, AliasedAccessResolvesToRoot) {
  Program P = makeProg();
  BufferInfo Alias = makeBuffer("view", Shape{4, 8});
  Alias.AliasOf = "out";
  P.Buffers.push_back(std::move(Alias));
  BufferTable Bufs(P);
  ASSERT_NE(Bufs.floatInfo("view"), nullptr);
  EXPECT_EQ(Bufs.floatInfo("view")->Root, "out");

  StmtPtr S = storeAssign("view", indexList(intConst(1), intConst(2)),
                          floatConst(0.0));
  UnitEffects UE = collectUnitEffects(S.get(), Bufs, nullptr);
  // Keyed under the alias root so view/out accesses can race-check.
  EXPECT_EQ(UE.Effects.Buffers.count("out"), 1u);
  EXPECT_EQ(UE.Effects.Buffers.count("view"), 0u);
}

TEST(EffectsTest, NonAffineIndexWidensToWholeBuffer) {
  Program P = makeProg();
  BufferTable Bufs(P);
  // vec[n*n] cannot be summarized.
  StmtPtr Loop = forLoop(
      "n", 4,
      storeAssign("vec", indexList(mul(var("n"), var("n"))),
                  floatConst(0.0)));
  cast<ForStmt>(Loop.get())->annotations().Parallel = true;
  UnitEffects UE = collectUnitEffects(Loop.get(), Bufs, nullptr);
  const Access &A = soleAccess(UE, "vec");
  EXPECT_FALSE(A.Fp.Exact);
  EXPECT_EQ(A.Fp.Width, 8); // whole buffer
}

TEST(EffectsTest, KernelSignaturesMatchRuntimeLayouts) {
  EXPECT_EQ(kernelSignature(KernelKind::Sgemm).NumInts, 9);
  EXPECT_EQ(kernelSignature(KernelKind::Im2ColRows).NumBufs, 2);
  EXPECT_EQ(kernelSignature(KernelKind::Im2ColRows).NumExprs, 1);
  EXPECT_EQ(kernelSignature(KernelKind::Scale).NumFloats, 1);
  EXPECT_TRUE(kernelBufArgIsInt(KernelKind::Gather2D, 2));
  EXPECT_FALSE(kernelBufArgIsInt(KernelKind::Gather2D, 0));
  EXPECT_TRUE(kernelBufArgIsInt(KernelKind::MaxPoolBwdRows, 2));
  EXPECT_FALSE(kernelBufArgIsInt(KernelKind::Sgemm, 2));
}

TEST(EffectsTest, PaddedWindowReadIsInexactButBounded) {
  // Im2ColRows with Pad=1: the affine window model overhangs the image by
  // Pad rows on each side, so the footprint is inexact — but a bound
  // footprint pins the access inside the kernel's own image slice.
  int64_t C = 2, InH = 4, InW = 4, K = 3, S = 1, Pad = 1;
  int64_t OutH = (InH + 2 * Pad - K) / S + 1;
  int64_t OutW = (InW + 2 * Pad - K) / S + 1;
  Program P;
  P.BatchSize = 2;
  P.Buffers.push_back(makeBuffer("img", Shape{2, C, InH, InW}));
  P.Buffers.push_back(
      makeBuffer("col", Shape{2, C * K * K, OutH * OutW},
                 BufferRole::Input));
  BufferTable Bufs(P);

  int64_t Item = C * InH * InW;
  StmtPtr Loop = forLoop(
      "n", 2,
      kernelCall(KernelKind::Im2ColRows,
                 bufArgs(KernelBufArg("col",
                                      mul(var("n"),
                                          intConst(C * K * K * OutH * OutW))),
                         KernelBufArg("img", mul(var("n"), intConst(Item)))),
                 {C, InH, InW, K, S, Pad, OutH}, {},
                 indexList(intConst(0))));
  cast<ForStmt>(Loop.get())->annotations().Parallel = true;
  UnitEffects UE = collectUnitEffects(Loop.get(), Bufs, nullptr);

  const Access &In = soleAccess(UE, "img");
  EXPECT_TRUE(In.Read);
  EXPECT_FALSE(In.Write);
  EXPECT_FALSE(In.Fp.Exact) << "padded windows clip at runtime";
  ASSERT_TRUE(In.HasBound);
  EXPECT_TRUE(In.Bound.Exact);
  EXPECT_EQ(In.Bound.Base.coeff("n"), Item);
  EXPECT_EQ(In.Bound.Width, Item);

  const Access &Out = soleAccess(UE, "col");
  EXPECT_TRUE(Out.Write);
  EXPECT_TRUE(Out.Fp.Exact);
}

TEST(EffectsTest, DumpEffectsIsDeterministicText) {
  Program P = makeProg();
  BufferTable Bufs(P);
  StmtPtr S = storeAdd("vec", indexList(intConst(3)), floatConst(1.0));
  UnitEffects UE = collectUnitEffects(S.get(), Bufs, nullptr);
  std::string Dump = dumpEffects(UE.Effects);
  EXPECT_NE(Dump.find("vec"), std::string::npos);
  EXPECT_NE(Dump.find("accum"), std::string::npos);
  EXPECT_EQ(Dump, dumpEffects(UE.Effects));
}
