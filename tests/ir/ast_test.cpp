//===- tests/ir/ast_test.cpp ----------------------------------*- C++ -*-===//

#include "ir/builder.h"
#include "ir/printer.h"
#include "ir/visitor.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

using namespace latte;
using namespace latte::ir;

namespace {

// Helper to build index vectors tersely in tests.
template <typename... Args> std::vector<ExprPtr> exprs(Args... A) {
  std::vector<ExprPtr> V;
  (V.push_back(std::move(A)), ...);
  return V;
}

StmtPtr makeMacLoop() {
  // for i in 0:+K { value[n] += inputs[i] * weights[i, n] }
  return forLoop(
      "i", 8,
      storeAdd("value", exprs(var("n")),
               mul(load("inputs", exprs(var("i"))),
                   load("weights", exprs(var("i"), var("n"))))));
}

} // namespace

TEST(IrExprTest, KindsAndCasting) {
  ExprPtr E = add(intConst(1), var("x"));
  EXPECT_TRUE(isa<BinaryExpr>(E.get()));
  EXPECT_FALSE(isa<LoadExpr>(E.get()));
  auto *B = cast<BinaryExpr>(E.get());
  EXPECT_EQ(B->op(), BinaryOpKind::Add);
  EXPECT_TRUE(isa<IntConstExpr>(B->lhs()));
  EXPECT_EQ(dyn_cast<VarExpr>(B->rhs())->name(), "x");
  EXPECT_EQ(dyn_cast<IntConstExpr>(B->rhs()), nullptr);
}

TEST(IrExprTest, CloneIsDeep) {
  ExprPtr E = mul(load("a", exprs(var("i"))), floatConst(2.0));
  ExprPtr C = E->clone();
  EXPECT_TRUE(exprEquals(E.get(), C.get()));
  EXPECT_NE(E.get(), C.get());
  // Mutating the clone's buffer does not affect the original.
  cast<LoadExpr>(cast<BinaryExpr>(C.get())->lhs())->setBuffer("b");
  EXPECT_FALSE(exprEquals(E.get(), C.get()));
}

TEST(IrExprTest, PrintExpr) {
  ExprPtr E = add(mul(load("w", exprs(var("i"), var("n"))),
                      load("in", exprs(var("i")))),
                  floatConst(1.0));
  EXPECT_EQ(printExpr(E.get()), "((w[i, n] * in[i]) + 1.0)");
  EXPECT_EQ(printExpr(max(var("a"), floatConst(0.0)).get()),
            "max(a, 0.0)");
  EXPECT_EQ(printExpr(select(compare(CompareOpKind::GT, var("v"),
                                     floatConst(0.0)),
                             var("g"), floatConst(0.0))
                          .get()),
            "select((v > 0.0), g, 0.0)");
}

TEST(IrStmtTest, PrintLoopNest) {
  StmtPtr S = makeMacLoop();
  std::string Text = printStmt(S.get());
  EXPECT_EQ(Text, "for i in 0:+8\n"
                  "  value[n] += (inputs[i] * weights[i, n])\n");
}

TEST(IrStmtTest, CloneLoopNest) {
  StmtPtr S = makeMacLoop();
  StmtPtr C = S->clone();
  EXPECT_EQ(printStmt(S.get()), printStmt(C.get()));
}

TEST(IrStmtTest, TiledLoopPrinting) {
  auto Body = storeAssign("out", exprs(var("y")), floatConst(0.0));
  auto T = std::make_unique<TiledLoopStmt>("yt", "y", 4, 8, 2,
                                           std::move(Body));
  std::string Text = printStmt(T.get());
  EXPECT_NE(Text.find("tiled yt in 0:4"), std::string::npos);
  EXPECT_NE(Text.find("tile 8"), std::string::npos);
  EXPECT_NE(Text.find("dist 2"), std::string::npos);
}

TEST(IrStmtTest, KernelCallPrinting) {
  StmtPtr K = kernelCall(
      KernelKind::Sgemm,
      bufArgs(KernelBufArg("A", mul(var("n"), intConst(100))),
              KernelBufArg("B"), KernelBufArg("C")),
      {4, 5, 6, 6, 5, 5, 1, 0, 1});
  std::string Text = printStmt(K.get());
  EXPECT_NE(Text.find("sgemm(A+(n * 100), B, C, 4, 5, 6"), std::string::npos);
}

TEST(IrVisitorTest, WalkExprsVisitsAll) {
  ExprPtr E = add(mul(var("a"), var("b")), load("c", exprs(var("i"))));
  int Count = 0, Vars = 0;
  walkExprs(E.get(), [&](const Expr *Node) {
    ++Count;
    if (isa<VarExpr>(Node))
      ++Vars;
  });
  EXPECT_EQ(Count, 6); // add, mul, a, b, load, i
  EXPECT_EQ(Vars, 3);
}

TEST(IrVisitorTest, WalkStmtsVisitsNested) {
  StmtPtr S = forLoop("n", 2, forLoop("i", 3, makeMacLoop()));
  int Fors = 0;
  walkStmts(S.get(), [&](const Stmt *Node) {
    if (isa<ForStmt>(Node))
      ++Fors;
  });
  EXPECT_EQ(Fors, 3);
}

TEST(IrVisitorTest, SubstituteVar) {
  StmtPtr S = makeMacLoop();
  substituteVar(S.get(), "n", *intConst(7));
  std::string Text = printStmt(S.get());
  EXPECT_NE(Text.find("value[7]"), std::string::npos);
  EXPECT_NE(Text.find("weights[i, 7]"), std::string::npos);
  // Loop variable i untouched.
  EXPECT_NE(Text.find("inputs[i]"), std::string::npos);
}

TEST(IrVisitorTest, FoldConstants) {
  ExprPtr E = add(mul(intConst(3), intConst(4)), intConst(5));
  E = foldConstants(std::move(E));
  ASSERT_TRUE(isa<IntConstExpr>(E.get()));
  EXPECT_EQ(cast<IntConstExpr>(E.get())->value(), 17);
}

TEST(IrVisitorTest, FoldIdentities) {
  ExprPtr E = add(mul(var("x"), intConst(1)), intConst(0));
  E = foldConstants(std::move(E));
  EXPECT_EQ(printExpr(E.get()), "x");

  ExprPtr Z = mul(var("x"), intConst(0));
  Z = foldConstants(std::move(Z));
  ASSERT_TRUE(isa<IntConstExpr>(Z.get()));
  EXPECT_EQ(cast<IntConstExpr>(Z.get())->value(), 0);
}

TEST(IrVisitorTest, EvalConstInt) {
  int64_t Out = 0;
  ExprPtr E = mul(add(intConst(2), intConst(3)), intConst(4));
  EXPECT_TRUE(evalConstInt(E.get(), Out));
  EXPECT_EQ(Out, 20);
  ExprPtr V = add(var("x"), intConst(1));
  EXPECT_FALSE(evalConstInt(V.get(), Out));
}

TEST(IrVisitorTest, RewriteExprReplacesBuffers) {
  StmtPtr S = makeMacLoop();
  rewriteExprsInStmt(S.get(), [](const Expr *Node) -> ExprPtr {
    if (const auto *L = dyn_cast<LoadExpr>(Node))
      if (L->buffer() == "inputs") {
        std::vector<ExprPtr> Indices;
        for (const ExprPtr &I : L->indices())
          Indices.push_back(I->clone());
        return load("shared_inputs", std::move(Indices));
      }
    return nullptr;
  });
  EXPECT_NE(printStmt(S.get()).find("shared_inputs[i]"), std::string::npos);
}

TEST(IrVisitorTest, ExprEqualsDistinguishesOps) {
  ExprPtr A = add(var("x"), var("y"));
  ExprPtr B = sub(var("x"), var("y"));
  ExprPtr C = add(var("x"), var("y"));
  EXPECT_FALSE(exprEquals(A.get(), B.get()));
  EXPECT_TRUE(exprEquals(A.get(), C.get()));
}

TEST(IrPrinterTest, FloatConstantsRoundTripExactly) {
  // Shortest-round-trip formatting: parsing the printed text recovers the
  // exact double, including values the old 6-significant-digit stream
  // default would have truncated.
  for (double V : {0.1, 1.0 / 3.0, 2.5e-8, -0.875, 1234567.25, 1e300,
                   0.30000000000000004}) {
    std::string Text = printExpr(floatConst(V).get());
    EXPECT_EQ(std::stod(Text), V) << Text;
  }
  // Integral doubles keep the ".0" marker.
  EXPECT_EQ(printExpr(floatConst(1.0).get()), "1.0");
  EXPECT_EQ(printExpr(floatConst(-3.0).get()), "-3.0");
  EXPECT_EQ(printExpr(floatConst(0.1).get()), "0.1");
}

TEST(IrPrinterTest, AdjacentDoublesPrintDistinctly) {
  double A = 0.1;
  double B = std::nextafter(A, 1.0);
  EXPECT_NE(printExpr(floatConst(A).get()), printExpr(floatConst(B).get()));
}

TEST(IrPrinterTest, PrintIsStableAcrossCloneAndReprint) {
  // Kernel float args and float constants must print identically on every
  // pass over the same IR (clone -> reprint round-trip).
  StmtPtr K = kernelCall(KernelKind::Scale, bufArgs(KernelBufArg("buf")),
                         {128}, {0.012345678901234567});
  std::vector<StmtPtr> Stmts;
  Stmts.push_back(std::move(K));
  Stmts.push_back(forLoop("i", 4, storeAssign("buf", exprs(var("i")),
                                              floatConst(1.0 / 3.0))));
  StmtPtr S = block(std::move(Stmts), "stability");
  std::string First = printStmt(S.get());
  StmtPtr C = S->clone();
  EXPECT_EQ(First, printStmt(C.get()));
  EXPECT_EQ(First, printStmt(S.get()));
  EXPECT_NE(First.find("0.012345678901234567"), std::string::npos) << First;
}

TEST(IrStmtTest, BarrierAndBlockLabels) {
  std::vector<StmtPtr> Stmts;
  Stmts.push_back(barrier("normalization ensemble"));
  StmtPtr B = block(std::move(Stmts), "forward softmax");
  std::string Text = printStmt(B.get());
  EXPECT_NE(Text.find("# forward softmax"), std::string::npos);
  EXPECT_NE(Text.find("barrier # normalization ensemble"),
            std::string::npos);
}
