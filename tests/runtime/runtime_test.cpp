//===- tests/runtime/runtime_test.cpp -------------------------*- C++ -*-===//
///
/// Runtime tests: data-parallel gradient summation (synchronized and
/// lossy), the cluster scaling simulator, and the heterogeneous
/// accelerator scheduler.
///
//===----------------------------------------------------------------------===//

#include "core/layers/layers.h"
#include "data/datasets.h"
#include "models/models.h"
#include "runtime/accelerator.h"
#include "runtime/cluster_sim.h"
#include "runtime/data_parallel.h"

#include <gtest/gtest.h>

using namespace latte;
using namespace latte::runtime;

namespace {

NetBuilder mlpBuilder() {
  return [](core::Net &Net) {
    models::ModelSpec Spec = models::mlp(8, {10}, 3);
    models::buildLatte(Net, Spec, /*WithLoss=*/true);
  };
}

Tensor randomBatch(int64_t Batch, int64_t Items, uint64_t Seed) {
  Rng R(Seed);
  Tensor T(Shape{Batch, Items});
  R.fillGaussian(T, 0.0f, 1.0f);
  return T;
}

Tensor labelBatch(int64_t Batch, int64_t Classes) {
  Tensor T(Shape{Batch});
  for (int64_t I = 0; I < Batch; ++I)
    T.at(I) = static_cast<float>(I % Classes);
  return T;
}

} // namespace

TEST(DataParallelTest, MatchesSingleWorkerStep) {
  // A 4-worker synchronized step must equal a 1-worker step over the same
  // global batch.
  const int64_t Batch = 8;
  Tensor Data = randomBatch(Batch, 8, 5);
  Tensor Labels = labelBatch(Batch, 3);

  solvers::SolverParameters P;
  P.Lr = solvers::LRPolicy::fixed(0.1);
  P.Momentum = solvers::MomPolicy::fixed(0.0);

  DataParallelOptions Single;
  Single.NumWorkers = 1;
  DataParallelTrainer T1(mlpBuilder(), Batch, Single);
  solvers::SgdSolver S1(P);
  T1.trainStep(Data, Labels, S1, 0);

  DataParallelOptions Quad;
  Quad.NumWorkers = 4;
  DataParallelTrainer T4(mlpBuilder(), Batch, Quad);
  solvers::SgdSolver S4(P);
  T4.trainStep(Data, Labels, S4, 0);

  for (const compiler::ParamBinding &B : T1.worker(0).program().Params) {
    Tensor W1 = T1.worker(0).readBuffer(B.Param);
    Tensor W4 = T4.worker(0).readBuffer(B.Param);
    EXPECT_EQ(W1.firstMismatch(W4, 1e-5f, 1e-4f), -1) << B.Param;
  }
}

TEST(DataParallelTest, LossyMatchesSynchronizedHere) {
  // Race-free on this machine's scheduling granularity, lossy and
  // synchronized reductions must produce the same step (the Figure 20
  // premise at small scale).
  const int64_t Batch = 8;
  Tensor Data = randomBatch(Batch, 8, 17);
  Tensor Labels = labelBatch(Batch, 3);
  solvers::SolverParameters P;
  P.Lr = solvers::LRPolicy::fixed(0.05);

  DataParallelOptions Sync;
  Sync.NumWorkers = 2;
  DataParallelTrainer Ts(mlpBuilder(), Batch, Sync);
  solvers::SgdSolver Ss(P);
  double LossSync = Ts.trainStep(Data, Labels, Ss, 0);

  DataParallelOptions Lossy;
  Lossy.NumWorkers = 2;
  Lossy.LossyGradients = true;
  DataParallelTrainer Tl(mlpBuilder(), Batch, Lossy);
  solvers::SgdSolver Sl(P);
  double LossLossy = Tl.trainStep(Data, Labels, Sl, 0);

  EXPECT_NEAR(LossSync, LossLossy, 1e-5);
}

TEST(DataParallelTest, ReplicasStayConsistent) {
  const int64_t Batch = 6;
  DataParallelOptions O;
  O.NumWorkers = 3;
  DataParallelTrainer T(mlpBuilder(), Batch, O);
  solvers::SolverParameters P;
  P.Lr = solvers::LRPolicy::fixed(0.1);
  solvers::SgdSolver S(P);
  for (int Iter = 0; Iter < 3; ++Iter)
    T.trainStep(randomBatch(Batch, 8, 100 + Iter), labelBatch(Batch, 3), S,
                Iter);
  // All replicas hold identical parameters after broadcasts.
  for (const compiler::ParamBinding &B : T.worker(0).program().Params) {
    Tensor W0 = T.worker(0).readBuffer(B.Param);
    for (int W = 1; W < T.numWorkers(); ++W)
      EXPECT_EQ(T.worker(W).readBuffer(B.Param).firstMismatch(W0, 0.0f), -1);
  }
}

TEST(DataParallelTest, TrainingConvergesAcrossWorkers) {
  data::SyntheticMnist Ds(256, 3, 4, 12, 0.1f, 1);
  NetBuilder Builder = [](core::Net &Net) {
    models::ModelSpec Spec = models::mlp(144, {32}, 4);
    Spec.InputDims = Shape{1, 12, 12};
    models::buildLatte(Net, Spec, true);
  };
  const int64_t Batch = 16;
  DataParallelOptions O;
  O.NumWorkers = 4;
  DataParallelTrainer T(Builder, Batch, O);
  solvers::SolverParameters P;
  P.Lr = solvers::LRPolicy::fixed(0.05);
  P.Momentum = solvers::MomPolicy::fixed(0.9);
  solvers::SgdSolver S(P);

  Tensor Data(Shape{Batch, 1, 12, 12});
  Tensor Labels(Shape{Batch});
  double FirstLoss = 0, LastLoss = 0;
  for (int Iter = 0; Iter < 60; ++Iter) {
    for (int64_t I = 0; I < Batch; ++I)
      Labels.at(I) = static_cast<float>(
          Ds.fillItem((Iter * Batch + I) % Ds.size(),
                      Data.data() + I * 144));
    double Loss = T.trainStep(Data, Labels, S, Iter);
    if (Iter == 0)
      FirstLoss = Loss;
    LastLoss = Loss;
  }
  EXPECT_LT(LastLoss, FirstLoss * 0.5);
  EXPECT_GT(T.lastAccuracy(), 0.7);
}

//===----------------------------------------------------------------------===//
// Cluster simulator
//===----------------------------------------------------------------------===//

TEST(ClusterSimTest, AllreduceCostModel) {
  NetworkModel Net;
  EXPECT_DOUBLE_EQ(Net.allreduceSeconds(1, 1 << 20), 0.0);
  double T2 = Net.allreduceSeconds(2, 1 << 20);
  double T4 = Net.allreduceSeconds(4, 1 << 20);
  EXPECT_GT(T2, 0.0);
  // Ring allreduce volume per link converges; time grows sub-linearly.
  EXPECT_LT(T4, 2.5 * T2);
}

TEST(ClusterSimTest, LayerFlopsOrdering) {
  models::ModelSpec Spec = models::vggA(0.25);
  std::vector<double> Flops = layerFlops(Spec);
  ASSERT_EQ(Flops.size(), Spec.Layers.size() + 1);
  // Convolutions dominate pooling.
  EXPECT_GT(Flops[0], Flops[2] * 10);
}

TEST(ClusterSimTest, ProfilesApportionMeasuredTime) {
  models::ModelSpec Spec = models::mlp(100, {50}, 10);
  std::vector<LayerProfile> P = estimateLayerProfiles(Spec, 8, 1.0, 2.0);
  double Fwd = 0, Bwd = 0;
  for (const LayerProfile &L : P) {
    Fwd += L.FwdSeconds;
    Bwd += L.BwdSeconds;
  }
  EXPECT_NEAR(Fwd, 1.0, 1e-9);
  EXPECT_NEAR(Bwd, 2.0, 1e-9);
}

TEST(ClusterSimTest, StrongScalingEfficiencyDecreases) {
  models::ModelSpec Spec = models::vggA(0.5);
  std::vector<LayerProfile> P = estimateLayerProfiles(Spec, 512, 60.0,
                                                      120.0);
  ClusterConfig C;
  double T1 = 0;
  std::vector<double> Eff;
  for (int Nodes : {1, 2, 4, 8, 16, 32, 64}) {
    C.Nodes = Nodes;
    ClusterResult R = simulateIteration(P, C, 512 / Nodes, 512);
    if (Nodes == 1)
      T1 = R.IterSeconds;
    Eff.push_back(T1 / (Nodes * R.IterSeconds));
  }
  EXPECT_NEAR(Eff[0], 1.0, 1e-9);
  for (size_t I = 1; I < Eff.size(); ++I)
    EXPECT_LE(Eff[I], Eff[I - 1] + 1e-9);
  EXPECT_GT(Eff[5], 0.5); // 32 nodes still reasonably efficient
}

TEST(ClusterSimTest, OverlapBeatsNoOverlap) {
  models::ModelSpec Spec = models::alexNet(0.5);
  std::vector<LayerProfile> P = estimateLayerProfiles(Spec, 64, 5.0, 10.0);
  ClusterConfig With, Without;
  With.Nodes = Without.Nodes = 16;
  Without.OverlapComm = false;
  double Tw = simulateIteration(P, With, 64, 64).IterSeconds;
  double To = simulateIteration(P, Without, 64, 64).IterSeconds;
  EXPECT_LT(Tw, To);
}

TEST(ClusterSimTest, WeakScalingNearLinear) {
  models::ModelSpec Spec = models::alexNet(0.5);
  std::vector<LayerProfile> P = estimateLayerProfiles(Spec, 64, 5.0, 10.0);
  ClusterConfig C;
  C.Nodes = 1;
  double T1 = clusterThroughput(P, C, 64, 64);
  C.Nodes = 32;
  double T32 = clusterThroughput(P, C, 64, 64);
  EXPECT_GT(T32, 0.8 * 32 * T1);
}

//===----------------------------------------------------------------------===//
// Accelerator scheduler
//===----------------------------------------------------------------------===//

namespace {

HeterogeneousConfig phiConfig(int Cards) {
  HeterogeneousConfig C;
  C.HostSecondsPerItem = 0.01;
  C.BytesPerItem = 3 * 224 * 224 * 4;
  C.GradBytes = 8LL << 20;
  for (int I = 0; I < Cards; ++I)
    C.Devices.push_back(DeviceModel{0.55, 6e9, 50e-6});
  return C;
}

} // namespace

TEST(AcceleratorTest, AutotuneBalancesHostAndDevice) {
  HeterogeneousScheduler S(phiConfig(1));
  Schedule Sch = S.autotune(128);
  EXPECT_GT(Sch.DeviceChunks[0], 16); // grew past the initial chunk
  EXPECT_GT(Sch.HostItems, 0);
  EXPECT_EQ(Sch.HostItems + Sch.DeviceChunks[0], 128);
  // Balanced: neither side more than ~35% slower than the other.
  double Host = Sch.HostItems * 0.01;
  double Dev = S.deviceComputeSeconds(0, Sch.DeviceChunks[0]);
  EXPECT_LT(std::abs(Host - Dev) / std::max(Host, Dev), 0.35);
}

TEST(AcceleratorTest, ThroughputImprovesPerCard) {
  double T0 = HeterogeneousScheduler(phiConfig(0)).throughput(128)
                  .ItemsPerSecond;
  double T1 = HeterogeneousScheduler(phiConfig(1)).throughput(128)
                  .ItemsPerSecond;
  double T2 = HeterogeneousScheduler(phiConfig(2)).throughput(128)
                  .ItemsPerSecond;
  EXPECT_GT(T1, 1.25 * T0); // each card adds meaningful throughput
  EXPECT_GT(T2, 1.15 * T1);
  // The paper reports ~+50% per card with devices roughly half the host's
  // speed; allow a generous band around that shape.
  EXPECT_LT(T1, 1.8 * T0);
}

TEST(AcceleratorTest, DoubleBufferingHidesUploads) {
  // A slow PCIe link makes the upload visible whenever it is not hidden.
  HeterogeneousConfig C = phiConfig(1);
  C.Devices[0].PcieBytesPerSec = 2e8;
  HeterogeneousScheduler S(C);
  Schedule Sch = S.autotune(128);
  ASSERT_GT(Sch.DeviceChunks[0], 0);
  double First = S.iterationSeconds(Sch, /*FirstIteration=*/true);
  double Steady = S.iterationSeconds(Sch, /*FirstIteration=*/false);
  EXPECT_LT(Steady, First);

  C.DoubleBuffering = false;
  HeterogeneousScheduler S2(C);
  double NoDb = S2.iterationSeconds(Sch, /*FirstIteration=*/false);
  EXPECT_GT(NoDb, Steady);
}

TEST(AcceleratorTest, NoDevicesFallsBackToHost) {
  HeterogeneousScheduler S(phiConfig(0));
  ThroughputResult R = S.throughput(64);
  EXPECT_EQ(R.Chosen.HostItems, 64);
  EXPECT_NEAR(R.ItemsPerSecond, 100.0, 1e-6);
}
