//===- tests/runtime/determinism_test.cpp ---------------------*- C++ -*-===//
///
/// Determinism regression: two DataParallelTrainer runs with the same seed
/// in synchronized mode must produce bitwise-identical parameters after
/// several steps. Lossy mode races by design (§3.1 / Figure 20) and is
/// only required to run, not to reproduce.
///
//===----------------------------------------------------------------------===//

#include "core/layers/layers.h"
#include "models/models.h"
#include "runtime/data_parallel.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace latte;
using namespace latte::runtime;

namespace {

NetBuilder builder() {
  return [](core::Net &Net) {
    models::ModelSpec Spec = models::mlp(8, {12, 6}, 3);
    models::buildLatte(Net, Spec, /*WithLoss=*/true);
  };
}

Tensor dataBatch(int64_t Batch, uint64_t Seed) {
  Rng R(Seed);
  Tensor T(Shape{Batch, 8});
  R.fillGaussian(T, 0.0f, 1.0f);
  return T;
}

Tensor labelBatch(int64_t Batch) {
  Tensor T(Shape{Batch});
  for (int64_t I = 0; I < Batch; ++I)
    T.at(I) = static_cast<float>(I % 3);
  return T;
}

/// Runs \p Steps training steps and returns the final master parameters.
std::vector<std::pair<std::string, Tensor>> train(bool Lossy, uint64_t Seed,
                                                  int Steps) {
  const int64_t Batch = 8;
  DataParallelOptions O;
  O.NumWorkers = 2;
  O.LossyGradients = Lossy;
  O.Seed = Seed;
  DataParallelTrainer T(builder(), Batch, O);
  solvers::SolverParameters P;
  P.Lr = solvers::LRPolicy::fixed(0.1);
  P.Momentum = solvers::MomPolicy::fixed(0.9);
  solvers::SgdSolver S(P);
  for (int Iter = 0; Iter < Steps; ++Iter)
    T.trainStep(dataBatch(Batch, Seed + Iter), labelBatch(Batch), S, Iter);
  std::vector<std::pair<std::string, Tensor>> Params;
  for (const compiler::ParamBinding &B : T.worker(0).program().Params)
    Params.emplace_back(B.Param, T.worker(0).readBuffer(B.Param));
  return Params;
}

} // namespace

TEST(DeterminismTest, SynchronizedRunsAreBitwiseIdentical) {
  auto A = train(/*Lossy=*/false, 0x5eed, 5);
  auto B = train(/*Lossy=*/false, 0x5eed, 5);
  ASSERT_EQ(A.size(), B.size());
  ASSERT_FALSE(A.empty());
  for (size_t I = 0; I < A.size(); ++I) {
    EXPECT_EQ(A[I].first, B[I].first);
    // Zero tolerance: bitwise equality, not closeness.
    EXPECT_EQ(A[I].second.firstMismatch(B[I].second, 0.0f), -1)
        << A[I].first;
  }
}

TEST(DeterminismTest, DifferentSeedsDiverge) {
  // Sanity check that the seed actually matters (otherwise the test above
  // proves nothing).
  auto A = train(false, 0x5eed, 3);
  auto B = train(false, 0xfeed, 3);
  bool AnyDiff = false;
  for (size_t I = 0; I < A.size(); ++I)
    AnyDiff |= A[I].second.firstMismatch(B[I].second, 0.0f) != -1;
  EXPECT_TRUE(AnyDiff);
}

TEST(DeterminismTest, LossyModeRunsButMayDiffer) {
  // Lossy gradient accumulation is explicitly allowed to differ between
  // runs (unsynchronized updates race). It must still train without
  // crashing and produce finite parameters.
  auto A = train(/*Lossy=*/true, 0x5eed, 5);
  ASSERT_FALSE(A.empty());
  for (const auto &[Name, T] : A)
    for (int64_t I = 0; I < T.numElements(); ++I)
      ASSERT_TRUE(std::isfinite(T.at(I))) << Name << "[" << I << "]";
}
