//===- tests/jit/jit_test.cpp ---------------------------------*- C++ -*-===//
///
/// Unit tests for the in-process JIT backend (src/jit): the content-hash
/// shared-object cache (hit / recompile / corrupt-object recovery), clean
/// interpreter fallback when the system compiler is broken, per-task
/// fallback for non-codegen-able units (dropout), module sharing across
/// executors, source determinism, and finite-difference gradient checking
/// through the JIT dispatch path.
///
/// Cache tests point LATTE_JIT_DIR at a fresh temp directory so a
/// previous run's disk cache cannot skew the stats counters, and each
/// test uses a distinct source/model so the in-process module registry
/// (keyed by content hash) cannot alias across tests.
///
//===----------------------------------------------------------------------===//

#include "jit/jit_backend.h"

#include "compiler/codegen_cpp.h"
#include "compiler/compiler.h"
#include "core/layers/layers.h"
#include "engine/executor.h"
#include "models/models.h"
#include "verify/gradcheck.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include <unistd.h>

using namespace latte;
using namespace latte::compiler;
using namespace latte::core;
using namespace latte::engine;
using namespace latte::layers;

namespace {

/// Creates a fresh cache directory and points LATTE_JIT_DIR at it for the
/// duration of the test (restores the previous value on destruction).
class ScopedCacheDir {
public:
  ScopedCacheDir() {
    char Template[] = "/tmp/latte-jit-test-XXXXXX";
    char *D = ::mkdtemp(Template);
    EXPECT_NE(D, nullptr);
    Dir = D ? D : "/tmp";
    if (const char *Old = std::getenv("LATTE_JIT_DIR"))
      Saved = Old;
    ::setenv("LATTE_JIT_DIR", Dir.c_str(), 1);
  }
  ~ScopedCacheDir() {
    if (Saved.empty())
      ::unsetenv("LATTE_JIT_DIR");
    else
      ::setenv("LATTE_JIT_DIR", Saved.c_str(), 1);
  }
  const std::string &path() const { return Dir; }

private:
  std::string Dir;
  std::string Saved;
};

/// Minimal valid JIT translation unit with the mandatory ABI-version
/// symbol; \p Marker uniquifies the content hash per call site.
std::string minimalSource(const std::string &Marker) {
  return "// marker: " + Marker + "\n#include <cstdint>\n"
         "extern \"C\" int64_t latte_jit_abi_version() { return " +
         std::to_string(jit::kLatteJitAbiVersion) +
         "; }\n"
         "extern \"C\" void latte_task_f0(void *) {}\n";
}

/// Compiles \p Spec at batch 2 with \p Opts.
Program compileSpec(const models::ModelSpec &Spec, const CompileOptions &Opts) {
  core::Net Net(2);
  models::buildLatte(Net, Spec, /*WithLoss=*/true);
  return compile(Net, Opts);
}

/// Seeds params/inputs/labels of \p Ex deterministically.
void seedExecutor(Executor &Ex, int64_t Classes) {
  Ex.initParams(42);
  const Program &P = Ex.program();
  Rng R(7);
  Tensor In(P.findBuffer(P.DataBuffer)->Dims);
  R.fillGaussian(In, 0.0f, 1.0f);
  Ex.setInput(In);
  Tensor L(P.findBuffer(P.LabelBuffer)->Dims);
  for (int64_t I = 0; I < L.numElements(); ++I)
    L.at(I) = static_cast<float>(I % Classes);
  Ex.setLabels(L);
}

} // namespace

TEST(JitCacheTest, HitRecompileAndHashing) {
  if (!jit::available())
    GTEST_SKIP() << "JIT backend unavailable";
  ScopedCacheDir Cache;
  jit::resetStats();

  const std::string SrcA = minimalSource("cache-hit-a");
  const std::string SrcB = minimalSource("cache-hit-b");
  ASSERT_NE(jit::hashSource(SrcA), jit::hashSource(SrcB));

  std::string Diag;
  std::shared_ptr<jit::JitModule> M = jit::JitModule::getOrCreate(SrcA, &Diag);
  ASSERT_NE(M, nullptr) << Diag;
  EXPECT_EQ(jit::stats().Compiles, 1);
  EXPECT_EQ(M->hash(), jit::hashSource(SrcA));
  EXPECT_NE(M->symbol("latte_task_f0"), nullptr);
  EXPECT_EQ(M->symbol("latte_task_does_not_exist"), nullptr);

  // Same source while the module is alive: in-process registry hit, no
  // compiler invocation.
  std::shared_ptr<jit::JitModule> M2 =
      jit::JitModule::getOrCreate(SrcA, &Diag);
  ASSERT_NE(M2, nullptr);
  EXPECT_EQ(M2.get(), M.get());
  EXPECT_EQ(jit::stats().MemCacheHits, 1);
  EXPECT_EQ(jit::stats().Compiles, 1);

  // Same source after releasing the module: the shared object is still on
  // disk, so it reloads without recompiling.
  M.reset();
  M2.reset();
  std::shared_ptr<jit::JitModule> M3 =
      jit::JitModule::getOrCreate(SrcA, &Diag);
  ASSERT_NE(M3, nullptr) << Diag;
  EXPECT_EQ(jit::stats().DiskCacheHits, 1);
  EXPECT_EQ(jit::stats().Compiles, 1);

  // Changed source: new hash, fresh compile.
  std::shared_ptr<jit::JitModule> MB =
      jit::JitModule::getOrCreate(SrcB, &Diag);
  ASSERT_NE(MB, nullptr) << Diag;
  EXPECT_NE(MB->hash(), M3->hash());
  EXPECT_EQ(jit::stats().Compiles, 2);
}

TEST(JitCacheTest, CorruptCachedObjectRecovers) {
  if (!jit::available())
    GTEST_SKIP() << "JIT backend unavailable";
  ScopedCacheDir Cache;
  jit::resetStats();

  const std::string Src = minimalSource("corrupt-object");
  const std::string ObjPath = jit::cachedObjectPath(jit::hashSource(Src));
  {
    std::ofstream Out(ObjPath, std::ios::binary);
    Out << "this is not a shared object";
  }

  // The corrupt pre-existing object must be discarded and recompiled, not
  // crash the process or poison the cache.
  std::string Diag;
  std::shared_ptr<jit::JitModule> M = jit::JitModule::getOrCreate(Src, &Diag);
  ASSERT_NE(M, nullptr) << Diag;
  EXPECT_NE(M->symbol("latte_task_f0"), nullptr);
  EXPECT_EQ(jit::stats().Compiles, 1);
  EXPECT_EQ(jit::stats().DiskCacheHits, 0);
}

TEST(JitCacheTest, BrokenCompilerFallsBackCleanly) {
  if (!jit::available())
    GTEST_SKIP() << "JIT backend unavailable";
  ScopedCacheDir Cache;
  ::setenv("LATTE_JIT_CC", "/bin/false", 1);

  // Module layer: null result plus a diagnostic, never a crash.
  std::string Diag;
  std::shared_ptr<jit::JitModule> M =
      jit::JitModule::getOrCreate(minimalSource("broken-cc"), &Diag);
  EXPECT_EQ(M, nullptr);
  EXPECT_FALSE(Diag.empty());

  // Executor layer: a Jit program still constructs and runs — every task
  // falls back to the interpreter and results match the NoJit baseline.
  CompileOptions Jit;
  Jit.Jit = true;
  ExecOptions EO;
  EO.Deterministic = true;
  const models::ModelSpec Spec = models::mlp(9, {7}, 3);
  Executor A(compileSpec(Spec, Jit), EO);
  EXPECT_FALSE(A.jitActive());
  EXPECT_FALSE(A.jitDiagnostic().empty());

  ExecOptions NoJit = EO;
  NoJit.NoJit = true;
  Executor B(compileSpec(Spec, Jit), NoJit);
  seedExecutor(A, 3);
  seedExecutor(B, 3);
  A.forward();
  A.backward();
  B.forward();
  B.backward();
  EXPECT_EQ(A.lossValue(), B.lossValue());

  ::unsetenv("LATTE_JIT_CC");
}

TEST(JitExecutorTest, PerTaskFallbackForDropout) {
  if (!jit::available())
    GTEST_SKIP() << "JIT backend unavailable";

  // Dropout masks come from the engine's RNG stream, which generated code
  // cannot reproduce — that one task must fall back to the interpreter
  // while every other task still dispatches through the module, and the
  // mixed schedule must stay bitwise identical to the pure interpreter.
  core::Net Net(2);
  Ensemble *Data = DataLayer(Net, "data", Shape{8});
  Ensemble *Fc = FullyConnectedLayer(Net, "fc", Data, 6);
  Ensemble *Drop = DropoutLayer(Net, "drop", Fc, 0.5);
  Ensemble *Out = FullyConnectedLayer(Net, "out", Drop, 3);
  Ensemble *Labels = LabelLayer(Net, "labels");
  SoftmaxLossLayer(Net, "loss", Out, Labels);

  CompileOptions CO;
  CO.Jit = true;
  ExecOptions EO;
  EO.Deterministic = true;
  EO.NoMemPlan = true; // keep every buffer readable for the comparison
  Executor A(compile(Net, CO), EO);
  ASSERT_TRUE(A.jitActive()) << A.jitDiagnostic();
  EXPECT_GT(A.jitTaskCount(), 0);
  EXPECT_GT(A.jitFallbackCount(), 0);

  ExecOptions NoJit = EO;
  NoJit.NoJit = true;
  Executor B(compile(Net, CO), NoJit);
  EXPECT_FALSE(B.jitActive());

  seedExecutor(A, 3);
  seedExecutor(B, 3);
  for (int Epoch = 0; Epoch < 2; ++Epoch) {
    A.forward();
    A.backward();
    B.forward();
    B.backward();
  }
  EXPECT_EQ(A.lossValue(), B.lossValue());
  for (const ParamBinding &P : A.program().Params) {
    for (const std::string &Name : {P.Param, P.Grad}) {
      Tensor TA = A.readBuffer(Name);
      Tensor TB = B.readBuffer(Name);
      ASSERT_EQ(std::memcmp(TA.data(), TB.data(),
                            sizeof(float) * TA.numElements()),
                0)
          << "buffer '" << Name << "' diverged with dropout fallback";
    }
  }
}

TEST(JitExecutorTest, ExecutorsShareOneModule) {
  if (!jit::available())
    GTEST_SKIP() << "JIT backend unavailable";
  jit::resetStats();

  // Two executors over the same program content-hash to the same module:
  // one compile + one dlopen serve both (this is what makes the
  // data-parallel runtime's per-worker replicas cheap).
  CompileOptions CO;
  CO.Jit = true;
  const models::ModelSpec Spec = models::mlp(10, {6, 5}, 4);
  ExecOptions EO;
  EO.Deterministic = true;
  Executor A(compileSpec(Spec, CO), EO);
  ASSERT_TRUE(A.jitActive()) << A.jitDiagnostic();
  Executor B(compileSpec(Spec, CO), EO);
  ASSERT_TRUE(B.jitActive()) << B.jitDiagnostic();
  EXPECT_EQ(A.jitModuleHash(), B.jitModuleHash());
  EXPECT_GE(jit::stats().MemCacheHits, 1);
}

TEST(JitExecutorTest, GeneratedSourceIsDeterministic) {
  // Two compilations of the same net must emit byte-identical JIT sources
  // — the content-hash cache rests on this (a nondeterministic emission
  // order would defeat caching and recompile on every run).
  CompileOptions CO;
  CO.Jit = true;
  const models::ModelSpec Spec = models::vggFirstThreeLayers(0.06);
  JitSource S1 = generateJitSource(compileSpec(Spec, CO));
  JitSource S2 = generateJitSource(compileSpec(Spec, CO));
  EXPECT_EQ(S1.Source, S2.Source);
  ASSERT_EQ(S1.Forward.size(), S2.Forward.size());
  ASSERT_EQ(S1.Backward.size(), S2.Backward.size());
}

TEST(JitExecutorTest, GradCheckThroughJitDispatch) {
  if (!jit::available())
    GTEST_SKIP() << "JIT backend unavailable";

  // Finite-difference gradient checking with every forward/backward pass
  // dispatched through the loaded module: analytic gradients produced by
  // JIT-compiled backward tasks must match central differences of the
  // JIT-computed loss.
  core::Net Net(3);
  Ensemble *Data = DataLayer(Net, "data", Shape{5});
  Ensemble *Fc = FullyConnectedLayer(Net, "fc", Data, 7);
  Ensemble *Out = FullyConnectedLayer(Net, "out", Fc, 4);
  Ensemble *Labels = LabelLayer(Net, "labels");
  SoftmaxLossLayer(Net, "loss", Out, Labels);

  CompileOptions CO;
  CO.Jit = true;
  ExecOptions EO;
  EO.Deterministic = true;
  Executor Ex(compile(Net, CO), EO);
  ASSERT_TRUE(Ex.jitActive()) << Ex.jitDiagnostic();
  seedExecutor(Ex, 4);
  verify::GradCheckReport R = verify::gradCheck(Ex);
  EXPECT_TRUE(R.Passed) << R.summary();
}
