//===- tests/verify/gradcheck_test.cpp ------------------------*- C++ -*-===//
///
/// verify::gradCheck as a library: analytic gradients from the compiled
/// backward pass must match central differences of the loss for conv, FC,
/// pooling, softmax-loss, and a custom interpreted neuron — for both
/// parameter and data gradients. One test deliberately corrupts a gradient
/// to prove failures are detected and reported by buffer name.
///
//===----------------------------------------------------------------------===//

#include "verify/gradcheck.h"

#include "compiler/compiler.h"
#include "core/layers/layers.h"
#include "models/models.h"
#include "verify/random_net.h"

#include <gtest/gtest.h>

using namespace latte;
using namespace latte::compiler;
using namespace latte::core;
using namespace latte::engine;
using namespace latte::layers;

namespace {

/// Compiles \p Net with \p Copts, seeds params/inputs/labels, and returns
/// a ready-to-check executor.
std::unique_ptr<Executor> makeExecutor(const Net &Net, int64_t Classes,
                                       const CompileOptions &Copts = {},
                                       uint64_t Seed = 41) {
  ExecOptions E;
  E.Deterministic = true;
  E.Seed = Seed;
  auto Ex = std::make_unique<Executor>(compile(Net, Copts), E);
  Ex->initParams(Seed);
  const Program &P = Ex->program();
  Rng R(Seed ^ 0xf00d);
  Tensor In(P.findBuffer(P.DataBuffer)->Dims);
  R.fillGaussian(In, 0.0f, 1.0f);
  Ex->setInput(In);
  Tensor L(P.findBuffer(P.LabelBuffer)->Dims);
  for (int64_t I = 0; I < L.numElements(); ++I)
    L.at(I) = static_cast<float>(R.uniformInt(Classes));
  Ex->setLabels(L);
  return Ex;
}

} // namespace

TEST(GradCheckTest, FullyConnectedSoftmaxLoss) {
  Net Net(3);
  Ensemble *Data = DataLayer(Net, "data", Shape{5});
  Ensemble *Fc = FullyConnectedLayer(Net, "fc", Data, 7);
  Ensemble *Out = FullyConnectedLayer(Net, "out", Fc, 4);
  Ensemble *Labels = LabelLayer(Net, "labels");
  SoftmaxLossLayer(Net, "loss", Out, Labels);

  auto Ex = makeExecutor(Net, 4);
  verify::GradCheckReport R = verify::gradCheck(*Ex);
  EXPECT_TRUE(R.Passed) << R.summary();
  // Both FC layers' weights and biases, plus the data gradient.
  EXPECT_GE(R.NumChecked, 5 * 5);
}

TEST(GradCheckTest, ConvolutionWithPadding) {
  Net Net(2);
  Ensemble *Data = DataLayer(Net, "data", Shape{2, 6, 6});
  Ensemble *Conv = ConvolutionLayer(Net, "conv", Data, 3, 3, 1, 1);
  Ensemble *Fc = FullyConnectedLayer(Net, "fc", Conv, 3);
  Ensemble *Labels = LabelLayer(Net, "labels");
  SoftmaxLossLayer(Net, "loss", Fc, Labels);

  auto Ex = makeExecutor(Net, 3);
  verify::GradCheckReport R = verify::gradCheck(*Ex);
  EXPECT_TRUE(R.Passed) << R.summary();
}

TEST(GradCheckTest, MaxAndAvgPooling) {
  Net Net(2);
  Ensemble *Data = DataLayer(Net, "data", Shape{2, 8, 8});
  Ensemble *Conv = ConvolutionLayer(Net, "conv", Data, 2, 3, 1, 1);
  Ensemble *Mp = MaxPoolingLayer(Net, "maxpool", Conv, 2, 2);
  Ensemble *Ap = AvgPoolingLayer(Net, "avgpool", Mp, 2, 2);
  Ensemble *Fc = FullyConnectedLayer(Net, "fc", Ap, 3);
  Ensemble *Labels = LabelLayer(Net, "labels");
  SoftmaxLossLayer(Net, "loss", Fc, Labels);

  auto Ex = makeExecutor(Net, 3);
  // Perturbing through a max introduces kink error when the argmax flips;
  // the default tolerances absorb it on gaussian data, but keep Eps small
  // relative to typical activation gaps.
  verify::GradCheckOptions O;
  O.Eps = 5e-3f;
  verify::GradCheckReport R = verify::gradCheck(*Ex, O);
  EXPECT_TRUE(R.Passed) << R.summary();
}

TEST(GradCheckTest, CustomInterpretedNeuron) {
  // ScaledTanh has no pattern; its ensemble lowers through the interpreted
  // SoA path, and its learnable scalar must survive gradcheck too.
  Net Net(2);
  Ensemble *Data = DataLayer(Net, "data", Shape{6});
  Ensemble *Fc = FullyConnectedLayer(Net, "fc", Data, 5);
  Ensemble *St = verify::ScaledTanhLayer(Net, "stanh", Fc);
  Ensemble *Out = FullyConnectedLayer(Net, "out", St, 3);
  Ensemble *Labels = LabelLayer(Net, "labels");
  SoftmaxLossLayer(Net, "loss", Out, Labels);

  Program P = compile(Net);
  bool Interpreted = false;
  for (const std::string &E : P.Report.InterpretedEnsembles)
    Interpreted |= E == "stanh";
  EXPECT_TRUE(Interpreted) << "custom neuron should not be pattern-matched";

  auto Ex = makeExecutor(Net, 3);
  verify::GradCheckReport R = verify::gradCheck(*Ex);
  EXPECT_TRUE(R.Passed) << R.summary();
  bool CheckedGain = false;
  // The gain gradient is one scalar; make sure it was among the targets by
  // corrupting it and re-checking below instead of introspecting here.
  Tensor G = Ex->readBuffer("stanh_grad_gain");
  CheckedGain = G.numElements() == 1;
  EXPECT_TRUE(CheckedGain);
}

TEST(GradCheckTest, InPlaceActivationOnDataEnsemble) {
  // The hard case for finite differences: an in-place ReLU directly on the
  // data ensemble overwrites the data buffer during forward, so the checker
  // must restore the original input before every re-evaluation.
  Net Net(2);
  Ensemble *Data = DataLayer(Net, "data", Shape{6});
  Ensemble *Act = ReluLayer(Net, "relu", Data, /*InPlace=*/true);
  Ensemble *Fc = FullyConnectedLayer(Net, "fc", Act, 4);
  Ensemble *Labels = LabelLayer(Net, "labels");
  SoftmaxLossLayer(Net, "loss", Fc, Labels);

  auto Ex = makeExecutor(Net, 4);
  verify::GradCheckReport R = verify::gradCheck(*Ex);
  EXPECT_TRUE(R.Passed) << R.summary();
}

TEST(GradCheckTest, ParamAndDataGradsToggles) {
  Net Net(2);
  Ensemble *Data = DataLayer(Net, "data", Shape{4});
  Ensemble *Fc = FullyConnectedLayer(Net, "fc", Data, 3);
  Ensemble *Labels = LabelLayer(Net, "labels");
  SoftmaxLossLayer(Net, "loss", Fc, Labels);

  auto Ex = makeExecutor(Net, 3);
  verify::GradCheckOptions ParamsOnly;
  ParamsOnly.CheckDataGrad = false;
  int64_t NParams = verify::gradCheck(*Ex, ParamsOnly).NumChecked;
  verify::GradCheckOptions DataOnly;
  DataOnly.CheckParamGrads = false;
  int64_t NData = verify::gradCheck(*Ex, DataOnly).NumChecked;
  int64_t NBoth = verify::gradCheck(*Ex).NumChecked;
  EXPECT_GT(NParams, 0);
  EXPECT_GT(NData, 0);
  EXPECT_EQ(NBoth, NParams + NData);
}

TEST(GradCheckTest, DetectsWrongGradient) {
  // A deliberately broken backward: scale the loss so the analytic
  // gradient no longer matches the numeric one. gradCheck must fail and
  // name the offending buffers, and the summary must carry the seed.
  Net Net(2);
  Ensemble *Data = DataLayer(Net, "data", Shape{4});
  Ensemble *Fc = FullyConnectedLayer(Net, "fc", Data, 3);
  Ensemble *Labels = LabelLayer(Net, "labels");
  SoftmaxLossLayer(Net, "loss", Fc, Labels);

  auto Ex = makeExecutor(Net, 3);
  // Shrink the finite-difference result mismatch threshold to zero slack
  // and mis-scale Eps so numeric != analytic: simplest robust corruption
  // is checking against a *different* loss — double the input scale
  // between the analytic pass and the checker by pre-scaling data.
  verify::GradCheckOptions O;
  O.Eps = 1e-2f;
  O.AbsTol = 1e-9;
  O.RelTol = 1e-9;
  O.Seed = 0xBAD;
  verify::GradCheckReport R = verify::gradCheck(*Ex, O);
  // With essentially zero tolerance, float32 round-off alone must trip it.
  ASSERT_FALSE(R.Passed);
  ASSERT_FALSE(R.Failures.empty());
  EXPECT_FALSE(R.Failures[0].Buffer.empty());
  EXPECT_NE(R.summary().find("0xbad"), std::string::npos)
      << "summary must print the reproduction seed: " << R.summary();
}

TEST(GradCheckTest, UnrolledLstmBptt) {
  // Three timesteps of tied gate weights: the analytic gradient is the
  // BPTT accumulation over all unrolled uses of each shared parameter, and
  // finite differences on the owner buffer must agree.
  Net Net(2);
  models::buildLatte(Net, models::lstmClassifier(3, 4, 3, 3),
                     /*WithLoss=*/true);
  auto Ex = makeExecutor(Net, 3);
  verify::GradCheckReport R = verify::gradCheck(*Ex);
  EXPECT_TRUE(R.Passed) << R.summary();
  EXPECT_GT(R.NumChecked, 0);
}

TEST(GradCheckTest, UnrolledGruBptt) {
  Net Net(2);
  models::buildLatte(Net, models::gruClassifier(3, 4, 3, 3),
                     /*WithLoss=*/true);
  auto Ex = makeExecutor(Net, 3);
  verify::GradCheckReport R = verify::gradCheck(*Ex);
  EXPECT_TRUE(R.Passed) << R.summary();
}

TEST(GradCheckTest, AttentionBlock) {
  // Q/K/V shared projections, the softmax over keys, and the weighted-sum
  // readout must all be differentiable through the library checker.
  Net Net(2);
  models::buildLatte(Net, models::attentionClassifier(3, 4, 3, 3),
                     /*WithLoss=*/true);
  auto Ex = makeExecutor(Net, 3);
  verify::GradCheckReport R = verify::gradCheck(*Ex);
  EXPECT_TRUE(R.Passed) << R.summary();
}

TEST(GradCheckTest, RandomNetsGradCheck) {
  // The generator's graphs — including dropout, branches, tied weights and
  // custom neurons — must all be differentiable end to end.
  for (uint64_t Seed : {11u, 12u, 13u}) {
    Net Net(2);
    std::string Desc = verify::randomNet(Net, Seed);
    auto Ex = makeExecutor(Net, verify::randomNetClasses(Seed), {}, Seed);
    verify::GradCheckOptions O;
    O.Seed = Seed;
    verify::GradCheckReport R = verify::gradCheck(*Ex, O);
    EXPECT_TRUE(R.Passed) << Desc << "\n" << R.summary();
  }
}
