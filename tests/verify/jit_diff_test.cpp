//===- tests/verify/jit_diff_test.cpp -------------------------*- C++ -*-===//
///
/// Differential verification of the in-process JIT backend: for every base
/// point of the 2^7 non-JIT optimization lattice, run the same program
/// twice — once at mask m|0x80 (tasks dispatched through the dlopen'd
/// module src/jit compiled from the generated C++) and once at mask m
/// (pure interpreter) — and require weights, gradients and every other
/// commonly-retained root to be BITWISE identical. The JIT is purely a
/// dispatch lever; the generated code replays the interpreter's exact
/// float32 operation sequence (hex-literal constants, per-op rounding,
/// std::min/max tie semantics, the same kernels:: entry points through the
/// trampoline), so any difference at all is an emitter bug.
///
/// Comparability mirrors recompute_diff_test: the comparison covers the
/// roots retained by BOTH plans — params, param grads, values, data
/// gradient — which is everything training observes.
///
/// Both executors run with ExecOptions::Deterministic, making bitwise
/// equality a sound expectation even on the Parallelize points. The per-PR
/// tier sweeps the 64 recompute-free base masks; the nightly deep tier
/// (LATTE_DEEP=1) sweeps all 128 base points of the full lattice and
/// doubles the epoch count.
///
//===----------------------------------------------------------------------===//

#include "compiler/compiler.h"
#include "engine/executor.h"
#include "jit/jit_backend.h"
#include "models/models.h"
#include "verify/lattice.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace latte;
using namespace latte::compiler;
using namespace latte::engine;

namespace {

Program compileSpec(const models::ModelSpec &Spec, int64_t Batch,
                    const CompileOptions &Opts) {
  core::Net Net(Batch);
  models::buildLatte(Net, Spec, /*WithLoss=*/true);
  return compile(Net, Opts);
}

/// Runs forward+backward twice (JIT on vs off) at one base lattice point
/// and compares every root retained by both plans bitwise.
void diffOneBaseMask(const models::ModelSpec &Spec, int64_t Batch,
                     unsigned BaseMask) {
  verify::LatticeOptions LO; // tiny-net tile geometry so tiling triggers
  CompileOptions On = verify::optionsForMask(BaseMask | 0x80u, LO);
  CompileOptions Off = verify::optionsForMask(BaseMask, LO);
  ASSERT_TRUE(On.Jit);
  ASSERT_FALSE(Off.Jit);

  ExecOptions EO;
  EO.Deterministic = true;

  Executor A(compileSpec(Spec, Batch, On), EO);
  Executor B(compileSpec(Spec, Batch, Off), EO);
  ASSERT_TRUE(A.program().Plan.Valid);
  ASSERT_TRUE(B.program().Plan.Valid);
  // The module must actually be live on the JIT side — a silent fallback
  // would make this whole test vacuous.
  ASSERT_TRUE(A.jitActive())
      << Spec.Name << " base mask 0x" << std::hex << BaseMask << std::dec
      << ": JIT inactive: " << A.jitDiagnostic();
  EXPECT_GT(A.jitTaskCount(), 0);
  EXPECT_FALSE(B.jitActive());

  A.initParams(42);
  B.initParams(42);
  Tensor In(Spec.InputDims.withPrefix(Batch));
  Rng R(7);
  R.fillGaussian(In, 0.0f, 1.0f);
  A.setInput(In);
  B.setInput(In);
  Tensor Labels(Shape{Batch, 1});
  for (int64_t I = 0; I < Batch; ++I)
    Labels.at(I) = static_cast<float>(I % Spec.NumClasses);
  A.setLabels(Labels);
  B.setLabels(Labels);

  const int Epochs = verify::deepTier() ? 4 : 2;
  for (int Epoch = 0; Epoch < Epochs; ++Epoch) {
    A.forward();
    A.backward();
    B.forward();
    B.backward();
  }

  const MemoryPlan &PlanA = A.program().Plan;
  const MemoryPlan &PlanB = B.program().Plan;
  int Compared = 0;
  for (const BufferLifetime &L : PlanA.Lifetimes) {
    if (L.Bytes == 0 || !PlanA.retainedAtExit(L.Name) ||
        !PlanB.retainedAtExit(L.Name))
      continue;
    Tensor TA = A.readBuffer(L.Name);
    Tensor TB = B.readBuffer(L.Name);
    ASSERT_EQ(TA.numElements(), TB.numElements()) << L.Name;
    ASSERT_EQ(std::memcmp(TA.data(), TB.data(),
                          sizeof(float) * TA.numElements()),
              0)
        << Spec.Name << " base mask 0x" << std::hex << BaseMask << std::dec
        << ": buffer '" << L.Name
        << "' diverged between JIT and interpreter";
    ++Compared;
  }
  // Params, param grads, values and the data gradient must all have been
  // comparable; a collapse here means retainedAtExit regressed.
  EXPECT_GT(Compared, 4) << Spec.Name << " base mask " << BaseMask;
}

void diffAllBaseMasks(const models::ModelSpec &Spec, int64_t Batch) {
  if (!jit::available())
    GTEST_SKIP() << "JIT backend unavailable in this build/environment";
  // Per-PR: the 64 recompute-free base points. Deep tier: all 128 base
  // points of the full non-JIT lattice (JIT x recompute interplay).
  const unsigned Limit = verify::deepTier() ? 128u : 64u;
  for (unsigned Base = 0; Base < Limit; ++Base)
    diffOneBaseMask(Spec, Batch, Base);
}

} // namespace

TEST(JitDiffTest, MlpBitIdenticalAcrossLattice) {
  // Fully-connected layers: GEMM-matched points dispatch kernels through
  // the trampoline, unmatched points run generated loop nests — both paths
  // must be bit-exact against the interpreter at every base point.
  diffAllBaseMasks(models::mlp(12, {16, 8}, 4), /*Batch=*/2);
}

TEST(JitDiffTest, PaddedConvPoolBitIdenticalAcrossLattice) {
  // Padded conv + ReLU + max pool: exercises gather/scatter index tables
  // (int32 buffers through the ABI), pooling argmax masks, and the
  // collapsed batch x tile parallel loops in generated code.
  diffAllBaseMasks(models::vggFirstThreeLayers(0.06), /*Batch=*/2);
}
