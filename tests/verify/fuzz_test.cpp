//===- tests/verify/fuzz_test.cpp -----------------------------*- C++ -*-===//
///
/// Random-network fuzzing of the whole compiler: seeded generator graphs
/// (conv/pool/FC/activation/dropout/branch/custom blocks with randomized
/// geometry) are swept through the tier's optimization-lattice masks
/// (verify::sweepMasks — all 2^8 at the deep tier, JIT bit included). Every
/// failure message carries the generator seed and the flag combination —
/// that pair reproduces the exact net and compile.
///
//===----------------------------------------------------------------------===//

#include "verify/lattice.h"
#include "verify/random_net.h"

#include <gtest/gtest.h>

using namespace latte;
using namespace latte::core;

namespace {

/// One lattice sweep over the net grown from \p Seed.
void fuzzOne(uint64_t Seed, const verify::RandomNetOptions &O = {}) {
  Net Net(2);
  std::string Desc = verify::randomNet(Net, Seed, O);
  verify::LatticeOptions LO;
  // Derive data/params from the net seed so the printed seed alone
  // reproduces everything.
  LO.ParamSeed = Seed * 2654435761u + 1;
  LO.DataSeed = Seed * 2246822519u + 7;
  verify::LatticeReport R = verify::runLattice(Net, LO, Desc);
  EXPECT_TRUE(R.Passed) << R.summary();
  EXPECT_EQ(R.PointsRun, static_cast<int>(verify::sweepMasks().size()))
      << Desc;
}

} // namespace

TEST(FuzzTest, GeneratorIsDeterministic) {
  Net A(2), B(2);
  std::string DescA = verify::randomNet(A, 42);
  std::string DescB = verify::randomNet(B, 42);
  EXPECT_EQ(DescA, DescB);
  ASSERT_EQ(A.ensembles().size(), B.ensembles().size());
  for (size_t I = 0; I < A.ensembles().size(); ++I) {
    EXPECT_EQ(A.ensembles()[I]->name(), B.ensembles()[I]->name());
    EXPECT_EQ(A.ensembles()[I]->dims(), B.ensembles()[I]->dims());
  }
  // Different seeds give different architectures (overwhelmingly likely;
  // these two seeds are checked in).
  Net C(2);
  EXPECT_NE(verify::randomNet(C, 43), DescA);
}

TEST(FuzzTest, DescriptionPrintsSeed) {
  Net Net(2);
  std::string Desc = verify::randomNet(Net, 0xBEEF);
  EXPECT_NE(Desc.find("0xbeef"), std::string::npos) << Desc;
  EXPECT_NE(Desc.find("softmaxloss"), std::string::npos) << Desc;
}

TEST(FuzzTest, ClassesMatchGeneratedHead) {
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    Net Net(2);
    verify::randomNet(Net, Seed);
    Ensemble *Loss = Net.findEnsemble("loss");
    ASSERT_NE(Loss, nullptr);
    // The loss ensemble mirrors the logits shape; its last dim is the
    // class count the label helper must match.
    const Shape &D = Loss->dims();
    EXPECT_EQ(D.dim(D.rank() - 1), verify::randomNetClasses(Seed));
  }
}

// Ten seeded nets through the swept lattice points each. Seeds are fixed so
// failures are reproducible; they were chosen sequentially, not filtered.
TEST(FuzzTest, LatticeSeed1) { fuzzOne(1); }
TEST(FuzzTest, LatticeSeed2) { fuzzOne(2); }
TEST(FuzzTest, LatticeSeed3) { fuzzOne(3); }
TEST(FuzzTest, LatticeSeed4) { fuzzOne(4); }
TEST(FuzzTest, LatticeSeed5) { fuzzOne(5); }
TEST(FuzzTest, LatticeSeed6) { fuzzOne(6); }
TEST(FuzzTest, LatticeSeed7) { fuzzOne(7); }
TEST(FuzzTest, LatticeSeed8) { fuzzOne(8); }
TEST(FuzzTest, LatticeSeed9) { fuzzOne(9); }
TEST(FuzzTest, LatticeSeed10) { fuzzOne(10); }

TEST(FuzzTest, GeneratorGrowsSequenceGenomes) {
  // The genome pool must actually contain recurrent and attention blocks;
  // the toggles prune them deterministically.
  int Recurrent = 0, Attention = 0;
  for (uint64_t Seed = 1; Seed <= 30; ++Seed) {
    Net Net(2);
    std::string D = verify::randomNet(Net, Seed);
    Recurrent += D.find("lstm") != std::string::npos ||
                 D.find("gru") != std::string::npos;
    Attention += D.find("attention") != std::string::npos;
  }
  EXPECT_GT(Recurrent, 0);
  EXPECT_GT(Attention, 0);

  verify::RandomNetOptions NoSeq;
  NoSeq.AllowRecurrent = false;
  NoSeq.AllowAttention = false;
  for (uint64_t Seed = 1; Seed <= 30; ++Seed) {
    Net Net(2);
    std::string D = verify::randomNet(Net, Seed, NoSeq);
    EXPECT_EQ(D.find("lstm"), std::string::npos) << D;
    EXPECT_EQ(D.find("gru"), std::string::npos) << D;
    EXPECT_EQ(D.find("attention"), std::string::npos) << D;
  }
}

// Chained sequence genomes (checked against the generator: seed 18 grows
// lstm -> gru, seed 22 grows lstm -> attention) through the full sweep.
TEST(FuzzTest, LatticeStackedRecurrent) { fuzzOne(18); }
TEST(FuzzTest, LatticeRecurrentIntoAttention) { fuzzOne(22); }

TEST(FuzzTest, LatticeDeepNet) {
  // A deeper configuration than the default block budget allows.
  verify::RandomNetOptions O;
  O.MinBlocks = 6;
  O.MaxBlocks = 8;
  fuzzOne(77, O);
}
