//===- tests/verify/codegen_diff_test.cpp ---------------------*- C++ -*-===//
///
/// Differential test of the C++ backend against the in-process engine: a
/// generator-built net is emitted with codegen_cpp, compiled with the
/// system toolchain, run as a standalone binary on the same inputs and
/// parameters, and every value and parameter-gradient buffer must agree
/// with the engine. Dropout is excluded — the generated binary draws its
/// masks from its own RNG stream.
///
//===----------------------------------------------------------------------===//

#include "compiler/codegen_cpp.h"
#include "compiler/compiler.h"
#include "engine/executor.h"
#include "support/ltd_format.h"
#include "verify/random_net.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

using namespace latte;
using namespace latte::compiler;
using namespace latte::core;
using namespace latte::engine;

namespace {

void codegenDiff(uint64_t Seed, const CompileOptions &Copts) {
  Net Net(2);
  verify::RandomNetOptions RO;
  RO.AllowDropout = false; // generated code has an independent RNG
  std::string Desc = verify::randomNet(Net, Seed, RO);
  SCOPED_TRACE(Desc);

  Program P = compile(Net, Copts);
  ExecOptions EO;
  EO.Deterministic = true;
  Executor Ex(compile(Net, Copts), EO);
  Ex.initParams(Seed);

  const Program &Prog = Ex.program();
  Rng R(Seed ^ 0xc0de);
  Tensor In(Prog.findBuffer(Prog.DataBuffer)->Dims);
  R.fillGaussian(In, 0.0f, 1.0f);
  Ex.setInput(In);
  int64_t Classes = verify::randomNetClasses(Seed, RO);
  Tensor L(Prog.findBuffer(Prog.LabelBuffer)->Dims);
  for (int64_t I = 0; I < L.numElements(); ++I)
    L.at(I) = static_cast<float>(R.uniformInt(Classes));
  Ex.setLabels(L);
  Ex.forward();
  Ex.backward();

  std::string Dir = testing::TempDir();
  std::string Tag = "latte_vdiff_" + std::to_string(Seed);
  std::string SrcPath = Dir + "/" + Tag + ".cpp";
  std::string BinPath = Dir + "/" + Tag + "_bin";
  std::string InPath = Dir + "/" + Tag + "_in.ltd";
  std::string OutPath = Dir + "/" + Tag + "_out.ltd";
  ASSERT_TRUE(writeGeneratedProgram(P, SrcPath));

  std::vector<std::pair<std::string, Tensor>> Inputs;
  Inputs.emplace_back(Prog.DataBuffer, In);
  Inputs.emplace_back(Prog.LabelBuffer, L);
  for (const BufferInfo &B : Prog.Buffers)
    if (B.Role == BufferRole::Param)
      Inputs.emplace_back(B.Name, Ex.readBuffer(B.Name));
  ASSERT_TRUE(writeLtdFile(InPath, Inputs));

  ASSERT_EQ(std::system(("g++ -O2 -fopenmp -o " + BinPath + " " + SrcPath +
                         " 2>" + Dir + "/" + Tag + "_err.txt")
                            .c_str()),
            0);
  ASSERT_EQ(std::system(
                (BinPath + " " + InPath + " " + OutPath + " fwdbwd").c_str()),
            0);
  auto Outputs = readLtdFile(OutPath);

  // Every ensemble value and every parameter gradient the generated
  // program exports must match the engine.
  int Compared = 0;
  for (const BufferInfo &B : Prog.Buffers) {
    if (B.Role != BufferRole::Value && B.Role != BufferRole::ParamGrad)
      continue;
    const Tensor *Gen = nullptr;
    for (const auto &[Name, T] : Outputs)
      if (Name == B.Name)
        Gen = &T;
    if (!Gen)
      continue; // aliased/internal buffers the backend folds away
    Tensor Ref = Ex.readBuffer(B.Name);
    EXPECT_EQ(Ref.firstMismatch(*Gen, 1e-4f, 1e-3f), -1)
        << B.Name << " differs (seed 0x" << std::hex << Seed << ")";
    ++Compared;
  }
  EXPECT_GT(Compared, 0) << "no comparable buffers in generated output";

  std::remove(SrcPath.c_str());
  std::remove(BinPath.c_str());
  std::remove(InPath.c_str());
  std::remove(OutPath.c_str());
}

} // namespace

TEST(CodegenDiffTest, RandomNetUnoptimized) {
  CompileOptions C;
  C.PatternMatchGemm = false;
  C.PatternMatchKernels = false;
  C.Tiling = false;
  C.Fusion = false;
  C.Parallelize = false;
  C.VectorKernels = false;
  codegenDiff(21, C);
}

TEST(CodegenDiffTest, RandomNetFullyOptimized) {
  codegenDiff(22, CompileOptions{});
}

TEST(CodegenDiffTest, RandomNetThird) { codegenDiff(23, CompileOptions{}); }
