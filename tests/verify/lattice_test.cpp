//===- tests/verify/lattice_test.cpp --------------------------*- C++ -*-===//
///
/// The optimization-lattice differential oracle: the swept combinations of
/// the nine CompileOptions switches (all 2^9 = 512 points at the deep
/// tier, the curated verify::sweepMasks() subset per-PR) must produce the
/// same forward outputs and parameter gradients as the fully-unoptimized
/// interpreter, on three hand-built nets covering the GEMM path, the
/// kernel-match path, and the interpreted/custom path. Also covers the
/// per-pass snapshot machinery (compiler::compileStaged) and divergence
/// localization.
///
//===----------------------------------------------------------------------===//

#include "verify/lattice.h"

#include "core/layers/layers.h"
#include "models/models.h"
#include "verify/random_net.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace latte;
using namespace latte::compiler;
using namespace latte::core;
using namespace latte::layers;

namespace {

/// data{12} -> FC -> ReLU(in place) -> dropout -> FC -> Tanh(copy) -> FC
/// -> softmax loss: exercises GEMM matching, in-place aliasing, dropout
/// determinism and activation kernels.
void buildMlp(Net &Net) {
  Ensemble *Data = DataLayer(Net, "data", Shape{12});
  Ensemble *Fc1 = FullyConnectedLayer(Net, "fc1", Data, 10);
  Ensemble *Act1 = ReluLayer(Net, "relu1", Fc1, /*InPlace=*/true);
  Ensemble *Drop = DropoutLayer(Net, "drop", Act1, 0.8);
  Ensemble *Fc2 = FullyConnectedLayer(Net, "fc2", Drop, 8);
  Ensemble *Act2 = TanhLayer(Net, "tanh2", Fc2, /*InPlace=*/false);
  Ensemble *Fc3 = FullyConnectedLayer(Net, "fc3", Act2, 4);
  Ensemble *Labels = LabelLayer(Net, "labels");
  SoftmaxLossLayer(Net, "loss", Fc3, Labels);
}

/// data{2,8,8} -> conv -> maxpool -> ReLU -> conv -> avgpool -> FC ->
/// loss: convolution windows with padding, both pooling kernels, spatial
/// shapes. The ReLU sits after the max pool: exact zeros ahead of a max
/// window create argmax ties whose gradient routing legitimately differs
/// between the interpreter and the matched kernel.
void buildConvNet(Net &Net) {
  Ensemble *Data = DataLayer(Net, "data", Shape{2, 8, 8});
  Ensemble *C1 = ConvolutionLayer(Net, "conv1", Data, 4, 3, 1, 1);
  Ensemble *P1 = MaxPoolingLayer(Net, "pool1", C1, 2, 2);
  Ensemble *A1 = ReluLayer(Net, "relu1", P1, /*InPlace=*/false);
  Ensemble *C2 = ConvolutionLayer(Net, "conv2", A1, 3, 3, 1, 1);
  Ensemble *P2 = AvgPoolingLayer(Net, "pool2", C2, 2, 2);
  Ensemble *Fc = FullyConnectedLayer(Net, "fc", P2, 5);
  Ensemble *Labels = LabelLayer(Net, "labels");
  SoftmaxLossLayer(Net, "loss", Fc, Labels);
}

/// Branching elementwise net with researcher-defined ensembles: two FC
/// branches joined by Add/Mul, a PReLU and a custom ScaledTanh (both
/// always interpreted), then the classifier. Exercises partial matching:
/// optimized and interpreted ensembles coexist in one program.
void buildCustomNet(Net &Net) {
  Ensemble *Data = DataLayer(Net, "data", Shape{6});
  Ensemble *A = FullyConnectedLayer(Net, "bra", Data, 7);
  Ensemble *B = FullyConnectedLayer(Net, "brb", Data, 7);
  Ensemble *Add = AddLayer(Net, "add", {A, B});
  Ensemble *St = verify::ScaledTanhLayer(Net, "stanh", Add);
  Ensemble *C = FullyConnectedLayer(Net, "brc", St, 7);
  Ensemble *Mul = MulLayer(Net, "mul", St, C);
  Ensemble *Pr = PReluLayer(Net, "prelu", Mul);
  Ensemble *Fc = FullyConnectedLayer(Net, "fc", Pr, 3);
  Ensemble *Labels = LabelLayer(Net, "labels");
  SoftmaxLossLayer(Net, "loss", Fc, Labels);
}

} // namespace

TEST(LatticeTest, OptionsForMaskCoversAllSwitches) {
  EXPECT_EQ(verify::kNumLatticeSwitches, 9u);
  CompileOptions None = verify::optionsForMask(0);
  EXPECT_FALSE(None.PatternMatchGemm || None.PatternMatchKernels ||
               None.Tiling || None.Fusion || None.Parallelize ||
               None.VectorKernels || None.Recompute || None.Jit ||
               None.SliceRotation);
  CompileOptions All = verify::optionsForMask(511);
  EXPECT_TRUE(All.PatternMatchGemm && All.PatternMatchKernels && All.Tiling &&
              All.Fusion && All.Parallelize && All.VectorKernels &&
              All.Recompute && All.Jit && All.SliceRotation);
  // Each bit flips exactly one switch.
  for (unsigned Bit = 0; Bit < verify::kNumLatticeSwitches; ++Bit) {
    CompileOptions C = verify::optionsForMask(1u << Bit);
    int On = C.PatternMatchGemm + C.PatternMatchKernels + C.Tiling +
             C.Fusion + C.Parallelize + C.VectorKernels + C.Recompute +
             C.Jit + C.SliceRotation;
    EXPECT_EQ(On, 1) << "bit " << Bit;
  }
  std::string S = verify::flagString(All);
  EXPECT_NE(S.find("gemm=1"), std::string::npos);
  EXPECT_NE(S.find("vector=1"), std::string::npos);
  EXPECT_NE(S.find("recompute=1"), std::string::npos);
  EXPECT_NE(S.find("jit=1"), std::string::npos);
  EXPECT_NE(S.find("rotate=1"), std::string::npos);
}

TEST(LatticeTest, SweepMasksCoverTier) {
  std::vector<unsigned> Masks = verify::sweepMasks();
  ASSERT_FALSE(Masks.empty());
  EXPECT_EQ(Masks.front(), 0u); // the reference point leads
  if (verify::deepTier()) {
    EXPECT_EQ(Masks.size(), 1u << verify::kNumLatticeSwitches);
  } else {
    // Per-PR tier: reference + full recompute-on sub-lattice + the
    // all-but-recompute point + three JIT probes + three slice-rotation
    // probes, at roughly the pre-recompute sweep cost (the full JIT x
    // base cross product lives in jit_diff_test and the deep tier).
    EXPECT_EQ(Masks.size(), 72u);
    EXPECT_NE(std::find(Masks.begin(), Masks.end(), 0x7fu), Masks.end());
    EXPECT_NE(std::find(Masks.begin(), Masks.end(), 0x3fu), Masks.end());
    EXPECT_NE(std::find(Masks.begin(), Masks.end(), 0x80u), Masks.end());
    EXPECT_NE(std::find(Masks.begin(), Masks.end(), 0xC0u), Masks.end());
    EXPECT_NE(std::find(Masks.begin(), Masks.end(), 0xFFu), Masks.end());
    EXPECT_NE(std::find(Masks.begin(), Masks.end(), 0x100u), Masks.end());
    EXPECT_NE(std::find(Masks.begin(), Masks.end(), 0x140u), Masks.end());
    EXPECT_NE(std::find(Masks.begin(), Masks.end(), 0x1FFu), Masks.end());
  }
  for (unsigned M : Masks)
    EXPECT_LT(M, 1u << verify::kNumLatticeSwitches);
}

TEST(LatticeTest, MlpLattice) {
  Net Net(3);
  buildMlp(Net);
  verify::LatticeReport R = verify::runLattice(Net, {}, "hand-built MLP");
  EXPECT_TRUE(R.Passed) << R.summary();
  EXPECT_EQ(R.PointsRun, static_cast<int>(verify::sweepMasks().size()));
  EXPECT_GT(R.BuffersCompared, 0);
}

TEST(LatticeTest, ConvNetLattice) {
  Net Net(2);
  buildConvNet(Net);
  verify::LatticeReport R = verify::runLattice(Net, {}, "hand-built ConvNet");
  EXPECT_TRUE(R.Passed) << R.summary();
  EXPECT_EQ(R.PointsRun, static_cast<int>(verify::sweepMasks().size()));
}

TEST(LatticeTest, CustomNeuronLattice) {
  Net Net(2);
  buildCustomNet(Net);
  verify::LatticeReport R =
      verify::runLattice(Net, {}, "hand-built custom/branching net");
  EXPECT_TRUE(R.Passed) << R.summary();
  EXPECT_EQ(R.PointsRun, static_cast<int>(verify::sweepMasks().size()));
}

TEST(LatticeTest, UnrolledLstmLattice) {
  // The unrolled shared-weight LSTM across the whole per-PR mask tier:
  // tied-gate GEMM matching, fusion, memory planning over aliased weight
  // roots, slice rotation, and the JIT probes must all stay bitwise
  // faithful to the interpreter, gradients included (BPTT).
  Net Net(2);
  models::buildLatte(Net, models::lstmClassifier(3, 4, 3, 3),
                     /*WithLoss=*/true);
  verify::LatticeReport R =
      verify::runLattice(Net, {}, "unrolled LSTM classifier");
  EXPECT_TRUE(R.Passed) << R.summary();
  EXPECT_EQ(R.PointsRun, static_cast<int>(verify::sweepMasks().size()));
}

TEST(LatticeTest, UnrolledGruLattice) {
  Net Net(2);
  models::buildLatte(Net, models::gruClassifier(3, 4, 3, 3),
                     /*WithLoss=*/true);
  verify::LatticeReport R =
      verify::runLattice(Net, {}, "unrolled GRU classifier");
  EXPECT_TRUE(R.Passed) << R.summary();
}

TEST(LatticeTest, AttentionLattice) {
  // First non-affine connection pattern through the sweep: dot-product
  // scores, the last-axis softmax, and the probability-weighted readout.
  Net Net(2);
  models::buildLatte(Net, models::attentionClassifier(3, 4, 3, 3),
                     /*WithLoss=*/true);
  verify::LatticeReport R =
      verify::runLattice(Net, {}, "single-head attention classifier");
  EXPECT_TRUE(R.Passed) << R.summary();
  EXPECT_EQ(R.PointsRun, static_cast<int>(verify::sweepMasks().size()));
}

TEST(LatticeTest, SummaryCarriesReproductionSeeds) {
  Net Net(2);
  buildMlp(Net);
  verify::LatticeOptions O;
  O.ParamSeed = 0xABC;
  O.DataSeed = 0xDEF;
  verify::LatticeReport R = verify::runLattice(Net, O, "seed echo");
  std::string S = R.summary();
  EXPECT_NE(S.find("0xabc"), std::string::npos) << S;
  EXPECT_NE(S.find("0xdef"), std::string::npos) << S;
  EXPECT_NE(S.find("seed echo"), std::string::npos) << S;
}

TEST(LatticeTest, CompileStagedSnapshotsPipeline) {
  Net Net(2);
  buildMlp(Net);
  CompileOptions All = verify::optionsForMask(127);
  std::vector<PassStage> Stages = compileStaged(Net, All);
  // baseline + one stage per enabled switch.
  ASSERT_EQ(Stages.size(), 8u);
  EXPECT_EQ(Stages.front().Name, "baseline");
  EXPECT_EQ(Stages.back().Name, "+recompute");
  for (const PassStage &S : Stages) {
    EXPECT_FALSE(S.ForwardIR.empty()) << S.Name;
    EXPECT_FALSE(S.BackwardIR.empty()) << S.Name;
  }
  // Disabling a switch drops its stage.
  CompileOptions NoTiling = All;
  NoTiling.Tiling = false;
  EXPECT_EQ(compileStaged(Net, NoTiling).size(), 7u);

  // Snapshots change as passes land: the baseline and fully-optimized
  // forward IR must differ (GEMM calls replace loop nests).
  EXPECT_NE(Stages.front().ForwardIR, Stages.back().ForwardIR);
}

TEST(LatticeTest, LocalizeDivergenceCleanOnCorrectCompiler) {
  // With a correct compiler no stage diverges; the localizer agrees with
  // the lattice's verdict.
  Net Net(2);
  buildConvNet(Net);
  verify::StageDivergence D =
      verify::localizeDivergence(Net, verify::optionsForMask(127), {});
  EXPECT_FALSE(D.Found) << "stage " << D.Stage << " diverged on buffer "
                        << D.Divergence.Buffer;
}

TEST(LatticeTest, DivergenceIsDetectedAndLocalized) {
  // End-to-end proof the oracle can actually fail: compare against a
  // tolerance so tight that float32 reassociation between the interpreter
  // and the GEMM path trips it, and check the report names a buffer and a
  // reproducing mask.
  Net Net(3);
  buildMlp(Net);
  verify::LatticeOptions Strict;
  Strict.AbsTol = 0.0f;
  Strict.RelTol = 0.0f;
  Strict.CheckGradients = true;
  verify::LatticeReport R = verify::runLattice(Net, Strict, "strict");
  ASSERT_FALSE(R.Passed);
  ASSERT_FALSE(R.Failures.empty());
  const verify::LatticePointResult &F = R.Failures.front();
  EXPECT_FALSE(F.First.Buffer.empty());
  EXPECT_GT(F.Mask, 0u);
  std::string S = R.summary();
  EXPECT_NE(S.find("FAIL"), std::string::npos);
  EXPECT_NE(S.find(F.First.Buffer), std::string::npos);

  // The per-pass localizer pins the same kind of noise to a single stage.
  verify::StageDivergence D = verify::localizeDivergence(Net, F.Opts, Strict);
  EXPECT_TRUE(D.Found);
  EXPECT_FALSE(D.Stage.empty());
  EXPECT_FALSE(D.Divergence.Buffer.empty());
}
