//===- tests/verify/verify_each_test.cpp ----------------------*- C++ -*-===//
///
/// Zero-false-positive proof for the static verifier: every swept point of
/// the 2^7 optimization lattice is compiled with LatticeOptions::VerifyEach,
/// which runs analyze::verifyProgram on each compiled program and aborts
/// on any Error diagnostic. A passing lattice run therefore certifies
/// that the verifier accepts everything the compiler legitimately emits —
/// across pattern matching, tiling, fusion, parallelization, vector
/// kernels, and recompute, on both a GEMM-heavy MLP and a padded
/// conv/pool net.
///
//===----------------------------------------------------------------------===//

#include "verify/lattice.h"

#include "core/layers/layers.h"

#include <gtest/gtest.h>

using namespace latte;
using namespace latte::core;
using namespace latte::layers;

namespace {

void buildMlp(Net &Net) {
  Ensemble *Data = DataLayer(Net, "data", Shape{12});
  Ensemble *Fc1 = FullyConnectedLayer(Net, "fc1", Data, 10);
  Ensemble *Act1 = ReluLayer(Net, "relu1", Fc1, /*InPlace=*/true);
  Ensemble *Drop = DropoutLayer(Net, "drop", Act1, 0.8);
  Ensemble *Fc2 = FullyConnectedLayer(Net, "fc2", Drop, 8);
  Ensemble *Labels = LabelLayer(Net, "labels");
  SoftmaxLossLayer(Net, "loss", Fc2, Labels);
}

/// Padding exercises the inexact-window footprints and their bound
/// regions; pooling exercises both window kernels and the argmax mask.
void buildPaddedConvNet(Net &Net) {
  Ensemble *Data = DataLayer(Net, "data", Shape{2, 8, 8});
  Ensemble *C1 = ConvolutionLayer(Net, "conv1", Data, 4, 3, 1, 1);
  Ensemble *P1 = MaxPoolingLayer(Net, "pool1", C1, 2, 2);
  Ensemble *A1 = ReluLayer(Net, "relu1", P1, /*InPlace=*/false);
  Ensemble *C2 = ConvolutionLayer(Net, "conv2", A1, 3, 3, 1, 1);
  Ensemble *P2 = AvgPoolingLayer(Net, "pool2", C2, 2, 2);
  Ensemble *Fc = FullyConnectedLayer(Net, "fc", P2, 5);
  Ensemble *Labels = LabelLayer(Net, "labels");
  SoftmaxLossLayer(Net, "loss", Fc, Labels);
}

} // namespace

TEST(VerifyEachTest, MlpLatticeVerifiesEveryPoint) {
  Net Net(3);
  buildMlp(Net);
  verify::LatticeOptions O;
  O.VerifyEach = true;
  verify::LatticeReport R = verify::runLattice(Net, O, "verify-each MLP");
  EXPECT_TRUE(R.Passed) << R.summary();
  EXPECT_EQ(R.PointsRun, static_cast<int>(verify::sweepMasks().size()));
}

TEST(VerifyEachTest, PaddedConvLatticeVerifiesEveryPoint) {
  Net Net(2);
  buildPaddedConvNet(Net);
  verify::LatticeOptions O;
  O.VerifyEach = true;
  verify::LatticeReport R =
      verify::runLattice(Net, O, "verify-each padded conv net");
  EXPECT_TRUE(R.Passed) << R.summary();
  EXPECT_EQ(R.PointsRun, static_cast<int>(verify::sweepMasks().size()));
}
