//===- tests/verify/recompute_diff_test.cpp -------------------*- C++ -*-===//
///
/// Differential verification of the recompute (rematerialization) pass:
/// for every base point of the 2^6 non-recompute optimization lattice, run
/// the same program twice — once at mask m|0x40 (recompute on, gather
/// buffers re-produced in backward) and once at mask m (recompute off,
/// gathers retained across the forward/backward boundary) — and require
/// weights, gradients and every other commonly-retained root to be BITWISE
/// identical. Recompute trades memory for data movement; it must never
/// change a value: the clone re-gathers from retained Value/Data sources
/// whose bytes are exactly what forward produced, so any difference at all
/// is a legality bug (a non-pure clone, a clobbered source, a bad
/// insertion point).
///
/// Comparability: the recompute-on plan no longer retains the
/// rematerialized gather roots at exit, so the comparison covers the roots
/// retained by BOTH plans — params, param grads, values, data gradient —
/// which is everything training observes.
///
/// Both executors run with ExecOptions::Deterministic, making bitwise
/// equality a sound expectation even on the Parallelize points. The
/// nightly deep tier (LATTE_DEEP=1) doubles the epoch count to catch state
/// leaking across longer runs.
///
//===----------------------------------------------------------------------===//

#include "compiler/compiler.h"
#include "engine/executor.h"
#include "models/models.h"
#include "verify/lattice.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace latte;
using namespace latte::compiler;
using namespace latte::engine;

namespace {

Program compileSpec(const models::ModelSpec &Spec, int64_t Batch,
                    const CompileOptions &Opts) {
  core::Net Net(Batch);
  models::buildLatte(Net, Spec, /*WithLoss=*/true);
  return compile(Net, Opts);
}

/// Runs forward+backward twice (recompute on vs off) at one base lattice
/// point and compares every root retained by both plans bitwise.
void diffOneBaseMask(const models::ModelSpec &Spec, int64_t Batch,
                     unsigned BaseMask) {
  verify::LatticeOptions LO; // tiny-net tile geometry so tiling triggers
  CompileOptions On = verify::optionsForMask(BaseMask | 0x40u, LO);
  CompileOptions Off = verify::optionsForMask(BaseMask, LO);
  ASSERT_TRUE(On.Recompute);
  ASSERT_FALSE(Off.Recompute);

  ExecOptions EO;
  EO.Deterministic = true;

  Executor A(compileSpec(Spec, Batch, On), EO);
  Executor B(compileSpec(Spec, Batch, Off), EO);
  ASSERT_TRUE(A.program().Plan.Valid);
  ASSERT_TRUE(B.program().Plan.Valid);
  EXPECT_TRUE(B.program().Recomputes.empty());

  A.initParams(42);
  B.initParams(42);
  Tensor In(Spec.InputDims.withPrefix(Batch));
  Rng R(7);
  R.fillGaussian(In, 0.0f, 1.0f);
  A.setInput(In);
  B.setInput(In);
  Tensor Labels(Shape{Batch, 1});
  for (int64_t I = 0; I < Batch; ++I)
    Labels.at(I) = static_cast<float>(I % Spec.NumClasses);
  A.setLabels(Labels);
  B.setLabels(Labels);

  const int Epochs = verify::deepTier() ? 4 : 2;
  for (int Epoch = 0; Epoch < Epochs; ++Epoch) {
    A.forward();
    A.backward();
    B.forward();
    B.backward();
  }

  const MemoryPlan &PlanA = A.program().Plan;
  const MemoryPlan &PlanB = B.program().Plan;
  int Compared = 0;
  for (const BufferLifetime &L : PlanA.Lifetimes) {
    if (L.Bytes == 0 || !PlanA.retainedAtExit(L.Name) ||
        !PlanB.retainedAtExit(L.Name))
      continue;
    Tensor TA = A.readBuffer(L.Name);
    Tensor TB = B.readBuffer(L.Name);
    ASSERT_EQ(TA.numElements(), TB.numElements()) << L.Name;
    ASSERT_EQ(std::memcmp(TA.data(), TB.data(),
                          sizeof(float) * TA.numElements()),
              0)
        << Spec.Name << " base mask 0x" << std::hex << BaseMask << std::dec
        << ": buffer '" << L.Name
        << "' diverged between recompute-on and recompute-off";
    ++Compared;
  }
  // Params, param grads, values and the data gradient must all have been
  // comparable; a collapse here means retainedAtExit regressed.
  EXPECT_GT(Compared, 4) << Spec.Name << " base mask " << BaseMask;
}

void diffAllBaseMasks(const models::ModelSpec &Spec, int64_t Batch) {
  for (unsigned Base = 0; Base < 64u; ++Base)
    diffOneBaseMask(Spec, Batch, Base);
}

} // namespace

TEST(RecomputeDiffTest, MlpBitIdenticalAcrossLattice) {
  // MLPs have no gather producers, so recompute must be a clean no-op at
  // every point (and the pass must not disturb anything while finding no
  // candidates).
  diffAllBaseMasks(models::mlp(12, {16, 8}, 4), /*Batch=*/2);
}

TEST(RecomputeDiffTest, PaddedConvPoolBitIdenticalAcrossLattice) {
  // Padded conv + ReLU + max pool: the im2col inputs buffer crosses the
  // forward/backward boundary and is actually rematerialized, so this
  // exercises the real clone-insert-and-replan path at every base point.
  diffAllBaseMasks(models::vggFirstThreeLayers(0.06), /*Batch=*/2);
}
