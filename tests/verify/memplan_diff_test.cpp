//===- tests/verify/memplan_diff_test.cpp ---------------------*- C++ -*-===//
///
/// Differential verification of the memory planner: for every swept point
/// of the 2^7 optimization lattice (verify::sweepMasks — all 128 under
/// LATTE_DEEP=1), run the same program twice — once with the
/// planned arena active and once with ExecOptions::NoMemPlan (eager
/// one-buffer-per-root allocation, the pre-planner behavior) — and require
/// the results to be BITWISE identical. The arena only changes where
/// buffers live, never what is computed, so any difference at all is a
/// planner bug (an unsound fold, a mis-scheduled lazy zero, a bad offset).
///
/// Comparability: only roots the plan guarantees intact at exit
/// (MemoryPlan::retainedAtExit) are compared — interval-allocated
/// gradients legitimately surrender their bytes after their last use.
/// Values, parameters, parameter gradients and the data gradient are all
/// retained, so the comparison covers everything training observes.
///
/// Both executors run with ExecOptions::Deterministic (serialized gradient
/// accumulation, reseeded dropout), which makes bitwise equality a sound
/// expectation even on the Parallelize lattice points.
///
//===----------------------------------------------------------------------===//

#include "compiler/compiler.h"
#include "engine/executor.h"
#include "models/models.h"
#include "verify/lattice.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace latte;
using namespace latte::compiler;
using namespace latte::engine;

namespace {

Program compileSpec(const models::ModelSpec &Spec, int64_t Batch,
                    const CompileOptions &Opts) {
  core::Net Net(Batch);
  models::buildLatte(Net, Spec, /*WithLoss=*/true);
  return compile(Net, Opts);
}

/// Runs forward+backward twice (planned vs eager) at one lattice point and
/// compares every retained-at-exit root bitwise.
void diffOneMask(const models::ModelSpec &Spec, int64_t Batch,
                 unsigned Mask) {
  verify::LatticeOptions LO; // tiny-net tile geometry so tiling triggers
  CompileOptions Opts = verify::optionsForMask(Mask, LO);

  ExecOptions Planned;
  Planned.Deterministic = true;
  ExecOptions Eager = Planned;
  Eager.NoMemPlan = true;

  Executor A(compileSpec(Spec, Batch, Opts), Planned);
  Executor B(compileSpec(Spec, Batch, Opts), Eager);
  ASSERT_TRUE(A.program().Plan.Valid);

  A.initParams(42);
  B.initParams(42);
  Tensor In(Spec.InputDims.withPrefix(Batch));
  Rng R(7);
  R.fillGaussian(In, 0.0f, 1.0f);
  A.setInput(In);
  B.setInput(In);
  Tensor Labels(Shape{Batch, 1});
  for (int64_t I = 0; I < Batch; ++I)
    Labels.at(I) = static_cast<float>(I % Spec.NumClasses);
  A.setLabels(Labels);
  B.setLabels(Labels);

  // Two epochs so the ZeroOn* reset paths (lazy per-unit clears on the
  // planned side, top-of-pass clears on the eager side) are exercised on
  // dirty buffers, not just on fresh zero-filled storage. The nightly
  // deep tier doubles that to catch state leaking across longer runs.
  const int Epochs = verify::deepTier() ? 4 : 2;
  for (int Epoch = 0; Epoch < Epochs; ++Epoch) {
    A.forward();
    A.backward();
    B.forward();
    B.backward();
  }

  const MemoryPlan &Plan = A.program().Plan;
  int Compared = 0;
  for (const BufferLifetime &L : Plan.Lifetimes) {
    if (L.Bytes == 0 || !Plan.retainedAtExit(L.Name))
      continue;
    Tensor TA = A.readBuffer(L.Name);
    Tensor TB = B.readBuffer(L.Name);
    ASSERT_EQ(TA.numElements(), TB.numElements()) << L.Name;
    ASSERT_EQ(std::memcmp(TA.data(), TB.data(),
                          sizeof(float) * TA.numElements()),
              0)
        << Spec.Name << " mask 0x" << std::hex << Mask << std::dec
        << ": buffer '" << L.Name << "' diverged between planned and eager";
    ++Compared;
  }
  // Params, param grads, values and the data gradient must all have been
  // comparable; a collapse here means retainedAtExit regressed.
  EXPECT_GT(Compared, 4) << Spec.Name << " mask " << Mask;
}

void diffAllMasks(const models::ModelSpec &Spec, int64_t Batch) {
  for (unsigned Mask : verify::sweepMasks())
    diffOneMask(Spec, Batch, Mask);
}

} // namespace

TEST(MemPlanDiffTest, MlpBitIdenticalAcrossLattice) {
  diffAllMasks(models::mlp(12, {16, 8}, 4), /*Batch=*/2);
}

TEST(MemPlanDiffTest, PaddedConvPoolBitIdenticalAcrossLattice) {
  // Padded conv + ReLU + max pool (the VGG microbenchmark stack at tiny
  // scale): exercises gathers/scatters, interval grad folding, and the
  // boundary-crossing im2col inputs.
  diffAllMasks(models::vggFirstThreeLayers(0.06), /*Batch=*/2);
}
