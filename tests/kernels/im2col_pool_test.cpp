//===- tests/kernels/im2col_pool_test.cpp ---------------------*- C++ -*-===//

#include "kernels/im2col.h"
#include "kernels/pooling.h"

#include "support/rng.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

using namespace latte;
using namespace latte::kernels;

TEST(ConvGeometryTest, OutputSizes) {
  ConvGeometry G{3, 224, 224, 11, 11, 4, 4, 0, 0};
  EXPECT_EQ(G.outH(), 54); // AlexNet conv1 without pad: (224-11)/4+1
  EXPECT_EQ(G.outW(), 54);
  ConvGeometry P{64, 112, 112, 2, 2, 2, 2, 0, 0};
  EXPECT_EQ(P.outH(), 56);
  ConvGeometry S{3, 224, 224, 3, 3, 1, 1, 1, 1};
  EXPECT_EQ(S.outH(), 224); // VGG "same" conv
  EXPECT_EQ(S.colRows(), 27);
}

TEST(Im2ColTest, SimpleNoPad) {
  // 1 channel, 3x3 image, 2x2 kernel, stride 1.
  ConvGeometry G{1, 3, 3, 2, 2, 1, 1, 0, 0};
  std::vector<float> Img = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<float> Col(G.colRows() * G.colCols());
  im2col(Img.data(), G, Col.data());
  // Rows: (ky,kx) in order (0,0),(0,1),(1,0),(1,1); cols: outputs (y,x).
  // Output (0,0) window = {1,2,4,5}.
  int64_t Cols = G.colCols();
  EXPECT_FLOAT_EQ(Col[0 * Cols + 0], 1);
  EXPECT_FLOAT_EQ(Col[1 * Cols + 0], 2);
  EXPECT_FLOAT_EQ(Col[2 * Cols + 0], 4);
  EXPECT_FLOAT_EQ(Col[3 * Cols + 0], 5);
  // Output (1,1) window = {5,6,8,9}.
  EXPECT_FLOAT_EQ(Col[0 * Cols + 3], 5);
  EXPECT_FLOAT_EQ(Col[3 * Cols + 3], 9);
}

TEST(Im2ColTest, PaddingProducesZeros) {
  ConvGeometry G{1, 2, 2, 3, 3, 1, 1, 1, 1};
  std::vector<float> Img = {1, 2, 3, 4};
  std::vector<float> Col(G.colRows() * G.colCols());
  im2col(Img.data(), G, Col.data());
  // Top-left output, kernel position (0,0) reads padding -> 0.
  EXPECT_FLOAT_EQ(Col[0], 0.0f);
  // Kernel center (1,1) at output (0,0) reads pixel (0,0) = 1.
  int64_t CenterRow = 1 * 3 + 1;
  EXPECT_FLOAT_EQ(Col[CenterRow * G.colCols() + 0], 1.0f);
}

// Adjointness property over a sweep of geometries:
// <im2col(x), y> == <x, col2im(y)>.
class Im2ColSweepTest
    : public testing::TestWithParam<
          std::tuple<int, int, int, int, int>> {}; // C, H, kernel, stride, pad

TEST_P(Im2ColSweepTest, AdjointProperty) {
  auto [C, H, Kernel, Stride, Pad] = GetParam();
  ConvGeometry G{C, H, H, Kernel, Kernel, Stride, Stride, Pad, Pad};
  if (G.outH() <= 0)
    GTEST_SKIP() << "degenerate geometry";
  Rng R(C * 100 + H * 10 + Kernel + Stride + Pad);
  std::vector<float> X(C * H * H), Y(G.colRows() * G.colCols());
  for (auto &V : X)
    V = static_cast<float>(R.uniform(-1, 1));
  for (auto &V : Y)
    V = static_cast<float>(R.uniform(-1, 1));

  std::vector<float> ColX(Y.size());
  im2col(X.data(), G, ColX.data());
  double Lhs = 0;
  for (size_t I = 0; I < Y.size(); ++I)
    Lhs += static_cast<double>(ColX[I]) * Y[I];

  std::vector<float> ImY(X.size(), 0.0f);
  col2im(Y.data(), G, ImY.data());
  double Rhs = 0;
  for (size_t I = 0; I < X.size(); ++I)
    Rhs += static_cast<double>(X[I]) * ImY[I];

  EXPECT_NEAR(Lhs, Rhs, 1e-3 * static_cast<double>(Y.size()));
}

INSTANTIATE_TEST_SUITE_P(Geometries, Im2ColSweepTest,
                         testing::Combine(testing::Values(1, 3),
                                          testing::Values(4, 7, 12),
                                          testing::Values(1, 2, 3),
                                          testing::Values(1, 2),
                                          testing::Values(0, 1)));

TEST(MaxPoolTest, ForwardPicksMaxAndMask) {
  ConvGeometry G{1, 4, 4, 2, 2, 2, 2, 0, 0};
  std::vector<float> In = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15,
                           16};
  std::vector<float> Out(4);
  std::vector<int32_t> Mask(4);
  maxPoolFwd(In.data(), G, Out.data(), Mask.data());
  EXPECT_FLOAT_EQ(Out[0], 6);
  EXPECT_FLOAT_EQ(Out[1], 8);
  EXPECT_FLOAT_EQ(Out[2], 14);
  EXPECT_FLOAT_EQ(Out[3], 16);
  EXPECT_EQ(Mask[0], 5);
  EXPECT_EQ(Mask[3], 15);
}

TEST(MaxPoolTest, BackwardRoutesToArgmax) {
  ConvGeometry G{1, 4, 4, 2, 2, 2, 2, 0, 0};
  std::vector<float> In(16);
  for (int I = 0; I < 16; ++I)
    In[I] = static_cast<float>(I);
  std::vector<float> Out(4);
  std::vector<int32_t> Mask(4);
  maxPoolFwd(In.data(), G, Out.data(), Mask.data());

  std::vector<float> OutGrad = {1, 2, 3, 4};
  std::vector<float> InGrad(16, 0.0f);
  maxPoolBwd(OutGrad.data(), G, Mask.data(), InGrad.data());
  EXPECT_FLOAT_EQ(InGrad[5], 1);
  EXPECT_FLOAT_EQ(InGrad[7], 2);
  EXPECT_FLOAT_EQ(InGrad[13], 3);
  EXPECT_FLOAT_EQ(InGrad[15], 4);
  float Total = 0;
  for (float V : InGrad)
    Total += V;
  EXPECT_FLOAT_EQ(Total, 10.0f); // gradient is conserved
}

TEST(MaxPoolTest, OverlappingWindows) {
  // AlexNet-style 3x3 stride-2 overlapping pooling.
  ConvGeometry G{1, 5, 5, 3, 3, 2, 2, 0, 0};
  std::vector<float> In(25, 0.0f);
  In[12] = 5.0f; // center pixel participates in all four windows
  std::vector<float> Out(4);
  std::vector<int32_t> Mask(4);
  maxPoolFwd(In.data(), G, Out.data(), Mask.data());
  for (int I = 0; I < 4; ++I) {
    EXPECT_FLOAT_EQ(Out[I], 5.0f);
    EXPECT_EQ(Mask[I], 12);
  }
}

TEST(AvgPoolTest, ForwardAveragesWindow) {
  ConvGeometry G{1, 2, 2, 2, 2, 2, 2, 0, 0};
  std::vector<float> In = {1, 2, 3, 4};
  std::vector<float> Out(1);
  avgPoolFwd(In.data(), G, Out.data());
  EXPECT_FLOAT_EQ(Out[0], 2.5f);
}

TEST(AvgPoolTest, BackwardSpreadsUniformly) {
  ConvGeometry G{1, 2, 2, 2, 2, 2, 2, 0, 0};
  std::vector<float> OutGrad = {4.0f};
  std::vector<float> InGrad(4, 0.0f);
  avgPoolBwd(OutGrad.data(), G, InGrad.data());
  for (float V : InGrad)
    EXPECT_FLOAT_EQ(V, 1.0f);
}

TEST(MaxPoolTest, MultiChannelIndependence) {
  ConvGeometry G{2, 2, 2, 2, 2, 2, 2, 0, 0};
  std::vector<float> In = {1, 2, 3, 4, 40, 30, 20, 10};
  std::vector<float> Out(2);
  std::vector<int32_t> Mask(2);
  maxPoolFwd(In.data(), G, Out.data(), Mask.data());
  EXPECT_FLOAT_EQ(Out[0], 4);
  EXPECT_FLOAT_EQ(Out[1], 40);
  EXPECT_EQ(Mask[1], 4); // linear offset within the whole CHW tensor
}
