//===- tests/kernels/gemm_test.cpp ----------------------------*- C++ -*-===//

#include "kernels/gemm.h"

#include "support/rng.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

using namespace latte;
using namespace latte::kernels;

namespace {

std::vector<float> randomMatrix(Rng &R, int64_t Elems) {
  std::vector<float> M(Elems);
  for (float &V : M)
    V = static_cast<float>(R.uniform(-1.0, 1.0));
  return M;
}

} // namespace

TEST(GemmTest, Identity) {
  // C = I * B == B.
  const int64_t N = 4;
  std::vector<float> A(N * N, 0.0f), B(N * N), C(N * N, -1.0f);
  for (int64_t I = 0; I < N; ++I)
    A[I * N + I] = 1.0f;
  for (int64_t I = 0; I < N * N; ++I)
    B[I] = static_cast<float>(I);
  sgemm(false, false, N, N, N, A.data(), N, B.data(), N, C.data(), N, false);
  for (int64_t I = 0; I < N * N; ++I)
    EXPECT_FLOAT_EQ(C[I], B[I]);
}

TEST(GemmTest, Accumulate) {
  const int64_t M = 2, N = 3, K = 1;
  std::vector<float> A = {1.0f, 2.0f};
  std::vector<float> B = {10.0f, 20.0f, 30.0f};
  std::vector<float> C(M * N, 5.0f);
  sgemm(false, false, M, N, K, A.data(), K, B.data(), N, C.data(), N, true);
  EXPECT_FLOAT_EQ(C[0], 15.0f);
  EXPECT_FLOAT_EQ(C[5], 65.0f);
  // Without accumulate, C is overwritten.
  sgemm(false, false, M, N, K, A.data(), K, B.data(), N, C.data(), N, false);
  EXPECT_FLOAT_EQ(C[0], 10.0f);
}

TEST(GemmTest, ZeroKClearsCWhenNotAccumulating) {
  std::vector<float> C(6, 3.0f);
  sgemm(false, false, 2, 3, 0, nullptr, 1, nullptr, 1, C.data(), 3, false);
  for (float V : C)
    EXPECT_FLOAT_EQ(V, 0.0f);
}

TEST(GemmTest, LeadingDimensionLargerThanWidth) {
  // Multiply inside a larger allocation: A is 2x2 inside rows of length 4.
  std::vector<float> A = {1, 2, 9, 9, 3, 4, 9, 9};
  std::vector<float> B = {5, 6, 7, 8};
  std::vector<float> C(4, 0.0f);
  sgemm(false, false, 2, 2, 2, A.data(), 4, B.data(), 2, C.data(), 2, false);
  EXPECT_FLOAT_EQ(C[0], 1 * 5 + 2 * 7);
  EXPECT_FLOAT_EQ(C[1], 1 * 6 + 2 * 8);
  EXPECT_FLOAT_EQ(C[2], 3 * 5 + 4 * 7);
  EXPECT_FLOAT_EQ(C[3], 3 * 6 + 4 * 8);
}

// Property sweep: blocked GEMM agrees with the naive reference over sizes
// spanning the blocking boundaries and all four transpose combinations.
class GemmSweepTest
    : public testing::TestWithParam<std::tuple<int, int, int, bool, bool>> {};

TEST_P(GemmSweepTest, MatchesNaive) {
  auto [M, N, K, TransA, TransB] = GetParam();
  Rng R(1000 + M * 7 + N * 13 + K * 31 + TransA * 2 + TransB);
  int64_t LdA = TransA ? M : K;
  int64_t LdB = TransB ? K : N;
  std::vector<float> A = randomMatrix(R, M * K);
  std::vector<float> B = randomMatrix(R, K * N);
  std::vector<float> C0 = randomMatrix(R, M * N);
  std::vector<float> C1 = C0;

  sgemm(TransA, TransB, M, N, K, A.data(), LdA, B.data(), LdB, C0.data(), N,
        true);
  sgemmNaive(TransA, TransB, M, N, K, A.data(), LdA, B.data(), LdB, C1.data(),
             N, true);
  for (int64_t I = 0; I < M * N; ++I)
    ASSERT_NEAR(C0[I], C1[I], 1e-3f * (K + 1)) << "at " << I;
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, GemmSweepTest,
    testing::Combine(testing::Values(1, 7, 64, 65), testing::Values(1, 33, 130),
                     testing::Values(1, 16, 300), testing::Bool(),
                     testing::Bool()));

TEST(GemmTest, LargeBlockedCaseCrossesAllPanels) {
  // Exercise multiple NC/KC/MC panels in one call.
  const int64_t M = 130, N = 600, K = 300;
  Rng R(99);
  std::vector<float> A = randomMatrix(R, M * K);
  std::vector<float> B = randomMatrix(R, K * N);
  std::vector<float> C0(M * N, 0.0f), C1(M * N, 0.0f);
  sgemm(false, false, M, N, K, A.data(), K, B.data(), N, C0.data(), N, false);
  sgemmNaive(false, false, M, N, K, A.data(), K, B.data(), N, C1.data(), N,
             false);
  for (int64_t I = 0; I < M * N; I += 997)
    ASSERT_NEAR(C0[I], C1[I], 1e-2f);
}
