//===- tests/kernels/elementwise_test.cpp ---------------------*- C++ -*-===//

#include "kernels/elementwise.h"
#include "kernels/softmax.h"

#include "support/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

using namespace latte;
using namespace latte::kernels;

TEST(ElementwiseTest, ReluFwd) {
  std::vector<float> Src = {-2.0f, -0.0f, 0.5f, 3.0f};
  std::vector<float> Dst(4);
  reluFwd(Dst.data(), Src.data(), 4);
  EXPECT_FLOAT_EQ(Dst[0], 0.0f);
  EXPECT_FLOAT_EQ(Dst[1], 0.0f);
  EXPECT_FLOAT_EQ(Dst[2], 0.5f);
  EXPECT_FLOAT_EQ(Dst[3], 3.0f);
}

TEST(ElementwiseTest, ReluScalarVariantMatchesVectorized) {
  Rng R(4);
  std::vector<float> Src(1001), A(1001), B(1001);
  for (float &V : Src)
    V = static_cast<float>(R.uniform(-1.0, 1.0));
  reluFwd(A.data(), Src.data(), 1001);
  reluFwdScalar(B.data(), Src.data(), 1001);
  EXPECT_EQ(A, B);
}

TEST(ElementwiseTest, ReluBwdGatesOnValue) {
  std::vector<float> Value = {-1.0f, 2.0f, 0.0f};
  std::vector<float> OutGrad = {10.0f, 20.0f, 30.0f};
  std::vector<float> DstGrad = {1.0f, 1.0f, 1.0f};
  reluBwd(DstGrad.data(), OutGrad.data(), Value.data(), 3);
  EXPECT_FLOAT_EQ(DstGrad[0], 1.0f);  // blocked: value <= 0
  EXPECT_FLOAT_EQ(DstGrad[1], 21.0f); // passed and accumulated
  EXPECT_FLOAT_EQ(DstGrad[2], 1.0f);  // value == 0 blocks
}

TEST(ElementwiseTest, AddToMulIntoScaleAxpy) {
  std::vector<float> A = {1, 2, 3}, B = {4, 5, 6}, C(3);
  addTo(A.data(), B.data(), 3);
  EXPECT_FLOAT_EQ(A[2], 9.0f);
  mulInto(C.data(), A.data(), B.data(), 3);
  EXPECT_FLOAT_EQ(C[0], 20.0f);
  scale(C.data(), 0.5f, 3);
  EXPECT_FLOAT_EQ(C[0], 10.0f);
  axpy(2.0f, B.data(), C.data(), 3);
  EXPECT_FLOAT_EQ(C[0], 18.0f);
}

TEST(ElementwiseTest, GatherWithPadding) {
  std::vector<float> Src = {10.0f, 20.0f, 30.0f};
  std::vector<int32_t> Table = {2, -1, 0, 1};
  std::vector<float> Dst(4, 99.0f);
  gather(Dst.data(), Src.data(), Table.data(), 4);
  EXPECT_FLOAT_EQ(Dst[0], 30.0f);
  EXPECT_FLOAT_EQ(Dst[1], 0.0f); // padding
  EXPECT_FLOAT_EQ(Dst[2], 10.0f);
  EXPECT_FLOAT_EQ(Dst[3], 20.0f);
}

TEST(ElementwiseTest, ScatterAddIsGatherAdjoint) {
  // <gather(x), y> == <x, scatterAdd(y)> for any 0/1 table pattern.
  Rng R(7);
  const int64_t SrcN = 50, DstN = 80;
  std::vector<int32_t> Table(DstN);
  for (auto &T : Table)
    T = static_cast<int32_t>(R.uniformInt(SrcN + 10)) - 10; // some negative
  std::vector<float> X(SrcN), Y(DstN);
  for (auto &V : X)
    V = static_cast<float>(R.uniform(-1, 1));
  for (auto &V : Y)
    V = static_cast<float>(R.uniform(-1, 1));

  std::vector<float> Gx(DstN);
  gather(Gx.data(), X.data(), Table.data(), DstN);
  double Lhs = 0;
  for (int64_t I = 0; I < DstN; ++I)
    Lhs += static_cast<double>(Gx[I]) * Y[I];

  std::vector<float> Sy(SrcN, 0.0f);
  scatterAdd(Sy.data(), Y.data(), Table.data(), DstN);
  double Rhs = 0;
  for (int64_t I = 0; I < SrcN; ++I)
    Rhs += static_cast<double>(X[I]) * Sy[I];

  EXPECT_NEAR(Lhs, Rhs, 1e-4);
}

TEST(ElementwiseTest, SigmoidAndTanh) {
  std::vector<float> Src = {0.0f, 100.0f, -100.0f};
  std::vector<float> Dst(3);
  sigmoidFwd(Dst.data(), Src.data(), 3);
  EXPECT_FLOAT_EQ(Dst[0], 0.5f);
  EXPECT_NEAR(Dst[1], 1.0f, 1e-6f);
  EXPECT_NEAR(Dst[2], 0.0f, 1e-6f);
  tanhFwd(Dst.data(), Src.data(), 3);
  EXPECT_FLOAT_EQ(Dst[0], 0.0f);
  EXPECT_NEAR(Dst[1], 1.0f, 1e-6f);
}

TEST(ElementwiseTest, SumAndMax) {
  std::vector<float> V = {1.0f, -2.0f, 3.5f};
  EXPECT_FLOAT_EQ(sum(V.data(), 3), 2.5f);
  EXPECT_FLOAT_EQ(maxElement(V.data(), 3), 3.5f);
}

TEST(SoftmaxTest, SumsToOne) {
  std::vector<float> Src = {1.0f, 2.0f, 3.0f, 4.0f};
  std::vector<float> Dst(4);
  softmaxFwd(Dst.data(), Src.data(), 4);
  float Total = 0;
  for (float V : Dst) {
    EXPECT_GT(V, 0.0f);
    Total += V;
  }
  EXPECT_NEAR(Total, 1.0f, 1e-6f);
  EXPECT_GT(Dst[3], Dst[0]);
}

TEST(SoftmaxTest, StableUnderLargeInputs) {
  std::vector<float> Src = {1000.0f, 1001.0f};
  std::vector<float> Dst(2);
  softmaxFwd(Dst.data(), Src.data(), 2);
  EXPECT_FALSE(std::isnan(Dst[0]));
  EXPECT_NEAR(Dst[0] + Dst[1], 1.0f, 1e-6f);
  EXPECT_GT(Dst[1], Dst[0]);
}

TEST(SoftmaxTest, InPlace) {
  std::vector<float> V = {0.0f, 0.0f};
  softmaxFwd(V.data(), V.data(), 2);
  EXPECT_NEAR(V[0], 0.5f, 1e-6f);
}

TEST(SoftmaxTest, LossAndGradient) {
  std::vector<float> Prob = {0.1f, 0.7f, 0.2f};
  float Loss = crossEntropyLoss(Prob.data(), 3, 1);
  EXPECT_NEAR(Loss, -std::log(0.7f), 1e-6f);

  std::vector<float> Grad(3, 0.0f);
  softmaxLossBwd(Grad.data(), Prob.data(), 3, 1, 1.0f);
  EXPECT_NEAR(Grad[0], 0.1f, 1e-6f);
  EXPECT_NEAR(Grad[1], -0.3f, 1e-6f);
  EXPECT_NEAR(Grad[2], 0.2f, 1e-6f);
  // Gradient sums to zero (softmax invariance).
  EXPECT_NEAR(Grad[0] + Grad[1] + Grad[2], 0.0f, 1e-6f);
}

TEST(SoftmaxTest, LossClampsZeroProbability) {
  std::vector<float> Prob = {1.0f, 0.0f};
  float Loss = crossEntropyLoss(Prob.data(), 2, 1);
  EXPECT_FALSE(std::isinf(Loss));
  EXPECT_GT(Loss, 40.0f); // -log(1e-20)
}
