//===- tests/support/misc_test.cpp ----------------------------*- C++ -*-===//
///
/// Tests for string utilities, the thread pool, and the .ltd tensor format.
///
//===----------------------------------------------------------------------===//

#include "support/ltd_format.h"
#include "support/string_utils.h"
#include "support/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>

using namespace latte;

TEST(StringUtilsTest, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"x"}, ","), "x");
}

TEST(StringUtilsTest, Split) {
  std::vector<std::string> Parts = split("a,b,,c", ',');
  ASSERT_EQ(Parts.size(), 4u);
  EXPECT_EQ(Parts[0], "a");
  EXPECT_EQ(Parts[2], "");
  EXPECT_EQ(Parts[3], "c");
}

TEST(StringUtilsTest, StartsWithAndContains) {
  EXPECT_TRUE(startsWith("convolution", "conv"));
  EXPECT_FALSE(startsWith("conv", "convolution"));
  EXPECT_TRUE(contains("gemm('T','N')", "'T'"));
  EXPECT_FALSE(contains("abc", "z"));
}

TEST(StringUtilsTest, Trim) {
  EXPECT_EQ(trim("  hi \n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringUtilsTest, FormatString) {
  EXPECT_EQ(formatString("%s=%d", "x", 42), "x=42");
  EXPECT_EQ(formatString("%.2f", 3.14159), "3.14");
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool Pool(4);
  std::vector<std::atomic<int>> Hits(100);
  Pool.parallelFor(100, [&](int64_t I) { Hits[I]++; });
  for (auto &H : Hits)
    EXPECT_EQ(H.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool Pool(2);
  bool Ran = false;
  Pool.parallelFor(0, [&](int64_t) { Ran = true; });
  EXPECT_FALSE(Ran);
}

TEST(ThreadPoolTest, ParallelRunAllThreads) {
  ThreadPool Pool(3);
  std::vector<std::atomic<int>> Hits(Pool.numThreads());
  Pool.parallelRun([&](int T) { Hits[T]++; });
  for (auto &H : Hits)
    EXPECT_EQ(H.load(), 1);
}

TEST(ThreadPoolTest, ReusableAcrossJobs) {
  ThreadPool Pool(4);
  std::atomic<int64_t> Sum{0};
  for (int Round = 0; Round < 10; ++Round)
    Pool.parallelFor(50, [&](int64_t I) { Sum += I; });
  EXPECT_EQ(Sum.load(), 10 * (49 * 50 / 2));
}

TEST(LtdFormatTest, WriteReadRoundTrip) {
  Tensor A(Shape{2, 3});
  for (int64_t I = 0; I < A.numElements(); ++I)
    A.at(I) = static_cast<float>(I) * 0.5f;
  Tensor B(Shape{4});
  B.fill(-1.25f);

  std::string Path = testing::TempDir() + "/roundtrip.ltd";
  ASSERT_TRUE(writeLtdFile(Path, {{"data", A}, {"label", B}}));

  auto Loaded = readLtdFile(Path);
  ASSERT_EQ(Loaded.size(), 2u);
  EXPECT_EQ(Loaded[0].first, "data");
  EXPECT_EQ(Loaded[0].second.shape(), Shape({2, 3}));
  EXPECT_EQ(Loaded[0].second.firstMismatch(A, 0.0f), -1);
  EXPECT_EQ(Loaded[1].first, "label");
  EXPECT_EQ(Loaded[1].second.firstMismatch(B, 0.0f), -1);
  std::remove(Path.c_str());
}

TEST(LtdFormatTest, EmptyFileOfTensors) {
  std::string Path = testing::TempDir() + "/empty.ltd";
  ASSERT_TRUE(writeLtdFile(Path, {}));
  EXPECT_TRUE(readLtdFile(Path).empty());
  std::remove(Path.c_str());
}

TEST(LtdFormatDeathTest, RejectsGarbage) {
  std::string Path = testing::TempDir() + "/garbage.ltd";
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  ASSERT_NE(F, nullptr);
  std::fputs("not a tensor file", F);
  std::fclose(F);
  EXPECT_DEATH({ readLtdFile(Path); }, "not a valid");
  std::remove(Path.c_str());
}
