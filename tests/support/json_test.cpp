//===- tests/support/json_test.cpp - support/json.h tests -----*- C++ -*-===//
///
/// The JSON library backs the Chrome-trace / BENCH_<fig>.json exporters and
/// the bench/compare parser, so serialization and parsing must round-trip.
///
//===----------------------------------------------------------------------===//

#include "support/json.h"

#include <gtest/gtest.h>

#include <limits>

using namespace latte;

namespace {

TEST(Json, BuildAndDumpCompact) {
  json::Value Doc = json::Value::object();
  Doc.set("name", "latte");
  Doc.set("count", static_cast<int64_t>(42));
  Doc.set("pi", 3.5);
  Doc.set("ok", true);
  Doc.set("none", json::Value());
  json::Value Arr = json::Value::array();
  Arr.push(1);
  Arr.push(2);
  Doc.set("items", std::move(Arr));
  EXPECT_EQ(Doc.dump(),
            "{\"name\":\"latte\",\"count\":42,\"pi\":3.5,\"ok\":true,"
            "\"none\":null,\"items\":[1,2]}");
}

TEST(Json, IntegersPrintWithoutExponent) {
  // Counter values (uint64) must survive a dump/parse cycle exactly for
  // values representable in a double.
  json::Value V(static_cast<uint64_t>(639442944));
  EXPECT_EQ(V.dump(), "639442944");
  json::Value Big(static_cast<int64_t>(1) << 50);
  EXPECT_EQ(Big.dump(), "1125899906842624");
}

TEST(Json, SetOverwritesExistingKey) {
  json::Value Doc = json::Value::object();
  Doc.set("k", 1);
  Doc.set("k", 2);
  EXPECT_EQ(Doc.size(), 1u);
  EXPECT_EQ(Doc.numberAt("k"), 2.0);
}

TEST(Json, StringEscaping) {
  json::Value V(std::string("a\"b\\c\n\t\x01"));
  std::string S = V.dump();
  EXPECT_EQ(S, "\"a\\\"b\\\\c\\n\\t\\u0001\"");
  // And back through the parser.
  std::string Err;
  json::Value Back = json::parse(S, &Err);
  ASSERT_TRUE(Back.isString()) << Err;
  EXPECT_EQ(Back.asString(), "a\"b\\c\n\t\x01");
}

TEST(Json, ParseRoundTrip) {
  const char *Text = R"({
    "schema": "latte-bench-v1",
    "rows": [
      {"label": "caffe", "fwd_sec": 0.0125, "bwd_sec": 0.025},
      {"label": "latte_full", "fwd_sec": 0.001, "bwd_sec": 0.002}
    ],
    "host": {"openmp": true, "cpu_count": 8},
    "empty_obj": {},
    "empty_arr": [],
    "neg": -1.5e-3
  })";
  std::string Err;
  json::Value Doc = json::parse(Text, &Err);
  ASSERT_TRUE(Doc.isObject()) << Err;
  EXPECT_EQ(Doc.stringAt("schema"), "latte-bench-v1");
  const json::Value *Rows = Doc.find("rows");
  ASSERT_NE(Rows, nullptr);
  ASSERT_TRUE(Rows->isArray());
  ASSERT_EQ(Rows->items().size(), 2u);
  EXPECT_EQ(Rows->items()[1].stringAt("label"), "latte_full");
  EXPECT_DOUBLE_EQ(Rows->items()[0].numberAt("fwd_sec"), 0.0125);
  EXPECT_TRUE(Doc.at("host").asBool() == false); // object, not a bool
  EXPECT_TRUE(Doc.at("host").at("openmp").asBool());
  EXPECT_DOUBLE_EQ(Doc.numberAt("neg"), -1.5e-3);
  EXPECT_TRUE(Doc.at("empty_obj").isObject());
  EXPECT_TRUE(Doc.at("empty_arr").isArray());
  EXPECT_EQ(Doc.at("empty_arr").size(), 0u);

  // Dump → parse → dump must be a fixed point.
  std::string Once = Doc.dump(2);
  json::Value Again = json::parse(Once, &Err);
  ASSERT_FALSE(Again.isNull()) << Err;
  EXPECT_EQ(Again.dump(2), Once);
}

TEST(Json, ParseUnicodeEscape) {
  std::string Err;
  json::Value V = json::parse("\"caf\\u00e9\"", &Err);
  ASSERT_TRUE(V.isString()) << Err;
  EXPECT_EQ(V.asString(), "caf\xc3\xa9");
}

TEST(Json, ParseErrors) {
  std::string Err;
  EXPECT_TRUE(json::parse("{", &Err).isNull());
  EXPECT_FALSE(Err.empty());
  EXPECT_TRUE(json::parse("[1, 2,]", &Err).isNull());
  EXPECT_TRUE(json::parse("{\"a\": 1} trailing", &Err).isNull());
  EXPECT_TRUE(json::parse("", &Err).isNull());
  EXPECT_TRUE(json::parse("nul", &Err).isNull());
  // Error recovery: a failed parse still leaves the API usable.
  EXPECT_FALSE(json::parse("true", &Err).isNull());
}

TEST(Json, NonFiniteNumbersSerializeAsNull) {
  json::Value V(std::numeric_limits<double>::infinity());
  EXPECT_EQ(V.dump(), "null");
}

TEST(Json, MissingMemberFallbacks) {
  json::Value Doc = json::Value::object();
  Doc.set("s", "x");
  EXPECT_EQ(Doc.find("absent"), nullptr);
  EXPECT_TRUE(Doc.at("absent").isNull());
  EXPECT_TRUE(Doc.at("absent").at("deeper").isNull()); // chainable
  EXPECT_DOUBLE_EQ(Doc.numberAt("absent", 7.0), 7.0);
  EXPECT_EQ(Doc.stringAt("absent", "d"), "d");
  EXPECT_DOUBLE_EQ(Doc.numberAt("s", 7.0), 7.0); // wrong type → default
}

} // namespace
