//===- tests/support/thread_pool_test.cpp ---------------------*- C++ -*-===//
///
/// ThreadPool edge cases: empty and tiny ranges, ranges smaller than the
/// worker count, and nested parallelFor/parallelRun calls (which must
/// degrade to serial execution instead of deadlocking on the busy pool).
///
//===----------------------------------------------------------------------===//

#include "support/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

using namespace latte;

TEST(ThreadPoolTest, EmptyRangeIsANoop) {
  ThreadPool Pool(4);
  std::atomic<int> Calls{0};
  Pool.parallelFor(0, [&](int64_t) { ++Calls; });
  Pool.parallelFor(-3, [&](int64_t) { ++Calls; });
  EXPECT_EQ(Calls.load(), 0);
}

TEST(ThreadPoolTest, RangeSmallerThanPool) {
  // N < numThreads(): every index still runs exactly once, none twice.
  ThreadPool Pool(8);
  ASSERT_GT(Pool.numThreads(), 3);
  std::vector<std::atomic<int>> Hits(3);
  Pool.parallelFor(3, [&](int64_t I) { ++Hits[I]; });
  for (const auto &H : Hits)
    EXPECT_EQ(H.load(), 1);
}

TEST(ThreadPoolTest, SingleElementRange) {
  ThreadPool Pool(4);
  std::atomic<int> Calls{0};
  Pool.parallelFor(1, [&](int64_t I) {
    EXPECT_EQ(I, 0);
    ++Calls;
  });
  EXPECT_EQ(Calls.load(), 1);
}

TEST(ThreadPoolTest, CoversLargeRangeExactlyOnce) {
  const int64_t N = 10007; // prime: exercises a ragged final chunk
  ThreadPool Pool(4);
  std::vector<std::atomic<int>> Hits(N);
  Pool.parallelFor(N, [&](int64_t I) { ++Hits[I]; });
  int64_t Total = 0;
  for (const auto &H : Hits) {
    EXPECT_EQ(H.load(), 1);
    Total += H.load();
  }
  EXPECT_EQ(Total, N);
}

TEST(ThreadPoolTest, NestedParallelForRunsSerially) {
  // A parallelFor issued from inside a running parallelFor job must not
  // deadlock (the workers are busy with the outer job) and must still
  // cover the whole inner range.
  const int64_t Outer = 8, Inner = 16;
  ThreadPool Pool(4);
  std::vector<std::atomic<int>> Hits(Outer * Inner);
  Pool.parallelFor(Outer, [&](int64_t O) {
    Pool.parallelFor(Inner, [&](int64_t I) { ++Hits[O * Inner + I]; });
  });
  for (const auto &H : Hits)
    EXPECT_EQ(H.load(), 1);
}

TEST(ThreadPoolTest, NestedParallelRunRunsInline) {
  ThreadPool Pool(4);
  std::atomic<int> OuterCalls{0}, InnerCalls{0};
  Pool.parallelRun([&](int) {
    ++OuterCalls;
    // Inline fallback: runs Fn(0) once on this thread.
    Pool.parallelRun([&](int Idx) {
      EXPECT_EQ(Idx, 0);
      ++InnerCalls;
    });
  });
  EXPECT_EQ(OuterCalls.load(), Pool.numThreads());
  EXPECT_EQ(InnerCalls.load(), Pool.numThreads());
}

TEST(ThreadPoolTest, PoolOfOneRunsEverythingInline) {
  ThreadPool Pool(1);
  EXPECT_EQ(Pool.numThreads(), 1);
  int64_t Sum = 0; // no atomics needed: single thread
  Pool.parallelFor(100, [&](int64_t I) { Sum += I; });
  EXPECT_EQ(Sum, 99 * 100 / 2);
}
