//===- tests/support/tensor_test.cpp --------------------------*- C++ -*-===//

#include "support/tensor.h"

#include <gtest/gtest.h>

#include <cstdint>

using namespace latte;

TEST(TensorTest, ZeroInitialized) {
  Tensor T(Shape{4, 4});
  for (int64_t I = 0; I < T.numElements(); ++I)
    EXPECT_EQ(T.at(I), 0.0f);
}

TEST(TensorTest, AlignedStorage) {
  Tensor T(Shape{17});
  EXPECT_EQ(reinterpret_cast<uintptr_t>(T.data()) % 64, 0u);
}

TEST(TensorTest, FillAndAt) {
  Tensor T(Shape{2, 3});
  T.fill(2.5f);
  EXPECT_EQ(T.at({1, 2}), 2.5f);
  T.at({0, 1}) = -1.0f;
  EXPECT_EQ(T.at(1), -1.0f);
}

TEST(TensorTest, CopySemanticsAreDeep) {
  Tensor A(Shape{3});
  A.fill(1.0f);
  Tensor B = A;
  B.at(0) = 9.0f;
  EXPECT_EQ(A.at(0), 1.0f);
  EXPECT_EQ(B.at(0), 9.0f);
}

TEST(TensorTest, MoveLeavesSourceEmpty) {
  Tensor A(Shape{3});
  Tensor B = std::move(A);
  EXPECT_TRUE(A.empty());
  EXPECT_EQ(B.numElements(), 3);
}

TEST(TensorTest, Reshape) {
  Tensor T(Shape{2, 6});
  T.at({1, 1}) = 7.0f;
  T.reshape(Shape{3, 4});
  EXPECT_EQ(T.shape(), Shape({3, 4}));
  EXPECT_EQ(T.at(7), 7.0f); // same linear storage
}

TEST(TensorTest, FirstMismatch) {
  Tensor A(Shape{4}), B(Shape{4});
  A.fill(1.0f);
  B.fill(1.0f);
  EXPECT_EQ(A.firstMismatch(B, 1e-6f), -1);
  B.at(2) = 1.1f;
  EXPECT_EQ(A.firstMismatch(B, 1e-6f), 2);
  EXPECT_EQ(A.firstMismatch(B, 0.2f), -1);
}

TEST(TensorTest, FirstMismatchRelativeTolerance) {
  Tensor A(Shape{1}), B(Shape{1});
  A.at(0) = 1000.0f;
  B.at(0) = 1001.0f;
  EXPECT_EQ(A.firstMismatch(B, 0.0f, 1e-2f), -1);
  EXPECT_EQ(A.firstMismatch(B, 0.0f, 1e-6f), 0);
}

TEST(TensorTest, EmptyTensor) {
  Tensor T;
  EXPECT_TRUE(T.empty());
  EXPECT_EQ(T.numElements(), 1); // rank-0 shape has one logical element
  Tensor Z(Shape{0, 5});
  EXPECT_TRUE(Z.empty());
}
