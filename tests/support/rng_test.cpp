//===- tests/support/rng_test.cpp -----------------------------*- C++ -*-===//

#include "support/rng.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace latte;

TEST(RngTest, DeterministicFromSeed) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  EXPECT_NE(A.next(), B.next());
}

TEST(RngTest, UniformInRange) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I) {
    double U = R.uniform(-2.0, 3.0);
    EXPECT_GE(U, -2.0);
    EXPECT_LT(U, 3.0);
  }
}

TEST(RngTest, UniformIntInRange) {
  Rng R(7);
  bool Seen[5] = {};
  for (int I = 0; I < 500; ++I) {
    int64_t V = R.uniformInt(5);
    ASSERT_GE(V, 0);
    ASSERT_LT(V, 5);
    Seen[V] = true;
  }
  for (bool S : Seen)
    EXPECT_TRUE(S);
}

TEST(RngTest, GaussianMoments) {
  Rng R(123);
  const int N = 20000;
  double Sum = 0, SumSq = 0;
  for (int I = 0; I < N; ++I) {
    double G = R.gaussian();
    Sum += G;
    SumSq += G * G;
  }
  double Mean = Sum / N;
  double Var = SumSq / N - Mean * Mean;
  EXPECT_NEAR(Mean, 0.0, 0.05);
  EXPECT_NEAR(Var, 1.0, 0.1);
}

TEST(RngTest, FillXavierBounds) {
  Rng R(5);
  Tensor T(Shape{1000});
  R.fillXavier(T, 300);
  float Bound = std::sqrt(3.0f / 300.0f);
  for (int64_t I = 0; I < T.numElements(); ++I) {
    EXPECT_GE(T.at(I), -Bound);
    EXPECT_LE(T.at(I), Bound);
  }
}

TEST(RngTest, FillGaussianStddev) {
  Rng R(5);
  Tensor T(Shape{20000});
  R.fillGaussian(T, 1.0f, 0.5f);
  double Sum = 0;
  for (int64_t I = 0; I < T.numElements(); ++I)
    Sum += T.at(I);
  EXPECT_NEAR(Sum / T.numElements(), 1.0, 0.05);
}
