//===- tests/support/profile_test.cpp - profiling layer tests -*- C++ -*-===//
///
/// Covers the instrumentation subsystem end to end: counter aggregation
/// across ThreadPool workers, nested scoped timers (no double counting),
/// Chrome-trace export round-tripping through the JSON parser, and the
/// Profile=false contract — engine outputs bitwise identical to an
/// unprofiled run.
///
/// The profiler is a process-wide singleton, so every test starts from
/// reset() and re-disables recording on exit (tests in this binary run
/// sequentially).
///
//===----------------------------------------------------------------------===//

#include "support/profile.h"

#include "compiler/compiler.h"
#include "engine/executor.h"
#include "models/models.h"
#include "support/thread_pool.h"
#include "support/trace_json.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace latte;

namespace {

/// Enables the profiler from a clean slate and disables it on scope exit.
struct ProfilerSession {
  ProfilerSession() {
    prof::Profiler::get().reset();
    prof::Profiler::get().setEnabled(true);
  }
  ~ProfilerSession() {
    prof::Profiler::get().setEnabled(false);
    prof::Profiler::get().reset();
  }
};

TEST(Profile, DisabledByDefault) { EXPECT_FALSE(prof::enabled()); }

TEST(Profile, CountersAggregateAcrossPoolWorkers) {
  ProfilerSession S;
  {
    prof::ScopedPhase Phase("pool_test");
    ThreadPool Pool(4);
    // Every task increments from whichever worker runs it; the per-phase
    // aggregate must see the exact sum regardless of thread placement.
    Pool.parallelFor(1000, [](int64_t I) {
      prof::count(prof::Counter::Flops, 3);
      if (I % 2 == 0)
        prof::count(prof::Counter::BytesMoved, 8);
    });
    Pool.parallelRun([](int Tid) {
      (void)Tid;
      prof::count(prof::Counter::TasksExecuted, 1);
    });
    prof::Summary Sum = prof::Profiler::get().summary();
    const prof::CounterSet *C = Sum.counters("pool_test");
    ASSERT_NE(C, nullptr);
    EXPECT_EQ(C->get(prof::Counter::Flops), 3000u);
    EXPECT_EQ(C->get(prof::Counter::BytesMoved), 4000u);
    EXPECT_EQ(C->get(prof::Counter::TasksExecuted),
              static_cast<uint64_t>(Pool.numThreads()));
    EXPECT_EQ(Sum.Totals.get(prof::Counter::Flops), 3000u);
  }
}

TEST(Profile, SpansRecordPhaseAndThread) {
  ProfilerSession S;
  {
    prof::ScopedPhase Phase("p1");
    prof::ScopedTimer T("work");
  }
  std::vector<prof::Span> Spans = prof::Profiler::get().spans();
  ASSERT_EQ(Spans.size(), 1u);
  EXPECT_EQ(Spans[0].Name, "work");
  EXPECT_EQ(Spans[0].Phase, "p1");
  EXPECT_FALSE(Spans[0].SelfNested);
}

TEST(Profile, NestedSameNameTimersDontDoubleCount) {
  ProfilerSession S;
  {
    prof::ScopedTimer Outer("recurse");
    {
      prof::ScopedTimer Inner("recurse"); // same name: self-nested
      prof::ScopedTimer Other("leaf");    // different name: counted
    }
  }
  prof::Summary Sum = prof::Profiler::get().summary();
  const prof::SpanStat *R = Sum.find("", "recurse");
  ASSERT_NE(R, nullptr);
  EXPECT_EQ(R->Count, 2u); // both spans appear in the count...
  const prof::SpanStat *L = Sum.find("", "leaf");
  ASSERT_NE(L, nullptr);
  // ...but the aggregate total only includes the outer one: the sum of
  // "recurse" must not exceed the outer wall time, which itself encloses
  // "leaf". If the inner span were counted, TotalSec would be ~2x.
  std::vector<prof::Span> Spans = prof::Profiler::get().spans();
  ASSERT_EQ(Spans.size(), 3u);
  double OuterSec = 0;
  for (const prof::Span &Sp : Spans)
    if (Sp.Name == "recurse" && !Sp.SelfNested)
      OuterSec = static_cast<double>(Sp.DurNs) * 1e-9;
  EXPECT_GT(OuterSec, 0);
  EXPECT_LE(R->TotalSec, OuterSec * 1.0001);
}

TEST(Profile, ResetDiscardsDataNotRegistrations) {
  ProfilerSession S;
  prof::count(prof::Counter::GemmCalls, 5);
  { prof::ScopedTimer T("x"); }
  prof::Profiler::get().reset();
  EXPECT_TRUE(prof::Profiler::get().spans().empty());
  EXPECT_TRUE(prof::Profiler::get().summary().Totals.empty());
  // Recording still works after a reset.
  prof::count(prof::Counter::GemmCalls, 2);
  EXPECT_EQ(prof::Profiler::get().summary().Totals.get(
                prof::Counter::GemmCalls),
            2u);
}

TEST(Profile, ChromeTraceRoundTripsThroughParser) {
  ProfilerSession S;
  {
    prof::ScopedPhase Phase("compile");
    prof::ScopedTimer T1("stage:baseline");
    prof::ScopedTimer T2("synthesize");
  }
  json::Value Trace = prof::chromeTrace();
  // Serialize and parse back — the exported file must be valid JSON with
  // the trace_event shape Perfetto expects.
  std::string Err;
  json::Value Doc = json::parse(Trace.dump(2), &Err);
  ASSERT_TRUE(Doc.isObject()) << Err;
  const json::Value *Events = Doc.find("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_TRUE(Events->isArray());
  size_t Complete = 0, Meta = 0;
  for (const json::Value &E : Events->items()) {
    ASSERT_TRUE(E.isObject());
    std::string Ph = E.stringAt("ph");
    if (Ph == "X") {
      ++Complete;
      EXPECT_FALSE(E.stringAt("name").empty());
      EXPECT_TRUE(E.find("ts") != nullptr && E.at("ts").isNumber());
      EXPECT_TRUE(E.find("dur") != nullptr && E.at("dur").isNumber());
      EXPECT_TRUE(E.find("tid") != nullptr);
      EXPECT_EQ(E.stringAt("cat"), "compile");
    } else if (Ph == "M") {
      ++Meta;
      EXPECT_EQ(E.stringAt("name"), "thread_name");
    }
  }
  EXPECT_EQ(Complete, 2u);
  EXPECT_GE(Meta, 1u);
}

TEST(Profile, SummaryJsonHasSpansAndCounters) {
  ProfilerSession S;
  {
    prof::ScopedPhase Phase("fwd");
    prof::ScopedTimer T("task");
    prof::count(prof::Counter::KernelCalls, 3);
  }
  json::Value Doc = prof::summaryJson();
  ASSERT_TRUE(Doc.isObject());
  ASSERT_TRUE(Doc.at("spans").isArray());
  EXPECT_EQ(Doc.at("spans").items().size(), 1u);
  EXPECT_EQ(Doc.at("spans").items()[0].stringAt("name"), "task");
  EXPECT_DOUBLE_EQ(Doc.at("counters").at("fwd").numberAt("kernel_calls"),
                   3.0);
  EXPECT_DOUBLE_EQ(Doc.at("totals").numberAt("kernel_calls"), 3.0);
}

TEST(Profile, DisabledRecordingIsDropped) {
  prof::Profiler::get().reset();
  ASSERT_FALSE(prof::enabled());
  prof::count(prof::Counter::Flops, 100);
  { prof::ScopedTimer T("ignored"); }
  EXPECT_TRUE(prof::Profiler::get().spans().empty());
  EXPECT_TRUE(prof::Profiler::get().summary().Totals.empty());
}

/// Runs lenet-ish forward/backward and returns the raw bytes of the
/// classifier output buffer.
std::vector<unsigned char> runOnce(bool Profile) {
  models::ModelSpec Spec = models::mlp(16, {12, 8}, 4);
  core::Net Net(/*Batch=*/3);
  models::buildLatte(Net, Spec, /*WithLoss=*/true);
  engine::ExecOptions EO;
  EO.Deterministic = true;
  EO.Profile = Profile;
  engine::Executor Ex(compiler::compile(Net, {}), EO);
  Ex.initParams(1);
  Tensor In(Spec.InputDims.withPrefix(3));
  Rng R(11);
  R.fillGaussian(In, 0.0f, 1.0f);
  Ex.setInput(In);
  Tensor Labels(Shape{3, 1});
  for (int64_t I = 0; I < 3; ++I)
    Labels.at(I) = static_cast<float>(I % 4);
  Ex.setLabels(Labels);
  Ex.forward();
  Ex.backward();
  Tensor Out = Ex.readBuffer(Ex.program().ProbBuffer);
  std::vector<unsigned char> Bytes(Out.numElements() * sizeof(float));
  std::memcpy(Bytes.data(), Out.data(), Bytes.size());
  return Bytes;
}

TEST(Profile, ProfilingDoesNotPerturbEngineOutputs) {
  // Profile=false (profiler off) vs Profile=true (profiler recording) must
  // produce bitwise-identical engine outputs: instrumentation only observes.
  std::vector<unsigned char> Plain = runOnce(/*Profile=*/false);
  std::vector<unsigned char> Profiled;
  {
    ProfilerSession S;
    Profiled = runOnce(/*Profile=*/true);
    // Sanity: the profiled run actually recorded engine activity.
    prof::Summary Sum = prof::Profiler::get().summary();
    EXPECT_GT(Sum.Totals.get(prof::Counter::TasksExecuted), 0u);
    EXPECT_GT(Sum.Totals.get(prof::Counter::KernelCalls), 0u);
    EXPECT_NE(Sum.counters("forward"), nullptr);
    EXPECT_NE(Sum.counters("backward"), nullptr);
  }
  ASSERT_EQ(Plain.size(), Profiled.size());
  EXPECT_EQ(std::memcmp(Plain.data(), Profiled.data(), Plain.size()), 0);
  // And a second unprofiled run is reproducible at all (the test would be
  // vacuous if outputs differed run to run).
  std::vector<unsigned char> Plain2 = runOnce(/*Profile=*/false);
  EXPECT_EQ(Plain, Plain2);
}

} // namespace
