//===- tests/support/shape_test.cpp ---------------------------*- C++ -*-===//

#include "support/shape.h"

#include <gtest/gtest.h>

using namespace latte;

TEST(ShapeTest, RankAndDims) {
  Shape S{3, 224, 224};
  EXPECT_EQ(S.rank(), 3);
  EXPECT_EQ(S.dim(0), 3);
  EXPECT_EQ(S[2], 224);
}

TEST(ShapeTest, NumElements) {
  EXPECT_EQ(Shape({}).numElements(), 1);
  EXPECT_EQ(Shape({5}).numElements(), 5);
  EXPECT_EQ(Shape({3, 4, 5}).numElements(), 60);
  EXPECT_EQ(Shape({3, 0, 5}).numElements(), 0);
}

TEST(ShapeTest, Equality) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
  EXPECT_NE(Shape({2, 3}), Shape({2, 3, 1}));
}

TEST(ShapeTest, WithPrefix) {
  Shape S = Shape({3, 4}).withPrefix(8);
  EXPECT_EQ(S, Shape({8, 3, 4}));
}

TEST(ShapeTest, WithoutDim) {
  Shape S{2, 3, 4};
  EXPECT_EQ(S.withoutDim(0), Shape({3, 4}));
  EXPECT_EQ(S.withoutDim(1), Shape({2, 4}));
  EXPECT_EQ(S.withoutDim(2), Shape({2, 3}));
}

TEST(ShapeTest, StridesAreRowMajor) {
  Shape S{2, 3, 4};
  std::vector<int64_t> Strides = S.strides();
  ASSERT_EQ(Strides.size(), 3u);
  EXPECT_EQ(Strides[0], 12);
  EXPECT_EQ(Strides[1], 4);
  EXPECT_EQ(Strides[2], 1);
}

TEST(ShapeTest, LinearizeDelinearizeRoundTrip) {
  Shape S{3, 5, 7};
  for (int64_t I = 0; I < S.numElements(); ++I) {
    std::vector<int64_t> Index = S.delinearize(I);
    EXPECT_EQ(S.linearize(Index), I);
  }
}

TEST(ShapeTest, LinearizeMatchesStrides) {
  Shape S{4, 6};
  EXPECT_EQ(S.linearize({0, 0}), 0);
  EXPECT_EQ(S.linearize({1, 0}), 6);
  EXPECT_EQ(S.linearize({2, 3}), 15);
}

TEST(ShapeTest, Str) {
  EXPECT_EQ(Shape({64, 224, 224}).str(), "(64, 224, 224)");
  EXPECT_EQ(Shape({}).str(), "()");
}
