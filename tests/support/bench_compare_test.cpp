//===- tests/support/bench_compare_test.cpp - compare gate ----*- C++ -*-===//
///
/// Classification logic behind the `bench/compare` CI gate: regression /
/// improvement thresholds, the absolute-delta noise guard, row matching by
/// label, and figure-mismatch notes.
///
//===----------------------------------------------------------------------===//

#include "support/bench_compare.h"

#include <gtest/gtest.h>

using namespace latte;

namespace {

/// Builds a minimal BENCH document with one row per (label, total) pair.
json::Value benchDoc(
    const std::vector<std::pair<std::string, double>> &Rows,
    const std::string &Figure = "fig13") {
  json::Value Doc = json::Value::object();
  Doc.set("schema", "latte-bench-v1");
  Doc.set("figure", Figure);
  json::Value Arr = json::Value::array();
  for (const auto &R : Rows) {
    json::Value Row = json::Value::object();
    Row.set("label", R.first);
    Row.set("fwd_sec", R.second * 0.4);
    Row.set("bwd_sec", R.second * 0.6);
    Row.set("total_sec", R.second);
    Arr.push(std::move(Row));
  }
  Doc.set("rows", std::move(Arr));
  return Doc;
}

TEST(BenchCompare, IdenticalFilesPass) {
  json::Value Doc = benchDoc({{"caffe", 0.010}, {"latte_full", 0.002}});
  bench::CompareResult R = bench::compareBenchJson(Doc, Doc, 1.5);
  EXPECT_TRUE(R.ok());
  EXPECT_EQ(R.Compared.size(), 6u); // 2 rows x {fwd, bwd, total}
  EXPECT_TRUE(R.Regressions.empty());
  EXPECT_TRUE(R.Improvements.empty());
}

TEST(BenchCompare, RegressionPastThresholdFails) {
  json::Value Old = benchDoc({{"latte_full", 0.010}});
  json::Value New = benchDoc({{"latte_full", 0.016}}); // 1.6x
  bench::CompareResult R = bench::compareBenchJson(Old, New, 1.5);
  EXPECT_FALSE(R.ok());
  ASSERT_FALSE(R.Regressions.empty());
  EXPECT_EQ(R.Regressions[0].Label, "latte_full");
  EXPECT_NEAR(R.Regressions[0].ratio(), 1.6, 1e-9);
  // The same delta passes under a looser threshold.
  EXPECT_TRUE(bench::compareBenchJson(Old, New, 2.5).ok());
}

TEST(BenchCompare, JustUnderThresholdPasses) {
  json::Value Old = benchDoc({{"row", 0.010}});
  json::Value New = benchDoc({{"row", 0.0149}});
  EXPECT_TRUE(bench::compareBenchJson(Old, New, 1.5).ok());
}

TEST(BenchCompare, TinyAbsoluteDeltasAreNoise) {
  // 5x ratio but only 40 microseconds absolute — below MinDeltaSec, so
  // not a regression (smoke runs at tiny scale are jittery).
  json::Value Old = benchDoc({{"row", 0.00001}});
  json::Value New = benchDoc({{"row", 0.00005}});
  EXPECT_TRUE(bench::compareBenchJson(Old, New, 1.5).ok());
  // With the guard lowered the same data fails.
  EXPECT_FALSE(
      bench::compareBenchJson(Old, New, 1.5, /*MinDeltaSec=*/1e-7).ok());
}

TEST(BenchCompare, ImprovementsReportedNotFailed) {
  json::Value Old = benchDoc({{"row", 0.010}});
  json::Value New = benchDoc({{"row", 0.004}});
  bench::CompareResult R = bench::compareBenchJson(Old, New, 1.5);
  EXPECT_TRUE(R.ok());
  EXPECT_FALSE(R.Improvements.empty());
}

TEST(BenchCompare, RowsMatchedByLabelNotOrder) {
  json::Value Old = benchDoc({{"a", 0.010}, {"b", 0.020}});
  json::Value New = benchDoc({{"b", 0.020}, {"a", 0.010}});
  bench::CompareResult R = bench::compareBenchJson(Old, New, 1.5);
  EXPECT_TRUE(R.ok());
  EXPECT_EQ(R.Compared.size(), 6u);
}

TEST(BenchCompare, MissingAndNewRowsAreNotes) {
  json::Value Old = benchDoc({{"a", 0.010}, {"gone", 0.020}});
  json::Value New = benchDoc({{"a", 0.010}, {"added", 0.030}});
  bench::CompareResult R = bench::compareBenchJson(Old, New, 1.5);
  EXPECT_TRUE(R.ok()); // rows appearing/disappearing never gate
  EXPECT_EQ(R.Compared.size(), 3u);
  EXPECT_FALSE(R.Notes.empty());
}

TEST(BenchCompare, FigureMismatchNoted) {
  json::Value Old = benchDoc({{"a", 0.010}}, "fig13");
  json::Value New = benchDoc({{"a", 0.010}}, "fig14");
  bench::CompareResult R = bench::compareBenchJson(Old, New, 1.5);
  EXPECT_FALSE(R.Notes.empty());
}

TEST(BenchCompare, EmptyDocsCompareNothing) {
  json::Value Empty = json::Value::object();
  bench::CompareResult R = bench::compareBenchJson(Empty, Empty, 1.5);
  EXPECT_TRUE(R.Compared.empty());
  EXPECT_TRUE(R.ok());
}

TEST(BenchCompare, ReportMentionsRegressedRows) {
  json::Value Old = benchDoc({{"slow_row", 0.010}});
  json::Value New = benchDoc({{"slow_row", 0.030}});
  bench::CompareResult R = bench::compareBenchJson(Old, New, 1.5);
  std::string Report = bench::formatCompareReport(R, 1.5);
  EXPECT_NE(Report.find("slow_row"), std::string::npos);
  EXPECT_NE(Report.find("REGRESSED"), std::string::npos);
}

/// Builds a doc with one serve_p50 row carrying latency_norm.
json::Value p50Doc(double Norm, double Total = 0.010) {
  json::Value Doc = json::Value::object();
  Doc.set("schema", "latte-bench-v1");
  Doc.set("figure", "serve");
  json::Value Row = json::Value::object();
  Row.set("label", "serve_p50");
  Row.set("total_sec", Total);
  Row.set("latency_norm", Norm);
  json::Value Arr = json::Value::array();
  Arr.push(std::move(Row));
  Doc.set("rows", std::move(Arr));
  return Doc;
}

TEST(BenchCompare, LatencyNormGatesLowerIsBetter) {
  // 2x growth in the normalized p50 multiple regresses past a 1.3x gate
  // even though it needs no absolute-seconds noise floor.
  bench::CompareResult R =
      bench::compareBenchJson(p50Doc(20.0), p50Doc(40.0), 1.3);
  EXPECT_FALSE(R.ok());
  bool Found = false;
  for (const auto &D : R.Regressions)
    if (D.Metric == "latency_norm") {
      Found = true;
      EXPECT_NEAR(D.ratio(), 2.0, 1e-9);
    }
  EXPECT_TRUE(Found);
}

TEST(BenchCompare, LatencyNormShrinkIsImprovement) {
  bench::CompareResult R =
      bench::compareBenchJson(p50Doc(40.0), p50Doc(20.0), 1.3);
  EXPECT_TRUE(R.ok());
  bool Found = false;
  for (const auto &D : R.Improvements)
    if (D.Metric == "latency_norm")
      Found = true;
  EXPECT_TRUE(Found);
}

TEST(BenchCompare, OnlyMetricsFiltersColumns) {
  // Gate exactly latency_norm: the row's total_sec regression (3x, well
  // past threshold and the noise floor) must be invisible to this
  // invocation, while the latency_norm regression still fails it.
  json::Value Old = p50Doc(20.0);
  json::Value New = p50Doc(40.0, /*Total=*/0.030);
  std::vector<std::string> Metrics = {"latency_norm"};
  bench::CompareResult R =
      bench::compareBenchJson(Old, New, 1.3, 1e-4, nullptr, &Metrics);
  ASSERT_EQ(R.Compared.size(), 1u);
  EXPECT_EQ(R.Compared[0].Metric, "latency_norm");
  EXPECT_FALSE(R.ok());
  // The same filter with a healthy latency_norm passes despite the
  // total_sec regression still present in the document.
  bench::CompareResult R2 = bench::compareBenchJson(
      Old, Old, 1.3, 1e-4, nullptr, &Metrics);
  EXPECT_TRUE(R2.ok());
}

TEST(BenchCompare, ServeCountersCompareInformationally) {
  json::Value Old = benchDoc({{"serve_p50", 0.010}});
  json::Value New = benchDoc({{"serve_p50", 0.010}});
  json::Value SOld = json::Value::object();
  SOld.set("deadline_shed", 0.0);
  SOld.set("interp_fallbacks", 2.0);
  Old.set("serve", std::move(SOld));
  json::Value SNew = json::Value::object();
  SNew.set("deadline_shed", 50.0); // huge drift — still never gates
  SNew.set("interp_fallbacks", 2.0);
  New.set("serve", std::move(SNew));
  bench::CompareResult R = bench::compareBenchJson(Old, New, 1.5);
  EXPECT_TRUE(R.ok());
  bool Found = false;
  for (const auto &D : R.Compared)
    if (D.Label == "serve" && D.Metric == "deadline_shed") {
      Found = true;
      EXPECT_EQ(D.NewSec, 50.0);
    }
  EXPECT_TRUE(Found);
  // Counters render as integers in the markdown table.
  std::string Md = bench::formatCompareMarkdown(R, 1.5);
  EXPECT_NE(Md.find("deadline_shed"), std::string::npos);
  EXPECT_NE(Md.find("| 50 |"), std::string::npos);
}

} // namespace
