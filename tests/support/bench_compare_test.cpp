//===- tests/support/bench_compare_test.cpp - compare gate ----*- C++ -*-===//
///
/// Classification logic behind the `bench/compare` CI gate: regression /
/// improvement thresholds, the absolute-delta noise guard, row matching by
/// label, and figure-mismatch notes.
///
//===----------------------------------------------------------------------===//

#include "support/bench_compare.h"

#include <gtest/gtest.h>

using namespace latte;

namespace {

/// Builds a minimal BENCH document with one row per (label, total) pair.
json::Value benchDoc(
    const std::vector<std::pair<std::string, double>> &Rows,
    const std::string &Figure = "fig13") {
  json::Value Doc = json::Value::object();
  Doc.set("schema", "latte-bench-v1");
  Doc.set("figure", Figure);
  json::Value Arr = json::Value::array();
  for (const auto &R : Rows) {
    json::Value Row = json::Value::object();
    Row.set("label", R.first);
    Row.set("fwd_sec", R.second * 0.4);
    Row.set("bwd_sec", R.second * 0.6);
    Row.set("total_sec", R.second);
    Arr.push(std::move(Row));
  }
  Doc.set("rows", std::move(Arr));
  return Doc;
}

TEST(BenchCompare, IdenticalFilesPass) {
  json::Value Doc = benchDoc({{"caffe", 0.010}, {"latte_full", 0.002}});
  bench::CompareResult R = bench::compareBenchJson(Doc, Doc, 1.5);
  EXPECT_TRUE(R.ok());
  EXPECT_EQ(R.Compared.size(), 6u); // 2 rows x {fwd, bwd, total}
  EXPECT_TRUE(R.Regressions.empty());
  EXPECT_TRUE(R.Improvements.empty());
}

TEST(BenchCompare, RegressionPastThresholdFails) {
  json::Value Old = benchDoc({{"latte_full", 0.010}});
  json::Value New = benchDoc({{"latte_full", 0.016}}); // 1.6x
  bench::CompareResult R = bench::compareBenchJson(Old, New, 1.5);
  EXPECT_FALSE(R.ok());
  ASSERT_FALSE(R.Regressions.empty());
  EXPECT_EQ(R.Regressions[0].Label, "latte_full");
  EXPECT_NEAR(R.Regressions[0].ratio(), 1.6, 1e-9);
  // The same delta passes under a looser threshold.
  EXPECT_TRUE(bench::compareBenchJson(Old, New, 2.5).ok());
}

TEST(BenchCompare, JustUnderThresholdPasses) {
  json::Value Old = benchDoc({{"row", 0.010}});
  json::Value New = benchDoc({{"row", 0.0149}});
  EXPECT_TRUE(bench::compareBenchJson(Old, New, 1.5).ok());
}

TEST(BenchCompare, TinyAbsoluteDeltasAreNoise) {
  // 5x ratio but only 40 microseconds absolute — below MinDeltaSec, so
  // not a regression (smoke runs at tiny scale are jittery).
  json::Value Old = benchDoc({{"row", 0.00001}});
  json::Value New = benchDoc({{"row", 0.00005}});
  EXPECT_TRUE(bench::compareBenchJson(Old, New, 1.5).ok());
  // With the guard lowered the same data fails.
  EXPECT_FALSE(
      bench::compareBenchJson(Old, New, 1.5, /*MinDeltaSec=*/1e-7).ok());
}

TEST(BenchCompare, ImprovementsReportedNotFailed) {
  json::Value Old = benchDoc({{"row", 0.010}});
  json::Value New = benchDoc({{"row", 0.004}});
  bench::CompareResult R = bench::compareBenchJson(Old, New, 1.5);
  EXPECT_TRUE(R.ok());
  EXPECT_FALSE(R.Improvements.empty());
}

TEST(BenchCompare, RowsMatchedByLabelNotOrder) {
  json::Value Old = benchDoc({{"a", 0.010}, {"b", 0.020}});
  json::Value New = benchDoc({{"b", 0.020}, {"a", 0.010}});
  bench::CompareResult R = bench::compareBenchJson(Old, New, 1.5);
  EXPECT_TRUE(R.ok());
  EXPECT_EQ(R.Compared.size(), 6u);
}

TEST(BenchCompare, MissingAndNewRowsAreNotes) {
  json::Value Old = benchDoc({{"a", 0.010}, {"gone", 0.020}});
  json::Value New = benchDoc({{"a", 0.010}, {"added", 0.030}});
  bench::CompareResult R = bench::compareBenchJson(Old, New, 1.5);
  EXPECT_TRUE(R.ok()); // rows appearing/disappearing never gate
  EXPECT_EQ(R.Compared.size(), 3u);
  EXPECT_FALSE(R.Notes.empty());
}

TEST(BenchCompare, FigureMismatchNoted) {
  json::Value Old = benchDoc({{"a", 0.010}}, "fig13");
  json::Value New = benchDoc({{"a", 0.010}}, "fig14");
  bench::CompareResult R = bench::compareBenchJson(Old, New, 1.5);
  EXPECT_FALSE(R.Notes.empty());
}

TEST(BenchCompare, EmptyDocsCompareNothing) {
  json::Value Empty = json::Value::object();
  bench::CompareResult R = bench::compareBenchJson(Empty, Empty, 1.5);
  EXPECT_TRUE(R.Compared.empty());
  EXPECT_TRUE(R.ok());
}

TEST(BenchCompare, ReportMentionsRegressedRows) {
  json::Value Old = benchDoc({{"slow_row", 0.010}});
  json::Value New = benchDoc({{"slow_row", 0.030}});
  bench::CompareResult R = bench::compareBenchJson(Old, New, 1.5);
  std::string Report = bench::formatCompareReport(R, 1.5);
  EXPECT_NE(Report.find("slow_row"), std::string::npos);
  EXPECT_NE(Report.find("REGRESSED"), std::string::npos);
}

} // namespace
