//===- examples/mnist_convnet.cpp - LeNet on synthetic digits -*- C++ -*-===//
///
/// A convolutional network (the Figure 20 configuration) on the synthetic
/// MNIST substitute, demonstrating the compiler's optimization report:
/// which ensembles were pattern-matched to GEMM, which pooling/activation
/// kernels fired, and which layers fused.
///
/// Build & run:  ./examples/mnist_convnet
///
//===----------------------------------------------------------------------===//

#include "compiler/compiler.h"
#include "data/datasets.h"
#include "engine/executor.h"
#include "models/models.h"
#include "solvers/solvers.h"
#include "support/string_utils.h"

#include <cstdio>

using namespace latte;
using namespace latte::solvers;

int main() {
  data::SyntheticMnist Digits(2048, 7, 10, 28, 0.2f, 2);

  core::Net Net(16);
  models::ModelSpec Spec = models::lenet();
  models::buildLatte(Net, Spec, /*WithLoss=*/true);

  compiler::Program P = compiler::compile(Net);
  std::printf("=== compiler report ===\n");
  std::printf("GEMM-matched:   %s\n",
              join(P.Report.MatchedGemmEnsembles, ", ").c_str());
  std::printf("pool kernels:   %s\n",
              join(P.Report.MatchedPoolEnsembles, ", ").c_str());
  std::printf("activations:    %s\n",
              join(P.Report.MatchedActivationEnsembles, ", ").c_str());
  std::printf("interpreted:    %s\n",
              join(P.Report.InterpretedEnsembles, ", ").c_str());
  std::printf("tiled loops:    %d\n", P.Report.NumTiledLoops);
  for (const auto &Group : P.Report.FusionGroups)
    std::printf("fused group:    %s\n", join(Group, " + ").c_str());

  engine::Executor Ex(std::move(P));
  Ex.initParams(1);

  SolverParameters Params;
  Params.Lr = LRPolicy::inv(0.02, 0.0001, 0.75);
  Params.Momentum = MomPolicy::fixed(0.9);
  Params.ReguCoef = 0.0005;
  Params.MaxIters = 250;
  SgdSolver Sgd(Params);

  std::printf("\n=== training ===\n");
  solve(Sgd, Ex, data::batchesOf(Digits), [](const TrainStats &S) {
    if (S.Iter % 50 == 0)
      std::printf("iter %4lld  loss %.4f  batch accuracy %.2f\n",
                  static_cast<long long>(S.Iter), S.Loss, S.Accuracy);
  });

  double Acc = data::evaluateAccuracy(Ex, Digits, 512);
  std::printf("final accuracy over 512 items: %.2f%%\n", 100.0 * Acc);
  return Acc > 0.9 ? 0 : 1;
}
