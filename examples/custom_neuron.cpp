//===- examples/custom_neuron.cpp - Defining a novel layer ----*- C++ -*-===//
///
/// The paper's headline programmability claim: a researcher defines a new
/// neuron type — here a "swishish" gated unit, value = x * sigmoid(beta*x)
/// with a learnable gain beta — exactly the way the standard library
/// defines WeightedNeuron (§3.1, Figure 3): declare fields, write forward
/// and backward as per-neuron programs, and let the compiler synthesize
/// the ensemble code. No pattern matches this computation, so the report
/// shows the general synthesized path executing it; gradients still come
/// out right (verified against finite differences below) and the layer
/// trains inside an ordinary network.
///
/// Build & run:  ./examples/custom_neuron
///
//===----------------------------------------------------------------------===//

#include "compiler/compiler.h"
#include "core/layers/layers.h"
#include "engine/executor.h"
#include "support/string_utils.h"

#include <cmath>
#include <cstdio>

using namespace latte;
using namespace latte::core;
using namespace latte::ir;
using namespace latte::layers;

namespace {

/// value = input * sigmoid(beta * input); d/dinput and d/dbeta follow the
/// product rule. Written against the surface DSL, like Figure 3.
NeuronType makeSwishNeuronType() {
  using namespace core::dsl;
  std::vector<FieldSpec> Fields = {
      {"beta", Shape{1}, /*IsParam=*/true, /*HasGrad=*/true, 1.0f},
  };
  NeuronBodyFn Fwd = [](const NeuronContext &) {
    // value = x * sigmoid(beta * x)
    return setValue(
        mul(input(0, intConst(0)),
            sigmoid(mul(field("beta", indexList(intConst(0))),
                        input(0, intConst(0))))));
  };
  NeuronBodyFn Bwd = [](const NeuronContext &) {
    // s = sigmoid(beta*x); dvalue/dx = s + beta*x*s*(1-s)
    //                      dvalue/dbeta = x^2 * s * (1-s)
    auto X = [] { return input(0, intConst(0)); };
    auto S = [&] {
      return sigmoid(mul(field("beta", indexList(intConst(0))), X()));
    };
    std::vector<StmtPtr> Stmts;
    Stmts.push_back(accumGradInput(
        0, intConst(0),
        mul(grad(),
            add(S(), mul(mul(field("beta", indexList(intConst(0))), X()),
                         mul(S(), sub(floatConst(1.0), S())))))));
    Stmts.push_back(accumField(
        "grad_beta", indexList(intConst(0)),
        mul(grad(), mul(mul(X(), X()),
                        mul(S(), sub(floatConst(1.0), S()))))));
    return block(std::move(Stmts));
  };
  return NeuronType("SwishNeuron", std::move(Fields), std::move(Fwd),
                    std::move(Bwd));
}

Ensemble *swishLayer(Net &Net, const std::string &Name, Ensemble *Input) {
  const NeuronType *T = Net.findType("SwishNeuron");
  if (!T)
    T = Net.registerType(makeSwishNeuronType());
  Ensemble *E = Net.addEnsemble(Name, Input->dims(), T);
  FieldStorage Beta;
  Beta.StorageDims = Shape{1};
  Beta.ElemDims = Shape{1};
  Beta.Map = [](const std::vector<int64_t> &) {
    return std::vector<int64_t>{0};
  };
  Beta.Init = FieldInitKind::Constant;
  Beta.InitValue = 1.0f;
  E->setFieldStorage("beta", std::move(Beta));
  Net.addConnections(Input, E, oneToOneMapping());
  return E;
}

} // namespace

int main() {
  core::Net Net(4);
  Ensemble *Data = DataLayer(Net, "data", Shape{6});
  Ensemble *Fc1 = FullyConnectedLayer(Net, "fc1", Data, 10);
  Ensemble *Swish = swishLayer(Net, "swish", Fc1);
  Ensemble *Fc2 = FullyConnectedLayer(Net, "fc2", Swish, 3);
  Ensemble *Labels = LabelLayer(Net, "labels");
  SoftmaxLossLayer(Net, "loss", Fc2, Labels);

  compiler::Program P = compiler::compile(Net);
  std::printf("GEMM-matched: %s\n",
              join(P.Report.MatchedGemmEnsembles, ", ").c_str());
  std::printf("interpreted (novel neuron): %s\n",
              join(P.Report.InterpretedEnsembles, ", ").c_str());

  engine::Executor Ex(std::move(P));
  Ex.initParams(7);
  Rng R(11);
  Tensor In(Shape{4, 6});
  R.fillGaussian(In, 0.0f, 1.0f);
  Ex.setInput(In);
  Tensor L(Shape{4, 1});
  for (int I = 0; I < 4; ++I)
    L.at(I) = static_cast<float>(I % 3);
  Ex.setLabels(L);

  // Gradient check on the learnable gain.
  Ex.forward();
  Ex.backward();
  float Analytic = Ex.readBuffer("swish_grad_beta").at(0);
  const float Eps = 1e-2f;
  Tensor Beta = Ex.readBuffer("swish_beta");
  float Orig = Beta.at(0);
  Beta.at(0) = Orig + Eps;
  Ex.writeBuffer("swish_beta", Beta);
  Ex.forward();
  double Plus = Ex.lossValue();
  Beta.at(0) = Orig - Eps;
  Ex.writeBuffer("swish_beta", Beta);
  Ex.forward();
  double Minus = Ex.lossValue();
  Beta.at(0) = Orig;
  Ex.writeBuffer("swish_beta", Beta);
  double Numeric = (Plus - Minus) / (2 * Eps);
  std::printf("d(loss)/d(beta): analytic %.6f vs numeric %.6f\n", Analytic,
              Numeric);
  bool Ok = std::fabs(Analytic - Numeric) < 1e-3;

  // And it trains.
  double First = 0, Last = 0;
  for (int Iter = 0; Iter < 120; ++Iter) {
    Ex.forward();
    Ex.backward();
    for (const compiler::ParamBinding &B : Ex.program().Params) {
      float *Param = Ex.data(B.Param);
      const float *Grad = Ex.data(B.Grad);
      for (int64_t I = 0; I < Ex.size(B.Param); ++I)
        Param[I] -= 0.2f * Grad[I];
    }
    if (Iter == 0)
      First = Ex.lossValue();
    Last = Ex.lossValue();
  }
  std::printf("loss %.4f -> %.4f after 120 steps; beta learned to %.3f\n",
              First, Last, Ex.readBuffer("swish_beta").at(0));
  return Ok && Last < First ? 0 : 1;
}
