//===- examples/lstm_sequence.cpp - Recurrent block demo ------*- C++ -*-===//
///
/// Recurrent networks in Latte (paper §4, Figure 6): an LSTM block,
/// unrolled over time with weights tied across timesteps, learns an
/// order-sensitive task a memoryless model cannot: "did the marker arrive
/// early or late in the sequence?".
///
/// Build & run:  ./examples/lstm_sequence
///
//===----------------------------------------------------------------------===//

#include "compiler/compiler.h"
#include "core/layers/recurrent.h"
#include "engine/executor.h"

#include <cstdio>
#include <vector>

using namespace latte;
using namespace latte::layers;

int main() {
  const int64_t Batch = 16;
  const int T = 5;
  const int64_t InputSize = 3;
  const int64_t Hidden = 8;

  core::Net Net(Batch);
  std::vector<core::Ensemble *> Xs;
  for (int S = 0; S < T; ++S)
    Xs.push_back(
        DataLayer(Net, "x" + std::to_string(S), Shape{InputSize}));
  RecurrentOutputs Lstm = LstmLayer(Net, "lstm", Xs, Hidden);
  core::Ensemble *Fc =
      FullyConnectedLayer(Net, "fc", Lstm.Hidden.back(), 2);
  core::Ensemble *Labels = LabelLayer(Net, "labels");
  SoftmaxLossLayer(Net, "loss", Fc, Labels);

  compiler::Program P = compiler::compile(Net);
  std::printf("LSTM unrolled over %d timesteps: %zu ensembles, "
              "%zu parameter tensors (weights tied across time)\n",
              T, Net.ensembles().size(), P.Params.size());
  engine::Executor Ex(std::move(P));
  Ex.initParams(99);

  Rng R(2718);
  double Loss = 0;
  for (int Iter = 0; Iter < 300; ++Iter) {
    // Task: a spike on channel 0 arrives at the first (label 0) or last
    // (label 1) timestep; the other channels carry noise.
    std::vector<Tensor> Inputs;
    for (int S = 0; S < T; ++S)
      Inputs.emplace_back(Shape{Batch, InputSize});
    Tensor Lab(Shape{Batch, 1});
    for (int64_t B = 0; B < Batch; ++B) {
      int64_t L = R.uniformInt(2);
      Lab.at(B) = static_cast<float>(L);
      int Hot = L == 0 ? 0 : T - 1;
      for (int S = 0; S < T; ++S) {
        Inputs[S].at(B * InputSize) = S == Hot ? 2.0f : 0.0f;
        for (int64_t C = 1; C < InputSize; ++C)
          Inputs[S].at(B * InputSize + C) =
              static_cast<float>(R.gaussian(0.0, 0.2));
      }
    }
    for (int S = 0; S < T; ++S)
      Ex.writeBuffer("x" + std::to_string(S) + "_value", Inputs[S]);
    Ex.setLabels(Lab);
    Ex.forward();
    Ex.backward();
    for (const compiler::ParamBinding &B : Ex.program().Params) {
      float *Param = Ex.data(B.Param);
      const float *Grad = Ex.data(B.Grad);
      for (int64_t I = 0; I < Ex.size(B.Param); ++I)
        Param[I] -= 0.15f * Grad[I];
    }
    Loss = Ex.lossValue();
    if (Iter % 60 == 0)
      std::printf("iter %3d  loss %.4f  accuracy %.2f\n", Iter, Loss,
                  Ex.accuracy());
  }
  std::printf("final loss %.4f, accuracy %.2f\n", Loss, Ex.accuracy());
  return Ex.accuracy() > 0.8 ? 0 : 1;
}
