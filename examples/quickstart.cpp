//===- examples/quickstart.cpp - The Figure 7 MLP -------------*- C++ -*-===//
///
/// The paper's introductory example (Figure 7): a multi-layer perceptron
/// built from standard-library layers, trained with SGD under the
/// LRPolicy.Inv / MomPolicy.Fixed solver parameters. Data comes from a
/// .ltd file through the HDF5DataLayer substitute, written here from the
/// synthetic MNIST generator.
///
/// Build & run:  ./examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "compiler/compiler.h"
#include "core/layers/layers.h"
#include "data/datasets.h"
#include "engine/executor.h"
#include "solvers/solvers.h"

#include <cstdio>

using namespace latte;
using namespace latte::layers;
using namespace latte::solvers;

int main() {
  // --- data: write a synthetic MNIST-like training file, then read it
  // back the way the paper's HDF5DataLayer would. -------------------------
  data::SyntheticMnist Digits(2048, /*Seed=*/42, /*Classes=*/10,
                              /*Side=*/20, /*Noise=*/0.2f, /*Shift=*/2);
  const std::string TrainFile = "/tmp/latte_quickstart_train.ltd";
  if (!data::writeDatasetLtd(Digits, TrainFile)) {
    std::fprintf(stderr, "cannot write %s\n", TrainFile.c_str());
    return 1;
  }
  data::MemoryDataset Train = data::readDatasetLtd(TrainFile);

  // --- network: net = Net(8); ip1; ip2; loss (Figure 7) -------------------
  core::Net Net(8);
  core::Ensemble *Data = DataLayer(Net, "data", Train.itemDims());
  core::Ensemble *Ip1 = InnerProductLayer(Net, "ip1", Data, 20);
  core::Ensemble *Act = TanhLayer(Net, "tanh1", Ip1);
  core::Ensemble *Ip2 = InnerProductLayer(Net, "ip2", Act, 10);
  core::Ensemble *Labels = LabelLayer(Net, "labels");
  SoftmaxLossLayer(Net, "loss", Ip2, Labels);

  // --- compile & report what the compiler did -----------------------------
  compiler::Program P = compiler::compile(Net);
  std::printf("compiled: %zu GEMM-matched ensembles, %zu buffers\n",
              P.Report.MatchedGemmEnsembles.size(), P.Buffers.size());
  engine::Executor Ex(std::move(P));
  Ex.initParams(0x5eed);

  // --- solver parameters straight out of Figure 7 -------------------------
  SolverParameters Params;
  Params.Lr = LRPolicy::inv(0.1, 0.0001, 0.75);
  Params.Momentum = MomPolicy::fixed(0.9);
  Params.ReguCoef = 0.0005;
  Params.MaxIters = 400;
  SgdSolver Sgd(Params);

  solve(Sgd, Ex, data::batchesOf(Train), [](const TrainStats &S) {
    if (S.Iter % 100 == 0)
      std::printf("iter %4lld  loss %.4f  batch accuracy %.2f  lr %.4f\n",
                  static_cast<long long>(S.Iter), S.Loss, S.Accuracy,
                  S.LearningRate);
  });

  double Acc = data::evaluateAccuracy(Ex, Train, 512);
  std::printf("final training-set accuracy over 512 items: %.2f%%\n",
              100.0 * Acc);
  std::remove(TrainFile.c_str());
  return Acc > 0.9 ? 0 : 1;
}
