//===- tools/latte_lint.cpp - Static analysis CLI ---------------*- C++ -*-===//
///
/// \file
/// latte-lint: compiles a shipped model (src/models/) at a chosen
/// CompileOptions lattice point (or the tier's sweep of them —
/// verify::sweepMasks, all 2^9 under LATTE_DEEP=1), runs the static
/// verifier + race detector, and prints structured diagnostics, optionally
/// with per-task effect-set dumps (--dump-effects) and per-chain sub-unit
/// slice classifications (--dump-subunit). --inference lints the
/// compileForward() program instead of the training compile — the
/// stripped buffer table and forward-only memory plan go through the same
/// verifier. Exit code 1 when any Error diagnostic was produced, 0
/// otherwise (warnings and the declared §6 lossy accumulation notes do
/// not fail the run).
///
/// The --corrupt mode injects one of the hand-corruption fixtures the
/// verifier tests key on (shape-mismatch, use-before-def, dropped-barrier,
/// cross-iteration-write, plan-overlap, plan-oob, recompute-after-use,
/// forged-item-private, undersized-rotation)
/// into the compiled program before verification;
/// with --expect CODE it exits 0 iff the verifier found errors including
/// CODE — i.e. iff an uncorrupted lint run *would* have exited 1.
///
//===----------------------------------------------------------------------===//

#include "analyze/effects.h"
#include "analyze/verifier.h"
#include "compiler/compiler.h"
#include "core/graph.h"
#include "ir/builder.h"
#include "ir/printer.h"
#include "models/models.h"
#include "support/casting.h"
#include "verify/lattice.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

using namespace latte;

namespace {

struct Options {
  std::string Model = "lenet";
  int Mask = -1; ///< -1 = all masks
  int64_t Batch = 2;
  double Scale = 0.25;
  bool DumpEffects = false;
  bool DumpIR = false;
  bool DumpPlan = false;
  bool DumpSubunit = false;
  bool Inference = false; ///< lint the compileForward() program
  std::string Corrupt; ///< fixture name, empty = none
  std::string Expect;  ///< diagnostic code required under --corrupt
};

const char *kModels[] = {"lenet", "mlp",      "alexnet", "vgga", "vgg16",
                         "vgg3",  "overfeat", "lstm",    "gru",  "attn"};

models::ModelSpec specFor(const std::string &Name, double Scale) {
  if (Name == "lenet")
    return models::lenet();
  if (Name == "mlp")
    return models::mlp(64, {32, 16}, 10);
  if (Name == "lstm")
    return models::lstmClassifier();
  if (Name == "gru")
    return models::gruClassifier();
  if (Name == "attn")
    return models::attentionClassifier();
  if (Name == "alexnet")
    return models::alexNet(Scale);
  if (Name == "vgga")
    return models::vggA(Scale);
  if (Name == "vgg16")
    return models::vgg16(Scale);
  if (Name == "vgg3")
    return models::vggFirstThreeLayers(Scale);
  if (Name == "overfeat")
    return models::overfeat(Scale);
  std::fprintf(stderr, "latte-lint: unknown model '%s' (try: ", Name.c_str());
  for (const char *M : kModels)
    std::fprintf(stderr, "%s ", M);
  std::fprintf(stderr, ")\n");
  std::exit(2);
}

//===----------------------------------------------------------------------===//
// Corruption fixtures
//===----------------------------------------------------------------------===//

/// Shrinks the first bound parameter buffer: its shape no longer agrees
/// with the gradient buffer it is bound to (or with the kernels reading
/// it).
void corruptShapeMismatch(compiler::Program &Prog) {
  for (compiler::BufferInfo &B : Prog.Buffers) {
    if (B.Role != compiler::BufferRole::Param)
      continue;
    B.Dims = Shape({1});
    return;
  }
  std::fprintf(stderr, "latte-lint: model has no Param buffer to corrupt\n");
  std::exit(2);
}

/// Appends a unit whose store indexes with a loop variable that was never
/// defined.
void corruptUseBeforeDef(compiler::Program &Prog) {
  auto *Block = dyn_cast<ir::BlockStmt>(Prog.Forward.get());
  if (!Block || Prog.Buffers.empty()) {
    std::fprintf(stderr, "latte-lint: forward program not corruptible\n");
    std::exit(2);
  }
  const compiler::BufferInfo &B = Prog.Buffers.front();
  std::vector<ir::ExprPtr> Indices;
  for (int I = 0; I < B.Dims.rank(); ++I)
    Indices.push_back(ir::var("zz"));
  Block->stmts().push_back(
      ir::storeAssign(B.Name, std::move(Indices), ir::floatConst(0.0)));
  Prog.ForwardTasks.push_back({"batch[corrupt]", {}});
}

/// Deletes the first barrier unit (or, absent barriers, the last unit) but
/// keeps its task label: the label vector is no longer parallel to the
/// program.
void corruptDroppedBarrier(compiler::Program &Prog) {
  auto DropIn = [](ir::StmtPtr &Root) {
    auto *Block = dyn_cast_if_present<ir::BlockStmt>(Root.get());
    if (!Block || Block->stmts().empty())
      return false;
    std::vector<ir::StmtPtr> &Units = Block->stmts();
    for (size_t I = 0; I < Units.size(); ++I) {
      if (isa<ir::BarrierStmt>(Units[I].get())) {
        Units.erase(Units.begin() + static_cast<long>(I));
        return true;
      }
    }
    Units.pop_back();
    return true;
  };
  if (!DropIn(Prog.Backward) && !DropIn(Prog.Forward)) {
    std::fprintf(stderr, "latte-lint: no unit to drop\n");
    std::exit(2);
  }
}

/// Injects a store to a fixed element into the first parallel batch loop:
/// every iteration writes the same address.
void corruptCrossIterationWrite(compiler::Program &Prog) {
  auto *Block = dyn_cast_if_present<ir::BlockStmt>(Prog.Forward.get());
  if (Block)
    for (ir::StmtPtr &Unit : Block->stmts()) {
      auto *F = dyn_cast<ir::ForStmt>(Unit.get());
      if (!F || !F->annotations().Parallel)
        continue;
      auto *Body = dyn_cast<ir::BlockStmt>(F->body());
      if (!Body || Prog.Buffers.empty())
        continue;
      const compiler::BufferInfo &B = Prog.Buffers.front();
      std::vector<ir::ExprPtr> Indices;
      for (int I = 0; I < B.Dims.rank(); ++I)
        Indices.push_back(ir::intConst(0));
      Body->stmts().push_back(
          ir::storeAssign(B.Name, std::move(Indices), ir::floatConst(1.0)));
      return;
    }
  std::fprintf(stderr,
               "latte-lint: no parallel batch loop to corrupt (compile with "
               "a parallelize mask bit, e.g. --mask 0x10)\n");
  std::exit(2);
}

/// Overlapping-lifetime collision: relocates one non-pinned lifetime onto
/// the bytes of another root that is live at the same time — exactly the
/// aliasing mistake a buggy allocator would make.
void corruptPlanOverlap(compiler::Program &Prog) {
  compiler::MemoryPlan &Plan = Prog.Plan;
  for (size_t I = 0; I < Plan.Lifetimes.size(); ++I)
    for (size_t J = 0; J < Plan.Lifetimes.size(); ++J) {
      if (I == J)
        continue;
      compiler::BufferLifetime &A = Plan.Lifetimes[I];
      const compiler::BufferLifetime &B = Plan.Lifetimes[J];
      if (A.Pinned || A.Bytes == 0 || B.Bytes == 0 ||
          !A.overlapsLifetime(B) || A.overlapsBytes(B))
        continue;
      A.Offset = B.Offset; // collide with a simultaneously-live root
      Plan.Offsets[A.Name] = A.Offset;
      return;
    }
  std::fprintf(stderr, "latte-lint: no byte-disjoint simultaneously-live "
                       "lifetimes to collide\n");
  std::exit(2);
}

/// Out-of-bounds offset: pushes the largest non-pinned lifetime past the
/// end of the arena.
void corruptPlanOutOfBounds(compiler::Program &Prog) {
  compiler::MemoryPlan &Plan = Prog.Plan;
  for (compiler::BufferLifetime &L : Plan.Lifetimes) {
    if (L.Pinned || L.Bytes == 0)
      continue;
    L.Offset = Plan.ArenaBytes; // aligned, but [Offset, Offset+Bytes) escapes
    Plan.Offsets[L.Name] = L.Offset;
    return;
  }
  std::fprintf(stderr, "latte-lint: no non-pinned lifetime to displace\n");
  std::exit(2);
}

/// Moves a recompute clone AFTER its consumer (swapping the two backward
/// units along with their task labels): the consumer now reads bytes the
/// re-gather has not produced yet — the placement invariant the verifier
/// pins as plan.recompute.placement.
void corruptRecomputeAfterUse(compiler::Program &Prog) {
  auto *Block = dyn_cast_if_present<ir::BlockStmt>(Prog.Backward.get());
  if (!Block || Prog.Recomputes.empty()) {
    std::fprintf(stderr,
                 "latte-lint: no recomputed buffer to corrupt (compile a "
                 "conv model with the recompute bit set, e.g. --mask "
                 "0x40)\n");
    std::exit(2);
  }
  const compiler::RecomputeInfo &RI = Prog.Recomputes.front();
  std::vector<ir::StmtPtr> &Units = Block->stmts();
  std::swap(Units[RI.BackwardUnit], Units[RI.ConsumerUnit]);
  if (Prog.BackwardTasks.size() == Units.size())
    std::swap(Prog.BackwardTasks[RI.BackwardUnit],
              Prog.BackwardTasks[RI.ConsumerUnit]);
}

/// Forges an ItemPrivate claim: appends a rotation-ledger entry for a
/// whole-batch Value buffer the pass never rotated. Its leading dimension
/// still equals the batch (not the claimed 2-slice pool) and its unit
/// carries no SliceModulus — the plan.subunit.* cross-checks must reject
/// the ledger instead of trusting it.
void corruptForgedItemPrivate(compiler::Program &Prog) {
  for (const compiler::BufferInfo &B : Prog.Buffers) {
    if (B.Role != compiler::BufferRole::Value || B.Dims.rank() < 1 ||
        B.Dims[0] != Prog.BatchSize || !B.AliasOf.empty())
      continue;
    compiler::RotationInfo RI;
    RI.Buffer = B.Name;
    RI.Unit = 0;
    RI.Slices = 2;
    RI.SliceElems = B.Dims.numElements() / 2;
    Prog.Rotations.push_back(std::move(RI));
    return;
  }
  std::fprintf(stderr,
               "latte-lint: no whole-batch Value buffer to forge a rotation "
               "claim for\n");
  std::exit(2);
}

/// Shrinks a real rotation's pool below the depth the rewritten accesses
/// actually reach: ledger, buffer shape, and loop annotation are all made
/// consistently one slice smaller, but the IR still indexes `n % D` — the
/// recomputed footprints escape the pool (plan.subunit.footprint), exactly
/// the corruption an unsound dependence-depth bound would produce.
void corruptUndersizedRotation(compiler::Program &Prog) {
  if (Prog.Rotations.empty()) {
    std::fprintf(stderr,
                 "latte-lint: no rotated buffer to corrupt (compile a fused "
                 "model with the slice-rotation bit set, e.g. --model vgg3 "
                 "--batch 4 --mask 0x1ff)\n");
    std::exit(2);
  }
  compiler::RotationInfo &RI = Prog.Rotations.front();
  const int64_t NewD = RI.Slices - 1; // >= 1: plausible but too shallow
  for (compiler::BufferInfo &B : Prog.Buffers) {
    const compiler::BufferInfo *Root = Prog.resolveAlias(B.Name);
    if (!Root || Root->Name != RI.Buffer)
      continue;
    std::vector<int64_t> NewDims = B.Dims.dims();
    NewDims[0] = NewD;
    B.Dims = Shape(std::move(NewDims));
  }
  std::vector<ir::Stmt *> Units;
  for (ir::StmtPtr *Root : {&Prog.Forward, &Prog.Backward})
    if (auto *Block = dyn_cast_if_present<ir::BlockStmt>(Root->get()))
      for (ir::StmtPtr &S : Block->stmts())
        Units.push_back(S.get());
  if (RI.Unit >= 0 && RI.Unit < static_cast<int>(Units.size()))
    if (auto *F = dyn_cast<ir::ForStmt>(Units[RI.Unit]))
      F->annotations().SliceModulus = NewD;
  RI.Slices = NewD;
}

void applyCorruption(compiler::Program &Prog, const std::string &Kind) {
  if (Kind == "shape-mismatch")
    return corruptShapeMismatch(Prog);
  if (Kind == "use-before-def")
    return corruptUseBeforeDef(Prog);
  if (Kind == "dropped-barrier")
    return corruptDroppedBarrier(Prog);
  if (Kind == "cross-iteration-write")
    return corruptCrossIterationWrite(Prog);
  if (Kind == "plan-overlap")
    return corruptPlanOverlap(Prog);
  if (Kind == "plan-oob")
    return corruptPlanOutOfBounds(Prog);
  if (Kind == "recompute-after-use")
    return corruptRecomputeAfterUse(Prog);
  if (Kind == "forged-item-private")
    return corruptForgedItemPrivate(Prog);
  if (Kind == "undersized-rotation")
    return corruptUndersizedRotation(Prog);
  std::fprintf(stderr,
               "latte-lint: unknown corruption '%s' (shape-mismatch, "
               "use-before-def, dropped-barrier, cross-iteration-write, "
               "plan-overlap, plan-oob, recompute-after-use, "
               "forged-item-private, undersized-rotation)\n",
               Kind.c_str());
  std::exit(2);
}

//===----------------------------------------------------------------------===//
// Lint driver
//===----------------------------------------------------------------------===//

void dumpUnitEffects(const compiler::Program &Prog) {
  analyze::BufferTable Bufs(Prog);
  auto DumpProgram = [&](const ir::Stmt *Root,
                         const std::vector<compiler::TaskLabel> &Labels,
                         const char *Which) {
    const auto *Block = dyn_cast_if_present<const ir::BlockStmt>(Root);
    if (!Block)
      return;
    std::printf("%s effects:\n", Which);
    for (size_t I = 0; I < Block->stmts().size(); ++I) {
      std::string Label =
          I < Labels.size() ? Labels[I].Name : "task#" + std::to_string(I);
      analyze::UnitEffects UE =
          analyze::collectUnitEffects(Block->stmts()[I].get(), Bufs, nullptr);
      std::printf(" unit %zu '%s'%s\n", I, Label.c_str(),
                  UE.Dims.empty() ? "" : " [parallel]");
      std::fputs(analyze::dumpEffects(UE.Effects).c_str(), stdout);
    }
  };
  DumpProgram(Prog.Forward.get(), Prog.ForwardTasks, "forward");
  DumpProgram(Prog.Backward.get(), Prog.BackwardTasks, "backward");
}

/// Prints the sub-unit slice classification (analyze::classifySubUnit) of
/// every batch-loop unit: which chain-internal buffers are provably
/// per-item private (rotation candidates), which are shared across items,
/// and which the analysis cannot pin down.
void dumpSubUnitClasses(const compiler::Program &Prog) {
  analyze::BufferTable Bufs(Prog);
  auto DumpProgram = [&](const ir::Stmt *Root,
                         const std::vector<compiler::TaskLabel> &Labels,
                         const char *Which) {
    const auto *Block = dyn_cast_if_present<const ir::BlockStmt>(Root);
    if (!Block)
      return;
    std::printf("%s sub-unit slice classes:\n", Which);
    for (size_t I = 0; I < Block->stmts().size(); ++I) {
      std::map<std::string, analyze::SliceInfo> Classes =
          analyze::classifySubUnit(Block->stmts()[I].get(), Bufs);
      if (Classes.empty())
        continue;
      std::string Label =
          I < Labels.size() ? Labels[I].Name : "task#" + std::to_string(I);
      std::printf(" unit %zu '%s'\n", I, Label.c_str());
      std::fputs(analyze::dumpSubUnit(Classes).c_str(), stdout);
    }
  };
  DumpProgram(Prog.Forward.get(), Prog.ForwardTasks, "forward");
  DumpProgram(Prog.Backward.get(), Prog.BackwardTasks, "backward");
}

/// Lints one (model, mask) point. Returns the number of Error diagnostics.
int lintPoint(const core::Net &Net, unsigned Mask, const Options &Opt,
              bool &ExpectMet) {
  verify::LatticeOptions LO;
  compiler::CompileOptions Copts = verify::optionsForMask(Mask, LO);
  Copts.VerifyEach = false; // we verify explicitly to collect the report
  compiler::Program Prog = Opt.Inference
                               ? compiler::compileForward(Net, Copts)
                               : compiler::compile(Net, Copts);
  if (!Opt.Corrupt.empty())
    applyCorruption(Prog, Opt.Corrupt);

  analyze::DiagnosticReport R = analyze::verifyProgram(Prog);
  std::printf("== %s%s mask=0x%02x [%s] ==\n", Opt.Model.c_str(),
              Opt.Inference ? " (inference)" : "", Mask,
              verify::flagString(Copts).c_str());
  if (R.empty())
    std::printf("clean\n");
  else
    std::printf("%s\n", R.render().c_str());
  if (Opt.DumpIR) {
    std::printf("forward IR:\n%s", ir::printStmt(Prog.Forward.get()).c_str());
    std::printf("backward IR:\n%s",
                ir::printStmt(Prog.Backward.get()).c_str());
  }
  if (Opt.DumpEffects)
    dumpUnitEffects(Prog);
  if (Opt.DumpSubunit)
    dumpSubUnitClasses(Prog);
  if (Opt.DumpPlan)
    std::fputs(Prog.Plan.str().c_str(), stdout);
  if (!Opt.Expect.empty() && R.hasErrors() && R.hasCode(Opt.Expect))
    ExpectMet = true;
  return R.errors();
}

int usage() {
  std::fprintf(
      stderr,
      "usage: latte-lint [--model NAME|all] [--mask N|--all-masks]\n"
      "                  [--batch N] [--scale F] [--inference]\n"
      "                  [--dump-effects] [--dump-ir] [--dump-plan]\n"
      "                  [--dump-subunit] [--corrupt KIND --expect CODE]\n"
      "models: ");
  for (const char *M : kModels)
    std::fprintf(stderr, "%s ", M);
  std::fprintf(stderr, "\n");
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opt;
  bool AllMasks = false;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "latte-lint: %s needs a value\n", A.c_str());
        std::exit(2);
      }
      return Argv[++I];
    };
    if (A == "--model")
      Opt.Model = Next();
    else if (A == "--mask")
      Opt.Mask = static_cast<int>(std::strtol(Next(), nullptr, 0));
    else if (A == "--all-masks")
      AllMasks = true;
    else if (A == "--batch")
      Opt.Batch = std::strtol(Next(), nullptr, 0);
    else if (A == "--scale")
      Opt.Scale = std::strtod(Next(), nullptr);
    else if (A == "--dump-effects")
      Opt.DumpEffects = true;
    else if (A == "--dump-ir")
      Opt.DumpIR = true;
    else if (A == "--dump-plan")
      Opt.DumpPlan = true;
    else if (A == "--dump-subunit")
      Opt.DumpSubunit = true;
    else if (A == "--inference")
      Opt.Inference = true;
    else if (A == "--corrupt")
      Opt.Corrupt = Next();
    else if (A == "--expect")
      Opt.Expect = Next();
    else
      return usage();
  }
  if (Opt.Mask < 0 && !AllMasks && !Opt.Corrupt.empty())
    Opt.Mask = (1 << verify::kNumLatticeSwitches) - 1; // corrupt: one point

  std::vector<std::string> Models;
  if (Opt.Model == "all")
    Models.assign(std::begin(kModels), std::end(kModels));
  else
    Models.push_back(Opt.Model);

  int TotalErrors = 0;
  bool ExpectMet = false;
  for (const std::string &Model : Models) {
    Options PointOpt = Opt;
    PointOpt.Model = Model;
    models::ModelSpec Spec = specFor(Model, Opt.Scale);
    core::Net Net(Opt.Batch);
    models::buildLatte(Net, Spec, /*WithLoss=*/true);
    if (Opt.Mask >= 0) {
      TotalErrors +=
          lintPoint(Net, static_cast<unsigned>(Opt.Mask), PointOpt, ExpectMet);
    } else {
      for (unsigned Mask : verify::sweepMasks())
        TotalErrors += lintPoint(Net, Mask, PointOpt, ExpectMet);
    }
  }

  if (!Opt.Expect.empty()) {
    if (ExpectMet) {
      std::printf("expected diagnostic '%s' produced (corrupt run would "
                  "exit 1)\n",
                  Opt.Expect.c_str());
      return 0;
    }
    std::printf("expected diagnostic '%s' NOT produced\n", Opt.Expect.c_str());
    return 1;
  }
  return TotalErrors > 0 ? 1 : 0;
}
