#!/usr/bin/env bash
# House policy lint for .github/workflows/*.yml, run by the CI
# static-analysis job after actionlint (which checks schema/expressions
# but not local conventions).
#
# Rule: every job must set timeout-minutes. A job without one inherits
# GitHub's 6-hour default, so a wedged soak or loadgen holds a runner
# hostage for the rest of the day instead of failing in minutes.
#
# The parser is deliberately dumb (grep-level, no yq dependency): a job
# is a 2-space-indented `name:` key under the top-level `jobs:` block,
# and its body is everything until the next such key. That matches how
# this repo formats workflows; actionlint already guarantees the files
# are well-formed YAML.
set -euo pipefail

cd "$(dirname "$0")/.."

Fail=0
for Wf in .github/workflows/*.yml; do
  # Everything after the top-level `jobs:` line.
  Jobs=$(awk '/^jobs:/{Found=1; next} Found' "$Wf")
  # Job names: exactly two spaces of indent, an identifier, a colon.
  while IFS= read -r Job; do
    [ -z "$Job" ] && continue
    # The job body: from its header to the next 2-space-indented key.
    Body=$(printf '%s\n' "$Jobs" |
      awk -v J="  ${Job}:" '$0 == J {In=1; next}
                            In && /^  [A-Za-z0-9_-]+:/ {exit}
                            In')
    if ! printf '%s\n' "$Body" | grep -q '^    timeout-minutes:'; then
      echo "$Wf: job '$Job' does not set timeout-minutes" >&2
      Fail=1
    fi
  done < <(printf '%s\n' "$Jobs" |
    sed -n 's/^  \([A-Za-z0-9_-]*\):[[:space:]]*$/\1/p')
done

if [ "$Fail" -ne 0 ]; then
  echo "workflow policy lint failed (see above)" >&2
  exit 1
fi
echo "workflow policy lint: all jobs set timeout-minutes"
