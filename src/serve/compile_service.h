//===- serve/compile_service.h - Background shape-class compiles -*- C++ -*-===//
///
/// \file
/// A dedicated compile thread pool that takes shape-class compilation off
/// the request path: ProgramCache misses are enqueued here, a worker
/// compiles through compiler::ProgramCache (whose per-key single-flight
/// means N concurrent requests for one cold class cost one compile), and
/// a completion callback installs the finished program — the Server uses
/// it to atomically publish new replica executors while live traffic is
/// served by the fallback ladder (padded nearest warm batch size, or the
/// interpreted-dispatch program when only the JIT'd variant is cold).
///
/// stop() drops jobs that have not started (their callbacks never run)
/// and joins workers after their current compile finishes; a compile
/// cannot be interrupted mid-flight.
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_SERVE_COMPILE_SERVICE_H
#define LATTE_SERVE_COMPILE_SERVICE_H

#include "compiler/program_cache.h"

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace latte {
namespace serve {

class CompileService {
public:
  using Done = std::function<void(compiler::ProgramCache::ProgramPtr)>;

  /// Spawns \p Threads compile workers (clamped to >= 1).
  explicit CompileService(int Threads = 2);
  ~CompileService(); ///< stop() if still running

  CompileService(const CompileService &) = delete;
  CompileService &operator=(const CompileService &) = delete;

  /// Enqueues a shape-class compile. \p OnReady runs on the compile thread
  /// with the finished (possibly cache-shared) program. Jobs enqueued
  /// after stop() are dropped silently.
  void enqueue(models::ModelSpec Spec, compiler::CompileOptions Opts,
               int64_t BatchSize, Done OnReady);

  /// Stops accepting work, drops not-yet-started jobs, and joins the
  /// workers once their in-flight compiles finish. Idempotent.
  void stop();

  struct Stats {
    int64_t Enqueued = 0;
    int64_t Completed = 0;
    int64_t Dropped = 0;    ///< pending jobs discarded by stop()
    int64_t QueueDepth = 0; ///< snapshot of jobs waiting for a worker
  };
  Stats stats() const;

private:
  struct Job {
    models::ModelSpec Spec;
    compiler::CompileOptions Opts;
    int64_t BatchSize = 0;
    Done OnReady;
  };

  void workerLoop();

  mutable std::mutex Mu;
  std::condition_variable Cv;
  std::deque<Job> Queue;
  std::vector<std::thread> Workers;
  bool Stopped = false;
  Stats St;
};

} // namespace serve
} // namespace latte

#endif // LATTE_SERVE_COMPILE_SERVICE_H
