//===- serve/batcher.h - Deadline-aware micro-batching queue ---*- C++ -*-===//
///
/// \file
/// The admission side of the serving runtime: callers enqueue single-item
/// requests carrying a priority class and an absolute service deadline;
/// executor replicas pop micro-batches in earliest-deadline-first (EDF)
/// order. A batch is released the moment either trigger fires:
///
///   * batch-full — MaxBatch requests are pending (take the MaxBatch
///                  earliest deadlines),
///   * flush      — the oldest *arrival* has waited FlushDeadline (take
///                  everything pending, which is < MaxBatch).
///
/// The flush bound caps queueing latency under sparse traffic; batch-full
/// keeps throughput under load. Degradation is explicit, never silent:
///
///   * over-capacity requests are shed at enqueue (the caller sees `false`
///     and still owns the promise),
///   * requests that can no longer make their deadline — expired, or with
///     less remaining slack than the EWMA of recent batch service times —
///     are failed early with Status::DeadlineShed instead of timing out
///     downstream after wasting a replica slot,
///   * stop() fails everything still queued with Status::Shutdown
///     promptly (it does NOT serve a drain batch), so callers blocked on
///     futures resolve immediately at shutdown.
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_SERVE_BATCHER_H
#define LATTE_SERVE_BATCHER_H

#include "support/tensor.h"

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <vector>

namespace latte {
namespace serve {

/// Scheduling class of a request. The class chooses the default deadline
/// budget (ServeOptions::ClassDeadlineMicros) and is recorded per class in
/// the stats; ordering itself is EDF over the resulting deadlines, so an
/// Interactive request outruns a Bulk one exactly because its deadline is
/// nearer.
enum class Priority { Interactive = 0, Standard = 1, Bulk = 2 };
constexpr int NumPriorities = 3;

/// How a request left the system.
enum class Status {
  Ok,           ///< served; Output holds the probability row
  DeadlineShed, ///< failed early: could not make its deadline
  Shutdown,     ///< failed because the server stopped while it was queued
};

/// What a request's future resolves to.
struct Response {
  Status St = Status::Ok;
  Tensor Output; ///< empty unless St == Ok
};

/// One in-flight inference request: a single item's input and the promise
/// its response is delivered through.
struct Request {
  Tensor Input;
  std::promise<Response> Result;
  Priority Pri = Priority::Standard;
  std::chrono::steady_clock::time_point Enqueued;
  std::chrono::steady_clock::time_point Deadline; ///< absolute service bound

  void fulfill(Tensor Row) { Result.set_value(Response{Status::Ok, std::move(Row)}); }
  void fail(Status S) { Result.set_value(Response{S, Tensor()}); }
};

struct BatcherStats {
  int64_t Enqueued = 0;        ///< accepted requests
  int64_t Shed = 0;            ///< rejected at capacity (or after stop)
  int64_t DeadlineShed = 0;    ///< failed early with Status::DeadlineShed
  int64_t ShutdownFailed = 0;  ///< failed with Status::Shutdown by stop()
  int64_t FullFlushes = 0;     ///< batches released at MaxBatch
  int64_t DeadlineFlushes = 0; ///< partial batches released by flush bound
  int64_t EnqueuedByClass[NumPriorities] = {0, 0, 0};
};

class MicroBatcher {
public:
  /// \p MaxBatch is the largest batch popBatch will return (the largest
  /// precompiled batch size); \p FlushDeadline the max time the oldest
  /// arrival may wait before a partial batch is released; \p Capacity the
  /// shed threshold on pending requests.
  MicroBatcher(int64_t MaxBatch, std::chrono::microseconds FlushDeadline,
               size_t Capacity);

  /// Accepts \p R unless the queue is at capacity or stopped; returns
  /// whether the request was admitted (false = shed, promise untouched —
  /// the caller still owns it). An admitted request whose deadline has
  /// already passed is failed immediately with Status::DeadlineShed (the
  /// call still returns true: the promise has been consumed).
  bool enqueue(Request &&R);

  /// Blocks until a batch is available per the two flush triggers, or
  /// until stop() — after which it returns an empty vector forever (the
  /// consumer's termination signal). Batches come out in EDF order; on the
  /// way, requests that cannot make their deadline are failed with
  /// Status::DeadlineShed and never dispatched.
  std::vector<Request> popBatch();

  /// Stops admission, promptly fails every queued request with
  /// Status::Shutdown, and wakes all consumers (whose popBatch calls then
  /// return empty). Idempotent.
  void stop();

  /// Feeds back an observed batch service time; the EWMA is the slack
  /// margin for early shedding (a request is hopeless when its remaining
  /// slack is below the expected service time).
  void noteServiceTime(double Sec);

  size_t pending() const;
  BatcherStats stats() const;

private:
  const int64_t MaxBatch;
  const std::chrono::microseconds FlushDeadline;
  const size_t Capacity;

  mutable std::mutex Mu;
  std::condition_variable Cv;
  /// Sorted by Deadline ascending (EDF); ties keep arrival order.
  std::deque<Request> Queue;
  bool Stopped = false;
  double ServiceEwmaSec = 0.0;
  BatcherStats Stats;

  /// Pops min(N, MaxBatch) earliest-deadline requests under the lock.
  std::vector<Request> takeLocked(size_t N);
  /// Fails every queued request that cannot make its deadline. Lock held.
  void shedHopelessLocked(std::chrono::steady_clock::time_point Now);
  /// Earliest Enqueued among queued requests. Lock held; queue non-empty.
  std::chrono::steady_clock::time_point oldestArrivalLocked() const;
};

} // namespace serve
} // namespace latte

#endif // LATTE_SERVE_BATCHER_H
