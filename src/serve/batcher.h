//===- serve/batcher.h - Dynamic micro-batching queue ----------*- C++ -*-===//
///
/// \file
/// The admission side of the serving runtime: callers enqueue single-item
/// requests, executor replicas pop micro-batches. A batch is released the
/// moment either trigger fires:
///
///   * batch-full  — MaxBatch requests are pending (take exactly MaxBatch),
///   * deadline    — the oldest pending request has waited FlushDeadline
///                   (take everything pending, which is < MaxBatch).
///
/// The deadline bounds queueing latency for sparse traffic; batch-full
/// keeps throughput under load. Over-capacity requests are shed at enqueue
/// (the caller sees `false` and fails the request upstream) so a saturated
/// server degrades by rejecting, not by growing an unbounded queue.
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_SERVE_BATCHER_H
#define LATTE_SERVE_BATCHER_H

#include "support/tensor.h"

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <vector>

namespace latte {
namespace serve {

/// One in-flight inference request: a single item's input and the promise
/// its output row is delivered through.
struct Request {
  Tensor Input;
  std::promise<Tensor> Result;
  std::chrono::steady_clock::time_point Enqueued;
};

struct BatcherStats {
  int64_t Enqueued = 0;        ///< accepted requests
  int64_t Shed = 0;            ///< rejected at capacity (or after stop)
  int64_t FullFlushes = 0;     ///< batches released at MaxBatch
  int64_t DeadlineFlushes = 0; ///< partial batches released by deadline
  int64_t DrainFlushes = 0;    ///< partial batches released during stop()
};

class MicroBatcher {
public:
  /// \p MaxBatch is the largest batch popBatch will return (the largest
  /// precompiled batch size); \p FlushDeadline the max time the oldest
  /// request may wait before a partial batch is released; \p Capacity the
  /// shed threshold on pending requests.
  MicroBatcher(int64_t MaxBatch, std::chrono::microseconds FlushDeadline,
               size_t Capacity);

  /// Accepts \p R unless the queue is at capacity or stopped; returns
  /// whether the request was admitted (false = shed, promise untouched —
  /// the caller still owns it).
  bool enqueue(Request &&R);

  /// Blocks until a batch is available per the two flush triggers, or
  /// until stop() — then drains the remainder and finally returns an empty
  /// vector forever (the consumer's termination signal).
  std::vector<Request> popBatch();

  /// Wakes all consumers; subsequent popBatch calls drain then return
  /// empty. Idempotent.
  void stop();

  size_t pending() const;
  BatcherStats stats() const;

private:
  const int64_t MaxBatch;
  const std::chrono::microseconds FlushDeadline;
  const size_t Capacity;

  mutable std::mutex Mu;
  std::condition_variable Cv;
  std::deque<Request> Queue;
  bool Stopped = false;
  BatcherStats Stats;

  /// Pops min(N, MaxBatch) requests under the lock.
  std::vector<Request> takeLocked(size_t N);
};

} // namespace serve
} // namespace latte

#endif // LATTE_SERVE_BATCHER_H
