//===- serve/server.cpp ---------------------------------------*- C++ -*-===//

#include "serve/server.h"

#include "support/error.h"
#include "support/timer.h"

#include <algorithm>
#include <cstring>
#include <sstream>

using namespace latte;
using namespace latte::serve;

// --- ProgramCache ----------------------------------------------------------

namespace {

/// FNV-1a, the same cheap content hash the JIT module cache uses.
struct Fnv {
  uint64_t H = 1469598103934665603ull;
  void bytes(const void *P, size_t N) {
    const auto *B = static_cast<const unsigned char *>(P);
    for (size_t I = 0; I < N; ++I) {
      H ^= B[I];
      H *= 1099511628211ull;
    }
  }
  void str(const std::string &S) {
    bytes(S.data(), S.size());
    bytes("\0", 1);
  }
  void i64(int64_t V) { bytes(&V, sizeof V); }
  void f64(double V) { bytes(&V, sizeof V); }
};

} // namespace

ProgramCache &ProgramCache::instance() {
  static ProgramCache C;
  return C;
}

std::string ProgramCache::key(const models::ModelSpec &Spec,
                              const compiler::CompileOptions &Opts,
                              int64_t BatchSize) {
  Fnv F;
  F.str(Spec.Name);
  for (int64_t D : Spec.InputDims.dims())
    F.i64(D);
  F.i64(Spec.NumClasses);
  for (const models::LayerSpec &L : Spec.Layers) {
    F.i64(static_cast<int64_t>(L.K));
    F.str(L.Name);
    // Graph structure: explicit input edges and weight-sharing groups are
    // program-shaping just like the per-layer scalars.
    F.i64(static_cast<int64_t>(L.Inputs.size()));
    for (const std::string &In : L.Inputs)
      F.str(In);
    F.str(L.ShareWith);
    F.i64(L.Filters);
    F.i64(L.Kernel);
    F.i64(L.Stride);
    F.i64(L.Pad);
    F.i64(L.TimeIndex);
    F.f64(L.KeepProb);
  }
  // Every switch that changes the assembled program. VerifyEach is a
  // checking knob, not a program-shaping one, and is deliberately absent.
  // Keep this list in lockstep with CompileOptions: a missing field lets
  // two option sets alias one cache entry and serve the wrong program
  // (the Recompute/SliceRotation-era regression the rekey test pins).
  int64_t Bits = 0;
  for (bool B : {Opts.PatternMatchGemm, Opts.PatternMatchKernels, Opts.Tiling,
                 Opts.Fusion, Opts.Parallelize, Opts.VectorKernels,
                 Opts.Recompute, Opts.Jit, Opts.SliceRotation, Opts.Inference,
                 Opts.EvalDropout, Opts.GradSyncHooks})
    Bits = (Bits << 1) | (B ? 1 : 0);
  F.i64(Bits);
  F.i64(Opts.RotateSlices);
  F.i64(Opts.TileSize);
  F.i64(Opts.MinRowsToTile);
  F.i64(BatchSize);

  std::ostringstream Os;
  Os << Spec.Name << ":b" << BatchSize << ":" << std::hex << F.H;
  return Os.str();
}

std::shared_ptr<const compiler::Program>
ProgramCache::getOrCompile(const models::ModelSpec &Spec,
                           const compiler::CompileOptions &Opts,
                           int64_t BatchSize) {
  std::string K = key(Spec, Opts, BatchSize);
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Cache.find(K);
  if (It != Cache.end()) {
    ++St.Hits;
    return It->second;
  }
  ++St.Misses;
  core::Net Net(BatchSize);
  models::buildLatte(Net, Spec, /*WithLoss=*/true);
  auto Prog = std::make_shared<compiler::Program>(
      compiler::compile(Net, Opts));
  Cache.emplace(K, Prog);
  return Prog;
}

ProgramCache::Stats ProgramCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return St;
}

void ProgramCache::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Cache.clear();
  St = {};
}

// --- Server ----------------------------------------------------------------

Server::Server(const models::ModelSpec &Spec,
               const compiler::CompileOptions &CO, const ServeOptions &SO)
    : Spec(Spec), CompileOpts(CO), Opts(SO), BatchSizes(SO.BatchSizes) {
  CompileOpts.Inference = true;
  std::sort(BatchSizes.begin(), BatchSizes.end());
  BatchSizes.erase(std::unique(BatchSizes.begin(), BatchSizes.end()),
                   BatchSizes.end());
  if (BatchSizes.empty() || BatchSizes.front() <= 0)
    reportFatalError("Server: BatchSizes must be non-empty and positive");
  if (Opts.Replicas <= 0)
    reportFatalError("Server: Replicas must be positive");

  ItemElems = Spec.InputDims.numElements();
  ClassElems = Spec.NumClasses;

  for (int64_t BS : BatchSizes)
    Programs.push_back(
        ProgramCache::instance().getOrCompile(Spec, CompileOpts, BS));

  // The weight master: owns the parameter bytes every replica points at.
  // It is a plain executor of the smallest batch size and never serves
  // traffic itself.
  engine::ExecOptions MasterEO = Opts.Exec;
  MasterEO.Seed = Opts.ParamSeed;
  MasterEO.Profile = false;
  Master = std::make_unique<engine::Executor>(Programs.front()->clone(),
                                              MasterEO);

  // Replicas keep the caller's Profile flag: the profiler keeps per-thread
  // span buffers, so concurrent replica forwards record safely (the
  // nightly bench ships the resulting Chrome trace).
  engine::ExecOptions RepEO = Opts.Exec;
  RepEO.Seed = Opts.ParamSeed;
  Replicas.resize(static_cast<size_t>(Opts.Replicas));
  for (Replica &Rep : Replicas)
    for (size_t BI = 0; BI < BatchSizes.size(); ++BI) {
      Rep.Execs.push_back(
          std::make_unique<engine::Executor>(Programs[BI]->clone(), RepEO));
      Rep.Execs.back()->shareParamsFrom(*Master);
    }

  Batcher = std::make_unique<MicroBatcher>(
      BatchSizes.back(), std::chrono::microseconds(Opts.FlushDeadlineMicros),
      Opts.QueueCapacity);
}

Server::~Server() { stop(); }

void Server::loadParamsFrom(const engine::Executor &Trained) {
  if (Running)
    reportFatalError("Server::loadParamsFrom: call before start()");
  for (const compiler::BufferInfo &B : Master->program().Buffers)
    if (B.Role == compiler::BufferRole::Param && B.AliasOf.empty())
      Master->writeBuffer(B.Name, Trained.readBuffer(B.Name));
}

void Server::start() {
  if (Running)
    return;
  Running = true;
  for (Replica &Rep : Replicas)
    Rep.Worker = std::thread([this, &Rep] { workerLoop(Rep); });
}

void Server::stop() {
  if (Batcher)
    Batcher->stop();
  for (Replica &Rep : Replicas)
    if (Rep.Worker.joinable())
      Rep.Worker.join();
  Running = false;
}

bool Server::submit(Tensor Item, std::future<Tensor> *Out) {
  if (Item.numElements() != ItemElems)
    reportFatalError("Server::submit: item has " +
                     std::to_string(Item.numElements()) + " elements, spec '" +
                     Spec.Name + "' expects " + std::to_string(ItemElems));
  Request R;
  R.Input = std::move(Item);
  std::future<Tensor> Fut = R.Result.get_future();
  if (!Batcher->enqueue(std::move(R))) {
    std::lock_guard<std::mutex> Lock(StatsMu);
    ++Stats.Shed;
    return false;
  }
  {
    std::lock_guard<std::mutex> Lock(StatsMu);
    ++Stats.Submitted;
  }
  if (Out)
    *Out = std::move(Fut);
  return true;
}

engine::Executor &Server::pickExecutor(Replica &Rep, int64_t Fill,
                                       int64_t *BatchSize) {
  for (size_t BI = 0; BI < BatchSizes.size(); ++BI)
    if (BatchSizes[BI] >= Fill) {
      *BatchSize = BatchSizes[BI];
      return *Rep.Execs[BI];
    }
  // popBatch never returns more than maxBatch() requests.
  reportFatalError("Server: batch of " + std::to_string(Fill) +
                   " exceeds the largest precompiled batch size");
}

void Server::workerLoop(Replica &Rep) {
  for (;;) {
    std::vector<Request> Batch = Batcher->popBatch();
    if (Batch.empty())
      return;
    int64_t Fill = static_cast<int64_t>(Batch.size());
    int64_t BS = 0;
    engine::Executor &Ex = pickExecutor(Rep, Fill, &BS);
    const compiler::Program &Prog = Ex.program();

    float *In = Ex.data(Prog.DataBuffer);
    for (int64_t I = 0; I < Fill; ++I)
      std::memcpy(In + I * ItemElems, Batch[I].Input.data(),
                  sizeof(float) * static_cast<size_t>(ItemElems));
    // Zero-pad the tail: padded rows compute garbage confined to their own
    // output rows (per-item forward independence), which are never read.
    if (Fill < BS)
      std::memset(In + Fill * ItemElems, 0,
                  sizeof(float) * static_cast<size_t>((BS - Fill) * ItemElems));

    Timer Wall;
    Ex.forward();
    double Sec = Wall.seconds();

    const float *Prob = Ex.data(Prog.ProbBuffer);
    for (int64_t I = 0; I < Fill; ++I) {
      Tensor Row(Shape({ClassElems}));
      std::memcpy(Row.data(), Prob + I * ClassElems,
                  sizeof(float) * static_cast<size_t>(ClassElems));
      Batch[I].Result.set_value(std::move(Row));
    }

    std::lock_guard<std::mutex> Lock(StatsMu);
    ++Stats.Batches;
    Stats.Completed += Fill;
    Stats.PaddedSlots += BS - Fill;
    Stats.BusySec += Sec;
    ++Stats.Fill[BS][Fill];
  }
}

ServeStats Server::stats() const {
  ServeStats S;
  {
    std::lock_guard<std::mutex> Lock(StatsMu);
    S = Stats;
  }
  BatcherStats B = Batcher->stats();
  S.FullFlushes = B.FullFlushes;
  S.DeadlineFlushes = B.DeadlineFlushes;
  S.DrainFlushes = B.DrainFlushes;
  return S;
}

const compiler::Program &Server::program(int64_t BatchSize) const {
  for (size_t BI = 0; BI < BatchSizes.size(); ++BI)
    if (BatchSizes[BI] == BatchSize)
      return *Programs[BI];
  reportFatalError("Server::program: batch size " + std::to_string(BatchSize) +
                   " is not precompiled");
}

const engine::Executor &Server::replicaExecutor(int R,
                                                int64_t BatchSize) const {
  if (R < 0 || static_cast<size_t>(R) >= Replicas.size())
    reportFatalError("Server::replicaExecutor: bad replica index");
  for (size_t BI = 0; BI < BatchSizes.size(); ++BI)
    if (BatchSizes[BI] == BatchSize)
      return *Replicas[static_cast<size_t>(R)].Execs[BI];
  reportFatalError("Server::replicaExecutor: batch size " +
                   std::to_string(BatchSize) + " is not precompiled");
}

int64_t Server::replicaArenaBytes() const {
  int64_t Total = 0;
  for (const Replica &Rep : Replicas)
    for (const auto &Ex : Rep.Execs)
      if (Ex->program().Plan.Valid)
        Total += Ex->program().Plan.ArenaBytes;
  return Total;
}
