//===- serve/server.cpp ---------------------------------------*- C++ -*-===//

#include "serve/server.h"

#include "support/error.h"
#include "support/timer.h"

#include <algorithm>
#include <cstring>
#include <thread>

using namespace latte;
using namespace latte::serve;

Server::Server(const models::ModelSpec &Spec,
               const compiler::CompileOptions &CO, const ServeOptions &SO)
    : Spec(Spec), CompileOpts(CO), Opts(SO), BatchSizes(SO.BatchSizes) {
  CompileOpts.Inference = true;
  std::sort(BatchSizes.begin(), BatchSizes.end());
  BatchSizes.erase(std::unique(BatchSizes.begin(), BatchSizes.end()),
                   BatchSizes.end());
  if (BatchSizes.empty() || BatchSizes.front() <= 0)
    reportFatalError("Server: BatchSizes must be non-empty and positive");
  if (Opts.Replicas <= 0)
    reportFatalError("Server: Replicas must be positive");

  ItemElems = Spec.InputDims.numElements();
  ClassElems = Spec.NumClasses;
  Constructed = std::chrono::steady_clock::now();

  const size_t N = BatchSizes.size();
  Programs.resize(N);
  InterpPrograms.resize(N);
  PrimaryReady = std::make_unique<std::atomic<bool>[]>(N);
  InterpReady = std::make_unique<std::atomic<bool>[]>(N);
  for (size_t I = 0; I < N; ++I) {
    PrimaryReady[I].store(false, std::memory_order_relaxed);
    InterpReady[I].store(false, std::memory_order_relaxed);
  }

  // The floor of the degradation ladder compiles inline: the smallest
  // batch size, with interpreted dispatch when the requested class wants
  // the JIT (a .so compile is exactly the latency we refuse to put on the
  // request path). Everything else is background work.
  compiler::ProgramCache &Cache = compiler::ProgramCache::instance();
  const bool Async = Opts.AsyncCompile;
  const bool Jit = CompileOpts.Jit;
  compiler::CompileOptions InterpCO = CompileOpts;
  InterpCO.Jit = false;

  compiler::ProgramCache::ProgramPtr Floor;
  if (!Async) {
    for (size_t BI = 0; BI < N; ++BI)
      Programs[BI] = Cache.getOrCompile(Spec, CompileOpts, BatchSizes[BI]);
    Floor = Programs.front();
  } else if (Jit) {
    InterpPrograms[0] = Cache.getOrCompile(Spec, InterpCO, BatchSizes[0]);
    Floor = InterpPrograms[0];
  } else {
    Programs[0] = Cache.getOrCompile(Spec, CompileOpts, BatchSizes[0]);
    Floor = Programs[0];
  }

  // The weight master: owns the parameter bytes every replica points at.
  // Any program of the family works (identical parameter declarations);
  // it never serves traffic itself.
  engine::ExecOptions MasterEO = Opts.Exec;
  MasterEO.Seed = Opts.ParamSeed;
  MasterEO.Profile = false;
  Master = std::make_unique<engine::Executor>(Floor->clone(), MasterEO);

  // Replica slots. Cold classes stay null until installClass publishes
  // them; the floor is wired immediately so traffic can flow from the
  // first submit.
  Replicas.resize(static_cast<size_t>(Opts.Replicas));
  for (Replica &Rep : Replicas) {
    Rep.Execs.resize(N);
    Rep.InterpExecs.resize(N);
  }
  if (!Async) {
    for (size_t BI = 0; BI < N; ++BI)
      installClass(BI, /*Interp=*/false, Programs[BI]);
  } else if (Jit) {
    installClass(0, /*Interp=*/true, InterpPrograms[0]);
  } else {
    installClass(0, /*Interp=*/false, Programs[0]);
  }

  Batcher = std::make_unique<MicroBatcher>(
      BatchSizes.back(), std::chrono::microseconds(Opts.FlushDeadlineMicros),
      Opts.QueueCapacity);

  if (Async) {
    Compiles = std::make_unique<CompileService>(Opts.CompileThreads);
    enqueueBackgroundCompiles();
  }
}

void Server::enqueueBackgroundCompiles() {
  const size_t N = BatchSizes.size();
  const bool Jit = CompileOpts.Jit;
  compiler::CompileOptions InterpCO = CompileOpts;
  InterpCO.Jit = false;
  auto Submit = [&](size_t BI, bool Interp) {
    const compiler::CompileOptions &CO = Interp ? InterpCO : CompileOpts;
    Compiles->enqueue(Spec, CO, BatchSizes[BI],
                      [this, BI, Interp](compiler::ProgramCache::ProgramPtr P) {
                        installClass(BI, Interp, std::move(P));
                      });
  };
  // Queue order is the ladder's build-out order: the primary floor class
  // first (when the JIT floor is still interpreted), then the cheap
  // interpreted variants of the larger sizes (wider padding targets
  // early), then the remaining primaries, ascending.
  if (Jit)
    Submit(0, /*Interp=*/false);
  if (Jit)
    for (size_t BI = 1; BI < N; ++BI)
      Submit(BI, /*Interp=*/true);
  for (size_t BI = 1; BI < N; ++BI)
    Submit(BI, /*Interp=*/false);
}

void Server::installClass(size_t BI, bool Interp,
                          compiler::ProgramCache::ProgramPtr Prog) {
  if (Stopping.load(std::memory_order_acquire))
    return;
  engine::ExecOptions RepEO = Opts.Exec;
  RepEO.Seed = Opts.ParamSeed;
  (Interp ? InterpPrograms : Programs)[BI] = Prog;
  for (Replica &Rep : Replicas) {
    auto Ex = std::make_unique<engine::Executor>(Prog->clone(), RepEO);
    Ex->shareParamsFrom(*Master);
    (Interp ? Rep.InterpExecs : Rep.Execs)[BI] = std::move(Ex);
  }
  // Publish: the release store pairs with the workers' acquire loads, so
  // a worker that observes the flag sees fully constructed executors.
  (Interp ? InterpReady : PrimaryReady)[BI].store(true,
                                                  std::memory_order_release);
  {
    std::lock_guard<std::mutex> Lock(StatsMu);
    ++Stats.ClassesInstalled;
  }
  if (!Interp &&
      ReadyPrimaries.fetch_add(1) + 1 == static_cast<int>(BatchSizes.size()))
    AllReadyNanos.store(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - Constructed)
            .count(),
        std::memory_order_release);
}

Server::~Server() { stop(); }

void Server::loadParamsFrom(const engine::Executor &Trained) {
  if (Running)
    reportFatalError("Server::loadParamsFrom: call before start()");
  for (const compiler::BufferInfo &B : Master->program().Buffers)
    if (B.Role == compiler::BufferRole::Param && B.AliasOf.empty())
      Master->writeBuffer(B.Name, Trained.readBuffer(B.Name));
}

void Server::start() {
  if (Running)
    return;
  Running = true;
  for (Replica &Rep : Replicas)
    Rep.Worker = std::thread([this, &Rep] { workerLoop(Rep); });
}

void Server::stop() {
  Stopping.store(true, std::memory_order_release);
  // Compile workers first: after this join no install callback can run,
  // so the executor slots are quiescent while the serve workers drain.
  if (Compiles)
    Compiles->stop();
  if (Batcher)
    Batcher->stop(); // fails queued requests with Status::Shutdown
  for (Replica &Rep : Replicas)
    if (Rep.Worker.joinable())
      Rep.Worker.join();
  Running = false;
}

bool Server::submit(Tensor Item, std::future<Response> *Out,
                    SubmitOptions SO) {
  if (Item.numElements() != ItemElems)
    reportFatalError("Server::submit: item has " +
                     std::to_string(Item.numElements()) + " elements, spec '" +
                     Spec.Name + "' expects " + std::to_string(ItemElems));
  int64_t BudgetUs = SO.DeadlineMicros > 0
                         ? SO.DeadlineMicros
                         : Opts.ClassDeadlineMicros[static_cast<int>(SO.Pri)];
  Request R;
  R.Input = std::move(Item);
  R.Pri = SO.Pri;
  R.Deadline =
      std::chrono::steady_clock::now() + std::chrono::microseconds(BudgetUs);
  std::future<Response> Fut = R.Result.get_future();
  if (!Batcher->enqueue(std::move(R))) {
    std::lock_guard<std::mutex> Lock(StatsMu);
    ++Stats.Shed;
    return false;
  }
  {
    std::lock_guard<std::mutex> Lock(StatsMu);
    ++Stats.Submitted;
  }
  if (Out)
    *Out = std::move(Fut);
  return true;
}

Server::Pick Server::pickExecutor(Replica &Rep, int64_t Fill) {
  const size_t N = BatchSizes.size();
  Pick P;
  // Rung 1: smallest warm primary class that fits (pad the tail).
  for (size_t BI = 0; BI < N; ++BI)
    if (BatchSizes[BI] >= Fill &&
        PrimaryReady[BI].load(std::memory_order_acquire)) {
      P.Ex = Rep.Execs[BI].get();
      P.BatchSize = BatchSizes[BI];
      return P;
    }
  // Rung 2: interpreted-dispatch fallback of a fitting size — the JIT'd
  // variant is still cold, serve through the interpreter instead of
  // blocking on the .so compile.
  for (size_t BI = 0; BI < N; ++BI)
    if (BatchSizes[BI] >= Fill &&
        InterpReady[BI].load(std::memory_order_acquire)) {
      P.Ex = Rep.InterpExecs[BI].get();
      P.BatchSize = BatchSizes[BI];
      P.Interp = true;
      return P;
    }
  // Rung 3: nothing fitting is warm — chunk the batch through the largest
  // warm executor (primary preferred). The floor class compiled at
  // construction, so a warm rung always exists.
  for (size_t BI = N; BI-- > 0;)
    if (PrimaryReady[BI].load(std::memory_order_acquire)) {
      P.Ex = Rep.Execs[BI].get();
      P.BatchSize = BatchSizes[BI];
      P.Chunked = true;
      return P;
    }
  for (size_t BI = N; BI-- > 0;)
    if (InterpReady[BI].load(std::memory_order_acquire)) {
      P.Ex = Rep.InterpExecs[BI].get();
      P.BatchSize = BatchSizes[BI];
      P.Interp = true;
      P.Chunked = true;
      return P;
    }
  reportFatalError("Server: no warm executor — the floor class is missing");
}

void Server::runBatch(Replica &Rep, std::vector<Request> Batch) {
  const int64_t Fill = static_cast<int64_t>(Batch.size());
  Pick P = pickExecutor(Rep, Fill);
  const compiler::Program &Prog = P.Ex->program();

  {
    std::lock_guard<std::mutex> Lock(StatsMu);
    if (P.Interp)
      ++Stats.InterpFallbacks;
    if (P.Chunked)
      ++Stats.ChunkedBatches;
  }

  for (int64_t Base = 0; Base < Fill; Base += P.BatchSize) {
    int64_t Count = std::min(P.BatchSize, Fill - Base);
    float *In = P.Ex->data(Prog.DataBuffer);
    for (int64_t I = 0; I < Count; ++I)
      std::memcpy(In + I * ItemElems, Batch[Base + I].Input.data(),
                  sizeof(float) * static_cast<size_t>(ItemElems));
    // Zero-pad the tail: padded rows compute garbage confined to their own
    // output rows (per-item forward independence), which are never read.
    if (Count < P.BatchSize)
      std::memset(In + Count * ItemElems, 0,
                  sizeof(float) *
                      static_cast<size_t>((P.BatchSize - Count) * ItemElems));

    Timer Wall;
    P.Ex->forward();
    double RunSec = Wall.seconds();
    Batcher->noteServiceTime(RunSec);

    auto Done = std::chrono::steady_clock::now();
    int64_t Missed = 0;
    for (int64_t I = 0; I < Count; ++I)
      if (Done > Batch[Base + I].Deadline)
        ++Missed;
    // Stats before fulfillment: a caller that wakes from future.get() and
    // immediately reads stats() must see this chunk accounted for.
    {
      std::lock_guard<std::mutex> Lock(StatsMu);
      ++Stats.Batches;
      Stats.Completed += Count;
      Stats.PaddedSlots += P.BatchSize - Count;
      Stats.DeadlineMissed += Missed;
      Stats.BusySec += RunSec;
      ++Stats.Fill[P.BatchSize][Count];
    }

    const float *Prob = P.Ex->data(Prog.ProbBuffer);
    for (int64_t I = 0; I < Count; ++I) {
      Tensor Row(Shape({ClassElems}));
      std::memcpy(Row.data(), Prob + I * ClassElems,
                  sizeof(float) * static_cast<size_t>(ClassElems));
      Batch[Base + I].fulfill(std::move(Row));
    }
  }
}

void Server::workerLoop(Replica &Rep) {
  for (;;) {
    std::vector<Request> Batch = Batcher->popBatch();
    if (Batch.empty())
      return;
    runBatch(Rep, std::move(Batch));
  }
}

ServeStats Server::stats() const {
  ServeStats S;
  {
    std::lock_guard<std::mutex> Lock(StatsMu);
    S = Stats;
  }
  BatcherStats B = Batcher->stats();
  S.FullFlushes = B.FullFlushes;
  S.DeadlineFlushes = B.DeadlineFlushes;
  S.DeadlineShed = B.DeadlineShed;
  S.ShutdownFailed = B.ShutdownFailed;
  return S;
}

bool Server::allClassesReady() const {
  return ReadyPrimaries.load(std::memory_order_acquire) ==
         static_cast<int>(BatchSizes.size());
}

double Server::allReadySec() const {
  return static_cast<double>(AllReadyNanos.load(std::memory_order_acquire)) *
         1e-9;
}

bool Server::waitAllClassesReady(std::chrono::milliseconds Timeout) const {
  auto Until = std::chrono::steady_clock::now() + Timeout;
  while (!allClassesReady()) {
    if (std::chrono::steady_clock::now() >= Until)
      return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

const compiler::Program &Server::program(int64_t BatchSize) const {
  for (size_t BI = 0; BI < BatchSizes.size(); ++BI)
    if (BatchSizes[BI] == BatchSize) {
      if (!PrimaryReady[BI].load(std::memory_order_acquire))
        reportFatalError("Server::program: batch size " +
                         std::to_string(BatchSize) +
                         " is still cold (background compile pending)");
      return *Programs[BI];
    }
  reportFatalError("Server::program: batch size " + std::to_string(BatchSize) +
                   " is not precompiled");
}

const engine::Executor &Server::replicaExecutor(int R,
                                                int64_t BatchSize) const {
  if (R < 0 || static_cast<size_t>(R) >= Replicas.size())
    reportFatalError("Server::replicaExecutor: bad replica index");
  for (size_t BI = 0; BI < BatchSizes.size(); ++BI)
    if (BatchSizes[BI] == BatchSize) {
      if (!PrimaryReady[BI].load(std::memory_order_acquire))
        reportFatalError("Server::replicaExecutor: batch size " +
                         std::to_string(BatchSize) +
                         " is still cold (background compile pending)");
      return *Replicas[static_cast<size_t>(R)].Execs[BI];
    }
  reportFatalError("Server::replicaExecutor: batch size " +
                   std::to_string(BatchSize) + " is not precompiled");
}

int64_t Server::replicaArenaBytes() const {
  int64_t Total = 0;
  for (const Replica &Rep : Replicas) {
    for (size_t BI = 0; BI < BatchSizes.size(); ++BI) {
      if (PrimaryReady[BI].load(std::memory_order_acquire) &&
          Rep.Execs[BI] && Rep.Execs[BI]->program().Plan.Valid)
        Total += Rep.Execs[BI]->program().Plan.ArenaBytes;
      if (InterpReady[BI].load(std::memory_order_acquire) &&
          Rep.InterpExecs[BI] && Rep.InterpExecs[BI]->program().Plan.Valid)
        Total += Rep.InterpExecs[BI]->program().Plan.ArenaBytes;
    }
  }
  return Total;
}
