//===- serve/server.h - Latency-bounded inference serving ------*- C++ -*-===//
///
/// \file
/// The inference serving runtime: single-item requests flow through a
/// dynamic micro-batcher (serve/batcher.h) into N executor replicas. Each
/// replica holds one inference-compiled executor per precompiled batch
/// size (1/4/16 by default) and runs the smallest one that fits the popped
/// batch, zero-padding the tail — sound because forward computation is
/// independent per batch item (the compiler's batch loops never mix rows),
/// so padded rows produce garbage in *their own* output rows only.
///
/// All replicas share one set of weight bytes: a weight-master executor
/// owns the parameters and every replica repoints its Param-role buffers
/// at the master's storage (engine::Executor::shareParamsFrom), so memory
/// scales as one weight set plus N small forward-only activation arenas.
///
/// Compiled programs come from a process-global ProgramCache keyed by
/// (graph fingerprint, compile-option class, batch size) — the first cut
/// of the shape-polymorphic compile cache: starting a second server over
/// the same model (or restarting one) reuses every compiled program and
/// only pays Program::clone().
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_SERVE_SERVER_H
#define LATTE_SERVE_SERVER_H

#include "compiler/compiler.h"
#include "engine/executor.h"
#include "models/models.h"
#include "serve/batcher.h"

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace latte {
namespace serve {

struct ServeOptions {
  /// Executor replicas (worker threads). Each owns one arena per batch
  /// size; weights are shared with the master, never copied.
  int Replicas = 2;
  /// Precompiled batch sizes; sorted and deduplicated at construction.
  /// The largest is the micro-batcher's flush size.
  std::vector<int64_t> BatchSizes = {1, 4, 16};
  /// Max time the oldest queued request waits before a partial batch is
  /// released (the latency bound under sparse traffic).
  int64_t FlushDeadlineMicros = 2000;
  /// Pending-request shed threshold.
  size_t QueueCapacity = 4096;
  /// Weight initialization seed (initParams on the weight master).
  uint64_t ParamSeed = 0x5eed;
  /// Engine options for every replica executor (Profile works — the
  /// global profiler keeps per-thread span buffers, so concurrent replica
  /// forwards record safely; the weight master never serves and has it
  /// forced off).
  engine::ExecOptions Exec;
};

struct ServeStats {
  int64_t Submitted = 0; ///< admitted requests
  int64_t Shed = 0;      ///< rejected at capacity
  int64_t Completed = 0; ///< fulfilled promises
  int64_t Batches = 0;
  int64_t PaddedSlots = 0; ///< zero rows run for tail batches
  int64_t FullFlushes = 0;
  int64_t DeadlineFlushes = 0;
  int64_t DrainFlushes = 0;
  /// batch size ran -> (items carried -> count). The batch-fill histogram
  /// of the bench report: Fill[16][16] counts full batches, Fill[16][9] a
  /// 9-item tail run at size 16.
  std::map<int64_t, std::map<int64_t, int64_t>> Fill;
  /// Wall seconds spent inside Executor::forward across all replicas.
  double BusySec = 0.0;
};

/// Process-global cache of inference-compiled programs keyed by
/// (model fingerprint, compile-option class, batch size). getOrCompile
/// returns a shared immutable program; callers clone what they execute.
class ProgramCache {
public:
  static ProgramCache &instance();

  /// The cache key: an FNV-1a fingerprint of the spec's full topology plus
  /// every compile switch that changes the assembled program, then the
  /// batch size (the shape class). Exposed for tests.
  static std::string key(const models::ModelSpec &Spec,
                         const compiler::CompileOptions &Opts,
                         int64_t BatchSize);

  std::shared_ptr<const compiler::Program>
  getOrCompile(const models::ModelSpec &Spec,
               const compiler::CompileOptions &Opts, int64_t BatchSize);

  struct Stats {
    int64_t Hits = 0;
    int64_t Misses = 0;
  };
  Stats stats() const;
  void clear(); ///< tests only

private:
  ProgramCache() = default;
  mutable std::mutex Mu;
  std::map<std::string, std::shared_ptr<const compiler::Program>> Cache;
  Stats St;
};

class Server {
public:
  /// Compiles (or cache-hits) one inference program per batch size and
  /// builds Replicas x BatchSizes executors wired for weight sharing.
  /// Does not start worker threads — call start().
  Server(const models::ModelSpec &Spec, const compiler::CompileOptions &CO,
         const ServeOptions &SO);
  ~Server(); ///< stops and joins if still running

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  void start();
  /// Stops admission, drains the queue, joins workers. Idempotent.
  void stop();

  /// Submits one item (shape must match the spec's InputDims element
  /// count). Returns whether it was admitted; on admission *Out receives
  /// the future for the output row ({NumClasses} probabilities).
  bool submit(Tensor Item, std::future<Tensor> *Out);

  /// Copies trained weights (by Param buffer name) into the weight master;
  /// visible to all replicas immediately through pointer sharing. Call
  /// before start().
  void loadParamsFrom(const engine::Executor &Trained);

  ServeStats stats() const;
  const models::ModelSpec &spec() const { return Spec; }
  int64_t maxBatch() const { return BatchSizes.back(); }
  const std::vector<int64_t> &batchSizes() const { return BatchSizes; }

  // --- introspection (tests / bench) --------------------------------------

  const compiler::Program &program(int64_t BatchSize) const;
  const engine::Executor &weightMaster() const { return *Master; }
  engine::Executor &weightMaster() { return *Master; }
  const engine::Executor &replicaExecutor(int Replica,
                                          int64_t BatchSize) const;
  /// Sum of per-replica forward-only arena bytes (the serving activation
  /// footprint, excluding the shared weights).
  int64_t replicaArenaBytes() const;

private:
  struct Replica {
    /// One executor per batch size, BatchSizes order.
    std::vector<std::unique_ptr<engine::Executor>> Execs;
    std::thread Worker;
  };

  void workerLoop(Replica &Rep);
  engine::Executor &pickExecutor(Replica &Rep, int64_t Fill,
                                 int64_t *BatchSize);

  models::ModelSpec Spec;
  compiler::CompileOptions CompileOpts;
  ServeOptions Opts;
  std::vector<int64_t> BatchSizes; ///< sorted, deduplicated
  int64_t ItemElems = 0;           ///< input elements per item
  int64_t ClassElems = 0;          ///< output elements per item

  std::vector<std::shared_ptr<const compiler::Program>> Programs;
  std::unique_ptr<engine::Executor> Master; ///< owns the weights
  std::vector<Replica> Replicas;

  std::unique_ptr<MicroBatcher> Batcher;
  bool Running = false;

  mutable std::mutex StatsMu;
  ServeStats Stats;
};

} // namespace serve
} // namespace latte

#endif // LATTE_SERVE_SERVER_H
