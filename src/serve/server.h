//===- serve/server.h - Latency-bounded inference serving ------*- C++ -*-===//
///
/// \file
/// The inference serving runtime: single-item requests flow through a
/// deadline-aware micro-batcher (serve/batcher.h) into N executor
/// replicas. Each replica holds one inference-compiled executor per
/// precompiled batch size (1/4/16 by default) and runs the smallest one
/// that fits the popped batch, zero-padding the tail — sound because
/// forward computation is independent per batch item (the compiler's
/// batch loops never mix rows), so padded rows produce garbage in *their
/// own* output rows only.
///
/// Shape-class compilation is asynchronous (ServeOptions::AsyncCompile,
/// on by default): only the *floor* program — the smallest batch size,
/// interpreted dispatch when the requested option class includes the JIT
/// — is compiled inline at construction; every other (options, batch
/// size) class is enqueued on a background CompileService and installed
/// atomically when ready. Until then, traffic degrades down an explicit
/// ladder instead of blocking on a compile:
///
///   warm hit -> padded nearest warm batch size -> interpreted-dispatch
///   program (JIT variant still cold) -> chunked runs through the floor
///   -> shed
///
/// All replicas share one set of weight bytes: a weight-master executor
/// owns the parameters and every replica repoints its Param-role buffers
/// at the master's storage (engine::Executor::shareParamsFrom), so memory
/// scales as one weight set plus N small forward-only activation arenas.
///
/// Compiled programs come from the process-global
/// compiler::ProgramCache keyed by (graph fingerprint, compile-option
/// class, batch size); its per-key single-flight means N replicas — or N
/// servers — missing one cold class trigger exactly one compile.
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_SERVE_SERVER_H
#define LATTE_SERVE_SERVER_H

#include "compiler/compiler.h"
#include "compiler/program_cache.h"
#include "engine/executor.h"
#include "models/models.h"
#include "serve/batcher.h"
#include "serve/compile_service.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace latte {
namespace serve {

/// The compile cache moved to the compiler layer (it memoizes compiles,
/// not serving state); the alias keeps the historical serve:: spelling
/// working.
using ProgramCache = compiler::ProgramCache;

struct ServeOptions {
  /// Executor replicas (worker threads). Each owns one arena per batch
  /// size; weights are shared with the master, never copied.
  int Replicas = 2;
  /// Precompiled batch sizes; sorted and deduplicated at construction.
  /// The largest is the micro-batcher's flush size.
  std::vector<int64_t> BatchSizes = {1, 4, 16};
  /// Max time the oldest queued request waits before a partial batch is
  /// released (the latency bound under sparse traffic).
  int64_t FlushDeadlineMicros = 2000;
  /// Pending-request shed threshold.
  size_t QueueCapacity = 4096;
  /// Default service-deadline budget per priority class (micros), indexed
  /// by serve::Priority. A request whose SubmitOptions does not pin an
  /// explicit deadline gets `now + ClassDeadlineMicros[class]`. Generous
  /// defaults: sanitizer CI runs the threading tests at a fraction of
  /// release speed.
  int64_t ClassDeadlineMicros[NumPriorities] = {100'000, 1'000'000,
                                                10'000'000};
  /// Background shape-class compilation (the cold-cache degradation
  /// ladder). Off = every batch size compiles inline at construction,
  /// the pre-async behavior the introspection-heavy tests rely on.
  bool AsyncCompile = true;
  /// Workers in the background compile pool (>= 1; only used when
  /// AsyncCompile).
  int CompileThreads = 2;
  /// Weight initialization seed (initParams on the weight master).
  uint64_t ParamSeed = 0x5eed;
  /// Engine options for every replica executor (Profile works — the
  /// global profiler keeps per-thread span buffers, so concurrent replica
  /// forwards record safely; the weight master never serves and has it
  /// forced off).
  engine::ExecOptions Exec;
};

/// Per-request scheduling knobs for Server::submit.
struct SubmitOptions {
  Priority Pri = Priority::Standard;
  /// Explicit service-deadline budget (micros) from submission time;
  /// 0 = the class default from ServeOptions::ClassDeadlineMicros.
  int64_t DeadlineMicros = 0;
};

struct ServeStats {
  int64_t Submitted = 0; ///< admitted requests
  int64_t Shed = 0;      ///< rejected at capacity
  int64_t Completed = 0; ///< fulfilled promises (Status::Ok)
  int64_t Batches = 0;
  int64_t PaddedSlots = 0; ///< zero rows run for tail batches
  int64_t FullFlushes = 0;
  int64_t DeadlineFlushes = 0;
  int64_t DeadlineShed = 0;    ///< failed early with Status::DeadlineShed
  int64_t ShutdownFailed = 0;  ///< failed with Status::Shutdown at stop()
  int64_t DeadlineMissed = 0;  ///< served, but completed past the deadline
  int64_t InterpFallbacks = 0; ///< batches served by the interpreted
                               ///< fallback while the JIT class was cold
  int64_t ChunkedBatches = 0;  ///< batches split into multiple runs of a
                               ///< smaller warm executor (cold class)
  int64_t ClassesInstalled = 0; ///< shape classes installed asynchronously
  /// batch size ran -> (items carried -> count). The batch-fill histogram
  /// of the bench report: Fill[16][16] counts full batches, Fill[16][9] a
  /// 9-item tail run at size 16.
  std::map<int64_t, std::map<int64_t, int64_t>> Fill;
  /// Wall seconds spent inside Executor::forward across all replicas.
  double BusySec = 0.0;
};

class Server {
public:
  /// Compiles (or cache-hits) the floor program inline, enqueues every
  /// other shape class on the background compile service (AsyncCompile)
  /// or compiles them inline too (!AsyncCompile), and builds
  /// Replicas x BatchSizes executor slots wired for weight sharing.
  /// Does not start worker threads — call start().
  Server(const models::ModelSpec &Spec, const compiler::CompileOptions &CO,
         const ServeOptions &SO);
  ~Server(); ///< stops and joins if still running

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  void start();
  /// Stops the compile service, fails queued requests with
  /// Status::Shutdown, joins workers. Idempotent.
  void stop();

  /// Submits one item (shape must match the spec's InputDims element
  /// count). Returns whether it was admitted (false = shed at capacity;
  /// the future is untouched); on admission *Out receives the future for
  /// the Response (Status + {NumClasses} probability row).
  bool submit(Tensor Item, std::future<Response> *Out,
              SubmitOptions SO = {});

  /// Copies trained weights (by Param buffer name) into the weight master;
  /// visible to all replicas immediately through pointer sharing — and to
  /// replicas installed later, which point at the same master bytes. Call
  /// before start().
  void loadParamsFrom(const engine::Executor &Trained);

  ServeStats stats() const;
  const models::ModelSpec &spec() const { return Spec; }
  int64_t maxBatch() const { return BatchSizes.back(); }
  const std::vector<int64_t> &batchSizes() const { return BatchSizes; }

  /// True once every primary shape class (one per batch size) has been
  /// compiled and its replica executors installed.
  bool allClassesReady() const;
  /// Seconds from construction until the last primary class installed
  /// (0 until allClassesReady()).
  double allReadySec() const;
  /// Blocks until allClassesReady() or \p Timeout elapses; returns
  /// whether everything installed.
  bool waitAllClassesReady(std::chrono::milliseconds Timeout) const;

  // --- introspection (tests / bench) --------------------------------------

  /// The primary program of \p BatchSize. Fatal if that class has not
  /// been installed yet (see allClassesReady()).
  const compiler::Program &program(int64_t BatchSize) const;
  const engine::Executor &weightMaster() const { return *Master; }
  engine::Executor &weightMaster() { return *Master; }
  const engine::Executor &replicaExecutor(int Replica,
                                          int64_t BatchSize) const;
  /// Sum of per-replica forward-only arena bytes across installed
  /// executors (the serving activation footprint, excluding the shared
  /// weights).
  int64_t replicaArenaBytes() const;

private:
  struct Replica {
    /// Primary executors (requested option class), BatchSizes order;
    /// slots are null until their shape class installs.
    std::vector<std::unique_ptr<engine::Executor>> Execs;
    /// Interpreted-dispatch fallbacks (only when the requested class has
    /// Jit): same batch sizes, JIT stripped.
    std::vector<std::unique_ptr<engine::Executor>> InterpExecs;
    std::thread Worker;
  };

  /// Which executor a popped batch runs on, per the degradation ladder.
  struct Pick {
    engine::Executor *Ex = nullptr;
    int64_t BatchSize = 0;
    bool Interp = false;  ///< served by the interpreted fallback
    bool Chunked = false; ///< batch must be split into BatchSize chunks
  };

  void workerLoop(Replica &Rep);
  Pick pickExecutor(Replica &Rep, int64_t Fill);
  void runBatch(Replica &Rep, std::vector<Request> Batch);
  /// Creates and publishes the per-replica executors of one shape class
  /// (called on the compile thread; atomic via release flags).
  void installClass(size_t BI, bool Interp,
                    compiler::ProgramCache::ProgramPtr Prog);
  void enqueueBackgroundCompiles();

  models::ModelSpec Spec;
  compiler::CompileOptions CompileOpts;
  ServeOptions Opts;
  std::vector<int64_t> BatchSizes; ///< sorted, deduplicated
  int64_t ItemElems = 0;           ///< input elements per item
  int64_t ClassElems = 0;          ///< output elements per item

  /// Primary programs per batch size (null until installed).
  std::vector<compiler::ProgramCache::ProgramPtr> Programs;
  std::vector<compiler::ProgramCache::ProgramPtr> InterpPrograms;
  /// Publication flags: set with release order after the slot's
  /// executors exist in every replica; workers read with acquire.
  std::unique_ptr<std::atomic<bool>[]> PrimaryReady;
  std::unique_ptr<std::atomic<bool>[]> InterpReady;
  std::atomic<int> ReadyPrimaries{0};
  std::chrono::steady_clock::time_point Constructed;
  std::atomic<int64_t> AllReadyNanos{0}; ///< 0 = not all ready yet

  std::unique_ptr<engine::Executor> Master; ///< owns the weights
  std::vector<Replica> Replicas;
  std::unique_ptr<CompileService> Compiles; ///< null when !AsyncCompile
  std::atomic<bool> Stopping{false};

  std::unique_ptr<MicroBatcher> Batcher;
  bool Running = false;

  mutable std::mutex StatsMu;
  ServeStats Stats;
};

} // namespace serve
} // namespace latte

#endif // LATTE_SERVE_SERVER_H
