//===- serve/batcher.cpp --------------------------------------*- C++ -*-===//

#include "serve/batcher.h"

#include "support/error.h"

using namespace latte;
using namespace latte::serve;

MicroBatcher::MicroBatcher(int64_t MaxBatch,
                           std::chrono::microseconds FlushDeadline,
                           size_t Capacity)
    : MaxBatch(MaxBatch), FlushDeadline(FlushDeadline), Capacity(Capacity) {
  if (MaxBatch <= 0)
    reportFatalError("MicroBatcher: MaxBatch must be positive");
  if (Capacity == 0)
    reportFatalError("MicroBatcher: Capacity must be positive");
}

bool MicroBatcher::enqueue(Request &&R) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Stopped || Queue.size() >= Capacity) {
      ++Stats.Shed;
      return false;
    }
    R.Enqueued = std::chrono::steady_clock::now();
    Queue.push_back(std::move(R));
    ++Stats.Enqueued;
  }
  // All waiters, not one: the consumer whose deadline timer is about to
  // fire may not be the one this enqueue completes a full batch for.
  Cv.notify_all();
  return true;
}

std::vector<Request> MicroBatcher::takeLocked(size_t N) {
  if (N > static_cast<size_t>(MaxBatch))
    N = static_cast<size_t>(MaxBatch);
  std::vector<Request> Batch;
  Batch.reserve(N);
  for (size_t I = 0; I < N; ++I) {
    Batch.push_back(std::move(Queue.front()));
    Queue.pop_front();
  }
  return Batch;
}

std::vector<Request> MicroBatcher::popBatch() {
  std::unique_lock<std::mutex> Lock(Mu);
  for (;;) {
    if (Stopped) {
      if (Queue.empty())
        return {};
      ++Stats.DrainFlushes;
      return takeLocked(Queue.size());
    }
    if (Queue.size() >= static_cast<size_t>(MaxBatch)) {
      ++Stats.FullFlushes;
      return takeLocked(static_cast<size_t>(MaxBatch));
    }
    if (!Queue.empty()) {
      auto Deadline = Queue.front().Enqueued + FlushDeadline;
      if (std::chrono::steady_clock::now() >= Deadline) {
        ++Stats.DeadlineFlushes;
        return takeLocked(Queue.size());
      }
      // Re-evaluates on enqueue (the batch may fill first), on stop, or
      // when the oldest request's deadline passes.
      Cv.wait_until(Lock, Deadline);
    } else {
      Cv.wait(Lock);
    }
  }
}

void MicroBatcher::stop() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Stopped = true;
  }
  Cv.notify_all();
}

size_t MicroBatcher::pending() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Queue.size();
}

BatcherStats MicroBatcher::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Stats;
}
