//===- serve/batcher.cpp --------------------------------------*- C++ -*-===//

#include "serve/batcher.h"

#include "support/error.h"

#include <algorithm>

using namespace latte;
using namespace latte::serve;

MicroBatcher::MicroBatcher(int64_t MaxBatch,
                           std::chrono::microseconds FlushDeadline,
                           size_t Capacity)
    : MaxBatch(MaxBatch), FlushDeadline(FlushDeadline), Capacity(Capacity) {
  if (MaxBatch <= 0)
    reportFatalError("MicroBatcher: MaxBatch must be positive");
  if (Capacity == 0)
    reportFatalError("MicroBatcher: Capacity must be positive");
}

bool MicroBatcher::enqueue(Request &&R) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Stopped || Queue.size() >= Capacity) {
      ++Stats.Shed;
      return false;
    }
    auto Now = std::chrono::steady_clock::now();
    R.Enqueued = Now;
    if (R.Deadline == std::chrono::steady_clock::time_point())
      R.Deadline = Now + FlushDeadline + std::chrono::seconds(60);
    ++Stats.Enqueued;
    ++Stats.EnqueuedByClass[static_cast<int>(R.Pri)];
    // A request born hopeless is failed on the spot: the deadline already
    // passed, so queueing it would only delay the bad news.
    if (R.Deadline <= Now) {
      ++Stats.DeadlineShed;
      R.fail(Status::DeadlineShed);
      return true;
    }
    // EDF insert: keep the queue sorted by deadline, arrival order on ties.
    auto Pos = std::upper_bound(
        Queue.begin(), Queue.end(), R.Deadline,
        [](std::chrono::steady_clock::time_point D, const Request &Q) {
          return D < Q.Deadline;
        });
    Queue.insert(Pos, std::move(R));
  }
  // All waiters, not one: the consumer whose flush timer is about to fire
  // may not be the one this enqueue completes a full batch for.
  Cv.notify_all();
  return true;
}

std::vector<Request> MicroBatcher::takeLocked(size_t N) {
  if (N > static_cast<size_t>(MaxBatch))
    N = static_cast<size_t>(MaxBatch);
  std::vector<Request> Batch;
  Batch.reserve(N);
  for (size_t I = 0; I < N; ++I) {
    Batch.push_back(std::move(Queue.front()));
    Queue.pop_front();
  }
  return Batch;
}

void MicroBatcher::shedHopelessLocked(
    std::chrono::steady_clock::time_point Now) {
  // Remaining slack below the expected service time means the request
  // would finish late even if dispatched this instant — fail it now with
  // a distinct status instead of letting it time out downstream. The
  // queue is deadline-sorted, but the EWMA margin makes the predicate
  // non-monotone across the queue only when deadlines tie, so a front
  // scan is exact.
  auto Margin = std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(ServiceEwmaSec));
  while (!Queue.empty() && Queue.front().Deadline <= Now + Margin) {
    ++Stats.DeadlineShed;
    Queue.front().fail(Status::DeadlineShed);
    Queue.pop_front();
  }
}

std::chrono::steady_clock::time_point
MicroBatcher::oldestArrivalLocked() const {
  auto Oldest = Queue.front().Enqueued;
  for (const Request &R : Queue)
    if (R.Enqueued < Oldest)
      Oldest = R.Enqueued;
  return Oldest;
}

std::vector<Request> MicroBatcher::popBatch() {
  std::unique_lock<std::mutex> Lock(Mu);
  for (;;) {
    if (Stopped)
      return {};
    auto Now = std::chrono::steady_clock::now();
    shedHopelessLocked(Now);
    if (Queue.size() >= static_cast<size_t>(MaxBatch)) {
      ++Stats.FullFlushes;
      return takeLocked(static_cast<size_t>(MaxBatch));
    }
    if (!Queue.empty()) {
      auto FlushAt = oldestArrivalLocked() + FlushDeadline;
      if (Now >= FlushAt) {
        ++Stats.DeadlineFlushes;
        return takeLocked(Queue.size());
      }
      // Wake for whichever comes first: the flush bound, or the earliest
      // deadline crossing into hopeless territory (so sheds are prompt).
      // Re-evaluates on enqueue (the batch may fill first) and on stop.
      auto Margin =
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(ServiceEwmaSec));
      Cv.wait_until(Lock, std::min(FlushAt, Queue.front().Deadline - Margin));
    } else {
      Cv.wait(Lock);
    }
  }
}

void MicroBatcher::stop() {
  std::deque<Request> Orphans;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Stopped = true;
    Orphans.swap(Queue);
    Stats.ShutdownFailed += static_cast<int64_t>(Orphans.size());
  }
  // Fail outside the lock: promise continuations (a caller's .get() in
  // another thread) must never run into the batcher mutex.
  for (Request &R : Orphans)
    R.fail(Status::Shutdown);
  Cv.notify_all();
}

void MicroBatcher::noteServiceTime(double Sec) {
  if (Sec <= 0)
    return;
  std::lock_guard<std::mutex> Lock(Mu);
  ServiceEwmaSec =
      ServiceEwmaSec <= 0 ? Sec : 0.8 * ServiceEwmaSec + 0.2 * Sec;
}

size_t MicroBatcher::pending() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Queue.size();
}

BatcherStats MicroBatcher::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Stats;
}
