//===- serve/compile_service.cpp ------------------------------*- C++ -*-===//

#include "serve/compile_service.h"

using namespace latte;
using namespace latte::serve;

CompileService::CompileService(int Threads) {
  if (Threads < 1)
    Threads = 1;
  Workers.reserve(static_cast<size_t>(Threads));
  for (int I = 0; I < Threads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

CompileService::~CompileService() { stop(); }

void CompileService::enqueue(models::ModelSpec Spec,
                             compiler::CompileOptions Opts, int64_t BatchSize,
                             Done OnReady) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Stopped)
      return;
    Queue.push_back(Job{std::move(Spec), Opts, BatchSize, std::move(OnReady)});
    ++St.Enqueued;
  }
  Cv.notify_one();
}

void CompileService::workerLoop() {
  for (;;) {
    Job J;
    {
      std::unique_lock<std::mutex> Lock(Mu);
      Cv.wait(Lock, [this] { return Stopped || !Queue.empty(); });
      if (Stopped)
        return; // pending jobs are accounted as Dropped by stop()
      J = std::move(Queue.front());
      Queue.pop_front();
    }
    // The cache's single-flight makes duplicate enqueues of one shape
    // class cost a single compile; distinct classes compile in parallel
    // across the pool.
    compiler::ProgramCache::ProgramPtr Prog =
        compiler::ProgramCache::instance().getOrCompile(J.Spec, J.Opts,
                                                        J.BatchSize);
    if (J.OnReady)
      J.OnReady(std::move(Prog));
    {
      std::lock_guard<std::mutex> Lock(Mu);
      ++St.Completed;
    }
  }
}

void CompileService::stop() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Stopped && Workers.empty())
      return;
    Stopped = true;
    St.Dropped += static_cast<int64_t>(Queue.size());
    Queue.clear();
  }
  Cv.notify_all();
  for (std::thread &W : Workers)
    if (W.joinable())
      W.join();
  Workers.clear();
}

CompileService::Stats CompileService::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  Stats S = St;
  S.QueueDepth = static_cast<int64_t>(Queue.size());
  return S;
}
