//===- core/layers/layers.cpp ---------------------------------*- C++ -*-===//

#include "core/layers/layers.h"

#include "support/error.h"

using namespace latte;
using namespace latte::core;
using namespace latte::layers;

const NeuronType *layers::standardType(Net &Net, const std::string &Name) {
  if (const NeuronType *T = Net.findType(Name))
    return T;
  if (Name == "WeightedNeuron")
    return Net.registerType(makeWeightedNeuronType());
  if (Name == "MaxNeuron")
    return Net.registerType(makeMaxNeuronType());
  if (Name == "AvgNeuron")
    return Net.registerType(makeAvgNeuronType());
  if (Name == "ReluNeuron")
    return Net.registerType(makeReluNeuronType());
  if (Name == "SigmoidNeuron")
    return Net.registerType(makeSigmoidNeuronType());
  if (Name == "TanhNeuron")
    return Net.registerType(makeTanhNeuronType());
  if (Name == "SumNeuron")
    return Net.registerType(makeSumNeuronType());
  if (Name == "MulNeuron")
    return Net.registerType(makeMulNeuronType());
  if (Name == "SubNeuron")
    return Net.registerType(makeSubNeuronType());
  if (Name == "PReluNeuron")
    return Net.registerType(makePReluNeuronType());
  reportFatalError("unknown standard neuron type '" + Name + "'");
}

Ensemble *layers::DataLayer(Net &Net, const std::string &Name, Shape Dims) {
  return Net.addEnsemble(Name, std::move(Dims), nullptr, EnsembleKind::Data);
}

Ensemble *layers::LabelLayer(Net &Net, const std::string &Name) {
  return Net.addEnsemble(Name, Shape{1}, nullptr, EnsembleKind::Data);
}

Ensemble *layers::FullyConnectedLayer(Net &Net, const std::string &Name,
                                      Ensemble *Input, int64_t NumOutputs) {
  assert(Input && NumOutputs > 0 && "invalid FC configuration");
  const NeuronType *T = standardType(Net, "WeightedNeuron");
  Ensemble *Fc = Net.addEnsemble(Name, Shape{NumOutputs}, T);
  int64_t NumInputs = Input->numNeurons();

  FieldStorage Weights;
  Weights.StorageDims = Shape{NumOutputs};
  Weights.ElemDims = Shape{NumInputs};
  Weights.Init = FieldInitKind::Xavier;
  Weights.FanIn = NumInputs;
  Fc->setFieldStorage("weights", std::move(Weights));

  FieldStorage Bias;
  Bias.StorageDims = Shape{NumOutputs};
  Bias.ElemDims = Shape{1};
  Bias.Init = FieldInitKind::Zero;
  Fc->setFieldStorage("bias", std::move(Bias));

  // Connect every source neuron to each sink neuron (Figure 4, line 17).
  Net.addConnections(Input, Fc, fullyConnectedMapping(Input->dims()));
  return Fc;
}

Ensemble *layers::FullyConnectedLayerShared(Net &Net,
                                            const std::string &Name,
                                            Ensemble *Input,
                                            int64_t NumOutputs,
                                            const std::string &ShareWith) {
  Ensemble *Fc = FullyConnectedLayer(Net, Name, Input, NumOutputs);
  // Rebind both parameter fields onto the owner ensemble's storage.
  for (const char *Field : {"weights", "bias"}) {
    FieldStorage S = *Fc->findFieldStorage(Field);
    S.ShareWithEnsemble = ShareWith;
    Fc->setFieldStorage(Field, std::move(S));
  }
  return Fc;
}

Ensemble *layers::ConvolutionLayer(Net &Net, const std::string &Name,
                                   Ensemble *Input, int64_t NumFilters,
                                   int64_t Kernel, int64_t Stride,
                                   int64_t Pad) {
  assert(Input && "convolution needs an input ensemble");
  const Shape &In = Input->dims();
  if (In.rank() != 3)
    reportFatalError("convolution input '" + Input->name() +
                     "' must be (channels, height, width)");
  int64_t C = In[0], H = In[1], W = In[2];
  int64_t OutH = (H + 2 * Pad - Kernel) / Stride + 1;
  int64_t OutW = (W + 2 * Pad - Kernel) / Stride + 1;
  if (OutH <= 0 || OutW <= 0)
    reportFatalError("convolution '" + Name + "' has empty output");

  const NeuronType *T = standardType(Net, "WeightedNeuron");
  Ensemble *Conv = Net.addEnsemble(Name, Shape{NumFilters, OutH, OutW}, T);
  int64_t WindowLen = C * Kernel * Kernel;

  // Weights shared across the spatial dims: one filter per output channel.
  FieldStorage Weights;
  Weights.StorageDims = Shape{NumFilters};
  Weights.ElemDims = Shape{WindowLen};
  Weights.Map = [](const std::vector<int64_t> &Sink) {
    return std::vector<int64_t>{Sink[0]};
  };
  Weights.Init = FieldInitKind::Xavier;
  Weights.FanIn = WindowLen;
  Conv->setFieldStorage("weights", std::move(Weights));

  FieldStorage Bias;
  Bias.StorageDims = Shape{NumFilters};
  Bias.ElemDims = Shape{1};
  Bias.Map = [](const std::vector<int64_t> &Sink) {
    return std::vector<int64_t>{Sink[0]};
  };
  Bias.Init = FieldInitKind::Zero;
  Conv->setFieldStorage("bias", std::move(Bias));

  Net.addConnections(Input, Conv, convWindowMapping(C, Kernel, Stride, Pad));
  return Conv;
}

namespace {

Ensemble *poolingLayer(Net &Net, const std::string &Name, Ensemble *Input,
                       int64_t Kernel, int64_t Stride, int64_t Pad,
                       const char *TypeName) {
  assert(Input && "pooling needs an input ensemble");
  const Shape &In = Input->dims();
  if (In.rank() != 3)
    reportFatalError("pooling input '" + Input->name() +
                     "' must be (channels, height, width)");
  int64_t C = In[0], H = In[1], W = In[2];
  int64_t OutH = (H + 2 * Pad - Kernel) / Stride + 1;
  int64_t OutW = (W + 2 * Pad - Kernel) / Stride + 1;
  if (OutH <= 0 || OutW <= 0)
    reportFatalError("pooling '" + Name + "' has empty output");

  const NeuronType *T = standardType(Net, TypeName);
  Ensemble *Pool = Net.addEnsemble(Name, Shape{C, OutH, OutW}, T);
  Net.addConnections(Input, Pool, poolWindowMapping(Kernel, Stride, Pad));
  return Pool;
}

Ensemble *activationLayer(Net &Net, const std::string &Name, Ensemble *Input,
                          const char *TypeName, bool InPlace) {
  const NeuronType *T = standardType(Net, TypeName);
  Ensemble *Act = Net.addEnsemble(Name, Input->dims(), T,
                                  InPlace ? EnsembleKind::Activation
                                          : EnsembleKind::Standard);
  Net.addConnections(Input, Act, oneToOneMapping());
  return Act;
}

} // namespace

Ensemble *layers::MaxPoolingLayer(Net &Net, const std::string &Name,
                                  Ensemble *Input, int64_t Kernel,
                                  int64_t Stride, int64_t Pad) {
  return poolingLayer(Net, Name, Input, Kernel, Stride, Pad, "MaxNeuron");
}

Ensemble *layers::AvgPoolingLayer(Net &Net, const std::string &Name,
                                  Ensemble *Input, int64_t Kernel,
                                  int64_t Stride, int64_t Pad) {
  return poolingLayer(Net, Name, Input, Kernel, Stride, Pad, "AvgNeuron");
}

Ensemble *layers::ReluLayer(Net &Net, const std::string &Name,
                            Ensemble *Input, bool InPlace) {
  return activationLayer(Net, Name, Input, "ReluNeuron", InPlace);
}

Ensemble *layers::SigmoidLayer(Net &Net, const std::string &Name,
                               Ensemble *Input, bool InPlace) {
  return activationLayer(Net, Name, Input, "SigmoidNeuron", InPlace);
}

Ensemble *layers::TanhLayer(Net &Net, const std::string &Name,
                            Ensemble *Input, bool InPlace) {
  return activationLayer(Net, Name, Input, "TanhNeuron", InPlace);
}

Ensemble *layers::PReluLayer(Net &Net, const std::string &Name,
                             Ensemble *Input) {
  const NeuronType *T = standardType(Net, "PReluNeuron");
  // Not in place: the backward function reads the pre-activation inputs.
  Ensemble *Act = Net.addEnsemble(Name, Input->dims(), T);
  // One slope parameter shared by the whole ensemble.
  FieldStorage Slope;
  Slope.StorageDims = Shape{1};
  Slope.ElemDims = Shape{1};
  Slope.Map = [](const std::vector<int64_t> &) {
    return std::vector<int64_t>{0};
  };
  Slope.Init = FieldInitKind::Constant;
  Slope.InitValue = 0.25f;
  Act->setFieldStorage("slope", std::move(Slope));
  Net.addConnections(Input, Act, oneToOneMapping());
  return Act;
}

Ensemble *layers::DropoutLayer(Net &Net, const std::string &Name,
                               Ensemble *Input, double KeepProb) {
  Ensemble *Drop = Net.addEnsemble(Name, Input->dims(), nullptr,
                                   EnsembleKind::Normalization);
  Drop->setNormOp(NormOpKind::Dropout);
  Drop->setNormParams({KeepProb});
  Net.addConnections(Input, Drop, oneToOneMapping());
  return Drop;
}

Ensemble *layers::SoftmaxLayer(Net &Net, const std::string &Name,
                               Ensemble *Input) {
  Ensemble *Sm = Net.addEnsemble(Name, Input->dims(), nullptr,
                                 EnsembleKind::Normalization);
  Sm->setNormOp(NormOpKind::Softmax);
  Net.addConnections(Input, Sm, oneToOneMapping());
  return Sm;
}

Ensemble *layers::SoftmaxLossLayer(Net &Net, const std::string &Name,
                                   Ensemble *Input, Ensemble *Labels) {
  assert(Labels && "softmax loss needs a label ensemble");
  Ensemble *Loss =
      Net.addEnsemble(Name, Input->dims(), nullptr, EnsembleKind::Loss);
  Loss->setNormOp(NormOpKind::SoftmaxLoss);
  Loss->setLabelSource(Labels);
  Net.addConnections(Input, Loss, oneToOneMapping());
  return Loss;
}

Ensemble *layers::AddLayer(Net &Net, const std::string &Name,
                           std::vector<Ensemble *> Inputs) {
  assert(!Inputs.empty() && "AddLayer needs at least one input");
  const NeuronType *T = standardType(Net, "SumNeuron");
  Ensemble *Sum = Net.addEnsemble(Name, Inputs[0]->dims(), T);
  for (Ensemble *In : Inputs) {
    if (In->dims() != Inputs[0]->dims())
      reportFatalError("AddLayer '" + Name + "' inputs must share a shape");
    Net.addConnections(In, Sum, oneToOneMapping());
  }
  return Sum;
}

Ensemble *layers::MulLayer(Net &Net, const std::string &Name, Ensemble *A,
                           Ensemble *B) {
  assert(A && B && "MulLayer needs two inputs");
  if (A->dims() != B->dims())
    reportFatalError("MulLayer '" + Name + "' inputs must share a shape");
  const NeuronType *T = standardType(Net, "MulNeuron");
  Ensemble *Mul = Net.addEnsemble(Name, A->dims(), T);
  Net.addConnections(A, Mul, oneToOneMapping());
  Net.addConnections(B, Mul, oneToOneMapping());
  return Mul;
}

Ensemble *layers::SubLayer(Net &Net, const std::string &Name, Ensemble *A,
                           Ensemble *B) {
  assert(A && B && "SubLayer needs two inputs");
  if (A->dims() != B->dims())
    reportFatalError("SubLayer '" + Name + "' inputs must share a shape");
  const NeuronType *T = standardType(Net, "SubNeuron");
  Ensemble *Sub = Net.addEnsemble(Name, A->dims(), T);
  Net.addConnections(A, Sub, oneToOneMapping());
  Net.addConnections(B, Sub, oneToOneMapping());
  return Sub;
}
