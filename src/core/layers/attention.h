//===- core/layers/attention.h - Sequence and attention blocks -*- C++ -*-===//
///
/// \file
/// Sequence-structure layers and a single-head scaled dot-product
/// attention block, composed from the same primitives as the rest of the
/// standard library (§3-§4): mapping functions over ensembles, per-neuron
/// field storage with explicit sharing, and neuron-function generators.
///
/// Sequence inputs live in one rank-2 (T, F) data ensemble — timesteps by
/// features — so the verification harness and the serving runtime feed
/// them through the ordinary single data buffer. SliceLayer carves out one
/// timestep for an unrolled recurrent block; StackLayer broadcasts a flat
/// ensemble into a (T, F) sequence.
///
/// TimeDistributedFcLayer applies ONE weight matrix to every timestep row
/// (the Q/K/V projections of attention): a (T, D) ensemble of
/// WeightedNeurons whose weight/bias storage is shared along the time
/// dimension via the field Map — the same per-channel-sharing mechanism
/// convolution filters use, here projecting out time instead of space. The
/// compiler's GEMM pattern matcher recognizes the shape and lowers it to a
/// single (Batch*T) x F x D sgemm.
///
/// AttentionLayer wires the whole block: Q/K/V projections, a (T, T)
/// score ensemble of DotNeurons at 1/sqrt(D) (the first non-affine
/// connection pattern in the tree — each score reads one row of Q and one
/// row of K), softmax over keys (the last axis), and a (T, D) weighted-sum
/// readout of V under the attention probabilities.
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_CORE_LAYERS_ATTENTION_H
#define LATTE_CORE_LAYERS_ATTENTION_H

#include "core/layers/layers.h"

namespace latte {
namespace layers {

/// Timestep \p T of a rank-2 (Time, F) sequence ensemble: a rank-1 {F}
/// ensemble reading row T of \p Input.
core::Ensemble *SliceLayer(core::Net &Net, const std::string &Name,
                           core::Ensemble *Input, int64_t T);

/// Broadcasts a rank-1 {F} ensemble into a (T, F) sequence whose rows all
/// read the source (backward sums the T row gradients into it).
core::Ensemble *StackLayer(core::Net &Net, const std::string &Name,
                           core::Ensemble *Input, int64_t T);

/// One weight matrix applied to every timestep: (T, F) -> (T, D) with
/// weights {D x F} and bias {D} shared along time via the field Map.
core::Ensemble *TimeDistributedFcLayer(core::Net &Net,
                                       const std::string &Name,
                                       core::Ensemble *Input,
                                       int64_t NumOutputs);

/// Single-head scaled dot-product attention over a (T, F) sequence with
/// model dimension \p D: out = softmax(Q K^T / sqrt(D)) V, where
/// Q/K/V = TimeDistributedFc(Input, D). Returns the (T, D) readout.
/// Ensembles are named <Name>_{q,k,v,scores,probs,out}.
core::Ensemble *AttentionLayer(core::Net &Net, const std::string &Name,
                               core::Ensemble *Input, int64_t D);

} // namespace layers
} // namespace latte

#endif // LATTE_CORE_LAYERS_ATTENTION_H
