//===- core/layers/attention.cpp ------------------------------*- C++ -*-===//

#include "core/layers/attention.h"

#include "support/error.h"

#include <cmath>

using namespace latte;
using namespace latte::core;
using namespace latte::layers;

namespace {

/// Finds or registers the DotNeuron instance for \p Scale (the type name
/// encodes the scale, so distinct scales coexist in one registry).
const NeuronType *dotType(Net &Net, double Scale) {
  NeuronType T = makeDotNeuronType(Scale);
  if (const NeuronType *Found = Net.findType(T.name()))
    return Found;
  return Net.registerType(std::move(T));
}

} // namespace

Ensemble *layers::SliceLayer(Net &Net, const std::string &Name,
                             Ensemble *Input, int64_t T) {
  assert(Input && "slice needs an input ensemble");
  const Shape &In = Input->dims();
  if (In.rank() != 2)
    reportFatalError("slice input '" + Input->name() +
                     "' must be (timesteps, features)");
  if (T < 0 || T >= In[0])
    reportFatalError("slice '" + Name + "' timestep out of range");
  int64_t F = In[1];

  const NeuronType *Ty = standardType(Net, "SumNeuron");
  Ensemble *Slice = Net.addEnsemble(Name, Shape{F}, Ty);
  // Each output d reads the single element (T, d) of the sequence.
  Net.addConnections(Input, Slice,
                     [T](const std::vector<int64_t> &Sink) {
                       return std::vector<Range>{{T, T + 1},
                                                 {Sink[0], Sink[0] + 1}};
                     });
  return Slice;
}

Ensemble *layers::StackLayer(Net &Net, const std::string &Name,
                             Ensemble *Input, int64_t T) {
  assert(Input && T > 0 && "stack needs an input and a positive length");
  const Shape &In = Input->dims();
  if (In.rank() != 1)
    reportFatalError("stack input '" + Input->name() + "' must be rank 1");
  int64_t F = In[0];

  const NeuronType *Ty = standardType(Net, "SumNeuron");
  Ensemble *Stack = Net.addEnsemble(Name, Shape{T, F}, Ty);
  // Every timestep row reads the same source element; the backward pass
  // scatter-adds the T row gradients back into it.
  Net.addConnections(Input, Stack,
                     [](const std::vector<int64_t> &Sink) {
                       return std::vector<Range>{{Sink[1], Sink[1] + 1}};
                     });
  return Stack;
}

Ensemble *layers::TimeDistributedFcLayer(Net &Net, const std::string &Name,
                                         Ensemble *Input,
                                         int64_t NumOutputs) {
  assert(Input && NumOutputs > 0 && "invalid time-distributed FC");
  const Shape &In = Input->dims();
  if (In.rank() != 2)
    reportFatalError("time-distributed FC input '" + Input->name() +
                     "' must be (timesteps, features)");
  int64_t F = In[1];

  const NeuronType *Ty = standardType(Net, "WeightedNeuron");
  Ensemble *Fc = Net.addEnsemble(Name, Shape{In[0], NumOutputs}, Ty);

  // One {NumOutputs x F} weight matrix shared across time: storage is
  // indexed by the output dimension only, exactly like a convolution
  // filter bank shared over its spatial dims.
  FieldStorage Weights;
  Weights.StorageDims = Shape{NumOutputs};
  Weights.ElemDims = Shape{F};
  Weights.Map = [](const std::vector<int64_t> &Sink) {
    return std::vector<int64_t>{Sink[1]};
  };
  Weights.Init = FieldInitKind::Xavier;
  Weights.FanIn = F;
  Fc->setFieldStorage("weights", std::move(Weights));

  FieldStorage Bias;
  Bias.StorageDims = Shape{NumOutputs};
  Bias.ElemDims = Shape{1};
  Bias.Map = [](const std::vector<int64_t> &Sink) {
    return std::vector<int64_t>{Sink[1]};
  };
  Bias.Init = FieldInitKind::Zero;
  Fc->setFieldStorage("bias", std::move(Bias));

  // Output (t, d) reads the full feature row of timestep t.
  Net.addConnections(Input, Fc,
                     [F](const std::vector<int64_t> &Sink) {
                       return std::vector<Range>{{Sink[0], Sink[0] + 1},
                                                 {0, F}};
                     });
  return Fc;
}

Ensemble *layers::AttentionLayer(Net &Net, const std::string &Name,
                                 Ensemble *Input, int64_t D) {
  assert(Input && D > 0 && "invalid attention configuration");
  const Shape &In = Input->dims();
  if (In.rank() != 2)
    reportFatalError("attention input '" + Input->name() +
                     "' must be (timesteps, features)");
  int64_t T = In[0];

  Ensemble *Q = TimeDistributedFcLayer(Net, Name + "_q", Input, D);
  Ensemble *K = TimeDistributedFcLayer(Net, Name + "_k", Input, D);
  Ensemble *V = TimeDistributedFcLayer(Net, Name + "_v", Input, D);

  // scores[i, j] = <Q_i, K_j> / sqrt(D): each score neuron dots one query
  // row against one key row — a non-affine (pairwise) connection pattern,
  // so synthesis lowers it through the interpreted SoA path.
  const NeuronType *ScaledDot =
      dotType(Net, 1.0 / std::sqrt(static_cast<double>(D)));
  Ensemble *Scores = Net.addEnsemble(Name + "_scores", Shape{T, T},
                                     ScaledDot);
  Net.addConnections(Q, Scores,
                     [D](const std::vector<int64_t> &Sink) {
                       return std::vector<Range>{{Sink[0], Sink[0] + 1},
                                                 {0, D}};
                     });
  Net.addConnections(K, Scores,
                     [D](const std::vector<int64_t> &Sink) {
                       return std::vector<Range>{{Sink[1], Sink[1] + 1},
                                                 {0, D}};
                     });

  // Softmax over keys: normalization runs over the last axis of (T, T).
  Ensemble *Probs = SoftmaxLayer(Net, Name + "_probs", Scores);

  // out[i, d] = sum_j probs[i, j] * V[j, d]. The probability window is row
  // i; the value window is column d — both flatten to length-T vectors in
  // matching j order.
  const NeuronType *Dot = dotType(Net, 1.0);
  Ensemble *Out = Net.addEnsemble(Name + "_out", Shape{T, D}, Dot);
  Net.addConnections(Probs, Out,
                     [T](const std::vector<int64_t> &Sink) {
                       return std::vector<Range>{{Sink[0], Sink[0] + 1},
                                                 {0, T}};
                     });
  Net.addConnections(V, Out,
                     [T](const std::vector<int64_t> &Sink) {
                       return std::vector<Range>{{0, T},
                                                 {Sink[1], Sink[1] + 1}};
                     });
  return Out;
}
