//===- core/layers/recurrent.cpp ------------------------------*- C++ -*-===//

#include "core/layers/recurrent.h"

#include "support/error.h"

using namespace latte;
using namespace latte::core;
using namespace latte::layers;

namespace {

/// Gate projection from \p Input, tied to timestep 0's parameters.
Ensemble *sharedFc(Net &Net, const std::string &Base, int T,
                   Ensemble *Input, int64_t NumOutputs) {
  std::string Name = Base + "_t" + std::to_string(T);
  if (T == 0)
    return FullyConnectedLayer(Net, Name, Input, NumOutputs);
  return FullyConnectedLayerShared(Net, Name, Input, NumOutputs,
                                   Base + "_t0");
}

void checkInputs(const std::vector<Ensemble *> &Inputs) {
  if (Inputs.empty())
    reportFatalError("recurrent block needs at least one timestep");
  for (Ensemble *E : Inputs)
    if (!E || E->dims() != Inputs[0]->dims())
      reportFatalError("recurrent inputs must be same-shaped ensembles");
}

} // namespace

RecurrentOutputs layers::LstmLayer(Net &Net, const std::string &Name,
                                   const std::vector<Ensemble *> &Inputs,
                                   int64_t NumOutputs) {
  checkInputs(Inputs);
  const int T = static_cast<int>(Inputs.size());

  // Zero-valued initial hidden/cell state (data ensembles never written).
  Ensemble *HPrev = DataLayer(Net, Name + "_h0", Shape{NumOutputs});
  Ensemble *CPrev = DataLayer(Net, Name + "_c0", Shape{NumOutputs});

  RecurrentOutputs Out;
  for (int S = 0; S < T; ++S) {
    std::string Ts = "_t" + std::to_string(S);
    Ensemble *X = Inputs[S];

    // Gate pre-activations: shared input and recurrent projections
    // (Figure 6 splits the input and the previous output into 4 signals).
    Ensemble *Ix = sharedFc(Net, Name + "_ix", S, X, NumOutputs);
    Ensemble *Fx = sharedFc(Net, Name + "_fx", S, X, NumOutputs);
    Ensemble *Ox = sharedFc(Net, Name + "_ox", S, X, NumOutputs);
    Ensemble *Gx = sharedFc(Net, Name + "_gx", S, X, NumOutputs);
    Ensemble *Ih = sharedFc(Net, Name + "_ih", S, HPrev, NumOutputs);
    Ensemble *Fh = sharedFc(Net, Name + "_fh", S, HPrev, NumOutputs);
    Ensemble *Oh = sharedFc(Net, Name + "_oh", S, HPrev, NumOutputs);
    Ensemble *Gh = sharedFc(Net, Name + "_gh", S, HPrev, NumOutputs);

    // i = σ(ix + ih), f = σ(fx + fh), o = σ(ox + oh), g = tanh(gx + gh).
    Ensemble *I =
        SigmoidLayer(Net, Name + "_i" + Ts, AddLayer(Net, Name + "_ipre" + Ts,
                                                     {Ix, Ih}));
    Ensemble *F =
        SigmoidLayer(Net, Name + "_f" + Ts, AddLayer(Net, Name + "_fpre" + Ts,
                                                     {Fx, Fh}));
    Ensemble *O =
        SigmoidLayer(Net, Name + "_o" + Ts, AddLayer(Net, Name + "_opre" + Ts,
                                                     {Ox, Oh}));
    Ensemble *G =
        TanhLayer(Net, Name + "_g" + Ts, AddLayer(Net, Name + "_gpre" + Ts,
                                                  {Gx, Gh}));

    // c_t = f * c_{t-1} + i * g.
    Ensemble *FC = MulLayer(Net, Name + "_fc" + Ts, F, CPrev);
    Ensemble *IG = MulLayer(Net, Name + "_ig" + Ts, I, G);
    Ensemble *C = AddLayer(Net, Name + "_c" + Ts, {FC, IG});

    // h_t = o * tanh(c_t); the cell state survives into the next timestep,
    // so tanh runs out of place (copy=true in Figure 6).
    Ensemble *CT =
        TanhLayer(Net, Name + "_ct" + Ts, C, /*InPlace=*/false);
    Ensemble *H = MulLayer(Net, Name + "_h" + Ts, O, CT);

    Out.Hidden.push_back(H);
    Out.Cell.push_back(C);
    HPrev = H;
    CPrev = C;
  }
  return Out;
}

RecurrentOutputs layers::GruLayer(Net &Net, const std::string &Name,
                                  const std::vector<Ensemble *> &Inputs,
                                  int64_t NumOutputs) {
  checkInputs(Inputs);
  const int T = static_cast<int>(Inputs.size());
  Ensemble *HPrev = DataLayer(Net, Name + "_h0", Shape{NumOutputs});

  RecurrentOutputs Out;
  for (int S = 0; S < T; ++S) {
    std::string Ts = "_t" + std::to_string(S);
    Ensemble *X = Inputs[S];

    // Update gate z and reset gate r.
    Ensemble *Zx = sharedFc(Net, Name + "_zx", S, X, NumOutputs);
    Ensemble *Zh = sharedFc(Net, Name + "_zh", S, HPrev, NumOutputs);
    Ensemble *Z =
        SigmoidLayer(Net, Name + "_z" + Ts, AddLayer(Net, Name + "_zpre" + Ts,
                                                     {Zx, Zh}));
    Ensemble *Rx = sharedFc(Net, Name + "_rx", S, X, NumOutputs);
    Ensemble *Rh = sharedFc(Net, Name + "_rh", S, HPrev, NumOutputs);
    Ensemble *R =
        SigmoidLayer(Net, Name + "_r" + Ts, AddLayer(Net, Name + "_rpre" + Ts,
                                                     {Rx, Rh}));

    // Candidate state over the reset-gated history.
    Ensemble *RH = MulLayer(Net, Name + "_rh_gate" + Ts, R, HPrev);
    Ensemble *Nx = sharedFc(Net, Name + "_nx", S, X, NumOutputs);
    Ensemble *Nh = sharedFc(Net, Name + "_nh", S, RH, NumOutputs);
    Ensemble *Cand =
        TanhLayer(Net, Name + "_n" + Ts, AddLayer(Net, Name + "_npre" + Ts,
                                                  {Nx, Nh}));

    // h_t = h_{t-1} + z * (cand - h_{t-1}).
    Ensemble *Diff = SubLayer(Net, Name + "_diff" + Ts, Cand, HPrev);
    Ensemble *ZD = MulLayer(Net, Name + "_zd" + Ts, Z, Diff);
    Ensemble *H = AddLayer(Net, Name + "_h" + Ts, {HPrev, ZD});

    Out.Hidden.push_back(H);
    HPrev = H;
  }
  return Out;
}
