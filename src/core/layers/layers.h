//===- core/layers/layers.h - The Latte standard library -------*- C++ -*-===//
///
/// \file
/// Layer constructors (paper §4): each builds an ensemble of neurons with
/// the right connection structure and parameter storage, exactly as the
/// Julia standard library's FullyConnectedLayer / ConvolutionLayer / ...
/// do (Figures 4-7). All constructors return the created ensemble so
/// layers compose by chaining.
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_CORE_LAYERS_LAYERS_H
#define LATTE_CORE_LAYERS_LAYERS_H

#include "core/graph.h"

namespace latte {
namespace layers {

/// Input ensemble whose values are supplied by the caller each batch
/// (images, features). \p Dims excludes the batch dimension.
core::Ensemble *DataLayer(core::Net &Net, const std::string &Name,
                          Shape Dims);

/// Label ensemble (one class index per batch item).
core::Ensemble *LabelLayer(core::Net &Net, const std::string &Name);

/// Fully connected layer of WeightedNeurons (Figure 4). Weights are
/// Xavier-initialized; bias zero.
core::Ensemble *FullyConnectedLayer(core::Net &Net, const std::string &Name,
                                    core::Ensemble *Input,
                                    int64_t NumOutputs);

/// Fully connected layer whose weights and bias are tied to (share
/// storage with) the same-named fields of \p ShareWith — the recurrent
/// weight sharing of unrolled LSTM/GRU cells.
core::Ensemble *FullyConnectedLayerShared(core::Net &Net,
                                          const std::string &Name,
                                          core::Ensemble *Input,
                                          int64_t NumOutputs,
                                          const std::string &ShareWith);

/// Alias used by the paper's MLP example (Figure 7).
inline core::Ensemble *InnerProductLayer(core::Net &Net,
                                         const std::string &Name,
                                         core::Ensemble *Input,
                                         int64_t NumOutputs) {
  return FullyConnectedLayer(Net, Name, Input, NumOutputs);
}

/// Convolution layer: WeightedNeurons on a sliding window with weights
/// shared per output channel (Figure 5). Input must be (C, H, W).
core::Ensemble *ConvolutionLayer(core::Net &Net, const std::string &Name,
                                 core::Ensemble *Input, int64_t NumFilters,
                                 int64_t Kernel, int64_t Stride,
                                 int64_t Pad);

/// Max / average pooling over (C, H, W) inputs.
core::Ensemble *MaxPoolingLayer(core::Net &Net, const std::string &Name,
                                core::Ensemble *Input, int64_t Kernel,
                                int64_t Stride, int64_t Pad = 0);
core::Ensemble *AvgPoolingLayer(core::Net &Net, const std::string &Name,
                                core::Ensemble *Input, int64_t Kernel,
                                int64_t Stride, int64_t Pad = 0);

/// Activation ensembles, in place by default (§3.2). Pass InPlace=false
/// (the paper's `copy=true`, Figure 6) when the input's values must
/// survive — e.g. the LSTM cell state feeding the next timestep.
core::Ensemble *ReluLayer(core::Net &Net, const std::string &Name,
                          core::Ensemble *Input, bool InPlace = true);
core::Ensemble *SigmoidLayer(core::Net &Net, const std::string &Name,
                             core::Ensemble *Input, bool InPlace = true);
core::Ensemble *TanhLayer(core::Net &Net, const std::string &Name,
                          core::Ensemble *Input, bool InPlace = true);

/// PReLU with a single learnable slope shared across the ensemble (He et
/// al.; the paper's example of a researcher-defined layer). Not in-place.
core::Ensemble *PReluLayer(core::Net &Net, const std::string &Name,
                           core::Ensemble *Input);

/// Dropout with the given keep probability.
core::Ensemble *DropoutLayer(core::Net &Net, const std::string &Name,
                             core::Ensemble *Input, double KeepProb);

/// Softmax normalization over a rank-1 ensemble.
core::Ensemble *SoftmaxLayer(core::Net &Net, const std::string &Name,
                             core::Ensemble *Input);

/// Fused softmax + cross-entropy loss against \p Labels.
core::Ensemble *SoftmaxLossLayer(core::Net &Net, const std::string &Name,
                                 core::Ensemble *Input,
                                 core::Ensemble *Labels);

/// Elementwise sum of same-shaped ensembles (SumNeuron).
core::Ensemble *AddLayer(core::Net &Net, const std::string &Name,
                         std::vector<core::Ensemble *> Inputs);

/// Elementwise product of two same-shaped ensembles (MulNeuron).
core::Ensemble *MulLayer(core::Net &Net, const std::string &Name,
                         core::Ensemble *A, core::Ensemble *B);

/// Elementwise difference A - B (SubNeuron).
core::Ensemble *SubLayer(core::Net &Net, const std::string &Name,
                         core::Ensemble *A, core::Ensemble *B);

/// Returns (and lazily registers) the standard neuron type \p Name on
/// \p Net ("WeightedNeuron", "MaxNeuron", ...).
const core::NeuronType *standardType(core::Net &Net, const std::string &Name);

} // namespace layers
} // namespace latte

#endif // LATTE_CORE_LAYERS_LAYERS_H
