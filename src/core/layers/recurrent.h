//===- core/layers/recurrent.h - Unrolled recurrent blocks ----*- C++ -*-===//
///
/// \file
/// LSTM and GRU blocks (paper §2.4, §4 Figure 6). The Julia implementation
/// expressed recurrence with `recurrent=true` connections resolved by the
/// runtime; this reproduction compiles feed-forward programs, so recurrent
/// blocks are built by *unrolling over time*: one cell instance per
/// timestep, with gate weights tied across timesteps through shared field
/// storage (so the parameter count is timestep-independent and gradients
/// accumulate over time — back-propagation through time falls out of the
/// ordinary backward pass).
///
/// Cells are composed from the same primitives as Figure 6: shared
/// FullyConnected layers for the gate projections and the σ / tanh / + / *
/// ensembles of the standard library, including `copy=true` tanh on the
/// cell state (which must survive into the next timestep).
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_CORE_LAYERS_RECURRENT_H
#define LATTE_CORE_LAYERS_RECURRENT_H

#include "core/layers/layers.h"

#include <vector>

namespace latte {
namespace layers {

struct RecurrentOutputs {
  /// Hidden state per timestep (h_t); the usual block output.
  std::vector<core::Ensemble *> Hidden;
  /// Cell state per timestep (LSTM only).
  std::vector<core::Ensemble *> Cell;
};

/// Long Short-Term Memory block over per-timestep inputs. All timesteps
/// share one set of gate parameters. \p Inputs must be same-shaped
/// rank-1 ensembles (one per timestep).
RecurrentOutputs LstmLayer(core::Net &Net, const std::string &Name,
                           const std::vector<core::Ensemble *> &Inputs,
                           int64_t NumOutputs);

/// Gated Recurrent Unit block (update/reset gates, candidate state).
RecurrentOutputs GruLayer(core::Net &Net, const std::string &Name,
                          const std::vector<core::Ensemble *> &Inputs,
                          int64_t NumOutputs);

} // namespace layers
} // namespace latte

#endif // LATTE_CORE_LAYERS_RECURRENT_H
