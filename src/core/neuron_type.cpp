//===- core/neuron_type.cpp -----------------------------------*- C++ -*-===//

#include "core/neuron_type.h"

#include "ir/visitor.h"

#include <limits>

using namespace latte;
using namespace latte::core;
using namespace latte::ir;

bool dsl::isFieldBuf(const std::string &Buffer, std::string &FieldName) {
  const std::string Prefix = "@field:";
  if (Buffer.compare(0, Prefix.size(), Prefix) != 0)
    return false;
  FieldName = Buffer.substr(Prefix.size());
  return true;
}

static bool startsWithGradInput(const std::string &Buffer) {
  return Buffer.rfind("@gradinput", 0) == 0;
}

static bool matchIndexedBuf(const std::string &Buffer,
                            const std::string &Prefix, int &K) {
  if (Buffer.compare(0, Prefix.size(), Prefix) != 0)
    return false;
  const std::string Suffix = Buffer.substr(Prefix.size());
  if (Suffix.empty())
    return false;
  K = 0;
  for (char C : Suffix) {
    if (C < '0' || C > '9')
      return false;
    K = K * 10 + (C - '0');
  }
  return true;
}

bool dsl::isInputBuf(const std::string &Buffer, int &K) {
  return !startsWithGradInput(Buffer) &&
         matchIndexedBuf(Buffer, "@input", K);
}

bool dsl::isGradInputBuf(const std::string &Buffer, int &K) {
  return matchIndexedBuf(Buffer, "@gradinput", K);
}

bool NeuronType::forwardAccumulates(const NeuronContext &Ctx) const {
  StmtPtr Body = Forward(Ctx);
  bool Accumulates = false;
  walkStmts(Body.get(), [&](const Stmt *S) {
    if (const auto *St = dyn_cast<StoreStmt>(S))
      if (St->buffer() == dsl::valueBuf() && St->op() != AccumKind::Assign)
        Accumulates = true;
  });
  return Accumulates;
}

NeuronType core::makeWeightedNeuronType() {
  using namespace dsl;
  std::vector<FieldSpec> Fields = {
      {"weights", Shape{}, /*IsParam=*/true, /*HasGrad=*/true, 1.0f},
      {"bias", Shape{1}, /*IsParam=*/true, /*HasGrad=*/true, 2.0f},
  };
  // The weights field is sized by the input window; synthesis resolves the
  // empty shape of "weights" to {inputLength(0)} (see Ensemble field
  // handling). The forward/backward bodies mirror Figure 3 of the paper.
  NeuronBodyFn Fwd = [](const NeuronContext &Ctx) {
    std::vector<StmtPtr> Stmts;
    Stmts.push_back(forLoop(
        "i", Ctx.inputLength(0),
        accumValue(mul(field("weights", indexList(var("i"))),
                       input(0, var("i"))))));
    Stmts.push_back(accumValue(field("bias", indexList(intConst(0)))));
    return block(std::move(Stmts));
  };
  NeuronBodyFn Bwd = [](const NeuronContext &Ctx) {
    std::vector<StmtPtr> Stmts;
    // Back-propagated gradient.
    Stmts.push_back(
        forLoop("i", Ctx.inputLength(0),
                accumGradInput(0, var("i"),
                               mul(field("weights", indexList(var("i"))),
                                   grad()))));
    // Weight gradient.
    Stmts.push_back(
        forLoop("i", Ctx.inputLength(0),
                accumField("grad_weights", indexList(var("i")),
                           mul(input(0, var("i")), grad()))));
    // Bias gradient.
    Stmts.push_back(
        accumField("grad_bias", indexList(intConst(0)), grad()));
    return block(std::move(Stmts));
  };
  return NeuronType("WeightedNeuron", std::move(Fields), std::move(Fwd),
                    std::move(Bwd));
}

NeuronType core::makeMaxNeuronType() {
  using namespace dsl;
  NeuronBodyFn Fwd = [](const NeuronContext &Ctx) {
    std::vector<StmtPtr> Stmts;
    Stmts.push_back(
        decl("maxval", floatConst(-std::numeric_limits<double>::infinity())));
    Stmts.push_back(forLoop("i", Ctx.inputLength(0),
                            assignVar("maxval", AccumKind::MaxAssign,
                                      input(0, var("i")))));
    Stmts.push_back(setValue(var("maxval")));
    return block(std::move(Stmts));
  };
  NeuronBodyFn Bwd = [](const NeuronContext &Ctx) {
    // Route the gradient to every input equal to the max (ties share).
    return forLoop(
        "i", Ctx.inputLength(0),
        accumGradInput(0, var("i"),
                       ir::select(compare(CompareOpKind::EQ,
                                          input(0, var("i")), value()),
                                  grad(), floatConst(0.0))));
  };
  return NeuronType("MaxNeuron", {}, std::move(Fwd), std::move(Bwd));
}

NeuronType core::makeAvgNeuronType() {
  using namespace dsl;
  NeuronBodyFn Fwd = [](const NeuronContext &Ctx) {
    int64_t Len = Ctx.inputLength(0);
    std::vector<StmtPtr> Stmts;
    Stmts.push_back(forLoop("i", Len, accumValue(input(0, var("i")))));
    Stmts.push_back(setValue(
        mul(value(), floatConst(1.0 / static_cast<double>(Len)))));
    return block(std::move(Stmts));
  };
  NeuronBodyFn Bwd = [](const NeuronContext &Ctx) {
    int64_t Len = Ctx.inputLength(0);
    return forLoop(
        "i", Len,
        accumGradInput(0, var("i"),
                       mul(grad(),
                           floatConst(1.0 / static_cast<double>(Len)))));
  };
  return NeuronType("AvgNeuron", {}, std::move(Fwd), std::move(Bwd));
}

NeuronType core::makeReluNeuronType() {
  using namespace dsl;
  NeuronBodyFn Fwd = [](const NeuronContext &) {
    return setValue(ir::max(input(0, intConst(0)), floatConst(0.0)));
  };
  NeuronBodyFn Bwd = [](const NeuronContext &) {
    return accumGradInput(
        0, intConst(0),
        ir::select(compare(CompareOpKind::GT, value(), floatConst(0.0)),
                   grad(), floatConst(0.0)));
  };
  return NeuronType("ReluNeuron", {}, std::move(Fwd), std::move(Bwd));
}

NeuronType core::makeSigmoidNeuronType() {
  using namespace dsl;
  NeuronBodyFn Fwd = [](const NeuronContext &) {
    return setValue(sigmoid(input(0, intConst(0))));
  };
  NeuronBodyFn Bwd = [](const NeuronContext &) {
    // d sigmoid = value * (1 - value).
    return accumGradInput(
        0, intConst(0),
        mul(grad(), mul(value(), sub(floatConst(1.0), value()))));
  };
  return NeuronType("SigmoidNeuron", {}, std::move(Fwd), std::move(Bwd));
}

NeuronType core::makeTanhNeuronType() {
  using namespace dsl;
  NeuronBodyFn Fwd = [](const NeuronContext &) {
    return setValue(ir::tanh(input(0, intConst(0))));
  };
  NeuronBodyFn Bwd = [](const NeuronContext &) {
    return accumGradInput(
        0, intConst(0),
        mul(grad(), sub(floatConst(1.0), mul(value(), value()))));
  };
  return NeuronType("TanhNeuron", {}, std::move(Fwd), std::move(Bwd));
}

NeuronType core::makeSumNeuronType() {
  using namespace dsl;
  NeuronBodyFn Fwd = [](const NeuronContext &Ctx) {
    std::vector<StmtPtr> Stmts;
    for (int K = 0; K < Ctx.numInputs(); ++K)
      Stmts.push_back(forLoop("i", Ctx.inputLength(K),
                              accumValue(input(K, var("i")))));
    return block(std::move(Stmts));
  };
  NeuronBodyFn Bwd = [](const NeuronContext &Ctx) {
    std::vector<StmtPtr> Stmts;
    for (int K = 0; K < Ctx.numInputs(); ++K)
      Stmts.push_back(
          forLoop("i", Ctx.inputLength(K),
                  accumGradInput(K, var("i"), grad())));
    return block(std::move(Stmts));
  };
  return NeuronType("SumNeuron", {}, std::move(Fwd), std::move(Bwd));
}

NeuronType core::makeMulNeuronType() {
  using namespace dsl;
  NeuronBodyFn Fwd = [](const NeuronContext &Ctx) {
    assert(Ctx.numInputs() >= 1 && "MulNeuron needs at least one input");
    ExprPtr Product = input(0, intConst(0));
    for (int K = 1; K < Ctx.numInputs(); ++K)
      Product = mul(std::move(Product), input(K, intConst(0)));
    return setValue(std::move(Product));
  };
  NeuronBodyFn Bwd = [](const NeuronContext &Ctx) {
    std::vector<StmtPtr> Stmts;
    for (int K = 0; K < Ctx.numInputs(); ++K) {
      ExprPtr Others = grad();
      for (int J = 0; J < Ctx.numInputs(); ++J)
        if (J != K)
          Others = mul(std::move(Others), input(J, intConst(0)));
      Stmts.push_back(accumGradInput(K, intConst(0), std::move(Others)));
    }
    return block(std::move(Stmts));
  };
  return NeuronType("MulNeuron", {}, std::move(Fwd), std::move(Bwd));
}

NeuronType core::makeSubNeuronType() {
  using namespace dsl;
  NeuronBodyFn Fwd = [](const NeuronContext &Ctx) {
    assert(Ctx.numInputs() == 2 && "SubNeuron needs exactly two inputs");
    return setValue(sub(input(0, intConst(0)), input(1, intConst(0))));
  };
  NeuronBodyFn Bwd = [](const NeuronContext &) {
    std::vector<StmtPtr> Stmts;
    Stmts.push_back(accumGradInput(0, intConst(0), grad()));
    Stmts.push_back(
        accumGradInput(1, intConst(0), mul(grad(), floatConst(-1.0))));
    return block(std::move(Stmts));
  };
  return NeuronType("SubNeuron", {}, std::move(Fwd), std::move(Bwd));
}

NeuronType core::makeDotNeuronType(double Scale) {
  using namespace dsl;
  // Scale is folded into every accumulated term (rather than applied once
  // at the end) so the body stays a single accumulation loop the SoA
  // rewrite handles like any other reduction.
  auto Scaled = [Scale](ExprPtr E) -> ExprPtr {
    if (Scale == 1.0)
      return E;
    return mul(std::move(E), floatConst(Scale));
  };
  NeuronBodyFn Fwd = [Scaled](const NeuronContext &Ctx) {
    assert(Ctx.numInputs() == 2 &&
           Ctx.inputLength(0) == Ctx.inputLength(1) &&
           "DotNeuron needs two equal-length input windows");
    return forLoop("i", Ctx.inputLength(0),
                   accumValue(Scaled(
                       mul(input(0, var("i")), input(1, var("i"))))));
  };
  NeuronBodyFn Bwd = [Scaled](const NeuronContext &Ctx) {
    std::vector<StmtPtr> Stmts;
    Stmts.push_back(forLoop(
        "i", Ctx.inputLength(0),
        accumGradInput(0, var("i"),
                       Scaled(mul(grad(), input(1, var("i")))))));
    Stmts.push_back(forLoop(
        "i", Ctx.inputLength(1),
        accumGradInput(1, var("i"),
                       Scaled(mul(grad(), input(0, var("i")))))));
    return block(std::move(Stmts));
  };
  std::string Name = "DotNeuron";
  if (Scale != 1.0)
    Name += "@" + std::to_string(Scale);
  return NeuronType(std::move(Name), {}, std::move(Fwd), std::move(Bwd));
}

NeuronType core::makePReluNeuronType() {
  using namespace dsl;
  std::vector<FieldSpec> Fields = {
      {"slope", Shape{1}, /*IsParam=*/true, /*HasGrad=*/true, 1.0f},
  };
  NeuronBodyFn Fwd = [](const NeuronContext &) {
    ExprPtr In = input(0, intConst(0));
    return setValue(ir::select(
        compare(CompareOpKind::GT, input(0, intConst(0)), floatConst(0.0)),
        std::move(In),
        mul(field("slope", indexList(intConst(0))),
            input(0, intConst(0)))));
  };
  NeuronBodyFn Bwd = [](const NeuronContext &) {
    std::vector<StmtPtr> Stmts;
    Stmts.push_back(accumGradInput(
        0, intConst(0),
        mul(grad(),
            ir::select(compare(CompareOpKind::GT, input(0, intConst(0)),
                               floatConst(0.0)),
                       floatConst(1.0),
                       field("slope", indexList(intConst(0)))))));
    Stmts.push_back(accumField(
        "grad_slope", indexList(intConst(0)),
        mul(grad(),
            ir::select(compare(CompareOpKind::GT, input(0, intConst(0)),
                               floatConst(0.0)),
                       floatConst(0.0), input(0, intConst(0))))));
    return block(std::move(Stmts));
  };
  return NeuronType("PReluNeuron", std::move(Fields), std::move(Fwd),
                    std::move(Bwd));
}
