//===- core/graph.cpp -----------------------------------------*- C++ -*-===//

#include "core/graph.h"

#include "support/error.h"

#include <unordered_map>
#include <unordered_set>

using namespace latte;
using namespace latte::core;

const NeuronType *Net::registerType(NeuronType Type) {
  assert(!findType(Type.name()) && "neuron type name already registered");
  Types.push_back(std::make_unique<NeuronType>(std::move(Type)));
  return Types.back().get();
}

const NeuronType *Net::findType(const std::string &Name) const {
  for (const auto &T : Types)
    if (T->name() == Name)
      return T.get();
  return nullptr;
}

Ensemble *Net::addEnsemble(std::string Name, Shape Dims,
                           const NeuronType *Type, EnsembleKind Kind) {
  if (findEnsemble(Name))
    reportFatalError("ensemble '" + Name + "' already exists in the net");
  if (Kind == EnsembleKind::Standard && !Type)
    reportFatalError("standard ensemble '" + Name + "' needs a neuron type");
  Ensembles.push_back(
      std::make_unique<Ensemble>(std::move(Name), std::move(Dims), Type,
                                 Kind));
  return Ensembles.back().get();
}

Ensemble *Net::findEnsemble(const std::string &Name) const {
  for (const auto &E : Ensembles)
    if (E->name() == Name)
      return E.get();
  return nullptr;
}

void Net::addConnections(Ensemble *Source, Ensemble *Sink, MappingFn Mapping,
                         bool Recurrent) {
  assert(Source && Sink && "connections require both endpoints");
  assert(Mapping && "connections require a mapping function");
  Connection C;
  C.Source = Source;
  C.Mapping = std::move(Mapping);
  C.Recurrent = Recurrent;
  Sink->inputs().push_back(std::move(C));
}

std::vector<Ensemble *> Net::topologicalOrder() const {
  // Kahn's algorithm over non-recurrent edges, preserving insertion order
  // among ready nodes for determinism.
  std::unordered_map<const Ensemble *, int> PendingInputs;
  for (const auto &E : Ensembles) {
    int Count = 0;
    for (const Connection &C : E->inputs())
      if (!C.Recurrent)
        ++Count;
    PendingInputs[E.get()] = Count;
  }

  std::vector<Ensemble *> Order;
  Order.reserve(Ensembles.size());
  std::unordered_set<const Ensemble *> Emitted;
  bool Progress = true;
  while (Order.size() < Ensembles.size() && Progress) {
    Progress = false;
    for (const auto &E : Ensembles) {
      if (Emitted.count(E.get()) || PendingInputs[E.get()] != 0)
        continue;
      Order.push_back(E.get());
      Emitted.insert(E.get());
      Progress = true;
      // Release this ensemble's consumers.
      for (const auto &Other : Ensembles)
        for (const Connection &C : Other->inputs())
          if (!C.Recurrent && C.Source == E.get())
            --PendingInputs[Other.get()];
    }
  }
  if (Order.size() != Ensembles.size())
    reportFatalError("network contains a non-recurrent cycle; mark feedback "
                     "connections recurrent");
  return Order;
}

MappingFn core::fullyConnectedMapping(const Shape &SourceDims) {
  std::vector<Range> Box;
  Box.reserve(SourceDims.rank());
  for (int I = 0; I < SourceDims.rank(); ++I)
    Box.push_back({0, SourceDims[I]});
  return [Box](const std::vector<int64_t> &) { return Box; };
}

MappingFn core::oneToOneMapping() {
  return [](const std::vector<int64_t> &Sink) {
    std::vector<Range> Box;
    Box.reserve(Sink.size());
    for (int64_t I : Sink)
      Box.push_back({I, I + 1});
    return Box;
  };
}

MappingFn core::convWindowMapping(int64_t Channels, int64_t Kernel,
                                  int64_t Stride, int64_t Pad) {
  return [=](const std::vector<int64_t> &Sink) {
    assert(Sink.size() == 3 && "conv sink index must be (c_out, y, x)");
    int64_t InY = Sink[1] * Stride - Pad;
    int64_t InX = Sink[2] * Stride - Pad;
    return std::vector<Range>{
        {0, Channels}, {InY, InY + Kernel}, {InX, InX + Kernel}};
  };
}

MappingFn core::poolWindowMapping(int64_t Kernel, int64_t Stride,
                                  int64_t Pad) {
  return [=](const std::vector<int64_t> &Sink) {
    assert(Sink.size() == 3 && "pool sink index must be (c, y, x)");
    int64_t InY = Sink[1] * Stride - Pad;
    int64_t InX = Sink[2] * Stride - Pad;
    return std::vector<Range>{
        {Sink[0], Sink[0] + 1}, {InY, InY + Kernel}, {InX, InX + Kernel}};
  };
}
