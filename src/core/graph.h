//===- core/graph.h - Ensembles, connections, and the Net -----*- C++ -*-===//
///
/// \file
/// The paper's core language objects (§3): Ensemble (a homogeneous array of
/// neurons), Connection (a mapping function from a sink neuron's index to a
/// box of source neurons), and Net (the collection of connected ensembles).
///
/// Connections are *implicit adjacency lists* (§5.1): the graph never
/// materializes per-neuron edges; the compiler probes the mapping function
/// to recover structure (shared inputs, windows, one-to-one maps).
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_CORE_GRAPH_H
#define LATTE_CORE_GRAPH_H

#include "core/neuron_type.h"
#include "support/shape.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace latte {
namespace core {

/// Half-open index range [Begin, End) in one source dimension. Ranges may
/// extend outside the source extent; out-of-bounds positions read as zero
/// (convolution padding, Figure 5).
struct Range {
  int64_t Begin = 0;
  int64_t End = 0;

  int64_t size() const { return End - Begin; }
  bool operator==(const Range &O) const {
    return Begin == O.Begin && End == O.End;
  }
};

/// A mapping function: sink neuron index -> box of source indices
/// (one Range per source dimension). Must be pure; the compiler evaluates
/// it repeatedly during analysis.
using MappingFn =
    std::function<std::vector<Range>(const std::vector<int64_t> &)>;

class Ensemble;

/// A directed edge between ensembles.
struct Connection {
  Ensemble *Source = nullptr;
  MappingFn Mapping;
  bool Recurrent = false; ///< reads the previous timestep (excluded from
                          ///< topological ordering)
};

/// What kind of ensemble this is; drives synthesis decisions.
enum class EnsembleKind {
  Data,          ///< values provided externally (input images, labels)
  Standard,      ///< ordinary neuron ensemble
  Activation,    ///< in-place one-to-one activation (§3.2)
  Normalization, ///< array-level op; fusion barrier (§3.2, §5.5)
  Loss,          ///< produces the training loss (a Normalization variant)
};

/// Array-level operations a NormalizationEnsemble may perform.
enum class NormOpKind {
  None,
  Softmax,     ///< softmax over the feature dimension
  SoftmaxLoss, ///< fused softmax + cross-entropy against a label ensemble
  Lrn,         ///< local response normalization across channels
  Dropout,     ///< multiplicative dropout mask (params: {keep probability})
};

/// Parameter-initialization policy for a field.
enum class FieldInitKind { Zero, Constant, Xavier, Gaussian };

/// Per-ensemble storage description of one neuron field. Weight sharing
/// (convolution filters) is expressed by Map: several neurons whose Map
/// yields the same storage index share the same field memory — the
/// shared-variable analysis discovers along which dimensions this happens.
struct FieldStorage {
  Shape StorageDims; ///< neuron-index part of the storage shape
  Shape ElemDims;    ///< per-neuron element shape of the field
  /// neuron index -> storage index (size = StorageDims.rank()); identity
  /// when null.
  std::function<std::vector<int64_t>(const std::vector<int64_t> &)> Map;
  FieldInitKind Init = FieldInitKind::Zero;
  float InitValue = 0.0f; ///< for Constant / Gaussian stddev
  int64_t FanIn = 0;      ///< for Xavier
  float LrMult = 1.0f;
  /// When non-empty, this field's storage (and its gradient) aliases the
  /// same-named field of the given ensemble — cross-timestep weight tying
  /// for unrolled recurrent networks. The owning ensemble holds the solver
  /// binding; gradients accumulate across all sharers.
  std::string ShareWithEnsemble;
};

/// A homogeneous collection of neurons (§3.2).
class Ensemble {
public:
  Ensemble(std::string Name, Shape Dims, const NeuronType *Type,
           EnsembleKind Kind)
      : Name(std::move(Name)), Dims(std::move(Dims)), Type(Type), Kind(Kind) {
  }

  const std::string &name() const { return Name; }
  const Shape &dims() const { return Dims; }
  int64_t numNeurons() const { return Dims.numElements(); }
  const NeuronType *type() const { return Type; }
  EnsembleKind kind() const { return Kind; }

  const std::vector<Connection> &inputs() const { return Inputs; }
  std::vector<Connection> &inputs() { return Inputs; }

  /// Declares storage for field \p FieldName (must exist on the neuron
  /// type, unless it is an auto-declared grad_ field).
  void setFieldStorage(const std::string &FieldName, FieldStorage Storage) {
    FieldStorages[FieldName] = std::move(Storage);
  }
  const FieldStorage *findFieldStorage(const std::string &FieldName) const {
    auto It = FieldStorages.find(FieldName);
    return It == FieldStorages.end() ? nullptr : &It->second;
  }
  const std::unordered_map<std::string, FieldStorage> &fieldStorages() const {
    return FieldStorages;
  }

  // Normalization configuration (meaningful when Kind is Normalization or
  // Loss).
  NormOpKind normOp() const { return NormOp; }
  void setNormOp(NormOpKind Op) { NormOp = Op; }
  const std::vector<double> &normParams() const { return NormParams; }
  void setNormParams(std::vector<double> P) { NormParams = std::move(P); }
  /// Label source for SoftmaxLoss.
  Ensemble *labelSource() const { return LabelSource; }
  void setLabelSource(Ensemble *E) { LabelSource = E; }

  // Buffer naming scheme used by the compiler and engine.
  std::string valueBuffer() const { return Name + "_value"; }
  std::string gradBuffer() const { return Name + "_grad"; }
  std::string inputBuffer(int K) const {
    return Name + "_inputs" + std::to_string(K);
  }
  std::string gradInputBuffer(int K) const {
    return Name + "_grad_inputs" + std::to_string(K);
  }
  std::string fieldBuffer(const std::string &FieldName) const {
    return Name + "_" + FieldName;
  }

private:
  std::string Name;
  Shape Dims;
  const NeuronType *Type;
  EnsembleKind Kind;
  std::vector<Connection> Inputs;
  std::unordered_map<std::string, FieldStorage> FieldStorages;
  NormOpKind NormOp = NormOpKind::None;
  std::vector<double> NormParams;
  Ensemble *LabelSource = nullptr;
};

/// The network: owns neuron types and ensembles; records connections
/// (paper's add_connections, §3.3).
class Net {
public:
  explicit Net(int64_t BatchSize) : BatchSize(BatchSize) {
    assert(BatchSize > 0 && "batch size must be positive");
  }

  int64_t batchSize() const { return BatchSize; }

  /// Takes ownership of a neuron type; returns a stable pointer.
  const NeuronType *registerType(NeuronType Type);

  /// Returns an already registered type by name, or null.
  const NeuronType *findType(const std::string &Name) const;

  /// Creates an ensemble. Names must be unique within the net.
  Ensemble *addEnsemble(std::string Name, Shape Dims, const NeuronType *Type,
                        EnsembleKind Kind = EnsembleKind::Standard);

  Ensemble *findEnsemble(const std::string &Name) const;

  /// Connects \p Source to \p Sink with \p Mapping (paper §3.3). Recurrent
  /// connections feed the previous timestep and do not create ordering
  /// constraints.
  void addConnections(Ensemble *Source, Ensemble *Sink, MappingFn Mapping,
                      bool Recurrent = false);

  const std::vector<std::unique_ptr<Ensemble>> &ensembles() const {
    return Ensembles;
  }

  /// Ensembles in dependency order (ignoring recurrent edges). Fatal error
  /// on a non-recurrent cycle.
  std::vector<Ensemble *> topologicalOrder() const;

private:
  int64_t BatchSize;
  std::vector<std::unique_ptr<NeuronType>> Types;
  std::vector<std::unique_ptr<Ensemble>> Ensembles;
};

/// Convenience mappings.
/// All-to-all: every sink neuron sees the whole source (FC layers).
MappingFn fullyConnectedMapping(const Shape &SourceDims);
/// One-to-one: sink neuron (i...) reads source neuron (i...). Shapes must
/// match; the window has a single element.
MappingFn oneToOneMapping();
/// Spatial window over a CHW source for sink index (c_out, y, x):
/// all channels x KernelH x KernelW window at stride/pad (Figure 5).
MappingFn convWindowMapping(int64_t Channels, int64_t Kernel, int64_t Stride,
                            int64_t Pad);
/// Non-overlapping (or strided) pooling window over a CHW source for sink
/// index (c, y, x): single channel c, KernelxKernel window.
MappingFn poolWindowMapping(int64_t Kernel, int64_t Stride, int64_t Pad);

} // namespace core
} // namespace latte

#endif // LATTE_CORE_GRAPH_H
