//===- core/neuron_type.h - User-defined neuron types ----------*- C++ -*-===//
///
/// \file
/// The C++ rendering of the paper's `@neuron` construct (§3.1, Figure 3).
/// A NeuronType bundles per-neuron state fields with forward and backward
/// functions. The functions are written against a small surface vocabulary
/// of reserved buffers:
///
///   @value        the neuron's output activation (scalar)
///   @grad         the gradient flowing into this neuron (scalar, ∇)
///   @input<k>     flattened window of input activations of connection k
///   @gradinput<k> gradient to propagate to connection k's sources (∇inputs)
///   @field:<f>    a user-declared field (e.g. weights, bias)
///
/// Because the lengths of input windows depend on the connections an
/// ensemble ends up with, forward/backward are *generators*: functions from
/// a NeuronContext (window lengths, field shapes) to an IR statement. The
/// synthesis phase instantiates them once per ensemble — this mirrors how
/// the Julia implementation specializes the neuron function per ensemble.
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_CORE_NEURON_TYPE_H
#define LATTE_CORE_NEURON_TYPE_H

#include "ir/builder.h"
#include "support/shape.h"

#include <functional>
#include <string>
#include <vector>

namespace latte {
namespace core {

/// One per-neuron state field (paper: the extra fields of a Neuron
/// sub-type).
struct FieldSpec {
  std::string Name;
  Shape Dims;          ///< shape of the field per neuron ({} = scalar)
  bool IsParam = false; ///< learnable parameter (solver updates it)
  bool HasGrad = false; ///< a ∇-field is synthesized alongside it
  float LrMult = 1.0f; ///< per-parameter learning-rate multiplier
};

/// Everything a neuron function generator may depend on.
struct NeuronContext {
  /// Flattened window length of each input connection.
  std::vector<int64_t> InputLengths;

  int64_t inputLength(int K) const {
    assert(K >= 0 && K < static_cast<int>(InputLengths.size()) &&
           "input connection index out of range");
    return InputLengths[K];
  }
  int numInputs() const { return static_cast<int>(InputLengths.size()); }
};

using NeuronBodyFn = std::function<ir::StmtPtr(const NeuronContext &)>;

/// A neuron type: fields plus forward/backward generators. Instances are
/// owned by the Net and shared by ensembles.
class NeuronType {
public:
  NeuronType(std::string Name, std::vector<FieldSpec> Fields,
             NeuronBodyFn Forward, NeuronBodyFn Backward)
      : Name(std::move(Name)), Fields(std::move(Fields)),
        Forward(std::move(Forward)), Backward(std::move(Backward)) {}

  const std::string &name() const { return Name; }
  const std::vector<FieldSpec> &fields() const { return Fields; }

  const FieldSpec *findField(const std::string &FieldName) const {
    for (const FieldSpec &F : Fields)
      if (F.Name == FieldName)
        return &F;
    return nullptr;
  }

  /// True when the forward function accumulates into @value (and therefore
  /// the value buffer must be zeroed before each forward pass).
  bool forwardAccumulates(const NeuronContext &Ctx) const;

  ir::StmtPtr makeForward(const NeuronContext &Ctx) const {
    return Forward(Ctx);
  }
  ir::StmtPtr makeBackward(const NeuronContext &Ctx) const {
    return Backward ? Backward(Ctx) : nullptr;
  }
  bool hasBackward() const { return static_cast<bool>(Backward); }

private:
  std::string Name;
  std::vector<FieldSpec> Fields;
  NeuronBodyFn Forward;
  NeuronBodyFn Backward;
};

/// Reserved buffer names used inside neuron functions.
namespace dsl {

inline std::string valueBuf() { return "@value"; }
inline std::string gradBuf() { return "@grad"; }
inline std::string inputBuf(int K) { return "@input" + std::to_string(K); }
inline std::string gradInputBuf(int K) {
  return "@gradinput" + std::to_string(K);
}
inline std::string fieldBuf(const std::string &Name) {
  return "@field:" + Name;
}

/// True for @field:<name> references; extracts the field name.
bool isFieldBuf(const std::string &Buffer, std::string &FieldName);
/// True for @input<k> / @gradinput<k>; extracts k.
bool isInputBuf(const std::string &Buffer, int &K);
bool isGradInputBuf(const std::string &Buffer, int &K);

// --- expression helpers -------------------------------------------------

/// The neuron's output value.
inline ir::ExprPtr value() { return ir::load(valueBuf(), {}); }
/// The gradient arriving at the neuron (∇).
inline ir::ExprPtr grad() { return ir::load(gradBuf(), {}); }
/// Element \p I of the flattened input window of connection \p K.
inline ir::ExprPtr input(int K, ir::ExprPtr I) {
  return ir::load(inputBuf(K), ir::indexList(std::move(I)));
}
/// A field element.
inline ir::ExprPtr field(const std::string &Name,
                         std::vector<ir::ExprPtr> Indices = {}) {
  return ir::load(fieldBuf(Name), std::move(Indices));
}

// --- statement helpers ---------------------------------------------------

inline ir::StmtPtr setValue(ir::ExprPtr V) {
  return ir::storeAssign(valueBuf(), {}, std::move(V));
}
inline ir::StmtPtr accumValue(ir::ExprPtr V) {
  return ir::storeAdd(valueBuf(), {}, std::move(V));
}
inline ir::StmtPtr accumGradInput(int K, ir::ExprPtr I, ir::ExprPtr V) {
  return ir::storeAdd(gradInputBuf(K), ir::indexList(std::move(I)),
                      std::move(V));
}
inline ir::StmtPtr accumField(const std::string &Name,
                              std::vector<ir::ExprPtr> Indices,
                              ir::ExprPtr V) {
  return ir::storeAdd(fieldBuf(Name), std::move(Indices), std::move(V));
}
inline ir::StmtPtr setField(const std::string &Name,
                            std::vector<ir::ExprPtr> Indices, ir::ExprPtr V) {
  return ir::storeAssign(fieldBuf(Name), std::move(Indices), std::move(V));
}

} // namespace dsl

/// The built-in neuron types of the Latte standard library (§4).
/// WeightedNeuron computes a dot product of inputs and weights plus bias
/// (Figure 3); the returned object has fields weights[len], bias[1].
NeuronType makeWeightedNeuronType();
/// Max neuron: value = max over the input window (pooling layers).
NeuronType makeMaxNeuronType();
/// Average neuron: value = mean of the input window.
NeuronType makeAvgNeuronType();
/// ReLU neuron: value = max(input, 0); one-to-one connection expected.
NeuronType makeReluNeuronType();
/// Sigmoid / Tanh neurons (one-to-one).
NeuronType makeSigmoidNeuronType();
NeuronType makeTanhNeuronType();
/// Sum neuron: value = sum of all inputs of every connection (used by
/// elementwise-add ensembles, e.g. LSTM gate preactivations).
NeuronType makeSumNeuronType();
/// Product neuron: value = product over connections of their (single)
/// input (elementwise multiply, LSTM gating).
NeuronType makeMulNeuronType();
/// Difference neuron: value = input0 - input1 (exactly two one-to-one
/// connections; used by the GRU interpolation step).
NeuronType makeSubNeuronType();
/// Dot-product neuron: value = Scale * sum_i input0[i] * input1[i] over two
/// equal-length input windows — the pairwise interaction of attention
/// score and readout ensembles (scaled dot-product attention). No pattern
/// matcher recognizes it, so it always lowers through the interpreted SoA
/// path: the first non-affine connection pattern in the tree. The type
/// name encodes the scale ("DotNeuron" at 1.0, "DotNeuron@<scale>"
/// otherwise) so differently-scaled instances coexist in one Net registry.
NeuronType makeDotNeuronType(double Scale = 1.0);
/// PReLU neuron with a learnable slope parameter (He et al.), provided as
/// the paper's example of a researcher-defined novel layer.
NeuronType makePReluNeuronType();

} // namespace core
} // namespace latte

#endif // LATTE_CORE_NEURON_TYPE_H
