//===- models/models.h - Evaluation network architectures -----*- C++ -*-===//
///
/// \file
/// The network topologies of the paper's evaluation (§7): AlexNet
/// (Krizhevsky et al.), VGG model A (Simonyan & Zisserman; the
/// convnet-benchmarks configuration the paper cites, whose groups 1-4 the
/// Figure 15 breakdown refers to), OverFeat (fast model), plus VGG-16, a
/// LeNet-style MNIST net, and MLPs. A ModelSpec is a front-end-neutral
/// description that builders lower onto Latte, the Caffe baseline, or the
/// Mocha baseline — guaranteeing all three systems run the *same* network.
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_MODELS_MODELS_H
#define LATTE_MODELS_MODELS_H

#include "baselines/caffe/caffe.h"
#include "core/graph.h"

#include <cstdint>
#include <string>
#include <vector>

namespace latte {
namespace models {

/// One node of a graph-structured model description. The historical flat
/// CNN/MLP form is the degenerate graph: every node leaves \p Inputs empty
/// and implicitly consumes the previous node's output. Graph nodes name
/// their inputs explicitly ("data" is the network input), which admits
/// multi-input nodes (elementwise combine, recurrent cells over per-
/// timestep slices) and weight-sharing groups (\p ShareWith).
struct LayerSpec {
  enum class Kind {
    // Flat CNN/MLP kinds (both baselines lower these).
    Conv,
    MaxPool,
    AvgPool,
    Relu,
    Tanh,
    Fc,
    Dropout,
    // Graph-structured kinds (Latte only; baselines reject them).
    Sigmoid,
    Add,       ///< elementwise sum of all Inputs
    Mul,       ///< elementwise product of two Inputs
    Sub,       ///< elementwise difference of two Inputs
    Slice,     ///< row TimeIndex of a (T, F) sequence input -> {F}
    Stack,     ///< broadcast a {F} input into a (Filters, F) sequence
    Lstm,      ///< unrolled LSTM over per-timestep Inputs; Filters = hidden
    Gru,       ///< unrolled GRU over per-timestep Inputs; Filters = hidden
    Attention, ///< single-head attention over a (T, F) input; Filters = D
  };
  Kind K = Kind::Conv;
  std::string Name;
  /// Named inputs (graph edges). Empty means "the previous node's output"
  /// — flat specs never set this. "data" names the network input.
  std::vector<std::string> Inputs;
  /// Fc only: tie weights and bias to the same-named fields of this
  /// earlier Fc node (an explicit weight-sharing group). Shared layers
  /// contribute no parameters of their own.
  std::string ShareWith;
  int64_t Filters = 0; ///< Conv channels; Fc outputs; Lstm/Gru hidden
                       ///< width; Attention model dim; Stack timesteps
  int64_t Kernel = 0;
  int64_t Stride = 1;
  int64_t Pad = 0;
  int64_t TimeIndex = 0; ///< Slice: which timestep row to extract
  double KeepProb = 0.5; ///< Dropout
};

struct ModelSpec {
  std::string Name;
  Shape InputDims; ///< per item, e.g. (3, 227, 227) or (T, F) sequences
  int64_t NumClasses = 1000;
  /// Nodes in topological order (inputs precede consumers).
  std::vector<LayerSpec> Layers;
};

/// One row of the shape/parameter audit.
struct LayerAudit {
  std::string Name;
  Shape OutDims;
  int64_t Params = 0;
};

/// Computes per-layer output shapes and parameter counts (including the
/// final classifier FC layer) without building any network.
std::vector<LayerAudit> auditSpec(const ModelSpec &Spec);

/// Total learnable parameters of the spec.
int64_t countParams(const ModelSpec &Spec);

// --- the paper's models ---------------------------------------------------

/// AlexNet, standard single-tower configuration (227x227 input; LRN
/// omitted as in the convnet-benchmarks configurations the paper used).
/// \p SpatialScale shrinks the input resolution for benchmarking on small
/// machines (1.0 = full size).
ModelSpec alexNet(double SpatialScale = 1.0);

/// VGG model A / VGG-11 (the "VGG" of the paper's evaluation).
ModelSpec vggA(double SpatialScale = 1.0);

/// VGG-16 (model D), provided for completeness.
ModelSpec vgg16(double SpatialScale = 1.0);

/// OverFeat fast model (231x231 input).
ModelSpec overfeat(double SpatialScale = 1.0);

/// The Figure 13 microbenchmark: the first three layers of VGG
/// (conv3-64 + ReLU + 2x2 max pool).
ModelSpec vggFirstThreeLayers(double SpatialScale = 1.0,
                              int64_t InputChannels = 3);

/// Group \p G (1-4) of VGG model A: its convolutions + ReLUs + pool, taking
/// the group's natural input shape (Figure 15).
ModelSpec vggGroup(int G, double SpatialScale = 1.0);

/// LeNet-style MNIST network (28x28 grayscale, 10 classes) used for the
/// Figure 20 accuracy experiment.
ModelSpec lenet();

/// Multi-layer perceptron over flat inputs (Figure 7 uses 2 FC layers).
ModelSpec mlp(int64_t InputSize, std::vector<int64_t> HiddenWidths,
              int64_t NumClasses);

// --- sequence models (graph-structured specs) -----------------------------

/// Time-unrolled LSTM classifier over a (Timesteps, Features) sequence
/// input: per-timestep Slice nodes feed one LSTM block whose gate weights
/// are tied across timesteps; the final hidden state is classified.
ModelSpec lstmClassifier(int64_t Timesteps = 3, int64_t Features = 6,
                         int64_t Hidden = 5, int64_t NumClasses = 4);

/// GRU variant of lstmClassifier.
ModelSpec gruClassifier(int64_t Timesteps = 3, int64_t Features = 6,
                        int64_t Hidden = 5, int64_t NumClasses = 4);

/// Single-head scaled dot-product attention over a (Timesteps, Features)
/// sequence: shared Q/K/V projections, softmax over keys, weighted-sum
/// readout, then a classifier over the flattened (T, ModelDim) context.
ModelSpec attentionClassifier(int64_t Timesteps = 4, int64_t Features = 6,
                              int64_t ModelDim = 5, int64_t NumClasses = 4);

// --- builders ---------------------------------------------------------------

/// Builds the spec as a Latte network. When \p WithLoss is true, appends
/// label + SoftmaxLoss ensembles; otherwise the last layer's ensemble is
/// the network output. Returns the output ensemble.
core::Ensemble *buildLatte(core::Net &Net, const ModelSpec &Spec,
                           bool WithLoss);

/// Builds the spec in the Caffe baseline (optimized layer library).
/// Graph-structured nodes (explicit Inputs, ShareWith, sequence kinds)
/// are rejected with a fatal error — the baselines exist for same-network
/// comparison of the flat CNN/MLP suite only.
void buildCaffe(caffe::CaffeNet &Net, const ModelSpec &Spec, bool WithLoss);

/// Builds the spec in the Mocha baseline (naive layers). Dropout and Tanh
/// specs are unsupported there and rejected, as are all graph-structured
/// nodes (see buildCaffe).
void buildMocha(caffe::CaffeNet &Net, const ModelSpec &Spec, bool WithLoss);

} // namespace models
} // namespace latte

#endif // LATTE_MODELS_MODELS_H
