//===- models/models.cpp --------------------------------------*- C++ -*-===//

#include "models/models.h"

#include "baselines/mocha/mocha.h"
#include "core/layers/layers.h"
#include "support/error.h"

#include <cmath>

using namespace latte;
using namespace latte::models;

namespace {

LayerSpec conv(std::string Name, int64_t Filters, int64_t Kernel,
               int64_t Stride, int64_t Pad) {
  LayerSpec L;
  L.K = LayerSpec::Kind::Conv;
  L.Name = std::move(Name);
  L.Filters = Filters;
  L.Kernel = Kernel;
  L.Stride = Stride;
  L.Pad = Pad;
  return L;
}

LayerSpec pool(std::string Name, int64_t Kernel, int64_t Stride,
               int64_t Pad = 0) {
  LayerSpec L;
  L.K = LayerSpec::Kind::MaxPool;
  L.Name = std::move(Name);
  L.Kernel = Kernel;
  L.Stride = Stride;
  L.Pad = Pad;
  return L;
}

LayerSpec relu(std::string Name) {
  LayerSpec L;
  L.K = LayerSpec::Kind::Relu;
  L.Name = std::move(Name);
  return L;
}

LayerSpec tanhL(std::string Name) {
  LayerSpec L;
  L.K = LayerSpec::Kind::Tanh;
  L.Name = std::move(Name);
  return L;
}

LayerSpec fc(std::string Name, int64_t Outputs) {
  LayerSpec L;
  L.K = LayerSpec::Kind::Fc;
  L.Name = std::move(Name);
  L.Filters = Outputs;
  return L;
}

[[maybe_unused]] LayerSpec dropout(std::string Name, double Keep) {
  LayerSpec L;
  L.K = LayerSpec::Kind::Dropout;
  L.Name = std::move(Name);
  L.KeepProb = Keep;
  return L;
}

int64_t scaled(int64_t Extent, double Scale) {
  int64_t S = static_cast<int64_t>(std::llround(Extent * Scale));
  return S < 1 ? 1 : S;
}

} // namespace

std::vector<LayerAudit> models::auditSpec(const ModelSpec &Spec) {
  std::vector<LayerAudit> Audit;
  Shape Cur = Spec.InputDims;
  auto OutSpatial = [](int64_t In, int64_t K, int64_t S, int64_t P) {
    int64_t Out = (In + 2 * P - K) / S + 1;
    if (Out <= 0)
      reportFatalError("layer output collapses to zero; the spatial scale "
                       "is too small for this architecture");
    return Out;
  };
  for (const LayerSpec &L : Spec.Layers) {
    LayerAudit Row;
    Row.Name = L.Name;
    switch (L.K) {
    case LayerSpec::Kind::Conv: {
      assert(Cur.rank() == 3 && "conv input must be (C, H, W)");
      int64_t OutH = OutSpatial(Cur[1], L.Kernel, L.Stride, L.Pad);
      int64_t OutW = OutSpatial(Cur[2], L.Kernel, L.Stride, L.Pad);
      Row.Params = L.Filters * (Cur[0] * L.Kernel * L.Kernel + 1);
      Cur = Shape{L.Filters, OutH, OutW};
      break;
    }
    case LayerSpec::Kind::MaxPool:
    case LayerSpec::Kind::AvgPool: {
      int64_t OutH = OutSpatial(Cur[1], L.Kernel, L.Stride, L.Pad);
      int64_t OutW = OutSpatial(Cur[2], L.Kernel, L.Stride, L.Pad);
      Cur = Shape{Cur[0], OutH, OutW};
      break;
    }
    case LayerSpec::Kind::Relu:
    case LayerSpec::Kind::Tanh:
    case LayerSpec::Kind::Dropout:
      break;
    case LayerSpec::Kind::Fc:
      Row.Params = L.Filters * (Cur.numElements() + 1);
      Cur = Shape{L.Filters};
      break;
    }
    Row.OutDims = Cur;
    Audit.push_back(std::move(Row));
  }
  // Final classifier.
  LayerAudit Cls;
  Cls.Name = "classifier";
  Cls.Params = Spec.NumClasses * (Cur.numElements() + 1);
  Cls.OutDims = Shape{Spec.NumClasses};
  Audit.push_back(std::move(Cls));
  return Audit;
}

int64_t models::countParams(const ModelSpec &Spec) {
  int64_t Total = 0;
  for (const LayerAudit &Row : auditSpec(Spec))
    Total += Row.Params;
  return Total;
}

ModelSpec models::alexNet(double Scale) {
  ModelSpec Spec;
  Spec.Name = "AlexNet";
  Spec.InputDims = Shape{3, scaled(227, Scale), scaled(227, Scale)};
  Spec.NumClasses = 1000;
  Spec.Layers = {
      conv("conv1", 96, 11, 4, 0), relu("relu1"), pool("pool1", 3, 2),
      conv("conv2", 256, 5, 1, 2), relu("relu2"), pool("pool2", 3, 2),
      conv("conv3", 384, 3, 1, 1), relu("relu3"),
      conv("conv4", 384, 3, 1, 1), relu("relu4"),
      conv("conv5", 256, 3, 1, 1), relu("relu5"), pool("pool5", 3, 2),
      fc("fc6", 4096),             relu("relu6"),
      fc("fc7", 4096),             relu("relu7"),
  };
  return Spec;
}

ModelSpec models::vggA(double Scale) {
  ModelSpec Spec;
  Spec.Name = "VGG";
  Spec.InputDims = Shape{3, scaled(224, Scale), scaled(224, Scale)};
  Spec.NumClasses = 1000;
  Spec.Layers = {
      // Group 1
      conv("conv1_1", 64, 3, 1, 1), relu("relu1_1"), pool("pool1", 2, 2),
      // Group 2
      conv("conv2_1", 128, 3, 1, 1), relu("relu2_1"), pool("pool2", 2, 2),
      // Group 3 (two convolutions)
      conv("conv3_1", 256, 3, 1, 1), relu("relu3_1"),
      conv("conv3_2", 256, 3, 1, 1), relu("relu3_2"), pool("pool3", 2, 2),
      // Group 4 (two convolutions; the paper's fusion-limited case)
      conv("conv4_1", 512, 3, 1, 1), relu("relu4_1"),
      conv("conv4_2", 512, 3, 1, 1), relu("relu4_2"), pool("pool4", 2, 2),
      // Group 5
      conv("conv5_1", 512, 3, 1, 1), relu("relu5_1"),
      conv("conv5_2", 512, 3, 1, 1), relu("relu5_2"), pool("pool5", 2, 2),
      fc("fc6", 4096), relu("relu6"),
      fc("fc7", 4096), relu("relu7"),
  };
  return Spec;
}

ModelSpec models::vgg16(double Scale) {
  ModelSpec Spec;
  Spec.Name = "VGG-16";
  Spec.InputDims = Shape{3, scaled(224, Scale), scaled(224, Scale)};
  Spec.NumClasses = 1000;
  auto Block = [&](int G, int Convs, int64_t Filters) {
    for (int I = 1; I <= Convs; ++I) {
      std::string N =
          "conv" + std::to_string(G) + "_" + std::to_string(I);
      Spec.Layers.push_back(conv(N, Filters, 3, 1, 1));
      Spec.Layers.push_back(relu("relu" + std::to_string(G) + "_" +
                                 std::to_string(I)));
    }
    Spec.Layers.push_back(pool("pool" + std::to_string(G), 2, 2));
  };
  Block(1, 2, 64);
  Block(2, 2, 128);
  Block(3, 3, 256);
  Block(4, 3, 512);
  Block(5, 3, 512);
  Spec.Layers.push_back(fc("fc6", 4096));
  Spec.Layers.push_back(relu("relu6"));
  Spec.Layers.push_back(fc("fc7", 4096));
  Spec.Layers.push_back(relu("relu7"));
  return Spec;
}

ModelSpec models::overfeat(double Scale) {
  ModelSpec Spec;
  Spec.Name = "OverFeat";
  Spec.InputDims = Shape{3, scaled(231, Scale), scaled(231, Scale)};
  Spec.NumClasses = 1000;
  Spec.Layers = {
      conv("conv1", 96, 11, 4, 0),   relu("relu1"), pool("pool1", 2, 2),
      conv("conv2", 256, 5, 1, 0),   relu("relu2"), pool("pool2", 2, 2),
      conv("conv3", 512, 3, 1, 1),   relu("relu3"),
      conv("conv4", 1024, 3, 1, 1),  relu("relu4"),
      conv("conv5", 1024, 3, 1, 1),  relu("relu5"), pool("pool5", 2, 2),
      fc("fc6", 3072),               relu("relu6"),
      fc("fc7", 4096),               relu("relu7"),
  };
  return Spec;
}

ModelSpec models::vggFirstThreeLayers(double Scale, int64_t InputChannels) {
  ModelSpec Spec;
  Spec.Name = "VGG-first-3";
  Spec.InputDims =
      Shape{InputChannels, scaled(224, Scale), scaled(224, Scale)};
  Spec.NumClasses = 10;
  Spec.Layers = {conv("conv1_1", 64, 3, 1, 1), relu("relu1_1"),
                 pool("pool1", 2, 2)};
  return Spec;
}

ModelSpec models::vggGroup(int G, double Scale) {
  assert(G >= 1 && G <= 4 && "VGG group index must be 1-4");
  // Natural input of group G of VGG model A at 224 input.
  static const int64_t Channels[] = {3, 64, 128, 256};
  static const int64_t Spatial[] = {224, 112, 56, 28};
  static const int64_t Filters[] = {64, 128, 256, 512};
  ModelSpec Spec;
  Spec.Name = "VGG-group" + std::to_string(G);
  Spec.InputDims = Shape{Channels[G - 1], scaled(Spatial[G - 1], Scale),
                         scaled(Spatial[G - 1], Scale)};
  Spec.NumClasses = 10;
  int Convs = G >= 3 ? 2 : 1;
  for (int I = 1; I <= Convs; ++I) {
    std::string N = "conv" + std::to_string(G) + "_" + std::to_string(I);
    Spec.Layers.push_back(conv(N, Filters[G - 1], 3, 1, 1));
    Spec.Layers.push_back(relu("relu" + std::to_string(G) + "_" +
                               std::to_string(I)));
  }
  Spec.Layers.push_back(pool("pool" + std::to_string(G), 2, 2));
  return Spec;
}

ModelSpec models::lenet() {
  ModelSpec Spec;
  Spec.Name = "LeNet";
  Spec.InputDims = Shape{1, 28, 28};
  Spec.NumClasses = 10;
  Spec.Layers = {
      conv("conv1", 20, 5, 1, 0), pool("pool1", 2, 2),
      conv("conv2", 50, 5, 1, 0), pool("pool2", 2, 2),
      fc("fc1", 500),             relu("relu1"),
  };
  return Spec;
}

ModelSpec models::mlp(int64_t InputSize, std::vector<int64_t> HiddenWidths,
                      int64_t NumClasses) {
  ModelSpec Spec;
  Spec.Name = "MLP";
  Spec.InputDims = Shape{InputSize};
  Spec.NumClasses = NumClasses;
  for (size_t I = 0; I < HiddenWidths.size(); ++I) {
    Spec.Layers.push_back(
        fc("ip" + std::to_string(I + 1), HiddenWidths[I]));
    Spec.Layers.push_back(tanhL("tanh" + std::to_string(I + 1)));
  }
  return Spec;
}

core::Ensemble *models::buildLatte(core::Net &Net, const ModelSpec &Spec,
                                   bool WithLoss) {
  using namespace latte::layers;
  core::Ensemble *Cur = DataLayer(Net, "data", Spec.InputDims);
  for (const LayerSpec &L : Spec.Layers) {
    switch (L.K) {
    case LayerSpec::Kind::Conv:
      Cur = ConvolutionLayer(Net, L.Name, Cur, L.Filters, L.Kernel, L.Stride,
                             L.Pad);
      break;
    case LayerSpec::Kind::MaxPool:
      Cur = MaxPoolingLayer(Net, L.Name, Cur, L.Kernel, L.Stride, L.Pad);
      break;
    case LayerSpec::Kind::AvgPool:
      Cur = AvgPoolingLayer(Net, L.Name, Cur, L.Kernel, L.Stride, L.Pad);
      break;
    case LayerSpec::Kind::Relu:
      Cur = ReluLayer(Net, L.Name, Cur);
      break;
    case LayerSpec::Kind::Tanh:
      Cur = TanhLayer(Net, L.Name, Cur);
      break;
    case LayerSpec::Kind::Fc:
      Cur = FullyConnectedLayer(Net, L.Name, Cur, L.Filters);
      break;
    case LayerSpec::Kind::Dropout:
      Cur = DropoutLayer(Net, L.Name, Cur, L.KeepProb);
      break;
    }
  }
  Cur = FullyConnectedLayer(Net, "classifier", Cur, Spec.NumClasses);
  if (!WithLoss)
    return Cur;
  core::Ensemble *Labels = LabelLayer(Net, "labels");
  return SoftmaxLossLayer(Net, "loss", Cur, Labels);
}

void models::buildCaffe(caffe::CaffeNet &Net, const ModelSpec &Spec,
                        bool WithLoss) {
  using namespace latte::caffe;
  Net.setInputShape(Spec.InputDims);
  for (const LayerSpec &L : Spec.Layers) {
    switch (L.K) {
    case LayerSpec::Kind::Conv:
      Net.addLayer(std::make_unique<ConvolutionLayer>(L.Name, L.Filters,
                                                      L.Kernel, L.Stride,
                                                      L.Pad));
      break;
    case LayerSpec::Kind::MaxPool:
      Net.addLayer(std::make_unique<PoolingLayer>(
          L.Name, PoolingLayer::Mode::Max, L.Kernel, L.Stride, L.Pad));
      break;
    case LayerSpec::Kind::AvgPool:
      Net.addLayer(std::make_unique<PoolingLayer>(
          L.Name, PoolingLayer::Mode::Avg, L.Kernel, L.Stride, L.Pad));
      break;
    case LayerSpec::Kind::Relu:
      Net.addLayer(std::make_unique<ReluLayer>(L.Name));
      break;
    case LayerSpec::Kind::Tanh:
    case LayerSpec::Kind::Dropout:
      reportFatalError("layer kind unsupported by the Caffe baseline: " +
                       L.Name);
    case LayerSpec::Kind::Fc:
      Net.addLayer(std::make_unique<InnerProductLayer>(L.Name, L.Filters));
      break;
    }
  }
  Net.addLayer(
      std::make_unique<InnerProductLayer>("classifier", Spec.NumClasses));
  if (WithLoss) {
    Net.enableLabels();
    Net.addLayer(std::make_unique<SoftmaxLossLayer>("loss"));
  }
}

void models::buildMocha(caffe::CaffeNet &Net, const ModelSpec &Spec,
                        bool WithLoss) {
  using namespace latte::mocha;
  Net.setInputShape(Spec.InputDims);
  for (const LayerSpec &L : Spec.Layers) {
    switch (L.K) {
    case LayerSpec::Kind::Conv:
      Net.addLayer(std::make_unique<NaiveConvolutionLayer>(
          L.Name, L.Filters, L.Kernel, L.Stride, L.Pad));
      break;
    case LayerSpec::Kind::MaxPool:
      Net.addLayer(std::make_unique<NaiveMaxPoolingLayer>(L.Name, L.Kernel,
                                                          L.Stride, L.Pad));
      break;
    case LayerSpec::Kind::Relu:
      Net.addLayer(std::make_unique<NaiveReluLayer>(L.Name));
      break;
    case LayerSpec::Kind::Fc:
      Net.addLayer(
          std::make_unique<NaiveInnerProductLayer>(L.Name, L.Filters));
      break;
    case LayerSpec::Kind::AvgPool:
    case LayerSpec::Kind::Tanh:
    case LayerSpec::Kind::Dropout:
      reportFatalError("layer kind unsupported by the Mocha baseline: " +
                       L.Name);
    }
  }
  Net.addLayer(
      std::make_unique<NaiveInnerProductLayer>("classifier",
                                               Spec.NumClasses));
  if (WithLoss) {
    Net.enableLabels();
    Net.addLayer(std::make_unique<caffe::SoftmaxLossLayer>("loss"));
  }
}
