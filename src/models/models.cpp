//===- models/models.cpp --------------------------------------*- C++ -*-===//

#include "models/models.h"

#include "baselines/mocha/mocha.h"
#include "core/layers/attention.h"
#include "core/layers/layers.h"
#include "core/layers/recurrent.h"
#include "support/error.h"

#include <cmath>
#include <unordered_map>

using namespace latte;
using namespace latte::models;

namespace {

LayerSpec conv(std::string Name, int64_t Filters, int64_t Kernel,
               int64_t Stride, int64_t Pad) {
  LayerSpec L;
  L.K = LayerSpec::Kind::Conv;
  L.Name = std::move(Name);
  L.Filters = Filters;
  L.Kernel = Kernel;
  L.Stride = Stride;
  L.Pad = Pad;
  return L;
}

LayerSpec pool(std::string Name, int64_t Kernel, int64_t Stride,
               int64_t Pad = 0) {
  LayerSpec L;
  L.K = LayerSpec::Kind::MaxPool;
  L.Name = std::move(Name);
  L.Kernel = Kernel;
  L.Stride = Stride;
  L.Pad = Pad;
  return L;
}

LayerSpec relu(std::string Name) {
  LayerSpec L;
  L.K = LayerSpec::Kind::Relu;
  L.Name = std::move(Name);
  return L;
}

LayerSpec tanhL(std::string Name) {
  LayerSpec L;
  L.K = LayerSpec::Kind::Tanh;
  L.Name = std::move(Name);
  return L;
}

LayerSpec fc(std::string Name, int64_t Outputs) {
  LayerSpec L;
  L.K = LayerSpec::Kind::Fc;
  L.Name = std::move(Name);
  L.Filters = Outputs;
  return L;
}

[[maybe_unused]] LayerSpec dropout(std::string Name, double Keep) {
  LayerSpec L;
  L.K = LayerSpec::Kind::Dropout;
  L.Name = std::move(Name);
  L.KeepProb = Keep;
  return L;
}

int64_t scaled(int64_t Extent, double Scale) {
  int64_t S = static_cast<int64_t>(std::llround(Extent * Scale));
  return S < 1 ? 1 : S;
}

LayerSpec slice(std::string Name, std::string Input, int64_t T) {
  LayerSpec L;
  L.K = LayerSpec::Kind::Slice;
  L.Name = std::move(Name);
  L.Inputs = {std::move(Input)};
  L.TimeIndex = T;
  return L;
}

/// True for nodes only the Latte builder can lower: explicit graph edges,
/// weight-sharing groups, and the sequence kinds.
bool isGraphOnly(const LayerSpec &L) {
  if (!L.Inputs.empty() || !L.ShareWith.empty())
    return true;
  switch (L.K) {
  case LayerSpec::Kind::Conv:
  case LayerSpec::Kind::MaxPool:
  case LayerSpec::Kind::AvgPool:
  case LayerSpec::Kind::Relu:
  case LayerSpec::Kind::Tanh:
  case LayerSpec::Kind::Fc:
  case LayerSpec::Kind::Dropout:
    return false;
  case LayerSpec::Kind::Sigmoid:
  case LayerSpec::Kind::Add:
  case LayerSpec::Kind::Mul:
  case LayerSpec::Kind::Sub:
  case LayerSpec::Kind::Slice:
  case LayerSpec::Kind::Stack:
  case LayerSpec::Kind::Lstm:
  case LayerSpec::Kind::Gru:
  case LayerSpec::Kind::Attention:
    return true;
  }
  latteUnreachable("unknown layer kind");
}

} // namespace

std::vector<LayerAudit> models::auditSpec(const ModelSpec &Spec) {
  std::vector<LayerAudit> Audit;
  auto OutSpatial = [](int64_t In, int64_t K, int64_t S, int64_t P) {
    int64_t Out = (In + 2 * P - K) / S + 1;
    if (Out <= 0)
      reportFatalError("layer output collapses to zero; the spatial scale "
                       "is too small for this architecture");
    return Out;
  };

  // Graph walk: shapes by node name; a node with no explicit Inputs
  // consumes the previous node's output ("data" before any node exists).
  std::unordered_map<std::string, Shape> Shapes;
  Shapes["data"] = Spec.InputDims;
  std::string Prev = "data";
  auto ShapeOf = [&](const std::string &Name) -> const Shape & {
    auto It = Shapes.find(Name);
    if (It == Shapes.end())
      reportFatalError("spec references unknown node '" + Name + "'");
    return It->second;
  };
  auto InputShapes = [&](const LayerSpec &L) {
    std::vector<Shape> In;
    if (L.Inputs.empty())
      In.push_back(ShapeOf(Prev));
    else
      for (const std::string &Name : L.Inputs)
        In.push_back(ShapeOf(Name));
    return In;
  };

  for (const LayerSpec &L : Spec.Layers) {
    LayerAudit Row;
    Row.Name = L.Name;
    std::vector<Shape> In = InputShapes(L);
    const Shape &Cur = In[0];
    Shape Out = Cur;
    switch (L.K) {
    case LayerSpec::Kind::Conv: {
      if (Cur.rank() != 3)
        reportFatalError("conv '" + L.Name + "' input must be (C, H, W)");
      int64_t OutH = OutSpatial(Cur[1], L.Kernel, L.Stride, L.Pad);
      int64_t OutW = OutSpatial(Cur[2], L.Kernel, L.Stride, L.Pad);
      Row.Params = L.Filters * (Cur[0] * L.Kernel * L.Kernel + 1);
      Out = Shape{L.Filters, OutH, OutW};
      break;
    }
    case LayerSpec::Kind::MaxPool:
    case LayerSpec::Kind::AvgPool: {
      int64_t OutH = OutSpatial(Cur[1], L.Kernel, L.Stride, L.Pad);
      int64_t OutW = OutSpatial(Cur[2], L.Kernel, L.Stride, L.Pad);
      Out = Shape{Cur[0], OutH, OutW};
      break;
    }
    case LayerSpec::Kind::Relu:
    case LayerSpec::Kind::Tanh:
    case LayerSpec::Kind::Sigmoid:
    case LayerSpec::Kind::Dropout:
    case LayerSpec::Kind::Add:
    case LayerSpec::Kind::Mul:
    case LayerSpec::Kind::Sub:
      break; // shape-preserving, no parameters
    case LayerSpec::Kind::Fc:
      // Tied layers share the owner's storage: no parameters of their own.
      Row.Params = L.ShareWith.empty() ? L.Filters * (Cur.numElements() + 1)
                                       : 0;
      Out = Shape{L.Filters};
      break;
    case LayerSpec::Kind::Slice:
      if (Cur.rank() != 2)
        reportFatalError("slice '" + L.Name + "' input must be (T, F)");
      if (L.TimeIndex < 0 || L.TimeIndex >= Cur[0])
        reportFatalError("slice '" + L.Name + "' timestep out of range");
      Out = Shape{Cur[1]};
      break;
    case LayerSpec::Kind::Stack:
      if (Cur.rank() != 1)
        reportFatalError("stack '" + L.Name + "' input must be rank 1");
      Out = Shape{L.Filters, Cur[0]};
      break;
    case LayerSpec::Kind::Lstm: {
      // 4 gates, each with an input projection {H x F}, a recurrent
      // projection {H x H}, and biases — tied across all timesteps.
      int64_t H = L.Filters, F = Cur.numElements();
      Row.Params = 4 * (H * F + H) + 4 * (H * H + H);
      Out = Shape{H};
      break;
    }
    case LayerSpec::Kind::Gru: {
      int64_t H = L.Filters, F = Cur.numElements();
      Row.Params = 3 * (H * F + H) + 3 * (H * H + H);
      Out = Shape{H};
      break;
    }
    case LayerSpec::Kind::Attention: {
      if (Cur.rank() != 2)
        reportFatalError("attention '" + L.Name + "' input must be (T, F)");
      // Q/K/V projections, each {D x F} + bias, shared across timesteps.
      int64_t D = L.Filters, F = Cur[1];
      Row.Params = 3 * (D * F + D);
      Out = Shape{Cur[0], D};
      break;
    }
    }
    Row.OutDims = Out;
    Shapes[L.Name] = Out;
    Prev = L.Name;
    Audit.push_back(std::move(Row));
  }

  // Final classifier over the last node (zero-layer specs classify the
  // input directly: the audit is then just this row).
  const Shape &Last = ShapeOf(Prev);
  LayerAudit Cls;
  Cls.Name = "classifier";
  Cls.Params = Spec.NumClasses * (Last.numElements() + 1);
  Cls.OutDims = Shape{Spec.NumClasses};
  Audit.push_back(std::move(Cls));
  return Audit;
}

int64_t models::countParams(const ModelSpec &Spec) {
  int64_t Total = 0;
  for (const LayerAudit &Row : auditSpec(Spec))
    Total += Row.Params;
  return Total;
}

ModelSpec models::alexNet(double Scale) {
  ModelSpec Spec;
  Spec.Name = "AlexNet";
  Spec.InputDims = Shape{3, scaled(227, Scale), scaled(227, Scale)};
  Spec.NumClasses = 1000;
  Spec.Layers = {
      conv("conv1", 96, 11, 4, 0), relu("relu1"), pool("pool1", 3, 2),
      conv("conv2", 256, 5, 1, 2), relu("relu2"), pool("pool2", 3, 2),
      conv("conv3", 384, 3, 1, 1), relu("relu3"),
      conv("conv4", 384, 3, 1, 1), relu("relu4"),
      conv("conv5", 256, 3, 1, 1), relu("relu5"), pool("pool5", 3, 2),
      fc("fc6", 4096),             relu("relu6"),
      fc("fc7", 4096),             relu("relu7"),
  };
  return Spec;
}

ModelSpec models::vggA(double Scale) {
  ModelSpec Spec;
  Spec.Name = "VGG";
  Spec.InputDims = Shape{3, scaled(224, Scale), scaled(224, Scale)};
  Spec.NumClasses = 1000;
  Spec.Layers = {
      // Group 1
      conv("conv1_1", 64, 3, 1, 1), relu("relu1_1"), pool("pool1", 2, 2),
      // Group 2
      conv("conv2_1", 128, 3, 1, 1), relu("relu2_1"), pool("pool2", 2, 2),
      // Group 3 (two convolutions)
      conv("conv3_1", 256, 3, 1, 1), relu("relu3_1"),
      conv("conv3_2", 256, 3, 1, 1), relu("relu3_2"), pool("pool3", 2, 2),
      // Group 4 (two convolutions; the paper's fusion-limited case)
      conv("conv4_1", 512, 3, 1, 1), relu("relu4_1"),
      conv("conv4_2", 512, 3, 1, 1), relu("relu4_2"), pool("pool4", 2, 2),
      // Group 5
      conv("conv5_1", 512, 3, 1, 1), relu("relu5_1"),
      conv("conv5_2", 512, 3, 1, 1), relu("relu5_2"), pool("pool5", 2, 2),
      fc("fc6", 4096), relu("relu6"),
      fc("fc7", 4096), relu("relu7"),
  };
  return Spec;
}

ModelSpec models::vgg16(double Scale) {
  ModelSpec Spec;
  Spec.Name = "VGG-16";
  Spec.InputDims = Shape{3, scaled(224, Scale), scaled(224, Scale)};
  Spec.NumClasses = 1000;
  auto Block = [&](int G, int Convs, int64_t Filters) {
    for (int I = 1; I <= Convs; ++I) {
      std::string N =
          "conv" + std::to_string(G) + "_" + std::to_string(I);
      Spec.Layers.push_back(conv(N, Filters, 3, 1, 1));
      Spec.Layers.push_back(relu("relu" + std::to_string(G) + "_" +
                                 std::to_string(I)));
    }
    Spec.Layers.push_back(pool("pool" + std::to_string(G), 2, 2));
  };
  Block(1, 2, 64);
  Block(2, 2, 128);
  Block(3, 3, 256);
  Block(4, 3, 512);
  Block(5, 3, 512);
  Spec.Layers.push_back(fc("fc6", 4096));
  Spec.Layers.push_back(relu("relu6"));
  Spec.Layers.push_back(fc("fc7", 4096));
  Spec.Layers.push_back(relu("relu7"));
  return Spec;
}

ModelSpec models::overfeat(double Scale) {
  ModelSpec Spec;
  Spec.Name = "OverFeat";
  Spec.InputDims = Shape{3, scaled(231, Scale), scaled(231, Scale)};
  Spec.NumClasses = 1000;
  Spec.Layers = {
      conv("conv1", 96, 11, 4, 0),   relu("relu1"), pool("pool1", 2, 2),
      conv("conv2", 256, 5, 1, 0),   relu("relu2"), pool("pool2", 2, 2),
      conv("conv3", 512, 3, 1, 1),   relu("relu3"),
      conv("conv4", 1024, 3, 1, 1),  relu("relu4"),
      conv("conv5", 1024, 3, 1, 1),  relu("relu5"), pool("pool5", 2, 2),
      fc("fc6", 3072),               relu("relu6"),
      fc("fc7", 4096),               relu("relu7"),
  };
  return Spec;
}

ModelSpec models::vggFirstThreeLayers(double Scale, int64_t InputChannels) {
  ModelSpec Spec;
  Spec.Name = "VGG-first-3";
  Spec.InputDims =
      Shape{InputChannels, scaled(224, Scale), scaled(224, Scale)};
  Spec.NumClasses = 10;
  Spec.Layers = {conv("conv1_1", 64, 3, 1, 1), relu("relu1_1"),
                 pool("pool1", 2, 2)};
  return Spec;
}

ModelSpec models::vggGroup(int G, double Scale) {
  assert(G >= 1 && G <= 4 && "VGG group index must be 1-4");
  // Natural input of group G of VGG model A at 224 input.
  static const int64_t Channels[] = {3, 64, 128, 256};
  static const int64_t Spatial[] = {224, 112, 56, 28};
  static const int64_t Filters[] = {64, 128, 256, 512};
  ModelSpec Spec;
  Spec.Name = "VGG-group" + std::to_string(G);
  Spec.InputDims = Shape{Channels[G - 1], scaled(Spatial[G - 1], Scale),
                         scaled(Spatial[G - 1], Scale)};
  Spec.NumClasses = 10;
  int Convs = G >= 3 ? 2 : 1;
  for (int I = 1; I <= Convs; ++I) {
    std::string N = "conv" + std::to_string(G) + "_" + std::to_string(I);
    Spec.Layers.push_back(conv(N, Filters[G - 1], 3, 1, 1));
    Spec.Layers.push_back(relu("relu" + std::to_string(G) + "_" +
                               std::to_string(I)));
  }
  Spec.Layers.push_back(pool("pool" + std::to_string(G), 2, 2));
  return Spec;
}

ModelSpec models::lenet() {
  ModelSpec Spec;
  Spec.Name = "LeNet";
  Spec.InputDims = Shape{1, 28, 28};
  Spec.NumClasses = 10;
  Spec.Layers = {
      conv("conv1", 20, 5, 1, 0), pool("pool1", 2, 2),
      conv("conv2", 50, 5, 1, 0), pool("pool2", 2, 2),
      fc("fc1", 500),             relu("relu1"),
  };
  return Spec;
}

ModelSpec models::mlp(int64_t InputSize, std::vector<int64_t> HiddenWidths,
                      int64_t NumClasses) {
  ModelSpec Spec;
  Spec.Name = "MLP";
  Spec.InputDims = Shape{InputSize};
  Spec.NumClasses = NumClasses;
  for (size_t I = 0; I < HiddenWidths.size(); ++I) {
    Spec.Layers.push_back(
        fc("ip" + std::to_string(I + 1), HiddenWidths[I]));
    Spec.Layers.push_back(tanhL("tanh" + std::to_string(I + 1)));
  }
  return Spec;
}

ModelSpec models::lstmClassifier(int64_t Timesteps, int64_t Features,
                                 int64_t Hidden, int64_t NumClasses) {
  assert(Timesteps > 0 && Features > 0 && Hidden > 0 && NumClasses > 1);
  ModelSpec Spec;
  Spec.Name = "LSTM-cls";
  Spec.InputDims = Shape{Timesteps, Features};
  Spec.NumClasses = NumClasses;
  LayerSpec Cell;
  Cell.K = LayerSpec::Kind::Lstm;
  Cell.Name = "lstm";
  Cell.Filters = Hidden;
  for (int64_t T = 0; T < Timesteps; ++T) {
    std::string SliceName = "x" + std::to_string(T);
    Spec.Layers.push_back(slice(SliceName, "data", T));
    Cell.Inputs.push_back(SliceName);
  }
  Spec.Layers.push_back(std::move(Cell));
  return Spec;
}

ModelSpec models::gruClassifier(int64_t Timesteps, int64_t Features,
                                int64_t Hidden, int64_t NumClasses) {
  ModelSpec Spec = lstmClassifier(Timesteps, Features, Hidden, NumClasses);
  Spec.Name = "GRU-cls";
  Spec.Layers.back().K = LayerSpec::Kind::Gru;
  Spec.Layers.back().Name = "gru";
  return Spec;
}

ModelSpec models::attentionClassifier(int64_t Timesteps, int64_t Features,
                                      int64_t ModelDim, int64_t NumClasses) {
  assert(Timesteps > 0 && Features > 0 && ModelDim > 0 && NumClasses > 1);
  ModelSpec Spec;
  Spec.Name = "Attn-cls";
  Spec.InputDims = Shape{Timesteps, Features};
  Spec.NumClasses = NumClasses;
  LayerSpec Attn;
  Attn.K = LayerSpec::Kind::Attention;
  Attn.Name = "attn";
  Attn.Inputs = {"data"};
  Attn.Filters = ModelDim;
  Spec.Layers.push_back(std::move(Attn));
  return Spec;
}

core::Ensemble *models::buildLatte(core::Net &Net, const ModelSpec &Spec,
                                   bool WithLoss) {
  using namespace latte::layers;
  // Graph walk mirroring auditSpec: ensembles by node name; empty Inputs
  // means the previous node's output.
  std::unordered_map<std::string, core::Ensemble *> Nodes;
  core::Ensemble *Cur = DataLayer(Net, "data", Spec.InputDims);
  Nodes["data"] = Cur;
  auto NodeOf = [&](const std::string &Name) -> core::Ensemble * {
    auto It = Nodes.find(Name);
    if (It == Nodes.end())
      reportFatalError("spec references unknown node '" + Name + "'");
    return It->second;
  };
  auto InputsOf = [&](const LayerSpec &L) {
    std::vector<core::Ensemble *> In;
    if (L.Inputs.empty())
      In.push_back(Cur);
    else
      for (const std::string &Name : L.Inputs)
        In.push_back(NodeOf(Name));
    return In;
  };

  for (const LayerSpec &L : Spec.Layers) {
    std::vector<core::Ensemble *> In = InputsOf(L);
    core::Ensemble *Out = nullptr;
    switch (L.K) {
    case LayerSpec::Kind::Conv:
      Out = ConvolutionLayer(Net, L.Name, In[0], L.Filters, L.Kernel,
                             L.Stride, L.Pad);
      break;
    case LayerSpec::Kind::MaxPool:
      Out = MaxPoolingLayer(Net, L.Name, In[0], L.Kernel, L.Stride, L.Pad);
      break;
    case LayerSpec::Kind::AvgPool:
      Out = AvgPoolingLayer(Net, L.Name, In[0], L.Kernel, L.Stride, L.Pad);
      break;
    case LayerSpec::Kind::Relu:
      Out = ReluLayer(Net, L.Name, In[0]);
      break;
    case LayerSpec::Kind::Tanh:
      Out = TanhLayer(Net, L.Name, In[0]);
      break;
    case LayerSpec::Kind::Sigmoid:
      Out = SigmoidLayer(Net, L.Name, In[0]);
      break;
    case LayerSpec::Kind::Fc:
      Out = L.ShareWith.empty()
                ? FullyConnectedLayer(Net, L.Name, In[0], L.Filters)
                : FullyConnectedLayerShared(Net, L.Name, In[0], L.Filters,
                                            L.ShareWith);
      break;
    case LayerSpec::Kind::Dropout:
      Out = DropoutLayer(Net, L.Name, In[0], L.KeepProb);
      break;
    case LayerSpec::Kind::Add:
      Out = AddLayer(Net, L.Name, In);
      break;
    case LayerSpec::Kind::Mul:
      if (In.size() != 2)
        reportFatalError("mul '" + L.Name + "' needs exactly two inputs");
      Out = MulLayer(Net, L.Name, In[0], In[1]);
      break;
    case LayerSpec::Kind::Sub:
      if (In.size() != 2)
        reportFatalError("sub '" + L.Name + "' needs exactly two inputs");
      Out = SubLayer(Net, L.Name, In[0], In[1]);
      break;
    case LayerSpec::Kind::Slice:
      Out = SliceLayer(Net, L.Name, In[0], L.TimeIndex);
      break;
    case LayerSpec::Kind::Stack:
      Out = StackLayer(Net, L.Name, In[0], L.Filters);
      break;
    case LayerSpec::Kind::Lstm:
      Out = LstmLayer(Net, L.Name, In, L.Filters).Hidden.back();
      break;
    case LayerSpec::Kind::Gru:
      Out = GruLayer(Net, L.Name, In, L.Filters).Hidden.back();
      break;
    case LayerSpec::Kind::Attention:
      Out = AttentionLayer(Net, L.Name, In[0], L.Filters);
      break;
    }
    // Register the block's output under the node name (recurrent and
    // attention blocks name their internal ensembles "<name>_...", so the
    // node name itself stays free).
    Nodes[L.Name] = Out;
    Cur = Out;
  }
  Cur = FullyConnectedLayer(Net, "classifier", Cur, Spec.NumClasses);
  if (!WithLoss)
    return Cur;
  core::Ensemble *Labels = LabelLayer(Net, "labels");
  return SoftmaxLossLayer(Net, "loss", Cur, Labels);
}

void models::buildCaffe(caffe::CaffeNet &Net, const ModelSpec &Spec,
                        bool WithLoss) {
  using namespace latte::caffe;
  Net.setInputShape(Spec.InputDims);
  for (const LayerSpec &L : Spec.Layers) {
    if (isGraphOnly(L))
      reportFatalError("graph-structured node '" + L.Name +
                       "' unsupported by the Caffe baseline; baselines "
                       "compare the flat CNN/MLP suite only");
    switch (L.K) {
    case LayerSpec::Kind::Conv:
      Net.addLayer(std::make_unique<ConvolutionLayer>(L.Name, L.Filters,
                                                      L.Kernel, L.Stride,
                                                      L.Pad));
      break;
    case LayerSpec::Kind::MaxPool:
      Net.addLayer(std::make_unique<PoolingLayer>(
          L.Name, PoolingLayer::Mode::Max, L.Kernel, L.Stride, L.Pad));
      break;
    case LayerSpec::Kind::AvgPool:
      Net.addLayer(std::make_unique<PoolingLayer>(
          L.Name, PoolingLayer::Mode::Avg, L.Kernel, L.Stride, L.Pad));
      break;
    case LayerSpec::Kind::Relu:
      Net.addLayer(std::make_unique<ReluLayer>(L.Name));
      break;
    case LayerSpec::Kind::Tanh:
    case LayerSpec::Kind::Dropout:
    case LayerSpec::Kind::Sigmoid:
    case LayerSpec::Kind::Add:
    case LayerSpec::Kind::Mul:
    case LayerSpec::Kind::Sub:
    case LayerSpec::Kind::Slice:
    case LayerSpec::Kind::Stack:
    case LayerSpec::Kind::Lstm:
    case LayerSpec::Kind::Gru:
    case LayerSpec::Kind::Attention:
      reportFatalError("layer kind unsupported by the Caffe baseline: " +
                       L.Name);
    case LayerSpec::Kind::Fc:
      Net.addLayer(std::make_unique<InnerProductLayer>(L.Name, L.Filters));
      break;
    }
  }
  Net.addLayer(
      std::make_unique<InnerProductLayer>("classifier", Spec.NumClasses));
  if (WithLoss) {
    Net.enableLabels();
    Net.addLayer(std::make_unique<SoftmaxLossLayer>("loss"));
  }
}

void models::buildMocha(caffe::CaffeNet &Net, const ModelSpec &Spec,
                        bool WithLoss) {
  using namespace latte::mocha;
  Net.setInputShape(Spec.InputDims);
  for (const LayerSpec &L : Spec.Layers) {
    if (isGraphOnly(L))
      reportFatalError("graph-structured node '" + L.Name +
                       "' unsupported by the Mocha baseline; baselines "
                       "compare the flat CNN/MLP suite only");
    switch (L.K) {
    case LayerSpec::Kind::Conv:
      Net.addLayer(std::make_unique<NaiveConvolutionLayer>(
          L.Name, L.Filters, L.Kernel, L.Stride, L.Pad));
      break;
    case LayerSpec::Kind::MaxPool:
      Net.addLayer(std::make_unique<NaiveMaxPoolingLayer>(L.Name, L.Kernel,
                                                          L.Stride, L.Pad));
      break;
    case LayerSpec::Kind::Relu:
      Net.addLayer(std::make_unique<NaiveReluLayer>(L.Name));
      break;
    case LayerSpec::Kind::Fc:
      Net.addLayer(
          std::make_unique<NaiveInnerProductLayer>(L.Name, L.Filters));
      break;
    case LayerSpec::Kind::AvgPool:
    case LayerSpec::Kind::Tanh:
    case LayerSpec::Kind::Dropout:
    case LayerSpec::Kind::Sigmoid:
    case LayerSpec::Kind::Add:
    case LayerSpec::Kind::Mul:
    case LayerSpec::Kind::Sub:
    case LayerSpec::Kind::Slice:
    case LayerSpec::Kind::Stack:
    case LayerSpec::Kind::Lstm:
    case LayerSpec::Kind::Gru:
    case LayerSpec::Kind::Attention:
      reportFatalError("layer kind unsupported by the Mocha baseline: " +
                       L.Name);
    }
  }
  Net.addLayer(
      std::make_unique<NaiveInnerProductLayer>("classifier",
                                               Spec.NumClasses));
  if (WithLoss) {
    Net.enableLabels();
    Net.addLayer(std::make_unique<caffe::SoftmaxLossLayer>("loss"));
  }
}
