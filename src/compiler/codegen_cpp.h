//===- compiler/codegen_cpp.h - Standalone C++ code generation -*- C++ -*-===//
///
/// \file
/// The code-generation phase (§5.5): prints a compiled Program as a
/// self-contained C++ translation unit. The original system lowered its
/// Julia AST through ParallelAccelerator.jl to C++ compiled by ICC; here
/// the optimized IR (post pattern-matching / tiling / fusion /
/// parallelization) is emitted directly, with the paper's OpenMP
/// `parallel for collapse(2) schedule(static, 1)` pragmas on annotated
/// loops and `omp simd` on kernel inner loops.
///
/// The generated program exposes a tiny file-based driver (reads buffer
/// values from a .ltd file, runs forward/backward, writes all buffers
/// back) so tests can compile it with the host compiler and validate it
/// numerically against the in-process engine.
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_COMPILER_CODEGEN_CPP_H
#define LATTE_COMPILER_CODEGEN_CPP_H

#include "compiler/program.h"

#include <string>

namespace latte {
namespace compiler {

/// Renders \p Prog as a complete C++17 translation unit with a main()
/// driver: `./prog <input.ltd> <output.ltd> [fwd|fwdbwd]`.
std::string generateCpp(const Program &Prog);

/// Writes generateCpp(Prog) to \p Path. Returns false on I/O failure.
bool writeGeneratedProgram(const Program &Prog, const std::string &Path);

} // namespace compiler
} // namespace latte

#endif // LATTE_COMPILER_CODEGEN_CPP_H
