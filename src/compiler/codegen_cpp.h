//===- compiler/codegen_cpp.h - Standalone C++ code generation -*- C++ -*-===//
///
/// \file
/// The code-generation phase (§5.5): prints a compiled Program as a
/// self-contained C++ translation unit. The original system lowered its
/// Julia AST through ParallelAccelerator.jl to C++ compiled by ICC; here
/// the optimized IR (post pattern-matching / tiling / fusion /
/// parallelization) is emitted directly, with the paper's OpenMP
/// `parallel for collapse(2) schedule(static, 1)` pragmas on annotated
/// loops and `omp simd` on kernel inner loops.
///
/// The generated program exposes a tiny file-based driver (reads buffer
/// values from a .ltd file, runs forward/backward, writes all buffers
/// back) so tests can compile it with the host compiler and validate it
/// numerically against the in-process engine.
///
/// Both emitters are deterministic functions of the Program: no
/// timestamps, no pointer-keyed iteration, symbol names derived from unit
/// position only. generateJitSource additionally serves as a content-hash
/// cache key (jit::hashSource), so byte-stability across emissions of the
/// same program is load-bearing, not cosmetic — codegen_test pins it.
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_COMPILER_CODEGEN_CPP_H
#define LATTE_COMPILER_CODEGEN_CPP_H

#include "compiler/program.h"

#include <string>
#include <vector>

namespace latte {
namespace compiler {

/// Renders \p Prog as a complete C++17 translation unit with a main()
/// driver: `./prog <input.ltd> <output.ltd> [fwd|fwdbwd]`.
std::string generateCpp(const Program &Prog);

/// Writes generateCpp(Prog) to \p Path. Returns false on I/O failure.
bool writeGeneratedProgram(const Program &Prog, const std::string &Path);

/// One top-level unit of a pass in the JIT translation unit.
struct JitTaskInfo {
  /// Generated entry point ("latte_task_f3") — empty when not jittable.
  std::string Symbol;
  /// False when the unit needs the interpreter (dropout draws from the
  /// engine's RNG; grad-sync hooks need the buffer name).
  bool Jittable = false;
};

/// A translation unit for the in-process JIT (jit::JitModule) plus the
/// per-unit dispatch tables the engine indexes by unit position.
struct JitSource {
  std::string Source;
  std::vector<JitTaskInfo> Forward;
  std::vector<JitTaskInfo> Backward;
};

/// Renders \p Prog as a JIT translation unit: one `extern "C"` function
/// per jittable top-level unit, reading buffer storage and re-entering the
/// engine's kernels through the LatteJitCtx trampoline (jit/jit_abi.h).
/// Unlike generateCpp this emits no kernel bodies, no storage and no
/// driver — only the loop-nest / dispatch scaffolding — which is what
/// makes JIT-on vs interpreted execution bitwise identical: the same
/// kernel functions run in the same order either way.
JitSource generateJitSource(const Program &Prog);

} // namespace compiler
} // namespace latte

#endif // LATTE_COMPILER_CODEGEN_CPP_H
