//===- compiler/memplan.h - Liveness-driven memory planning ----*- C++ -*-===//
///
/// \file
/// Static memory planning for compiled programs. The planner computes a
/// live range for every alias-root float buffer over the global task
/// timeline (the forward program's top-level units numbered 0..F-1,
/// followed by the backward units F..F+B-1), then packs the buffers into
/// one arena by best-fit interval allocation: two buffers may share bytes
/// only when their live ranges are disjoint. AliasOf chains are subsumed
/// naturally — every access to an alias member extends the root's range,
/// so a root and its aliases are one interval with zero distance.
///
/// Liveness granularity is the top-level unit (a batch loop covering one
/// fusion group, a pre/post statement, or a barrier). Within a unit the
/// batch/tile loops interleave iterations, so sub-unit staggering is not
/// sound; across units the assembled programs execute strictly in order.
///
/// Classification (decided per alias root, aggregated over members):
///   * Pinned    — live for the whole program: Param and Data roles, the
///                 well-known IO buffers (data/label/loss/prob), roots that
///                 are read before ever being written without a ZeroOn*
///                 covering flag (state carriers), and roots never
///                 referenced by any task (only reachable through
///                 readBuffer/writeBuffer, so nothing may reuse them).
///   * Retained  — must survive to end-of-run: Value and ParamGrad roots
///                 (inspected by solvers, verification and tests after a
///                 run) and any root referenced in both the forward and
///                 the backward program. Allocation-wise retained spans
///                 the whole timeline like pinned (passes replay: a
///                 finite-difference loop re-runs forward() after backward
///                 wrote the parameter gradients, so bytes "free before
///                 first def" are not actually free); the class only
///                 differs in provenance and diagnostics.
///   * Interval  — live [first ref, last ref] only; bytes are reusable
///                 outside that window. Pass-local Grad, GradInput, Input
///                 and Scratch buffers — where the folding savings are.
///
/// Recomputed roots (compiler/recompute.h) are the exception to the
/// both-passes retention rule: their backward reader is fed by a cloned
/// gather that rewrites the whole buffer, so they get TWO disjoint live
/// intervals — [first fwd ref, last fwd ref] and [re-gather, last ref] —
/// and their bytes are reusable in the gap across the forward/backward
/// boundary. That gap is exactly where the sublinear-memory savings come
/// from: N conv layers' im2col buffers stop being retained simultaneously
/// and instead peak one at a time around their backward consumers.
///
/// Zeroing: ZeroOnForward/ZeroOnBackward roots with interval lifetimes are
/// scheduled lazily (cleared immediately before their first referencing
/// unit) so the clear itself does not extend the live range to the top of
/// the pass; pinned/retained roots keep the classic top-of-pass clear.
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_COMPILER_MEMPLAN_H
#define LATTE_COMPILER_MEMPLAN_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace latte {
namespace compiler {

struct Program;

/// Live range and placement of one alias-root buffer.
struct BufferLifetime {
  std::string Name;    ///< alias-root buffer name
  int64_t Bytes = 0;   ///< extent in bytes (max over root + alias members)
  int64_t Offset = 0;  ///< assigned arena byte offset
  int FirstRef = -1;   ///< first referencing global unit (-1: never)
  int LastRef = -1;    ///< last referencing global unit (-1: never)
  int LiveBegin = 0;   ///< allocation interval start (inclusive)
  int LiveEnd = 0;     ///< allocation interval end (inclusive)
  /// Second allocation interval of a recomputed root (-1: none): the
  /// backward re-gather through the last reference. Bytes are reusable in
  /// the gap between the two intervals.
  int Live2Begin = -1;
  int Live2End = -1;
  bool Pinned = false;   ///< program-lifetime
  bool Retained = false; ///< live through end-of-run from first reference
  bool Recomputed = false; ///< re-gathered in backward instead of retained

  /// True when either of this root's live intervals covers unit \p G.
  bool liveAt(int G) const {
    return (G >= LiveBegin && G <= LiveEnd) ||
           (Live2Begin >= 0 && G >= Live2Begin && G <= Live2End);
  }

  /// True when any live interval of this root intersects any of \p Other's.
  bool overlapsLifetime(const BufferLifetime &Other) const {
    auto Hits = [](int B1, int E1, int B2, int E2) {
      return B1 <= E2 && B2 <= E1;
    };
    if (Hits(LiveBegin, LiveEnd, Other.LiveBegin, Other.LiveEnd))
      return true;
    if (Live2Begin >= 0 &&
        Hits(Live2Begin, Live2End, Other.LiveBegin, Other.LiveEnd))
      return true;
    if (Other.Live2Begin >= 0 &&
        Hits(LiveBegin, LiveEnd, Other.Live2Begin, Other.Live2End))
      return true;
    return Live2Begin >= 0 && Other.Live2Begin >= 0 &&
           Hits(Live2Begin, Live2End, Other.Live2Begin, Other.Live2End);
  }
  /// True when the assigned byte ranges intersect (zero-size never does).
  bool overlapsBytes(const BufferLifetime &Other) const {
    return Bytes > 0 && Other.Bytes > 0 && Offset < Other.Offset + Other.Bytes &&
           Other.Offset < Offset + Bytes;
  }
};

/// The result of planning: arena size, per-root offsets, live ranges, and
/// the lazy zeroing schedule. Carried on Program; consumed by the engine,
/// the C++ code generator, the verifier, and latte-lint --dump-plan.
struct MemoryPlan {
  /// False for hand-built programs that never went through planMemory (the
  /// engine and codegen then fall back to eager per-buffer allocation).
  bool Valid = false;
  int64_t Alignment = 64; ///< offset alignment in bytes
  int64_t ArenaBytes = 0; ///< planned arena extent
  int64_t EagerBytes = 0; ///< sum of root extents (the eager footprint)
  /// Arena byte offset per alias-root buffer name. Alias members resolve
  /// through Program::resolveAlias() and share the root's entry.
  std::map<std::string, int64_t> Offsets;
  /// One entry per alias root, in Program::Buffers declaration order.
  std::vector<BufferLifetime> Lifetimes;
  /// Roots to clear immediately before executing global unit G (lazy
  /// zeroing of interval-allocated ZeroOn* buffers).
  std::map<int, std::vector<std::string>> ZeroBefore;
  /// Pinned/retained ZeroOnForward roots: cleared at the top of every
  /// forward pass (classic behavior). Likewise for backward.
  std::vector<std::string> ZeroOnForwardPinned;
  std::vector<std::string> ZeroOnBackwardPinned;
  /// Unit counts behind the global timeline (backward unit i has global
  /// index NumForwardUnits + i).
  int NumForwardUnits = 0;
  int NumBackwardUnits = 0;

  /// Lifetime entry for an alias-root name; nullptr when unknown.
  const BufferLifetime *lifetime(const std::string &Root) const {
    for (const BufferLifetime &L : Lifetimes)
      if (L.Name == Root)
        return &L;
    return nullptr;
  }

  /// True when \p Root's bytes are guaranteed intact after a full run: no
  /// root sharing any of its bytes is referenced after Root's last use.
  /// Pinned and retained roots always qualify. Drives which buffers the
  /// planned-vs-eager differential tests may compare bitwise.
  bool retainedAtExit(const std::string &Root) const;

  /// Human-readable plan dump (deterministic order) for
  /// latte-lint --dump-plan.
  std::string str() const;
};

/// Plans memory for an assembled program. Requires Forward/Backward (when
/// present) to be top-level blocks with effects computable by
/// analyze::collectUnitEffects; runs unconditionally at the end of
/// compile().
MemoryPlan planMemory(const Program &Prog);

} // namespace compiler
} // namespace latte

#endif // LATTE_COMPILER_MEMPLAN_H
