//===- compiler/rotate.h - Per-item slice rotation -------------*- C++ -*-===//
///
/// \file
/// The slice-rotation pass: sub-unit memory folding for fused chains. A
/// fused chain runs as one batch loop, so all chain-internal buffers share
/// one timeline unit and the liveness planner cannot fold any of them —
/// fig13's fully-fused point saves ~0%. Whether folding *inside* the unit
/// is sound is a static-analysis question: batch iteration n must provably
/// touch only its own item slice. This pass asks the sub-unit effect
/// analysis (analyze::classifySubUnit) exactly that, and shrinks every
/// qualifying buffer from a full-batch allocation {B, ...} to a modular
/// pool of D item slices {D, ...}, rewriting each batch-indexed access
/// from `n` to `n % D` (emitted as the composite `n - D*(n/D)`, which the
/// effect analysis re-recognizes as a bounded pseudo-variable).
///
/// Legality (all proven against analyze::effects, not assumed):
///   * the candidate is an alias root of role Input / GradInput / Scratch —
///     never a Value/Grad/Param/Data buffer, which solvers, the lattice
///     oracle's whole-batch comparisons, or the user observe directly;
///   * it is referenced by exactly one timeline unit (chain-internal: it
///     lives and dies inside the chain), and that unit is a constant-
///     extent batch loop whose variable no inner loop shadows;
///   * classifySubUnit proves it ItemPrivate (iteration n touches only
///     slice [n*S, (n+1)*S)) and ItemFresh (the first access is a covering
///     overwrite), so a reused slice never leaks bytes across items;
///   * every alias member leads with the batch dimension.
///
/// The pool depth D is the chain's intra-item dependence depth (max tiled
/// dependence distance + 1, minimum 2); CompileOptions::RotateSlices
/// raises it. The rewritten loop carries LoopAnnotations::SliceModulus so
/// the executor parallelizes over slices (items sharing a slice serialize
/// — a memory-for-parallelism trade, which is why CompileOptions::
/// SliceRotation defaults off) and the JIT declines the unit in favor of
/// the interpreter. Decisions are recorded in Program::Rotations for the
/// verifier's plan.subunit.* cross-checks, the race detector's
/// rotated-root whitelist, and the bench harness. Rotation never changes
/// values: lattice bit 8 proves rotation-on vs rotation-off bitwise
/// identical.
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_COMPILER_ROTATE_H
#define LATTE_COMPILER_ROTATE_H

namespace latte {
namespace compiler {

struct Program;
struct CompileOptions;

/// Runs the slice-rotation pass on an assembled program (after
/// stripToInference / recomputeGathers, before planMemory). Mutates the IR
/// of qualifying units, shrinks the rotated buffers' leading dimension,
/// and fills Prog.Rotations; returns the number of buffers rotated.
int rotateSlices(Program &Prog, const CompileOptions &Opts);

} // namespace compiler
} // namespace latte

#endif // LATTE_COMPILER_ROTATE_H
