//===- compiler/codegen_cpp.cpp -------------------------------*- C++ -*-===//

#include "compiler/codegen_cpp.h"

#include "jit/jit_abi.h"
#include "support/error.h"
#include "support/string_utils.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>

using namespace latte;
using namespace latte::compiler;
using namespace latte::ir;

namespace {

/// Emits C++ source for one Program.
class CppEmitter {
public:
  explicit CppEmitter(const Program &Prog) : Prog(Prog) {}

  std::string run();

private:
  void header();
  void buffers();
  void kernels();
  void initFunction();
  void passFunction(const char *Name, const Stmt *Root,
                    bool ZeroOnForward);
  void driver();

  void emitStmt(const Stmt *S, int Indent);
  std::string exprToC(const Expr *E) const;
  std::string loadToC(const LoadExpr *L) const;
  std::string flatIndex(const std::string &Buffer,
                        const std::vector<ExprPtr> &Indices) const;
  std::string bufPtr(const KernelBufArg &Arg) const;

  void line(int Indent, const std::string &Text) {
    for (int I = 0; I < Indent; ++I)
      OS << "  ";
    OS << Text << "\n";
  }

  const Program &Prog;
  std::ostringstream OS;
};

std::string floatLit(double V) {
  if (std::isinf(V))
    return V < 0 ? "(-INFINITY)" : "INFINITY";
  std::string Text = formatString("%.9g", V);
  // Integral-looking output ("0", "42") needs a decimal point before the
  // float suffix is legal C++.
  if (Text.find('.') == std::string::npos &&
      Text.find('e') == std::string::npos &&
      Text.find('E') == std::string::npos)
    Text += ".0";
  return Text + "f";
}

std::string CppEmitter::flatIndex(const std::string &Buffer,
                                  const std::vector<ExprPtr> &Indices) const {
  const BufferInfo *B = Prog.findBuffer(Buffer);
  assert(B && "load/store of unknown buffer");
  assert(static_cast<int>(Indices.size()) == B->Dims.rank() &&
         "index rank mismatch in codegen");
  std::string Out = "0";
  for (size_t I = 0; I < Indices.size(); ++I)
    Out = "(" + Out + ") * " + std::to_string(B->Dims[static_cast<int>(I)]) +
          " + (" + exprToC(Indices[I].get()) + ")";
  return Out;
}

std::string CppEmitter::loadToC(const LoadExpr *L) const {
  return L->buffer() + "[" + flatIndex(L->buffer(), L->indices()) + "]";
}

std::string CppEmitter::exprToC(const Expr *E) const {
  switch (E->kind()) {
  case Expr::Kind::IntConst:
    return std::to_string(cast<IntConstExpr>(E)->value());
  case Expr::Kind::FloatConst:
    return floatLit(cast<FloatConstExpr>(E)->value());
  case Expr::Kind::Var:
    return cast<VarExpr>(E)->name();
  case Expr::Kind::Load:
    return loadToC(cast<LoadExpr>(E));
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    std::string L = exprToC(B->lhs()), R = exprToC(B->rhs());
    switch (B->op()) {
    case BinaryOpKind::Add:
      return "(" + L + " + " + R + ")";
    case BinaryOpKind::Sub:
      return "(" + L + " - " + R + ")";
    case BinaryOpKind::Mul:
      return "(" + L + " * " + R + ")";
    case BinaryOpKind::Div:
      return "(" + L + " / " + R + ")";
    case BinaryOpKind::Min:
      return "latte_min(" + L + ", " + R + ")";
    case BinaryOpKind::Max:
      return "latte_max(" + L + ", " + R + ")";
    }
    latteUnreachable("unknown binary op");
  }
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    std::string V = exprToC(U->operand());
    switch (U->op()) {
    case UnaryOpKind::Neg:
      return "(-" + V + ")";
    case UnaryOpKind::Exp:
      return "std::exp(" + V + ")";
    case UnaryOpKind::Log:
      return "std::log(" + V + ")";
    case UnaryOpKind::Tanh:
      return "std::tanh(" + V + ")";
    case UnaryOpKind::Sigmoid:
      return "(1.0f / (1.0f + std::exp(-(" + V + "))))";
    case UnaryOpKind::Sqrt:
      return "std::sqrt(" + V + ")";
    case UnaryOpKind::Abs:
      return "std::fabs(" + V + ")";
    }
    latteUnreachable("unknown unary op");
  }
  case Expr::Kind::Compare: {
    const auto *C = cast<CompareExpr>(E);
    static const char *Ops[] = {"<", "<=", ">", ">=", "==", "!="};
    std::string Raw = "(" + exprToC(C->lhs()) + " " +
                      Ops[static_cast<int>(C->op())] + " " +
                      exprToC(C->rhs()) + ")";
    return "(" + Raw + " ? 1.0f : 0.0f)";
  }
  case Expr::Kind::Select: {
    const auto *S = cast<SelectExpr>(E);
    std::string Cond;
    if (const auto *C = dyn_cast<CompareExpr>(S->cond())) {
      static const char *Ops[] = {"<", "<=", ">", ">=", "==", "!="};
      Cond = "(" + exprToC(C->lhs()) + " " + Ops[static_cast<int>(C->op())] +
             " " + exprToC(C->rhs()) + ")";
    } else {
      Cond = "((" + exprToC(S->cond()) + ") != 0.0f)";
    }
    return "(" + Cond + " ? " + exprToC(S->trueValue()) + " : " +
           exprToC(S->falseValue()) + ")";
  }
  }
  latteUnreachable("unknown expression kind");
}

std::string CppEmitter::bufPtr(const KernelBufArg &Arg) const {
  std::string Off =
      Arg.Offset ? " + (" + exprToC(Arg.Offset.get()) + ")" : "";
  return Arg.Buffer + Off;
}

void CppEmitter::emitStmt(const Stmt *S, int Indent) {
  switch (S->kind()) {
  case Stmt::Kind::Block: {
    const auto *B = cast<BlockStmt>(S);
    if (!B->label().empty())
      line(Indent, "// " + B->label());
    for (const StmtPtr &Child : B->stmts())
      emitStmt(Child.get(), Indent);
    return;
  }
  case Stmt::Kind::For: {
    const auto *F = cast<ForStmt>(S);
    // Slice-rotated batch loop (compiler/rotate.h): iterations sharing a
    // rotated slice (equal n mod SliceModulus) must not run concurrently,
    // so the parallel dimension is the slice index and items within a
    // slice run serially in batch order.
    if (int64_t SliceMod = F->annotations().SliceModulus;
        F->annotations().Parallel && SliceMod > 0) {
      std::string SLo = exprToC(F->lo());
      std::string Sl = F->var() + "_slice";
      line(Indent, "#pragma omp parallel for schedule(static, 1)");
      line(Indent, "for (int64_t " + Sl + " = 0; " + Sl + " < " +
                       std::to_string(SliceMod) + "; ++" + Sl + ") {");
      line(Indent + 1, "for (int64_t " + F->var() + " = " + SLo + " + " + Sl +
                           "; " + F->var() + " < " + SLo + " + " +
                           std::to_string(F->extent()) + "; " + F->var() +
                           " += " + std::to_string(SliceMod) + ") {");
      emitStmt(F->body(), Indent + 2);
      line(Indent + 1, "}");
      line(Indent, "}");
      return;
    }
    // The paper's parallelization construct (§5.4.3).
    const TiledLoopStmt *Collapsed = nullptr;
    if (F->annotations().Parallel && F->annotations().Collapse == 2)
      if (const auto *Body = dyn_cast<BlockStmt>(F->body()))
        if (Body->stmts().size() == 1)
          Collapsed = dyn_cast<TiledLoopStmt>(Body->stmts()[0].get());
    if (F->annotations().Parallel) {
      if (Collapsed)
        line(Indent,
             "#pragma omp parallel for collapse(2) schedule(static, 1)");
      else
        line(Indent, "#pragma omp parallel for schedule(static, 1)");
    }
    std::string Lo = exprToC(F->lo());
    line(Indent, "for (int64_t " + F->var() + " = " + Lo + "; " + F->var() +
                     " < " + Lo + " + " + std::to_string(F->extent()) +
                     "; ++" + F->var() + ") {");
    if (Collapsed) {
      line(Indent + 1, "for (int64_t " + Collapsed->tileVar() +
                           " = 0; " + Collapsed->tileVar() + " < " +
                           std::to_string(Collapsed->numTiles()) + "; ++" +
                           Collapsed->tileVar() + ") {");
      emitStmt(Collapsed->body(), Indent + 2);
      line(Indent + 1, "}");
    } else {
      emitStmt(F->body(), Indent + 1);
    }
    line(Indent, "}");
    return;
  }
  case Stmt::Kind::TiledLoop: {
    const auto *T = cast<TiledLoopStmt>(S);
    line(Indent, "// tiled loop over " + T->origVar() + " (tile " +
                     std::to_string(T->tileSize()) + ", dist " +
                     std::to_string(T->dependenceDistance()) + ")");
    line(Indent, "for (int64_t " + T->tileVar() + " = 0; " + T->tileVar() +
                     " < " + std::to_string(T->numTiles()) + "; ++" +
                     T->tileVar() + ") {");
    emitStmt(T->body(), Indent + 1);
    line(Indent, "}");
    return;
  }
  case Stmt::Kind::If: {
    const auto *If = cast<IfStmt>(S);
    line(Indent, "if ((" + exprToC(If->cond()) + ") != 0.0f) {");
    emitStmt(If->thenStmt(), Indent + 1);
    if (If->elseStmt()) {
      line(Indent, "} else {");
      emitStmt(If->elseStmt(), Indent + 1);
    }
    line(Indent, "}");
    return;
  }
  case Stmt::Kind::Store: {
    const auto *St = cast<StoreStmt>(S);
    std::string Target =
        St->buffer() + "[" + flatIndex(St->buffer(), St->indices()) + "]";
    std::string Value = exprToC(St->value());
    switch (St->op()) {
    case AccumKind::Assign:
      line(Indent, Target + " = " + Value + ";");
      return;
    case AccumKind::AddAssign:
      line(Indent, Target + " += " + Value + ";");
      return;
    case AccumKind::MulAssign:
      line(Indent, Target + " *= " + Value + ";");
      return;
    case AccumKind::MaxAssign:
      line(Indent, Target + " = latte_max(" + Target + ", " + Value + ");");
      return;
    case AccumKind::MinAssign:
      line(Indent, Target + " = latte_min(" + Target + ", " + Value + ");");
      return;
    }
    latteUnreachable("unknown accumulation kind");
  }
  case Stmt::Kind::Decl: {
    const auto *D = cast<DeclStmt>(S);
    line(Indent, "float " + D->name() + " = " + exprToC(D->init()) + ";");
    return;
  }
  case Stmt::Kind::AssignVar: {
    const auto *A = cast<AssignVarStmt>(S);
    std::string Value = exprToC(A->value());
    switch (A->op()) {
    case AccumKind::Assign:
      line(Indent, A->name() + " = " + Value + ";");
      return;
    case AccumKind::AddAssign:
      line(Indent, A->name() + " += " + Value + ";");
      return;
    case AccumKind::MulAssign:
      line(Indent, A->name() + " *= " + Value + ";");
      return;
    case AccumKind::MaxAssign:
      line(Indent,
           A->name() + " = latte_max(" + A->name() + ", " + Value + ");");
      return;
    case AccumKind::MinAssign:
      line(Indent,
           A->name() + " = latte_min(" + A->name() + ", " + Value + ");");
      return;
    }
    latteUnreachable("unknown accumulation kind");
  }
  case Stmt::Kind::KernelCall: {
    const auto *K = cast<KernelCallStmt>(S);
    const auto &IA = K->intArgs();
    auto Ints = [&](size_t From) {
      std::vector<std::string> Parts;
      for (size_t I = From; I < IA.size(); ++I)
        Parts.push_back(std::to_string(IA[I]));
      return join(Parts, ", ");
    };
    auto EArg = [&](size_t I) { return exprToC(K->exprArgs()[I].get()); };
    switch (K->kernel()) {
    case KernelKind::Zero:
      line(Indent, "k_zero(" + bufPtr(K->bufs()[0]) + ", " + Ints(0) + ");");
      return;
    case KernelKind::Copy:
      line(Indent, "k_copy(" + bufPtr(K->bufs()[0]) + ", " +
                       bufPtr(K->bufs()[1]) + ", " + Ints(0) + ");");
      return;
    case KernelKind::AddTo:
      line(Indent, "k_add_to(" + bufPtr(K->bufs()[0]) + ", " +
                       bufPtr(K->bufs()[1]) + ", " + Ints(0) + ");");
      return;
    case KernelKind::MulInto:
      line(Indent, "k_mul_into(" + bufPtr(K->bufs()[0]) + ", " +
                       bufPtr(K->bufs()[1]) + ", " + bufPtr(K->bufs()[2]) +
                       ", " + Ints(0) + ");");
      return;
    case KernelKind::MulAddTo:
      line(Indent, "k_mul_add_to(" + bufPtr(K->bufs()[0]) + ", " +
                       bufPtr(K->bufs()[1]) + ", " + bufPtr(K->bufs()[2]) +
                       ", " + Ints(0) + ");");
      return;
    case KernelKind::Scale:
      line(Indent, "k_scale(" + bufPtr(K->bufs()[0]) + ", " +
                       floatLit(K->floatArgs()[0]) + ", " + Ints(0) + ");");
      return;
    case KernelKind::Sgemm:
      line(Indent, "k_gemm(" + bufPtr(K->bufs()[0]) + ", " +
                       bufPtr(K->bufs()[1]) + ", " + bufPtr(K->bufs()[2]) +
                       ", " + Ints(0) + ");");
      return;
    case KernelKind::Gather2D:
      line(Indent, "k_gather2d(" + bufPtr(K->bufs()[0]) + ", " +
                       bufPtr(K->bufs()[1]) + ", " + K->bufs()[2].Buffer +
                       ", " + Ints(0) + ", " + EArg(0) + ");");
      return;
    case KernelKind::ScatterAdd2D:
      line(Indent, "k_scatter2d(" + bufPtr(K->bufs()[0]) + ", " +
                       bufPtr(K->bufs()[1]) + ", " + K->bufs()[2].Buffer +
                       ", " + Ints(0) + ", " + EArg(0) + ");");
      return;
    case KernelKind::ActFwdCols:
      line(Indent, "k_act_fwd(" + bufPtr(K->bufs()[0]) + ", " +
                       bufPtr(K->bufs()[1]) + ", " + Ints(0) + ", " +
                       EArg(0) + ");");
      return;
    case KernelKind::ActBwdCols:
      line(Indent, "k_act_bwd(" + bufPtr(K->bufs()[0]) + ", " +
                       bufPtr(K->bufs()[1]) + ", " + bufPtr(K->bufs()[2]) +
                       ", " + Ints(0) + ", " + EArg(0) + ");");
      return;
    case KernelKind::BiasAddCols:
      line(Indent, "k_bias_cols(" + bufPtr(K->bufs()[0]) + ", " +
                       bufPtr(K->bufs()[1]) + ", " + Ints(0) + ", " +
                       EArg(0) + ");");
      return;
    case KernelKind::BiasAddPerRow:
      line(Indent, "k_bias_rows(" + bufPtr(K->bufs()[0]) + ", " +
                       bufPtr(K->bufs()[1]) + ", " + Ints(0) + ");");
      return;
    case KernelKind::RowSumAdd:
      line(Indent, "k_row_sum(" + bufPtr(K->bufs()[0]) + ", " +
                       bufPtr(K->bufs()[1]) + ", " + Ints(0) + ");");
      return;
    case KernelKind::ColSumAdd:
      line(Indent, "k_col_sum(" + bufPtr(K->bufs()[0]) + ", " +
                       bufPtr(K->bufs()[1]) + ", " + Ints(0) + ");");
      return;
    case KernelKind::Im2ColRows:
      line(Indent, "k_im2col(" + bufPtr(K->bufs()[0]) + ", " +
                       bufPtr(K->bufs()[1]) + ", " + Ints(0) + ", " +
                       EArg(0) + ");");
      return;
    case KernelKind::Col2ImRows:
      line(Indent, "k_col2im(" + bufPtr(K->bufs()[0]) + ", " +
                       bufPtr(K->bufs()[1]) + ", " + Ints(0) + ", " +
                       EArg(0) + ");");
      return;
    case KernelKind::MaxPoolFwdRows:
      line(Indent, "k_maxpool_fwd(" + bufPtr(K->bufs()[0]) + ", " +
                       bufPtr(K->bufs()[1]) + ", " + K->bufs()[2].Buffer +
                       ".data() + (" +
                       (K->bufs()[2].Offset
                            ? exprToC(K->bufs()[2].Offset.get())
                            : std::string("0")) +
                       "), " + Ints(0) + ", " + EArg(0) + ");");
      return;
    case KernelKind::MaxPoolBwdRows:
      line(Indent, "k_maxpool_bwd(" + bufPtr(K->bufs()[0]) + ", " +
                       bufPtr(K->bufs()[1]) + ", " + K->bufs()[2].Buffer +
                       ".data() + (" +
                       (K->bufs()[2].Offset
                            ? exprToC(K->bufs()[2].Offset.get())
                            : std::string("0")) +
                       "), " + Ints(0) + ", " + EArg(0) + ");");
      return;
    case KernelKind::AvgPoolFwdRows:
      line(Indent, "k_avgpool_fwd(" + bufPtr(K->bufs()[0]) + ", " +
                       bufPtr(K->bufs()[1]) + ", " + Ints(0) + ", " +
                       EArg(0) + ");");
      return;
    case KernelKind::AvgPoolBwdRows:
      line(Indent, "k_avgpool_bwd(" + bufPtr(K->bufs()[0]) + ", " +
                       bufPtr(K->bufs()[1]) + ", " + Ints(0) + ", " +
                       EArg(0) + ");");
      return;
    case KernelKind::SoftmaxFwd:
      line(Indent, "k_softmax_fwd(" + bufPtr(K->bufs()[0]) + ", " +
                       bufPtr(K->bufs()[1]) + ", " + Ints(0) + ");");
      return;
    case KernelKind::SoftmaxLossFwd:
      line(Indent, "k_softmax_loss_fwd(" + bufPtr(K->bufs()[0]) + ", " +
                       bufPtr(K->bufs()[1]) + ", " + bufPtr(K->bufs()[2]) +
                       ", " + bufPtr(K->bufs()[3]) + ", " + Ints(0) + ");");
      return;
    case KernelKind::SoftmaxLossBwd:
      line(Indent, "k_softmax_loss_bwd(" + bufPtr(K->bufs()[0]) + ", " +
                       bufPtr(K->bufs()[1]) + ", " + bufPtr(K->bufs()[2]) +
                       ", " + Ints(0) + ", " + floatLit(K->floatArgs()[0]) +
                       ");");
      return;
    case KernelKind::SoftmaxBwd:
      line(Indent, "k_softmax_bwd(" + bufPtr(K->bufs()[0]) + ", " +
                       bufPtr(K->bufs()[1]) + ", " + bufPtr(K->bufs()[2]) +
                       ", " + Ints(0) + ");");
      return;
    case KernelKind::DropoutMask:
      line(Indent, "k_dropout_mask(" + bufPtr(K->bufs()[0]) + ", " +
                       Ints(0) + ", " + floatLit(K->floatArgs()[0]) + ");");
      return;
    case KernelKind::GradSyncHook:
      line(Indent, "/* grad sync hook: " + K->bufs()[0].Buffer + " */");
      return;
    }
    latteUnreachable("unknown kernel kind");
  }
  case Stmt::Kind::Barrier:
    line(Indent, "// fusion barrier: " + cast<BarrierStmt>(S)->reason());
    return;
  }
  latteUnreachable("unknown statement kind");
}

void CppEmitter::header() {
  OS << "// Generated by the Latte compiler (analysis -> synthesis ->\n"
        "// optimization -> code generation, PLDI'16). Do not edit.\n"
        "#include <cmath>\n#include <cstdint>\n#include <cstdio>\n"
        "#include <cstdlib>\n#include <cstring>\n#include <string>\n"
        "#include <vector>\n\n"
        "template <typename T> static inline T latte_min(T A, T B) "
        "{ return A < B ? A : B; }\n"
        "template <typename T> static inline T latte_max(T A, T B) "
        "{ return A > B ? A : B; }\n\n";
  OS << "static const int64_t kBatch = " << Prog.BatchSize << ";\n\n";
}

void CppEmitter::buffers() {
  if (Prog.Plan.Valid) {
    // One arena, carved up by the compiler's liveness-driven memory plan;
    // buffers whose live ranges are disjoint share bytes.
    OS << "// --- buffer arena (liveness-planned: " << Prog.Plan.ArenaBytes
       << " bytes vs " << Prog.Plan.EagerBytes << " eager) ---\n";
    OS << "alignas(" << Prog.Plan.Alignment << ") static float latte_arena["
       << std::max<int64_t>(Prog.Plan.ArenaBytes / 4, 1) << "];\n";
  } else {
    OS << "// --- buffers (aliases share storage per shared-variable "
          "analysis) ---\n";
  }
  for (const BufferInfo &B : Prog.Buffers) {
    if (!Prog.Plan.Valid && B.AliasOf.empty())
      OS << "static std::vector<float> st_" << B.Name << "; ";
    OS << "static float *" << B.Name << " = nullptr; // "
       << B.Dims.str() << (B.AliasOf.empty() ? "" : " alias of " + B.AliasOf)
       << "\n";
  }
  OS << "\n// --- index tables and masks ---\n";
  for (const IntBufferInfo &T : Prog.IntBuffers) {
    if (T.isStatic()) {
      OS << "static const int32_t " << T.Name << "[] = {";
      for (size_t I = 0; I < T.Entries.size(); ++I) {
        if (I % 16 == 0)
          OS << "\n  ";
        OS << T.Entries[I] << ",";
      }
      OS << "\n};\n";
    } else {
      OS << "static std::vector<int32_t> " << T.Name << "(" << T.Count
         << ");\n";
    }
  }
  OS << "\n";
}

void CppEmitter::kernels() {
  // Self-contained library kernels; inner loops carry omp simd so the host
  // compiler vectorizes them (the paper's vectorization guarantee, §5.5).
  OS << R"(// --- library kernels ---
static void k_zero(float *D, int64_t N) { std::memset(D, 0, N * 4); }
static void k_copy(float *D, const float *S, int64_t N) {
  std::memcpy(D, S, N * 4);
}
static void k_add_to(float *D, const float *S, int64_t N) {
#pragma omp simd
  for (int64_t I = 0; I < N; ++I) D[I] += S[I];
}
static void k_mul_into(float *D, const float *A, const float *B, int64_t N) {
#pragma omp simd
  for (int64_t I = 0; I < N; ++I) D[I] = A[I] * B[I];
}
static void k_mul_add_to(float *D, const float *A, const float *B,
                         int64_t N) {
#pragma omp simd
  for (int64_t I = 0; I < N; ++I) D[I] += A[I] * B[I];
}
static void k_scale(float *D, float F, int64_t N) {
#pragma omp simd
  for (int64_t I = 0; I < N; ++I) D[I] *= F;
}
static void k_gemm(const float *A, const float *B, float *C, int64_t M,
                   int64_t N, int64_t K, int64_t LdA, int64_t LdB,
                   int64_t LdC, int64_t TA, int64_t TB, int64_t Acc) {
  for (int64_t I = 0; I < M; ++I) {
    float *Row = C + I * LdC;
    if (!Acc)
      for (int64_t J = 0; J < N; ++J) Row[J] = 0.0f;
    for (int64_t P = 0; P < K; ++P) {
      float AV = TA ? A[P * LdA + I] : A[I * LdA + P];
      if (TB) {
        for (int64_t J = 0; J < N; ++J) Row[J] += AV * B[J * LdB + P];
      } else {
        const float *BR = B + P * LdB;
#pragma omp simd
        for (int64_t J = 0; J < N; ++J) Row[J] += AV * BR[J];
      }
    }
  }
}
static void k_gather2d(float *D, const float *S, const int32_t *T,
                       int64_t Rows, int64_t Cols, int64_t Cnt, int64_t Cb) {
  for (int64_t R = 0; R < Rows; ++R)
    for (int64_t J = 0; J < Cnt; ++J) {
      int32_t Idx = T[R * Cols + Cb + J];
      D[R * Cols + Cb + J] = Idx >= 0 ? S[Idx] : 0.0f;
    }
}
static void k_scatter2d(float *D, const float *S, const int32_t *T,
                        int64_t Rows, int64_t Cols, int64_t Cnt,
                        int64_t Cb) {
  for (int64_t R = 0; R < Rows; ++R)
    for (int64_t J = 0; J < Cnt; ++J) {
      int32_t Idx = T[R * Cols + Cb + J];
      if (Idx >= 0) D[Idx] += S[R * Cols + Cb + J];
    }
}
static void k_act_fwd(float *D, const float *S, int64_t Op, int64_t Rows,
                      int64_t Cols, int64_t Cnt, int64_t Cb) {
  for (int64_t R = 0; R < Rows; ++R) {
    float *Dr = D + R * Cols + Cb;
    const float *Sr = S + R * Cols + Cb;
    if (Op == 0) {
#pragma omp simd
      for (int64_t I = 0; I < Cnt; ++I) Dr[I] = Sr[I] > 0 ? Sr[I] : 0.0f;
    } else if (Op == 1) {
      for (int64_t I = 0; I < Cnt; ++I)
        Dr[I] = 1.0f / (1.0f + std::exp(-Sr[I]));
    } else {
      for (int64_t I = 0; I < Cnt; ++I) Dr[I] = std::tanh(Sr[I]);
    }
  }
}
static void k_act_bwd(float *Dg, const float *Og, const float *V,
                      int64_t Op, int64_t Rows, int64_t Cols, int64_t Cnt,
                      int64_t InPlace, int64_t Cb) {
  (void)InPlace;
  for (int64_t R = 0; R < Rows; ++R) {
    int64_t Base = R * Cols + Cb;
    for (int64_t I = 0; I < Cnt; ++I) {
      float D;
      if (Op == 0)
        D = V[Base + I] > 0 ? Og[Base + I] : 0.0f;
      else if (Op == 1)
        D = Og[Base + I] * V[Base + I] * (1.0f - V[Base + I]);
      else
        D = Og[Base + I] * (1.0f - V[Base + I] * V[Base + I]);
      Dg[Base + I] += D;
    }
  }
}
static void k_bias_cols(float *D, const float *Bias, int64_t Rows,
                        int64_t Cols, int64_t Cnt, int64_t Cb) {
  for (int64_t R = 0; R < Rows; ++R) {
#pragma omp simd
    for (int64_t I = 0; I < Cnt; ++I) D[R * Cols + Cb + I] += Bias[R];
  }
}
static void k_bias_rows(float *D, const float *Bias, int64_t Rows,
                        int64_t Cols) {
  for (int64_t R = 0; R < Rows; ++R)
#pragma omp simd
    for (int64_t I = 0; I < Cols; ++I) D[R * Cols + I] += Bias[I];
}
static void k_row_sum(float *D, const float *S, int64_t Rows, int64_t Cols) {
  for (int64_t R = 0; R < Rows; ++R) {
    float Sum = 0;
    for (int64_t I = 0; I < Cols; ++I) Sum += S[R * Cols + I];
    D[R] += Sum;
  }
}
static void k_col_sum(float *D, const float *S, int64_t Rows, int64_t Cols) {
  for (int64_t R = 0; R < Rows; ++R)
    for (int64_t I = 0; I < Cols; ++I) D[I] += S[R * Cols + I];
}
static void k_im2col(float *Col, const float *In, int64_t C, int64_t H,
                     int64_t W, int64_t K, int64_t S, int64_t P, int64_t Rc,
                     int64_t Rb) {
  int64_t OutH = (H + 2 * P - K) / S + 1, OutW = (W + 2 * P - K) / S + 1;
  int64_t Row = 0;
  for (int64_t Ch = 0; Ch < C; ++Ch)
    for (int64_t KY = 0; KY < K; ++KY)
      for (int64_t KX = 0; KX < K; ++KX, ++Row) {
        float *CR = Col + Row * OutH * OutW;
        const float *Chan = In + Ch * H * W;
        for (int64_t Y = Rb; Y < Rb + Rc; ++Y) {
          int64_t IY = Y * S - P + KY;
          for (int64_t X = 0; X < OutW; ++X) {
            int64_t IX = X * S - P + KX;
            CR[Y * OutW + X] = (IY >= 0 && IY < H && IX >= 0 && IX < W)
                                   ? Chan[IY * W + IX] : 0.0f;
          }
        }
      }
}
static void k_col2im(float *Im, const float *Col, int64_t C, int64_t H,
                     int64_t W, int64_t K, int64_t S, int64_t P, int64_t Rc,
                     int64_t Rb) {
  int64_t OutH = (H + 2 * P - K) / S + 1, OutW = (W + 2 * P - K) / S + 1;
  int64_t Row = 0;
  for (int64_t Ch = 0; Ch < C; ++Ch)
    for (int64_t KY = 0; KY < K; ++KY)
      for (int64_t KX = 0; KX < K; ++KX, ++Row) {
        const float *CR = Col + Row * OutH * OutW;
        float *Chan = Im + Ch * H * W;
        for (int64_t Y = Rb; Y < Rb + Rc; ++Y) {
          int64_t IY = Y * S - P + KY;
          if (IY < 0 || IY >= H) continue;
          for (int64_t X = 0; X < OutW; ++X) {
            int64_t IX = X * S - P + KX;
            if (IX >= 0 && IX < W) Chan[IY * W + IX] += CR[Y * OutW + X];
          }
        }
      }
}
static void k_maxpool_fwd(float *Out, const float *In, int32_t *Mask,
                          int64_t C, int64_t H, int64_t W, int64_t K,
                          int64_t S, int64_t P, int64_t Rc, int64_t Rb) {
  int64_t OutH = (H + 2 * P - K) / S + 1, OutW = (W + 2 * P - K) / S + 1;
  for (int64_t Ch = 0; Ch < C; ++Ch)
    for (int64_t Y = Rb; Y < Rb + Rc; ++Y)
      for (int64_t X = 0; X < OutW; ++X) {
        float Max = -INFINITY;
        int64_t Arg = -1;
        for (int64_t KY = 0; KY < K; ++KY)
          for (int64_t KX = 0; KX < K; ++KX) {
            int64_t IY = Y * S - P + KY, IX = X * S - P + KX;
            if (IY < 0 || IY >= H || IX < 0 || IX >= W) continue;
            float V = In[(Ch * H + IY) * W + IX];
            if (V > Max) { Max = V; Arg = (Ch * H + IY) * W + IX; }
          }
        Out[(Ch * OutH + Y) * OutW + X] = Max;
        Mask[(Ch * OutH + Y) * OutW + X] = (int32_t)Arg;
      }
}
static void k_maxpool_bwd(float *InG, const float *OutG,
                          const int32_t *Mask, int64_t C, int64_t H,
                          int64_t W, int64_t K, int64_t S, int64_t P,
                          int64_t Rc, int64_t Rb) {
  int64_t OutH = (H + 2 * P - K) / S + 1, OutW = (W + 2 * P - K) / S + 1;
  for (int64_t Ch = 0; Ch < C; ++Ch)
    for (int64_t Y = Rb; Y < Rb + Rc; ++Y)
      for (int64_t X = 0; X < OutW; ++X) {
        int64_t O = (Ch * OutH + Y) * OutW + X;
        if (Mask[O] >= 0) InG[Mask[O]] += OutG[O];
      }
}
static void k_avgpool_fwd(float *Out, const float *In, int64_t C, int64_t H,
                          int64_t W, int64_t K, int64_t S, int64_t P,
                          int64_t Rc, int64_t Rb) {
  int64_t OutH = (H + 2 * P - K) / S + 1, OutW = (W + 2 * P - K) / S + 1;
  float Inv = 1.0f / (K * K);
  for (int64_t Ch = 0; Ch < C; ++Ch)
    for (int64_t Y = Rb; Y < Rb + Rc; ++Y)
      for (int64_t X = 0; X < OutW; ++X) {
        float Sum = 0;
        for (int64_t KY = 0; KY < K; ++KY)
          for (int64_t KX = 0; KX < K; ++KX) {
            int64_t IY = Y * S - P + KY, IX = X * S - P + KX;
            if (IY >= 0 && IY < H && IX >= 0 && IX < W)
              Sum += In[(Ch * H + IY) * W + IX];
          }
        Out[(Ch * OutH + Y) * OutW + X] = Sum * Inv;
      }
}
static void k_avgpool_bwd(float *InG, const float *OutG, int64_t C,
                          int64_t H, int64_t W, int64_t K, int64_t S,
                          int64_t P, int64_t Rc, int64_t Rb) {
  int64_t OutH = (H + 2 * P - K) / S + 1, OutW = (W + 2 * P - K) / S + 1;
  float Inv = 1.0f / (K * K);
  for (int64_t Ch = 0; Ch < C; ++Ch)
    for (int64_t Y = Rb; Y < Rb + Rc; ++Y)
      for (int64_t X = 0; X < OutW; ++X) {
        float G = OutG[(Ch * OutH + Y) * OutW + X] * Inv;
        for (int64_t KY = 0; KY < K; ++KY)
          for (int64_t KX = 0; KX < K; ++KX) {
            int64_t IY = Y * S - P + KY, IX = X * S - P + KX;
            if (IY >= 0 && IY < H && IX >= 0 && IX < W)
              InG[(Ch * H + IY) * W + IX] += G;
          }
      }
}
static void k_softmax_row(float *D, const float *S, int64_t C) {
  float Max = S[0];
  for (int64_t I = 1; I < C; ++I) Max = latte_max(Max, S[I]);
  float Sum = 0;
  for (int64_t I = 0; I < C; ++I) { D[I] = std::exp(S[I] - Max); Sum += D[I]; }
  for (int64_t I = 0; I < C; ++I) D[I] /= Sum;
}
static void k_softmax_fwd(float *D, const float *S, int64_t Rows,
                          int64_t C) {
  for (int64_t R = 0; R < Rows; ++R) k_softmax_row(D + R * C, S + R * C, C);
}
static void k_softmax_loss_fwd(float *Prob, const float *S,
                               const float *Lab, float *Loss, int64_t Rows,
                               int64_t C) {
  for (int64_t R = 0; R < Rows; ++R) {
    k_softmax_row(Prob + R * C, S + R * C, C);
    float P = Prob[R * C + (int64_t)Lab[R]];
    Loss[R] = -std::log(P < 1e-20f ? 1e-20f : P);
  }
}
static void k_softmax_loss_bwd(float *G, const float *Prob,
                               const float *Lab, int64_t Rows, int64_t C,
                               float Scale) {
  for (int64_t R = 0; R < Rows; ++R)
    for (int64_t I = 0; I < C; ++I)
      G[R * C + I] += (Prob[R * C + I] -
                       (I == (int64_t)Lab[R] ? 1.0f : 0.0f)) * Scale;
}
static void k_softmax_bwd(float *Gin, const float *Og, const float *P,
                          int64_t Rows, int64_t C) {
  for (int64_t R = 0; R < Rows; ++R) {
    float Dot = 0;
    for (int64_t I = 0; I < C; ++I) Dot += Og[R * C + I] * P[R * C + I];
    for (int64_t I = 0; I < C; ++I)
      Gin[R * C + I] += P[R * C + I] * (Og[R * C + I] - Dot);
  }
}
static uint64_t g_rng_state = 0x1a77e;
static void k_dropout_mask(float *Mask, int64_t N, float Keep) {
  for (int64_t I = 0; I < N; ++I) {
    g_rng_state += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = g_rng_state;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    Z ^= Z >> 31;
    double U = (double)(Z >> 11) / 9007199254740992.0;
    Mask[I] = U < Keep ? 1.0f / Keep : 0.0f;
  }
}

)";
}

void CppEmitter::initFunction() {
  OS << "static void latte_init() {\n";
  if (Prog.Plan.Valid) {
    OS << "  std::memset(latte_arena, 0, sizeof latte_arena);\n";
    for (const BufferInfo &B : Prog.Buffers) {
      const BufferInfo *Root = Prog.resolveAlias(B.Name);
      OS << "  " << B.Name << " = latte_arena + "
         << Prog.Plan.Offsets.at(Root->Name) / 4 << ";\n";
    }
    OS << "}\n\n";
    return;
  }
  for (const BufferInfo &B : Prog.Buffers)
    if (B.AliasOf.empty())
      OS << "  st_" << B.Name << ".assign(" << B.Dims.numElements()
         << ", 0.0f);\n";
  // Resolve alias chains to owning storage.
  for (const BufferInfo &B : Prog.Buffers)
    OS << "  " << B.Name << " = st_" << Prog.resolveAlias(B.Name)->Name
       << ".data();\n";
  OS << "}\n\n";
}

void CppEmitter::passFunction(const char *Name, const Stmt *Root,
                              bool ZeroOnForward) {
  OS << "void " << Name << "() {\n";
  if (Prog.Plan.Valid) {
    // Pass-top clears cover only pinned/retained roots; interval buffers
    // are cleared lazily between units (the plan's ZeroBefore schedule),
    // mirroring engine::Executor::execProgram.
    const MemoryPlan &Plan = Prog.Plan;
    const std::vector<std::string> &Tops =
        ZeroOnForward ? Plan.ZeroOnForwardPinned : Plan.ZeroOnBackwardPinned;
    for (const std::string &RootName : Tops)
      OS << "  k_zero(" << RootName << ", "
         << Prog.findBuffer(RootName)->Dims.numElements() << ");\n";
    int GlobalBase = ZeroOnForward ? 0 : Plan.NumForwardUnits;
    const auto *B = dyn_cast_if_present<const BlockStmt>(Root);
    if (B) {
      if (!B->label().empty())
        line(1, "// " + B->label());
      const std::vector<StmtPtr> &Units = B->stmts();
      for (size_t I = 0; I < Units.size(); ++I) {
        auto It = Plan.ZeroBefore.find(GlobalBase + static_cast<int>(I));
        if (It != Plan.ZeroBefore.end())
          for (const std::string &RootName : It->second)
            OS << "  k_zero(" << RootName << ", "
               << Prog.findBuffer(RootName)->Dims.numElements() << ");\n";
        emitStmt(Units[I].get(), 1);
      }
    } else if (Root) {
      emitStmt(Root, 1);
    }
    OS << "}\n\n";
    return;
  }
  for (const BufferInfo &B : Prog.Buffers) {
    bool Zero = ZeroOnForward ? B.ZeroOnForward : B.ZeroOnBackward;
    if (Zero)
      OS << "  k_zero(" << B.Name << ", " << B.Dims.numElements() << ");\n";
  }
  if (Root)
    emitStmt(Root, 1);
  OS << "}\n\n";
}

void CppEmitter::driver() {
  OS << "// --- .ltd file driver ---\n"
        "struct NamedBuf { const char *Name; float *Data; int64_t N; };\n"
        "static std::vector<NamedBuf> allBuffers() {\n"
        "  return {\n";
  for (const BufferInfo &B : Prog.Buffers)
    OS << "    {\"" << B.Name << "\", " << B.Name << ", "
       << B.Dims.numElements() << "},\n";
  OS << "  };\n}\n";
  OS << R"(
static bool readLtd(const char *Path) {
  FILE *F = std::fopen(Path, "rb");
  if (!F) return false;
  char Magic[4]; uint32_t Count = 0;
  if (std::fread(Magic, 1, 4, F) != 4 || std::memcmp(Magic, "LTD1", 4) ||
      std::fread(&Count, 4, 1, F) != 1) { std::fclose(F); return false; }
  std::vector<NamedBuf> Bufs = allBuffers();
  for (uint32_t I = 0; I < Count; ++I) {
    uint32_t NameLen = 0, Rank = 0;
    if (std::fread(&NameLen, 4, 1, F) != 1) break;
    std::string Name(NameLen, 0);
    if (std::fread(Name.data(), 1, NameLen, F) != NameLen ||
        std::fread(&Rank, 4, 1, F) != 1) break;
    int64_t N = 1;
    for (uint32_t D = 0; D < Rank; ++D) {
      int64_t Dim = 0;
      if (std::fread(&Dim, 8, 1, F) != 1) { std::fclose(F); return false; }
      N *= Dim;
    }
    float *Target = nullptr;
    for (NamedBuf &B : Bufs)
      if (Name == B.Name && B.N == N) Target = B.Data;
    if (Target) {
      if (std::fread(Target, 4, N, F) != (size_t)N) break;
    } else {
      std::fseek(F, N * 4, SEEK_CUR);
    }
  }
  std::fclose(F);
  return true;
}
static bool writeLtd(const char *Path) {
  FILE *F = std::fopen(Path, "wb");
  if (!F) return false;
  std::vector<NamedBuf> Bufs = allBuffers();
  uint32_t Count = (uint32_t)Bufs.size();
  std::fwrite("LTD1", 1, 4, F);
  std::fwrite(&Count, 4, 1, F);
  for (NamedBuf &B : Bufs) {
    uint32_t NameLen = (uint32_t)std::strlen(B.Name), Rank = 1;
    std::fwrite(&NameLen, 4, 1, F);
    std::fwrite(B.Name, 1, NameLen, F);
    std::fwrite(&Rank, 4, 1, F);
    int64_t N = B.N;
    std::fwrite(&N, 8, 1, F);
    std::fwrite(B.Data, 4, N, F);
  }
  std::fclose(F);
  return true;
}

int main(int Argc, char **Argv) {
  if (Argc < 3) {
    std::fprintf(stderr, "usage: %s <in.ltd> <out.ltd> [fwd|fwdbwd]\n",
                 Argv[0]);
    return 2;
  }
  latte_init();
  if (!readLtd(Argv[1])) {
    std::fprintf(stderr, "cannot read %s\n", Argv[1]);
    return 1;
  }
  latte_forward();
  if (Argc < 4 || std::string(Argv[3]) == "fwdbwd")
    latte_backward();
  if (!writeLtd(Argv[2])) {
    std::fprintf(stderr, "cannot write %s\n", Argv[2]);
    return 1;
  }
  return 0;
}
)";
}

std::string CppEmitter::run() {
  header();
  buffers();
  kernels();
  initFunction();
  OS << "void latte_forward();\nvoid latte_backward();\n\n";
  passFunction("latte_forward", Prog.Forward.get(), /*ZeroOnForward=*/true);
  passFunction("latte_backward", Prog.Backward.get(),
               /*ZeroOnForward=*/false);
  driver();
  return OS.str();
}

//===----------------------------------------------------------------------===//
// JIT emission
//===----------------------------------------------------------------------===//
//
// The JIT translation unit must reproduce engine::Executor::evalFloat /
// evalInt / execStmt BITWISE, so emission is two-context:
//
//  * Float context (store values, decl inits, if/select conditions,
//    compare operands): every intermediate is float, IntConst and loop
//    variables pass through an explicit (float) cast (evalFloat does the
//    same static_cast), float constants are hex literals of the
//    already-rounded float value (no decimal round-trip), and Min/Max use
//    std::min/std::max tie semantics (latte_jit_min/max below), which
//    differ from generateCpp's `A < B ? A : B` on ±0.0 ties.
//
//  * Int context (indices, offsets, loop bounds, kernel expr args):
//    int64_t arithmetic; C integer division matches evalInt.
//
// Parallel-annotated loops split into an explicit `if (LJ->par != 0)`
// branch pair because the interpreter's two paths differ observably: the
// parallel path copies the environment per iteration (outer float locals
// become per-iteration private copies whose writes are discarded), the
// serial path shares it. The parallel branch therefore snapshots every
// in-scope float local before the pragma and re-declares it inside the
// loop body — exact Env-copy semantics with or without OpenMP — while the
// serial branch reuses the enclosing locals directly. Loops nested inside
// a parallel branch are emitted serial outright, mirroring the
// interpreter's AllowParallel=false propagation.
//
// Kernel calls normally dispatch through the ctx trampoline back into the
// engine, executing the exact library kernels the interpreter uses. A
// whitelisted subset instead gets a SPECIALIZED CLONE emitted into the
// module: the library loop structure reproduced statement-for-statement
// with every shape argument a compile-time constant, so the system
// compiler can unroll the (tiny, now constant-bound) window loops and
// split away the padding checks that runtime-geometry library kernels
// re-test on every element. The whitelist is exactly the kernels whose
// float work is data movement, comparison, or plain addition in a fixed
// order — im2col/col2im, max pool, ReLU, bias adds, gather/scatter — for
// which any conforming compilation is bitwise identical to the library
// kernel: without fast-math the compiler may not reassociate, and no
// clone contains a multiply feeding an add, so -ffp-contract=off vs the
// host library's contraction setting cannot matter either. Kernels where
// instruction selection can change results — Sgemm, softmax (libm +
// reductions), Row/ColSumAdd, average pooling, sigmoid/tanh — keep the
// trampoline.

class JitEmitter {
public:
  explicit JitEmitter(const Program &Prog) : Prog(Prog) {
    for (size_t I = 0; I < Prog.Buffers.size(); ++I)
      BufIndex[Prog.Buffers[I].Name] = I;
    for (size_t I = 0; I < Prog.IntBuffers.size(); ++I)
      IntBufIndex[Prog.IntBuffers[I].Name] = I;
  }

  JitSource run();

private:
  void prologue();
  void emitPass(const Stmt *Root, char PassTag, std::vector<JitTaskInfo> &Out);
  void emitTask(const Stmt *Unit, const std::string &Symbol);
  bool jittable(const Stmt *S) const;
  void collectLoadStoreBuffers(const Stmt *S,
                               std::set<std::string> &Names) const;
  void collectExprBuffers(const Expr *E, std::set<std::string> &Names) const;

  void emitStmt(const Stmt *S, int Indent);
  void emitFor(const ForStmt *F, int Indent);
  void emitKernel(const KernelCallStmt *K, int Indent);
  std::string specializedKernel(const KernelCallStmt *K);
  void emitSpecBody(KernelKind Kind, const std::vector<int64_t> &IA);
  std::string floatExpr(const Expr *E) const;
  std::string intExpr(const Expr *E) const;
  std::string elemRef(const std::string &Buffer,
                      const std::vector<ExprPtr> &Indices) const;

  std::vector<std::string> visibleLocals() const {
    std::vector<std::string> Out;
    for (const std::vector<std::string> &Scope : Scopes)
      Out.insert(Out.end(), Scope.begin(), Scope.end());
    return Out;
  }

  void line(int Indent, const std::string &Text) {
    for (int I = 0; I < Indent; ++I)
      OS << "  ";
    OS << Text << "\n";
  }

  const Program &Prog;
  std::ostringstream OS;
  /// Specialized kernel clones: (kind, int args) signature -> emitted
  /// function name. SpecOS accumulates their definitions in first-use
  /// order (deterministic); run() splices them ahead of the task bodies.
  std::map<std::string, std::string> SpecCache;
  std::ostringstream SpecOS;
  int SpecCounter = 0;
  std::unordered_map<std::string, size_t> BufIndex;
  std::unordered_map<std::string, size_t> IntBufIndex;
  /// C-visible float locals, one vector per open brace scope.
  std::vector<std::vector<std::string>> Scopes;
  /// True while emitting inside either branch of a parallel split: inner
  /// parallel annotations are ignored (interpreter: AllowParallel=false in
  /// parallel iterations; and in the serial branch par is 0 at runtime).
  bool InParallelBody = false;
  int Counter = 0;
};

/// Hex literal of the float the interpreter would hold — exact, no
/// decimal round-trip ("%.9g" can double-round through parsing).
std::string jitFloatLit(double V) {
  float F = static_cast<float>(V);
  if (std::isinf(F))
    return F < 0 ? "(-INFINITY)" : "INFINITY";
  return formatString("%a", static_cast<double>(F)) + "f";
}

std::string jitDoubleLit(double V) {
  if (std::isinf(V))
    return V < 0 ? "(-INFINITY)" : "INFINITY";
  return formatString("%a", V);
}

std::string JitEmitter::intExpr(const Expr *E) const {
  switch (E->kind()) {
  case Expr::Kind::IntConst:
    // Cast keeps latte_jit_min/max template deduction unambiguous against
    // int64_t operands and forces 64-bit division semantics.
    return "(int64_t)" + std::to_string(cast<IntConstExpr>(E)->value());
  case Expr::Kind::Var:
    return cast<VarExpr>(E)->name();
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    std::string L = intExpr(B->lhs()), R = intExpr(B->rhs());
    switch (B->op()) {
    case BinaryOpKind::Add:
      return "(" + L + " + " + R + ")";
    case BinaryOpKind::Sub:
      return "(" + L + " - " + R + ")";
    case BinaryOpKind::Mul:
      return "(" + L + " * " + R + ")";
    case BinaryOpKind::Div:
      return "(" + L + " / " + R + ")";
    case BinaryOpKind::Min:
      return "latte_jit_min(" + L + ", " + R + ")";
    case BinaryOpKind::Max:
      return "latte_jit_max(" + L + ", " + R + ")";
    }
    latteUnreachable("unknown binary op");
  }
  default:
    // evalInt would fault at runtime; an undeclared identifier turns this
    // into a compile error and a clean interpreter fallback instead.
    return "latte_jit_non_integer_expr";
  }
}

std::string JitEmitter::elemRef(const std::string &Buffer,
                                const std::vector<ExprPtr> &Indices) const {
  const BufferInfo *B = Prog.findBuffer(Buffer);
  assert(B && "load/store of unknown buffer");
  std::vector<int64_t> Strides = B->Dims.strides();
  assert(Indices.size() == Strides.size() && "index rank mismatch");
  std::string Off = "(int64_t)0";
  for (size_t I = 0; I < Indices.size(); ++I)
    Off += " + " + intExpr(Indices[I].get()) + " * (int64_t)" +
           std::to_string(Strides[I]);
  return Buffer + "[" + Off + "]";
}

std::string JitEmitter::floatExpr(const Expr *E) const {
  switch (E->kind()) {
  case Expr::Kind::IntConst:
    // evalFloat: static_cast<float>(value) — same exact conversion here.
    return "((float)(" + std::to_string(cast<IntConstExpr>(E)->value()) +
           "))";
  case Expr::Kind::FloatConst:
    return jitFloatLit(cast<FloatConstExpr>(E)->value());
  case Expr::Kind::Var:
    // No-op on float locals; the exact evalFloat int->float conversion on
    // loop variables. Keeping the cast on the leaf (rather than around a
    // whole subexpression) preserves per-operation rounding.
    return "((float)" + cast<VarExpr>(E)->name() + ")";
  case Expr::Kind::Load: {
    const auto *L = cast<LoadExpr>(E);
    return elemRef(L->buffer(), L->indices());
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    std::string L = floatExpr(B->lhs()), R = floatExpr(B->rhs());
    switch (B->op()) {
    case BinaryOpKind::Add:
      return "(" + L + " + " + R + ")";
    case BinaryOpKind::Sub:
      return "(" + L + " - " + R + ")";
    case BinaryOpKind::Mul:
      return "(" + L + " * " + R + ")";
    case BinaryOpKind::Div:
      return "(" + L + " / " + R + ")";
    case BinaryOpKind::Min:
      return "latte_jit_min(" + L + ", " + R + ")";
    case BinaryOpKind::Max:
      return "latte_jit_max(" + L + ", " + R + ")";
    }
    latteUnreachable("unknown binary op");
  }
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    std::string V = floatExpr(U->operand());
    switch (U->op()) {
    case UnaryOpKind::Neg:
      return "(-" + V + ")";
    case UnaryOpKind::Exp:
      return "std::exp(" + V + ")";
    case UnaryOpKind::Log:
      return "std::log(" + V + ")";
    case UnaryOpKind::Tanh:
      return "std::tanh(" + V + ")";
    case UnaryOpKind::Sigmoid:
      return "(1.0f / (1.0f + std::exp(-(" + V + "))))";
    case UnaryOpKind::Sqrt:
      return "std::sqrt(" + V + ")";
    case UnaryOpKind::Abs:
      return "std::fabs(" + V + ")";
    }
    latteUnreachable("unknown unary op");
  }
  case Expr::Kind::Compare: {
    const auto *C = cast<CompareExpr>(E);
    static const char *Ops[] = {"<", "<=", ">", ">=", "==", "!="};
    return "((" + floatExpr(C->lhs()) + " " + Ops[static_cast<int>(C->op())] +
           " " + floatExpr(C->rhs()) + ") ? 1.0f : 0.0f)";
  }
  case Expr::Kind::Select: {
    const auto *S = cast<SelectExpr>(E);
    return "(((" + floatExpr(S->cond()) + ") != 0.0f) ? (" +
           floatExpr(S->trueValue()) + ") : (" +
           floatExpr(S->falseValue()) + "))";
  }
  }
  latteUnreachable("unknown expression kind");
}

bool JitEmitter::jittable(const Stmt *S) const {
  if (!S)
    return true;
  switch (S->kind()) {
  case Stmt::Kind::Block:
    for (const StmtPtr &Child : cast<BlockStmt>(S)->stmts())
      if (!jittable(Child.get()))
        return false;
    return true;
  case Stmt::Kind::For:
    // Slice-rotated batch loops need the executor's slice-grouped schedule
    // (iterations sharing a rotated slice must not run concurrently);
    // decline so the per-task interpreter fallback applies.
    if (cast<ForStmt>(S)->annotations().SliceModulus > 0)
      return false;
    return jittable(cast<ForStmt>(S)->body());
  case Stmt::Kind::TiledLoop:
    return jittable(cast<TiledLoopStmt>(S)->body());
  case Stmt::Kind::If: {
    const auto *If = cast<IfStmt>(S);
    return jittable(If->thenStmt()) && jittable(If->elseStmt());
  }
  case Stmt::Kind::KernelCall: {
    const auto *K = cast<KernelCallStmt>(S);
    // Dropout draws from the engine's RNG stream; the grad-sync hook needs
    // the buffer's NAME, which the resolved trampoline ABI has dropped.
    if (K->kernel() == KernelKind::DropoutMask ||
        K->kernel() == KernelKind::GradSyncHook)
      return false;
    return K->bufs().size() <= static_cast<size_t>(jit::kMaxKernelBufs) &&
           K->exprArgs().size() <=
               static_cast<size_t>(jit::kMaxKernelExprArgs);
  }
  case Stmt::Kind::Store:
  case Stmt::Kind::Decl:
  case Stmt::Kind::AssignVar:
  case Stmt::Kind::Barrier:
    return true;
  }
  latteUnreachable("unknown statement kind");
}

void JitEmitter::collectExprBuffers(const Expr *E,
                                    std::set<std::string> &Names) const {
  switch (E->kind()) {
  case Expr::Kind::Load: {
    const auto *L = cast<LoadExpr>(E);
    Names.insert(L->buffer());
    for (const ExprPtr &I : L->indices())
      collectExprBuffers(I.get(), Names);
    return;
  }
  case Expr::Kind::Binary:
    collectExprBuffers(cast<BinaryExpr>(E)->lhs(), Names);
    collectExprBuffers(cast<BinaryExpr>(E)->rhs(), Names);
    return;
  case Expr::Kind::Unary:
    collectExprBuffers(cast<UnaryExpr>(E)->operand(), Names);
    return;
  case Expr::Kind::Compare:
    collectExprBuffers(cast<CompareExpr>(E)->lhs(), Names);
    collectExprBuffers(cast<CompareExpr>(E)->rhs(), Names);
    return;
  case Expr::Kind::Select:
    collectExprBuffers(cast<SelectExpr>(E)->cond(), Names);
    collectExprBuffers(cast<SelectExpr>(E)->trueValue(), Names);
    collectExprBuffers(cast<SelectExpr>(E)->falseValue(), Names);
    return;
  default:
    return;
  }
}

void JitEmitter::collectLoadStoreBuffers(const Stmt *S,
                                         std::set<std::string> &Names) const {
  if (!S)
    return;
  switch (S->kind()) {
  case Stmt::Kind::Block:
    for (const StmtPtr &Child : cast<BlockStmt>(S)->stmts())
      collectLoadStoreBuffers(Child.get(), Names);
    return;
  case Stmt::Kind::For: {
    const auto *F = cast<ForStmt>(S);
    collectExprBuffers(F->lo(), Names);
    collectLoadStoreBuffers(F->body(), Names);
    return;
  }
  case Stmt::Kind::TiledLoop:
    collectLoadStoreBuffers(cast<TiledLoopStmt>(S)->body(), Names);
    return;
  case Stmt::Kind::If: {
    const auto *If = cast<IfStmt>(S);
    collectExprBuffers(If->cond(), Names);
    collectLoadStoreBuffers(If->thenStmt(), Names);
    collectLoadStoreBuffers(If->elseStmt(), Names);
    return;
  }
  case Stmt::Kind::Store: {
    const auto *St = cast<StoreStmt>(S);
    Names.insert(St->buffer());
    for (const ExprPtr &I : St->indices())
      collectExprBuffers(I.get(), Names);
    collectExprBuffers(St->value(), Names);
    return;
  }
  case Stmt::Kind::Decl:
    collectExprBuffers(cast<DeclStmt>(S)->init(), Names);
    return;
  case Stmt::Kind::AssignVar:
    collectExprBuffers(cast<AssignVarStmt>(S)->value(), Names);
    return;
  case Stmt::Kind::KernelCall: {
    // Kernel buffer args go through LJ->bufs indices, not named aliases;
    // only offset / expr-arg expressions could name buffers via loads.
    const auto *K = cast<KernelCallStmt>(S);
    for (const KernelBufArg &A : K->bufs())
      if (A.Offset)
        collectExprBuffers(A.Offset.get(), Names);
    for (const ExprPtr &E : K->exprArgs())
      collectExprBuffers(E.get(), Names);
    return;
  }
  case Stmt::Kind::Barrier:
    return;
  }
  latteUnreachable("unknown statement kind");
}

/// Returns the name of the specialized clone for \p K, emitting its
/// definition into SpecOS on first use — or "" when the kernel must keep
/// the engine trampoline (see the whitelist rationale in the file header
/// comment above JitEmitter).
std::string JitEmitter::specializedKernel(const KernelCallStmt *K) {
  KernelKind Kind = K->kernel();
  switch (Kind) {
  case KernelKind::Zero:
  case KernelKind::Copy:
  case KernelKind::AddTo:
  case KernelKind::Gather2D:
  case KernelKind::ScatterAdd2D:
  case KernelKind::BiasAddCols:
  case KernelKind::BiasAddPerRow:
  case KernelKind::Im2ColRows:
  case KernelKind::Col2ImRows:
  case KernelKind::MaxPoolFwdRows:
  case KernelKind::MaxPoolBwdRows:
    break;
  case KernelKind::ActFwdCols:
    // ReLU forward is a max pattern; sigmoid/tanh go through libm and the
    // trampoline. ReLU *backward* stays on the trampoline too: its gated
    // accumulate is exactly the shape -fno-tree-loop-if-convert (see
    // jit_backend.cpp baseFlags) leaves scalar, so the library's
    // vectorized build wins.
    if (K->intArgs().empty() ||
        static_cast<ActOpKind>(K->intArgs()[0]) != ActOpKind::Relu)
      return "";
    break;
  default:
    return "";
  }
  std::string Key = std::to_string(static_cast<int64_t>(Kind));
  for (int64_t V : K->intArgs())
    Key += ":" + std::to_string(V);
  auto It = SpecCache.find(Key);
  if (It != SpecCache.end())
    return It->second;
  std::string Name = "latte_jit_spec_" + std::to_string(SpecCounter++);
  SpecCache.emplace(Key, Name);
  SpecOS << "static void " << Name
         << "(float *const *FB, int32_t *const *IB, const int64_t *EA) {\n"
            "  (void)IB; (void)EA;\n";
  emitSpecBody(Kind, K->intArgs());
  SpecOS << "}\n\n";
  return Name;
}

/// The clone bodies. Each reproduces the corresponding library kernel
/// (src/kernels/) statement-for-statement — same loop order, same
/// comparison and accumulation sequence — with the IA shape arguments
/// substituted as integer literals. Buffer pointers arrive pre-offset in
/// FB/IB exactly as execKernelResolved would see them; EA carries the
/// runtime row/column window origin.
void JitEmitter::emitSpecBody(KernelKind Kind,
                              const std::vector<int64_t> &IA) {
  std::ostringstream &O = SpecOS;
  auto N = [](int64_t V) { return std::to_string(V); };
  switch (Kind) {
  case KernelKind::Zero:
    O << "  std::memset(FB[0], 0, " << N(IA[0]) << " * sizeof(float));\n";
    return;
  case KernelKind::Copy:
    O << "  std::memcpy(FB[0], FB[1], " << N(IA[0])
      << " * sizeof(float));\n";
    return;
  case KernelKind::AddTo:
    O << "  float *Dst = FB[0];\n"
         "  const float *Src = FB[1];\n"
         "  for (int64_t I = 0; I < "
      << N(IA[0]) << "; ++I)\n    Dst[I] += Src[I];\n";
    return;
  case KernelKind::Gather2D:
    O << "  float *Dst = FB[0];\n"
         "  const float *Src = FB[1];\n"
         "  const int32_t *Table = IB[2];\n"
         "  const int64_t Cb = EA[0];\n"
         "  for (int64_t R = 0; R < "
      << N(IA[0]) << "; ++R) {\n    float *D = Dst + R * " << N(IA[1])
      << " + Cb;\n    const int32_t *T = Table + R * " << N(IA[1])
      << " + Cb;\n    for (int64_t I = 0; I < " << N(IA[2])
      << "; ++I) {\n      const int32_t Idx = T[I];\n"
         "      D[I] = Idx >= 0 ? Src[Idx] : 0.0f;\n    }\n  }\n";
    return;
  case KernelKind::ScatterAdd2D:
    O << "  float *Dst = FB[0];\n"
         "  const float *Src = FB[1];\n"
         "  const int32_t *Table = IB[2];\n"
         "  const int64_t Cb = EA[0];\n"
         "  for (int64_t R = 0; R < "
      << N(IA[0]) << "; ++R) {\n    const float *S = Src + R * " << N(IA[1])
      << " + Cb;\n    const int32_t *T = Table + R * " << N(IA[1])
      << " + Cb;\n    for (int64_t I = 0; I < " << N(IA[2])
      << "; ++I) {\n      const int32_t Idx = T[I];\n"
         "      if (Idx >= 0)\n        Dst[Idx] += S[I];\n    }\n  }\n";
    return;
  case KernelKind::ActFwdCols:
    // IA: {Op(=Relu), Rows, Cols, ColCount}; EA: {ColBegin}
    O << "  float *Dst = FB[0];\n"
         "  const float *Src = FB[1];\n"
         "  const int64_t Cb = EA[0];\n"
         "  for (int64_t R = 0; R < "
      << N(IA[1]) << "; ++R) {\n    float *D = Dst + R * " << N(IA[2])
      << " + Cb;\n    const float *S = Src + R * " << N(IA[2])
      << " + Cb;\n    for (int64_t I = 0; I < " << N(IA[3])
      << "; ++I)\n      D[I] = S[I] > 0.0f ? S[I] : 0.0f;\n  }\n";
    return;
  case KernelKind::BiasAddCols:
    // IA: {Rows, Cols, ColCount}; EA: {ColBegin}
    O << "  float *Dst = FB[0];\n"
         "  const float *Bias = FB[1];\n"
         "  const int64_t Cb = EA[0];\n"
         "  for (int64_t R = 0; R < "
      << N(IA[0]) << "; ++R) {\n    float *D = Dst + R * " << N(IA[1])
      << " + Cb;\n    const float B = Bias[R];\n"
         "    for (int64_t I = 0; I < "
      << N(IA[2]) << "; ++I)\n      D[I] += B;\n  }\n";
    return;
  case KernelKind::BiasAddPerRow:
    O << "  float *Dst = FB[0];\n"
         "  const float *Bias = FB[1];\n"
         "  for (int64_t R = 0; R < "
      << N(IA[0]) << "; ++R) {\n    float *D = Dst + R * " << N(IA[1])
      << ";\n    for (int64_t I = 0; I < " << N(IA[1])
      << "; ++I)\n      D[I] += Bias[I];\n  }\n";
    return;
  case KernelKind::Im2ColRows:
  case KernelKind::Col2ImRows: {
    // IA: {C, H, W, K, S, Pad, RowCount}; EA: {RowBegin}.
    //
    // The library loops guard every element against the padding border.
    // Those conditionals are position-dependent, so with every shape
    // constant they resolve at emission time: each (KY, KX) slice gets a
    // precomputed valid Y/X window, a check-free interior loop (a plain
    // strided copy / accumulate the host compiler vectorizes without
    // if-conversion), and explicit zero-fill (im2col) or skip (col2im)
    // borders. Values, visit set, and accumulation order all match the
    // library kernel — the split only removes comparisons whose outcome
    // is known here.
    int64_t C = IA[0], H = IA[1], W = IA[2], K = IA[3], S = IA[4],
            P = IA[5], RC = IA[6];
    int64_t OutH = (H + 2 * P - K) / S + 1;
    int64_t OutW = (W + 2 * P - K) / S + 1;
    bool Fwd = Kind == KernelKind::Im2ColRows;
    auto CeilDiv = [](int64_t A, int64_t B) {
      return A <= 0 ? int64_t(0) : (A + B - 1) / B;
    };
    O << "  const int64_t Rb = EA[0];\n"
      << (Fwd ? "  float *Col = FB[0];\n  const float *Image = FB[1];\n"
              : "  float *Image = FB[0];\n  const float *Col = FB[1];\n")
      << "  const int64_t Re = Rb + " << N(RC)
      << ";\n"
         "  for (int64_t C = 0; C < "
      << N(C) << "; ++C) {\n"
      << (Fwd ? "    const float *Chan = Image + C * "
              : "    float *Chan = Image + C * ")
      << N(H * W) << ";\n";
    for (int64_t KY = 0; KY < K; ++KY) {
      for (int64_t KX = 0; KX < K; ++KX) {
        // Output positions whose input index stays in bounds:
        // 0 <= Y*S - P + KY < H  (and the same for X with KX).
        int64_t YLo = std::min(OutH, CeilDiv(P - KY, S));
        int64_t YHi = H - 1 + P - KY >= 0
                          ? std::min(OutH, (H - 1 + P - KY) / S + 1)
                          : YLo;
        int64_t XLo = std::min(OutW, CeilDiv(P - KX, S));
        int64_t XHi = W - 1 + P - KX >= 0
                          ? std::min(OutW, (W - 1 + P - KX) / S + 1)
                          : XLo;
        YHi = std::max(YHi, YLo);
        XHi = std::max(XHi, XLo);
        O << "    { // KY=" << KY << " KX=" << KX << "\n"
          << (Fwd ? "      float *ColRow = Col + (C * "
                  : "      const float *ColRow = Col + (C * ")
          << N(K * K) << " + " << N(KY * K + KX) << ") * " << N(OutH * OutW)
          << ";\n"
             "      const int64_t Y0 = Rb > "
          << N(YLo) << " ? Rb : " << N(YLo)
          << ";\n"
             "      const int64_t Y1 = Re < "
          << N(YHi) << " ? Re : " << N(YHi) << ";\n";
        if (Fwd)
          O << "      const int64_t He = Y0 < Re ? Y0 : Re;\n"
               "      for (int64_t Y = Rb; Y < He; ++Y)\n"
               "        for (int64_t X = 0; X < "
            << N(OutW) << "; ++X)\n          ColRow[Y * " << N(OutW)
            << " + X] = 0.0f;\n";
        O << "      for (int64_t Y = Y0; Y < Y1; ++Y) {\n";
        if (Fwd) {
          O << "        const float *Src = Chan + (Y * " << N(S) << " + "
            << N(KY - P) << ") * " << N(W)
            << ";\n"
               "        for (int64_t X = 0; X < "
            << N(XLo) << "; ++X)\n          ColRow[Y * " << N(OutW)
            << " + X] = 0.0f;\n"
               "        for (int64_t X = "
            << N(XLo) << "; X < " << N(XHi) << "; ++X)\n          ColRow[Y * "
            << N(OutW) << " + X] = Src[X * " << N(S) << " + " << N(KX - P)
            << "];\n"
               "        for (int64_t X = "
            << N(XHi) << "; X < " << N(OutW) << "; ++X)\n          ColRow[Y * "
            << N(OutW) << " + X] = 0.0f;\n";
        } else {
          O << "        float *Dst = Chan + (Y * " << N(S) << " + "
            << N(KY - P) << ") * " << N(W)
            << ";\n"
               "        for (int64_t X = "
            << N(XLo) << "; X < " << N(XHi) << "; ++X)\n          Dst[X * "
            << N(S) << " + " << N(KX - P) << "] += ColRow[Y * " << N(OutW)
            << " + X];\n";
        }
        O << "      }\n";
        if (Fwd)
          O << "      const int64_t Te = Y1 > He ? Y1 : He;\n"
               "      for (int64_t Y = Te; Y < Re; ++Y)\n"
               "        for (int64_t X = 0; X < "
            << N(OutW) << "; ++X)\n          ColRow[Y * " << N(OutW)
            << " + X] = 0.0f;\n";
        O << "    }\n";
      }
    }
    O << "  }\n";
    return;
  }
  case KernelKind::MaxPoolFwdRows: {
    // IA: {C, H, W, K, S, Pad, RowCount}; EA: {RowBegin}. Same split idea
    // as im2col: outputs whose pooling window lies fully inside the image
    // get an unrolled check-free compare chain (window offsets are
    // compile-time constants here); border outputs run the
    // library-identical guarded loops. Each output is written
    // independently and window elements are visited in the library's
    // KY-then-KX order, so results are bitwise identical.
    int64_t C = IA[0], H = IA[1], W = IA[2], K = IA[3], S = IA[4],
            P = IA[5], RC = IA[6];
    int64_t OutH = (H + 2 * P - K) / S + 1;
    int64_t OutW = (W + 2 * P - K) / S + 1;
    auto CeilDiv = [](int64_t A, int64_t B) {
      return A <= 0 ? int64_t(0) : (A + B - 1) / B;
    };
    // Full-window outputs: 0 <= Y*S - P and Y*S - P + K - 1 < H.
    int64_t YF0 = std::min(OutH, CeilDiv(P, S));
    int64_t YF1 =
        H + P - K >= 0 ? std::min(OutH, (H + P - K) / S + 1) : YF0;
    YF1 = std::max(YF1, YF0);
    int64_t XF0 = std::min(OutW, CeilDiv(P, S));
    int64_t XF1 =
        W + P - K >= 0 ? std::min(OutW, (W + P - K) / S + 1) : XF0;
    XF1 = std::max(XF1, XF0);
    // Emits the guarded per-output loop over X in [XA, XB), inside an
    // enclosing Y loop. Identical to the library body.
    auto CheckedX = [&](const std::string &XA, const std::string &XB) {
      O << "        for (int64_t X = " << XA << "; X < " << XB
        << "; ++X) {\n"
           "          float Max = -INFINITY;\n"
           "          int64_t ArgMax = -1;\n"
           "          for (int64_t KY = 0; KY < "
        << N(K) << "; ++KY) {\n            const int64_t InY = Y * " << N(S)
        << " - " << N(P) << " + KY;\n            if (InY < 0 || InY >= "
        << N(H) << ")\n              continue;\n"
           "            for (int64_t KX = 0; KX < "
        << N(K) << "; ++KX) {\n              const int64_t InX = X * "
        << N(S) << " - " << N(P) << " + KX;\n              if (InX < 0 || "
        << "InX >= " << N(W) << ")\n                continue;\n"
           "              const float V = Chan[InY * "
        << N(W) << " + InX];\n              if (V > Max) {\n"
           "                Max = V;\n                ArgMax = C * "
        << N(H * W) << " + InY * " << N(W) << " + InX;\n              }\n"
           "            }\n          }\n          const int64_t Out = (C * "
        << N(OutH) << " + Y) * " << N(OutW) << " + X;\n"
           "          Output[Out] = Max;\n"
           "          if (Mask)\n"
           "            Mask[Out] = static_cast<int32_t>(ArgMax);\n"
           "        }\n";
    };
    O << "  const int64_t Rb = EA[0];\n"
         "  float *Output = FB[0];\n"
         "  const float *Input = FB[1];\n"
         "  int32_t *Mask = IB[2];\n"
         "  const int64_t Re = Rb + "
      << N(RC)
      << ";\n"
         "  for (int64_t C = 0; C < "
      << N(C) << "; ++C) {\n    const float *Chan = Input + C * " << N(H * W)
      << ";\n"
         "    const int64_t Y0 = Rb > "
      << N(YF0) << " ? Rb : " << N(YF0)
      << ";\n"
         "    const int64_t Y1 = Re < "
      << N(YF1) << " ? Re : " << N(YF1)
      << ";\n"
         "    const int64_t He = Y0 < Re ? Y0 : Re;\n"
         "    for (int64_t Y = Rb; Y < He; ++Y) {\n";
    CheckedX("0", N(OutW));
    O << "    }\n"
         "    for (int64_t Y = Y0; Y < Y1; ++Y) {\n";
    CheckedX("0", N(XF0));
    O << "        const int64_t InY0 = Y * " << N(S) << " + " << N(-P)
      << ";\n"
         "        for (int64_t X = "
      << N(XF0) << "; X < " << N(XF1)
      << "; ++X) {\n"
         "          const float *Win = Chan + InY0 * "
      << N(W) << " + X * " << N(S) << " + " << N(-P)
      << ";\n"
         "          float Max = -INFINITY;\n"
         "          int64_t ArgMax = -1;\n";
    for (int64_t KY = 0; KY < K; ++KY)
      for (int64_t KX = 0; KX < K; ++KX)
        O << "          { const float V = Win[" << N(KY * W + KX)
          << "];\n            if (V > Max) {\n              Max = V;\n"
             "              ArgMax = C * "
          << N(H * W) << " + (InY0 + " << N(KY) << ") * " << N(W)
          << " + X * " << N(S) << " + " << N(KX - P)
          << ";\n            } }\n";
    O << "          const int64_t Out = (C * " << N(OutH) << " + Y) * "
      << N(OutW)
      << " + X;\n"
         "          Output[Out] = Max;\n"
         "          if (Mask)\n"
         "            Mask[Out] = static_cast<int32_t>(ArgMax);\n"
         "        }\n";
    CheckedX(N(XF1), N(OutW));
    O << "    }\n"
         "    const int64_t Te = Y1 > He ? Y1 : He;\n"
         "    for (int64_t Y = Te; Y < Re; ++Y) {\n";
    CheckedX("0", N(OutW));
    O << "    }\n  }\n";
    return;
  }
  case KernelKind::MaxPoolBwdRows: {
    // IA: {C, H, W, K, S, Pad, RowCount}; EA: {RowBegin}. Mask-driven
    // scatter accumulate; data-dependent, so no split — the clone only
    // bakes the trip counts.
    int64_t H = IA[1], W = IA[2], K = IA[3], S = IA[4], P = IA[5];
    int64_t OutH = (H + 2 * P - K) / S + 1;
    int64_t OutW = (W + 2 * P - K) / S + 1;
    O << "  const int64_t Rb = EA[0];\n"
         "  float *InputGrad = FB[0];\n"
         "  const float *OutputGrad = FB[1];\n"
         "  const int32_t *Mask = IB[2];\n"
         "  for (int64_t C = 0; C < "
      << N(IA[0]) << "; ++C) {\n    for (int64_t Y = Rb; Y < Rb + "
      << N(IA[6]) << "; ++Y) {\n      const int64_t Row = (C * " << N(OutH)
      << " + Y) * " << N(OutW) << ";\n      for (int64_t X = 0; X < "
      << N(OutW) << "; ++X)\n        if (Mask[Row + X] >= 0)\n"
         "          InputGrad[Mask[Row + X]] += OutputGrad[Row + X];\n"
         "    }\n  }\n";
    return;
  }
  default:
    latteUnreachable("kernel kind has no specialized clone");
  }
}

void JitEmitter::emitKernel(const KernelCallStmt *K, int Indent) {
  uint32_t IntMask = jit::kernelIntBufMask(K->kernel());
  line(Indent, "{");
  line(Indent + 1,
       "float *FB[" + std::to_string(jit::kMaxKernelBufs) +
           "] = {nullptr, nullptr, nullptr, nullptr};");
  line(Indent + 1,
       "int32_t *IB[" + std::to_string(jit::kMaxKernelBufs) +
           "] = {nullptr, nullptr, nullptr, nullptr};");
  for (size_t I = 0; I < K->bufs().size(); ++I) {
    const KernelBufArg &A = K->bufs()[I];
    std::string Off =
        A.Offset ? " + (" + intExpr(A.Offset.get()) + ")" : "";
    if (IntMask & (1u << I)) {
      auto It = IntBufIndex.find(A.Buffer);
      assert(It != IntBufIndex.end() && "unknown int buffer in kernel call");
      line(Indent + 1, "IB[" + std::to_string(I) + "] = LJ->ibufs[" +
                           std::to_string(It->second) + "]" + Off + "; // " +
                           A.Buffer);
    } else {
      auto It = BufIndex.find(A.Buffer);
      assert(It != BufIndex.end() && "unknown buffer in kernel call");
      line(Indent + 1, "FB[" + std::to_string(I) + "] = LJ->bufs[" +
                           std::to_string(It->second) + "]" + Off + "; // " +
                           A.Buffer);
    }
  }
  std::vector<std::string> Parts;
  std::string Spec = specializedKernel(K);
  if (Spec.empty()) {
    // Empty C arrays are illegal; pad with one zero entry.
    for (int64_t V : K->intArgs())
      Parts.push_back(std::to_string(V));
    if (Parts.empty())
      Parts.push_back("0");
    line(Indent + 1, "static const int64_t IA_[] = {" + join(Parts, ", ") +
                         "};");
    Parts.clear();
    for (double V : K->floatArgs())
      Parts.push_back(jitDoubleLit(V));
    if (Parts.empty())
      Parts.push_back("0");
    line(Indent + 1, "static const double FA_[] = {" + join(Parts, ", ") +
                         "};");
    Parts.clear();
  }
  for (const ExprPtr &E : K->exprArgs())
    Parts.push_back(intExpr(E.get()));
  if (Parts.empty())
    Parts.push_back("0");
  line(Indent + 1, "const int64_t EA_[] = {" + join(Parts, ", ") + "};");
  if (!Spec.empty())
    // Shape constants are baked into the clone; only pointers and the
    // runtime window origin cross the call.
    line(Indent + 1, Spec + "(FB, IB, EA_);");
  else
    line(Indent + 1,
         "LJ->kernel(LJ->self, " +
             std::to_string(static_cast<int64_t>(K->kernel())) +
             ", FB, IB, IA_, FA_, EA_);");
  line(Indent, "}");
}

void JitEmitter::emitFor(const ForStmt *F, int Indent) {
  int Id = Counter++;
  std::string Lo = "_lo" + std::to_string(Id);
  line(Indent, "const int64_t " + Lo + " = " + intExpr(F->lo()) + ";");
  std::string Var = F->var();
  std::string Bound =
      Lo + " + (int64_t)" + std::to_string(F->extent());
  auto SerialHeader = [&](int Ind) {
    line(Ind, "for (int64_t " + Var + " = " + Lo + "; " + Var + " < " +
                  Bound + "; ++" + Var + ") {");
  };

  bool Par = F->annotations().Parallel && !InParallelBody;
  const TiledLoopStmt *Collapsed = nullptr;
  if (Par && F->annotations().Collapse == 2)
    if (const auto *Body = dyn_cast<BlockStmt>(F->body()))
      if (Body->stmts().size() == 1)
        Collapsed = dyn_cast<TiledLoopStmt>(Body->stmts()[0].get());

  auto EmitBody = [&](const Stmt *Body, int Ind) {
    bool Saved = InParallelBody;
    InParallelBody = InParallelBody || Par;
    Scopes.emplace_back();
    emitStmt(Body, Ind);
    Scopes.pop_back();
    InParallelBody = Saved;
  };

  if (Par && Collapsed) {
    // Interpreter collapsed path: flatten batch x tile; iteration order of
    // the flattened loop equals the nested serial order, so the serial
    // branch below keeps the nested form.
    int64_t Tiles = Collapsed->numTiles();
    int64_t Total = F->extent() * Tiles;
    std::string Lf = "_lf" + std::to_string(Id);
    std::vector<std::string> Snaps = visibleLocals();
    line(Indent, "if (LJ->par != 0) {");
    for (const std::string &V : Snaps)
      line(Indent + 1, "const float _snap" + std::to_string(Id) + "_" + V +
                           " = " + V + ";");
    line(Indent + 1, "#pragma omp parallel for schedule(static, 1)");
    line(Indent + 1, "for (int64_t " + Lf + " = 0; " + Lf + " < (int64_t)" +
                         std::to_string(Total) + "; ++" + Lf + ") {");
    line(Indent + 2, "int64_t " + Var + " = " + Lo + " + " + Lf +
                         " / (int64_t)" + std::to_string(Tiles) + ";");
    line(Indent + 2, "int64_t " + Collapsed->tileVar() + " = " + Lf +
                         " % (int64_t)" + std::to_string(Tiles) + ";");
    // Per-iteration Env copy: fresh private float locals each iteration.
    for (const std::string &V : Snaps)
      line(Indent + 2,
           "float " + V + " = _snap" + std::to_string(Id) + "_" + V + ";");
    line(Indent + 2, "{");
    EmitBody(Collapsed->body(), Indent + 3);
    line(Indent + 2, "}");
    line(Indent + 1, "}");
    line(Indent, "} else {");
    SerialHeader(Indent + 1);
    line(Indent + 2, "for (int64_t " + Collapsed->tileVar() + " = 0; " +
                         Collapsed->tileVar() + " < (int64_t)" +
                         std::to_string(Tiles) + "; ++" +
                         Collapsed->tileVar() + ") {");
    EmitBody(Collapsed->body(), Indent + 3);
    line(Indent + 2, "}");
    line(Indent + 1, "}");
    line(Indent, "}");
    return;
  }

  if (Par && F->extent() > 1) {
    std::vector<std::string> Snaps = visibleLocals();
    line(Indent, "if (LJ->par != 0) {");
    for (const std::string &V : Snaps)
      line(Indent + 1, "const float _snap" + std::to_string(Id) + "_" + V +
                           " = " + V + ";");
    line(Indent + 1, "#pragma omp parallel for schedule(static, 1)");
    SerialHeader(Indent + 1);
    for (const std::string &V : Snaps)
      line(Indent + 2,
           "float " + V + " = _snap" + std::to_string(Id) + "_" + V + ";");
    line(Indent + 2, "{");
    EmitBody(F->body(), Indent + 3);
    line(Indent + 2, "}");
    line(Indent + 1, "}");
    line(Indent, "} else {");
    SerialHeader(Indent + 1);
    EmitBody(F->body(), Indent + 2);
    line(Indent + 1, "}");
    line(Indent, "}");
    return;
  }

  SerialHeader(Indent);
  Scopes.emplace_back();
  emitStmt(F->body(), Indent + 1);
  Scopes.pop_back();
  line(Indent, "}");
}

void JitEmitter::emitStmt(const Stmt *S, int Indent) {
  if (!S)
    return;
  switch (S->kind()) {
  case Stmt::Kind::Block: {
    const auto *B = cast<BlockStmt>(S);
    if (!B->label().empty())
      line(Indent, "// " + B->label());
    // No braces: interpreter Decls outlive their Block (matches
    // generateCpp's treatment).
    for (const StmtPtr &Child : B->stmts())
      emitStmt(Child.get(), Indent);
    return;
  }
  case Stmt::Kind::For:
    emitFor(cast<ForStmt>(S), Indent);
    return;
  case Stmt::Kind::TiledLoop: {
    const auto *T = cast<TiledLoopStmt>(S);
    line(Indent, "for (int64_t " + T->tileVar() + " = 0; " + T->tileVar() +
                     " < (int64_t)" + std::to_string(T->numTiles()) + "; ++" +
                     T->tileVar() + ") {");
    Scopes.emplace_back();
    emitStmt(T->body(), Indent + 1);
    Scopes.pop_back();
    line(Indent, "}");
    return;
  }
  case Stmt::Kind::If: {
    const auto *If = cast<IfStmt>(S);
    line(Indent, "if ((" + floatExpr(If->cond()) + ") != 0.0f) {");
    Scopes.emplace_back();
    emitStmt(If->thenStmt(), Indent + 1);
    Scopes.pop_back();
    if (If->elseStmt()) {
      line(Indent, "} else {");
      Scopes.emplace_back();
      emitStmt(If->elseStmt(), Indent + 1);
      Scopes.pop_back();
    }
    line(Indent, "}");
    return;
  }
  case Stmt::Kind::Store: {
    const auto *St = cast<StoreStmt>(S);
    std::string Target = elemRef(St->buffer(), St->indices());
    std::string Value = floatExpr(St->value());
    switch (St->op()) {
    case AccumKind::Assign:
      line(Indent, Target + " = " + Value + ";");
      return;
    case AccumKind::AddAssign:
      line(Indent, Target + " += " + Value + ";");
      return;
    case AccumKind::MulAssign:
      line(Indent, Target + " *= " + Value + ";");
      return;
    case AccumKind::MaxAssign:
      line(Indent, Target + " = latte_jit_max(" + Target + ", " + Value +
                       ");");
      return;
    case AccumKind::MinAssign:
      line(Indent, Target + " = latte_jit_min(" + Target + ", " + Value +
                       ");");
      return;
    }
    latteUnreachable("unknown accumulation kind");
  }
  case Stmt::Kind::Decl: {
    const auto *D = cast<DeclStmt>(S);
    line(Indent, "float " + D->name() + " = " + floatExpr(D->init()) + ";");
    if (!Scopes.empty())
      Scopes.back().push_back(D->name());
    return;
  }
  case Stmt::Kind::AssignVar: {
    const auto *A = cast<AssignVarStmt>(S);
    std::string Value = floatExpr(A->value());
    switch (A->op()) {
    case AccumKind::Assign:
      line(Indent, A->name() + " = " + Value + ";");
      return;
    case AccumKind::AddAssign:
      line(Indent, A->name() + " += " + Value + ";");
      return;
    case AccumKind::MulAssign:
      line(Indent, A->name() + " *= " + Value + ";");
      return;
    case AccumKind::MaxAssign:
      line(Indent, A->name() + " = latte_jit_max(" + A->name() + ", " +
                       Value + ");");
      return;
    case AccumKind::MinAssign:
      line(Indent, A->name() + " = latte_jit_min(" + A->name() + ", " +
                       Value + ");");
      return;
    }
    latteUnreachable("unknown accumulation kind");
  }
  case Stmt::Kind::KernelCall:
    emitKernel(cast<KernelCallStmt>(S), Indent);
    return;
  case Stmt::Kind::Barrier:
    line(Indent, "// fusion barrier: " + cast<BarrierStmt>(S)->reason());
    return;
  }
  latteUnreachable("unknown statement kind");
}

void JitEmitter::emitTask(const Stmt *Unit, const std::string &Symbol) {
  OS << "extern \"C\" void " << Symbol << "(LatteJitCtx *LJ) {\n"
     << "  (void)LJ;\n";
  // Named aliases for the buffers this unit loads/stores directly, in
  // Program declaration order (deterministic).
  std::set<std::string> Referenced;
  collectLoadStoreBuffers(Unit, Referenced);
  for (const BufferInfo &B : Prog.Buffers)
    if (Referenced.count(B.Name))
      OS << "  float *" << B.Name << " = LJ->bufs[" << BufIndex.at(B.Name)
         << "]; // " << B.Dims.str() << "\n";
  Scopes.clear();
  Scopes.emplace_back();
  InParallelBody = false;
  emitStmt(Unit, 1);
  OS << "}\n\n";
}

void JitEmitter::prologue() {
  OS << "// Latte JIT module: loop nests and kernel dispatch for one\n"
        "// compiled program. Reassociation-sensitive kernels execute in\n"
        "// the engine via the ctx trampoline; whitelisted data-movement\n"
        "// kernels run as shape-specialized clones below. Deterministic\n"
        "// emission (content-hashed for the on-disk module cache).\n"
        "#include <cmath>\n#include <cstdint>\n#include <cstring>\n\n";
  OS << jit::ctxStructSource();
  // std::min/std::max tie semantics (the interpreter's evalFloat and
  // applyAccum use std::min/std::max, which return the FIRST argument on
  // ties — observable with signed zeros).
  OS << "\ntemplate <typename T> static inline T latte_jit_min(T A, T B) "
        "{ return (B < A) ? B : A; }\n"
        "template <typename T> static inline T latte_jit_max(T A, T B) "
        "{ return (A < B) ? B : A; }\n\n"
        "extern \"C\" int64_t latte_jit_abi_version() { return "
     << jit::kLatteJitAbiVersion << "; }\n\n";
}

void JitEmitter::emitPass(const Stmt *Root, char PassTag,
                          std::vector<JitTaskInfo> &Out) {
  // Only a top-level Block decomposes into per-unit entry points; other
  // roots (hand-built test programs) take the interpreter wholesale.
  const auto *B = dyn_cast_if_present<const BlockStmt>(Root);
  if (!B)
    return;
  for (size_t I = 0; I < B->stmts().size(); ++I) {
    JitTaskInfo Info;
    if (jittable(B->stmts()[I].get())) {
      Info.Jittable = true;
      Info.Symbol =
          std::string("latte_task_") + PassTag + std::to_string(I);
      emitTask(B->stmts()[I].get(), Info.Symbol);
    }
    Out.push_back(std::move(Info));
  }
}

JitSource JitEmitter::run() {
  JitSource JS;
  prologue();
  std::string Prologue = OS.str();
  OS.str("");
  emitPass(Prog.Forward.get(), 'f', JS.Forward);
  emitPass(Prog.Backward.get(), 'b', JS.Backward);
  // Specialized kernel clones are discovered while the tasks are emitted
  // but must precede them in the translation unit.
  JS.Source = Prologue + SpecOS.str() + OS.str();
  return JS;
}

} // namespace

std::string compiler::generateCpp(const Program &Prog) {
  CppEmitter E(Prog);
  return E.run();
}

JitSource compiler::generateJitSource(const Program &Prog) {
  JitEmitter E(Prog);
  return E.run();
}

bool compiler::writeGeneratedProgram(const Program &Prog,
                                     const std::string &Path) {
  std::string Source = generateCpp(Prog);
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  bool Ok = std::fwrite(Source.data(), 1, Source.size(), F) == Source.size();
  std::fclose(F);
  return Ok;
}
