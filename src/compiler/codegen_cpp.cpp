//===- compiler/codegen_cpp.cpp -------------------------------*- C++ -*-===//

#include "compiler/codegen_cpp.h"

#include "support/error.h"
#include "support/string_utils.h"

#include <cmath>
#include <cstdio>
#include <sstream>

using namespace latte;
using namespace latte::compiler;
using namespace latte::ir;

namespace {

/// Emits C++ source for one Program.
class CppEmitter {
public:
  explicit CppEmitter(const Program &Prog) : Prog(Prog) {}

  std::string run();

private:
  void header();
  void buffers();
  void kernels();
  void initFunction();
  void passFunction(const char *Name, const Stmt *Root,
                    bool ZeroOnForward);
  void driver();

  void emitStmt(const Stmt *S, int Indent);
  std::string exprToC(const Expr *E) const;
  std::string loadToC(const LoadExpr *L) const;
  std::string flatIndex(const std::string &Buffer,
                        const std::vector<ExprPtr> &Indices) const;
  std::string bufPtr(const KernelBufArg &Arg) const;

  void line(int Indent, const std::string &Text) {
    for (int I = 0; I < Indent; ++I)
      OS << "  ";
    OS << Text << "\n";
  }

  const Program &Prog;
  std::ostringstream OS;
};

std::string floatLit(double V) {
  if (std::isinf(V))
    return V < 0 ? "(-INFINITY)" : "INFINITY";
  std::string Text = formatString("%.9g", V);
  // Integral-looking output ("0", "42") needs a decimal point before the
  // float suffix is legal C++.
  if (Text.find('.') == std::string::npos &&
      Text.find('e') == std::string::npos &&
      Text.find('E') == std::string::npos)
    Text += ".0";
  return Text + "f";
}

std::string CppEmitter::flatIndex(const std::string &Buffer,
                                  const std::vector<ExprPtr> &Indices) const {
  const BufferInfo *B = Prog.findBuffer(Buffer);
  assert(B && "load/store of unknown buffer");
  assert(static_cast<int>(Indices.size()) == B->Dims.rank() &&
         "index rank mismatch in codegen");
  std::string Out = "0";
  for (size_t I = 0; I < Indices.size(); ++I)
    Out = "(" + Out + ") * " + std::to_string(B->Dims[static_cast<int>(I)]) +
          " + (" + exprToC(Indices[I].get()) + ")";
  return Out;
}

std::string CppEmitter::loadToC(const LoadExpr *L) const {
  return L->buffer() + "[" + flatIndex(L->buffer(), L->indices()) + "]";
}

std::string CppEmitter::exprToC(const Expr *E) const {
  switch (E->kind()) {
  case Expr::Kind::IntConst:
    return std::to_string(cast<IntConstExpr>(E)->value());
  case Expr::Kind::FloatConst:
    return floatLit(cast<FloatConstExpr>(E)->value());
  case Expr::Kind::Var:
    return cast<VarExpr>(E)->name();
  case Expr::Kind::Load:
    return loadToC(cast<LoadExpr>(E));
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    std::string L = exprToC(B->lhs()), R = exprToC(B->rhs());
    switch (B->op()) {
    case BinaryOpKind::Add:
      return "(" + L + " + " + R + ")";
    case BinaryOpKind::Sub:
      return "(" + L + " - " + R + ")";
    case BinaryOpKind::Mul:
      return "(" + L + " * " + R + ")";
    case BinaryOpKind::Div:
      return "(" + L + " / " + R + ")";
    case BinaryOpKind::Min:
      return "latte_min(" + L + ", " + R + ")";
    case BinaryOpKind::Max:
      return "latte_max(" + L + ", " + R + ")";
    }
    latteUnreachable("unknown binary op");
  }
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    std::string V = exprToC(U->operand());
    switch (U->op()) {
    case UnaryOpKind::Neg:
      return "(-" + V + ")";
    case UnaryOpKind::Exp:
      return "std::exp(" + V + ")";
    case UnaryOpKind::Log:
      return "std::log(" + V + ")";
    case UnaryOpKind::Tanh:
      return "std::tanh(" + V + ")";
    case UnaryOpKind::Sigmoid:
      return "(1.0f / (1.0f + std::exp(-(" + V + "))))";
    case UnaryOpKind::Sqrt:
      return "std::sqrt(" + V + ")";
    case UnaryOpKind::Abs:
      return "std::fabs(" + V + ")";
    }
    latteUnreachable("unknown unary op");
  }
  case Expr::Kind::Compare: {
    const auto *C = cast<CompareExpr>(E);
    static const char *Ops[] = {"<", "<=", ">", ">=", "==", "!="};
    std::string Raw = "(" + exprToC(C->lhs()) + " " +
                      Ops[static_cast<int>(C->op())] + " " +
                      exprToC(C->rhs()) + ")";
    return "(" + Raw + " ? 1.0f : 0.0f)";
  }
  case Expr::Kind::Select: {
    const auto *S = cast<SelectExpr>(E);
    std::string Cond;
    if (const auto *C = dyn_cast<CompareExpr>(S->cond())) {
      static const char *Ops[] = {"<", "<=", ">", ">=", "==", "!="};
      Cond = "(" + exprToC(C->lhs()) + " " + Ops[static_cast<int>(C->op())] +
             " " + exprToC(C->rhs()) + ")";
    } else {
      Cond = "((" + exprToC(S->cond()) + ") != 0.0f)";
    }
    return "(" + Cond + " ? " + exprToC(S->trueValue()) + " : " +
           exprToC(S->falseValue()) + ")";
  }
  }
  latteUnreachable("unknown expression kind");
}

std::string CppEmitter::bufPtr(const KernelBufArg &Arg) const {
  std::string Off =
      Arg.Offset ? " + (" + exprToC(Arg.Offset.get()) + ")" : "";
  return Arg.Buffer + Off;
}

void CppEmitter::emitStmt(const Stmt *S, int Indent) {
  switch (S->kind()) {
  case Stmt::Kind::Block: {
    const auto *B = cast<BlockStmt>(S);
    if (!B->label().empty())
      line(Indent, "// " + B->label());
    for (const StmtPtr &Child : B->stmts())
      emitStmt(Child.get(), Indent);
    return;
  }
  case Stmt::Kind::For: {
    const auto *F = cast<ForStmt>(S);
    // The paper's parallelization construct (§5.4.3).
    const TiledLoopStmt *Collapsed = nullptr;
    if (F->annotations().Parallel && F->annotations().Collapse == 2)
      if (const auto *Body = dyn_cast<BlockStmt>(F->body()))
        if (Body->stmts().size() == 1)
          Collapsed = dyn_cast<TiledLoopStmt>(Body->stmts()[0].get());
    if (F->annotations().Parallel) {
      if (Collapsed)
        line(Indent,
             "#pragma omp parallel for collapse(2) schedule(static, 1)");
      else
        line(Indent, "#pragma omp parallel for schedule(static, 1)");
    }
    std::string Lo = exprToC(F->lo());
    line(Indent, "for (int64_t " + F->var() + " = " + Lo + "; " + F->var() +
                     " < " + Lo + " + " + std::to_string(F->extent()) +
                     "; ++" + F->var() + ") {");
    if (Collapsed) {
      line(Indent + 1, "for (int64_t " + Collapsed->tileVar() +
                           " = 0; " + Collapsed->tileVar() + " < " +
                           std::to_string(Collapsed->numTiles()) + "; ++" +
                           Collapsed->tileVar() + ") {");
      emitStmt(Collapsed->body(), Indent + 2);
      line(Indent + 1, "}");
    } else {
      emitStmt(F->body(), Indent + 1);
    }
    line(Indent, "}");
    return;
  }
  case Stmt::Kind::TiledLoop: {
    const auto *T = cast<TiledLoopStmt>(S);
    line(Indent, "// tiled loop over " + T->origVar() + " (tile " +
                     std::to_string(T->tileSize()) + ", dist " +
                     std::to_string(T->dependenceDistance()) + ")");
    line(Indent, "for (int64_t " + T->tileVar() + " = 0; " + T->tileVar() +
                     " < " + std::to_string(T->numTiles()) + "; ++" +
                     T->tileVar() + ") {");
    emitStmt(T->body(), Indent + 1);
    line(Indent, "}");
    return;
  }
  case Stmt::Kind::If: {
    const auto *If = cast<IfStmt>(S);
    line(Indent, "if ((" + exprToC(If->cond()) + ") != 0.0f) {");
    emitStmt(If->thenStmt(), Indent + 1);
    if (If->elseStmt()) {
      line(Indent, "} else {");
      emitStmt(If->elseStmt(), Indent + 1);
    }
    line(Indent, "}");
    return;
  }
  case Stmt::Kind::Store: {
    const auto *St = cast<StoreStmt>(S);
    std::string Target =
        St->buffer() + "[" + flatIndex(St->buffer(), St->indices()) + "]";
    std::string Value = exprToC(St->value());
    switch (St->op()) {
    case AccumKind::Assign:
      line(Indent, Target + " = " + Value + ";");
      return;
    case AccumKind::AddAssign:
      line(Indent, Target + " += " + Value + ";");
      return;
    case AccumKind::MulAssign:
      line(Indent, Target + " *= " + Value + ";");
      return;
    case AccumKind::MaxAssign:
      line(Indent, Target + " = latte_max(" + Target + ", " + Value + ");");
      return;
    case AccumKind::MinAssign:
      line(Indent, Target + " = latte_min(" + Target + ", " + Value + ");");
      return;
    }
    latteUnreachable("unknown accumulation kind");
  }
  case Stmt::Kind::Decl: {
    const auto *D = cast<DeclStmt>(S);
    line(Indent, "float " + D->name() + " = " + exprToC(D->init()) + ";");
    return;
  }
  case Stmt::Kind::AssignVar: {
    const auto *A = cast<AssignVarStmt>(S);
    std::string Value = exprToC(A->value());
    switch (A->op()) {
    case AccumKind::Assign:
      line(Indent, A->name() + " = " + Value + ";");
      return;
    case AccumKind::AddAssign:
      line(Indent, A->name() + " += " + Value + ";");
      return;
    case AccumKind::MulAssign:
      line(Indent, A->name() + " *= " + Value + ";");
      return;
    case AccumKind::MaxAssign:
      line(Indent,
           A->name() + " = latte_max(" + A->name() + ", " + Value + ");");
      return;
    case AccumKind::MinAssign:
      line(Indent,
           A->name() + " = latte_min(" + A->name() + ", " + Value + ");");
      return;
    }
    latteUnreachable("unknown accumulation kind");
  }
  case Stmt::Kind::KernelCall: {
    const auto *K = cast<KernelCallStmt>(S);
    const auto &IA = K->intArgs();
    auto Ints = [&](size_t From) {
      std::vector<std::string> Parts;
      for (size_t I = From; I < IA.size(); ++I)
        Parts.push_back(std::to_string(IA[I]));
      return join(Parts, ", ");
    };
    auto EArg = [&](size_t I) { return exprToC(K->exprArgs()[I].get()); };
    switch (K->kernel()) {
    case KernelKind::Zero:
      line(Indent, "k_zero(" + bufPtr(K->bufs()[0]) + ", " + Ints(0) + ");");
      return;
    case KernelKind::Copy:
      line(Indent, "k_copy(" + bufPtr(K->bufs()[0]) + ", " +
                       bufPtr(K->bufs()[1]) + ", " + Ints(0) + ");");
      return;
    case KernelKind::AddTo:
      line(Indent, "k_add_to(" + bufPtr(K->bufs()[0]) + ", " +
                       bufPtr(K->bufs()[1]) + ", " + Ints(0) + ");");
      return;
    case KernelKind::MulInto:
      line(Indent, "k_mul_into(" + bufPtr(K->bufs()[0]) + ", " +
                       bufPtr(K->bufs()[1]) + ", " + bufPtr(K->bufs()[2]) +
                       ", " + Ints(0) + ");");
      return;
    case KernelKind::MulAddTo:
      line(Indent, "k_mul_add_to(" + bufPtr(K->bufs()[0]) + ", " +
                       bufPtr(K->bufs()[1]) + ", " + bufPtr(K->bufs()[2]) +
                       ", " + Ints(0) + ");");
      return;
    case KernelKind::Scale:
      line(Indent, "k_scale(" + bufPtr(K->bufs()[0]) + ", " +
                       floatLit(K->floatArgs()[0]) + ", " + Ints(0) + ");");
      return;
    case KernelKind::Sgemm:
      line(Indent, "k_gemm(" + bufPtr(K->bufs()[0]) + ", " +
                       bufPtr(K->bufs()[1]) + ", " + bufPtr(K->bufs()[2]) +
                       ", " + Ints(0) + ");");
      return;
    case KernelKind::Gather2D:
      line(Indent, "k_gather2d(" + bufPtr(K->bufs()[0]) + ", " +
                       bufPtr(K->bufs()[1]) + ", " + K->bufs()[2].Buffer +
                       ", " + Ints(0) + ", " + EArg(0) + ");");
      return;
    case KernelKind::ScatterAdd2D:
      line(Indent, "k_scatter2d(" + bufPtr(K->bufs()[0]) + ", " +
                       bufPtr(K->bufs()[1]) + ", " + K->bufs()[2].Buffer +
                       ", " + Ints(0) + ", " + EArg(0) + ");");
      return;
    case KernelKind::ActFwdCols:
      line(Indent, "k_act_fwd(" + bufPtr(K->bufs()[0]) + ", " +
                       bufPtr(K->bufs()[1]) + ", " + Ints(0) + ", " +
                       EArg(0) + ");");
      return;
    case KernelKind::ActBwdCols:
      line(Indent, "k_act_bwd(" + bufPtr(K->bufs()[0]) + ", " +
                       bufPtr(K->bufs()[1]) + ", " + bufPtr(K->bufs()[2]) +
                       ", " + Ints(0) + ", " + EArg(0) + ");");
      return;
    case KernelKind::BiasAddCols:
      line(Indent, "k_bias_cols(" + bufPtr(K->bufs()[0]) + ", " +
                       bufPtr(K->bufs()[1]) + ", " + Ints(0) + ", " +
                       EArg(0) + ");");
      return;
    case KernelKind::BiasAddPerRow:
      line(Indent, "k_bias_rows(" + bufPtr(K->bufs()[0]) + ", " +
                       bufPtr(K->bufs()[1]) + ", " + Ints(0) + ");");
      return;
    case KernelKind::RowSumAdd:
      line(Indent, "k_row_sum(" + bufPtr(K->bufs()[0]) + ", " +
                       bufPtr(K->bufs()[1]) + ", " + Ints(0) + ");");
      return;
    case KernelKind::ColSumAdd:
      line(Indent, "k_col_sum(" + bufPtr(K->bufs()[0]) + ", " +
                       bufPtr(K->bufs()[1]) + ", " + Ints(0) + ");");
      return;
    case KernelKind::Im2ColRows:
      line(Indent, "k_im2col(" + bufPtr(K->bufs()[0]) + ", " +
                       bufPtr(K->bufs()[1]) + ", " + Ints(0) + ", " +
                       EArg(0) + ");");
      return;
    case KernelKind::Col2ImRows:
      line(Indent, "k_col2im(" + bufPtr(K->bufs()[0]) + ", " +
                       bufPtr(K->bufs()[1]) + ", " + Ints(0) + ", " +
                       EArg(0) + ");");
      return;
    case KernelKind::MaxPoolFwdRows:
      line(Indent, "k_maxpool_fwd(" + bufPtr(K->bufs()[0]) + ", " +
                       bufPtr(K->bufs()[1]) + ", " + K->bufs()[2].Buffer +
                       ".data() + (" +
                       (K->bufs()[2].Offset
                            ? exprToC(K->bufs()[2].Offset.get())
                            : std::string("0")) +
                       "), " + Ints(0) + ", " + EArg(0) + ");");
      return;
    case KernelKind::MaxPoolBwdRows:
      line(Indent, "k_maxpool_bwd(" + bufPtr(K->bufs()[0]) + ", " +
                       bufPtr(K->bufs()[1]) + ", " + K->bufs()[2].Buffer +
                       ".data() + (" +
                       (K->bufs()[2].Offset
                            ? exprToC(K->bufs()[2].Offset.get())
                            : std::string("0")) +
                       "), " + Ints(0) + ", " + EArg(0) + ");");
      return;
    case KernelKind::AvgPoolFwdRows:
      line(Indent, "k_avgpool_fwd(" + bufPtr(K->bufs()[0]) + ", " +
                       bufPtr(K->bufs()[1]) + ", " + Ints(0) + ", " +
                       EArg(0) + ");");
      return;
    case KernelKind::AvgPoolBwdRows:
      line(Indent, "k_avgpool_bwd(" + bufPtr(K->bufs()[0]) + ", " +
                       bufPtr(K->bufs()[1]) + ", " + Ints(0) + ", " +
                       EArg(0) + ");");
      return;
    case KernelKind::SoftmaxFwd:
      line(Indent, "k_softmax_fwd(" + bufPtr(K->bufs()[0]) + ", " +
                       bufPtr(K->bufs()[1]) + ", " + Ints(0) + ");");
      return;
    case KernelKind::SoftmaxLossFwd:
      line(Indent, "k_softmax_loss_fwd(" + bufPtr(K->bufs()[0]) + ", " +
                       bufPtr(K->bufs()[1]) + ", " + bufPtr(K->bufs()[2]) +
                       ", " + bufPtr(K->bufs()[3]) + ", " + Ints(0) + ");");
      return;
    case KernelKind::SoftmaxLossBwd:
      line(Indent, "k_softmax_loss_bwd(" + bufPtr(K->bufs()[0]) + ", " +
                       bufPtr(K->bufs()[1]) + ", " + bufPtr(K->bufs()[2]) +
                       ", " + Ints(0) + ", " + floatLit(K->floatArgs()[0]) +
                       ");");
      return;
    case KernelKind::SoftmaxBwd:
      line(Indent, "k_softmax_bwd(" + bufPtr(K->bufs()[0]) + ", " +
                       bufPtr(K->bufs()[1]) + ", " + bufPtr(K->bufs()[2]) +
                       ", " + Ints(0) + ");");
      return;
    case KernelKind::DropoutMask:
      line(Indent, "k_dropout_mask(" + bufPtr(K->bufs()[0]) + ", " +
                       Ints(0) + ", " + floatLit(K->floatArgs()[0]) + ");");
      return;
    case KernelKind::GradSyncHook:
      line(Indent, "/* grad sync hook: " + K->bufs()[0].Buffer + " */");
      return;
    }
    latteUnreachable("unknown kernel kind");
  }
  case Stmt::Kind::Barrier:
    line(Indent, "// fusion barrier: " + cast<BarrierStmt>(S)->reason());
    return;
  }
  latteUnreachable("unknown statement kind");
}

void CppEmitter::header() {
  OS << "// Generated by the Latte compiler (analysis -> synthesis ->\n"
        "// optimization -> code generation, PLDI'16). Do not edit.\n"
        "#include <cmath>\n#include <cstdint>\n#include <cstdio>\n"
        "#include <cstdlib>\n#include <cstring>\n#include <string>\n"
        "#include <vector>\n\n"
        "template <typename T> static inline T latte_min(T A, T B) "
        "{ return A < B ? A : B; }\n"
        "template <typename T> static inline T latte_max(T A, T B) "
        "{ return A > B ? A : B; }\n\n";
  OS << "static const int64_t kBatch = " << Prog.BatchSize << ";\n\n";
}

void CppEmitter::buffers() {
  if (Prog.Plan.Valid) {
    // One arena, carved up by the compiler's liveness-driven memory plan;
    // buffers whose live ranges are disjoint share bytes.
    OS << "// --- buffer arena (liveness-planned: " << Prog.Plan.ArenaBytes
       << " bytes vs " << Prog.Plan.EagerBytes << " eager) ---\n";
    OS << "alignas(" << Prog.Plan.Alignment << ") static float latte_arena["
       << std::max<int64_t>(Prog.Plan.ArenaBytes / 4, 1) << "];\n";
  } else {
    OS << "// --- buffers (aliases share storage per shared-variable "
          "analysis) ---\n";
  }
  for (const BufferInfo &B : Prog.Buffers) {
    if (!Prog.Plan.Valid && B.AliasOf.empty())
      OS << "static std::vector<float> st_" << B.Name << "; ";
    OS << "static float *" << B.Name << " = nullptr; // "
       << B.Dims.str() << (B.AliasOf.empty() ? "" : " alias of " + B.AliasOf)
       << "\n";
  }
  OS << "\n// --- index tables and masks ---\n";
  for (const IntBufferInfo &T : Prog.IntBuffers) {
    if (T.isStatic()) {
      OS << "static const int32_t " << T.Name << "[] = {";
      for (size_t I = 0; I < T.Entries.size(); ++I) {
        if (I % 16 == 0)
          OS << "\n  ";
        OS << T.Entries[I] << ",";
      }
      OS << "\n};\n";
    } else {
      OS << "static std::vector<int32_t> " << T.Name << "(" << T.Count
         << ");\n";
    }
  }
  OS << "\n";
}

void CppEmitter::kernels() {
  // Self-contained library kernels; inner loops carry omp simd so the host
  // compiler vectorizes them (the paper's vectorization guarantee, §5.5).
  OS << R"(// --- library kernels ---
static void k_zero(float *D, int64_t N) { std::memset(D, 0, N * 4); }
static void k_copy(float *D, const float *S, int64_t N) {
  std::memcpy(D, S, N * 4);
}
static void k_add_to(float *D, const float *S, int64_t N) {
#pragma omp simd
  for (int64_t I = 0; I < N; ++I) D[I] += S[I];
}
static void k_mul_into(float *D, const float *A, const float *B, int64_t N) {
#pragma omp simd
  for (int64_t I = 0; I < N; ++I) D[I] = A[I] * B[I];
}
static void k_mul_add_to(float *D, const float *A, const float *B,
                         int64_t N) {
#pragma omp simd
  for (int64_t I = 0; I < N; ++I) D[I] += A[I] * B[I];
}
static void k_scale(float *D, float F, int64_t N) {
#pragma omp simd
  for (int64_t I = 0; I < N; ++I) D[I] *= F;
}
static void k_gemm(const float *A, const float *B, float *C, int64_t M,
                   int64_t N, int64_t K, int64_t LdA, int64_t LdB,
                   int64_t LdC, int64_t TA, int64_t TB, int64_t Acc) {
  for (int64_t I = 0; I < M; ++I) {
    float *Row = C + I * LdC;
    if (!Acc)
      for (int64_t J = 0; J < N; ++J) Row[J] = 0.0f;
    for (int64_t P = 0; P < K; ++P) {
      float AV = TA ? A[P * LdA + I] : A[I * LdA + P];
      if (TB) {
        for (int64_t J = 0; J < N; ++J) Row[J] += AV * B[J * LdB + P];
      } else {
        const float *BR = B + P * LdB;
#pragma omp simd
        for (int64_t J = 0; J < N; ++J) Row[J] += AV * BR[J];
      }
    }
  }
}
static void k_gather2d(float *D, const float *S, const int32_t *T,
                       int64_t Rows, int64_t Cols, int64_t Cnt, int64_t Cb) {
  for (int64_t R = 0; R < Rows; ++R)
    for (int64_t J = 0; J < Cnt; ++J) {
      int32_t Idx = T[R * Cols + Cb + J];
      D[R * Cols + Cb + J] = Idx >= 0 ? S[Idx] : 0.0f;
    }
}
static void k_scatter2d(float *D, const float *S, const int32_t *T,
                        int64_t Rows, int64_t Cols, int64_t Cnt,
                        int64_t Cb) {
  for (int64_t R = 0; R < Rows; ++R)
    for (int64_t J = 0; J < Cnt; ++J) {
      int32_t Idx = T[R * Cols + Cb + J];
      if (Idx >= 0) D[Idx] += S[R * Cols + Cb + J];
    }
}
static void k_act_fwd(float *D, const float *S, int64_t Op, int64_t Rows,
                      int64_t Cols, int64_t Cnt, int64_t Cb) {
  for (int64_t R = 0; R < Rows; ++R) {
    float *Dr = D + R * Cols + Cb;
    const float *Sr = S + R * Cols + Cb;
    if (Op == 0) {
#pragma omp simd
      for (int64_t I = 0; I < Cnt; ++I) Dr[I] = Sr[I] > 0 ? Sr[I] : 0.0f;
    } else if (Op == 1) {
      for (int64_t I = 0; I < Cnt; ++I)
        Dr[I] = 1.0f / (1.0f + std::exp(-Sr[I]));
    } else {
      for (int64_t I = 0; I < Cnt; ++I) Dr[I] = std::tanh(Sr[I]);
    }
  }
}
static void k_act_bwd(float *Dg, const float *Og, const float *V,
                      int64_t Op, int64_t Rows, int64_t Cols, int64_t Cnt,
                      int64_t InPlace, int64_t Cb) {
  (void)InPlace;
  for (int64_t R = 0; R < Rows; ++R) {
    int64_t Base = R * Cols + Cb;
    for (int64_t I = 0; I < Cnt; ++I) {
      float D;
      if (Op == 0)
        D = V[Base + I] > 0 ? Og[Base + I] : 0.0f;
      else if (Op == 1)
        D = Og[Base + I] * V[Base + I] * (1.0f - V[Base + I]);
      else
        D = Og[Base + I] * (1.0f - V[Base + I] * V[Base + I]);
      Dg[Base + I] += D;
    }
  }
}
static void k_bias_cols(float *D, const float *Bias, int64_t Rows,
                        int64_t Cols, int64_t Cnt, int64_t Cb) {
  for (int64_t R = 0; R < Rows; ++R) {
#pragma omp simd
    for (int64_t I = 0; I < Cnt; ++I) D[R * Cols + Cb + I] += Bias[R];
  }
}
static void k_bias_rows(float *D, const float *Bias, int64_t Rows,
                        int64_t Cols) {
  for (int64_t R = 0; R < Rows; ++R)
#pragma omp simd
    for (int64_t I = 0; I < Cols; ++I) D[R * Cols + I] += Bias[I];
}
static void k_row_sum(float *D, const float *S, int64_t Rows, int64_t Cols) {
  for (int64_t R = 0; R < Rows; ++R) {
    float Sum = 0;
    for (int64_t I = 0; I < Cols; ++I) Sum += S[R * Cols + I];
    D[R] += Sum;
  }
}
static void k_col_sum(float *D, const float *S, int64_t Rows, int64_t Cols) {
  for (int64_t R = 0; R < Rows; ++R)
    for (int64_t I = 0; I < Cols; ++I) D[I] += S[R * Cols + I];
}
static void k_im2col(float *Col, const float *In, int64_t C, int64_t H,
                     int64_t W, int64_t K, int64_t S, int64_t P, int64_t Rc,
                     int64_t Rb) {
  int64_t OutH = (H + 2 * P - K) / S + 1, OutW = (W + 2 * P - K) / S + 1;
  int64_t Row = 0;
  for (int64_t Ch = 0; Ch < C; ++Ch)
    for (int64_t KY = 0; KY < K; ++KY)
      for (int64_t KX = 0; KX < K; ++KX, ++Row) {
        float *CR = Col + Row * OutH * OutW;
        const float *Chan = In + Ch * H * W;
        for (int64_t Y = Rb; Y < Rb + Rc; ++Y) {
          int64_t IY = Y * S - P + KY;
          for (int64_t X = 0; X < OutW; ++X) {
            int64_t IX = X * S - P + KX;
            CR[Y * OutW + X] = (IY >= 0 && IY < H && IX >= 0 && IX < W)
                                   ? Chan[IY * W + IX] : 0.0f;
          }
        }
      }
}
static void k_col2im(float *Im, const float *Col, int64_t C, int64_t H,
                     int64_t W, int64_t K, int64_t S, int64_t P, int64_t Rc,
                     int64_t Rb) {
  int64_t OutH = (H + 2 * P - K) / S + 1, OutW = (W + 2 * P - K) / S + 1;
  int64_t Row = 0;
  for (int64_t Ch = 0; Ch < C; ++Ch)
    for (int64_t KY = 0; KY < K; ++KY)
      for (int64_t KX = 0; KX < K; ++KX, ++Row) {
        const float *CR = Col + Row * OutH * OutW;
        float *Chan = Im + Ch * H * W;
        for (int64_t Y = Rb; Y < Rb + Rc; ++Y) {
          int64_t IY = Y * S - P + KY;
          if (IY < 0 || IY >= H) continue;
          for (int64_t X = 0; X < OutW; ++X) {
            int64_t IX = X * S - P + KX;
            if (IX >= 0 && IX < W) Chan[IY * W + IX] += CR[Y * OutW + X];
          }
        }
      }
}
static void k_maxpool_fwd(float *Out, const float *In, int32_t *Mask,
                          int64_t C, int64_t H, int64_t W, int64_t K,
                          int64_t S, int64_t P, int64_t Rc, int64_t Rb) {
  int64_t OutH = (H + 2 * P - K) / S + 1, OutW = (W + 2 * P - K) / S + 1;
  for (int64_t Ch = 0; Ch < C; ++Ch)
    for (int64_t Y = Rb; Y < Rb + Rc; ++Y)
      for (int64_t X = 0; X < OutW; ++X) {
        float Max = -INFINITY;
        int64_t Arg = -1;
        for (int64_t KY = 0; KY < K; ++KY)
          for (int64_t KX = 0; KX < K; ++KX) {
            int64_t IY = Y * S - P + KY, IX = X * S - P + KX;
            if (IY < 0 || IY >= H || IX < 0 || IX >= W) continue;
            float V = In[(Ch * H + IY) * W + IX];
            if (V > Max) { Max = V; Arg = (Ch * H + IY) * W + IX; }
          }
        Out[(Ch * OutH + Y) * OutW + X] = Max;
        Mask[(Ch * OutH + Y) * OutW + X] = (int32_t)Arg;
      }
}
static void k_maxpool_bwd(float *InG, const float *OutG,
                          const int32_t *Mask, int64_t C, int64_t H,
                          int64_t W, int64_t K, int64_t S, int64_t P,
                          int64_t Rc, int64_t Rb) {
  int64_t OutH = (H + 2 * P - K) / S + 1, OutW = (W + 2 * P - K) / S + 1;
  for (int64_t Ch = 0; Ch < C; ++Ch)
    for (int64_t Y = Rb; Y < Rb + Rc; ++Y)
      for (int64_t X = 0; X < OutW; ++X) {
        int64_t O = (Ch * OutH + Y) * OutW + X;
        if (Mask[O] >= 0) InG[Mask[O]] += OutG[O];
      }
}
static void k_avgpool_fwd(float *Out, const float *In, int64_t C, int64_t H,
                          int64_t W, int64_t K, int64_t S, int64_t P,
                          int64_t Rc, int64_t Rb) {
  int64_t OutH = (H + 2 * P - K) / S + 1, OutW = (W + 2 * P - K) / S + 1;
  float Inv = 1.0f / (K * K);
  for (int64_t Ch = 0; Ch < C; ++Ch)
    for (int64_t Y = Rb; Y < Rb + Rc; ++Y)
      for (int64_t X = 0; X < OutW; ++X) {
        float Sum = 0;
        for (int64_t KY = 0; KY < K; ++KY)
          for (int64_t KX = 0; KX < K; ++KX) {
            int64_t IY = Y * S - P + KY, IX = X * S - P + KX;
            if (IY >= 0 && IY < H && IX >= 0 && IX < W)
              Sum += In[(Ch * H + IY) * W + IX];
          }
        Out[(Ch * OutH + Y) * OutW + X] = Sum * Inv;
      }
}
static void k_avgpool_bwd(float *InG, const float *OutG, int64_t C,
                          int64_t H, int64_t W, int64_t K, int64_t S,
                          int64_t P, int64_t Rc, int64_t Rb) {
  int64_t OutH = (H + 2 * P - K) / S + 1, OutW = (W + 2 * P - K) / S + 1;
  float Inv = 1.0f / (K * K);
  for (int64_t Ch = 0; Ch < C; ++Ch)
    for (int64_t Y = Rb; Y < Rb + Rc; ++Y)
      for (int64_t X = 0; X < OutW; ++X) {
        float G = OutG[(Ch * OutH + Y) * OutW + X] * Inv;
        for (int64_t KY = 0; KY < K; ++KY)
          for (int64_t KX = 0; KX < K; ++KX) {
            int64_t IY = Y * S - P + KY, IX = X * S - P + KX;
            if (IY >= 0 && IY < H && IX >= 0 && IX < W)
              InG[(Ch * H + IY) * W + IX] += G;
          }
      }
}
static void k_softmax_row(float *D, const float *S, int64_t C) {
  float Max = S[0];
  for (int64_t I = 1; I < C; ++I) Max = latte_max(Max, S[I]);
  float Sum = 0;
  for (int64_t I = 0; I < C; ++I) { D[I] = std::exp(S[I] - Max); Sum += D[I]; }
  for (int64_t I = 0; I < C; ++I) D[I] /= Sum;
}
static void k_softmax_fwd(float *D, const float *S, int64_t Rows,
                          int64_t C) {
  for (int64_t R = 0; R < Rows; ++R) k_softmax_row(D + R * C, S + R * C, C);
}
static void k_softmax_loss_fwd(float *Prob, const float *S,
                               const float *Lab, float *Loss, int64_t Rows,
                               int64_t C) {
  for (int64_t R = 0; R < Rows; ++R) {
    k_softmax_row(Prob + R * C, S + R * C, C);
    float P = Prob[R * C + (int64_t)Lab[R]];
    Loss[R] = -std::log(P < 1e-20f ? 1e-20f : P);
  }
}
static void k_softmax_loss_bwd(float *G, const float *Prob,
                               const float *Lab, int64_t Rows, int64_t C,
                               float Scale) {
  for (int64_t R = 0; R < Rows; ++R)
    for (int64_t I = 0; I < C; ++I)
      G[R * C + I] += (Prob[R * C + I] -
                       (I == (int64_t)Lab[R] ? 1.0f : 0.0f)) * Scale;
}
static void k_softmax_bwd(float *Gin, const float *Og, const float *P,
                          int64_t Rows, int64_t C) {
  for (int64_t R = 0; R < Rows; ++R) {
    float Dot = 0;
    for (int64_t I = 0; I < C; ++I) Dot += Og[R * C + I] * P[R * C + I];
    for (int64_t I = 0; I < C; ++I)
      Gin[R * C + I] += P[R * C + I] * (Og[R * C + I] - Dot);
  }
}
static uint64_t g_rng_state = 0x1a77e;
static void k_dropout_mask(float *Mask, int64_t N, float Keep) {
  for (int64_t I = 0; I < N; ++I) {
    g_rng_state += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = g_rng_state;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    Z ^= Z >> 31;
    double U = (double)(Z >> 11) / 9007199254740992.0;
    Mask[I] = U < Keep ? 1.0f / Keep : 0.0f;
  }
}

)";
}

void CppEmitter::initFunction() {
  OS << "static void latte_init() {\n";
  if (Prog.Plan.Valid) {
    OS << "  std::memset(latte_arena, 0, sizeof latte_arena);\n";
    for (const BufferInfo &B : Prog.Buffers) {
      const BufferInfo *Root = Prog.resolveAlias(B.Name);
      OS << "  " << B.Name << " = latte_arena + "
         << Prog.Plan.Offsets.at(Root->Name) / 4 << ";\n";
    }
    OS << "}\n\n";
    return;
  }
  for (const BufferInfo &B : Prog.Buffers)
    if (B.AliasOf.empty())
      OS << "  st_" << B.Name << ".assign(" << B.Dims.numElements()
         << ", 0.0f);\n";
  // Resolve alias chains to owning storage.
  for (const BufferInfo &B : Prog.Buffers)
    OS << "  " << B.Name << " = st_" << Prog.resolveAlias(B.Name)->Name
       << ".data();\n";
  OS << "}\n\n";
}

void CppEmitter::passFunction(const char *Name, const Stmt *Root,
                              bool ZeroOnForward) {
  OS << "void " << Name << "() {\n";
  if (Prog.Plan.Valid) {
    // Pass-top clears cover only pinned/retained roots; interval buffers
    // are cleared lazily between units (the plan's ZeroBefore schedule),
    // mirroring engine::Executor::execProgram.
    const MemoryPlan &Plan = Prog.Plan;
    const std::vector<std::string> &Tops =
        ZeroOnForward ? Plan.ZeroOnForwardPinned : Plan.ZeroOnBackwardPinned;
    for (const std::string &RootName : Tops)
      OS << "  k_zero(" << RootName << ", "
         << Prog.findBuffer(RootName)->Dims.numElements() << ");\n";
    int GlobalBase = ZeroOnForward ? 0 : Plan.NumForwardUnits;
    const auto *B = dyn_cast_if_present<const BlockStmt>(Root);
    if (B) {
      if (!B->label().empty())
        line(1, "// " + B->label());
      const std::vector<StmtPtr> &Units = B->stmts();
      for (size_t I = 0; I < Units.size(); ++I) {
        auto It = Plan.ZeroBefore.find(GlobalBase + static_cast<int>(I));
        if (It != Plan.ZeroBefore.end())
          for (const std::string &RootName : It->second)
            OS << "  k_zero(" << RootName << ", "
               << Prog.findBuffer(RootName)->Dims.numElements() << ");\n";
        emitStmt(Units[I].get(), 1);
      }
    } else if (Root) {
      emitStmt(Root, 1);
    }
    OS << "}\n\n";
    return;
  }
  for (const BufferInfo &B : Prog.Buffers) {
    bool Zero = ZeroOnForward ? B.ZeroOnForward : B.ZeroOnBackward;
    if (Zero)
      OS << "  k_zero(" << B.Name << ", " << B.Dims.numElements() << ");\n";
  }
  if (Root)
    emitStmt(Root, 1);
  OS << "}\n\n";
}

void CppEmitter::driver() {
  OS << "// --- .ltd file driver ---\n"
        "struct NamedBuf { const char *Name; float *Data; int64_t N; };\n"
        "static std::vector<NamedBuf> allBuffers() {\n"
        "  return {\n";
  for (const BufferInfo &B : Prog.Buffers)
    OS << "    {\"" << B.Name << "\", " << B.Name << ", "
       << B.Dims.numElements() << "},\n";
  OS << "  };\n}\n";
  OS << R"(
static bool readLtd(const char *Path) {
  FILE *F = std::fopen(Path, "rb");
  if (!F) return false;
  char Magic[4]; uint32_t Count = 0;
  if (std::fread(Magic, 1, 4, F) != 4 || std::memcmp(Magic, "LTD1", 4) ||
      std::fread(&Count, 4, 1, F) != 1) { std::fclose(F); return false; }
  std::vector<NamedBuf> Bufs = allBuffers();
  for (uint32_t I = 0; I < Count; ++I) {
    uint32_t NameLen = 0, Rank = 0;
    if (std::fread(&NameLen, 4, 1, F) != 1) break;
    std::string Name(NameLen, 0);
    if (std::fread(Name.data(), 1, NameLen, F) != NameLen ||
        std::fread(&Rank, 4, 1, F) != 1) break;
    int64_t N = 1;
    for (uint32_t D = 0; D < Rank; ++D) {
      int64_t Dim = 0;
      if (std::fread(&Dim, 8, 1, F) != 1) { std::fclose(F); return false; }
      N *= Dim;
    }
    float *Target = nullptr;
    for (NamedBuf &B : Bufs)
      if (Name == B.Name && B.N == N) Target = B.Data;
    if (Target) {
      if (std::fread(Target, 4, N, F) != (size_t)N) break;
    } else {
      std::fseek(F, N * 4, SEEK_CUR);
    }
  }
  std::fclose(F);
  return true;
}
static bool writeLtd(const char *Path) {
  FILE *F = std::fopen(Path, "wb");
  if (!F) return false;
  std::vector<NamedBuf> Bufs = allBuffers();
  uint32_t Count = (uint32_t)Bufs.size();
  std::fwrite("LTD1", 1, 4, F);
  std::fwrite(&Count, 4, 1, F);
  for (NamedBuf &B : Bufs) {
    uint32_t NameLen = (uint32_t)std::strlen(B.Name), Rank = 1;
    std::fwrite(&NameLen, 4, 1, F);
    std::fwrite(B.Name, 1, NameLen, F);
    std::fwrite(&Rank, 4, 1, F);
    int64_t N = B.N;
    std::fwrite(&N, 8, 1, F);
    std::fwrite(B.Data, 4, N, F);
  }
  std::fclose(F);
  return true;
}

int main(int Argc, char **Argv) {
  if (Argc < 3) {
    std::fprintf(stderr, "usage: %s <in.ltd> <out.ltd> [fwd|fwdbwd]\n",
                 Argv[0]);
    return 2;
  }
  latte_init();
  if (!readLtd(Argv[1])) {
    std::fprintf(stderr, "cannot read %s\n", Argv[1]);
    return 1;
  }
  latte_forward();
  if (Argc < 4 || std::string(Argv[3]) == "fwdbwd")
    latte_backward();
  if (!writeLtd(Argv[2])) {
    std::fprintf(stderr, "cannot write %s\n", Argv[2]);
    return 1;
  }
  return 0;
}
)";
}

std::string CppEmitter::run() {
  header();
  buffers();
  kernels();
  initFunction();
  OS << "void latte_forward();\nvoid latte_backward();\n\n";
  passFunction("latte_forward", Prog.Forward.get(), /*ZeroOnForward=*/true);
  passFunction("latte_backward", Prog.Backward.get(),
               /*ZeroOnForward=*/false);
  driver();
  return OS.str();
}

} // namespace

std::string compiler::generateCpp(const Program &Prog) {
  CppEmitter E(Prog);
  return E.run();
}

bool compiler::writeGeneratedProgram(const Program &Prog,
                                     const std::string &Path) {
  std::string Source = generateCpp(Prog);
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  bool Ok = std::fwrite(Source.data(), 1, Source.size(), F) == Source.size();
  std::fclose(F);
  return Ok;
}
