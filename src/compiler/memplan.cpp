//===- compiler/memplan.cpp -----------------------------------*- C++ -*-===//

#include "compiler/memplan.h"

#include "analyze/effects.h"
#include "compiler/program.h"
#include "support/casting.h"

#include <algorithm>
#include <sstream>

using namespace latte;
using namespace latte::compiler;

namespace {

int64_t alignUp(int64_t V, int64_t A) { return (V + A - 1) / A * A; }

/// Working state for one alias root while liveness is collected.
struct RootState {
  int64_t Bytes = 0;
  int FirstRef = -1;
  int LastRef = -1;
  int FirstFwdRef = -1;
  int LastFwdRef = -1;
  int FirstBwdRef = -1;
  bool Pinned = false;
  bool Recomputed = false;
  bool Retained = false;
  bool ZeroOnForward = false;
  bool ZeroOnBackward = false;
  /// First access in timeline order reads without writing / accumulates.
  bool SeenAccess = false;
  bool FirstAccessReadOnly = false;
  bool FirstAccessAccum = false;
};

/// Aggregates one member buffer's role into the root's classification
/// (pinned beats retained beats interval).
void classifyRole(BufferRole Role, RootState &S) {
  switch (Role) {
  case BufferRole::Param:
  case BufferRole::Data:
    S.Pinned = true;
    break;
  case BufferRole::Value:
  case BufferRole::ParamGrad:
    // Inspected by solvers, verification and tests after a run; keep the
    // bytes intact through end-of-run.
    S.Retained = true;
    break;
  case BufferRole::Grad:
  case BufferRole::GradInput:
  case BufferRole::Input:
  case BufferRole::Scratch:
    break; // interval unless liveness says otherwise
  }
}

/// Best-fit placement of one interval against the already-placed buffers
/// whose live ranges overlap. \p Busy holds the forbidden byte ranges
/// [Lo, Hi), unsorted. Returns the chosen offset (>= \p Base, aligned).
int64_t placeBestFit(std::vector<std::pair<int64_t, int64_t>> Busy,
                     int64_t Need, int64_t Base, int64_t Align) {
  std::sort(Busy.begin(), Busy.end());
  // Merge overlapping/adjacent forbidden ranges.
  std::vector<std::pair<int64_t, int64_t>> Merged;
  for (const auto &R : Busy) {
    if (!Merged.empty() && R.first <= Merged.back().second)
      Merged.back().second = std::max(Merged.back().second, R.second);
    else
      Merged.push_back(R);
  }
  int64_t BestOff = -1, BestGap = -1;
  int64_t Cur = Base;
  for (const auto &R : Merged) {
    int64_t Start = alignUp(Cur, Align);
    int64_t Gap = R.first - Start;
    if (Gap >= Need && (BestGap < 0 || Gap < BestGap)) {
      BestGap = Gap;
      BestOff = Start;
    }
    Cur = std::max(Cur, R.second);
  }
  if (BestOff >= 0)
    return BestOff;
  return alignUp(Cur, Align); // tail: grows the arena
}

} // namespace

bool MemoryPlan::retainedAtExit(const std::string &Root) const {
  const BufferLifetime *L = lifetime(Root);
  if (!L)
    return false;
  if (L->Pinned || L->Retained)
    return true;
  for (const BufferLifetime &O : Lifetimes) {
    if (&O == L || !L->overlapsBytes(O))
      continue;
    if (O.LastRef > L->LastRef || O.Retained || O.Pinned)
      return false;
  }
  return true;
}

std::string MemoryPlan::str() const {
  std::ostringstream OS;
  double Saved =
      EagerBytes > 0
          ? 100.0 * (1.0 - static_cast<double>(ArenaBytes) / EagerBytes)
          : 0.0;
  OS << "memory plan: arena=" << ArenaBytes << " eager=" << EagerBytes
     << " saved=" << static_cast<int>(Saved * 10) / 10.0
     << "% align=" << Alignment << "\n";
  OS << "units: forward=" << NumForwardUnits
     << " backward=" << NumBackwardUnits << "\n";
  for (const BufferLifetime &L : Lifetimes) {
    OS << "  " << L.Name << " offset=" << L.Offset << " bytes=" << L.Bytes
       << " live=[" << L.LiveBegin << "," << L.LiveEnd << "]";
    if (L.Live2Begin >= 0)
      OS << " live2=[" << L.Live2Begin << "," << L.Live2End << "]";
    OS << " refs=[" << L.FirstRef << "," << L.LastRef << "] "
       << (L.Pinned ? "pinned" : L.Retained ? "retained" : "interval")
       << (L.Recomputed ? " recomputed" : "") << "\n";
  }
  for (const auto &[Unit, Names] : ZeroBefore) {
    OS << "zero-before unit " << Unit << ":";
    for (const std::string &N : Names)
      OS << " " << N;
    OS << "\n";
  }
  auto DumpPassTop = [&OS](const char *Which,
                           const std::vector<std::string> &Names) {
    if (Names.empty())
      return;
    OS << "zero-" << Which << "-top:";
    for (const std::string &N : Names)
      OS << " " << N;
    OS << "\n";
  };
  DumpPassTop("forward", ZeroOnForwardPinned);
  DumpPassTop("backward", ZeroOnBackwardPinned);
  return OS.str();
}

MemoryPlan compiler::planMemory(const Program &Prog) {
  MemoryPlan Plan;
  Plan.Valid = true;

  // --- gather alias roots in declaration order ---------------------------
  std::vector<std::string> RootOrder;
  std::map<std::string, RootState> Roots;
  for (const BufferInfo &B : Prog.Buffers) {
    const BufferInfo *Root = Prog.resolveAlias(B.Name);
    if (!Root)
      continue; // dangling alias chain: the verifier reports it
    auto It = Roots.find(Root->Name);
    if (It == Roots.end()) {
      RootOrder.push_back(Root->Name);
      It = Roots.emplace(Root->Name, RootState{}).first;
    }
    RootState &S = It->second;
    S.Bytes = std::max(
        S.Bytes, static_cast<int64_t>(B.Dims.numElements()) * 4);
    S.ZeroOnForward |= B.ZeroOnForward;
    S.ZeroOnBackward |= B.ZeroOnBackward;
    classifyRole(B.Role, S);
  }
  // The well-known IO buffers are the program's external interface; pin
  // them regardless of role.
  for (const std::string *Name :
       {&Prog.DataBuffer, &Prog.LabelBuffer, &Prog.LossBuffer,
        &Prog.ProbBuffer}) {
    if (Name->empty())
      continue;
    if (const BufferInfo *Root = Prog.resolveAlias(*Name)) {
      auto It = Roots.find(Root->Name);
      if (It != Roots.end())
        It->second.Pinned = true;
    }
  }

  // --- liveness over the global unit timeline ----------------------------
  std::vector<const ir::Stmt *> Units;
  auto addUnits = [&Units](const ir::Stmt *Root, int &CountOut) {
    size_t Before = Units.size();
    if (Root) {
      if (const auto *B = dyn_cast<ir::BlockStmt>(Root))
        for (const ir::StmtPtr &S : B->stmts())
          Units.push_back(S.get());
      else
        Units.push_back(Root);
    }
    CountOut = static_cast<int>(Units.size() - Before);
  };
  addUnits(Prog.Forward.get(), Plan.NumForwardUnits);
  addUnits(Prog.Backward.get(), Plan.NumBackwardUnits);
  const int NumFwd = Plan.NumForwardUnits;
  const int TotalUnits = static_cast<int>(Units.size());

  analyze::BufferTable Bufs(Prog);
  for (int U = 0; U < TotalUnits; ++U) {
    analyze::UnitEffects UE =
        analyze::collectUnitEffects(Units[U], Bufs, /*Diags=*/nullptr);
    for (const auto &[Key, Accesses] : UE.Effects.Buffers) {
      if (Key.rfind("int:", 0) == 0)
        continue; // int index/mask buffers are not float-planned
      auto It = Roots.find(Key);
      if (It == Roots.end())
        continue; // unknown buffer: the verifier reports it
      RootState &S = It->second;
      if (S.FirstRef < 0)
        S.FirstRef = U;
      S.LastRef = U;
      if (U < NumFwd) {
        if (S.FirstFwdRef < 0)
          S.FirstFwdRef = U;
        S.LastFwdRef = U;
      } else if (S.FirstBwdRef < 0) {
        S.FirstBwdRef = U;
      }
      if (!S.SeenAccess && !Accesses.empty()) {
        S.SeenAccess = true;
        const analyze::Access &A = Accesses.front();
        S.FirstAccessReadOnly = A.Read && !A.Write;
        S.FirstAccessAccum = A.Accumulating;
      }
    }
  }

  // Recomputed roots (compiler/recompute.h): the backward consumer is fed
  // by a cloned gather that rewrites the whole buffer, so cross-boundary
  // retention is unnecessary; they get two disjoint intervals instead.
  for (const RecomputeInfo &RI : Prog.Recomputes) {
    auto It = Roots.find(RI.Buffer);
    if (It != Roots.end())
      It->second.Recomputed = true;
  }

  // --- classification fixups ---------------------------------------------
  for (const std::string &Name : RootOrder) {
    RootState &S = Roots[Name];
    bool HasZero = S.ZeroOnForward || S.ZeroOnBackward;
    // Never referenced by any task: only reachable through readBuffer /
    // writeBuffer, so no live range exists to reason about — keep the
    // bytes exclusive.
    if (S.FirstRef < 0)
      S.Pinned = true;
    // Referenced in both passes: retain so repeated forward()/backward()
    // calls replay against intact bytes — unless the recompute pass proved
    // the backward interval starts with a full re-gather (replay of either
    // interval begins with a whole-buffer write, so stale bytes are never
    // read).
    if (S.FirstFwdRef >= 0 && S.FirstBwdRef >= 0 && !S.Recomputed)
      S.Retained = true;
    // State carriers: the first access consumes bytes no task of this run
    // produced and no scheduled clear covers.
    if ((S.FirstAccessReadOnly || S.FirstAccessAccum) && !HasZero)
      S.Pinned = true;
    // A backward-cleared root never referenced in backward would lose its
    // top-of-backward clear under lazy scheduling; keep classic clears.
    if (S.ZeroOnBackward && S.FirstBwdRef < 0 && !S.Pinned)
      S.Retained = true;
  }

  // --- build lifetimes ----------------------------------------------------
  for (const std::string &Name : RootOrder) {
    const RootState &S = Roots[Name];
    BufferLifetime L;
    L.Name = Name;
    L.Bytes = S.Bytes;
    L.FirstRef = S.FirstRef;
    L.LastRef = S.LastRef;
    L.Pinned = S.Pinned;
    L.Retained = !S.Pinned && S.Retained;
    if (L.Pinned || L.Retained) {
      // Retained buffers also span the whole timeline for ALLOCATION (not
      // just [FirstRef, end]): passes replay — a finite-difference loop
      // re-runs forward() after backward() wrote the parameter gradients,
      // so bytes "free before FirstRef" would be rewritten by the replayed
      // pass and corrupt the retained contents.
      L.LiveBegin = 0;
      L.LiveEnd = TotalUnits; // sentinel past the last unit: end-of-run
    } else if (S.Recomputed && S.FirstFwdRef >= 0 && S.LastFwdRef >= 0 &&
               S.FirstBwdRef >= 0) {
      // Two disjoint intervals; each starts with a whole-buffer gather
      // write, so the bytes in the gap are free for other roots.
      L.LiveBegin = S.FirstFwdRef;
      L.LiveEnd = S.LastFwdRef;
      L.Live2Begin = S.FirstBwdRef;
      L.Live2End = S.LastRef;
      L.Recomputed = true;
    } else {
      L.LiveBegin = S.FirstRef;
      L.LiveEnd = S.LastRef;
    }
    Plan.Lifetimes.push_back(std::move(L));
    Plan.EagerBytes += S.Bytes;
  }

  // --- zero scheduling ----------------------------------------------------
  for (const std::string &Name : RootOrder) {
    const RootState &S = Roots[Name];
    bool PassTop = S.Pinned || S.Retained;
    if (S.ZeroOnForward) {
      if (PassTop)
        Plan.ZeroOnForwardPinned.push_back(Name);
      else
        Plan.ZeroBefore[S.FirstRef].push_back(Name);
    }
    if (S.ZeroOnBackward) {
      if (PassTop)
        Plan.ZeroOnBackwardPinned.push_back(Name);
      else if (!S.ZeroOnForward) // both-flag roots were scheduled above
        Plan.ZeroBefore[S.FirstRef].push_back(Name);
    }
  }

  // --- arena assignment ----------------------------------------------------
  // Pinned roots pack first, in declaration order.
  int64_t Cursor = 0;
  for (BufferLifetime &L : Plan.Lifetimes) {
    if (!L.Pinned)
      continue;
    L.Offset = Cursor;
    Cursor += alignUp(L.Bytes, Plan.Alignment);
  }
  const int64_t PinnedEnd = Cursor;
  int64_t ArenaEnd = PinnedEnd;

  // Non-pinned roots by decreasing size (name-ordered ties) — the classic
  // greedy-by-size interval packing.
  std::vector<BufferLifetime *> Order;
  for (BufferLifetime &L : Plan.Lifetimes)
    if (!L.Pinned)
      Order.push_back(&L);
  std::sort(Order.begin(), Order.end(),
            [](const BufferLifetime *A, const BufferLifetime *B) {
              if (A->Bytes != B->Bytes)
                return A->Bytes > B->Bytes;
              return A->Name < B->Name;
            });
  std::vector<const BufferLifetime *> Placed;
  for (BufferLifetime *L : Order) {
    if (L->Bytes == 0) {
      L->Offset = 0; // inert: overlapsBytes() never triggers on zero size
      continue;
    }
    std::vector<std::pair<int64_t, int64_t>> Busy;
    for (const BufferLifetime *P : Placed)
      if (L->overlapsLifetime(*P))
        Busy.emplace_back(P->Offset, P->Offset + P->Bytes);
    L->Offset = placeBestFit(std::move(Busy), L->Bytes, PinnedEnd,
                             Plan.Alignment);
    ArenaEnd = std::max(ArenaEnd, L->Offset + L->Bytes);
    Placed.push_back(L);
  }
  Plan.ArenaBytes = alignUp(ArenaEnd, Plan.Alignment);

  for (const BufferLifetime &L : Plan.Lifetimes)
    Plan.Offsets[L.Name] = L.Offset;
  return Plan;
}
