//===- compiler/passes.cpp ------------------------------------*- C++ -*-===//

#include "compiler/passes.h"

#include "ir/builder.h"
#include "support/error.h"

#include <algorithm>

using namespace latte;
using namespace latte::compiler;
using namespace latte::ir;

namespace {

/// A task plus its tiling plan.
struct PlannedTask {
  EnsembleTask Task;
  bool Tiled = false;
  int64_t NumTiles = 0;
  int64_t TileSize = 0;
  int64_t RowExtent = 0;
};

/// Largest divisor of \p N that is <= \p Target (at least 1).
int64_t largestDivisorAtMost(int64_t N, int64_t Target) {
  assert(N > 0 && Target > 0 && "divisor search needs positive arguments");
  for (int64_t D = std::min(N, Target); D >= 1; --D)
    if (N % D == 0)
      return D;
  return 1;
}

/// Decides the tiling plan for one task (§5.4.1). A task is tiled when
/// tiling is enabled, it has at least one tileable row operation, and the
/// row extent splits into more than one tile.
void planTiling(PlannedTask &P, const CompileOptions &Opts) {
  int64_t Rows = 0;
  bool AnyTileable = false;
  for (const RowOp &Op : P.Task.PerItem) {
    if (Op.RowExtent <= 0)
      continue;
    assert((Rows == 0 || Rows == Op.RowExtent) &&
           "row-structured ops within a task must share an extent");
    Rows = Op.RowExtent;
    AnyTileable |= Op.Tileable;
  }
  P.RowExtent = Rows;
  if (!Opts.Tiling || !AnyTileable || Rows < Opts.MinRowsToTile ||
      Rows <= 1)
    return;
  int64_t T = largestDivisorAtMost(Rows, std::max<int64_t>(1, Opts.TileSize));
  int64_t N = Rows / T;
  if (N < 2)
    return;
  P.Tiled = true;
  P.NumTiles = N;
  P.TileSize = T;
}

/// Materializes one task's per-item statements. When the task is tiled, the
/// tileable ops are instantiated per tile under a TiledLoopStmt (the loop
/// variable is \p TileVar); non-tileable ops follow as whole-extent
/// statements. \p Into receives the statements.
void materializeTask(const PlannedTask &P, const std::string &TileVar,
                     std::vector<StmtPtr> &TiledBody,
                     std::vector<StmtPtr> &Trailing) {
  for (const RowOp &Op : P.Task.PerItem) {
    bool SplitThis = P.Tiled && Op.Tileable && Op.RowExtent > 0;
    if (SplitThis) {
      ExprPtr RowBegin = mul(var(TileVar), intConst(P.TileSize));
      TiledBody.push_back(Op.Make(std::move(RowBegin), P.TileSize));
    } else {
      Trailing.push_back(Op.makeWhole());
    }
  }
}

/// One maximal run of consecutive per-item tasks that will share a batch
/// loop.
struct BatchGroup {
  std::vector<PlannedTask> Tasks;
};

class Assembler {
public:
  Assembler(const CompileOptions &Opts, Program &Prog)
      : Opts(Opts), Prog(Prog) {}

  StmtPtr assemble(std::vector<EnsembleTask> Tasks, const char *Label,
                   bool ReportFusion, std::vector<TaskLabel> &Labels);

private:
  void flushGroup(std::vector<StmtPtr> &Units, BatchGroup &Group,
                  bool ReportFusion);

  /// Pushes a unit and its display label in lockstep (units and labels stay
  /// parallel vectors — the engine's per-task profiler indexes by unit).
  void pushUnit(std::vector<StmtPtr> &Units, StmtPtr S, std::string Name,
                std::vector<std::string> Ensembles) {
    Units.push_back(std::move(S));
    CurLabels->push_back({std::move(Name), std::move(Ensembles)});
  }

  const CompileOptions &Opts;
  Program &Prog;
  std::vector<TaskLabel> *CurLabels = nullptr;
  int TileVarCounter = 0;
};

StmtPtr Assembler::assemble(std::vector<EnsembleTask> Tasks,
                            const char *Label, bool ReportFusion,
                            std::vector<TaskLabel> &Labels) {
  std::vector<StmtPtr> Units;
  BatchGroup Group;
  CurLabels = &Labels;

  for (EnsembleTask &Task : Tasks) {
    bool Barrier = Task.FusionBarrier;
    if (!Task.Pre.empty() || Barrier)
      flushGroup(Units, Group, ReportFusion);
    for (StmtPtr &S : Task.Pre)
      pushUnit(Units, std::move(S), "pre:" + Task.EnsembleName,
               {Task.EnsembleName});
    if (Barrier)
      pushUnit(Units, barrier(Task.EnsembleName),
               "barrier:" + Task.EnsembleName, {Task.EnsembleName});

    bool HasPost = !Task.Post.empty();
    std::vector<StmtPtr> Post = std::move(Task.Post);
    std::string PostName = Task.EnsembleName;
    if (!Task.PerItem.empty()) {
      PlannedTask P;
      P.Task = std::move(Task);
      planTiling(P, Opts);
      Group.Tasks.push_back(std::move(P));
    }
    if (HasPost) {
      flushGroup(Units, Group, ReportFusion);
      for (StmtPtr &S : Post)
        pushUnit(Units, std::move(S), "post:" + PostName, {PostName});
    }
  }
  flushGroup(Units, Group, ReportFusion);
  // Debug-build fast path; the release-mode promotion of this invariant
  // lives in analyze::verifyProgram (program.task-labels), which
  // CompileOptions::VerifyEach runs after every compile, and in the
  // engine's constructor-time label check.
  assert(Units.size() == Labels.size() &&
         "task labels must stay parallel to assembled units");
  return block(std::move(Units), Label);
}

void Assembler::flushGroup(std::vector<StmtPtr> &Units, BatchGroup &Group,
                           bool ReportFusion) {
  if (Group.Tasks.empty())
    return;
  std::vector<PlannedTask> Tasks = std::move(Group.Tasks);
  Group.Tasks.clear();

  // Cross-layer fusion (§5.4.2): partition the group into chains. A task
  // joins the current chain when it consumes the chain's last ensemble
  // (either direction), carries a positive dependence distance, and both
  // sides are tiled. Joining aligns every chain member to a common tile
  // count; producers get their tile size scaled by the dependence distance
  // (Figure 11).
  std::vector<std::vector<size_t>> Chains;
  for (size_t I = 0; I < Tasks.size(); ++I) {
    bool Joined = false;
    if (Opts.Fusion && !Chains.empty() && Tasks[I].Tiled) {
      std::vector<size_t> &Chain = Chains.back();
      PlannedTask &Last = Tasks[Chain.back()];
      PlannedTask &Cur = Tasks[I];
      // Forward direction: Cur consumes Last.
      bool FwdLink = Cur.Task.FuseDist > 0 &&
                     Cur.Task.ProducerName == Last.Task.EnsembleName;
      // Backward direction: Last consumes Cur (reverse program order).
      bool BwdLink = Last.Task.FuseDist > 0 &&
                     Last.Task.ProducerName == Cur.Task.EnsembleName;
      if (Last.Tiled && (FwdLink || BwdLink)) {
        int64_t G = FwdLink ? Cur.NumTiles : Last.NumTiles;
        bool Divides = G > 0 && Cur.RowExtent % G == 0;
        for (size_t J : Chain)
          Divides &= Tasks[J].RowExtent % G == 0;
        if (Divides) {
          for (size_t J : Chain) {
            Tasks[J].NumTiles = G;
            Tasks[J].TileSize = Tasks[J].RowExtent / G;
          }
          Cur.NumTiles = G;
          Cur.TileSize = Cur.RowExtent / G;
          Chain.push_back(I);
          Joined = true;
        }
      }
    }
    if (!Joined)
      Chains.push_back({I});
  }

  // Materialize each chain into its own batch loop (loop fission). One loop
  // per chain — rather than one loop for the whole group — is what makes
  // the memory planner's unit-granularity liveness useful: a fused group is
  // a single timeline unit, so every pass-local buffer inside it conflicts
  // with every other and the arena cannot fold any of them. Fission is
  // semantics-preserving: for every item n, a chain still runs after the
  // chains that feed it (all of a producer chain's items complete before
  // the consumer chain starts), and each buffer's writes still occur in
  // ascending item order, so per-buffer accumulation order is unchanged.
  // Locality is unaffected where it matters — fusion chains stay intact
  // inside one loop; only independent chains are split apart.
  for (const std::vector<size_t> &Chain : Chains) {
    std::vector<StmtPtr> Body;
    std::vector<std::string> ChainEnsembles;
    std::string ChainName = "batch[";
    for (size_t J : Chain) {
      if (J != Chain.front())
        ChainName += '+';
      ChainName += Tasks[J].Task.EnsembleName;
      ChainEnsembles.push_back(Tasks[J].Task.EnsembleName);
    }
    ChainName += ']';

    bool AnyTiled = false;
    for (size_t J : Chain)
      AnyTiled |= Tasks[J].Tiled;
    if (!AnyTiled) {
      for (size_t J : Chain)
        for (const RowOp &Op : Tasks[J].Task.PerItem)
          Body.push_back(Op.makeWhole());
    } else {
      std::string TileVar = "t" + std::to_string(TileVarCounter++);
      std::vector<StmtPtr> TiledBody, Trailing;
      int64_t NumTiles = 0, TileSize = 0, Dist = 1;
      for (size_t J : Chain) {
        materializeTask(Tasks[J], TileVar, TiledBody, Trailing);
        if (Tasks[J].Tiled) {
          NumTiles = Tasks[J].NumTiles;
          TileSize = Tasks[J].TileSize;
          if (Tasks[J].Task.FuseDist > 0)
            Dist = Tasks[J].Task.FuseDist;
        }
      }
      assert(NumTiles > 0 && "tiled chain must produce a tile count");
      auto Loop = std::make_unique<TiledLoopStmt>(
          TileVar, "y", NumTiles, TileSize, Dist,
          block(std::move(TiledBody)));
      ++Prog.Report.NumTiledLoops;
      Body.push_back(std::move(Loop));
      for (StmtPtr &S : Trailing)
        Body.push_back(std::move(S));

      if (ReportFusion && Chain.size() >= 2) {
        std::vector<std::string> Names;
        for (size_t J : Chain)
          Names.push_back(Tasks[J].Task.EnsembleName);
        Prog.Report.FusionGroups.push_back(std::move(Names));
      }
    }

    // The batch loop itself (§5.4.3): data-parallel across items; collapsed
    // with the tile loop when the body is a single tiled loop.
    auto BatchLoop = std::make_unique<ForStmt>(
        "n", intConst(0), Prog.BatchSize, block(std::move(Body)));
    if (Opts.Parallelize) {
      BatchLoop->annotations().Parallel = true;
      auto *BodyBlock = cast<BlockStmt>(BatchLoop->body());
      if (BodyBlock->stmts().size() == 1)
        if (auto *TL =
                dyn_cast<TiledLoopStmt>(BodyBlock->stmts()[0].get())) {
          BatchLoop->annotations().Collapse = 2;
          TL->annotations().Parallel = true;
        }
    }
    pushUnit(Units, std::move(BatchLoop), std::move(ChainName),
             std::move(ChainEnsembles));
  }
}

} // namespace

void compiler::assemblePrograms(SynthesisResult Tasks,
                                const CompileOptions &Opts, Program &Prog) {
  Assembler A(Opts, Prog);
  Prog.Forward = A.assemble(std::move(Tasks.ForwardTasks), "forward",
                            /*ReportFusion=*/true, Prog.ForwardTasks);
  Prog.Backward = A.assemble(std::move(Tasks.BackwardTasks), "backward",
                             /*ReportFusion=*/false, Prog.BackwardTasks);
}
