//===- compiler/synthesis.cpp ---------------------------------*- C++ -*-===//

#include "compiler/synthesis.h"

#include "ir/printer.h"
#include "ir/visitor.h"
#include "support/error.h"

#include <algorithm>
#include <unordered_map>

using namespace latte;
using namespace latte::compiler;
using namespace latte::core;
using namespace latte::ir;

namespace {

/// Batch-item offset expression: n * Stride.
ExprPtr nOff(int64_t Stride) { return mul(var("n"), intConst(Stride)); }

class Synthesizer {
public:
  Synthesizer(const Net &TheNet, const CompileOptions &Opts, Program &Prog)
      : TheNet(TheNet), Opts(Opts), Prog(Prog) {}

  SynthesisResult run();

private:
  // Buffer declaration helpers -------------------------------------------
  BufferInfo &declareBuffer(const std::string &Name, Shape Dims,
                            BufferRole Role, std::string AliasOf = "") {
    assert(!Prog.findBuffer(Name) && "duplicate buffer declaration");
    BufferInfo Info;
    Info.Name = Name;
    Info.Dims = std::move(Dims);
    Info.Role = Role;
    Info.AliasOf = std::move(AliasOf);
    Prog.Buffers.push_back(std::move(Info));
    return Prog.Buffers.back();
  }

  void declareTable(const std::string &Name, std::vector<int32_t> Entries) {
    IntBufferInfo Info;
    Info.Name = Name;
    Info.Count = static_cast<int64_t>(Entries.size());
    Info.Entries = std::move(Entries);
    Prog.IntBuffers.push_back(std::move(Info));
  }

  void declareIntBuffer(const std::string &Name, int64_t Count) {
    IntBufferInfo Info;
    Info.Name = Name;
    Info.Count = Count;
    Prog.IntBuffers.push_back(std::move(Info));
  }

  // Per-ensemble synthesis -------------------------------------------------
  void processEnsemble(Ensemble *E);
  void handleData(Ensemble *E);
  void handleNorm(Ensemble *E);
  void handleNeuronEnsemble(Ensemble *E);

  bool tryWeightedFc(Ensemble *E, const ConnectionInfo &Info);
  bool tryWeightedTimeFc(Ensemble *E, const ConnectionInfo &Info);
  bool tryWeightedConv(Ensemble *E, const ConnectionInfo &Info);
  bool tryPool(Ensemble *E, const ConnectionInfo &Info);
  bool tryActivation(Ensemble *E, const ConnectionInfo &Info);
  bool trySumMul(Ensemble *E, const std::vector<ConnectionInfo> &Infos);
  void synthesizeInterpreted(Ensemble *E,
                             const std::vector<ConnectionInfo> &Infos);

  // Shared pieces ----------------------------------------------------------
  NeuronContext contextFor(const std::vector<ConnectionInfo> &Infos) const {
    NeuronContext Ctx;
    for (const ConnectionInfo &I : Infos)
      Ctx.InputLengths.push_back(I.WindowVolume);
    return Ctx;
  }

  /// Declares value and grad buffers for \p E. In-place activations alias
  /// their VALUE onto the source (the paragraph-3.2 memory optimization);
  /// gradients always get private storage, because backward propagation
  /// accumulates with += into the source gradient -- accumulating through
  /// an alias of the very gradient being consumed would double-count.
  void declareValueGrad(Ensemble *E, bool InPlace) {
    Shape VDims = E->dims().withPrefix(Batch);
    if (InPlace) {
      Ensemble *Src = E->inputs()[0].Source;
      declareBuffer(E->valueBuffer(), VDims, BufferRole::Value,
                    Src->valueBuffer());
    } else {
      declareBuffer(E->valueBuffer(), VDims, BufferRole::Value);
    }
    BufferInfo &G = declareBuffer(E->gradBuffer(), VDims, BufferRole::Grad);
    G.ZeroOnBackward = true;
  }

  /// Declares field (and grad-field) buffers for every field of \p E's
  /// neuron type. \p DefaultElem resolves fields declared with an empty
  /// shape (the window-sized weights of WeightedNeuron).
  void declareFields(Ensemble *E, const Shape &DefaultElem);

  /// Shape of a field's buffer: storage dims + element dims.
  Shape fieldBufferShape(const FieldStorage &S) const {
    std::vector<int64_t> Dims = S.StorageDims.dims();
    for (int64_t D : S.ElemDims.dims())
      Dims.push_back(D);
    return Shape(Dims);
  }

  /// Resolved storage for field \p F on ensemble \p E (explicit storage or
  /// the identity default).
  FieldStorage resolvedStorage(Ensemble *E, const FieldSpec &F,
                               const Shape &DefaultElem) const {
    if (const FieldStorage *S = E->findFieldStorage(F.Name)) {
      FieldStorage R = *S;
      if (R.ElemDims.rank() == 0)
        R.ElemDims = F.Dims.rank() > 0 ? F.Dims : DefaultElem;
      return R;
    }
    FieldStorage R;
    R.StorageDims = E->dims();
    R.ElemDims = F.Dims.rank() > 0 ? F.Dims : DefaultElem;
    return R;
  }

  /// Builds the gather table for connection \p Conn of ensemble \p E with
  /// analysis \p Info: layout [WindowVolume][NonSharedVolume], entries are
  /// source-item-linear indices or -1 for out-of-bounds (padding).
  std::vector<int32_t> buildGatherTable(Ensemble *E, const Connection &Conn,
                                        const ConnectionInfo &Info) const;

  /// Appends grad-sync hooks for every param-grad buffer of \p E.
  void appendGradHooks(Ensemble *E, EnsembleTask &Task);

  const Net &TheNet;
  const CompileOptions &Opts;
  Program &Prog;
  int64_t Batch = 0;

  std::vector<EnsembleTask> Fwd, Bwd;
  /// Canonical neuron types used by the pattern matchers.
  NeuronType CanonWeighted = makeWeightedNeuronType();
  NeuronType CanonMax = makeMaxNeuronType();
  NeuronType CanonAvg = makeAvgNeuronType();
  NeuronType CanonRelu = makeReluNeuronType();
  NeuronType CanonSigmoid = makeSigmoidNeuronType();
  NeuronType CanonTanh = makeTanhNeuronType();
  NeuronType CanonSum = makeSumNeuronType();
  NeuronType CanonMul = makeMulNeuronType();
};

/// True when \p Type's forward and backward bodies are alpha-equivalent to
/// \p Canon's under context \p Ctx. This is the pattern-matching test: it
/// recognizes the computation's *shape*, not the type's name.
bool matchesCanonical(const NeuronType *Type, const NeuronType &Canon,
                      const NeuronContext &Ctx) {
  if (!Type)
    return false;
  StmtPtr F1 = Type->makeForward(Ctx);
  StmtPtr F2 = Canon.makeForward(Ctx);
  if (!stmtEquivalent(F1.get(), F2.get()))
    return false;
  if (Type->hasBackward() != Canon.hasBackward())
    return false;
  if (!Type->hasBackward())
    return true;
  StmtPtr B1 = Type->makeBackward(Ctx);
  StmtPtr B2 = Canon.makeBackward(Ctx);
  return stmtEquivalent(B1.get(), B2.get());
}

SynthesisResult Synthesizer::run() {
  Batch = TheNet.batchSize();
  Prog.BatchSize = Batch;
  for (Ensemble *E : TheNet.topologicalOrder())
    processEnsemble(E);
  SynthesisResult Result;
  Result.ForwardTasks = std::move(Fwd);
  // Backward tasks were produced in topological order; execution needs the
  // reverse.
  std::reverse(Bwd.begin(), Bwd.end());
  Result.BackwardTasks = std::move(Bwd);
  return Result;
}

void Synthesizer::processEnsemble(Ensemble *E) {
  for (const Connection &C : E->inputs())
    if (C.Recurrent)
      reportFatalError("ensemble '" + E->name() +
                       "' has a recurrent connection; unroll the network "
                       "over time before compiling (see core/recurrent.h)");
  switch (E->kind()) {
  case EnsembleKind::Data:
    handleData(E);
    return;
  case EnsembleKind::Normalization:
  case EnsembleKind::Loss:
    handleNorm(E);
    return;
  case EnsembleKind::Standard:
  case EnsembleKind::Activation:
    handleNeuronEnsemble(E);
    return;
  }
  latteUnreachable("unknown ensemble kind");
}

void Synthesizer::handleData(Ensemble *E) {
  declareBuffer(E->valueBuffer(), E->dims().withPrefix(Batch),
                BufferRole::Data);
  BufferInfo &G = declareBuffer(E->gradBuffer(), E->dims().withPrefix(Batch),
                                BufferRole::Grad);
  G.ZeroOnBackward = true;
  if (Prog.DataBuffer.empty())
    Prog.DataBuffer = E->valueBuffer();
}

void Synthesizer::handleNorm(Ensemble *E) {
  if (E->inputs().size() != 1)
    reportFatalError("normalization ensemble '" + E->name() +
                     "' must have exactly one input");
  Ensemble *Src = E->inputs()[0].Source;
  if (E->dims() != Src->dims() && E->normOp() != NormOpKind::SoftmaxLoss)
    reportFatalError("normalization ensemble '" + E->name() +
                     "' must preserve its input shape");

  declareValueGrad(E, /*InPlace=*/false);
  int64_t Elems = E->dims().numElements();
  int64_t Count = Batch * Elems;

  EnsembleTask FwdTask, BwdTask;
  FwdTask.EnsembleName = BwdTask.EnsembleName = E->name();
  FwdTask.FusionBarrier = BwdTask.FusionBarrier = true;

  switch (E->normOp()) {
  case NormOpKind::Softmax: {
    // Normalize over the LAST axis. Rank-1 ensembles are one row per batch
    // item (the classifier softmax); higher-rank ensembles normalize each
    // trailing-axis row independently — e.g. attention's (T, T) score
    // ensemble softmaxes over keys. Both flatten to the same row-major
    // {Rows, Classes} kernel geometry, so rank-1 nets are bitwise
    // unchanged.
    int64_t Last = E->dims().rank() ? E->dims()[E->dims().rank() - 1] : 1;
    int64_t Rows = Batch * (Elems / Last);
    FwdTask.Pre.push_back(kernelCall(
        KernelKind::SoftmaxFwd,
        bufArgs(KernelBufArg(E->valueBuffer()),
                KernelBufArg(Src->valueBuffer())),
        {Rows, Last}));
    BwdTask.Pre.push_back(kernelCall(
        KernelKind::SoftmaxBwd,
        bufArgs(KernelBufArg(Src->gradBuffer()),
                KernelBufArg(E->gradBuffer()),
                KernelBufArg(E->valueBuffer())),
        {Rows, Last}));
    if (Prog.ProbBuffer.empty())
      Prog.ProbBuffer = E->valueBuffer();
    break;
  }
  case NormOpKind::SoftmaxLoss: {
    Ensemble *Labels = E->labelSource();
    if (!Labels)
      reportFatalError("softmax loss '" + E->name() + "' has no label source");
    std::string LossBuf = E->name() + "_loss";
    declareBuffer(LossBuf, Shape{Batch}, BufferRole::Scratch);
    FwdTask.Pre.push_back(kernelCall(
        KernelKind::SoftmaxLossFwd,
        bufArgs(KernelBufArg(E->valueBuffer()),
                KernelBufArg(Src->valueBuffer()),
                KernelBufArg(Labels->valueBuffer()),
                KernelBufArg(LossBuf)),
        {Batch, Elems}));
    BwdTask.Pre.push_back(kernelCall(
        KernelKind::SoftmaxLossBwd,
        bufArgs(KernelBufArg(Src->gradBuffer()),
                KernelBufArg(E->valueBuffer()),
                KernelBufArg(Labels->valueBuffer())),
        {Batch, Elems}, {1.0 / static_cast<double>(Batch)}));
    Prog.LossBuffer = LossBuf;
    Prog.ProbBuffer = E->valueBuffer();
    if (Prog.LabelBuffer.empty())
      Prog.LabelBuffer = Labels->valueBuffer();
    break;
  }
  case NormOpKind::Dropout: {
    double Keep = E->normParams().empty() ? 0.5 : E->normParams()[0];
    // Expectation-scaled eval mode (inference opt-in): out = KeepProb * in
    // with no mask RNG and no mask buffer. The default keeps the sampled
    // mask so compileForward stays bitwise identical to the training-mode
    // forward pass; backward never runs under Inference.
    if (Opts.Inference && Opts.EvalDropout) {
      FwdTask.Pre.push_back(kernelCall(
          KernelKind::Copy,
          bufArgs(KernelBufArg(E->valueBuffer()),
                  KernelBufArg(Src->valueBuffer())),
          {Count}));
      FwdTask.Pre.push_back(kernelCall(KernelKind::Scale,
                                       bufArgs(KernelBufArg(E->valueBuffer())),
                                       {Count}, {Keep}));
      break;
    }
    std::string MaskBuf = E->name() + "_mask";
    declareBuffer(MaskBuf, E->dims().withPrefix(Batch), BufferRole::Scratch);
    FwdTask.Pre.push_back(kernelCall(KernelKind::DropoutMask,
                                       bufArgs(KernelBufArg(MaskBuf)),
                                       {Count}, {Keep}));
    FwdTask.Pre.push_back(kernelCall(
        KernelKind::MulInto,
        bufArgs(KernelBufArg(E->valueBuffer()),
                KernelBufArg(Src->valueBuffer()), KernelBufArg(MaskBuf)),
        {Count}));
    BwdTask.Pre.push_back(kernelCall(
        KernelKind::MulAddTo,
        bufArgs(KernelBufArg(Src->gradBuffer()),
                KernelBufArg(E->gradBuffer()), KernelBufArg(MaskBuf)),
        {Count}));
    break;
  }
  case NormOpKind::Lrn:
    reportFatalError("LRN normalization is not implemented yet");
  case NormOpKind::None:
    reportFatalError("normalization ensemble '" + E->name() +
                     "' has no operation configured");
  }
  Fwd.push_back(std::move(FwdTask));
  Bwd.push_back(std::move(BwdTask));
}

void Synthesizer::declareFields(Ensemble *E, const Shape &DefaultElem) {
  const NeuronType *Type = E->type();
  if (!Type)
    return;
  for (const FieldSpec &F : Type->fields()) {
    FieldStorage S = resolvedStorage(E, F, DefaultElem);
    // Cross-timestep weight tying (unrolled recurrent networks): alias the
    // owner ensemble's field storage. The owner carries the solver binding
    // and the backward zeroing; gradients of all sharers accumulate into
    // the same memory.
    if (!S.ShareWithEnsemble.empty()) {
      std::string Owner = S.ShareWithEnsemble + "_" + F.Name;
      if (!Prog.findBuffer(Owner))
        reportFatalError("field of '" + E->name() + "' shares with '" +
                         S.ShareWithEnsemble +
                         "', which has no such field buffer yet");
      declareBuffer(E->fieldBuffer(F.Name), fieldBufferShape(S),
                    F.IsParam ? BufferRole::Param : BufferRole::Scratch,
                    Owner);
      if (F.HasGrad)
        declareBuffer(E->fieldBuffer("grad_" + F.Name), fieldBufferShape(S),
                      F.IsParam ? BufferRole::ParamGrad
                                : BufferRole::Scratch,
                      S.ShareWithEnsemble + "_grad_" + F.Name);
      continue;
    }
    BufferInfo &B = declareBuffer(E->fieldBuffer(F.Name), fieldBufferShape(S),
                                  F.IsParam ? BufferRole::Param
                                            : BufferRole::Scratch);
    B.Init = S.Init;
    B.InitValue = S.InitValue;
    B.FanIn = S.FanIn;
    if (!F.HasGrad)
      continue;
    std::string GradName = E->fieldBuffer("grad_" + F.Name);
    BufferInfo &G =
        declareBuffer(GradName, fieldBufferShape(S),
                      F.IsParam ? BufferRole::ParamGrad : BufferRole::Scratch);
    G.ZeroOnBackward = true;
    if (F.IsParam)
      Prog.Params.push_back({E->fieldBuffer(F.Name), GradName, F.LrMult});
  }
}

std::vector<int32_t>
Synthesizer::buildGatherTable(Ensemble *E, const Connection &Conn,
                              const ConnectionInfo &Info) const {
  const Shape &SinkDims = E->dims();
  const Shape &SrcDims = Conn.Source->dims();
  const int SinkRank = SinkDims.rank();

  // Non-shared sink dims in order.
  std::vector<int> NonShared;
  for (int D = 0; D < SinkRank; ++D)
    if (!Info.SharedDims[D])
      NonShared.push_back(D);
  int64_t NsVolume = 1;
  for (int D : NonShared)
    NsVolume *= SinkDims[D];

  std::vector<int32_t> Table(
      static_cast<size_t>(Info.WindowVolume * NsVolume));

  // Iterate the non-shared index space.
  std::vector<int64_t> SinkIndex(SinkRank, 0);
  for (int64_t Ns = 0; Ns < NsVolume; ++Ns) {
    // Decode Ns into the non-shared dims (row-major over NonShared).
    int64_t Rest = Ns;
    for (int I = static_cast<int>(NonShared.size()) - 1; I >= 0; --I) {
      int D = NonShared[I];
      SinkIndex[D] = Rest % SinkDims[D];
      Rest /= SinkDims[D];
    }
    std::vector<Range> Box = Conn.Mapping(SinkIndex);
    if (static_cast<int64_t>(Box.size()) != SrcDims.rank())
      reportFatalError("mapping of '" + E->name() +
                       "' returns a box whose rank does not match the "
                       "source ensemble");
    // Enumerate the window (row-major over the box dims).
    std::vector<int64_t> SrcIndex(Box.size());
    int64_t W = 0;
    std::function<void(int)> Enumerate = [&](int Dim) {
      if (Dim == static_cast<int>(Box.size())) {
        bool InBounds = true;
        for (int S = 0; S < SrcDims.rank(); ++S)
          InBounds &= SrcIndex[S] >= 0 && SrcIndex[S] < SrcDims[S];
        int64_t Linear = 0;
        if (InBounds)
          for (int S = 0; S < SrcDims.rank(); ++S)
            Linear = Linear * SrcDims[S] + SrcIndex[S];
        Table[static_cast<size_t>(W * NsVolume + Ns)] =
            InBounds ? static_cast<int32_t>(Linear) : -1;
        ++W;
        return;
      }
      for (int64_t I = Box[Dim].Begin; I < Box[Dim].End; ++I) {
        SrcIndex[Dim] = I;
        Enumerate(Dim + 1);
      }
    };
    Enumerate(0);
  }
  return Table;
}

void Synthesizer::appendGradHooks(Ensemble *E, EnsembleTask &Task) {
  if (!Opts.GradSyncHooks || !E->type())
    return;
  for (const FieldSpec &F : E->type()->fields()) {
    if (!F.IsParam || !F.HasGrad)
      continue;
    std::string GradName = E->fieldBuffer("grad_" + F.Name);
    const BufferInfo *B = Prog.findBuffer(GradName);
    assert(B && "grad buffer must have been declared");
    Task.Post.push_back(kernelCall(KernelKind::GradSyncHook,
                                    bufArgs(KernelBufArg(GradName)),
                                    {B->Dims.numElements()}));
  }
}

void Synthesizer::handleNeuronEnsemble(Ensemble *E) {
  std::vector<ConnectionInfo> Infos;
  Infos.reserve(E->inputs().size());
  for (const Connection &C : E->inputs())
    Infos.push_back(analyzeConnection(C, E->dims()));
  if (Infos.empty())
    reportFatalError("ensemble '" + E->name() + "' has no inputs");

  bool InPlace = E->kind() == EnsembleKind::Activation &&
                 Infos.size() == 1 && Infos[0].OneToOne;
  declareValueGrad(E, InPlace);

  if (Infos.size() == 1) {
    const ConnectionInfo &I0 = Infos[0];
    if (Opts.PatternMatchGemm && tryWeightedFc(E, I0))
      return;
    if (Opts.PatternMatchGemm && tryWeightedTimeFc(E, I0))
      return;
    if (Opts.PatternMatchGemm && tryWeightedConv(E, I0))
      return;
    if (Opts.PatternMatchKernels && tryPool(E, I0))
      return;
    if (Opts.PatternMatchKernels && tryActivation(E, I0))
      return;
  }
  if (Opts.PatternMatchKernels && trySumMul(E, Infos))
    return;
  synthesizeInterpreted(E, Infos);
}

} // namespace

SynthesisResult compiler::synthesize(const Net &Net,
                                     const CompileOptions &Opts,
                                     Program &Prog) {
  Synthesizer S(Net, Opts, Prog);
  return S.run();
}

//===----------------------------------------------------------------------===//
// Matched paths
//===----------------------------------------------------------------------===//

namespace {

bool Synthesizer::tryWeightedFc(Ensemble *E, const ConnectionInfo &Info) {
  if (!Info.FullyShared || !Info.Linear)
    return false;
  NeuronContext Ctx = contextFor({Info});
  if (!matchesCanonical(E->type(), CanonWeighted, Ctx))
    return false;

  const Connection &Conn = E->inputs()[0];
  Ensemble *Src = Conn.Source;
  const int64_t K = Info.WindowVolume;
  const int64_t O = E->numNeurons();
  const int64_t SrcElems = Src->dims().numElements();

  // Weights must be per-neuron (identity projection).
  const FieldSpec *WF = E->type()->findField("weights");
  assert(WF && E->type()->findField("bias") &&
         "weighted neuron must declare weights and bias");
  FieldStorage WS = resolvedStorage(E, *WF, Shape{K});
  if (WS.StorageDims.numElements() != O || WS.ElemDims.numElements() != K)
    return false;

  declareFields(E, Shape{K});

  // Input buffer: alias the source values when the base box covers the
  // whole source (the shared-variable optimization of Figure 8); gather
  // otherwise.
  bool CoversSource = true;
  for (int D = 0; D < Src->dims().rank(); ++D)
    CoversSource &= Info.BaseBox[D].Begin == 0 &&
                    Info.BaseBox[D].End == Src->dims()[D];
  std::string InBuf = E->inputBuffer(0);
  std::string GinBuf = E->gradInputBuffer(0);
  EnsembleTask FwdTask, BwdTask;
  FwdTask.EnsembleName = BwdTask.EnsembleName = E->name();

  if (CoversSource) {
    declareBuffer(InBuf, Shape{Batch, K}, BufferRole::Input,
                  Src->valueBuffer());
    declareBuffer(GinBuf, Shape{Batch, K}, BufferRole::GradInput,
                  Src->gradBuffer());
  } else {
    declareBuffer(InBuf, Shape{Batch, K}, BufferRole::Input);
    BufferInfo &G = declareBuffer(GinBuf, Shape{Batch, K},
                                  BufferRole::GradInput);
    G.ZeroOnBackward = true;
    std::string TableName = E->name() + "_table0";
    declareTable(TableName, buildGatherTable(E, Conn, Info));
    // One gather per batch item (row 0..K in a 1 x K layout).
    RowOp Gather;
    Gather.RowExtent = 0;
    Gather.Make = [=](ExprPtr, int64_t) {
      return kernelCall(KernelKind::Gather2D,
                        bufArgs(KernelBufArg(InBuf, nOff(K)),
                                KernelBufArg(Src->valueBuffer(),
                                             nOff(SrcElems)),
                                KernelBufArg(TableName)),
                        {1, K, K}, {}, indexList(intConst(0)));
    };
    FwdTask.PerItem.push_back(std::move(Gather));
  }

  // Forward: one whole-batch GEMM plus bias (value = inputs * W^T + b).
  FwdTask.Pre.push_back(kernelCall(
      KernelKind::Sgemm,
      bufArgs(KernelBufArg(InBuf), KernelBufArg(E->fieldBuffer("weights")),
              KernelBufArg(E->valueBuffer())),
      {Batch, O, K, K, K, O, 0, 1, 0}));
  FwdTask.Pre.push_back(kernelCall(
      KernelKind::BiasAddPerRow,
      bufArgs(KernelBufArg(E->valueBuffer()),
              KernelBufArg(E->fieldBuffer("bias"))),
      {Batch, O}));

  // Backward: grad wrt inputs, weights, bias.
  BwdTask.Pre.push_back(kernelCall(
      KernelKind::Sgemm,
      bufArgs(KernelBufArg(E->gradBuffer()),
              KernelBufArg(E->fieldBuffer("weights")), KernelBufArg(GinBuf)),
      {Batch, K, O, O, K, K, 0, 0, 1}));
  BwdTask.Pre.push_back(kernelCall(
      KernelKind::Sgemm,
      bufArgs(KernelBufArg(E->gradBuffer()), KernelBufArg(InBuf),
              KernelBufArg(E->fieldBuffer("grad_weights"))),
      {O, K, Batch, O, K, K, 1, 0, 1}));
  BwdTask.Pre.push_back(kernelCall(
      KernelKind::ColSumAdd,
      bufArgs(KernelBufArg(E->fieldBuffer("grad_bias")),
              KernelBufArg(E->gradBuffer())),
      {Batch, O}));
  if (!CoversSource) {
    std::string TableName = E->name() + "_table0";
    RowOp Scatter;
    Scatter.RowExtent = 0;
    Scatter.Make = [=](ExprPtr, int64_t) {
      return kernelCall(KernelKind::ScatterAdd2D,
                        bufArgs(KernelBufArg(Src->gradBuffer(),
                                             nOff(SrcElems)),
                                KernelBufArg(GinBuf, nOff(K)),
                                KernelBufArg(TableName)),
                        {1, K, K}, {}, indexList(intConst(0)));
    };
    BwdTask.PerItem.push_back(std::move(Scatter));
  }
  appendGradHooks(E, BwdTask);

  Prog.Report.MatchedGemmEnsembles.push_back(E->name());
  Fwd.push_back(std::move(FwdTask));
  Bwd.push_back(std::move(BwdTask));
  return true;
}

bool Synthesizer::tryWeightedTimeFc(Ensemble *E, const ConnectionInfo &Info) {
  // Time-distributed FC: a (T, D) sink over a (T, F) source whose mapping
  // reads exactly source row t, with weights shared along time (storage
  // {D} x elem {F} projecting the output dim — the same per-channel
  // sharing mechanism as convolution filters, projecting out time instead
  // of space). The stacked windows are the source value buffer itself in
  // row-major order, so one sgemm over M = Batch*T rows lowers every
  // timestep at once, and the tied grad_weights accumulate all timesteps'
  // contributions inside the single backward GEMM.
  if (E->dims().rank() != 2 || !Info.Linear || Info.FullyShared)
    return false;
  if (Info.SharedDims[0] || !Info.SharedDims[1])
    return false;
  Ensemble *Src = E->inputs()[0].Source;
  const Shape &SrcDims = Src->dims();
  const int64_t T = E->dims()[0];
  const int64_t D = E->dims()[1];
  if (SrcDims.rank() != 2 || SrcDims[0] != T)
    return false;
  const int64_t F = SrcDims[1];
  // The window at sink (t, *) must be exactly row t of the source.
  if (Info.WindowSizes.size() != 2 || Info.WindowSizes[0] != 1 ||
      Info.WindowSizes[1] != F || Info.WindowVolume != F)
    return false;
  if (Info.Strides[0][0] != 1 || Info.Strides[0][1] != 0)
    return false;
  if (Info.BaseBox[0].Begin != 0 || Info.BaseBox[0].End != 1 ||
      Info.BaseBox[1].Begin != 0 || Info.BaseBox[1].End != F)
    return false;
  NeuronContext Ctx = contextFor({Info});
  if (!matchesCanonical(E->type(), CanonWeighted, Ctx))
    return false;

  const FieldSpec *WF = E->type()->findField("weights");
  const FieldSpec *BF = E->type()->findField("bias");
  assert(WF && BF && "weighted neuron must declare weights and bias");
  FieldStorage WS = resolvedStorage(E, *WF, Shape{F});
  FieldMapInfo WMap = analyzeFieldMap(WS, E->dims());
  // A singleton output dimension cannot be probed (selector -1) but is
  // trivially compatible, as in the convolution matcher.
  bool SelectsOut = WMap.DimSelectors.size() == 1 &&
                    (WMap.DimSelectors[0] == 1 ||
                     (D == 1 && WMap.DimSelectors[0] == -1));
  if (!WMap.IsProjection || WS.StorageDims.rank() != 1 ||
      WS.StorageDims[0] != D || !SelectsOut || WS.ElemDims.numElements() != F)
    return false;
  FieldStorage BS = resolvedStorage(E, *BF, Shape{1});
  FieldMapInfo BMap = analyzeFieldMap(BS, E->dims());
  bool BiasSelectsOut = BMap.DimSelectors.size() == 1 &&
                        (BMap.DimSelectors[0] == 1 ||
                         (D == 1 && BMap.DimSelectors[0] == -1));
  if (!BMap.IsProjection || BS.StorageDims.numElements() != D ||
      BS.ElemDims.numElements() != 1 || !BiasSelectsOut)
    return false;

  declareFields(E, Shape{F});

  // (Batch, T, F) row-major viewed as an (M x F) matrix is exactly the
  // per-sink window stack — alias instead of gathering (Figure 8's
  // shared-variable optimization extended over the time axis).
  const int64_t M = Batch * T;
  std::string InBuf = E->inputBuffer(0);
  std::string GinBuf = E->gradInputBuffer(0);
  declareBuffer(InBuf, Shape{Batch, T, F}, BufferRole::Input,
                Src->valueBuffer());
  declareBuffer(GinBuf, Shape{Batch, T, F}, BufferRole::GradInput,
                Src->gradBuffer());

  EnsembleTask FwdTask, BwdTask;
  FwdTask.EnsembleName = BwdTask.EnsembleName = E->name();

  // Forward: value = inputs * W^T + b over all Batch*T rows.
  FwdTask.Pre.push_back(kernelCall(
      KernelKind::Sgemm,
      bufArgs(KernelBufArg(InBuf), KernelBufArg(E->fieldBuffer("weights")),
              KernelBufArg(E->valueBuffer())),
      {M, D, F, F, F, D, 0, 1, 0}));
  FwdTask.Pre.push_back(kernelCall(
      KernelKind::BiasAddPerRow,
      bufArgs(KernelBufArg(E->valueBuffer()),
              KernelBufArg(E->fieldBuffer("bias"))),
      {M, D}));

  // Backward: grad wrt inputs (accumulated straight into the aliased
  // source gradient), the time-tied weights, and the bias.
  BwdTask.Pre.push_back(kernelCall(
      KernelKind::Sgemm,
      bufArgs(KernelBufArg(E->gradBuffer()),
              KernelBufArg(E->fieldBuffer("weights")), KernelBufArg(GinBuf)),
      {M, F, D, D, F, F, 0, 0, 1}));
  BwdTask.Pre.push_back(kernelCall(
      KernelKind::Sgemm,
      bufArgs(KernelBufArg(E->gradBuffer()), KernelBufArg(InBuf),
              KernelBufArg(E->fieldBuffer("grad_weights"))),
      {D, F, M, D, F, F, 1, 0, 1}));
  BwdTask.Pre.push_back(kernelCall(
      KernelKind::ColSumAdd,
      bufArgs(KernelBufArg(E->fieldBuffer("grad_bias")),
              KernelBufArg(E->gradBuffer())),
      {M, D}));
  appendGradHooks(E, BwdTask);

  Prog.Report.MatchedGemmEnsembles.push_back(E->name());
  Fwd.push_back(std::move(FwdTask));
  Bwd.push_back(std::move(BwdTask));
  return true;
}

bool Synthesizer::tryWeightedConv(Ensemble *E, const ConnectionInfo &Info) {
  // Shape requirements: (c_out, y, x) neurons; mapping shared along c_out
  // only; linear windows.
  if (E->dims().rank() != 3 || !Info.Linear || Info.FullyShared)
    return false;
  if (!(Info.SharedDims[0] && !Info.SharedDims[1] && !Info.SharedDims[2]))
    return false;
  NeuronContext Ctx = contextFor({Info});
  if (!matchesCanonical(E->type(), CanonWeighted, Ctx))
    return false;

  const Connection &Conn = E->inputs()[0];
  Ensemble *Src = Conn.Source;
  const int64_t C = E->dims()[0];
  const int64_t Y = E->dims()[1];
  const int64_t X = E->dims()[2];
  const int64_t YX = Y * X;
  const int64_t K = Info.WindowVolume;
  const int64_t SrcElems = Src->dims().numElements();

  // Weights must be shared per output channel: storage {C} x elem {K}.
  const FieldSpec *WF = E->type()->findField("weights");
  assert(WF && "weighted neuron must declare weights");
  FieldStorage WS = resolvedStorage(E, *WF, Shape{K});
  FieldMapInfo WMap = analyzeFieldMap(WS, E->dims());
  // A singleton channel dimension cannot be probed; its selector is
  // indeterminate (-1) but trivially compatible.
  bool SelectsChannel =
      WMap.DimSelectors.size() == 1 &&
      (WMap.DimSelectors[0] == 0 || (C == 1 && WMap.DimSelectors[0] == -1));
  if (!WMap.IsProjection || WS.StorageDims.rank() != 1 ||
      WS.StorageDims[0] != C || !SelectsChannel ||
      WS.ElemDims.numElements() != K)
    return false;

  declareFields(E, Shape{K});

  // Uniform geometry (square kernel, equal strides and pads, full input
  // channel range) lowers the data-copy task to the structured im2col loop
  // nest of the paper's synthesis instead of a general gather table.
  const Shape &SrcDims = Src->dims();
  int64_t GeoK = 0, GeoS = 0, GeoP = 0;
  bool UniformGeometry = false;
  if (SrcDims.rank() == 3 && Info.WindowSizes.size() == 3 &&
      Info.WindowSizes[0] == SrcDims[0] && Info.BaseBox[0].Begin == 0) {
    GeoK = Info.WindowSizes[1];
    GeoS = Info.Strides[1][1];
    GeoP = -Info.BaseBox[1].Begin;
    UniformGeometry = Info.WindowSizes[2] == GeoK &&
                      Info.Strides[2][2] == GeoS &&
                      -Info.BaseBox[2].Begin == GeoP && GeoS > 0 &&
                      GeoP >= 0 && Info.Strides[1][2] == 0 &&
                      Info.Strides[2][1] == 0;
  }

  std::string InBuf = E->inputBuffer(0);
  std::string GinBuf = E->gradInputBuffer(0);
  std::string TableName = E->name() + "_table0";
  std::string WBuf = E->fieldBuffer("weights");
  std::string GwBuf = E->fieldBuffer("grad_weights");
  std::string BBuf = E->fieldBuffer("bias");
  std::string GbBuf = E->fieldBuffer("grad_bias");
  std::string VBuf = E->valueBuffer();
  std::string GBuf = E->gradBuffer();
  std::string SrcV = Src->valueBuffer();
  std::string SrcG = Src->gradBuffer();

  declareBuffer(InBuf, Shape{Batch, K, Y, X}, BufferRole::Input);
  declareBuffer(GinBuf, Shape{Batch, K, Y, X}, BufferRole::GradInput);
  if (!UniformGeometry)
    declareTable(TableName, buildGatherTable(E, Conn, Info));
  const int64_t SrcC = SrcDims[0];
  const int64_t SrcH = SrcDims.rank() == 3 ? SrcDims[1] : 0;
  const int64_t SrcW = SrcDims.rank() == 3 ? SrcDims[2] : 0;

  const int64_t KYX = K * YX;
  const int64_t CYX = C * YX;

  EnsembleTask FwdTask, BwdTask;
  FwdTask.EnsembleName = BwdTask.EnsembleName = E->name();

  // Forward per item, all row-splittable along y: gather, GEMM, bias.
  RowOp Gather;
  Gather.RowExtent = Y;
  Gather.Tileable = true;
  if (UniformGeometry) {
    Gather.Make = [=](ExprPtr Rb, int64_t Rc) {
      return kernelCall(KernelKind::Im2ColRows,
                        bufArgs(KernelBufArg(InBuf, nOff(KYX)),
                                KernelBufArg(SrcV, nOff(SrcElems))),
                        {SrcC, SrcH, SrcW, GeoK, GeoS, GeoP, Rc}, {},
                        indexList(std::move(Rb)));
    };
  } else {
    Gather.Make = [=](ExprPtr Rb, int64_t Rc) {
      return kernelCall(
          KernelKind::Gather2D,
          bufArgs(KernelBufArg(InBuf, nOff(KYX)),
                  KernelBufArg(SrcV, nOff(SrcElems)),
                  KernelBufArg(TableName)),
          {K, YX, Rc * X}, {}, indexList(mul(std::move(Rb), intConst(X))));
    };
  }
  RowOp Gemm;
  Gemm.RowExtent = Y;
  Gemm.Tileable = true;
  Gemm.Make = [=](ExprPtr Rb, int64_t Rc) {
    // Clone eagerly: function-argument evaluation order is unspecified.
    ExprPtr ColOff = mul(Rb->clone(), intConst(X));
    ExprPtr InOff = add(nOff(KYX), ColOff->clone());
    ExprPtr OutOff = add(nOff(CYX), std::move(ColOff));
    return kernelCall(
        KernelKind::Sgemm,
        bufArgs(KernelBufArg(WBuf), KernelBufArg(InBuf, std::move(InOff)),
                KernelBufArg(VBuf, std::move(OutOff))),
        {C, Rc * X, K, K, YX, YX, 0, 0, 0});
  };
  RowOp Bias;
  Bias.RowExtent = Y;
  Bias.Tileable = true;
  Bias.Make = [=](ExprPtr Rb, int64_t Rc) {
    return kernelCall(KernelKind::BiasAddCols,
                      bufArgs(KernelBufArg(VBuf, nOff(CYX)),
                              KernelBufArg(BBuf)),
                      {C, YX, Rc * X}, {},
                      indexList(mul(std::move(Rb), intConst(X))));
  };
  FwdTask.PerItem.push_back(std::move(Gather));
  FwdTask.PerItem.push_back(std::move(Gemm));
  FwdTask.PerItem.push_back(std::move(Bias));

  // Fusion metadata: distance along y is the window's y-stride; fusable
  // only for non-overlapping, unpadded windows (§5.4.2).
  int SrcYDim = -1;
  for (int S = 0; S < static_cast<int>(Info.WindowSizes.size()); ++S)
    if (Info.Strides[1][S] != 0)
      SrcYDim = S;
  bool ScatterSafe = false;
  if (SrcYDim >= 0) {
    int64_t StrideY = Info.Strides[1][SrcYDim];
    int64_t WindowY = Info.WindowSizes[SrcYDim];
    ScatterSafe = StrideY >= WindowY;
    if (StrideY > 0 && WindowY == StrideY &&
        Info.BaseBox[SrcYDim].Begin == 0) {
      FwdTask.FuseDist = StrideY;
      FwdTask.ProducerName = Src->name();
      BwdTask.FuseDist = StrideY;
      BwdTask.ProducerName = Src->name();
    }
  }

  // Backward per item: input-gradient GEMM (tileable), scatter (tileable
  // when windows do not overlap along y), then whole-item weight/bias
  // gradient reductions.
  RowOp GinGemm;
  GinGemm.RowExtent = Y;
  GinGemm.Tileable = true;
  GinGemm.Make = [=](ExprPtr Rb, int64_t Rc) {
    ExprPtr ColOff = mul(Rb->clone(), intConst(X));
    ExprPtr GOff = add(nOff(CYX), ColOff->clone());
    ExprPtr GinOff = add(nOff(KYX), std::move(ColOff));
    return kernelCall(
        KernelKind::Sgemm,
        bufArgs(KernelBufArg(WBuf), KernelBufArg(GBuf, std::move(GOff)),
                KernelBufArg(GinBuf, std::move(GinOff))),
        {K, Rc * X, C, K, YX, YX, 1, 0, 0});
  };
  RowOp Scatter;
  Scatter.RowExtent = Y;
  Scatter.Tileable = ScatterSafe;
  if (UniformGeometry) {
    Scatter.Make = [=](ExprPtr Rb, int64_t Rc) {
      return kernelCall(KernelKind::Col2ImRows,
                        bufArgs(KernelBufArg(SrcG, nOff(SrcElems)),
                                KernelBufArg(GinBuf, nOff(KYX))),
                        {SrcC, SrcH, SrcW, GeoK, GeoS, GeoP, Rc}, {},
                        indexList(std::move(Rb)));
    };
  } else {
    Scatter.Make = [=](ExprPtr Rb, int64_t Rc) {
      return kernelCall(
          KernelKind::ScatterAdd2D,
          bufArgs(KernelBufArg(SrcG, nOff(SrcElems)),
                  KernelBufArg(GinBuf, nOff(KYX)),
                  KernelBufArg(TableName)),
          {K, YX, Rc * X}, {}, indexList(mul(std::move(Rb), intConst(X))));
    };
  }
  RowOp GwGemm;
  GwGemm.RowExtent = 0;
  GwGemm.Make = [=](ExprPtr, int64_t) {
    return kernelCall(KernelKind::Sgemm,
                      bufArgs(KernelBufArg(GBuf, nOff(CYX)),
                              KernelBufArg(InBuf, nOff(KYX)),
                              KernelBufArg(GwBuf)),
                      {C, K, YX, YX, YX, K, 0, 1, 1});
  };
  RowOp GBias;
  GBias.RowExtent = 0;
  GBias.Make = [=](ExprPtr, int64_t) {
    return kernelCall(KernelKind::RowSumAdd,
                      bufArgs(KernelBufArg(GbBuf),
                              KernelBufArg(GBuf, nOff(CYX))),
                      {C, YX});
  };
  BwdTask.PerItem.push_back(std::move(GinGemm));
  BwdTask.PerItem.push_back(std::move(Scatter));
  BwdTask.PerItem.push_back(std::move(GwGemm));
  BwdTask.PerItem.push_back(std::move(GBias));
  appendGradHooks(E, BwdTask);

  Prog.Report.MatchedGemmEnsembles.push_back(E->name());
  Fwd.push_back(std::move(FwdTask));
  Bwd.push_back(std::move(BwdTask));
  return true;
}

bool Synthesizer::tryPool(Ensemble *E, const ConnectionInfo &Info) {
  if (E->dims().rank() != 3 || !Info.Linear || Info.FullyShared)
    return false;
  if (Info.SharedDims[0] || Info.SharedDims[1] || Info.SharedDims[2])
    return false;
  const Connection &Conn = E->inputs()[0];
  Ensemble *Src = Conn.Source;
  if (Src->dims().rank() != 3)
    return false;

  // Channel dim must be one-to-one; spatial dims square windows with equal
  // stride/pad.
  auto Rel = [&](int SinkD, int SrcD) {
    return std::pair<int64_t, int64_t>(Info.Strides[SinkD][SrcD],
                                       Info.WindowSizes[SrcD]);
  };
  if (Rel(0, 0) != std::pair<int64_t, int64_t>(1, 1))
    return false;
  if (Info.Strides[0][1] != 0 || Info.Strides[0][2] != 0 ||
      Info.Strides[1][0] != 0 || Info.Strides[2][0] != 0 ||
      Info.Strides[1][2] != 0 || Info.Strides[2][1] != 0)
    return false;
  int64_t S = Info.Strides[1][1], W = Info.WindowSizes[1];
  if (S <= 0 || Info.Strides[2][2] != S || Info.WindowSizes[2] != W)
    return false;
  int64_t Pad = -Info.BaseBox[1].Begin;
  if (Pad < 0 || -Info.BaseBox[2].Begin != Pad || Info.BaseBox[0].Begin != 0)
    return false;

  NeuronContext Ctx = contextFor({Info});
  bool IsMax = matchesCanonical(E->type(), CanonMax, Ctx);
  bool IsAvg = !IsMax && matchesCanonical(E->type(), CanonAvg, Ctx);
  if (!IsMax && !IsAvg)
    return false;

  const int64_t C = E->dims()[0], Y = E->dims()[1], X = E->dims()[2];
  const int64_t CYX = C * Y * X;
  const int64_t InH = Src->dims()[1], InW = Src->dims()[2];
  const int64_t SrcElems = Src->dims().numElements();
  std::string VBuf = E->valueBuffer(), GBuf = E->gradBuffer();
  std::string SrcV = Src->valueBuffer(), SrcG = Src->gradBuffer();
  std::string MaskBuf = E->name() + "_mask";
  if (IsMax)
    declareIntBuffer(MaskBuf, Batch * CYX);

  EnsembleTask FwdTask, BwdTask;
  FwdTask.EnsembleName = BwdTask.EnsembleName = E->name();

  RowOp FwdOp;
  FwdOp.RowExtent = Y;
  FwdOp.Tileable = true;
  FwdOp.Make = [=](ExprPtr Rb, int64_t Rc) {
    std::vector<KernelBufArg> Bufs;
    Bufs.push_back(KernelBufArg(VBuf, nOff(CYX)));
    Bufs.push_back(KernelBufArg(SrcV, nOff(SrcElems)));
    if (IsMax)
      Bufs.push_back(KernelBufArg(MaskBuf, nOff(CYX)));
    return kernelCall(IsMax ? KernelKind::MaxPoolFwdRows
                            : KernelKind::AvgPoolFwdRows,
                      std::move(Bufs), {C, InH, InW, W, S, Pad, Rc}, {},
                      indexList(std::move(Rb)));
  };
  FwdTask.PerItem.push_back(std::move(FwdOp));

  bool NonOverlapping = W <= S;
  RowOp BwdOp;
  BwdOp.RowExtent = Y;
  BwdOp.Tileable = NonOverlapping;
  BwdOp.Make = [=](ExprPtr Rb, int64_t Rc) {
    std::vector<KernelBufArg> Bufs;
    Bufs.push_back(KernelBufArg(SrcG, nOff(SrcElems)));
    Bufs.push_back(KernelBufArg(GBuf, nOff(CYX)));
    if (IsMax)
      Bufs.push_back(KernelBufArg(MaskBuf, nOff(CYX)));
    return kernelCall(IsMax ? KernelKind::MaxPoolBwdRows
                            : KernelKind::AvgPoolBwdRows,
                      std::move(Bufs), {C, InH, InW, W, S, Pad, Rc}, {},
                      indexList(std::move(Rb)));
  };
  BwdTask.PerItem.push_back(std::move(BwdOp));

  if (W == S && Pad == 0) {
    FwdTask.FuseDist = S;
    FwdTask.ProducerName = Src->name();
    BwdTask.FuseDist = S;
    BwdTask.ProducerName = Src->name();
  }

  Prog.Report.MatchedPoolEnsembles.push_back(E->name());
  Fwd.push_back(std::move(FwdTask));
  Bwd.push_back(std::move(BwdTask));
  return true;
}

bool Synthesizer::tryActivation(Ensemble *E, const ConnectionInfo &Info) {
  if (!Info.OneToOne)
    return false;
  NeuronContext Ctx = contextFor({Info});
  ActOpKind Op;
  if (matchesCanonical(E->type(), CanonRelu, Ctx))
    Op = ActOpKind::Relu;
  else if (matchesCanonical(E->type(), CanonSigmoid, Ctx))
    Op = ActOpKind::Sigmoid;
  else if (matchesCanonical(E->type(), CanonTanh, Ctx))
    Op = ActOpKind::Tanh;
  else
    return false;

  Ensemble *Src = E->inputs()[0].Source;
  const int64_t Elems = E->dims().numElements();
  std::string VBuf = E->valueBuffer(), GBuf = E->gradBuffer();
  std::string SrcV = Src->valueBuffer(), SrcG = Src->gradBuffer();

  EnsembleTask FwdTask, BwdTask;
  FwdTask.EnsembleName = BwdTask.EnsembleName = E->name();

  if (E->dims().rank() >= 3) {
    const int64_t Rows = E->dims()[0];
    const int64_t Y = E->dims()[1];
    const int64_t Cols = Elems / Rows;
    const int64_t X = Cols / Y;
    RowOp FwdOp;
    FwdOp.RowExtent = Y;
    FwdOp.Tileable = true;
    FwdOp.Make = [=](ExprPtr Rb, int64_t Rc) {
      return kernelCall(
          KernelKind::ActFwdCols,
          bufArgs(KernelBufArg(VBuf, nOff(Elems)),
                  KernelBufArg(SrcV, nOff(Elems))),
          {static_cast<int64_t>(Op), Rows, Cols, Rc * X}, {},
          indexList(mul(std::move(Rb), intConst(X))));
    };
    FwdTask.PerItem.push_back(std::move(FwdOp));
    RowOp BwdOp;
    BwdOp.RowExtent = Y;
    BwdOp.Tileable = true;
    BwdOp.Make = [=](ExprPtr Rb, int64_t Rc) {
      return kernelCall(
          KernelKind::ActBwdCols,
          bufArgs(KernelBufArg(SrcG, nOff(Elems)),
                  KernelBufArg(GBuf, nOff(Elems)),
                  KernelBufArg(VBuf, nOff(Elems))),
          {static_cast<int64_t>(Op), Rows, Cols, Rc * X, /*InPlace=*/0},
          {}, indexList(mul(std::move(Rb), intConst(X))));
    };
    BwdTask.PerItem.push_back(std::move(BwdOp));
    FwdTask.FuseDist = 1;
    FwdTask.ProducerName = Src->name();
    BwdTask.FuseDist = 1;
    BwdTask.ProducerName = Src->name();
  } else {
    // Low-rank ensembles (activations after FC layers): one whole-batch op.
    FwdTask.Pre.push_back(kernelCall(
        KernelKind::ActFwdCols,
        bufArgs(KernelBufArg(VBuf), KernelBufArg(SrcV)),
        {static_cast<int64_t>(Op), Batch, Elems, Elems}, {},
        indexList(intConst(0))));
    BwdTask.Pre.push_back(kernelCall(
        KernelKind::ActBwdCols,
        bufArgs(KernelBufArg(SrcG), KernelBufArg(GBuf), KernelBufArg(VBuf)),
        {static_cast<int64_t>(Op), Batch, Elems, Elems, /*InPlace=*/0},
        {}, indexList(intConst(0))));
  }

  Prog.Report.MatchedActivationEnsembles.push_back(E->name());
  Fwd.push_back(std::move(FwdTask));
  Bwd.push_back(std::move(BwdTask));
  return true;
}

bool Synthesizer::trySumMul(Ensemble *E,
                            const std::vector<ConnectionInfo> &Infos) {
  for (const ConnectionInfo &I : Infos)
    if (!I.OneToOne)
      return false;
  NeuronContext Ctx = contextFor(Infos);
  bool IsSum = matchesCanonical(E->type(), CanonSum, Ctx);
  bool IsMul = !IsSum && Infos.size() == 2 &&
               matchesCanonical(E->type(), CanonMul, Ctx);
  if (!IsSum && !IsMul)
    return false;

  const int64_t Count = Batch * E->dims().numElements();
  EnsembleTask FwdTask, BwdTask;
  FwdTask.EnsembleName = BwdTask.EnsembleName = E->name();

  if (IsSum) {
    for (size_t K = 0; K < E->inputs().size(); ++K) {
      Ensemble *Src = E->inputs()[K].Source;
      FwdTask.Pre.push_back(kernelCall(
          K == 0 ? KernelKind::Copy : KernelKind::AddTo,
          bufArgs(KernelBufArg(E->valueBuffer()),
                  KernelBufArg(Src->valueBuffer())),
          {Count}));
      BwdTask.Pre.push_back(kernelCall(
          KernelKind::AddTo,
          bufArgs(KernelBufArg(Src->gradBuffer()),
                  KernelBufArg(E->gradBuffer())),
          {Count}));
    }
  } else {
    Ensemble *A = E->inputs()[0].Source;
    Ensemble *B = E->inputs()[1].Source;
    FwdTask.Pre.push_back(kernelCall(
        KernelKind::MulInto,
        bufArgs(KernelBufArg(E->valueBuffer()),
                KernelBufArg(A->valueBuffer()),
                KernelBufArg(B->valueBuffer())),
        {Count}));
    BwdTask.Pre.push_back(kernelCall(
        KernelKind::MulAddTo,
        bufArgs(KernelBufArg(A->gradBuffer()),
                KernelBufArg(E->gradBuffer()),
                KernelBufArg(B->valueBuffer())),
        {Count}));
    BwdTask.Pre.push_back(kernelCall(
        KernelKind::MulAddTo,
        bufArgs(KernelBufArg(B->gradBuffer()),
                KernelBufArg(E->gradBuffer()),
                KernelBufArg(A->valueBuffer())),
        {Count}));
  }

  Prog.Report.MatchedActivationEnsembles.push_back(E->name());
  Fwd.push_back(std::move(FwdTask));
  Bwd.push_back(std::move(BwdTask));
  return true;
}

//===----------------------------------------------------------------------===//
// Interpreted fallback: general SoA loop-nest synthesis
//===----------------------------------------------------------------------===//

void Synthesizer::synthesizeInterpreted(
    Ensemble *E, const std::vector<ConnectionInfo> &Infos) {
  const NeuronType *Type = E->type();
  if (!Type)
    reportFatalError("ensemble '" + E->name() + "' cannot be synthesized");
  const Shape &D = E->dims();
  const int Rank = D.rank();
  NeuronContext Ctx = contextFor(Infos);

  // Per-connection layout info.
  struct ConnLayout {
    bool Aliased = false;       // input buffer aliases the source values
    std::vector<int> NonShared; // non-shared sink dims in order
    int64_t NsVolume = 1;
    int64_t K = 0; // window volume
  };
  std::vector<ConnLayout> Layouts(Infos.size());

  for (size_t CI = 0; CI < Infos.size(); ++CI) {
    const ConnectionInfo &I = Infos[CI];
    const Connection &Conn = E->inputs()[CI];
    Ensemble *Src = Conn.Source;
    ConnLayout &L = Layouts[CI];
    L.K = I.WindowVolume;
    for (int DD = 0; DD < Rank; ++DD)
      if (!I.SharedDims[DD]) {
        L.NonShared.push_back(DD);
        L.NsVolume *= D[DD];
      }

    // Buffer shape: [batch, K, nonshared dims...].
    std::vector<int64_t> BufDims = {Batch, L.K};
    for (int DD : L.NonShared)
      BufDims.push_back(D[DD]);
    Shape BufShape{BufDims};

    bool CoversSource = I.FullyShared;
    if (CoversSource)
      for (int SD = 0; SD < Src->dims().rank(); ++SD)
        CoversSource &= I.BaseBox[SD].Begin == 0 &&
                        I.BaseBox[SD].End == Src->dims()[SD];
    // Value aliasing is safe (one-to-one reinterprets [batch, 1, dims...]
    // onto [batch, dims...]; fully-shared views [batch, K] onto the whole
    // source). Gradient-input buffers are NEVER aliased on this path: the
    // neuron backward accumulates with +=, which would double-count when
    // the buffer aliases the very gradient being propagated (in-place
    // activations). They get private storage and an explicit scatter.
    L.Aliased = I.OneToOne || CoversSource;

    if (L.Aliased)
      declareBuffer(E->inputBuffer(CI), BufShape, BufferRole::Input,
                    Src->valueBuffer());
    else
      declareBuffer(E->inputBuffer(CI), BufShape, BufferRole::Input);
    BufferInfo &G = declareBuffer(E->gradInputBuffer(CI), BufShape,
                                  BufferRole::GradInput);
    G.ZeroOnBackward = true;
    declareTable(E->name() + "_table" + std::to_string(CI),
                 buildGatherTable(E, Conn, I));
  }

  declareFields(E, Shape{Infos.empty() ? 0 : Infos[0].WindowVolume});

  // Resolve field storages (including auto grad fields) for SoA rewriting.
  std::unordered_map<std::string, std::pair<FieldStorage, FieldMapInfo>>
      FieldLayouts;
  for (const FieldSpec &F : Type->fields()) {
    FieldStorage S = resolvedStorage(
        E, F, Shape{Infos.empty() ? 0 : Infos[0].WindowVolume});
    FieldMapInfo M = analyzeFieldMap(S, D);
    if (!M.IsProjection)
      reportFatalError("field '" + F.Name + "' of ensemble '" + E->name() +
                       "' uses a non-projection sharing map, which the "
                       "synthesizer does not support");
    FieldLayouts[F.Name] = {S, M};
    if (F.HasGrad)
      FieldLayouts["grad_" + F.Name] = {S, M};
  }

  // The SoA rewrite: map surface buffers onto ensemble buffers with
  // explicit neuron indices (paper §5.3, "Compute").
  auto NeuronVar = [](int DD) { return var("d" + std::to_string(DD)); };
  auto Rewrite = [&](StmtPtr Body) {
    rewriteExprsInStmt(Body.get(), [&](const Expr *Node) -> ExprPtr {
      const auto *L = dyn_cast<LoadExpr>(Node);
      if (!L)
        return nullptr;
      const std::string &Buf = L->buffer();
      std::string FieldName;
      int K = 0;
      std::vector<ExprPtr> Indices;
      if (Buf == core::dsl::valueBuf() || Buf == core::dsl::gradBuf()) {
        Indices.push_back(var("n"));
        for (int DD = 0; DD < Rank; ++DD)
          Indices.push_back(NeuronVar(DD));
        return load(Buf == core::dsl::valueBuf() ? E->valueBuffer()
                                                 : E->gradBuffer(),
                    std::move(Indices));
      }
      if (core::dsl::isInputBuf(Buf, K) ||
          core::dsl::isGradInputBuf(Buf, K)) {
        bool IsGrad = core::dsl::isGradInputBuf(Buf, K);
        const ConnLayout &CL = Layouts[K];
        Indices.push_back(var("n"));
        Indices.push_back(L->indices()[0]->clone());
        for (int DD : CL.NonShared)
          Indices.push_back(NeuronVar(DD));
        return load(IsGrad ? E->gradInputBuffer(K) : E->inputBuffer(K),
                    std::move(Indices));
      }
      if (core::dsl::isFieldBuf(Buf, FieldName)) {
        auto It = FieldLayouts.find(FieldName);
        if (It == FieldLayouts.end())
          reportFatalError("neuron function of '" + E->name() +
                           "' references unknown field '" + FieldName + "'");
        const FieldMapInfo &M = It->second.second;
        for (size_t J = 0; J < M.DimSelectors.size(); ++J)
          Indices.push_back(M.DimSelectors[J] >= 0
                                ? NeuronVar(M.DimSelectors[J])
                                : intConst(0));
        for (const ExprPtr &I : L->indices())
          Indices.push_back(I->clone());
        return load(E->fieldBuffer(FieldName), std::move(Indices));
      }
      return nullptr;
    });
    // Stores to surface buffers: same mapping on StoreStmt targets.
    walkStmts(Body.get(), [&](Stmt *S) {
      auto *St = dyn_cast<StoreStmt>(S);
      if (!St)
        return;
      const std::string &Buf = St->buffer();
      std::string FieldName;
      int K = 0;
      std::vector<ExprPtr> Indices;
      if (Buf == core::dsl::valueBuf() || Buf == core::dsl::gradBuf()) {
        Indices.push_back(var("n"));
        for (int DD = 0; DD < Rank; ++DD)
          Indices.push_back(NeuronVar(DD));
        St->setBuffer(Buf == core::dsl::valueBuf() ? E->valueBuffer()
                                                   : E->gradBuffer());
        St->indices() = std::move(Indices);
        return;
      }
      if (core::dsl::isGradInputBuf(Buf, K) ||
          core::dsl::isInputBuf(Buf, K)) {
        bool IsGrad = core::dsl::isGradInputBuf(Buf, K);
        const ConnLayout &CL = Layouts[K];
        Indices.push_back(var("n"));
        Indices.push_back(St->indices()[0]->clone());
        for (int DD : CL.NonShared)
          Indices.push_back(NeuronVar(DD));
        St->setBuffer(IsGrad ? E->gradInputBuffer(K) : E->inputBuffer(K));
        St->indices() = std::move(Indices);
        return;
      }
      if (core::dsl::isFieldBuf(Buf, FieldName)) {
        auto It = FieldLayouts.find(FieldName);
        if (It == FieldLayouts.end())
          reportFatalError("neuron function of '" + E->name() +
                           "' stores to unknown field '" + FieldName + "'");
        const FieldMapInfo &M = It->second.second;
        for (size_t J = 0; J < M.DimSelectors.size(); ++J)
          Indices.push_back(M.DimSelectors[J] >= 0
                                ? NeuronVar(M.DimSelectors[J])
                                : intConst(0));
        for (ExprPtr &I : St->indices())
          Indices.push_back(std::move(I));
        St->setBuffer(E->fieldBuffer(FieldName));
        St->indices() = std::move(Indices);
      }
    });
    return Body;
  };

  auto WrapLoops = [&](StmtPtr Body) {
    for (int DD = Rank - 1; DD >= 0; --DD)
      Body = forLoop("d" + std::to_string(DD), D[DD], std::move(Body));
    return Body;
  };

  EnsembleTask FwdTask, BwdTask;
  FwdTask.EnsembleName = BwdTask.EnsembleName = E->name();

  // Gathers, then the compute nest.
  for (size_t CI = 0; CI < Infos.size(); ++CI) {
    if (Layouts[CI].Aliased)
      continue;
    const ConnLayout &CL = Layouts[CI];
    Ensemble *Src = E->inputs()[CI].Source;
    int64_t SrcElems = Src->dims().numElements();
    std::string Table = E->name() + "_table" + std::to_string(CI);
    std::string InBuf = E->inputBuffer(CI);
    int64_t PerItem = CL.K * CL.NsVolume;
    RowOp Gather;
    Gather.RowExtent = 0;
    Gather.Make = [=, SrcName = Src->valueBuffer()](ExprPtr, int64_t) {
      return kernelCall(KernelKind::Gather2D,
                        bufArgs(KernelBufArg(InBuf, nOff(PerItem)),
                                KernelBufArg(SrcName, nOff(SrcElems)),
                                KernelBufArg(Table)),
                        {CL.K, CL.NsVolume, CL.NsVolume}, {},
                        indexList(intConst(0)));
    };
    FwdTask.PerItem.push_back(std::move(Gather));
  }

  StmtPtr FwdBody = Rewrite(Type->makeForward(Ctx));
  StmtPtr FwdNest = WrapLoops(std::move(FwdBody));
  RowOp FwdCompute;
  FwdCompute.RowExtent = 0;
  // The nest is re-cloned per instantiation because RowOp::Make may be
  // called more than once (untiled and tiled materializations).
  FwdCompute.Make = [Nest = std::shared_ptr<Stmt>(std::move(FwdNest))](
                        ExprPtr, int64_t) { return Nest->clone(); };
  FwdTask.PerItem.push_back(std::move(FwdCompute));

  if (Type->forwardAccumulates(Ctx)) {
    BufferInfo *V =
        const_cast<BufferInfo *>(Prog.findBuffer(E->valueBuffer()));
    if (!V->AliasOf.empty())
      reportFatalError("ensemble '" + E->name() +
                       "' accumulates into its value and therefore cannot "
                       "run in place; use a Standard ensemble");
    V->ZeroOnForward = true;
  }

  if (Type->hasBackward()) {
    StmtPtr BwdBody = Rewrite(Type->makeBackward(Ctx));
    StmtPtr BwdNest = WrapLoops(std::move(BwdBody));
    RowOp BwdCompute;
    BwdCompute.RowExtent = 0;
    BwdCompute.Make = [Nest = std::shared_ptr<Stmt>(std::move(BwdNest))](
                          ExprPtr, int64_t) { return Nest->clone(); };
    BwdTask.PerItem.push_back(std::move(BwdCompute));

    // Scatter input gradients back to the sources (every connection:
    // grad-input buffers are always private on the interpreted path).
    for (size_t CI = 0; CI < Infos.size(); ++CI) {
      const ConnLayout &CL = Layouts[CI];
      Ensemble *Src = E->inputs()[CI].Source;
      int64_t SrcElems = Src->dims().numElements();
      std::string Table = E->name() + "_table" + std::to_string(CI);
      std::string GinBuf = E->gradInputBuffer(CI);
      int64_t PerItem = CL.K * CL.NsVolume;
      RowOp Scatter;
      Scatter.RowExtent = 0;
      Scatter.Make = [=, SrcName = Src->gradBuffer()](ExprPtr, int64_t) {
        return kernelCall(KernelKind::ScatterAdd2D,
                          bufArgs(KernelBufArg(SrcName, nOff(SrcElems)),
                                  KernelBufArg(GinBuf, nOff(PerItem)),
                                  KernelBufArg(Table)),
                          {CL.K, CL.NsVolume, CL.NsVolume}, {},
                          indexList(intConst(0)));
      };
      BwdTask.PerItem.push_back(std::move(Scatter));
    }
  }
  appendGradHooks(E, BwdTask);

  Prog.Report.InterpretedEnsembles.push_back(E->name());
  Fwd.push_back(std::move(FwdTask));
  Bwd.push_back(std::move(BwdTask));
}

} // namespace
