//===- compiler/program_cache.h - Shape-class compile cache ----*- C++ -*-===//
///
/// \file
/// Process-global cache of compiled programs keyed by (model fingerprint,
/// program-shaping compile options, batch size) — one entry per *shape
/// class*. Grown out of the serving runtime (src/serve), it now lives in
/// the compiler because it is the compiler's memoization layer: anything
/// that compiles the same spec repeatedly (servers, benchmarks, tools)
/// shares it.
///
/// Concurrency contract:
///
///   * getOrCompile is **single-flight** per key: when N threads miss the
///     same cold key concurrently, exactly one performs the compile while
///     the rest block on its result (Stats::Coalesced counts them). The
///     cache mutex is *not* held during compilation, so distinct keys
///     compile in parallel.
///   * lookup never compiles — it is the non-blocking probe the serving
///     runtime's degradation ladder uses to decide between a warm program
///     and a fallback path while a background compile is in flight.
///   * Installation is atomic: a key is either absent or maps to a fully
///     compiled immutable program; readers never observe a partial one.
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_COMPILER_PROGRAM_CACHE_H
#define LATTE_COMPILER_PROGRAM_CACHE_H

#include "compiler/compiler.h"
#include "models/models.h"

#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace latte {
namespace compiler {

class ProgramCache {
public:
  using ProgramPtr = std::shared_ptr<const Program>;

  static ProgramCache &instance();

  /// The cache key: an FNV-1a fingerprint of the spec's full topology plus
  /// every compile switch that changes the assembled program, then the
  /// batch size (the shape class). Exposed for tests.
  static std::string key(const models::ModelSpec &Spec,
                         const CompileOptions &Opts, int64_t BatchSize);

  /// Returns the cached program for the shape class, compiling it first on
  /// a miss. Single-flight: concurrent misses on one key produce exactly
  /// one compile (Stats::Compiles); the followers block until the leader
  /// installs and count as Stats::Coalesced.
  ProgramPtr getOrCompile(const models::ModelSpec &Spec,
                          const CompileOptions &Opts, int64_t BatchSize);

  /// Non-blocking probe: the cached program, or nullptr when the shape
  /// class is cold (including while a compile for it is in flight). Never
  /// compiles.
  ProgramPtr lookup(const models::ModelSpec &Spec, const CompileOptions &Opts,
                    int64_t BatchSize) const;

  struct Stats {
    int64_t Hits = 0;      ///< ready-program lookups
    int64_t Misses = 0;    ///< cold lookups (leader + coalesced)
    int64_t Compiles = 0;  ///< compiles actually executed
    int64_t Coalesced = 0; ///< misses that joined another thread's compile
  };
  Stats stats() const;
  void clear(); ///< tests & cold-cache benchmarks only

  /// Test hook: invoked with the cache key on the compiling thread while
  /// its compile is in flight (outside the cache lock). Lets tests prove
  /// that distinct keys compile concurrently and delay installs to force
  /// the serving fallback ladder. Pass nullptr to reset.
  static void setCompileObserverForTests(
      std::function<void(const std::string &)> Observer);

private:
  ProgramCache() = default;
  mutable std::mutex Mu;
  std::map<std::string, ProgramPtr> Cache;
  std::map<std::string, std::shared_future<ProgramPtr>> InFlight;
  Stats St;
};

} // namespace compiler
} // namespace latte

#endif // LATTE_COMPILER_PROGRAM_CACHE_H
