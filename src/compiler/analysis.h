//===- compiler/analysis.h - Shared-variable analysis ----------*- C++ -*-===//
///
/// \file
/// The analysis phase of the Latte compiler (§5.2). Connections are stored
/// as implicit adjacency lists — mapping functions — so the compiler
/// recovers structure by *probing*: evaluating the mapping at sample neuron
/// indices and comparing the returned source boxes.
///
/// For every connection the analysis determines, per sink dimension:
///   - whether the mapping is invariant along it (a *shared* dimension —
///     those neurons can consume the same input buffer, Figure 8);
///   - whether it slides linearly (window stride), and the window extent —
///     the ingredients of the dependence-distance metadata used by tiling
///     and fusion (§5.4).
/// It also classifies one-to-one connections (ActivationEnsembles run
/// in place) and validates that window volume is uniform, which the
/// homogeneous-ensemble guarantee requires.
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_COMPILER_ANALYSIS_H
#define LATTE_COMPILER_ANALYSIS_H

#include "core/graph.h"

#include <cstdint>
#include <vector>

namespace latte {
namespace compiler {

/// How one sink dimension relates to one source dimension.
struct DimRelation {
  int64_t Stride = 0; ///< source Begin moves Stride per unit sink step
  int64_t Window = 0; ///< range size in this source dimension
};

/// Result of probing one connection.
struct ConnectionInfo {
  /// Per sink dimension: true when the mapping result does not depend on
  /// the index along that dimension.
  std::vector<bool> SharedDims;

  /// Per (sink dim, source dim): stride of the box Begin. Zero when the
  /// source dim does not move with that sink dim (or the sink dim is
  /// shared). Only meaningful when Linear is true.
  std::vector<std::vector<int64_t>> Strides;

  /// Window extents per source dimension (uniform across neurons).
  std::vector<int64_t> WindowSizes;

  /// Flattened window volume (product of WindowSizes).
  int64_t WindowVolume = 0;

  /// True when the probing found the box Begin to be affine in the sink
  /// index (all standard layers). Non-linear mappings fall back to
  /// fully-general gather synthesis.
  bool Linear = true;

  /// True when the connection is a bijective identity: same rank, window
  /// volume 1, box == {sink index}. Enables in-place execution.
  bool OneToOne = false;

  /// True when every sink dimension is shared (fully connected): all
  /// neurons read the same box covering part or all of the source.
  bool FullyShared = false;

  /// The box returned for the all-zeros sink index (the base box).
  std::vector<core::Range> BaseBox;

  int numSharedDims() const {
    int N = 0;
    for (bool S : SharedDims)
      N += S;
    return N;
  }
};

/// Probes \p Conn's mapping over sink ensemble \p SinkDims. Fatal error if
/// the window volume is not uniform across neurons.
ConnectionInfo analyzeConnection(const core::Connection &Conn,
                                 const Shape &SinkDims);

/// Result of probing a field-storage map: for each storage dimension, the
/// sink dimension it selects (projection), or -1 when unknown.
struct FieldMapInfo {
  std::vector<int> DimSelectors;
  bool IsProjection = false;
};

/// Probes a field map (null map = identity over all sink dims).
FieldMapInfo analyzeFieldMap(const core::FieldStorage &Storage,
                             const Shape &SinkDims);

} // namespace compiler
} // namespace latte

#endif // LATTE_COMPILER_ANALYSIS_H
