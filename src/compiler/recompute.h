//===- compiler/recompute.h - Sublinear-memory rematerialization -*- C++ -*-===//
///
/// \file
/// The recompute (rematerialization) pass: the classic memory-for-compute
/// trade applied to the gather buffers the Latte compiler materializes for
/// its GEMM lowering. An im2col `inputs0` buffer is written once in forward
/// by a pure gather (Im2ColRows / Gather2D over a static index table) and
/// read again only by the backward weight-gradient GEMM; without this pass
/// the memory planner must retain it across the whole forward/backward
/// boundary — PR-over-PR measurement showed these buffers are the single
/// largest retained class. Re-gathering immediately before the backward
/// consumer turns them into two short-lived interval buffers the arena can
/// fold, at the cost of one extra data movement per element per backward
/// pass.
///
/// Legality (all proven against analyze::effects, not assumed):
///   * the candidate is an Input-role alias root with no alias members,
///     referenced by exactly one forward unit (the producer) and exactly
///     one backward unit (the consumer), read-only in backward;
///   * every write to the candidate inside the producer comes from a
///     whitelisted pure-gather kernel (isRecomputableKernel) — RNG kernels
///     (DropoutMask) and value+mask writers (MaxPoolFwdRows) never qualify;
///   * every float buffer the pruned clone reads is a Value/Data root
///     (retained/pinned by the planner, so the re-gather sees bitwise the
///     bytes forward saw) and is not written by any unit between the
///     producer and the insertion point; int tables must be static.
///
/// The pass clones the producer unit, prunes it to the gather statements,
/// and inserts the clone (plus a parallel "recompute[...]" task label)
/// into Program::Backward immediately before the consumer. Decisions are
/// recorded in Program::Recomputes for the planner (two-interval
/// lifetimes), the verifier (plan.recompute.* checks), and the profiler.
/// Recompute never changes values: the differential suite proves
/// recompute-on vs recompute-off bitwise identical.
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_COMPILER_RECOMPUTE_H
#define LATTE_COMPILER_RECOMPUTE_H

#include "ir/stmt.h"

namespace latte {
namespace compiler {

struct Program;

/// True for kernels a recompute clone may contain: pure gathers whose only
/// write is the destination buffer and whose output depends only on the
/// source bytes and a static index table. The verifier's
/// plan.recompute.stateful check enforces the same whitelist.
bool isRecomputableKernel(ir::KernelKind K);

/// Runs the rematerialization pass on an assembled program (after
/// assemblePrograms, before planMemory). Mutates Prog.Backward /
/// Prog.BackwardTasks and fills Prog.Recomputes; returns the number of
/// buffers rematerialized.
int recomputeGathers(Program &Prog);

} // namespace compiler
} // namespace latte

#endif // LATTE_COMPILER_RECOMPUTE_H
