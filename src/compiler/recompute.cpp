//===- compiler/recompute.cpp ---------------------------------*- C++ -*-===//

#include "compiler/recompute.h"

#include "analyze/effects.h"
#include "compiler/program.h"
#include "support/casting.h"

#include <algorithm>

using namespace latte;
using namespace latte::compiler;
using namespace latte::ir;

bool compiler::isRecomputableKernel(KernelKind K) {
  // Pure gathers only: one destination write per element, value a function
  // of the source bytes and a static index table. Everything else is
  // excluded by construction — notably DropoutMask (RNG state advances per
  // call) and MaxPoolFwdRows (writes a value and an argmax mask).
  return K == KernelKind::Im2ColRows || K == KernelKind::Gather2D;
}

namespace {

/// A producer unit split in two: the gather statements writing the
/// candidate root (with their enclosing loop structure and scalar
/// bindings), and everything else. The Rest half exists so legality can be
/// proven with analyze::effects instead of a hand-maintained table of
/// kernel write sets: if Rest still writes the root, some non-whitelisted
/// statement produces it and the candidate is rejected.
struct Split {
  StmtPtr Kept;
  StmtPtr Rest;
  int KeptKernels = 0;
};

bool writesRootAsGather(const KernelCallStmt *KC, const std::string &Root,
                        const Program &Prog) {
  if (!isRecomputableKernel(KC->kernel()) || KC->bufs().empty())
    return false;
  // For both whitelisted kinds the destination is buffer argument 0.
  const BufferInfo *Dst = Prog.resolveAlias(KC->bufs()[0].Buffer);
  return Dst && Dst->Name == Root;
}

Split splitStmt(const Stmt *S, const std::string &Root, const Program &Prog) {
  Split R;
  switch (S->kind()) {
  case Stmt::Kind::KernelCall: {
    const auto *KC = cast<KernelCallStmt>(S);
    if (writesRootAsGather(KC, Root, Prog)) {
      R.Kept = S->clone();
      R.KeptKernels = 1;
    } else {
      R.Rest = S->clone();
    }
    return R;
  }
  case Stmt::Kind::Decl:
  case Stmt::Kind::AssignVar:
    // Scalar bindings are pure; duplicate them into both halves so kept
    // gathers keep any loop-local variables their offsets reference.
    R.Kept = S->clone();
    R.Rest = S->clone();
    return R;
  case Stmt::Kind::Block: {
    const auto *B = cast<BlockStmt>(S);
    std::vector<StmtPtr> Kept, Rest;
    for (const StmtPtr &Child : B->stmts()) {
      Split C = splitStmt(Child.get(), Root, Prog);
      R.KeptKernels += C.KeptKernels;
      if (C.Kept)
        Kept.push_back(std::move(C.Kept));
      if (C.Rest)
        Rest.push_back(std::move(C.Rest));
    }
    if (R.KeptKernels > 0)
      R.Kept = std::make_unique<BlockStmt>(std::move(Kept), B->label());
    if (!Rest.empty())
      R.Rest = std::make_unique<BlockStmt>(std::move(Rest), B->label());
    return R;
  }
  case Stmt::Kind::For:
  case Stmt::Kind::TiledLoop: {
    const Stmt *Body = isa<ForStmt>(S) ? cast<ForStmt>(S)->body()
                                       : cast<TiledLoopStmt>(S)->body();
    Split C = splitStmt(Body, Root, Prog);
    R.KeptKernels = C.KeptKernels;
    auto Rewrap = [&S](StmtPtr NewBody) {
      StmtPtr L = S->clone();
      if (auto *F = dyn_cast<ForStmt>(L.get()))
        F->setBody(std::move(NewBody));
      else
        cast<TiledLoopStmt>(L.get())->setBody(std::move(NewBody));
      return L;
    };
    if (C.Kept && R.KeptKernels > 0)
      R.Kept = Rewrap(std::move(C.Kept));
    if (C.Rest)
      R.Rest = Rewrap(std::move(C.Rest));
    return R;
  }
  default:
    // If/Store/Barrier are never part of a recompute clone. A gather
    // hidden under an If stays in Rest, whose effects then still write the
    // root and the candidate is rejected — conservative by construction.
    R.Rest = S->clone();
    return R;
  }
}

bool anyWrite(const std::vector<analyze::Access> &Accesses) {
  for (const analyze::Access &A : Accesses)
    if (A.Write)
      return true;
  return false;
}

bool unitWrites(const analyze::UnitEffects &UE, const std::string &Key) {
  auto It = UE.Effects.Buffers.find(Key);
  return It != UE.Effects.Buffers.end() && anyWrite(It->second);
}

struct Candidate {
  std::string Root;
  int Producer = -1;
  int Consumer = -1; ///< backward unit index before any insertion
  StmtPtr Clone;
};

} // namespace

int compiler::recomputeGathers(Program &Prog) {
  auto *FwdBlock = dyn_cast<BlockStmt>(Prog.Forward.get());
  auto *BwdBlock = dyn_cast<BlockStmt>(Prog.Backward.get());
  if (!FwdBlock || !BwdBlock || BwdBlock->stmts().empty())
    return 0;

  analyze::BufferTable Bufs(Prog);
  std::vector<analyze::UnitEffects> FwdEff, BwdEff;
  for (const StmtPtr &U : FwdBlock->stmts())
    FwdEff.push_back(analyze::collectUnitEffects(U.get(), Bufs, nullptr));
  for (const StmtPtr &U : BwdBlock->stmts())
    BwdEff.push_back(analyze::collectUnitEffects(U.get(), Bufs, nullptr));

  std::vector<Candidate> Cands;
  for (const BufferInfo &B : Prog.Buffers) {
    // Candidates: Input-role alias roots with no members sharing their
    // storage (a CoversSource input aliases its source's value and never
    // shows up under its own name in the effect sets).
    if (B.Role != BufferRole::Input || !B.AliasOf.empty())
      continue;
    bool HasMember = false;
    for (const BufferInfo &M : Prog.Buffers)
      if (!M.AliasOf.empty() && Prog.resolveAlias(M.Name) == &B)
        HasMember = true;
    if (HasMember)
      continue;

    // Exactly one producing forward unit, exactly one backward consumer,
    // read-only in backward. Multi-unit shapes (the whole-batch FC GEMM
    // runs in a separate unit from its gather) and multi-consumer roots
    // stay retained.
    int Producer = -1, Consumer = -1, FwdRefs = 0, BwdRefs = 0;
    bool BwdReadOnly = true;
    for (size_t U = 0; U < FwdEff.size(); ++U)
      if (FwdEff[U].Effects.Buffers.count(B.Name)) {
        ++FwdRefs;
        Producer = static_cast<int>(U);
      }
    for (size_t U = 0; U < BwdEff.size(); ++U) {
      auto It = BwdEff[U].Effects.Buffers.find(B.Name);
      if (It == BwdEff[U].Effects.Buffers.end())
        continue;
      ++BwdRefs;
      Consumer = static_cast<int>(U);
      BwdReadOnly &= !anyWrite(It->second);
    }
    if (FwdRefs != 1 || BwdRefs != 1 || !BwdReadOnly)
      continue;
    if (!unitWrites(FwdEff[Producer], B.Name))
      continue;

    Split S = splitStmt(FwdBlock->stmts()[Producer].get(), B.Name, Prog);
    if (!S.Kept || S.KeptKernels == 0)
      continue;
    // Purity, proven by effects: the producer minus the kept gathers must
    // not write the root (otherwise a non-whitelisted statement produces
    // part of it), and the kept clone must write nothing but the root.
    if (S.Rest &&
        unitWrites(analyze::collectUnitEffects(S.Rest.get(), Bufs, nullptr),
                   B.Name))
      continue;
    analyze::UnitEffects KE =
        analyze::collectUnitEffects(S.Kept.get(), Bufs, nullptr);
    bool Legal = true;
    std::vector<std::string> Sources;
    for (const auto &[Key, Accesses] : KE.Effects.Buffers) {
      bool Writes = anyWrite(Accesses);
      if (Key.rfind("int:", 0) == 0) {
        // Index tables must be static: a dynamic int buffer (pool masks)
        // could change between the forward gather and the re-gather.
        const IntBufferInfo *T = Prog.findIntBuffer(Key.substr(4));
        Legal &= !Writes && T && T->isStatic();
        continue;
      }
      if (Key == B.Name) {
        Legal &= Writes;
        continue;
      }
      // Float sources must be Value/Data roots: the planner retains or
      // pins those, so the re-gather reads bitwise the bytes forward saw.
      const BufferInfo *Src = Prog.findBuffer(Key);
      Legal &= !Writes && Src &&
               (Src->Role == BufferRole::Value ||
                Src->Role == BufferRole::Data);
      if (Legal)
        Sources.push_back(Key);
    }
    if (!Legal)
      continue;
    // No unit between the producer and the insertion point may write a
    // source (in-place activations alias onto value roots, so this is a
    // real check, not paranoia).
    for (size_t U = Producer + 1; U < FwdEff.size() && Legal; ++U)
      for (const std::string &Src : Sources)
        Legal &= !unitWrites(FwdEff[U], Src);
    for (int U = 0; U < Consumer && Legal; ++U)
      for (const std::string &Src : Sources)
        Legal &= !unitWrites(BwdEff[U], Src);
    if (!Legal)
      continue;

    Candidate C;
    C.Root = B.Name;
    C.Producer = Producer;
    C.Consumer = Consumer;
    C.Clone = std::move(S.Kept);
    Cands.push_back(std::move(C));
  }

  // Insert clones in consumer order; each insertion shifts later indices.
  std::sort(Cands.begin(), Cands.end(),
            [](const Candidate &A, const Candidate &B) {
              if (A.Consumer != B.Consumer)
                return A.Consumer < B.Consumer;
              return A.Root < B.Root;
            });
  for (size_t I = 0; I < Cands.size(); ++I) {
    Candidate &C = Cands[I];
    int Insert = C.Consumer + static_cast<int>(I);
    BwdBlock->stmts().insert(BwdBlock->stmts().begin() + Insert,
                             std::move(C.Clone));
    TaskLabel Label;
    Label.Name = "recompute[" + C.Root + "]";
    if (C.Producer < static_cast<int>(Prog.ForwardTasks.size()))
      Label.Ensembles = Prog.ForwardTasks[C.Producer].Ensembles;
    // Labels must stay parallel to units; hand-built programs without
    // labels (the verifier skips them) get none for the clone either.
    if (Prog.BackwardTasks.size() + 1 == BwdBlock->stmts().size())
      Prog.BackwardTasks.insert(Prog.BackwardTasks.begin() + Insert,
                                std::move(Label));

    RecomputeInfo RI;
    RI.Buffer = C.Root;
    if (C.Producer < static_cast<int>(Prog.ForwardTasks.size()))
      RI.ProducerTask = Prog.ForwardTasks[C.Producer].Name;
    RI.ForwardUnit = C.Producer;
    RI.BackwardUnit = Insert;
    int ShiftedConsumer = C.Consumer;
    for (const Candidate &Other : Cands)
      if (Other.Consumer <= C.Consumer)
        ++ShiftedConsumer;
    RI.ConsumerUnit = ShiftedConsumer;
    if (const BufferInfo *Root = Prog.findBuffer(C.Root)) {
      RI.Flops = Root->Dims.numElements();
      RI.Bytes = Root->Dims.numElements() * 4;
    }
    Prog.Recomputes.push_back(std::move(RI));
  }
  return static_cast<int>(Cands.size());
}
