//===- compiler/compiler.cpp ----------------------------------*- C++ -*-===//

#include "compiler/compiler.h"

#include "analyze/effects.h"
#include "analyze/verifier.h"
#include "compiler/memplan.h"
#include "compiler/passes.h"
#include "compiler/recompute.h"
#include "compiler/rotate.h"
#include "compiler/synthesis.h"
#include "ir/printer.h"
#include "support/casting.h"
#include "support/error.h"
#include "support/profile.h"
#include "support/timer.h"

#include <algorithm>
#include <cstdlib>
#include <set>

using namespace latte;
using namespace latte::compiler;

namespace {

/// LATTE_VERIFY_EACH=1/0 overrides the option (so CI can force post-pass
/// verification in release builds without touching call sites).
bool verifyEachEnabled(const CompileOptions &Opts) {
  if (const char *Env = std::getenv("LATTE_VERIFY_EACH"))
    return Env[0] != '0';
  return Opts.VerifyEach;
}

/// Strips an assembled program down to its inference form: the backward
/// program and everything only it referenced go away. Runs after assembly
/// (the forward IR is final and identical to the training compile) and
/// before planMemory (so the plan covers forward-only live ranges).
void stripToInference(Program &Prog) {
  Prog.Backward = nullptr;
  Prog.BackwardTasks.clear();
  // Solver bindings name ParamGrad buffers that are about to be dropped;
  // inference programs have nothing to train.
  Prog.Params.clear();

  // Collect every float root and int table the forward program references.
  analyze::BufferTable Bufs(Prog);
  std::set<std::string> FwdRoots, FwdInts;
  auto CollectUnit = [&](const ir::Stmt *Unit) {
    analyze::UnitEffects UE =
        analyze::collectUnitEffects(Unit, Bufs, /*Diags=*/nullptr);
    for (const auto &[Key, Accesses] : UE.Effects.Buffers) {
      if (Key.rfind("int:", 0) == 0)
        FwdInts.insert(Key.substr(4));
      else
        FwdRoots.insert(Key);
    }
  };
  if (const auto *B = dyn_cast_if_present<ir::BlockStmt>(Prog.Forward.get()))
    for (const ir::StmtPtr &S : B->stmts())
      CollectUnit(S.get());
  else if (Prog.Forward)
    CollectUnit(Prog.Forward.get());

  // A buffer survives when its storage root is referenced in forward, is a
  // parameter (frozen weights), or is part of the program's external
  // interface. Gradients, gathered-input gradients, and solver state all
  // fail the test and drop out of the buffer table (and therefore out of
  // the memory plan's arena).
  std::set<std::string> Keep;
  for (const std::string *Name :
       {&Prog.DataBuffer, &Prog.LabelBuffer, &Prog.LossBuffer,
        &Prog.ProbBuffer})
    if (!Name->empty())
      if (const BufferInfo *Root = Prog.resolveAlias(*Name))
        Keep.insert(Root->Name);
  for (const BufferInfo &B : Prog.Buffers) {
    const BufferInfo *Root = Prog.resolveAlias(B.Name);
    if (!Root)
      continue; // dangling alias: leave it for the verifier to report
    if (Root->Role == BufferRole::Param || FwdRoots.count(Root->Name))
      Keep.insert(Root->Name);
  }
  std::erase_if(Prog.Buffers, [&](const BufferInfo &B) {
    const BufferInfo *Root = Prog.resolveAlias(B.Name);
    return Root && !Keep.count(Root->Name);
  });
  // Backward zero scheduling is meaningless without a backward pass.
  for (BufferInfo &B : Prog.Buffers)
    B.ZeroOnBackward = false;
  std::erase_if(Prog.IntBuffers, [&](const IntBufferInfo &B) {
    return !FwdInts.count(B.Name);
  });
  Prog.Inference = true;
}

} // namespace

Program compiler::compile(const core::Net &Net, const CompileOptions &Opts) {
  prof::ScopedPhase Phase("compile");
  Program Prog;
  SynthesisResult Tasks;
  {
    prof::ScopedTimer T("synthesize");
    Tasks = synthesize(Net, Opts, Prog);
  }
  {
    prof::ScopedTimer T("assemble");
    assemblePrograms(std::move(Tasks), Opts, Prog);
  }
  prof::count(prof::Counter::FusionHits, Prog.Report.FusionGroups.size());
  if (Opts.Inference) {
    // Forward assembly above is byte-identical to the training compile
    // (backward tasks never influence it); recompute is skipped because it
    // only rewrites the backward program the strip is about to drop.
    prof::ScopedTimer T("inference-strip");
    stripToInference(Prog);
  } else if (Opts.Recompute) {
    prof::ScopedTimer T("recompute");
    recomputeGathers(Prog);
  }
  if (Opts.SliceRotation) {
    // After recompute/strip (both reshape the timeline) and before
    // planMemory (which sizes arena lifetimes from the shrunk Dims).
    prof::ScopedTimer T("slice-rotation");
    rotateSlices(Prog, Opts);
  }
  {
    prof::ScopedTimer T("memplan");
    Prog.Plan = planMemory(Prog);
  }
  // Not a transforming pass — just tells the engine to build the JIT
  // dispatch table for this program.
  Prog.Jit = Opts.Jit;
  if (verifyEachEnabled(Opts)) {
    prof::ScopedTimer T("verify-each");
    analyze::DiagnosticReport R = analyze::verifyProgram(Prog);
    if (R.hasErrors())
      reportFatalError("VerifyEach: compiled program failed verification:\n" +
                       R.render());
  }
  return Prog;
}

Program compiler::compileForward(const core::Net &Net, CompileOptions Opts) {
  Opts.Inference = true;
  return compile(Net, Opts);
}

std::vector<PassStage> compiler::compileStaged(const core::Net &Net,
                                               const CompileOptions &Opts) {
  // Each stage flips one switch on top of the previous stage's options.
  CompileOptions Cur = Opts;
  Cur.PatternMatchGemm = false;
  Cur.PatternMatchKernels = false;
  Cur.Tiling = false;
  Cur.Fusion = false;
  Cur.Parallelize = false;
  Cur.VectorKernels = false;
  Cur.Recompute = false;
  Cur.SliceRotation = false;

  struct Switch {
    const char *Name;
    bool CompileOptions::*Member;
  };
  static constexpr Switch Pipeline[] = {
      {"+vector-kernels", &CompileOptions::VectorKernels},
      {"+gemm", &CompileOptions::PatternMatchGemm},
      {"+kernels", &CompileOptions::PatternMatchKernels},
      {"+tiling", &CompileOptions::Tiling},
      {"+fusion", &CompileOptions::Fusion},
      {"+parallelize", &CompileOptions::Parallelize},
      {"+recompute", &CompileOptions::Recompute},
      {"+slice-rotation", &CompileOptions::SliceRotation},
  };

  std::vector<PassStage> Stages;
  auto AddStage = [&](const char *Name) {
    prof::ScopedPhase Phase("compile");
    prof::ScopedTimer Span(std::string("stage:") + Name);
    PassStage S;
    S.Name = Name;
    S.Opts = Cur;
    Timer Wall;
    S.Prog = compile(Net, Cur);
    S.CompileSec = Wall.seconds();
    S.ForwardIR = ir::printStmt(S.Prog.Forward.get());
    S.BackwardIR = ir::printStmt(S.Prog.Backward.get());
    Stages.push_back(std::move(S));
  };
  AddStage("baseline");
  for (const Switch &Sw : Pipeline) {
    if (!(Opts.*(Sw.Member)))
      continue;
    Cur.*(Sw.Member) = true;
    AddStage(Sw.Name);
  }
  return Stages;
}
