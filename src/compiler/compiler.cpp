//===- compiler/compiler.cpp ----------------------------------*- C++ -*-===//

#include "compiler/compiler.h"

#include "analyze/verifier.h"
#include "compiler/memplan.h"
#include "compiler/passes.h"
#include "compiler/recompute.h"
#include "compiler/synthesis.h"
#include "ir/printer.h"
#include "support/error.h"
#include "support/profile.h"
#include "support/timer.h"

#include <cstdlib>

using namespace latte;
using namespace latte::compiler;

namespace {

/// LATTE_VERIFY_EACH=1/0 overrides the option (so CI can force post-pass
/// verification in release builds without touching call sites).
bool verifyEachEnabled(const CompileOptions &Opts) {
  if (const char *Env = std::getenv("LATTE_VERIFY_EACH"))
    return Env[0] != '0';
  return Opts.VerifyEach;
}

} // namespace

Program compiler::compile(const core::Net &Net, const CompileOptions &Opts) {
  prof::ScopedPhase Phase("compile");
  Program Prog;
  SynthesisResult Tasks;
  {
    prof::ScopedTimer T("synthesize");
    Tasks = synthesize(Net, Opts, Prog);
  }
  {
    prof::ScopedTimer T("assemble");
    assemblePrograms(std::move(Tasks), Opts, Prog);
  }
  prof::count(prof::Counter::FusionHits, Prog.Report.FusionGroups.size());
  if (Opts.Recompute) {
    prof::ScopedTimer T("recompute");
    recomputeGathers(Prog);
  }
  {
    prof::ScopedTimer T("memplan");
    Prog.Plan = planMemory(Prog);
  }
  // Not a transforming pass — just tells the engine to build the JIT
  // dispatch table for this program.
  Prog.Jit = Opts.Jit;
  if (verifyEachEnabled(Opts)) {
    prof::ScopedTimer T("verify-each");
    analyze::DiagnosticReport R = analyze::verifyProgram(Prog);
    if (R.hasErrors())
      reportFatalError("VerifyEach: compiled program failed verification:\n" +
                       R.render());
  }
  return Prog;
}

std::vector<PassStage> compiler::compileStaged(const core::Net &Net,
                                               const CompileOptions &Opts) {
  // Each stage flips one switch on top of the previous stage's options.
  CompileOptions Cur = Opts;
  Cur.PatternMatchGemm = false;
  Cur.PatternMatchKernels = false;
  Cur.Tiling = false;
  Cur.Fusion = false;
  Cur.Parallelize = false;
  Cur.VectorKernels = false;
  Cur.Recompute = false;

  struct Switch {
    const char *Name;
    bool CompileOptions::*Member;
  };
  static constexpr Switch Pipeline[] = {
      {"+vector-kernels", &CompileOptions::VectorKernels},
      {"+gemm", &CompileOptions::PatternMatchGemm},
      {"+kernels", &CompileOptions::PatternMatchKernels},
      {"+tiling", &CompileOptions::Tiling},
      {"+fusion", &CompileOptions::Fusion},
      {"+parallelize", &CompileOptions::Parallelize},
      {"+recompute", &CompileOptions::Recompute},
  };

  std::vector<PassStage> Stages;
  auto AddStage = [&](const char *Name) {
    prof::ScopedPhase Phase("compile");
    prof::ScopedTimer Span(std::string("stage:") + Name);
    PassStage S;
    S.Name = Name;
    S.Opts = Cur;
    Timer Wall;
    S.Prog = compile(Net, Cur);
    S.CompileSec = Wall.seconds();
    S.ForwardIR = ir::printStmt(S.Prog.Forward.get());
    S.BackwardIR = ir::printStmt(S.Prog.Backward.get());
    Stages.push_back(std::move(S));
  };
  AddStage("baseline");
  for (const Switch &Sw : Pipeline) {
    if (!(Opts.*(Sw.Member)))
      continue;
    Cur.*(Sw.Member) = true;
    AddStage(Sw.Name);
  }
  return Stages;
}
