//===- compiler/compiler.cpp ----------------------------------*- C++ -*-===//

#include "compiler/compiler.h"

#include "compiler/passes.h"
#include "compiler/synthesis.h"

using namespace latte;
using namespace latte::compiler;

Program compiler::compile(const core::Net &Net, const CompileOptions &Opts) {
  Program Prog;
  SynthesisResult Tasks = synthesize(Net, Opts, Prog);
  assemblePrograms(std::move(Tasks), Opts, Prog);
  return Prog;
}
