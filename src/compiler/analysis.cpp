//===- compiler/analysis.cpp ----------------------------------*- C++ -*-===//

#include "compiler/analysis.h"

#include "support/error.h"

#include <algorithm>

using namespace latte;
using namespace latte::compiler;
using namespace latte::core;

namespace {

/// Sample indices along a dimension of extent N: ends plus a midpoint.
std::vector<int64_t> samplePoints(int64_t N) {
  std::vector<int64_t> Points = {0};
  if (N > 1)
    Points.push_back(N - 1);
  if (N > 2)
    Points.push_back(N / 2);
  return Points;
}

bool boxEquals(const std::vector<Range> &A, const std::vector<Range> &B) {
  return A == B;
}

} // namespace

ConnectionInfo compiler::analyzeConnection(const Connection &Conn,
                                           const Shape &SinkDims) {
  assert(Conn.Mapping && "connection has no mapping function");
  const int SinkRank = SinkDims.rank();

  ConnectionInfo Info;
  std::vector<int64_t> Zero(SinkRank, 0);
  Info.BaseBox = Conn.Mapping(Zero);
  const int SrcRank = static_cast<int>(Info.BaseBox.size());

  Info.WindowSizes.resize(SrcRank);
  for (int D = 0; D < SrcRank; ++D)
    Info.WindowSizes[D] = Info.BaseBox[D].size();
  Info.WindowVolume = 1;
  for (int64_t W : Info.WindowSizes)
    Info.WindowVolume *= W;

  Info.SharedDims.assign(SinkRank, true);
  Info.Strides.assign(SinkRank, std::vector<int64_t>(SrcRank, 0));

  // Probe each sink dimension independently: step it while holding the
  // others at zero, and check (a) invariance, (b) affine motion of the box.
  for (int D = 0; D < SinkRank; ++D) {
    if (SinkDims[D] <= 1)
      continue; // a dimension of extent 1 is trivially shared
    std::vector<int64_t> Index = Zero;
    Index[D] = 1;
    std::vector<Range> StepBox = Conn.Mapping(Index);
    if (static_cast<int>(StepBox.size()) != SrcRank)
      reportFatalError("mapping returns boxes of varying rank");

    bool Invariant = boxEquals(StepBox, Info.BaseBox);
    Info.SharedDims[D] = Invariant;
    if (Invariant)
      continue;

    // Candidate strides from the unit step.
    for (int S = 0; S < SrcRank; ++S) {
      if (StepBox[S].size() != Info.WindowSizes[S])
        reportFatalError("mapping window size varies across ensemble '" +
                         std::string("dimension ") + std::to_string(D) + "'");
      Info.Strides[D][S] = StepBox[S].Begin - Info.BaseBox[S].Begin;
    }

    // Verify affinity at further sample points.
    for (int64_t P : samplePoints(SinkDims[D])) {
      Index[D] = P;
      std::vector<Range> Probe = Conn.Mapping(Index);
      for (int S = 0; S < SrcRank; ++S) {
        if (Probe[S].size() != Info.WindowSizes[S])
          reportFatalError("mapping window size varies across the ensemble");
        if (Probe[S].Begin !=
            Info.BaseBox[S].Begin + P * Info.Strides[D][S]) {
          Info.Linear = false;
          break;
        }
      }
      if (!Info.Linear)
        break;
    }
    Index[D] = 0;
  }

  // Cross-check a combined sample (both first dims stepped) to catch
  // mappings that are linear per-dim but not jointly affine.
  if (Info.Linear && SinkRank >= 2 && SinkDims[0] > 1 && SinkDims[1] > 1) {
    std::vector<int64_t> Index = Zero;
    Index[0] = SinkDims[0] - 1;
    Index[1] = SinkDims[1] - 1;
    std::vector<Range> Probe = Conn.Mapping(Index);
    for (int S = 0; S < SrcRank && Info.Linear; ++S) {
      int64_t Expected = Info.BaseBox[S].Begin +
                         Index[0] * Info.Strides[0][S] +
                         Index[1] * Info.Strides[1][S];
      if (Probe[S].Begin != Expected)
        Info.Linear = false;
    }
  }

  Info.FullyShared =
      std::all_of(Info.SharedDims.begin(), Info.SharedDims.end(),
                  [](bool S) { return S; });

  // One-to-one: identity box per dimension.
  if (!Info.FullyShared && SrcRank == SinkRank && Info.WindowVolume == 1 &&
      Info.Linear) {
    bool Identity = true;
    for (int D = 0; D < SinkRank && Identity; ++D) {
      if (Info.BaseBox[D].Begin != 0)
        Identity = false;
      for (int S = 0; S < SrcRank && Identity; ++S) {
        int64_t Want = (S == D) ? 1 : 0;
        // Shared dims (extent 1) keep stride 0; treat as matching.
        if (SinkDims[D] > 1 && Info.Strides[D][S] != Want)
          Identity = false;
      }
    }
    Info.OneToOne = Identity;
  }
  // A 1-neuron-per-dim ensemble connected 1:1 is also one-to-one.
  if (Info.FullyShared && SrcRank == SinkRank && Info.WindowVolume == 1) {
    bool AtOrigin = true;
    for (int D = 0; D < SrcRank; ++D)
      AtOrigin &= Info.BaseBox[D].Begin == 0;
    bool SinkIsSingleton = SinkDims.numElements() == 1;
    Info.OneToOne = AtOrigin && SinkIsSingleton;
  }
  return Info;
}

FieldMapInfo compiler::analyzeFieldMap(const FieldStorage &Storage,
                                       const Shape &SinkDims) {
  FieldMapInfo Info;
  const int StorageRank = Storage.StorageDims.rank();
  Info.DimSelectors.assign(StorageRank, -1);

  if (!Storage.Map) {
    // Identity: storage dims mirror the sink dims one-for-one.
    if (StorageRank != SinkDims.rank())
      reportFatalError("field storage without a map must match the ensemble "
                       "rank");
    for (int I = 0; I < StorageRank; ++I)
      Info.DimSelectors[I] = I;
    Info.IsProjection = true;
    return Info;
  }

  std::vector<int64_t> Zero(SinkDims.rank(), 0);
  std::vector<int64_t> Base = Storage.Map(Zero);
  if (static_cast<int>(Base.size()) != StorageRank)
    reportFatalError("field map rank does not match its storage shape");
  for (int64_t B : Base)
    if (B != 0) {
      Info.IsProjection = false;
      return Info;
    }

  // For each sink dim, step it and see which storage dims move by exactly 1.
  Info.IsProjection = true;
  for (int D = 0; D < SinkDims.rank(); ++D) {
    if (SinkDims[D] <= 1)
      continue;
    std::vector<int64_t> Index = Zero;
    Index[D] = 1;
    std::vector<int64_t> Step = Storage.Map(Index);
    for (int J = 0; J < StorageRank; ++J) {
      int64_t Delta = Step[J] - Base[J];
      if (Delta == 0)
        continue;
      if (Delta != 1 || Info.DimSelectors[J] != -1) {
        Info.IsProjection = false;
        return Info;
      }
      Info.DimSelectors[J] = D;
      // Verify on a far sample.
      std::vector<int64_t> Far = Zero;
      Far[D] = SinkDims[D] - 1;
      if (Storage.Map(Far)[J] != SinkDims[D] - 1) {
        Info.IsProjection = false;
        return Info;
      }
    }
  }
  // Every storage dim must have found its selector.
  for (int J = 0; J < StorageRank; ++J)
    if (Info.DimSelectors[J] == -1 && Storage.StorageDims[J] > 1)
      Info.IsProjection = false;
  return Info;
}
