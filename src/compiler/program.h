//===- compiler/program.h - Compiled network programs ----------*- C++ -*-===//
///
/// \file
/// The output of the Latte compiler: buffer declarations, precomputed
/// gather/scatter index tables, and forward/backward IR programs. The
/// execution engine allocates the buffers and runs the IR; the C++ code
/// generator prints it as a standalone translation unit.
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_COMPILER_PROGRAM_H
#define LATTE_COMPILER_PROGRAM_H

#include "compiler/memplan.h"
#include "core/graph.h"
#include "ir/stmt.h"
#include "support/shape.h"

#include <cstdint>
#include <string>
#include <vector>

namespace latte {
namespace compiler {

enum class BufferRole {
  Value,     ///< ensemble activations (batch-major)
  Grad,      ///< ensemble gradients (∇)
  Input,     ///< gathered input windows
  GradInput, ///< gradients of gathered inputs (∇inputs)
  Param,     ///< learnable parameter
  ParamGrad, ///< gradient of a learnable parameter
  Data,      ///< externally supplied (images, labels)
  Scratch,   ///< loss vector, dropout masks, etc.
};

/// One float buffer of the compiled program. A buffer with a non-empty
/// AliasOf shares storage with the named buffer (shared-variable analysis
/// mapping several logical buffers onto one memory region, §5.2; in-place
/// ActivationEnsembles, §3.2).
struct BufferInfo {
  std::string Name;
  Shape Dims;
  BufferRole Role = BufferRole::Scratch;
  std::string AliasOf;

  // Initialization for Param buffers.
  core::FieldInitKind Init = core::FieldInitKind::Zero;
  float InitValue = 0.0f;
  int64_t FanIn = 0;

  /// Grad/GradInput/ParamGrad buffers are zeroed at the top of backward.
  bool ZeroOnBackward = false;
  /// Accumulating forward bodies need their value zeroed at the top of
  /// forward (only when the compute was not matched to an overwriting
  /// kernel).
  bool ZeroOnForward = false;
};

/// A static int32 table (gather/scatter indices) or a dynamic int32 buffer
/// (pooling argmax masks: Entries empty, Count gives the size).
struct IntBufferInfo {
  std::string Name;
  std::vector<int32_t> Entries; ///< static contents; empty for dynamic
  int64_t Count = 0;            ///< allocation size for dynamic buffers
  bool isStatic() const { return !Entries.empty(); }
};

/// Learnable-parameter binding consumed by solvers.
struct ParamBinding {
  std::string Param;
  std::string Grad;
  float LrMult = 1.0f;
};

/// What the compiler did — asserted on by tests and printed by the
/// benchmark harnesses (which optimizations actually fired).
struct CompileReport {
  std::vector<std::string> MatchedGemmEnsembles;
  std::vector<std::string> MatchedPoolEnsembles;
  std::vector<std::string> MatchedActivationEnsembles;
  std::vector<std::string> InterpretedEnsembles;
  /// Names of ensembles fused into each forward fusion group (size >= 2).
  std::vector<std::vector<std::string>> FusionGroups;
  int NumTiledLoops = 0;
  std::vector<std::string> Notes;

  bool gemmMatched(const std::string &Ensemble) const {
    for (const std::string &E : MatchedGemmEnsembles)
      if (E == Ensemble)
        return true;
    return false;
  }
};

/// Display metadata for one top-level unit (task) of an assembled program:
/// a batch loop covering one fusion group, a whole-batch pre/post
/// statement, or a fusion barrier. Parallel to the children of the
/// program's top-level forward/backward block; consumed by the engine's
/// per-task profiling (ExecOptions::Profile) to label trace spans.
struct TaskLabel {
  std::string Name;                   ///< e.g. "batch[conv1_1+relu1_1]"
  std::vector<std::string> Ensembles; ///< ensembles the unit covers
};

/// One rematerialization decision of the recompute pass
/// (compiler/recompute.h): instead of retaining \c Buffer across the
/// forward/backward boundary, its producing pure-gather statements were
/// cloned into the backward program immediately before the single backward
/// unit that reads it. The memory planner then gives the root two disjoint
/// live intervals instead of whole-timeline retention, and the profiler
/// reports the traded work (recompute_flops / retained_bytes_saved).
struct RecomputeInfo {
  std::string Buffer;       ///< recomputed alias-root (gathered windows)
  std::string ProducerTask; ///< forward task label the clone came from
  int ForwardUnit = -1;     ///< producing unit index in Forward
  int BackwardUnit = -1;    ///< index of the inserted clone in Backward
  int ConsumerUnit = -1;    ///< backward unit reading Buffer (> BackwardUnit)
  /// Work re-done per backward pass, counted as one op per re-gathered
  /// element (gathers move data; index arithmetic is the only arithmetic).
  int64_t Flops = 0;
  /// Buffer extent the plan no longer retains across the boundary.
  int64_t Bytes = 0;
};

/// One slice-rotation decision (compiler/rotate.h): a chain-internal buffer
/// proven ItemPrivate + overwrite-first by the sub-unit effect analysis
/// (analyze::classifySubUnit) was shrunk from a full-batch allocation to a
/// modular pool of \c Slices item slices; every batch-indexed access inside
/// its single referencing unit was rewritten from `n` to `n % Slices`, and
/// the unit's loop annotations carry SliceModulus so the executor schedules
/// slice-sharing iterations serially. The verifier's plan.subunit.* checks
/// cross-validate each entry against the rewritten IR.
struct RotationInfo {
  std::string Buffer;     ///< rotated alias-root
  int Unit = -1;          ///< global timeline unit (forward units first)
  int64_t Slices = 0;     ///< pool depth D (< batch size)
  int64_t SliceElems = 0; ///< item stride S the analysis proved private
  int64_t SavedBytes = 0; ///< (B - D) * S * sizeof(float), before packing
};

/// A compiled network.
struct Program {
  int64_t BatchSize = 0;
  std::vector<BufferInfo> Buffers;
  std::vector<IntBufferInfo> IntBuffers;
  ir::StmtPtr Forward;
  ir::StmtPtr Backward;
  /// One label per top-level statement of Forward/Backward, same order.
  std::vector<TaskLabel> ForwardTasks;
  std::vector<TaskLabel> BackwardTasks;
  std::vector<ParamBinding> Params;

  // Well-known buffers (empty when the net has no such ensemble).
  std::string DataBuffer;   ///< primary data ensemble's value
  std::string LabelBuffer;  ///< label ensemble's value
  std::string LossBuffer;   ///< per-item loss, shape {batch}
  std::string ProbBuffer;   ///< softmax probabilities, {batch, classes}

  CompileReport Report;

  /// Buffers the recompute pass rematerializes in backward instead of
  /// retaining (empty when CompileOptions::Recompute is off or nothing
  /// qualified). Consumed by the memory planner, the verifier's
  /// plan.recompute.* checks, the profiler, and the bench harness.
  std::vector<RecomputeInfo> Recomputes;

  /// Buffers the slice-rotation pass shrank to modular per-item pools
  /// (empty when CompileOptions::SliceRotation is off or nothing
  /// qualified). Consumed by the verifier's plan.subunit.* checks, the
  /// race detector's rotated-root whitelist, and the bench harness.
  std::vector<RotationInfo> Rotations;

  /// Arena layout computed by planMemory() at the end of compile().
  /// Plan.Valid is false on hand-built programs; the engine and codegen
  /// then allocate eagerly per buffer.
  MemoryPlan Plan;

  /// Carried from CompileOptions::Jit: the engine should compile this
  /// program's tasks to native code (src/jit) and dispatch through the
  /// loaded module, falling back per task to the interpreter.
  bool Jit = false;

  /// True for inference-compiled programs (CompileOptions::Inference /
  /// compileForward): Backward is null, gradient/solver buffers are gone
  /// from the buffer table, and Params is empty (nothing to train). The
  /// engine rejects backward() and the verification tooling (gradCheck)
  /// rejects such programs with a diagnostic instead of crashing.
  bool Inference = false;

  const BufferInfo *findBuffer(const std::string &Name) const {
    for (const BufferInfo &B : Buffers)
      if (B.Name == Name)
        return &B;
    return nullptr;
  }
  const IntBufferInfo *findIntBuffer(const std::string &Name) const {
    for (const IntBufferInfo &B : IntBuffers)
      if (B.Name == Name)
        return &B;
    return nullptr;
  }
  /// Deep copy (the IR statement trees are unique_ptrs, so Program is
  /// move-only; the serving layer's compile cache hands out clones so N
  /// executor replicas can each own a program compiled exactly once).
  Program clone() const {
    Program P;
    P.BatchSize = BatchSize;
    P.Buffers = Buffers;
    P.IntBuffers = IntBuffers;
    P.Forward = Forward ? Forward->clone() : nullptr;
    P.Backward = Backward ? Backward->clone() : nullptr;
    P.ForwardTasks = ForwardTasks;
    P.BackwardTasks = BackwardTasks;
    P.Params = Params;
    P.DataBuffer = DataBuffer;
    P.LabelBuffer = LabelBuffer;
    P.LossBuffer = LossBuffer;
    P.ProbBuffer = ProbBuffer;
    P.Report = Report;
    P.Recomputes = Recomputes;
    P.Rotations = Rotations;
    P.Plan = Plan;
    P.Jit = Jit;
    P.Inference = Inference;
    return P;
  }

  /// Follows \p Name's AliasOf chain to the storage-owning root buffer.
  /// Returns nullptr when \p Name is unknown; a dangling or cyclic chain
  /// (the verifier's buffer.alias diagnostics) stops at the last
  /// resolvable link. The single home of alias semantics — the engine,
  /// the code generator, and the analyses all resolve through here.
  const BufferInfo *resolveAlias(const std::string &Name) const {
    const BufferInfo *Cur = findBuffer(Name);
    size_t Hops = 0;
    while (Cur && !Cur->AliasOf.empty() && Hops++ <= Buffers.size()) {
      const BufferInfo *Next = findBuffer(Cur->AliasOf);
      if (!Next)
        break;
      Cur = Next;
    }
    return Cur;
  }
};

/// Optimization switches (each level of the Figure 13 ablation flips a
/// subset).
struct CompileOptions {
  bool PatternMatchGemm = true; ///< MAC loop nests -> sgemm (§5.4.1)
  bool PatternMatchKernels = true; ///< pooling / activation kernels
  bool Tiling = true;              ///< loop tiling (§5.4.1)
  bool Fusion = true;              ///< cross-layer fusion (§5.4.2)
  bool Parallelize = true;         ///< batch x tile parallel loops (§5.4.3)
  bool VectorKernels = true; ///< engine uses vectorized kernel variants
  /// Rematerialize pure-gather buffers in backward instead of retaining
  /// them across the forward/backward boundary (compiler/recompute.h) —
  /// the sublinear-memory trade: less arena, a re-gather per backward.
  bool Recompute = true;
  /// Execute tasks through the in-process JIT backend (src/jit): generated
  /// loop nests compiled to a shared object, kernels still dispatched into
  /// the engine, per-task interpreter fallback. Lattice bit 7 in the
  /// verification sweep. Off by default — purely a steady-state speed
  /// lever, bitwise-identical results either way.
  bool Jit = false;
  /// Per-item slice rotation (compiler/rotate.h): buffers the sub-unit
  /// effect analysis proves ItemPrivate inside a single batch-loop unit are
  /// shrunk to a modular pool of D item slices instead of a full-batch
  /// allocation — the fused-chain memory the planner cannot fold because
  /// the whole chain is one timeline unit. Lattice bit 8 in the
  /// verification sweep; bitwise identical on or off. Off by default: it
  /// trades intra-unit parallelism (D-way instead of B-way on rotated
  /// chains) for arena bytes.
  bool SliceRotation = false;
  /// Slice pool depth override for SliceRotation. 0 = auto: the chain's
  /// intra-item dependence depth (max tiled-loop dependence distance + 1,
  /// minimum 2). Values below the dependence depth are raised to it;
  /// buffers whose batch loop is not longer than the pool are skipped.
  int64_t RotateSlices = 0;
  /// Inference mode (compileForward): assemble the forward program only,
  /// then strip everything backward-owned — backward tasks, gradient and
  /// solver buffers, backward-only index tables, parameter bindings. The
  /// forward IR is assembled by the identical pipeline BEFORE stripping,
  /// so inference forward outputs are bitwise identical to training-mode
  /// forward under the same switches; the memory plan covers forward-only
  /// live ranges, shrinking the per-replica serving arena. Recompute is
  /// vacuous without a backward program and is skipped.
  bool Inference = false;
  /// Expectation-scaled dropout for inference (only meaningful with
  /// Inference): instead of sampling a mask, copy the input scaled by
  /// KeepProb — the standard eval-mode dropout. Off by default so that
  /// compileForward stays bitwise identical to the training forward pass
  /// (the serving parity contract); opt in per deployment when an
  /// expectation-mode forward is wanted instead of a sampled one.
  bool EvalDropout = false;
  int64_t TileSize = 8;      ///< target tile extent along y
  /// Cost-model threshold: layers whose spatial row extent is below this
  /// are left untiled (the paper's §7.1.2 observation — tiling loses its
  /// benefit once the data fits in cache, and splitting library-kernel
  /// calls then only adds overhead).
  int64_t MinRowsToTile = 32;
  bool GradSyncHooks = false; ///< emit async-allreduce hooks after each
                              ///< ensemble's backward (§5.3)
  /// Run analyze::verifyProgram on the assembled program after every
  /// compile() — and therefore after every compileStaged() stage — and
  /// abort on Error diagnostics (LLVM's -verify-each discipline). Defaults
  /// on in debug builds and CI, off in release; the environment variable
  /// LATTE_VERIFY_EACH=1/0 overrides in either direction.
#ifdef NDEBUG
  bool VerifyEach = false;
#else
  bool VerifyEach = true;
#endif
};

} // namespace compiler
} // namespace latte

#endif // LATTE_COMPILER_PROGRAM_H
