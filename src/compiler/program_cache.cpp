//===- compiler/program_cache.cpp -----------------------------*- C++ -*-===//

#include "compiler/program_cache.h"

#include <sstream>

using namespace latte;
using namespace latte::compiler;

namespace {

/// FNV-1a, the same cheap content hash the JIT module cache uses.
struct Fnv {
  uint64_t H = 1469598103934665603ull;
  void bytes(const void *P, size_t N) {
    const auto *B = static_cast<const unsigned char *>(P);
    for (size_t I = 0; I < N; ++I) {
      H ^= B[I];
      H *= 1099511628211ull;
    }
  }
  void str(const std::string &S) {
    bytes(S.data(), S.size());
    bytes("\0", 1);
  }
  void i64(int64_t V) { bytes(&V, sizeof V); }
  void f64(double V) { bytes(&V, sizeof V); }
};

std::function<void(const std::string &)> &observerSlot() {
  static std::function<void(const std::string &)> Observer;
  return Observer;
}

} // namespace

ProgramCache &ProgramCache::instance() {
  static ProgramCache C;
  return C;
}

void ProgramCache::setCompileObserverForTests(
    std::function<void(const std::string &)> Observer) {
  observerSlot() = std::move(Observer);
}

std::string ProgramCache::key(const models::ModelSpec &Spec,
                              const CompileOptions &Opts, int64_t BatchSize) {
  Fnv F;
  F.str(Spec.Name);
  for (int64_t D : Spec.InputDims.dims())
    F.i64(D);
  F.i64(Spec.NumClasses);
  for (const models::LayerSpec &L : Spec.Layers) {
    F.i64(static_cast<int64_t>(L.K));
    F.str(L.Name);
    // Graph structure: explicit input edges and weight-sharing groups are
    // program-shaping just like the per-layer scalars.
    F.i64(static_cast<int64_t>(L.Inputs.size()));
    for (const std::string &In : L.Inputs)
      F.str(In);
    F.str(L.ShareWith);
    F.i64(L.Filters);
    F.i64(L.Kernel);
    F.i64(L.Stride);
    F.i64(L.Pad);
    F.i64(L.TimeIndex);
    F.f64(L.KeepProb);
  }
  // Every switch that changes the assembled program. VerifyEach is a
  // checking knob, not a program-shaping one, and is deliberately absent.
  // Keep this list in lockstep with CompileOptions: a missing field lets
  // two option sets alias one cache entry and serve the wrong program
  // (the Recompute/SliceRotation-era regression the rekey test pins).
  int64_t Bits = 0;
  for (bool B : {Opts.PatternMatchGemm, Opts.PatternMatchKernels, Opts.Tiling,
                 Opts.Fusion, Opts.Parallelize, Opts.VectorKernels,
                 Opts.Recompute, Opts.Jit, Opts.SliceRotation, Opts.Inference,
                 Opts.EvalDropout, Opts.GradSyncHooks})
    Bits = (Bits << 1) | (B ? 1 : 0);
  F.i64(Bits);
  F.i64(Opts.RotateSlices);
  F.i64(Opts.TileSize);
  F.i64(Opts.MinRowsToTile);
  F.i64(BatchSize);

  std::ostringstream Os;
  Os << Spec.Name << ":b" << BatchSize << ":" << std::hex << F.H;
  return Os.str();
}

ProgramCache::ProgramPtr
ProgramCache::getOrCompile(const models::ModelSpec &Spec,
                           const CompileOptions &Opts, int64_t BatchSize) {
  const std::string K = key(Spec, Opts, BatchSize);
  std::shared_future<ProgramPtr> Follower;
  std::promise<ProgramPtr> Lead;
  {
    std::unique_lock<std::mutex> Lock(Mu);
    auto It = Cache.find(K);
    if (It != Cache.end()) {
      ++St.Hits;
      return It->second;
    }
    ++St.Misses;
    auto Fl = InFlight.find(K);
    if (Fl != InFlight.end()) {
      // Single-flight: another thread is compiling this key — wait for its
      // install instead of compiling a duplicate.
      ++St.Coalesced;
      Follower = Fl->second;
    } else {
      InFlight.emplace(K, Lead.get_future().share());
    }
  }
  if (Follower.valid())
    return Follower.get();

  // Leader path: compile outside the lock so distinct keys proceed in
  // parallel. compile() aborts on malformed specs, so no exception path
  // needs to clean up the in-flight entry.
  if (auto &Observer = observerSlot())
    Observer(K);
  core::Net Net(BatchSize);
  models::buildLatte(Net, Spec, /*WithLoss=*/true);
  auto Prog = std::make_shared<Program>(compile(Net, Opts));
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Cache[K] = Prog; // atomic install: absent -> fully compiled
    ++St.Compiles;
    InFlight.erase(K);
  }
  Lead.set_value(Prog);
  return Prog;
}

ProgramCache::ProgramPtr
ProgramCache::lookup(const models::ModelSpec &Spec, const CompileOptions &Opts,
                     int64_t BatchSize) const {
  const std::string K = key(Spec, Opts, BatchSize);
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Cache.find(K);
  return It != Cache.end() ? It->second : nullptr;
}

ProgramCache::Stats ProgramCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return St;
}

void ProgramCache::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Cache.clear();
  St = {};
}
