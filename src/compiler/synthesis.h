//===- compiler/synthesis.h - Program synthesis ----------------*- C++ -*-===//
///
/// \file
/// The synthesis phase (§5.3): turns each ensemble into executable work.
/// Guided by shared-variable analysis it emits data-copy tasks (gathers
/// through precomputed index tables, or buffer aliasing when inputs are
/// shared / one-to-one), and compute tasks. Compute is produced by pattern
/// matching the neuron functions (§5.4.1): weighted neurons lower to
/// sgemm library calls, pooling and activation neurons to vectorized
/// kernels, and everything else to interpreted SoA loop nests.
///
/// Per-batch-item work is produced as *row operations*: closures
/// parameterized by a row range over the ensemble's tileable spatial
/// dimension. The tiling and fusion passes re-instantiate these closures
/// per tile (this is how a single GEMM becomes per-tile GEMMs, Figure 10).
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_COMPILER_SYNTHESIS_H
#define LATTE_COMPILER_SYNTHESIS_H

#include "compiler/analysis.h"
#include "compiler/program.h"

#include <functional>

namespace latte {
namespace compiler {

/// One per-batch-item operation. When RowExtent > 0 the operation covers
/// RowExtent rows of the tileable dimension and Make re-instantiates it
/// for any row range; otherwise Make(0, 0) produces the fixed statement.
/// The batch index is available to Make's output as the loop variable "n".
struct RowOp {
  std::function<ir::StmtPtr(ir::ExprPtr RowBegin, int64_t RowCount)> Make;
  int64_t RowExtent = 0;
  bool Tileable = false;

  ir::StmtPtr makeWhole() const {
    return RowExtent > 0 ? Make(ir::intConst(0), RowExtent)
                         : Make(nullptr, 0);
  }
};

/// All work for one ensemble in one direction. Execution order within the
/// task is Pre (whole-batch), then PerItem (inside the batch loop), then
/// Post (whole-batch). The assembly pass merges adjacent tasks' PerItem
/// phases into shared batch loops; Pre/Post force ordering boundaries.
struct EnsembleTask {
  std::string EnsembleName;
  /// Whole-batch statements that must precede the per-item work.
  std::vector<ir::StmtPtr> Pre;
  /// Per-batch-item row operations, executed inside the batch loop.
  std::vector<RowOp> PerItem;
  /// Whole-batch statements that must follow the per-item work (e.g. the
  /// whole-batch FC GEMM after its per-item gathers; gradient-sync hooks).
  std::vector<ir::StmtPtr> Post;
  /// Never fuse across this task (NormalizationEnsembles, §5.5).
  bool FusionBarrier = false;
  /// When > 0 this task may be fused with its producer's task; the value is
  /// the dependence distance along the tiled dimension (§5.4.2) — the
  /// producer's tile size is scaled by it.
  int64_t FuseDist = 0;
  /// The ensemble whose task must precede this one for fusion chaining.
  std::string ProducerName;
};

/// The synthesis result: tasks in execution order plus the Program skeleton
/// (buffers, tables, params, well-known names) filled in.
struct SynthesisResult {
  std::vector<EnsembleTask> ForwardTasks;  ///< topological order
  std::vector<EnsembleTask> BackwardTasks; ///< reverse topological order
};

/// Runs analysis + synthesis over \p Net. Fills \p Prog's buffer/table/param
/// declarations and report fields (matched patterns), and returns the tasks
/// for the optimization pipeline.
SynthesisResult synthesize(const core::Net &Net, const CompileOptions &Opts,
                           Program &Prog);

} // namespace compiler
} // namespace latte

#endif // LATTE_COMPILER_SYNTHESIS_H
