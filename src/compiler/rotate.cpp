//===- compiler/rotate.cpp - Per-item slice rotation ----------*- C++ -*-===//

#include "compiler/rotate.h"

#include "analyze/effects.h"
#include "compiler/program.h"
#include "ir/builder.h"
#include "ir/stmt.h"
#include "ir/visitor.h"
#include "support/casting.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

using namespace latte;
using namespace latte::compiler;
using namespace latte::ir;

namespace {

/// n -> n - D*(n/D)  (== n % D for non-negative n). The effect analysis
/// recognizes this composite as the bounded pseudo-variable "n%D", so
/// footprints of rotated accesses stay exact instead of widening on the
/// division.
ExprPtr modComposite(const std::string &Var, int64_t D) {
  return sub(var(Var), mul(intConst(D), div(var(Var), intConst(D))));
}

/// Rewrites every occurrence of \p BatchVar inside an index/offset
/// expression of a rotated access. Index expressions of assembled programs
/// contain only IntConst / Var / Binary nodes (the verifier rejects
/// anything else in integer positions), so the rewrite is total.
ExprPtr rotateIndexExpr(ExprPtr E, const std::string &BatchVar, int64_t D) {
  if (!E)
    return E;
  switch (E->kind()) {
  case Expr::Kind::Var:
    if (cast<VarExpr>(E.get())->name() == BatchVar)
      return modComposite(BatchVar, D);
    return E;
  case Expr::Kind::Binary: {
    auto *B = cast<BinaryExpr>(E.get());
    BinaryOpKind Op = B->op();
    ExprPtr L = rotateIndexExpr(B->takeLhs(), BatchVar, D);
    ExprPtr R = rotateIndexExpr(B->takeRhs(), BatchVar, D);
    return binary(Op, std::move(L), std::move(R));
  }
  default:
    return E;
  }
}

/// Rewrites the index vectors of every Load on a buffer in \p Members
/// inside \p E (loads sit under binaries, unaries, compares, and selects
/// in store values and conditions).
void rotateLoads(Expr *E, const std::set<std::string> &Members,
                 const std::string &BatchVar, int64_t D) {
  if (!E)
    return;
  switch (E->kind()) {
  case Expr::Kind::Load: {
    auto *L = cast<LoadExpr>(E);
    if (Members.count(L->buffer()))
      for (ExprPtr &I : L->indices())
        I = rotateIndexExpr(std::move(I), BatchVar, D);
    for (ExprPtr &I : L->indices())
      rotateLoads(I.get(), Members, BatchVar, D);
    return;
  }
  case Expr::Kind::Binary: {
    auto *B = cast<BinaryExpr>(E);
    rotateLoads(B->lhs(), Members, BatchVar, D);
    rotateLoads(B->rhs(), Members, BatchVar, D);
    return;
  }
  case Expr::Kind::Unary:
    rotateLoads(cast<UnaryExpr>(E)->operand(), Members, BatchVar, D);
    return;
  case Expr::Kind::Compare: {
    auto *C = cast<CompareExpr>(E);
    rotateLoads(C->lhs(), Members, BatchVar, D);
    rotateLoads(C->rhs(), Members, BatchVar, D);
    return;
  }
  case Expr::Kind::Select: {
    auto *Sel = cast<SelectExpr>(E);
    rotateLoads(Sel->cond(), Members, BatchVar, D);
    rotateLoads(Sel->trueValue(), Members, BatchVar, D);
    rotateLoads(Sel->falseValue(), Members, BatchVar, D);
    return;
  }
  default:
    return;
  }
}

/// Rewrites every access to a buffer in \p Members throughout the unit
/// body: store indices, load indices anywhere an expression can appear,
/// and kernel buffer-argument offsets.
void rotateUnit(Stmt *S, const std::set<std::string> &Members,
                const std::string &BatchVar, int64_t D) {
  walkStmts(S, [&](Stmt *Node) {
    switch (Node->kind()) {
    case Stmt::Kind::For:
      rotateLoads(cast<ForStmt>(Node)->lo(), Members, BatchVar, D);
      return;
    case Stmt::Kind::If: {
      auto *If = cast<IfStmt>(Node);
      ExprPtr C = If->takeCond();
      rotateLoads(C.get(), Members, BatchVar, D);
      If->setCond(std::move(C));
      return;
    }
    case Stmt::Kind::Store: {
      auto *St = cast<StoreStmt>(Node);
      if (Members.count(St->buffer()))
        for (ExprPtr &I : St->indices())
          I = rotateIndexExpr(std::move(I), BatchVar, D);
      for (ExprPtr &I : St->indices())
        rotateLoads(I.get(), Members, BatchVar, D);
      rotateLoads(St->value(), Members, BatchVar, D);
      return;
    }
    case Stmt::Kind::Decl:
      rotateLoads(cast<DeclStmt>(Node)->init(), Members, BatchVar, D);
      return;
    case Stmt::Kind::AssignVar:
      rotateLoads(cast<AssignVarStmt>(Node)->value(), Members, BatchVar, D);
      return;
    case Stmt::Kind::KernelCall: {
      auto *K = cast<KernelCallStmt>(Node);
      for (KernelBufArg &A : K->bufs()) {
        if (!A.Offset)
          continue; // null offset = 0: no batch term to rewrite
        if (Members.count(A.Buffer))
          A.Offset = rotateIndexExpr(std::move(A.Offset), BatchVar, D);
        rotateLoads(A.Offset.get(), Members, BatchVar, D);
      }
      for (ExprPtr &X : K->exprArgs())
        rotateLoads(X.get(), Members, BatchVar, D);
      return;
    }
    default:
      return;
    }
  });
}

} // namespace

int compiler::rotateSlices(Program &Prog, const CompileOptions &Opts) {
  if (!Opts.SliceRotation || Prog.BatchSize <= 1)
    return 0;
  analyze::BufferTable Bufs(Prog);

  // Timeline of top-level units, forward first — the same global unit
  // indexing the planner and verifier use.
  std::vector<Stmt *> Timeline;
  auto AddUnits = [&](Stmt *Root) {
    if (auto *B = dyn_cast_if_present<BlockStmt>(Root))
      for (StmtPtr &Child : B->stmts())
        Timeline.push_back(Child.get());
  };
  AddUnits(Prog.Forward.get());
  AddUnits(Prog.Backward.get());

  // Which timeline units reference which float roots: a rotation candidate
  // must live and die inside one unit.
  std::map<std::string, std::vector<int>> RefUnits;
  for (size_t U = 0; U < Timeline.size(); ++U) {
    analyze::UnitEffects UE =
        analyze::collectUnitEffects(Timeline[U], Bufs, nullptr);
    for (const auto &[Root, Accesses] : UE.Effects.Buffers)
      if (Root.rfind("int:", 0) != 0)
        RefUnits[Root].push_back(static_cast<int>(U));
  }

  // Alias members per root (the root itself included).
  std::map<std::string, std::vector<BufferInfo *>> MembersOf;
  for (BufferInfo &B : Prog.Buffers)
    if (const BufferInfo *Root = Prog.resolveAlias(B.Name))
      MembersOf[Root->Name].push_back(&B);

  int NumRotated = 0;
  for (size_t U = 0; U < Timeline.size(); ++U) {
    auto *F = dyn_cast<ForStmt>(Timeline[U]);
    if (!F)
      continue;
    int64_t B = F->extent();
    int64_t Lo = -1;
    if (B <= 1 || !evalConstInt(F->lo(), Lo) || Lo != 0)
      continue;
    // The rewrite substitutes every use of the batch variable inside
    // accesses to the rotated buffer; a shadowing inner loop would make
    // that substitution wrong, so refuse the whole unit.
    bool Shadowed = false;
    // Intra-item dependence depth: producer/consumer tile distances inside
    // the chain bound how many item slices the schedule keeps in flight.
    int64_t MaxDist = 0;
    walkStmts(static_cast<const Stmt *>(F->body()),
              [&](const Stmt *S) {
                if (const auto *In = dyn_cast<ForStmt>(S);
                    In && In->var() == F->var())
                  Shadowed = true;
                if (const auto *T = dyn_cast<TiledLoopStmt>(S)) {
                  if (T->tileVar() == F->var())
                    Shadowed = true;
                  MaxDist = std::max(MaxDist, T->dependenceDistance());
                }
              });
    if (Shadowed)
      continue;
    int64_t D = std::max<int64_t>({2, MaxDist + 1, Opts.RotateSlices});
    if (D >= B)
      continue; // pool as large as the batch: nothing to save

    std::map<std::string, analyze::SliceInfo> Classes =
        analyze::classifySubUnit(F, Bufs);
    bool RotatedHere = false;
    for (const auto &[Root, Info] : Classes) {
      if (Info.Class != analyze::SliceClass::ItemPrivate || !Info.ItemFresh)
        continue;
      const analyze::BufferTable::FloatInfo *FI = Bufs.floatInfo(Root);
      if (!FI)
        continue;
      // Only non-observable intermediates: Value/Grad/ParamGrad buffers
      // are compared whole-batch by the lattice oracle and the gradient
      // checker, Param/Data are externally owned.
      if (FI->Role != BufferRole::Input &&
          FI->Role != BufferRole::GradInput &&
          FI->Role != BufferRole::Scratch)
        continue;
      auto RefIt = RefUnits.find(Root);
      if (RefIt == RefUnits.end() || RefIt->second.size() != 1 ||
          RefIt->second[0] != static_cast<int>(U))
        continue;
      if (Info.ItemElems <= 0 || FI->Count != B * Info.ItemElems)
        continue;
      std::vector<BufferInfo *> &Members = MembersOf[Root];
      bool LeadsWithBatch = !Members.empty();
      for (BufferInfo *M : Members)
        if (M->Dims.rank() == 0 || M->Dims[0] != B)
          LeadsWithBatch = false;
      if (!LeadsWithBatch)
        continue;

      std::set<std::string> Names;
      for (BufferInfo *M : Members)
        Names.insert(M->Name);
      rotateUnit(F->body(), Names, F->var(), D);
      for (BufferInfo *M : Members) {
        std::vector<int64_t> NewDims = M->Dims.dims();
        NewDims[0] = D;
        M->Dims = Shape(std::move(NewDims));
      }
      RotationInfo RI;
      RI.Buffer = Root;
      RI.Unit = static_cast<int>(U);
      RI.Slices = D;
      RI.SliceElems = Info.ItemElems;
      RI.SavedBytes =
          (B - D) * Info.ItemElems * static_cast<int64_t>(sizeof(float));
      Prog.Rotations.push_back(std::move(RI));
      ++NumRotated;
      RotatedHere = true;
    }
    if (RotatedHere) {
      F->annotations().SliceModulus = D;
      F->annotations().Collapse = 1; // slice schedule replaces collapse(2)
    }
  }
  if (NumRotated)
    Prog.Report.Notes.push_back("slice rotation: " +
                                std::to_string(NumRotated) +
                                " buffer(s) shrunk to modular pools");
  return NumRotated;
}
