//===- compiler/compiler.h - The Latte compiler driver ---------*- C++ -*-===//
///
/// \file
/// Entry point of the Latte compiler (§5): analysis -> synthesis ->
/// optimization -> program assembly. The result is executed by
/// engine::Executor or printed as standalone C++ by codegen_cpp.
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_COMPILER_COMPILER_H
#define LATTE_COMPILER_COMPILER_H

#include "compiler/program.h"
#include "core/graph.h"

#include <string>
#include <vector>

namespace latte {
namespace compiler {

/// Compiles \p Net into an executable Program under \p Opts. Fatal error on
/// unsupported constructs (non-recurrent cycles, unknown field references).
Program compile(const core::Net &Net, const CompileOptions &Opts = {});

/// Inference-mode compilation: compile() with CompileOptions::Inference
/// forced on. The result has no backward program, no gradient or solver
/// buffers, and a forward-only memory plan (a strictly smaller arena than
/// the training compile of the same net); its forward outputs are bitwise
/// identical to the training program's forward pass under the same
/// optimization switches. This is what the serving runtime (src/serve)
/// executes per replica.
Program compileForward(const core::Net &Net, CompileOptions Opts = {});

/// One snapshot of the optimization pipeline: the program as it stands with
/// only the switches up to (and including) this stage enabled. Compilation
/// is deterministic, so executing successive stages localizes which pass
/// first introduces a divergence (verify::localizeDivergence drives this).
struct PassStage {
  std::string Name;    ///< "baseline", "+gemm", "+kernels", "+tiling", ...
  CompileOptions Opts; ///< the cumulative switch set of this stage
  Program Prog;        ///< full compilation result under Opts
  std::string ForwardIR;  ///< printed forward program (debugging aid)
  std::string BackwardIR; ///< printed backward program
  double CompileSec = 0;  ///< wall time of this stage's compile() call
};

/// Compiles \p Net once per pipeline stage, cumulatively enabling the
/// optimization switches that are on in \p Opts (canonical order: vector
/// kernels, GEMM pattern matching, kernel pattern matching, tiling, fusion,
/// parallelization, recompute). The first stage is always the fully-unoptimized
/// baseline; the last equals compile(Net, Opts). Switches disabled in
/// \p Opts contribute no stage.
std::vector<PassStage> compileStaged(const core::Net &Net,
                                     const CompileOptions &Opts = {});

} // namespace compiler
} // namespace latte

#endif // LATTE_COMPILER_COMPILER_H
