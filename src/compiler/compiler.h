//===- compiler/compiler.h - The Latte compiler driver ---------*- C++ -*-===//
///
/// \file
/// Entry point of the Latte compiler (§5): analysis -> synthesis ->
/// optimization -> program assembly. The result is executed by
/// engine::Executor or printed as standalone C++ by codegen_cpp.
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_COMPILER_COMPILER_H
#define LATTE_COMPILER_COMPILER_H

#include "compiler/program.h"
#include "core/graph.h"

namespace latte {
namespace compiler {

/// Compiles \p Net into an executable Program under \p Opts. Fatal error on
/// unsupported constructs (non-recurrent cycles, unknown field references).
Program compile(const core::Net &Net, const CompileOptions &Opts = {});

} // namespace compiler
} // namespace latte

#endif // LATTE_COMPILER_COMPILER_H
