//===- compiler/passes.h - Tiling, fusion, parallelization -----*- C++ -*-===//
///
/// \file
/// The optimization pipeline (§5.4): loop tiling over the spatial row
/// dimension (re-instantiating row operations per tile and recording
/// dependence distances), cross-layer fusion of adjacent tiled loops (with
/// producer tile-size scaling, Figures 10-12), parallelization annotations
/// (batch x tile collapse), and final assembly of the forward/backward
/// programs.
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_COMPILER_PASSES_H
#define LATTE_COMPILER_PASSES_H

#include "compiler/synthesis.h"

namespace latte {
namespace compiler {

/// Runs the optimization pipeline over the synthesized tasks and fills
/// Prog.Forward / Prog.Backward (and the fusion/tiling report fields).
void assemblePrograms(SynthesisResult Tasks, const CompileOptions &Opts,
                      Program &Prog);

} // namespace compiler
} // namespace latte

#endif // LATTE_COMPILER_PASSES_H
