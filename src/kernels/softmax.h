//===- kernels/softmax.h - Softmax and cross-entropy loss -----*- C++ -*-===//
///
/// \file
/// Numerically stable softmax and the fused softmax-with-cross-entropy-loss
/// used by SoftmaxLossLayer. These back the NormalizationEnsemble lowering
/// in Latte and the loss layers of both baselines.
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_KERNELS_SOFTMAX_H
#define LATTE_KERNELS_SOFTMAX_H

#include <cstdint>

namespace latte {
namespace kernels {

/// Dst = softmax(Src) over \p Classes entries (max-subtracted for
/// stability). Dst may alias Src.
void softmaxFwd(float *Dst, const float *Src, int64_t Classes);

/// Cross-entropy loss of softmax \p Prob against integer \p Label.
/// Returns -log(Prob[Label]) with clamping to avoid infinities.
float crossEntropyLoss(const float *Prob, int64_t Classes, int64_t Label);

/// Gradient of (softmax + cross-entropy) wrt the pre-softmax inputs:
/// Grad[c] += (Prob[c] - (c == Label)) * Scale.
void softmaxLossBwd(float *Grad, const float *Prob, int64_t Classes,
                    int64_t Label, float Scale);

} // namespace kernels
} // namespace latte

#endif // LATTE_KERNELS_SOFTMAX_H
