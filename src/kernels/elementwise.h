//===- kernels/elementwise.h - Vectorized elementwise kernels -*- C++ -*-===//
///
/// \file
/// The elementwise and data-movement kernels Latte's code generator emits
/// for matched neuron bodies and synthesized copy tasks (paper §5.3, §5.4).
/// Each hot kernel also has a `...Scalar` variant with vectorization
/// suppressed for the Figure 13 ablation.
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_KERNELS_ELEMENTWISE_H
#define LATTE_KERNELS_ELEMENTWISE_H

#include <cstdint>

namespace latte {
namespace kernels {

/// Dst[i] = 0.
void zero(float *Dst, int64_t Count);

/// Dst[i] = Src[i].
void copy(float *Dst, const float *Src, int64_t Count);

/// Dst[i] = max(Src[i], 0).
void reluFwd(float *Dst, const float *Src, int64_t Count);
void reluFwdScalar(float *Dst, const float *Src, int64_t Count);

/// DstGrad[i] += OutGrad[i] * (Value[i] > 0).
void reluBwd(float *DstGrad, const float *OutGrad, const float *Value,
             int64_t Count);
void reluBwdScalar(float *DstGrad, const float *OutGrad, const float *Value,
                   int64_t Count);

/// Dst[i] += Src[i].
void addTo(float *Dst, const float *Src, int64_t Count);

/// Dst[i] = A[i] * B[i].
void mulInto(float *Dst, const float *A, const float *B, int64_t Count);

/// Dst[i] += A[i] * B[i].
void mulAddTo(float *Dst, const float *A, const float *B, int64_t Count);

/// Dst[i] *= Factor.
void scale(float *Dst, float Factor, int64_t Count);

/// Dst[i] += Value.
void addScalar(float *Dst, float Value, int64_t Count);

/// Dst[i] += Factor * Src[i].
void axpy(float Factor, const float *Src, float *Dst, int64_t Count);

/// Gather through an index table: Dst[i] = Table[i] >= 0 ? Src[Table[i]] : 0.
/// Negative table entries encode out-of-bounds window positions (padding).
void gather(float *Dst, const float *Src, const int32_t *Table,
            int64_t Count);
void gatherScalar(float *Dst, const float *Src, const int32_t *Table,
                  int64_t Count);

/// Scatter-accumulate (the adjoint of gather):
/// if Table[i] >= 0 then Dst[Table[i]] += Src[i].
void scatterAdd(float *Dst, const float *Src, const int32_t *Table,
                int64_t Count);

/// Dst[i] = 1 / (1 + exp(-Src[i])).
void sigmoidFwd(float *Dst, const float *Src, int64_t Count);

/// Dst[i] = tanh(Src[i]).
void tanhFwd(float *Dst, const float *Src, int64_t Count);

/// Sum of all elements.
float sum(const float *Src, int64_t Count);

/// Maximum element (Count must be positive).
float maxElement(const float *Src, int64_t Count);

} // namespace kernels
} // namespace latte

#endif // LATTE_KERNELS_ELEMENTWISE_H
