//===- kernels/gemm.h - Single-precision GEMM ------------------*- C++ -*-===//
///
/// \file
/// The library kernel the Latte compiler pattern-matches MAC loop nests
/// into (paper §5.4.1, where the target was MKL's sgemm). Row-major
/// convention throughout:
///
///   C[M x N] (+)= op(A)[M x K] * op(B)[K x N]
///
/// - When TransX is false, X is stored with its op() shape and leading
///   dimension LdX counts elements between consecutive rows.
/// - When TransX is true, X is stored transposed (op(A) element [i,k] is
///   A[k * LdA + i]).
/// - Accumulate=false overwrites C; true adds into it.
///
/// Two implementations exist so the vectorization ablation (Figure 13) is
/// meaningful: sgemm (blocked, auto-vectorized) and sgemmNaive (plain
/// triple loop compiled with vectorization disabled).
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_KERNELS_GEMM_H
#define LATTE_KERNELS_GEMM_H

#include <cstdint>

namespace latte {
namespace kernels {

/// Blocked, vectorizable GEMM.
void sgemm(bool TransA, bool TransB, int64_t M, int64_t N, int64_t K,
           const float *A, int64_t LdA, const float *B, int64_t LdB, float *C,
           int64_t LdC, bool Accumulate);

/// Reference GEMM: naive loop order, vectorization suppressed. Used by the
/// Mocha baseline and as the ground truth in kernel tests.
void sgemmNaive(bool TransA, bool TransB, int64_t M, int64_t N, int64_t K,
                const float *A, int64_t LdA, const float *B, int64_t LdB,
                float *C, int64_t LdC, bool Accumulate);

} // namespace kernels
} // namespace latte

#endif // LATTE_KERNELS_GEMM_H
