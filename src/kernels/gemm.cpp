//===- kernels/gemm.cpp ---------------------------------------*- C++ -*-===//

#include "kernels/gemm.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <vector>

using namespace latte;

namespace {

/// Element accessor for a possibly transposed row-major matrix.
inline float opAt(const float *X, int64_t LdX, bool Trans, int64_t Row,
                  int64_t Col) {
  return Trans ? X[Col * LdX + Row] : X[Row * LdX + Col];
}

// Cache blocking parameters: a KC x NC panel of B (~128 KiB) stays resident
// in L2 while MC rows of A stream through it.
constexpr int64_t MC = 64;
constexpr int64_t KC = 256;
constexpr int64_t NC = 512;

/// Packs op(B)[K0..K0+KB) x [J0..J0+JB) into a contiguous KB x JB panel.
void packB(bool TransB, const float *B, int64_t LdB, int64_t K0, int64_t J0,
           int64_t KB, int64_t JB, float *Panel) {
  if (!TransB) {
    for (int64_t K = 0; K < KB; ++K)
      std::memcpy(Panel + K * JB, B + (K0 + K) * LdB + J0,
                  static_cast<size_t>(JB) * sizeof(float));
    return;
  }
  for (int64_t K = 0; K < KB; ++K)
    for (int64_t J = 0; J < JB; ++J)
      Panel[K * JB + J] = B[(J0 + J) * LdB + (K0 + K)];
}

} // namespace

void kernels::sgemm(bool TransA, bool TransB, int64_t M, int64_t N, int64_t K,
                    const float *A, int64_t LdA, const float *B, int64_t LdB,
                    float *C, int64_t LdC, bool Accumulate) {
  assert(M >= 0 && N >= 0 && K >= 0 && "matrix extents must be non-negative");
  if (M == 0 || N == 0)
    return;
  if (!Accumulate)
    for (int64_t I = 0; I < M; ++I)
      std::memset(C + I * LdC, 0, static_cast<size_t>(N) * sizeof(float));
  if (K == 0)
    return;

  std::vector<float> Panel(static_cast<size_t>(std::min(K, KC) *
                                               std::min(N, NC)));

  for (int64_t J0 = 0; J0 < N; J0 += NC) {
    int64_t JB = std::min(NC, N - J0);
    for (int64_t K0 = 0; K0 < K; K0 += KC) {
      int64_t KB = std::min(KC, K - K0);
      packB(TransB, B, LdB, K0, J0, KB, JB, Panel.data());
      for (int64_t I0 = 0; I0 < M; I0 += MC) {
        int64_t IB = std::min(MC, M - I0);
        for (int64_t I = 0; I < IB; ++I) {
          float *CRow = C + (I0 + I) * LdC + J0;
          for (int64_t KK = 0; KK < KB; ++KK) {
            float AVal = opAt(A, LdA, TransA, I0 + I, K0 + KK);
            const float *BRow = Panel.data() + KK * JB;
            // Contiguous AXPY over the packed panel: this is the loop the
            // compiler vectorizes.
            for (int64_t J = 0; J < JB; ++J)
              CRow[J] += AVal * BRow[J];
          }
        }
      }
    }
  }
}

// Disable vectorization so the "no vectorization" ablation level measures a
// genuinely scalar GEMM, mirroring un-vectorized framework code.
__attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize"))) void
kernels::sgemmNaive(bool TransA, bool TransB, int64_t M, int64_t N, int64_t K,
                    const float *A, int64_t LdA, const float *B, int64_t LdB,
                    float *C, int64_t LdC, bool Accumulate) {
  for (int64_t I = 0; I < M; ++I) {
    for (int64_t J = 0; J < N; ++J) {
      float Sum = Accumulate ? C[I * LdC + J] : 0.0f;
      for (int64_t KK = 0; KK < K; ++KK)
        Sum += opAt(A, LdA, TransA, I, KK) * opAt(B, LdB, TransB, KK, J);
      C[I * LdC + J] = Sum;
    }
  }
}
