//===- kernels/elementwise.cpp --------------------------------*- C++ -*-===//

#include "kernels/elementwise.h"

#include <cassert>
#include <cmath>
#include <cstring>

using namespace latte;

void kernels::zero(float *Dst, int64_t Count) {
  std::memset(Dst, 0, static_cast<size_t>(Count) * sizeof(float));
}

void kernels::copy(float *Dst, const float *Src, int64_t Count) {
  std::memcpy(Dst, Src, static_cast<size_t>(Count) * sizeof(float));
}

void kernels::reluFwd(float *Dst, const float *Src, int64_t Count) {
  for (int64_t I = 0; I < Count; ++I)
    Dst[I] = Src[I] > 0.0f ? Src[I] : 0.0f;
}

__attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize"))) void
kernels::reluFwdScalar(float *Dst, const float *Src, int64_t Count) {
  for (int64_t I = 0; I < Count; ++I)
    Dst[I] = Src[I] > 0.0f ? Src[I] : 0.0f;
}

void kernels::reluBwd(float *DstGrad, const float *OutGrad,
                      const float *Value, int64_t Count) {
  for (int64_t I = 0; I < Count; ++I)
    DstGrad[I] += Value[I] > 0.0f ? OutGrad[I] : 0.0f;
}

__attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize"))) void
kernels::reluBwdScalar(float *DstGrad, const float *OutGrad,
                       const float *Value, int64_t Count) {
  for (int64_t I = 0; I < Count; ++I)
    DstGrad[I] += Value[I] > 0.0f ? OutGrad[I] : 0.0f;
}

void kernels::addTo(float *Dst, const float *Src, int64_t Count) {
  for (int64_t I = 0; I < Count; ++I)
    Dst[I] += Src[I];
}

void kernels::mulInto(float *Dst, const float *A, const float *B,
                      int64_t Count) {
  for (int64_t I = 0; I < Count; ++I)
    Dst[I] = A[I] * B[I];
}

void kernels::mulAddTo(float *Dst, const float *A, const float *B,
                       int64_t Count) {
  for (int64_t I = 0; I < Count; ++I)
    Dst[I] += A[I] * B[I];
}

void kernels::addScalar(float *Dst, float Value, int64_t Count) {
  for (int64_t I = 0; I < Count; ++I)
    Dst[I] += Value;
}

void kernels::scale(float *Dst, float Factor, int64_t Count) {
  for (int64_t I = 0; I < Count; ++I)
    Dst[I] *= Factor;
}

void kernels::axpy(float Factor, const float *Src, float *Dst,
                   int64_t Count) {
  for (int64_t I = 0; I < Count; ++I)
    Dst[I] += Factor * Src[I];
}

void kernels::gather(float *Dst, const float *Src, const int32_t *Table,
                     int64_t Count) {
  for (int64_t I = 0; I < Count; ++I) {
    int32_t Idx = Table[I];
    Dst[I] = Idx >= 0 ? Src[Idx] : 0.0f;
  }
}

__attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize"))) void
kernels::gatherScalar(float *Dst, const float *Src, const int32_t *Table,
                      int64_t Count) {
  for (int64_t I = 0; I < Count; ++I) {
    int32_t Idx = Table[I];
    Dst[I] = Idx >= 0 ? Src[Idx] : 0.0f;
  }
}

void kernels::scatterAdd(float *Dst, const float *Src, const int32_t *Table,
                         int64_t Count) {
  for (int64_t I = 0; I < Count; ++I) {
    int32_t Idx = Table[I];
    if (Idx >= 0)
      Dst[Idx] += Src[I];
  }
}

void kernels::sigmoidFwd(float *Dst, const float *Src, int64_t Count) {
  for (int64_t I = 0; I < Count; ++I)
    Dst[I] = 1.0f / (1.0f + std::exp(-Src[I]));
}

void kernels::tanhFwd(float *Dst, const float *Src, int64_t Count) {
  for (int64_t I = 0; I < Count; ++I)
    Dst[I] = std::tanh(Src[I]);
}

float kernels::sum(const float *Src, int64_t Count) {
  float Total = 0.0f;
  for (int64_t I = 0; I < Count; ++I)
    Total += Src[I];
  return Total;
}

float kernels::maxElement(const float *Src, int64_t Count) {
  assert(Count > 0 && "maxElement requires at least one element");
  float Max = Src[0];
  for (int64_t I = 1; I < Count; ++I)
    if (Src[I] > Max)
      Max = Src[I];
  return Max;
}
