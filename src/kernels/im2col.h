//===- kernels/im2col.h - Convolution lowering helpers ---------*- C++ -*-===//
///
/// \file
/// im2col / col2im: the matrix-multiplication formulation of convolution
/// used by Caffe-style frameworks (and by Latte's synthesized data-copy
/// tasks for convolution ensembles). Data layout is CHW (channel, row,
/// column), row-major.
///
/// im2col produces a matrix of shape
///   [Channels * KernelH * KernelW] x [OutH * OutW]
/// where column (y, x) holds the input window that produces output (y, x).
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_KERNELS_IM2COL_H
#define LATTE_KERNELS_IM2COL_H

#include <cstdint>

namespace latte {
namespace kernels {

struct ConvGeometry {
  int64_t Channels = 0;
  int64_t Height = 0;
  int64_t Width = 0;
  int64_t KernelH = 0;
  int64_t KernelW = 0;
  int64_t StrideH = 1;
  int64_t StrideW = 1;
  int64_t PadH = 0;
  int64_t PadW = 0;

  int64_t outH() const { return (Height + 2 * PadH - KernelH) / StrideH + 1; }
  int64_t outW() const { return (Width + 2 * PadW - KernelW) / StrideW + 1; }
  int64_t colRows() const { return Channels * KernelH * KernelW; }
  int64_t colCols() const { return outH() * outW(); }
};

/// Expands \p Image (C x H x W) into \p Col (colRows x colCols). Positions
/// that fall into padding become zero.
void im2col(const float *Image, const ConvGeometry &G, float *Col);

/// Adjoint of im2col: accumulates \p Col back into \p Image. The caller is
/// responsible for zeroing Image first when overwrite semantics are wanted.
void col2im(const float *Col, const ConvGeometry &G, float *Image);

// Row-ranged variants covering output rows [RowBegin, RowBegin + RowCount)
// only — the units Latte's tiling pass splits convolution data-copy tasks
// into (the synthesized copy loops of paper §5.3).
void im2colRows(const float *Image, const ConvGeometry &G, float *Col,
                int64_t RowBegin, int64_t RowCount);
void col2imRows(const float *Col, const ConvGeometry &G, float *Image,
                int64_t RowBegin, int64_t RowCount);

} // namespace kernels
} // namespace latte

#endif // LATTE_KERNELS_IM2COL_H
