//===- kernels/pooling.h - Pooling kernels ---------------------*- C++ -*-===//
///
/// \file
/// Max and average pooling over CHW tensors, with the argmax mask needed by
/// back-propagation. The Caffe baseline calls these directly; Latte's
/// compiled programs reach the same arithmetic through synthesized gather +
/// reduction loops.
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_KERNELS_POOLING_H
#define LATTE_KERNELS_POOLING_H

#include "kernels/im2col.h"

#include <cstdint>

namespace latte {
namespace kernels {

/// Max pooling forward. \p Mask (same size as the output, may be null)
/// receives the linear input offset of each window maximum for backward.
void maxPoolFwd(const float *Input, const ConvGeometry &G, float *Output,
                int32_t *Mask);

/// Max pooling backward: routes each output gradient to the recorded argmax
/// position. Accumulates into InputGrad.
void maxPoolBwd(const float *OutputGrad, const ConvGeometry &G,
                const int32_t *Mask, float *InputGrad);

/// Average pooling forward (padding positions count toward the divisor as
/// zero, i.e. divisor is the full window size, matching Caffe's default).
void avgPoolFwd(const float *Input, const ConvGeometry &G, float *Output);

/// Average pooling backward. Accumulates into InputGrad.
void avgPoolBwd(const float *OutputGrad, const ConvGeometry &G,
                float *InputGrad);

// Row-ranged variants covering output rows [RowBegin, RowBegin + RowCount)
// only — the units Latte's tiling pass splits pooling work into.
void maxPoolFwdRows(const float *Input, const ConvGeometry &G, float *Output,
                    int32_t *Mask, int64_t RowBegin, int64_t RowCount);
void maxPoolBwdRows(const float *OutputGrad, const ConvGeometry &G,
                    const int32_t *Mask, float *InputGrad, int64_t RowBegin,
                    int64_t RowCount);
void avgPoolFwdRows(const float *Input, const ConvGeometry &G, float *Output,
                    int64_t RowBegin, int64_t RowCount);
void avgPoolBwdRows(const float *OutputGrad, const ConvGeometry &G,
                    float *InputGrad, int64_t RowBegin, int64_t RowCount);

} // namespace kernels
} // namespace latte

#endif // LATTE_KERNELS_POOLING_H
