//===- kernels/softmax.cpp ------------------------------------*- C++ -*-===//

#include "kernels/softmax.h"

#include "kernels/elementwise.h"

#include <cassert>
#include <cmath>

using namespace latte;

void kernels::softmaxFwd(float *Dst, const float *Src, int64_t Classes) {
  assert(Classes > 0 && "softmax needs at least one class");
  float Max = maxElement(Src, Classes);
  float Total = 0.0f;
  for (int64_t C = 0; C < Classes; ++C) {
    Dst[C] = std::exp(Src[C] - Max);
    Total += Dst[C];
  }
  float Inv = 1.0f / Total;
  for (int64_t C = 0; C < Classes; ++C)
    Dst[C] *= Inv;
}

float kernels::crossEntropyLoss(const float *Prob, int64_t Classes,
                                int64_t Label) {
  assert(Label >= 0 && Label < Classes && "label out of range");
  float P = Prob[Label];
  const float Floor = 1e-20f;
  return -std::log(P < Floor ? Floor : P);
}

void kernels::softmaxLossBwd(float *Grad, const float *Prob, int64_t Classes,
                             int64_t Label, float Scale) {
  assert(Label >= 0 && Label < Classes && "label out of range");
  for (int64_t C = 0; C < Classes; ++C)
    Grad[C] += (Prob[C] - (C == Label ? 1.0f : 0.0f)) * Scale;
}
