//===- kernels/pooling.cpp ------------------------------------*- C++ -*-===//

#include "kernels/pooling.h"

#include <cassert>
#include <limits>

using namespace latte;
using namespace latte::kernels;

void kernels::maxPoolFwd(const float *Input, const ConvGeometry &G,
                         float *Output, int32_t *Mask) {
  maxPoolFwdRows(Input, G, Output, Mask, 0, G.outH());
}

void kernels::maxPoolFwdRows(const float *Input, const ConvGeometry &G,
                             float *Output, int32_t *Mask, int64_t RowBegin,
                             int64_t RowCount) {
  const int64_t OutH = G.outH(), OutW = G.outW();
  assert(RowBegin >= 0 && RowBegin + RowCount <= OutH &&
         "pooling row range out of bounds");
  for (int64_t C = 0; C < G.Channels; ++C) {
    const float *Chan = Input + C * G.Height * G.Width;
    for (int64_t Y = RowBegin; Y < RowBegin + RowCount; ++Y) {
      for (int64_t X = 0; X < OutW; ++X) {
        float Max = -std::numeric_limits<float>::infinity();
        int64_t ArgMax = -1;
        for (int64_t KY = 0; KY < G.KernelH; ++KY) {
          int64_t InY = Y * G.StrideH - G.PadH + KY;
          if (InY < 0 || InY >= G.Height)
            continue;
          for (int64_t KX = 0; KX < G.KernelW; ++KX) {
            int64_t InX = X * G.StrideW - G.PadW + KX;
            if (InX < 0 || InX >= G.Width)
              continue;
            float V = Chan[InY * G.Width + InX];
            if (V > Max) {
              Max = V;
              ArgMax = C * G.Height * G.Width + InY * G.Width + InX;
            }
          }
        }
        int64_t Out = (C * OutH + Y) * OutW + X;
        Output[Out] = Max;
        if (Mask)
          Mask[Out] = static_cast<int32_t>(ArgMax);
      }
    }
  }
}

void kernels::maxPoolBwd(const float *OutputGrad, const ConvGeometry &G,
                         const int32_t *Mask, float *InputGrad) {
  maxPoolBwdRows(OutputGrad, G, Mask, InputGrad, 0, G.outH());
}

void kernels::maxPoolBwdRows(const float *OutputGrad, const ConvGeometry &G,
                             const int32_t *Mask, float *InputGrad,
                             int64_t RowBegin, int64_t RowCount) {
  assert(Mask && "max pooling backward requires the forward argmax mask");
  const int64_t OutH = G.outH(), OutW = G.outW();
  for (int64_t C = 0; C < G.Channels; ++C) {
    for (int64_t Y = RowBegin; Y < RowBegin + RowCount; ++Y) {
      const int64_t Row = (C * OutH + Y) * OutW;
      for (int64_t X = 0; X < OutW; ++X)
        if (Mask[Row + X] >= 0)
          InputGrad[Mask[Row + X]] += OutputGrad[Row + X];
    }
  }
}

void kernels::avgPoolFwd(const float *Input, const ConvGeometry &G,
                         float *Output) {
  avgPoolFwdRows(Input, G, Output, 0, G.outH());
}

void kernels::avgPoolFwdRows(const float *Input, const ConvGeometry &G,
                             float *Output, int64_t RowBegin,
                             int64_t RowCount) {
  const int64_t OutH = G.outH(), OutW = G.outW();
  const float Inv = 1.0f / static_cast<float>(G.KernelH * G.KernelW);
  for (int64_t C = 0; C < G.Channels; ++C) {
    const float *Chan = Input + C * G.Height * G.Width;
    for (int64_t Y = RowBegin; Y < RowBegin + RowCount; ++Y) {
      for (int64_t X = 0; X < OutW; ++X) {
        float Sum = 0.0f;
        for (int64_t KY = 0; KY < G.KernelH; ++KY) {
          int64_t InY = Y * G.StrideH - G.PadH + KY;
          if (InY < 0 || InY >= G.Height)
            continue;
          for (int64_t KX = 0; KX < G.KernelW; ++KX) {
            int64_t InX = X * G.StrideW - G.PadW + KX;
            if (InX >= 0 && InX < G.Width)
              Sum += Chan[InY * G.Width + InX];
          }
        }
        Output[(C * OutH + Y) * OutW + X] = Sum * Inv;
      }
    }
  }
}

void kernels::avgPoolBwd(const float *OutputGrad, const ConvGeometry &G,
                         float *InputGrad) {
  avgPoolBwdRows(OutputGrad, G, InputGrad, 0, G.outH());
}

void kernels::avgPoolBwdRows(const float *OutputGrad, const ConvGeometry &G,
                             float *InputGrad, int64_t RowBegin,
                             int64_t RowCount) {
  const int64_t OutH = G.outH(), OutW = G.outW();
  const float Inv = 1.0f / static_cast<float>(G.KernelH * G.KernelW);
  for (int64_t C = 0; C < G.Channels; ++C) {
    float *Chan = InputGrad + C * G.Height * G.Width;
    for (int64_t Y = RowBegin; Y < RowBegin + RowCount; ++Y) {
      for (int64_t X = 0; X < OutW; ++X) {
        float G0 = OutputGrad[(C * OutH + Y) * OutW + X] * Inv;
        for (int64_t KY = 0; KY < G.KernelH; ++KY) {
          int64_t InY = Y * G.StrideH - G.PadH + KY;
          if (InY < 0 || InY >= G.Height)
            continue;
          for (int64_t KX = 0; KX < G.KernelW; ++KX) {
            int64_t InX = X * G.StrideW - G.PadW + KX;
            if (InX >= 0 && InX < G.Width)
              Chan[InY * G.Width + InX] += G0;
          }
        }
      }
    }
  }
}
