//===- kernels/im2col.cpp -------------------------------------*- C++ -*-===//

#include "kernels/im2col.h"

#include <cassert>

using namespace latte;
using namespace latte::kernels;

void kernels::im2col(const float *Image, const ConvGeometry &G, float *Col) {
  im2colRows(Image, G, Col, 0, G.outH());
}

void kernels::im2colRows(const float *Image, const ConvGeometry &G,
                         float *Col, int64_t RowBegin, int64_t RowCount) {
  const int64_t OutH = G.outH(), OutW = G.outW();
  assert(OutH > 0 && OutW > 0 && "convolution output must be non-empty");
  assert(RowBegin >= 0 && RowBegin + RowCount <= OutH &&
         "im2col row range out of bounds");
  int64_t Row = 0;
  for (int64_t C = 0; C < G.Channels; ++C) {
    for (int64_t KY = 0; KY < G.KernelH; ++KY) {
      for (int64_t KX = 0; KX < G.KernelW; ++KX, ++Row) {
        float *ColRow = Col + Row * (OutH * OutW);
        const float *Chan = Image + C * G.Height * G.Width;
        for (int64_t Y = RowBegin; Y < RowBegin + RowCount; ++Y) {
          int64_t InY = Y * G.StrideH - G.PadH + KY;
          if (InY < 0 || InY >= G.Height) {
            for (int64_t X = 0; X < OutW; ++X)
              ColRow[Y * OutW + X] = 0.0f;
            continue;
          }
          for (int64_t X = 0; X < OutW; ++X) {
            int64_t InX = X * G.StrideW - G.PadW + KX;
            ColRow[Y * OutW + X] = (InX >= 0 && InX < G.Width)
                                       ? Chan[InY * G.Width + InX]
                                       : 0.0f;
          }
        }
      }
    }
  }
}

void kernels::col2im(const float *Col, const ConvGeometry &G, float *Image) {
  col2imRows(Col, G, Image, 0, G.outH());
}

void kernels::col2imRows(const float *Col, const ConvGeometry &G,
                         float *Image, int64_t RowBegin, int64_t RowCount) {
  const int64_t OutH = G.outH(), OutW = G.outW();
  int64_t Row = 0;
  for (int64_t C = 0; C < G.Channels; ++C) {
    for (int64_t KY = 0; KY < G.KernelH; ++KY) {
      for (int64_t KX = 0; KX < G.KernelW; ++KX, ++Row) {
        const float *ColRow = Col + Row * (OutH * OutW);
        float *Chan = Image + C * G.Height * G.Width;
        for (int64_t Y = RowBegin; Y < RowBegin + RowCount; ++Y) {
          int64_t InY = Y * G.StrideH - G.PadH + KY;
          if (InY < 0 || InY >= G.Height)
            continue;
          for (int64_t X = 0; X < OutW; ++X) {
            int64_t InX = X * G.StrideW - G.PadW + KX;
            if (InX >= 0 && InX < G.Width)
              Chan[InY * G.Width + InX] += ColRow[Y * OutW + X];
          }
        }
      }
    }
  }
}
