//===- verify/gradcheck.h - Finite-difference gradient checking -*- C++ -*-===//
///
/// \file
/// Library-grade finite-difference gradient checking, promoted from the
/// ad-hoc loops the early tests carried around. Given an Executor whose
/// inputs and labels are already set, gradCheck compares every parameter
/// gradient (and the data gradient) produced by the compiled backward pass
/// against central differences of the loss, and reports each divergent
/// element by buffer name and index.
///
/// Preconditions: the program must have a loss ensemble, and the executor
/// should run with ExecOptions::Deterministic so repeated forward passes
/// are bitwise reproducible (dropout masks in particular).
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_VERIFY_GRADCHECK_H
#define LATTE_VERIFY_GRADCHECK_H

#include "engine/executor.h"

#include <cstdint>
#include <string>
#include <vector>

namespace latte {
namespace verify {

struct GradCheckOptions {
  /// Central-difference step. Loss is float32 end to end, so this cannot
  /// be driven arbitrarily small; 1e-2 balances truncation against
  /// round-off for the unit-variance inputs the tests use.
  float Eps = 1e-2f;
  /// An element passes when |analytic - numeric| <=
  /// AbsTol + RelTol * max(|analytic|, |numeric|).
  double AbsTol = 2e-3;
  double RelTol = 2e-2;
  /// Elements are strided so at most this many are checked per buffer
  /// (every forward costs a full network evaluation).
  int64_t MaxChecksPerBuffer = 6;
  bool CheckParamGrads = true;
  bool CheckDataGrad = true;
  /// Not used by the checker itself; echoed in failure summaries so a
  /// failing fuzz case prints everything needed to reproduce it.
  uint64_t Seed = 0;
};

struct GradCheckFailure {
  std::string Buffer; ///< gradient buffer name (e.g. "conv_grad_weights")
  int64_t Index = 0;  ///< linear element index within the buffer
  double Analytic = 0.0;
  double Numeric = 0.0;
};

struct GradCheckReport {
  bool Passed = true;
  int64_t NumChecked = 0;
  std::vector<GradCheckFailure> Failures;
  uint64_t Seed = 0;
  /// Non-empty when the program could not be checked at all (e.g. an
  /// inference-compiled program with no backward pass); Passed is false and
  /// NumChecked is 0 in that case.
  std::string Diagnostic;

  /// One-line pass summary, or a per-failure listing with the seed needed
  /// to reproduce.
  std::string summary() const;
};

/// Checks all parameter gradients (via the program's solver bindings) and
/// the data-ensemble gradient of \p Ex against central differences of the
/// loss. The executor's parameters and buffers are restored afterwards and
/// a final forward/backward leaves it in a consistent state.
GradCheckReport gradCheck(engine::Executor &Ex,
                          const GradCheckOptions &Opts = {});

} // namespace verify
} // namespace latte

#endif // LATTE_VERIFY_GRADCHECK_H
