//===- verify/gradcheck.cpp -----------------------------------*- C++ -*-===//

#include "verify/gradcheck.h"

#include "support/error.h"

#include <cmath>
#include <sstream>
#include <vector>

using namespace latte;
using namespace latte::verify;
using namespace latte::compiler;

namespace {

/// Buffers to perturb: the value buffer whose elements are the independent
/// variables, and the gradient buffer holding the analytic derivative.
struct CheckTarget {
  std::string ValueBuffer;
  std::string GradBuffer;
};

} // namespace

std::string GradCheckReport::summary() const {
  std::ostringstream Os;
  if (!Diagnostic.empty())
    return "gradCheck REJECTED: " + Diagnostic;
  if (Passed) {
    Os << "gradCheck PASSED: " << NumChecked << " elements";
    if (Seed)
      Os << " (seed 0x" << std::hex << Seed << ")";
    return Os.str();
  }
  Os << "gradCheck FAILED (" << Failures.size() << " of " << NumChecked
     << " elements";
  if (Seed)
    Os << "; reproduce with seed 0x" << std::hex << Seed << std::dec;
  Os << "):\n";
  for (const GradCheckFailure &F : Failures)
    Os << "  " << F.Buffer << "[" << F.Index << "]: analytic=" << F.Analytic
       << " numeric=" << F.Numeric
       << " |diff|=" << std::fabs(F.Analytic - F.Numeric) << "\n";
  return Os.str();
}

GradCheckReport verify::gradCheck(engine::Executor &Ex,
                                  const GradCheckOptions &Opts) {
  const Program &Prog = Ex.program();
  // Inference-compiled programs have no backward tasks or gradient buffers
  // to check — running them through the finite-difference loop would call
  // Executor::backward() and die. Reject with a diagnostic report instead
  // of crashing (the serving runtime hands such programs around freely).
  if (Prog.Inference || !Prog.Backward) {
    GradCheckReport Report;
    Report.Passed = false;
    Report.Seed = Opts.Seed;
    Report.Diagnostic =
        "gradCheck: program is inference-compiled (no backward tasks or "
        "gradient buffers); recompile without CompileOptions::Inference "
        "to check gradients";
    return Report;
  }
  if (Prog.LossBuffer.empty())
    reportFatalError("gradCheck: program has no loss ensemble");

  // Capture the caller-set input before any forward pass: an in-place
  // activation on the data ensemble overwrites the data buffer during
  // forward, so it must be restored before every re-evaluation.
  Tensor Input;
  if (!Prog.DataBuffer.empty())
    Input = Ex.readBuffer(Prog.DataBuffer);

  std::string DataGradBuffer;
  if (Opts.CheckDataGrad && !Prog.DataBuffer.empty()) {
    const std::string Suffix = "_value";
    if (Prog.DataBuffer.size() > Suffix.size() &&
        Prog.DataBuffer.compare(Prog.DataBuffer.size() - Suffix.size(),
                                Suffix.size(), Suffix) == 0) {
      std::string Candidate =
          Prog.DataBuffer.substr(0, Prog.DataBuffer.size() - Suffix.size()) +
          "_grad";
      if (Prog.findBuffer(Candidate))
        DataGradBuffer = Candidate;
    }
  }

  auto LossAfterWrite = [&](const std::string &Buffer, const Tensor &T) {
    if (!Input.empty() && Buffer != Prog.DataBuffer)
      Ex.writeBuffer(Prog.DataBuffer, Input);
    Ex.writeBuffer(Buffer, T);
    Ex.forward();
    return Ex.lossValue();
  };

  // One analytic pass, then snapshot every gradient we intend to check.
  Ex.forward();
  Ex.backward();

  std::vector<CheckTarget> Targets;
  if (Opts.CheckParamGrads)
    for (const ParamBinding &B : Prog.Params)
      Targets.push_back({B.Param, B.Grad});
  if (!DataGradBuffer.empty())
    Targets.push_back({Prog.DataBuffer, DataGradBuffer});

  // Snapshot every analytic gradient NOW, before any numeric forward pass:
  // interval-planned gradients (the data gradient in particular) may share
  // arena bytes with forward-written buffers — sound for a full
  // forward+backward run, but a forward-only re-evaluation can overwrite
  // them, so a later read would see clobbered bytes instead of the
  // analytic result.
  std::vector<Tensor> Analytics;
  Analytics.reserve(Targets.size());
  for (const CheckTarget &T : Targets)
    Analytics.push_back(Ex.readBuffer(T.GradBuffer));

  GradCheckReport Report;
  Report.Seed = Opts.Seed;
  for (size_t TI = 0; TI < Targets.size(); ++TI) {
    const CheckTarget &T = Targets[TI];
    const Tensor &Analytic = Analytics[TI];
    // The data buffer was captured pre-forward; parameters are not written
    // by forward/backward, so reading them now is safe.
    Tensor Values = T.ValueBuffer == Prog.DataBuffer
                        ? Input
                        : Ex.readBuffer(T.ValueBuffer);
    int64_t N = Values.numElements();
    int64_t Step = std::max<int64_t>(1, N / Opts.MaxChecksPerBuffer);
    for (int64_t I = 0; I < N; I += Step) {
      float Orig = Values.at(I);
      Values.at(I) = Orig + Opts.Eps;
      double Plus = LossAfterWrite(T.ValueBuffer, Values);
      Values.at(I) = Orig - Opts.Eps;
      double Minus = LossAfterWrite(T.ValueBuffer, Values);
      Values.at(I) = Orig;
      Ex.writeBuffer(T.ValueBuffer, Values);

      double Numeric = (Plus - Minus) / (2.0 * Opts.Eps);
      double A = Analytic.at(I);
      ++Report.NumChecked;
      double Scale = std::max(std::fabs(A), std::fabs(Numeric));
      if (std::fabs(A - Numeric) > Opts.AbsTol + Opts.RelTol * Scale) {
        Report.Passed = false;
        Report.Failures.push_back({T.GradBuffer, I, A, Numeric});
      }
    }
  }

  // Leave the executor with gradients consistent with its buffers.
  if (!Input.empty())
    Ex.writeBuffer(Prog.DataBuffer, Input);
  Ex.forward();
  Ex.backward();
  return Report;
}
