//===- verify/random_net.cpp ----------------------------------*- C++ -*-===//

#include "verify/random_net.h"

#include "core/layers/attention.h"
#include "core/layers/layers.h"
#include "core/layers/recurrent.h"
#include "support/rng.h"

#include <sstream>

using namespace latte;
using namespace latte::verify;
using namespace latte::core;
using namespace latte::layers;

namespace {

const NeuronType *scaledTanhType(Net &Net) {
  if (const NeuronType *T = Net.findType("ScaledTanhNeuron"))
    return T;
  using namespace core::dsl;
  using namespace ir;
  std::vector<FieldSpec> Fields = {
      {"gain", Shape{1}, /*IsParam=*/true, /*HasGrad=*/true, 1.0f},
  };
  // value = gain * tanh(in). The backward recomputes tanh(in) instead of
  // declaring a local so the body stays a pure expression tree.
  NeuronBodyFn Fwd = [](const NeuronContext &) {
    return setValue(mul(field("gain", indexList(intConst(0))),
                        ir::tanh(input(0, intConst(0)))));
  };
  NeuronBodyFn Bwd = [](const NeuronContext &) {
    std::vector<StmtPtr> Stmts;
    // d/din = gain * (1 - tanh(in)^2)
    Stmts.push_back(accumGradInput(
        0, intConst(0),
        mul(grad(),
            mul(field("gain", indexList(intConst(0))),
                sub(floatConst(1.0),
                    mul(ir::tanh(input(0, intConst(0))),
                        ir::tanh(input(0, intConst(0)))))))));
    // d/dgain = tanh(in)
    Stmts.push_back(accumField("grad_gain", indexList(intConst(0)),
                               mul(grad(),
                                   ir::tanh(input(0, intConst(0))))));
    return block(std::move(Stmts));
  };
  return Net.registerType(NeuronType("ScaledTanhNeuron", std::move(Fields),
                                     std::move(Fwd), std::move(Bwd)));
}

} // namespace

Ensemble *verify::ScaledTanhLayer(Net &Net, const std::string &Name,
                                  Ensemble *Input) {
  const NeuronType *T = scaledTanhType(Net);
  Ensemble *E = Net.addEnsemble(Name, Input->dims(), T);
  FieldStorage Gain;
  Gain.StorageDims = Shape{1};
  Gain.ElemDims = Shape{1};
  Gain.Map = [](const std::vector<int64_t> &) {
    return std::vector<int64_t>{0};
  };
  Gain.Init = FieldInitKind::Constant;
  Gain.InitValue = 0.75f;
  E->setFieldStorage("gain", std::move(Gain));
  Net.addConnections(Input, E, oneToOneMapping());
  return E;
}

int64_t verify::randomNetClasses(uint64_t Seed, const RandomNetOptions &) {
  Rng R(Seed ^ 0xc1a55e5);
  return 2 + R.uniformInt(3);
}

std::string verify::randomNet(Net &Net, uint64_t Seed,
                              const RandomNetOptions &O) {
  Rng R(Seed ^ 0x5eedf00d);
  int64_t Classes = randomNetClasses(Seed, O);
  std::ostringstream Desc;
  Desc << "randomNet(seed=0x" << std::hex << Seed << std::dec << "): ";

  int Id = 0;
  auto Name = [&](const char *Base) {
    return std::string(Base) + "_" + std::to_string(Id++);
  };

  bool Image = R.uniform() < 0.5;
  Ensemble *Cur;
  if (Image) {
    int64_t C = 1 + R.uniformInt(3);
    int64_t H = 5 + R.uniformInt(4);
    Cur = DataLayer(Net, "data", Shape{C, H, H});
  } else {
    int64_t F = 4 + R.uniformInt(9);
    Cur = DataLayer(Net, "data", Shape{F});
  }
  Desc << "data" << Cur->dims().str();

  // Exact zeros (ReLU, dropout) survive injective elementwise maps and
  // create argmax ties in max pooling, whose gradient routing legitimately
  // differs between the interpreted MaxNeuron (ties share the gradient)
  // and the matched kernel (first argmax wins). While ties are possible,
  // only average pooling is generated.
  bool TieRisk = false;

  auto Activation = [&]() {
    int Which = static_cast<int>(R.uniformInt(3));
    bool InPlace = R.uniform() < 0.5;
    const char *Tag = Which == 0 ? "relu" : Which == 1 ? "sigmoid" : "tanh";
    std::string N = Name(Tag);
    if (Which == 0) {
      Cur = ReluLayer(Net, N, Cur, InPlace);
      TieRisk = true;
    } else if (Which == 1) {
      Cur = SigmoidLayer(Net, N, Cur, InPlace);
    } else {
      Cur = TanhLayer(Net, N, Cur, InPlace);
    }
    Desc << " -> " << Tag << (InPlace ? "(inplace)" : "");
  };

  int Blocks =
      O.MinBlocks + static_cast<int>(R.uniformInt(O.MaxBlocks - O.MinBlocks + 1));
  for (int B = 0; B < Blocks; ++B) {
    if (Image) {
      const Shape &D = Cur->dims();
      int64_t H = D.dim(1);
      switch (R.uniformInt(8)) {
      case 0:
      case 1: { // convolution (shared filter fields)
        int64_t Filters = 2 + R.uniformInt(3);
        int64_t Kernel = 1 + R.uniformInt(3);
        int64_t Stride = 1 + R.uniformInt(2);
        int64_t Pad = Kernel > 1 ? R.uniformInt(2) : 0;
        int64_t Out = (H + 2 * Pad - Kernel) / Stride + 1;
        if (Out < 2) {
          Activation();
          break;
        }
        Cur = ConvolutionLayer(Net, Name("conv"), Cur, Filters, Kernel,
                               Stride, Pad);
        TieRisk = false;
        Desc << " -> conv(k" << Kernel << ",s" << Stride << ",p" << Pad
             << ")" << Cur->dims().str();
        break;
      }
      case 2: { // pooling
        int64_t Kernel = 2 + R.uniformInt(2);
        int64_t Stride = 2;
        int64_t Out = (H - Kernel) / Stride + 1;
        if (Out < 1) {
          Activation();
          break;
        }
        // Max pooling only when no upstream op manufactured exact ties;
        // pad stays 0 for max pooling (the interpreted MaxNeuron reads
        // out-of-bounds as 0.0, the kernel skips padding entirely).
        bool Max = !TieRisk && R.uniform() < 0.5;
        if (Max) {
          Cur = MaxPoolingLayer(Net, Name("maxpool"), Cur, Kernel, Stride);
        } else {
          Cur = AvgPoolingLayer(Net, Name("avgpool"), Cur, Kernel, Stride);
          TieRisk = false;
        }
        Desc << " -> " << (Max ? "maxpool" : "avgpool") << "(k" << Kernel
             << ",s" << Stride << ")" << Cur->dims().str();
        break;
      }
      case 3:
        Activation();
        break;
      case 4:
        Cur = PReluLayer(Net, Name("prelu"), Cur);
        Desc << " -> prelu";
        break;
      case 5:
        if (O.AllowDropout) {
          double Keep = 0.5 + 0.4 * R.uniform();
          Cur = DropoutLayer(Net, Name("drop"), Cur, Keep);
          TieRisk = true;
          Desc << " -> dropout(" << Keep << ")";
        } else {
          Activation();
        }
        break;
      case 6:
        if (O.AllowCustom) {
          Cur = ScaledTanhLayer(Net, Name("stanh"), Cur);
          Desc << " -> scaledtanh";
        } else {
          Activation();
        }
        break;
      case 7: { // flatten into FC, switch to flat mode
        int64_t Outs = 4 + R.uniformInt(6);
        Cur = FullyConnectedLayer(Net, Name("fc"), Cur, Outs);
        TieRisk = false;
        Image = false;
        Desc << " -> fc(" << Outs << ")";
        break;
      }
      }
    } else {
      switch (R.uniformInt(10)) {
      case 0:
      case 1: { // fully connected (unshared fields)
        int64_t Outs = 3 + R.uniformInt(8);
        Cur = FullyConnectedLayer(Net, Name("fc"), Cur, Outs);
        TieRisk = false;
        Desc << " -> fc(" << Outs << ")";
        break;
      }
      case 2:
        Activation();
        break;
      case 3:
        Cur = PReluLayer(Net, Name("prelu"), Cur);
        Desc << " -> prelu";
        break;
      case 4:
        if (O.AllowDropout) {
          double Keep = 0.5 + 0.4 * R.uniform();
          Cur = DropoutLayer(Net, Name("drop"), Cur, Keep);
          TieRisk = true;
          Desc << " -> dropout(" << Keep << ")";
        } else {
          Activation();
        }
        break;
      case 5:
        if (O.AllowCustom) {
          Cur = ScaledTanhLayer(Net, Name("stanh"), Cur);
          Desc << " -> scaledtanh";
        } else {
          Activation();
        }
        break;
      case 6:
        if (O.AllowBranches) { // two-branch elementwise block
          int64_t K = 3 + R.uniformInt(6);
          Ensemble *A = FullyConnectedLayer(Net, Name("bra"), Cur, K);
          Ensemble *Bb = FullyConnectedLayer(Net, Name("brb"), Cur, K);
          int Op = static_cast<int>(R.uniformInt(3));
          if (Op == 0)
            Cur = AddLayer(Net, Name("add"), {A, Bb});
          else if (Op == 1)
            Cur = MulLayer(Net, Name("mul"), A, Bb);
          else
            Cur = SubLayer(Net, Name("sub"), A, Bb);
          TieRisk = false;
          Desc << " -> branch(" << K << ","
               << (Op == 0 ? "add" : Op == 1 ? "mul" : "sub") << ")";
        } else {
          Activation();
        }
        break;
      case 7:
        if (O.AllowSharedFc && Cur->numNeurons() <= 12) {
          // Weight tying: two stacked FCs sharing one parameter set.
          int64_t N = Cur->numNeurons();
          std::string Owner = Name("tied");
          Ensemble *A = FullyConnectedLayer(Net, Owner, Cur, N);
          Cur = FullyConnectedLayerShared(Net, Name("tied"), A, N, Owner);
          TieRisk = false;
          Desc << " -> tied-fc(" << N << ")x2";
        } else {
          Activation();
        }
        break;
      case 8:
        if (O.AllowRecurrent && Cur->dims().rank() == 1) {
          // Broadcast the activation into a short sequence and run an
          // unrolled recurrent cell over it: tied gate weights across
          // timesteps, BPTT accumulation through the whole chain.
          int T = 2 + static_cast<int>(R.uniformInt(2));
          int64_t Hidden = 3 + R.uniformInt(3);
          bool Gru = R.uniform() < 0.5;
          std::string Base = Name(Gru ? "gru" : "lstm");
          Ensemble *Seq = StackLayer(Net, Base + "_seq", Cur, T);
          std::vector<Ensemble *> Xs;
          for (int S = 0; S < T; ++S)
            Xs.push_back(
                SliceLayer(Net, Base + "_x" + std::to_string(S), Seq, S));
          RecurrentOutputs RO = Gru ? GruLayer(Net, Base, Xs, Hidden)
                                    : LstmLayer(Net, Base, Xs, Hidden);
          Cur = RO.Hidden.back();
          TieRisk = false;
          Desc << " -> " << (Gru ? "gru" : "lstm") << "(t" << T << ",h"
               << Hidden << ")";
        } else {
          Activation();
        }
        break;
      case 9:
        if (O.AllowAttention && Cur->dims().rank() == 1) {
          // Single-head attention over a broadcast sequence: shared Q/K/V
          // projections, dot-product scores, softmax over keys, readout.
          int64_t T = 2 + R.uniformInt(2);
          int64_t D = 2 + R.uniformInt(3);
          std::string Base = Name("attn");
          Ensemble *Seq = StackLayer(Net, Base + "_seq", Cur, T);
          Cur = AttentionLayer(Net, Base, Seq, D);
          TieRisk = false;
          Desc << " -> attention(t" << T << ",d" << D << ")";
        } else {
          Activation();
        }
        break;
      }
    }
  }

  // Classifier head. Works from image shapes too (FC flattens).
  Ensemble *Logits = FullyConnectedLayer(Net, Name("logits"), Cur, Classes);
  Ensemble *Labels = LabelLayer(Net, "labels");
  SoftmaxLossLayer(Net, "loss", Logits, Labels);
  Desc << " -> logits(" << Classes << ") -> softmaxloss";
  return Desc.str();
}
