//===- verify/random_net.h - Seeded random network generation -*- C++ -*-===//
///
/// \file
/// A seeded generator of randomized ensemble graphs for fuzzing the
/// compiler: conv / pooling / FC / activation / dropout / elementwise /
/// recurrent (unrolled LSTM/GRU) / attention blocks with randomized
/// shapes, strides and pads, shared (convolution filters, tied FC and
/// recurrent gate weights, per-ensemble scalars) and unshared fields,
/// plus a custom neuron type no pattern matcher recognizes — so the
/// optimization-lattice oracle exercises compiler paths (interpreted SoA
/// loops, partial matches, odd geometries) that hand-written tests never
/// reach. Every net ends in a softmax cross-entropy loss so gradients are
/// well-defined end to end.
///
/// The same seed always produces the same graph; failure reports print the
/// seed, which is all that is needed to rebuild the failing net.
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_VERIFY_RANDOM_NET_H
#define LATTE_VERIFY_RANDOM_NET_H

#include "core/graph.h"

#include <cstdint>
#include <string>

namespace latte {
namespace verify {

struct RandomNetOptions {
  int MinBlocks = 2;
  int MaxBlocks = 5;
  bool AllowDropout = true;
  /// Custom (pattern-matcher-opaque, interpreted) neuron ensembles.
  bool AllowCustom = true;
  /// Two-branch elementwise Add/Mul/Sub blocks.
  bool AllowBranches = true;
  /// Cross-ensemble weight tying (FullyConnectedLayerShared).
  bool AllowSharedFc = true;
  /// Unrolled shared-weight LSTM/GRU blocks over a broadcast sequence.
  bool AllowRecurrent = true;
  /// Single-head scaled dot-product attention blocks.
  bool AllowAttention = true;
};

/// A custom neuron layer the standard library does not know about:
/// value = gain * tanh(input), with a learnable scalar `gain` shared by
/// the whole ensemble. No pattern matches it, so it always lowers through
/// the interpreted SoA path — the fuzzer's stand-in for a
/// researcher-defined layer.
core::Ensemble *ScaledTanhLayer(core::Net &Net, const std::string &Name,
                                core::Ensemble *Input);

/// Assembles a random network on \p Net (whose batch size the caller
/// chose), ending in an FC classifier + "labels" ensemble + "loss"
/// SoftmaxLoss. The data ensemble is named "data". Returns a printable
/// one-line description of the generated architecture.
std::string randomNet(core::Net &Net, uint64_t Seed,
                      const RandomNetOptions &Opts = {});

/// Number of classes of the generated classifier for \p Seed (needed to
/// draw valid random labels). Matches what randomNet(Seed) builds.
int64_t randomNetClasses(uint64_t Seed, const RandomNetOptions &Opts = {});

} // namespace verify
} // namespace latte

#endif // LATTE_VERIFY_RANDOM_NET_H
