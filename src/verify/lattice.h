//===- verify/lattice.h - Optimization-lattice differential oracle --------===//
///
/// \file
/// The differential oracle at the heart of the verification subsystem: one
/// core::Net is compiled under every combination of the CompileOptions
/// optimization switches (PatternMatchGemm, PatternMatchKernels, Tiling,
/// Fusion, Parallelize, VectorKernels, Recompute, Jit, SliceRotation —
/// 2^9 lattice points),
/// each variant runs the same seeded inputs/labels/parameters
/// deterministically, and
/// forward outputs plus all parameter gradients must agree with the
/// fully-unoptimized interpreter (mask 0) within tolerance. A failing
/// point reports the first divergent buffer by name with max-abs/rel
/// error, plus the flag set and seeds needed to reproduce it.
///
/// localizeDivergence() narrows a failing flag combination further: the
/// compiler's per-pass snapshots (compiler::compileStaged) are executed in
/// pipeline order and the first stage whose output diverges from the
/// baseline names the offending pass.
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_VERIFY_LATTICE_H
#define LATTE_VERIFY_LATTICE_H

#include "compiler/compiler.h"
#include "core/graph.h"

#include <cstdint>
#include <string>
#include <vector>

namespace latte {
namespace verify {

/// Number of swept switches; the lattice has 2^kNumLatticeSwitches points.
constexpr unsigned kNumLatticeSwitches = 9;

/// True when the deep verification tier is requested (LATTE_DEEP=1 in the
/// environment — set by the nightly CI pipeline). Deep-tier consumers
/// sweep all 2^kNumLatticeSwitches masks and run more epochs; the per-PR
/// tier covers a curated subset of equal cost to the pre-recompute
/// lattice.
bool deepTier();

/// The lattice masks to sweep at the current tier. Per-PR: the reference
/// point, the full Recompute-on sub-lattice (the shipping default), the
/// all-but-recompute point, three JIT probes (JIT alone, JIT over the
/// recompute default, everything-but-rotation), and three slice-rotation
/// probes (rotation alone, rotation over the recompute default,
/// everything on) — 72 masks, about the cost of the old 2^6 sweep. Deep
/// tier (LATTE_DEEP=1): all 2^kNumLatticeSwitches masks. Mask 0 (the
/// reference) is always first.
std::vector<unsigned> sweepMasks();

struct LatticeOptions {
  /// Elementwise agreement: |ref - got| <= AbsTol + RelTol * max(|ref|,
  /// |got|). Defaults absorb float32 reassociation noise (GEMM vs.
  /// interpreted dot products, tiled vs. whole-row accumulation) on the
  /// unit-variance data the harness feeds.
  float AbsTol = 2e-4f;
  float RelTol = 2e-3f;
  uint64_t ParamSeed = 0xA11CE;
  /// Seeds both the random input data and the engine (dropout masks).
  uint64_t DataSeed = 0xDA7A;
  /// Also run backward and compare every parameter gradient and the data
  /// gradient.
  bool CheckGradients = true;
  /// Applied to every lattice point; the defaults make the tiny nets the
  /// tests use actually exercise tiling (the production cost-model default
  /// of MinRowsToTile=32 would leave them untiled).
  int64_t TileSize = 4;
  int64_t MinRowsToTile = 2;
  /// Run the static verifier (analyze::verifyProgram) on every lattice
  /// point's compilation; an Error diagnostic aborts, so a passing lattice
  /// run doubles as a zero-false-positive proof for the verifier.
  bool VerifyEach = false;
};

/// Where a lattice point first disagreed with the reference.
struct BufferDivergence {
  std::string Buffer;
  int64_t Index = -1; ///< first out-of-tolerance element
  float Ref = 0.0f;
  float Got = 0.0f;
  double MaxAbsErr = 0.0; ///< over the whole buffer
  double MaxRelErr = 0.0;
};

struct LatticePointResult {
  unsigned Mask = 0;
  compiler::CompileOptions Opts;
  bool Passed = true;
  BufferDivergence First; ///< meaningful when !Passed
};

struct LatticeReport {
  bool Passed = true;
  int PointsRun = 0;
  int64_t BuffersCompared = 0; ///< per point
  std::string NetDescription;
  uint64_t ParamSeed = 0;
  uint64_t DataSeed = 0;
  std::vector<LatticePointResult> Failures;

  /// Pass/fail overview; on failure, one line per failing point with the
  /// flag string, divergent buffer, errors, and reproduction seeds.
  std::string summary() const;
};

/// Decodes a lattice point: bit 0 = PatternMatchGemm, 1 =
/// PatternMatchKernels, 2 = Tiling, 3 = Fusion, 4 = Parallelize, 5 =
/// VectorKernels, 6 = Recompute, 7 = Jit, 8 = SliceRotation. Tile
/// geometry comes from \p O.
compiler::CompileOptions optionsForMask(unsigned Mask,
                                        const LatticeOptions &O = {});

/// Renders options as "gemm=1 kernels=0 tiling=1 fusion=0 parallel=0
/// vector=1 recompute=0 jit=0 rotate=0" for failure messages.
std::string flagString(const compiler::CompileOptions &Opts);

/// Runs the full lattice over \p Net. The net must end in a loss ensemble
/// when CheckGradients is set. \p NetDescription is echoed in the report
/// (pass randomNet's return value here).
LatticeReport runLattice(const core::Net &Net, const LatticeOptions &O = {},
                         const std::string &NetDescription = "");

/// Result of per-pass divergence localization.
struct StageDivergence {
  bool Found = false;
  std::string Stage; ///< first diverging pipeline stage ("+tiling", ...)
  BufferDivergence Divergence;
};

/// Executes the per-pass snapshots of compiling \p Net under \p BadOpts
/// (compiler::compileStaged) and returns the first stage whose outputs
/// diverge from the unoptimized baseline beyond \p O's tolerances.
StageDivergence localizeDivergence(const core::Net &Net,
                                   const compiler::CompileOptions &BadOpts,
                                   const LatticeOptions &O = {});

} // namespace verify
} // namespace latte

#endif // LATTE_VERIFY_LATTICE_H
