//===- verify/lattice.cpp -------------------------------------*- C++ -*-===//

#include "verify/lattice.h"

#include "engine/executor.h"
#include "support/error.h"
#include "support/rng.h"

#include <cmath>
#include <cstdlib>
#include <optional>
#include <sstream>

using namespace latte;
using namespace latte::verify;
using namespace latte::compiler;
using namespace latte::engine;

namespace {

/// The buffers a comparison covers: every ensemble value, every parameter
/// gradient, every ensemble gradient, and the loss vector. Input-gather and
/// scratch buffers are variant-specific (a GEMM-matched layer materializes
/// im2col windows the interpreter never allocates) and are skipped.
std::vector<std::string> comparisonBuffers(const Program &Prog,
                                           bool CheckGradients) {
  std::vector<std::string> Names;
  for (const BufferInfo &B : Prog.Buffers) {
    bool Take = B.Role == BufferRole::Value;
    if (CheckGradients)
      Take |= B.Role == BufferRole::ParamGrad || B.Role == BufferRole::Grad;
    if (Take)
      Names.push_back(B.Name);
  }
  if (!Prog.LossBuffer.empty())
    Names.push_back(Prog.LossBuffer);
  return Names;
}

ExecOptions execOptionsFor(const CompileOptions &Opts, uint64_t EngineSeed) {
  ExecOptions E;
  E.VectorKernels = Opts.VectorKernels;
  E.Parallel = Opts.Parallelize;
  E.LossyGradients = false;
  E.Deterministic = true;
  // The oracle inspects every Value/Grad/ParamGrad buffer after the run;
  // interval-allocated gradients' bytes are legitimately reused under the
  // memory plan, so verification keeps the eager per-buffer layout (full
  // observability). The plan itself is proven equivalent by the dedicated
  // planned-vs-eager differential suite.
  E.NoMemPlan = true;
  E.Seed = EngineSeed;
  return E;
}

/// Runs one compiled variant on the shared inputs. Returns the executor so
/// the caller can read buffers.
std::unique_ptr<Executor> runVariant(Program Prog, const CompileOptions &Opts,
                                     const LatticeOptions &O,
                                     const Tensor &Input,
                                     const Tensor &Labels,
                                     bool CheckGradients) {
  auto Ex = std::make_unique<Executor>(std::move(Prog),
                                       execOptionsFor(Opts, O.DataSeed));
  Ex->initParams(O.ParamSeed);
  if (!Input.empty())
    Ex->setInput(Input);
  if (!Labels.empty() && !Ex->program().LabelBuffer.empty())
    Ex->setLabels(Labels);
  Ex->forward();
  if (CheckGradients)
    Ex->backward();
  return Ex;
}

/// Compares \p Names between the two executors; returns the first divergent
/// buffer, or nullopt when everything agrees.
std::optional<BufferDivergence>
firstDivergence(const Executor &Ref, const Executor &Got,
                const std::vector<std::string> &Names, float AbsTol,
                float RelTol) {
  for (const std::string &Name : Names) {
    if (!Got.program().findBuffer(Name)) {
      BufferDivergence D;
      D.Buffer = Name + " (missing in optimized program)";
      return D;
    }
    Tensor R = Ref.readBuffer(Name);
    Tensor G = Got.readBuffer(Name);
    if (R.numElements() != G.numElements()) {
      BufferDivergence D;
      D.Buffer = Name + " (element count mismatch)";
      return D;
    }
    BufferDivergence D;
    D.Buffer = Name;
    bool Diverged = false;
    for (int64_t I = 0; I < R.numElements(); ++I) {
      double Abs = std::fabs(static_cast<double>(R.at(I)) - G.at(I));
      double Scale = std::max(std::fabs(R.at(I)), std::fabs(G.at(I)));
      D.MaxAbsErr = std::max(D.MaxAbsErr, Abs);
      if (Scale > 0)
        D.MaxRelErr = std::max(D.MaxRelErr, Abs / Scale);
      if (!Diverged && Abs > AbsTol + RelTol * Scale) {
        Diverged = true;
        D.Index = I;
        D.Ref = R.at(I);
        D.Got = G.at(I);
      }
    }
    if (Diverged)
      return D;
  }
  return std::nullopt;
}

/// Draws the shared input/label tensors from the reference program.
void makeInputs(const Program &Prog, const LatticeOptions &O, Tensor &Input,
                Tensor &Labels) {
  Rng R(O.DataSeed ^ 0x1a77ce);
  if (const BufferInfo *B = Prog.findBuffer(Prog.DataBuffer)) {
    Input = Tensor(B->Dims);
    R.fillGaussian(Input, 0.0f, 1.0f);
  }
  if (const BufferInfo *B = Prog.findBuffer(Prog.LabelBuffer)) {
    Labels = Tensor(B->Dims);
    int64_t Classes = 2;
    if (const BufferInfo *P = Prog.findBuffer(Prog.ProbBuffer))
      Classes = P->Dims.dim(P->Dims.rank() - 1);
    for (int64_t I = 0; I < Labels.numElements(); ++I)
      Labels.at(I) = static_cast<float>(R.uniformInt(Classes));
  }
}

} // namespace

bool verify::deepTier() {
  const char *Env = std::getenv("LATTE_DEEP");
  return Env && Env[0] != '0';
}

std::vector<unsigned> verify::sweepMasks() {
  std::vector<unsigned> Masks;
  Masks.push_back(0); // the reference point, always first
  if (deepTier()) {
    for (unsigned M = 1; M < (1u << kNumLatticeSwitches); ++M)
      Masks.push_back(M);
    return Masks;
  }
  // Per-PR tier: the full Recompute-on sub-lattice (the shipping default
  // for every switch combination underneath it) plus the everything-but-
  // recompute point — 66 masks, about the cost of the old 2^6 sweep —
  // three JIT probes (JIT alone, JIT over the recompute default,
  // everything but rotation), and three slice-rotation probes (rotation
  // alone, rotation over the recompute default, everything on). The full
  // JIT and rotation sub-lattices are deep-tier only; the dedicated
  // jit_diff_test sweeps all 64 base masks per PR.
  for (unsigned M = 64; M < 128; ++M)
    Masks.push_back(M);
  Masks.push_back(0x3f);
  Masks.push_back(0x80);
  Masks.push_back(0xC0);
  Masks.push_back(0xFF);
  Masks.push_back(0x100);
  Masks.push_back(0x140);
  Masks.push_back(0x1FF);
  return Masks;
}

CompileOptions verify::optionsForMask(unsigned Mask,
                                      const LatticeOptions &O) {
  assert(Mask < (1u << kNumLatticeSwitches) && "mask out of lattice range");
  CompileOptions C;
  C.PatternMatchGemm = (Mask & 1u) != 0;
  C.PatternMatchKernels = (Mask & 2u) != 0;
  C.Tiling = (Mask & 4u) != 0;
  C.Fusion = (Mask & 8u) != 0;
  C.Parallelize = (Mask & 16u) != 0;
  C.VectorKernels = (Mask & 32u) != 0;
  C.Recompute = (Mask & 64u) != 0;
  C.Jit = (Mask & 128u) != 0;
  C.SliceRotation = (Mask & 256u) != 0;
  C.TileSize = O.TileSize;
  C.MinRowsToTile = O.MinRowsToTile;
  C.VerifyEach = O.VerifyEach;
  return C;
}

std::string verify::flagString(const CompileOptions &Opts) {
  std::ostringstream Os;
  Os << "gemm=" << Opts.PatternMatchGemm
     << " kernels=" << Opts.PatternMatchKernels << " tiling=" << Opts.Tiling
     << " fusion=" << Opts.Fusion << " parallel=" << Opts.Parallelize
     << " vector=" << Opts.VectorKernels << " recompute=" << Opts.Recompute
     << " jit=" << Opts.Jit << " rotate=" << Opts.SliceRotation;
  return Os.str();
}

std::string LatticeReport::summary() const {
  std::ostringstream Os;
  Os << "lattice oracle: " << (Passed ? "PASSED" : "FAILED") << ", "
     << PointsRun << " points x " << BuffersCompared << " buffers";
  if (!NetDescription.empty())
    Os << "\n  net: " << NetDescription;
  Os << "\n  seeds: params=0x" << std::hex << ParamSeed << " data=0x"
     << DataSeed << std::dec;
  for (const LatticePointResult &F : Failures) {
    Os << "\n  FAIL [mask 0x" << std::hex << F.Mask << std::dec << ": "
       << flagString(F.Opts) << "] first divergent buffer '"
       << F.First.Buffer << "'";
    if (F.First.Index >= 0)
      Os << " at [" << F.First.Index << "] ref=" << F.First.Ref
         << " got=" << F.First.Got;
    Os << " maxAbsErr=" << F.First.MaxAbsErr
       << " maxRelErr=" << F.First.MaxRelErr
       << "; reproduce: compile(net, verify::optionsForMask(0x" << std::hex
       << F.Mask << std::dec << ")) with the seeds above";
  }
  return Os.str();
}

LatticeReport verify::runLattice(const core::Net &Net,
                                 const LatticeOptions &O,
                                 const std::string &NetDescription) {
  LatticeReport Report;
  Report.NetDescription = NetDescription;
  Report.ParamSeed = O.ParamSeed;
  Report.DataSeed = O.DataSeed;

  // Reference: the fully-unoptimized interpreter (mask 0).
  CompileOptions RefOpts = optionsForMask(0, O);
  Program RefProg = compile(Net, RefOpts);
  bool CheckGradients = O.CheckGradients && !RefProg.LossBuffer.empty();
  std::vector<std::string> Names =
      comparisonBuffers(RefProg, CheckGradients);
  Report.BuffersCompared = static_cast<int64_t>(Names.size());

  Tensor Input, Labels;
  makeInputs(RefProg, O, Input, Labels);
  std::unique_ptr<Executor> Ref = runVariant(
      std::move(RefProg), RefOpts, O, Input, Labels, CheckGradients);
  ++Report.PointsRun;

  for (unsigned Mask : sweepMasks()) {
    if (Mask == 0)
      continue; // already run as the reference
    CompileOptions Opts = optionsForMask(Mask, O);
    std::unique_ptr<Executor> Got = runVariant(
        compile(Net, Opts), Opts, O, Input, Labels, CheckGradients);
    ++Report.PointsRun;
    if (std::optional<BufferDivergence> D =
            firstDivergence(*Ref, *Got, Names, O.AbsTol, O.RelTol)) {
      Report.Passed = false;
      LatticePointResult P;
      P.Mask = Mask;
      P.Opts = Opts;
      P.Passed = false;
      P.First = *D;
      Report.Failures.push_back(std::move(P));
    }
  }
  return Report;
}

StageDivergence verify::localizeDivergence(const core::Net &Net,
                                           const CompileOptions &BadOpts,
                                           const LatticeOptions &O) {
  CompileOptions Staged = BadOpts;
  Staged.TileSize = O.TileSize;
  Staged.MinRowsToTile = O.MinRowsToTile;
  std::vector<PassStage> Stages = compileStaged(Net, Staged);

  bool CheckGradients =
      O.CheckGradients && !Stages.front().Prog.LossBuffer.empty();
  std::vector<std::string> Names =
      comparisonBuffers(Stages.front().Prog, CheckGradients);
  Tensor Input, Labels;
  makeInputs(Stages.front().Prog, O, Input, Labels);

  StageDivergence Result;
  std::unique_ptr<Executor> Ref =
      runVariant(std::move(Stages.front().Prog), Stages.front().Opts, O,
                 Input, Labels, CheckGradients);
  for (size_t I = 1; I < Stages.size(); ++I) {
    std::unique_ptr<Executor> Got =
        runVariant(std::move(Stages[I].Prog), Stages[I].Opts, O, Input,
                   Labels, CheckGradients);
    if (std::optional<BufferDivergence> D =
            firstDivergence(*Ref, *Got, Names, O.AbsTol, O.RelTol)) {
      Result.Found = true;
      Result.Stage = Stages[I].Name;
      Result.Divergence = *D;
      return Result;
    }
  }
  return Result;
}
