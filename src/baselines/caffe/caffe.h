//===- baselines/caffe/caffe.h - Caffe-style layer library ----*- C++ -*-===//
///
/// \file
/// A faithful reimplementation of the architecture Latte is compared
/// against in the paper's evaluation (§7): a *layer-specific library*
/// framework in the style of Caffe. Each layer is a statically compiled
/// kernel over Blobs; convolution is lowered to im2col + GEMM (the
/// C++/MKL formulation); there is no cross-layer optimization by
/// construction — that is the architectural property the paper's speedups
/// come from.
///
/// The GEMM used here is the same library kernel Latte's pattern matcher
/// targets, mirroring the paper's setup where both systems call MKL.
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_BASELINES_CAFFE_CAFFE_H
#define LATTE_BASELINES_CAFFE_CAFFE_H

#include "kernels/im2col.h"
#include "support/rng.h"
#include "support/tensor.h"

#include <memory>
#include <string>
#include <vector>

namespace latte {
namespace caffe {

/// Data + gradient pair, batch-major (dim 0 is the batch).
struct Blob {
  Tensor Data;
  Tensor Grad;

  Blob() = default;
  explicit Blob(Shape S) : Data(S), Grad(std::move(S)) {}

  const Shape &shape() const { return Data.shape(); }
  int64_t count() const { return Data.numElements(); }
  /// Elements per batch item.
  int64_t itemCount() const { return count() / Data.shape().dim(0); }
};

/// Base layer: forward/backward over bottom/top blobs.
class Layer {
public:
  explicit Layer(std::string Name) : Name(std::move(Name)) {}
  virtual ~Layer();

  const std::string &name() const { return Name; }

  /// Shapes the top blob(s) from the bottom shapes and allocates internal
  /// buffers. Called once before the first forward.
  virtual void reshape(const std::vector<Blob *> &Bottom,
                       const std::vector<Blob *> &Top) = 0;
  virtual void forward(const std::vector<Blob *> &Bottom,
                       const std::vector<Blob *> &Top) = 0;
  /// Accumulates into bottom Grad and parameter Grad.
  virtual void backward(const std::vector<Blob *> &Bottom,
                        const std::vector<Blob *> &Top) = 0;

  std::vector<Blob> &params() { return Params; }
  const std::vector<Blob> &params() const { return Params; }

  /// Initializes learnable parameters.
  virtual void initParams(Rng &R) {}

  /// True for layers that run in place (top blob == bottom blob).
  virtual bool isInPlace() const { return false; }
  /// True for layers that take the label blob as a second bottom.
  virtual bool needsLabels() const { return false; }
  /// Softmax probabilities, when the layer computes them.
  virtual const Tensor *probabilitiesOrNull() const { return nullptr; }

protected:
  std::string Name;
  std::vector<Blob> Params;
};

/// Convolution via im2col + GEMM (Chetlur et al. formulation, which Caffe
/// uses). Params: [0] weights (F x C*K*K), [1] bias (F).
class ConvolutionLayer : public Layer {
public:
  ConvolutionLayer(std::string Name, int64_t NumFilters, int64_t Kernel,
                   int64_t Stride, int64_t Pad)
      : Layer(std::move(Name)), NumFilters(NumFilters), Kernel(Kernel),
        Stride(Stride), Pad(Pad) {}

  void reshape(const std::vector<Blob *> &Bottom,
               const std::vector<Blob *> &Top) override;
  void forward(const std::vector<Blob *> &Bottom,
               const std::vector<Blob *> &Top) override;
  void backward(const std::vector<Blob *> &Bottom,
                const std::vector<Blob *> &Top) override;
  void initParams(Rng &R) override;

private:
  int64_t NumFilters, Kernel, Stride, Pad;
  kernels::ConvGeometry Geom;
  Tensor ColBuffer; ///< im2col scratch, reused across items (static kernel)
};

/// Fully connected layer. Params: [0] weights (O x I), [1] bias (O).
class InnerProductLayer : public Layer {
public:
  InnerProductLayer(std::string Name, int64_t NumOutputs)
      : Layer(std::move(Name)), NumOutputs(NumOutputs) {}

  void reshape(const std::vector<Blob *> &Bottom,
               const std::vector<Blob *> &Top) override;
  void forward(const std::vector<Blob *> &Bottom,
               const std::vector<Blob *> &Top) override;
  void backward(const std::vector<Blob *> &Bottom,
                const std::vector<Blob *> &Top) override;
  void initParams(Rng &R) override;

private:
  int64_t NumOutputs;
  int64_t NumInputs = 0;
};

/// In-place ReLU.
class ReluLayer : public Layer {
public:
  explicit ReluLayer(std::string Name) : Layer(std::move(Name)) {}
  bool isInPlace() const override { return true; }
  void reshape(const std::vector<Blob *> &Bottom,
               const std::vector<Blob *> &Top) override;
  void forward(const std::vector<Blob *> &Bottom,
               const std::vector<Blob *> &Top) override;
  void backward(const std::vector<Blob *> &Bottom,
                const std::vector<Blob *> &Top) override;
};

/// Max or average pooling.
class PoolingLayer : public Layer {
public:
  enum class Mode { Max, Avg };
  PoolingLayer(std::string Name, Mode M, int64_t Kernel, int64_t Stride,
               int64_t Pad = 0)
      : Layer(std::move(Name)), M(M), Kernel(Kernel), Stride(Stride),
        Pad(Pad) {}

  void reshape(const std::vector<Blob *> &Bottom,
               const std::vector<Blob *> &Top) override;
  void forward(const std::vector<Blob *> &Bottom,
               const std::vector<Blob *> &Top) override;
  void backward(const std::vector<Blob *> &Bottom,
                const std::vector<Blob *> &Top) override;

private:
  Mode M;
  int64_t Kernel, Stride, Pad;
  kernels::ConvGeometry Geom;
  std::vector<int32_t> Mask; ///< argmax per output (max mode)
};

/// Fused softmax + cross-entropy loss. Bottom: {logits, labels}.
/// Top: {loss (scalar per batch mean)}. Also exposes probabilities.
class SoftmaxLossLayer : public Layer {
public:
  explicit SoftmaxLossLayer(std::string Name) : Layer(std::move(Name)) {}
  void reshape(const std::vector<Blob *> &Bottom,
               const std::vector<Blob *> &Top) override;
  void forward(const std::vector<Blob *> &Bottom,
               const std::vector<Blob *> &Top) override;
  void backward(const std::vector<Blob *> &Bottom,
                const std::vector<Blob *> &Top) override;

  const Tensor &probabilities() const { return Prob; }
  bool needsLabels() const override { return true; }
  const Tensor *probabilitiesOrNull() const override { return &Prob; }

private:
  Tensor Prob;
};

/// A sequential network of layers (sufficient for the evaluation models).
class CaffeNet {
public:
  explicit CaffeNet(int64_t BatchSize) : BatchSize(BatchSize) {}

  int64_t batchSize() const { return BatchSize; }

  /// Declares the input blob shape (per item).
  void setInputShape(Shape PerItem);
  /// Declares a label input (for nets ending in SoftmaxLossLayer).
  void enableLabels();

  /// Appends a layer; it consumes the previous layer's output.
  Layer *addLayer(std::unique_ptr<Layer> L);

  Blob &inputBlob() { return Blobs.front(); }
  Blob &labelBlob();
  Blob &outputBlob() { return Blobs.back(); }
  Blob &blob(size_t I) { return Blobs[I]; }
  size_t numBlobs() const { return Blobs.size(); }

  /// Allocates all blob shapes and initializes parameters.
  void setup(uint64_t Seed);

  void forward();
  void backward();

  double lossValue() const;
  double accuracy() const;

  const std::vector<std::unique_ptr<Layer>> &layers() const { return L; }

private:
  int64_t BatchSize;
  bool HasLabels = false;
  bool IsSetup = false;
  std::vector<std::unique_ptr<Layer>> L;
  std::vector<Blob> Blobs; ///< Blobs[0] = input; Blobs[i+1] = L[i] output
  Blob Labels;
};

} // namespace caffe
} // namespace latte

#endif // LATTE_BASELINES_CAFFE_CAFFE_H
