//===- baselines/caffe/caffe.cpp ------------------------------*- C++ -*-===//

#include "baselines/caffe/caffe.h"

#include "kernels/elementwise.h"
#include "kernels/gemm.h"
#include "kernels/pooling.h"
#include "kernels/softmax.h"
#include "support/error.h"

using namespace latte;
using namespace latte::caffe;

Layer::~Layer() = default;

//===----------------------------------------------------------------------===//
// ConvolutionLayer
//===----------------------------------------------------------------------===//

void ConvolutionLayer::reshape(const std::vector<Blob *> &Bottom,
                               const std::vector<Blob *> &Top) {
  const Shape &In = Bottom[0]->shape();
  assert(In.rank() == 4 && "conv bottom must be (batch, C, H, W)");
  Geom = kernels::ConvGeometry{In[1], In[2], In[3], Kernel, Kernel,
                               Stride,  Stride, Pad,   Pad};
  if (Geom.outH() <= 0 || Geom.outW() <= 0)
    reportFatalError("conv layer '" + Name + "' has empty output");
  *Top[0] = Blob(Shape{In[0], NumFilters, Geom.outH(), Geom.outW()});
  Params.clear();
  Params.emplace_back(Shape{NumFilters, Geom.colRows()});
  Params.emplace_back(Shape{NumFilters});
  ColBuffer = Tensor(Shape{Geom.colRows(), Geom.colCols()});
}

void ConvolutionLayer::initParams(Rng &R) {
  R.fillXavier(Params[0].Data, Geom.colRows());
  Params[1].Data.zero();
}

void ConvolutionLayer::forward(const std::vector<Blob *> &Bottom,
                               const std::vector<Blob *> &Top) {
  const int64_t B = Bottom[0]->shape()[0];
  const int64_t InItem = Bottom[0]->itemCount();
  const int64_t OutItem = Top[0]->itemCount();
  const int64_t M = NumFilters, N = Geom.colCols(), K = Geom.colRows();
  for (int64_t I = 0; I < B; ++I) {
    kernels::im2col(Bottom[0]->Data.data() + I * InItem, Geom,
                    ColBuffer.data());
    kernels::sgemm(false, false, M, N, K, Params[0].Data.data(), K,
                   ColBuffer.data(), N, Top[0]->Data.data() + I * OutItem, N,
                   /*Accumulate=*/false);
    float *Out = Top[0]->Data.data() + I * OutItem;
    for (int64_t F = 0; F < M; ++F)
      kernels::addScalar(Out + F * N, Params[1].Data.at(F), N);
  }
}

void ConvolutionLayer::backward(const std::vector<Blob *> &Bottom,
                                const std::vector<Blob *> &Top) {
  const int64_t B = Bottom[0]->shape()[0];
  const int64_t InItem = Bottom[0]->itemCount();
  const int64_t OutItem = Top[0]->itemCount();
  const int64_t M = NumFilters, N = Geom.colCols(), K = Geom.colRows();
  for (int64_t I = 0; I < B; ++I) {
    const float *OutGrad = Top[0]->Grad.data() + I * OutItem;
    // Weight gradient: gW += gOut * col(x)^T.
    kernels::im2col(Bottom[0]->Data.data() + I * InItem, Geom,
                    ColBuffer.data());
    kernels::sgemm(false, true, M, K, N, OutGrad, N, ColBuffer.data(), N,
                   Params[0].Grad.data(), K, /*Accumulate=*/true);
    // Bias gradient.
    for (int64_t F = 0; F < M; ++F)
      Params[1].Grad.at(F) += kernels::sum(OutGrad + F * N, N);
    // Input gradient: col grad = W^T * gOut, then col2im.
    kernels::sgemm(true, false, K, N, M, Params[0].Data.data(), K, OutGrad,
                   N, ColBuffer.data(), N, /*Accumulate=*/false);
    kernels::col2im(ColBuffer.data(), Geom,
                    Bottom[0]->Grad.data() + I * InItem);
  }
}

//===----------------------------------------------------------------------===//
// InnerProductLayer
//===----------------------------------------------------------------------===//

void InnerProductLayer::reshape(const std::vector<Blob *> &Bottom,
                                const std::vector<Blob *> &Top) {
  NumInputs = Bottom[0]->itemCount();
  *Top[0] = Blob(Shape{Bottom[0]->shape()[0], NumOutputs});
  Params.clear();
  Params.emplace_back(Shape{NumOutputs, NumInputs});
  Params.emplace_back(Shape{NumOutputs});
}

void InnerProductLayer::initParams(Rng &R) {
  R.fillXavier(Params[0].Data, NumInputs);
  Params[1].Data.zero();
}

void InnerProductLayer::forward(const std::vector<Blob *> &Bottom,
                                const std::vector<Blob *> &Top) {
  const int64_t B = Bottom[0]->shape()[0];
  kernels::sgemm(false, true, B, NumOutputs, NumInputs,
                 Bottom[0]->Data.data(), NumInputs, Params[0].Data.data(),
                 NumInputs, Top[0]->Data.data(), NumOutputs,
                 /*Accumulate=*/false);
  for (int64_t I = 0; I < B; ++I)
    kernels::addTo(Top[0]->Data.data() + I * NumOutputs,
                   Params[1].Data.data(), NumOutputs);
}

void InnerProductLayer::backward(const std::vector<Blob *> &Bottom,
                                 const std::vector<Blob *> &Top) {
  const int64_t B = Bottom[0]->shape()[0];
  // gW += gOut^T * x.
  kernels::sgemm(true, false, NumOutputs, NumInputs, B,
                 Top[0]->Grad.data(), NumOutputs, Bottom[0]->Data.data(),
                 NumInputs, Params[0].Grad.data(), NumInputs,
                 /*Accumulate=*/true);
  // gb += column sums of gOut.
  for (int64_t I = 0; I < B; ++I)
    kernels::addTo(Params[1].Grad.data(),
                   Top[0]->Grad.data() + I * NumOutputs, NumOutputs);
  // gx += gOut * W.
  kernels::sgemm(false, false, B, NumInputs, NumOutputs,
                 Top[0]->Grad.data(), NumOutputs, Params[0].Data.data(),
                 NumInputs, Bottom[0]->Grad.data(), NumInputs,
                 /*Accumulate=*/true);
}

//===----------------------------------------------------------------------===//
// ReluLayer (in place)
//===----------------------------------------------------------------------===//

void ReluLayer::reshape(const std::vector<Blob *> &Bottom,
                        const std::vector<Blob *> &Top) {
  assert(Bottom[0] == Top[0] && "caffe relu runs in place");
}

void ReluLayer::forward(const std::vector<Blob *> &Bottom,
                        const std::vector<Blob *> &Top) {
  kernels::reluFwd(Top[0]->Data.data(), Bottom[0]->Data.data(),
                   Bottom[0]->count());
}

void ReluLayer::backward(const std::vector<Blob *> &Bottom,
                         const std::vector<Blob *> &Top) {
  float *G = Bottom[0]->Grad.data();
  const float *V = Top[0]->Data.data();
  for (int64_t I = 0, E = Bottom[0]->count(); I < E; ++I)
    G[I] = V[I] > 0.0f ? G[I] : 0.0f;
}

//===----------------------------------------------------------------------===//
// PoolingLayer
//===----------------------------------------------------------------------===//

void PoolingLayer::reshape(const std::vector<Blob *> &Bottom,
                           const std::vector<Blob *> &Top) {
  const Shape &In = Bottom[0]->shape();
  assert(In.rank() == 4 && "pooling bottom must be (batch, C, H, W)");
  Geom = kernels::ConvGeometry{In[1], In[2], In[3], Kernel, Kernel,
                               Stride,  Stride, Pad,   Pad};
  *Top[0] = Blob(Shape{In[0], In[1], Geom.outH(), Geom.outW()});
  Mask.assign(static_cast<size_t>(Top[0]->count()), -1);
}

void PoolingLayer::forward(const std::vector<Blob *> &Bottom,
                           const std::vector<Blob *> &Top) {
  const int64_t B = Bottom[0]->shape()[0];
  const int64_t InItem = Bottom[0]->itemCount();
  const int64_t OutItem = Top[0]->itemCount();
  for (int64_t I = 0; I < B; ++I) {
    if (M == Mode::Max)
      kernels::maxPoolFwd(Bottom[0]->Data.data() + I * InItem, Geom,
                          Top[0]->Data.data() + I * OutItem,
                          Mask.data() + I * OutItem);
    else
      kernels::avgPoolFwd(Bottom[0]->Data.data() + I * InItem, Geom,
                          Top[0]->Data.data() + I * OutItem);
  }
}

void PoolingLayer::backward(const std::vector<Blob *> &Bottom,
                            const std::vector<Blob *> &Top) {
  const int64_t B = Bottom[0]->shape()[0];
  const int64_t InItem = Bottom[0]->itemCount();
  const int64_t OutItem = Top[0]->itemCount();
  for (int64_t I = 0; I < B; ++I) {
    if (M == Mode::Max)
      kernels::maxPoolBwd(Top[0]->Grad.data() + I * OutItem, Geom,
                          Mask.data() + I * OutItem,
                          Bottom[0]->Grad.data() + I * InItem);
    else
      kernels::avgPoolBwd(Top[0]->Grad.data() + I * OutItem, Geom,
                          Bottom[0]->Grad.data() + I * InItem);
  }
}

//===----------------------------------------------------------------------===//
// SoftmaxLossLayer
//===----------------------------------------------------------------------===//

void SoftmaxLossLayer::reshape(const std::vector<Blob *> &Bottom,
                               const std::vector<Blob *> &Top) {
  assert(Bottom.size() == 2 && "softmax loss needs logits and labels");
  *Top[0] = Blob(Shape{Bottom[0]->shape()[0]});
  Prob = Tensor(Bottom[0]->shape());
}

void SoftmaxLossLayer::forward(const std::vector<Blob *> &Bottom,
                               const std::vector<Blob *> &Top) {
  const int64_t B = Bottom[0]->shape()[0];
  const int64_t Classes = Bottom[0]->itemCount();
  for (int64_t I = 0; I < B; ++I) {
    kernels::softmaxFwd(Prob.data() + I * Classes,
                        Bottom[0]->Data.data() + I * Classes, Classes);
    Top[0]->Data.at(I) = kernels::crossEntropyLoss(
        Prob.data() + I * Classes, Classes,
        static_cast<int64_t>(Bottom[1]->Data.at(I)));
  }
}

void SoftmaxLossLayer::backward(const std::vector<Blob *> &Bottom,
                                const std::vector<Blob *> &Top) {
  const int64_t B = Bottom[0]->shape()[0];
  const int64_t Classes = Bottom[0]->itemCount();
  const float Scale = 1.0f / static_cast<float>(B);
  for (int64_t I = 0; I < B; ++I)
    kernels::softmaxLossBwd(Bottom[0]->Grad.data() + I * Classes,
                            Prob.data() + I * Classes, Classes,
                            static_cast<int64_t>(Bottom[1]->Data.at(I)),
                            Scale);
}

//===----------------------------------------------------------------------===//
// CaffeNet
//===----------------------------------------------------------------------===//

void CaffeNet::setInputShape(Shape PerItem) {
  assert(Blobs.empty() && "input shape must be set before layers");
  Blobs.emplace_back(PerItem.withPrefix(BatchSize));
}

void CaffeNet::enableLabels() {
  HasLabels = true;
  Labels = Blob(Shape{BatchSize});
}

Blob &CaffeNet::labelBlob() {
  assert(HasLabels && "labels were not enabled");
  return Labels;
}

Layer *CaffeNet::addLayer(std::unique_ptr<Layer> NewLayer) {
  assert(!Blobs.empty() && "set the input shape first");
  assert(!IsSetup && "cannot add layers after setup");
  L.push_back(std::move(NewLayer));
  // In-place layers (ReLU) reuse the previous blob; others get a new one.
  if (!L.back()->isInPlace())
    Blobs.emplace_back();
  return L.back().get();
}

void CaffeNet::setup(uint64_t Seed) {
  assert(!IsSetup && "setup runs once");
  Rng R(Seed);
  size_t BlobIndex = 0;
  for (auto &Layer : L) {
    Blob *Bottom = &Blobs[BlobIndex];
    bool InPlace = Layer->isInPlace();
    Blob *Top = InPlace ? Bottom : &Blobs[BlobIndex + 1];
    std::vector<Blob *> Bottoms = {Bottom};
    if (Layer->needsLabels()) {
      assert(HasLabels && "softmax loss requires labels");
      Bottoms.push_back(&Labels);
    }
    Layer->reshape(Bottoms, {Top});
    Layer->initParams(R);
    if (!InPlace)
      ++BlobIndex;
  }
  IsSetup = true;
}

void CaffeNet::forward() {
  assert(IsSetup && "call setup() first");
  size_t BlobIndex = 0;
  for (auto &Layer : L) {
    Blob *Bottom = &Blobs[BlobIndex];
    bool InPlace = Layer->isInPlace();
    Blob *Top = InPlace ? Bottom : &Blobs[BlobIndex + 1];
    std::vector<Blob *> Bottoms = {Bottom};
    if (Layer->needsLabels())
      Bottoms.push_back(&Labels);
    Layer->forward(Bottoms, {Top});
    if (!InPlace)
      ++BlobIndex;
  }
}

void CaffeNet::backward() {
  assert(IsSetup && "call setup() first");
  // Zero all gradients (blobs and params), then run layers in reverse.
  for (Blob &B : Blobs)
    B.Grad.zero();
  for (auto &Layer : L)
    for (Blob &P : Layer->params())
      P.Grad.zero();

  // Recompute blob indices for reverse traversal.
  std::vector<size_t> BottomIndex(L.size());
  size_t BlobIndex = 0;
  for (size_t I = 0; I < L.size(); ++I) {
    BottomIndex[I] = BlobIndex;
    if (!L[I]->isInPlace())
      ++BlobIndex;
  }
  for (size_t I = L.size(); I-- > 0;) {
    Blob *Bottom = &Blobs[BottomIndex[I]];
    bool InPlace = L[I]->isInPlace();
    Blob *Top = InPlace ? Bottom : &Blobs[BottomIndex[I] + 1];
    std::vector<Blob *> Bottoms = {Bottom};
    if (L[I]->needsLabels())
      Bottoms.push_back(&Labels);
    L[I]->backward(Bottoms, {Top});
  }
}

double CaffeNet::lossValue() const {
  const Blob &Out = Blobs.back();
  double Sum = 0;
  for (int64_t I = 0; I < Out.count(); ++I)
    Sum += Out.Data.at(I);
  return Sum / static_cast<double>(Out.count());
}

double CaffeNet::accuracy() const {
  const Tensor *ProbPtr = L.back()->probabilitiesOrNull();
  if (!ProbPtr || !HasLabels)
    return 0.0;
  const Tensor &Prob = *ProbPtr;
  int64_t Classes = Prob.numElements() / BatchSize;
  int64_t Correct = 0;
  for (int64_t I = 0; I < BatchSize; ++I) {
    const float *Row = Prob.data() + I * Classes;
    int64_t Best = 0;
    for (int64_t C = 1; C < Classes; ++C)
      if (Row[C] > Row[Best])
        Best = C;
    if (Best == static_cast<int64_t>(Labels.Data.at(I)))
      ++Correct;
  }
  return static_cast<double>(Correct) / static_cast<double>(BatchSize);
}
