//===- baselines/mocha/mocha.h - Mocha.jl-style naive baseline -*- C++ -*-===//
///
/// \file
/// The second baseline of the paper's evaluation (§7.1.3): a high-level
/// framework in the style of Mocha.jl. The defining properties the paper
/// attributes to it — no parallelization, no tiling, straightforward
/// single-threaded loops, allocation per call — are reproduced here with
/// naive layer implementations (direct convolution loops, unblocked
/// scalar GEMM, per-call scratch allocation). The blob/network plumbing is
/// shared with the Caffe baseline; only the kernels differ, which is
/// exactly the axis the paper measures.
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_BASELINES_MOCHA_MOCHA_H
#define LATTE_BASELINES_MOCHA_MOCHA_H

#include "baselines/caffe/caffe.h"

namespace latte {
namespace mocha {

/// Direct (non-GEMM) convolution with scalar loops.
class NaiveConvolutionLayer : public caffe::Layer {
public:
  NaiveConvolutionLayer(std::string Name, int64_t NumFilters, int64_t Kernel,
                        int64_t Stride, int64_t Pad)
      : Layer(std::move(Name)), NumFilters(NumFilters), Kernel(Kernel),
        Stride(Stride), Pad(Pad) {}

  void reshape(const std::vector<caffe::Blob *> &Bottom,
               const std::vector<caffe::Blob *> &Top) override;
  void forward(const std::vector<caffe::Blob *> &Bottom,
               const std::vector<caffe::Blob *> &Top) override;
  void backward(const std::vector<caffe::Blob *> &Bottom,
                const std::vector<caffe::Blob *> &Top) override;
  void initParams(Rng &R) override;

private:
  int64_t NumFilters, Kernel, Stride, Pad;
  kernels::ConvGeometry Geom;
};

/// Fully connected layer using the unblocked scalar GEMM.
class NaiveInnerProductLayer : public caffe::Layer {
public:
  NaiveInnerProductLayer(std::string Name, int64_t NumOutputs)
      : Layer(std::move(Name)), NumOutputs(NumOutputs) {}

  void reshape(const std::vector<caffe::Blob *> &Bottom,
               const std::vector<caffe::Blob *> &Top) override;
  void forward(const std::vector<caffe::Blob *> &Bottom,
               const std::vector<caffe::Blob *> &Top) override;
  void backward(const std::vector<caffe::Blob *> &Bottom,
                const std::vector<caffe::Blob *> &Top) override;
  void initParams(Rng &R) override;

private:
  int64_t NumOutputs;
  int64_t NumInputs = 0;
};

/// Out-of-place scalar ReLU (Mocha allocates a fresh output blob).
class NaiveReluLayer : public caffe::Layer {
public:
  explicit NaiveReluLayer(std::string Name) : Layer(std::move(Name)) {}
  void reshape(const std::vector<caffe::Blob *> &Bottom,
               const std::vector<caffe::Blob *> &Top) override;
  void forward(const std::vector<caffe::Blob *> &Bottom,
               const std::vector<caffe::Blob *> &Top) override;
  void backward(const std::vector<caffe::Blob *> &Bottom,
                const std::vector<caffe::Blob *> &Top) override;
};

/// Naive max pooling with full window rescans in backward (no argmax
/// cache).
class NaiveMaxPoolingLayer : public caffe::Layer {
public:
  NaiveMaxPoolingLayer(std::string Name, int64_t Kernel, int64_t Stride,
                       int64_t Pad = 0)
      : Layer(std::move(Name)), Kernel(Kernel), Stride(Stride), Pad(Pad) {}

  void reshape(const std::vector<caffe::Blob *> &Bottom,
               const std::vector<caffe::Blob *> &Top) override;
  void forward(const std::vector<caffe::Blob *> &Bottom,
               const std::vector<caffe::Blob *> &Top) override;
  void backward(const std::vector<caffe::Blob *> &Bottom,
                const std::vector<caffe::Blob *> &Top) override;

private:
  int64_t Kernel, Stride, Pad;
  kernels::ConvGeometry Geom;
};

/// The Mocha baseline reuses the shared sequential-net plumbing.
using MochaNet = caffe::CaffeNet;

} // namespace mocha
} // namespace latte

#endif // LATTE_BASELINES_MOCHA_MOCHA_H
