//===- baselines/mocha/mocha.cpp ------------------------------*- C++ -*-===//

#include "baselines/mocha/mocha.h"

#include "kernels/gemm.h"
#include "support/error.h"

#include <limits>
#include <vector>

using namespace latte;
using namespace latte::caffe;
using namespace latte::mocha;

// Scalar loops throughout; vectorization suppressed to model interpreted
// high-level framework code.
#define LATTE_NOVEC                                                           \
  __attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))

//===----------------------------------------------------------------------===//
// NaiveConvolutionLayer
//===----------------------------------------------------------------------===//

void NaiveConvolutionLayer::reshape(const std::vector<Blob *> &Bottom,
                                    const std::vector<Blob *> &Top) {
  const Shape &In = Bottom[0]->shape();
  assert(In.rank() == 4 && "conv bottom must be (batch, C, H, W)");
  Geom = kernels::ConvGeometry{In[1], In[2], In[3], Kernel, Kernel,
                               Stride,  Stride, Pad,   Pad};
  if (Geom.outH() <= 0 || Geom.outW() <= 0)
    reportFatalError("conv layer '" + Name + "' has empty output");
  *Top[0] = Blob(Shape{In[0], NumFilters, Geom.outH(), Geom.outW()});
  Params.clear();
  Params.emplace_back(Shape{NumFilters, Geom.colRows()});
  Params.emplace_back(Shape{NumFilters});
}

void NaiveConvolutionLayer::initParams(Rng &R) {
  R.fillXavier(Params[0].Data, Geom.colRows());
  Params[1].Data.zero();
}

LATTE_NOVEC void
NaiveConvolutionLayer::forward(const std::vector<Blob *> &Bottom,
                               const std::vector<Blob *> &Top) {
  const int64_t B = Bottom[0]->shape()[0];
  const int64_t C = Geom.Channels, H = Geom.Height, W = Geom.Width;
  const int64_t OutH = Geom.outH(), OutW = Geom.outW();
  for (int64_t I = 0; I < B; ++I) {
    // Per-call scratch allocation, as a garbage-collected framework incurs.
    std::vector<float> Window(static_cast<size_t>(Geom.colRows()));
    const float *In = Bottom[0]->Data.data() + I * Bottom[0]->itemCount();
    float *Out = Top[0]->Data.data() + I * Top[0]->itemCount();
    for (int64_t F = 0; F < NumFilters; ++F) {
      const float *Filter = Params[0].Data.data() + F * Geom.colRows();
      for (int64_t Y = 0; Y < OutH; ++Y) {
        for (int64_t X = 0; X < OutW; ++X) {
          int64_t Idx = 0;
          for (int64_t Ch = 0; Ch < C; ++Ch)
            for (int64_t KY = 0; KY < Kernel; ++KY)
              for (int64_t KX = 0; KX < Kernel; ++KX, ++Idx) {
                int64_t InY = Y * Stride - Pad + KY;
                int64_t InX = X * Stride - Pad + KX;
                Window[Idx] = (InY >= 0 && InY < H && InX >= 0 && InX < W)
                                  ? In[(Ch * H + InY) * W + InX]
                                  : 0.0f;
              }
          float Sum = Params[1].Data.at(F);
          for (int64_t K = 0; K < Geom.colRows(); ++K)
            Sum += Filter[K] * Window[K];
          Out[(F * OutH + Y) * OutW + X] = Sum;
        }
      }
    }
  }
}

LATTE_NOVEC void
NaiveConvolutionLayer::backward(const std::vector<Blob *> &Bottom,
                                const std::vector<Blob *> &Top) {
  const int64_t B = Bottom[0]->shape()[0];
  const int64_t C = Geom.Channels, H = Geom.Height, W = Geom.Width;
  const int64_t OutH = Geom.outH(), OutW = Geom.outW();
  for (int64_t I = 0; I < B; ++I) {
    const float *In = Bottom[0]->Data.data() + I * Bottom[0]->itemCount();
    float *InG = Bottom[0]->Grad.data() + I * Bottom[0]->itemCount();
    const float *OutG = Top[0]->Grad.data() + I * Top[0]->itemCount();
    for (int64_t F = 0; F < NumFilters; ++F) {
      const float *Filter = Params[0].Data.data() + F * Geom.colRows();
      float *FilterG = Params[0].Grad.data() + F * Geom.colRows();
      for (int64_t Y = 0; Y < OutH; ++Y) {
        for (int64_t X = 0; X < OutW; ++X) {
          float G = OutG[(F * OutH + Y) * OutW + X];
          Params[1].Grad.at(F) += G;
          int64_t Idx = 0;
          for (int64_t Ch = 0; Ch < C; ++Ch)
            for (int64_t KY = 0; KY < Kernel; ++KY)
              for (int64_t KX = 0; KX < Kernel; ++KX, ++Idx) {
                int64_t InY = Y * Stride - Pad + KY;
                int64_t InX = X * Stride - Pad + KX;
                if (InY < 0 || InY >= H || InX < 0 || InX >= W)
                  continue;
                FilterG[Idx] += G * In[(Ch * H + InY) * W + InX];
                InG[(Ch * H + InY) * W + InX] += G * Filter[Idx];
              }
        }
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// NaiveInnerProductLayer
//===----------------------------------------------------------------------===//

void NaiveInnerProductLayer::reshape(const std::vector<Blob *> &Bottom,
                                     const std::vector<Blob *> &Top) {
  NumInputs = Bottom[0]->itemCount();
  *Top[0] = Blob(Shape{Bottom[0]->shape()[0], NumOutputs});
  Params.clear();
  Params.emplace_back(Shape{NumOutputs, NumInputs});
  Params.emplace_back(Shape{NumOutputs});
}

void NaiveInnerProductLayer::initParams(Rng &R) {
  R.fillXavier(Params[0].Data, NumInputs);
  Params[1].Data.zero();
}

void NaiveInnerProductLayer::forward(const std::vector<Blob *> &Bottom,
                                     const std::vector<Blob *> &Top) {
  const int64_t B = Bottom[0]->shape()[0];
  kernels::sgemmNaive(false, true, B, NumOutputs, NumInputs,
                      Bottom[0]->Data.data(), NumInputs,
                      Params[0].Data.data(), NumInputs, Top[0]->Data.data(),
                      NumOutputs, /*Accumulate=*/false);
  for (int64_t I = 0; I < B; ++I)
    for (int64_t O = 0; O < NumOutputs; ++O)
      Top[0]->Data.at(I * NumOutputs + O) += Params[1].Data.at(O);
}

void NaiveInnerProductLayer::backward(const std::vector<Blob *> &Bottom,
                                      const std::vector<Blob *> &Top) {
  const int64_t B = Bottom[0]->shape()[0];
  kernels::sgemmNaive(true, false, NumOutputs, NumInputs, B,
                      Top[0]->Grad.data(), NumOutputs,
                      Bottom[0]->Data.data(), NumInputs,
                      Params[0].Grad.data(), NumInputs, /*Accumulate=*/true);
  for (int64_t I = 0; I < B; ++I)
    for (int64_t O = 0; O < NumOutputs; ++O)
      Params[1].Grad.at(O) += Top[0]->Grad.at(I * NumOutputs + O);
  kernels::sgemmNaive(false, false, B, NumInputs, NumOutputs,
                      Top[0]->Grad.data(), NumOutputs,
                      Params[0].Data.data(), NumInputs,
                      Bottom[0]->Grad.data(), NumInputs,
                      /*Accumulate=*/true);
}

//===----------------------------------------------------------------------===//
// NaiveReluLayer
//===----------------------------------------------------------------------===//

void NaiveReluLayer::reshape(const std::vector<Blob *> &Bottom,
                             const std::vector<Blob *> &Top) {
  *Top[0] = Blob(Bottom[0]->shape());
}

LATTE_NOVEC void NaiveReluLayer::forward(const std::vector<Blob *> &Bottom,
                                         const std::vector<Blob *> &Top) {
  for (int64_t I = 0, E = Bottom[0]->count(); I < E; ++I)
    Top[0]->Data.at(I) =
        Bottom[0]->Data.at(I) > 0.0f ? Bottom[0]->Data.at(I) : 0.0f;
}

LATTE_NOVEC void NaiveReluLayer::backward(const std::vector<Blob *> &Bottom,
                                          const std::vector<Blob *> &Top) {
  for (int64_t I = 0, E = Bottom[0]->count(); I < E; ++I)
    Bottom[0]->Grad.at(I) +=
        Top[0]->Data.at(I) > 0.0f ? Top[0]->Grad.at(I) : 0.0f;
}

//===----------------------------------------------------------------------===//
// NaiveMaxPoolingLayer
//===----------------------------------------------------------------------===//

void NaiveMaxPoolingLayer::reshape(const std::vector<Blob *> &Bottom,
                                   const std::vector<Blob *> &Top) {
  const Shape &In = Bottom[0]->shape();
  Geom = kernels::ConvGeometry{In[1], In[2], In[3], Kernel, Kernel,
                               Stride,  Stride, Pad,   Pad};
  *Top[0] = Blob(Shape{In[0], In[1], Geom.outH(), Geom.outW()});
}

LATTE_NOVEC void
NaiveMaxPoolingLayer::forward(const std::vector<Blob *> &Bottom,
                              const std::vector<Blob *> &Top) {
  const int64_t B = Bottom[0]->shape()[0];
  const int64_t C = Geom.Channels, H = Geom.Height, W = Geom.Width;
  const int64_t OutH = Geom.outH(), OutW = Geom.outW();
  for (int64_t I = 0; I < B; ++I) {
    const float *In = Bottom[0]->Data.data() + I * Bottom[0]->itemCount();
    float *Out = Top[0]->Data.data() + I * Top[0]->itemCount();
    for (int64_t Ch = 0; Ch < C; ++Ch)
      for (int64_t Y = 0; Y < OutH; ++Y)
        for (int64_t X = 0; X < OutW; ++X) {
          float Max = -std::numeric_limits<float>::infinity();
          for (int64_t KY = 0; KY < Kernel; ++KY)
            for (int64_t KX = 0; KX < Kernel; ++KX) {
              int64_t InY = Y * Stride - Pad + KY;
              int64_t InX = X * Stride - Pad + KX;
              if (InY < 0 || InY >= H || InX < 0 || InX >= W)
                continue;
              float V = In[(Ch * H + InY) * W + InX];
              if (V > Max)
                Max = V;
            }
          Out[(Ch * OutH + Y) * OutW + X] = Max;
        }
  }
}

LATTE_NOVEC void
NaiveMaxPoolingLayer::backward(const std::vector<Blob *> &Bottom,
                               const std::vector<Blob *> &Top) {
  const int64_t B = Bottom[0]->shape()[0];
  const int64_t C = Geom.Channels, H = Geom.Height, W = Geom.Width;
  const int64_t OutH = Geom.outH(), OutW = Geom.outW();
  for (int64_t I = 0; I < B; ++I) {
    const float *In = Bottom[0]->Data.data() + I * Bottom[0]->itemCount();
    float *InG = Bottom[0]->Grad.data() + I * Bottom[0]->itemCount();
    const float *Out = Top[0]->Data.data() + I * Top[0]->itemCount();
    const float *OutG = Top[0]->Grad.data() + I * Top[0]->itemCount();
    for (int64_t Ch = 0; Ch < C; ++Ch)
      for (int64_t Y = 0; Y < OutH; ++Y)
        for (int64_t X = 0; X < OutW; ++X) {
          // Rescan the window for the (first) max position.
          float Max = Out[(Ch * OutH + Y) * OutW + X];
          float G = OutG[(Ch * OutH + Y) * OutW + X];
          bool Routed = false;
          for (int64_t KY = 0; KY < Kernel && !Routed; ++KY)
            for (int64_t KX = 0; KX < Kernel && !Routed; ++KX) {
              int64_t InY = Y * Stride - Pad + KY;
              int64_t InX = X * Stride - Pad + KX;
              if (InY < 0 || InY >= H || InX < 0 || InX >= W)
                continue;
              if (In[(Ch * H + InY) * W + InX] == Max) {
                InG[(Ch * H + InY) * W + InX] += G;
                Routed = true;
              }
            }
        }
  }
}
