//===- jit/jit_backend.h - In-process JIT compilation backend --*- C++ -*-===//
///
/// \file
/// Compiles generated C++ (compiler::generateJitSource) into a shared
/// object with the system compiler, dlopens it, and hands out per-task
/// function pointers. Objects are keyed by a content hash of the generated
/// source (plus compile flags and the ABI version), cached in a directory
/// reused across runs — recompiling the same program is a cache hit, not a
/// compile — and shared process-wide through a registry, so data-parallel
/// workers that compile identical per-worker programs load one module.
///
/// Environment:
///   LATTE_JIT=0        kill switch — jit::available() turns false
///   LATTE_JIT_DIR      cache directory (default $XDG_CACHE_HOME/latte-jit
///                      or /tmp/latte-jit-<uid>)
///   LATTE_JIT_CC       compiler command (default: the compiler that built
///                      this binary, baked in by CMake; then "c++")
///
/// Failure policy: a compile failure or a dlopen failure of a
/// freshly-built object records a diagnostic and returns null — the
/// engine falls back to the interpreter, it never crashes. A corrupt
/// *pre-existing* cached object (failed dlopen or ABI-version mismatch)
/// is deleted and recompiled once.
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_JIT_JIT_BACKEND_H
#define LATTE_JIT_JIT_BACKEND_H

#include "jit/jit_abi.h"

#include <cstdint>
#include <memory>
#include <string>

namespace latte {
namespace jit {

/// A generated task entry point inside a loaded module.
using TaskFn = void (*)(LatteJitCtx *);

/// Cumulative backend counters (process-wide), for tests and diagnostics.
struct Stats {
  int64_t Compiles = 0;      ///< source actually compiled to a new .so
  int64_t DiskCacheHits = 0; ///< .so found in the cache dir and loaded
  int64_t MemCacheHits = 0;  ///< live module reused from the registry
  int64_t LoadFailures = 0;  ///< dlopen / ABI-version failures observed
};

/// One loaded shared object. Destroying the last shared_ptr dlcloses it;
/// the process-wide registry holds weak references only.
class JitModule {
public:
  /// Loads (or compiles, or reuses) the module for \p Source. Returns
  /// null with a human-readable reason in \p Diag on failure.
  static std::shared_ptr<JitModule> getOrCreate(const std::string &Source,
                                                std::string *Diag = nullptr);

  JitModule(const JitModule &) = delete;
  JitModule &operator=(const JitModule &) = delete;
  ~JitModule();

  /// Resolves a generated entry point; null when absent.
  TaskFn symbol(const std::string &Name) const;

  /// Content hash (hex) keying this module in the cache.
  const std::string &hash() const { return Hash; }

private:
  JitModule(void *Handle, std::string Hash)
      : Handle(Handle), Hash(std::move(Hash)) {}
  void *Handle = nullptr;
  std::string Hash;
};

/// True when the backend can be used at all. False under sanitizer builds
/// (dlopened uninstrumented code is unsafe to mix with ASan/TSan) and when
/// LATTE_JIT=0 is set; \p WhyNot receives the reason.
bool available(std::string *WhyNot = nullptr);

/// The cache directory (created on demand). See header comment for the
/// resolution order.
std::string cacheDir();

/// Content hash (hex) of \p Source combined with the compile flags and
/// kLatteJitAbiVersion — the cache key getOrCreate uses.
std::string hashSource(const std::string &Source);

/// Cached object path for a hash (exists only after a compile).
std::string cachedObjectPath(const std::string &Hash);

Stats stats();
void resetStats();

} // namespace jit
} // namespace latte

#endif // LATTE_JIT_JIT_BACKEND_H
