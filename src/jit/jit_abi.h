//===- jit/jit_abi.h - C ABI between engine and JITted tasks ---*- C++ -*-===//
///
/// \file
/// The stable C ABI shared by the engine and the shared objects the JIT
/// backend compiles at runtime. A generated task entry point has the
/// signature `extern "C" void latte_task_<pass><index>(LatteJitCtx *)`;
/// the context carries the executor's alias-resolved buffer pointers (the
/// same arena or eager storage the interpreter reads), the per-pass
/// parallelism switch, and one callback — the kernel trampoline — through
/// which generated code re-enters engine::Executor::execKernelResolved.
///
/// Routing every kernel call back through the engine (instead of emitting
/// standalone kernel copies as the offline codegen does) is what makes
/// JIT-on vs interpreter comparisons BITWISE identical: the exact same
/// kernel functions run in the exact same order, and only the loop-nest /
/// dispatch scaffolding around them is compiled instead of interpreted.
///
/// The struct definition exists once: the macro below expands into the
/// host-side type AND is stringified into the generated translation unit,
/// so the two sides cannot drift. Bump kLatteJitAbiVersion whenever the
/// member list, the trampoline signature, or the ir::KernelKind numbering
/// changes — the version is baked into the content hash and checked after
/// dlopen, so stale cached objects are recompiled instead of misdispatched.
///
//===----------------------------------------------------------------------===//

#ifndef LATTE_JIT_JIT_ABI_H
#define LATTE_JIT_JIT_ABI_H

#include "ir/stmt.h"

#include <cstdint>
#include <string>

/// One definition of the context members, usable both as C++ and as text.
/// No top-level commas outside parentheses (stringification would split).
#define LATTE_JIT_CTX_MEMBERS                                                 \
  /* opaque engine::Executor, passed back through the trampoline */           \
  void *self;                                                                 \
  /* per Program::Buffers index: alias-resolved storage pointers */           \
  float **bufs;                                                               \
  /* per Program::IntBuffers index: index tables and pooling masks */         \
  int32_t **ibufs;                                                            \
  /* nonzero = honor parallel loop annotations (per-pass, engine-set) */      \
  int64_t par;                                                                 \
  /* kernel trampoline: re-enters the engine's resolved kernel dispatch */    \
  void (*kernel)(void *self, int64_t kind, float **fb, int32_t **ib,          \
                 const int64_t *ia, const double *fa, const int64_t *ea);

struct LatteJitCtx {
  LATTE_JIT_CTX_MEMBERS
};

namespace latte {
namespace jit {

/// Bump on any change to LatteJitCtx, the trampoline signature, or the
/// ir::KernelKind numbering (generated code embeds kind values as ints).
constexpr int64_t kLatteJitAbiVersion = 1;

/// Upper bounds of the resolved-argument arrays the trampoline carries
/// (SoftmaxLossFwd takes four buffers; no kernel takes more than two
/// evaluated index expressions).
constexpr int kMaxKernelBufs = 4;
constexpr int kMaxKernelExprArgs = 2;

#define LATTE_JIT_STRINGIFY_IMPL(...) #__VA_ARGS__
#define LATTE_JIT_STRINGIFY(...) LATTE_JIT_STRINGIFY_IMPL(__VA_ARGS__)

/// The struct definition as source text for the generated translation
/// unit — same macro expansion as the host-side type above.
inline std::string ctxStructSource() {
  return std::string("struct LatteJitCtx { ") +
         LATTE_JIT_STRINGIFY(LATTE_JIT_CTX_MEMBERS) + " };\n";
}

#undef LATTE_JIT_STRINGIFY
#undef LATTE_JIT_STRINGIFY_IMPL

/// Bitmask of kernel buffer-argument positions that are int32 buffers
/// (index tables / pooling masks) rather than float buffers. The code
/// generator and the engine's resolved dispatch must agree on this split.
inline uint32_t kernelIntBufMask(ir::KernelKind K) {
  switch (K) {
  case ir::KernelKind::Gather2D:
  case ir::KernelKind::ScatterAdd2D:
  case ir::KernelKind::MaxPoolFwdRows:
  case ir::KernelKind::MaxPoolBwdRows:
    return 1u << 2; // bufs[2] is the index table / argmax mask
  default:
    return 0;
  }
}

} // namespace jit
} // namespace latte

#endif // LATTE_JIT_JIT_ABI_H
