//===- jit/jit_backend.cpp ------------------------------------*- C++ -*-===//

#include "jit/jit_backend.h"

#include "support/string_utils.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>

#include <dlfcn.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

using namespace latte;
using namespace latte::jit;

namespace {

std::mutex RegistryMutex;
std::map<std::string, std::weak_ptr<JitModule>> &registry() {
  static std::map<std::string, std::weak_ptr<JitModule>> R;
  return R;
}

Stats &statsImpl() {
  static Stats S;
  return S;
}

/// The flags every generated TU is compiled with. -ffp-contract=off keeps
/// the host compiler from fusing a*b+c into FMA — the interpreter performs
/// each float operation separately, and bitwise identity requires the
/// compiled loop nests to do the same. (The specialized kernel clones the
/// emitter inlines are contraction-free by construction — data movement,
/// comparisons, and plain adds only — so the flag costs them nothing.)
/// -O3 plus the host build's arch flags (baked in by CMake) let those
/// clones unroll their constant-bound window loops and vectorize on the
/// same ISA as the library kernels they shadow. -fno-tree-loop-if-convert
/// works around a GCC 12 wrong-code bug: at -O3 -march=native, loop
/// if-conversion miscompiles the emitter's gated accumulates
/// (gi[i] += v[i] > 0 ? g[i] : 0 keeps stale values in some lanes —
/// reproducible in a 12-line standalone file, caught here by
/// jit_diff_test as garbage gradients).
const char *baseFlags() {
  return "-std=c++17 -O3 -fPIC -shared -ffp-contract=off"
         " -fno-tree-loop-if-convert"
#ifdef LATTE_JIT_ARCH_FLAGS
         " " LATTE_JIT_ARCH_FLAGS
#endif
#ifdef LATTE_HAVE_OPENMP
         " -fopenmp"
#endif
      ;
}

std::string compilerCommand() {
  if (const char *Env = std::getenv("LATTE_JIT_CC"))
    if (Env[0])
      return Env;
#ifdef LATTE_JIT_DEFAULT_CC
  return LATTE_JIT_DEFAULT_CC;
#else
  return "c++";
#endif
}

bool makeDir(const std::string &Path) {
  return ::mkdir(Path.c_str(), 0755) == 0 || errno == EEXIST;
}

bool fileExists(const std::string &Path) {
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0;
}

uint64_t fnv1a(const char *Data, size_t N, uint64_t H = 0xcbf29ce484222325ull) {
  for (size_t I = 0; I < N; ++I) {
    H ^= static_cast<unsigned char>(Data[I]);
    H *= 0x100000001b3ull;
  }
  return H;
}

/// Last ~20 lines of the compiler's captured stderr, for diagnostics.
std::string tailOfFile(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "r");
  if (!F)
    return "";
  std::string All;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof Buf, F)) > 0)
    All.append(Buf, N);
  std::fclose(F);
  size_t Pos = All.size();
  for (int Lines = 0; Pos > 0 && Lines < 20; --Pos)
    if (All[Pos - 1] == '\n')
      ++Lines;
  return All.substr(Pos);
}

/// dlopens \p Path and checks the exported ABI version. Returns null with
/// a reason when the object cannot be used.
void *loadAndCheck(const std::string &Path, std::string *Why) {
  void *Handle = ::dlopen(Path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!Handle) {
    if (Why)
      *Why = std::string("dlopen failed: ") + ::dlerror();
    return nullptr;
  }
  using VersionFn = int64_t (*)();
  auto Version = reinterpret_cast<VersionFn>(
      ::dlsym(Handle, "latte_jit_abi_version"));
  if (!Version || Version() != kLatteJitAbiVersion) {
    if (Why)
      *Why = Version ? formatString("ABI version mismatch (object %lld, "
                                    "engine %lld)",
                                    static_cast<long long>(Version()),
                                    static_cast<long long>(kLatteJitAbiVersion))
                     : "object exports no latte_jit_abi_version";
    ::dlclose(Handle);
    return nullptr;
  }
  return Handle;
}

} // namespace

bool jit::available(std::string *WhyNot) {
#ifdef LATTE_JIT_DISABLED
  if (WhyNot)
    *WhyNot = "JIT disabled in this build (sanitizers cannot instrument "
              "dlopened code)";
  return false;
#else
  if (const char *Env = std::getenv("LATTE_JIT"))
    if (Env[0] == '0') {
      if (WhyNot)
        *WhyNot = "JIT disabled by LATTE_JIT=0";
      return false;
    }
  return true;
#endif
}

std::string jit::cacheDir() {
  std::string Dir;
  if (const char *Env = std::getenv("LATTE_JIT_DIR"))
    if (Env[0])
      Dir = Env;
  if (Dir.empty()) {
    if (const char *Xdg = std::getenv("XDG_CACHE_HOME"))
      if (Xdg[0]) {
        makeDir(Xdg);
        Dir = std::string(Xdg) + "/latte-jit";
      }
  }
  if (Dir.empty())
    Dir = formatString("/tmp/latte-jit-%ld", static_cast<long>(::getuid()));
  makeDir(Dir);
  return Dir;
}

std::string jit::hashSource(const std::string &Source) {
  uint64_t H = fnv1a(Source.data(), Source.size());
  std::string Salt =
      formatString("|abi=%lld|%s|", static_cast<long long>(kLatteJitAbiVersion),
                   baseFlags());
  H = fnv1a(Salt.data(), Salt.size(), H);
  // A second pass with a different seed widens the key to 128 bits;
  // accidental collisions over cache lifetimes are then implausible.
  uint64_t H2 = fnv1a(Source.data(), Source.size(), H ^ 0x9e3779b97f4a7c15ull);
  return formatString("%016llx%016llx", static_cast<unsigned long long>(H),
                      static_cast<unsigned long long>(H2));
}

std::string jit::cachedObjectPath(const std::string &Hash) {
  return cacheDir() + "/latte_" + Hash + ".so";
}

Stats jit::stats() {
  std::lock_guard<std::mutex> Lock(RegistryMutex);
  return statsImpl();
}

void jit::resetStats() {
  std::lock_guard<std::mutex> Lock(RegistryMutex);
  statsImpl() = Stats();
}

JitModule::~JitModule() {
  if (Handle)
    ::dlclose(Handle);
}

TaskFn JitModule::symbol(const std::string &Name) const {
  return reinterpret_cast<TaskFn>(::dlsym(Handle, Name.c_str()));
}

std::shared_ptr<JitModule>
JitModule::getOrCreate(const std::string &Source, std::string *Diag) {
  std::lock_guard<std::mutex> Lock(RegistryMutex);
  Stats &S = statsImpl();
  std::string Hash = hashSource(Source);

  // Live module already loaded in this process (e.g. another data-parallel
  // worker compiled the same per-worker program)?
  auto It = registry().find(Hash);
  if (It != registry().end()) {
    if (std::shared_ptr<JitModule> M = It->second.lock()) {
      ++S.MemCacheHits;
      return M;
    }
    registry().erase(It);
  }

  std::string ObjPath = cachedObjectPath(Hash);
  std::string Why;

  // Disk cache from an earlier run. A corrupt or stale object is deleted
  // and recompiled below instead of failing the whole backend.
  if (fileExists(ObjPath)) {
    if (void *Handle = loadAndCheck(ObjPath, &Why)) {
      ++S.DiskCacheHits;
      auto M = std::shared_ptr<JitModule>(new JitModule(Handle, Hash));
      registry()[Hash] = M;
      return M;
    }
    ++S.LoadFailures;
    std::remove(ObjPath.c_str());
  }

  // Compile. Temp names + rename keep concurrent processes from reading a
  // half-written object.
  std::string Dir = cacheDir();
  std::string Tag = formatString("%ld", static_cast<long>(::getpid()));
  std::string SrcPath = Dir + "/latte_" + Hash + "." + Tag + ".cpp";
  std::string TmpObj = Dir + "/latte_" + Hash + "." + Tag + ".so.tmp";
  std::string LogPath = Dir + "/latte_" + Hash + "." + Tag + ".log";
  {
    std::FILE *F = std::fopen(SrcPath.c_str(), "w");
    if (!F || std::fwrite(Source.data(), 1, Source.size(), F) !=
                  Source.size()) {
      if (F)
        std::fclose(F);
      if (Diag)
        *Diag = "cannot write generated source to " + SrcPath;
      return nullptr;
    }
    std::fclose(F);
  }
  std::string Cmd = compilerCommand() + " " + baseFlags() + " -o '" + TmpObj +
                    "' '" + SrcPath + "' >'" + LogPath + "' 2>&1";
  int Rc = std::system(Cmd.c_str());
  if (Rc != 0) {
    if (Diag)
      *Diag = "JIT compile failed (" + compilerCommand() +
              "): " + tailOfFile(LogPath);
    std::remove(SrcPath.c_str());
    std::remove(TmpObj.c_str());
    std::remove(LogPath.c_str());
    return nullptr;
  }
  std::rename(TmpObj.c_str(), ObjPath.c_str());
  std::remove(SrcPath.c_str());
  std::remove(LogPath.c_str());

  void *Handle = loadAndCheck(ObjPath, &Why);
  if (!Handle) {
    // Freshly built and still unloadable: give up (don't loop).
    ++S.LoadFailures;
    if (Diag)
      *Diag = "freshly compiled object unusable: " + Why;
    return nullptr;
  }
  ++S.Compiles;
  auto M = std::shared_ptr<JitModule>(new JitModule(Handle, Hash));
  registry()[Hash] = M;
  return M;
}
