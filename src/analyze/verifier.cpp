//===- analyze/verifier.cpp -----------------------------------*- C++ -*-===//

#include "analyze/verifier.h"

#include "analyze/effects.h"
#include "analyze/races.h"
#include "compiler/recompute.h"
#include "ir/expr.h"
#include "ir/printer.h"
#include "ir/visitor.h"
#include "support/casting.h"

#include <functional>
#include <map>
#include <set>
#include <sstream>

using namespace latte;
using namespace latte::analyze;
using namespace latte::compiler;
using namespace latte::ir;

namespace {

/// First few lines of the printed statement, for diagnostic snippets.
std::string snippetOf(const Stmt *S) {
  if (!S)
    return "";
  std::string Text = printStmt(S);
  while (!Text.empty() && Text.back() == '\n')
    Text.pop_back();
  size_t Pos = 0;
  for (int Line = 0; Line < 4; ++Line) {
    Pos = Text.find('\n', Pos);
    if (Pos == std::string::npos)
      return Text;
    ++Pos;
  }
  return Text.substr(0, Pos) + "...";
}

//===----------------------------------------------------------------------===//
// Buffer / binding / label checks
//===----------------------------------------------------------------------===//

void verifyBuffers(const Program &Prog, DiagnosticReport &R) {
  std::set<std::string> FloatNames, IntNames;
  for (const BufferInfo &B : Prog.Buffers) {
    if (!FloatNames.insert(B.Name).second)
      R.error("buffer.duplicate", "duplicate buffer name").Buffer = B.Name;
    if (B.Dims.rank() < 1 || B.Dims.numElements() < 1)
      R.error("buffer.shape", "buffer has an empty shape").Buffer = B.Name;
  }
  for (const IntBufferInfo &B : Prog.IntBuffers) {
    if (!IntNames.insert(B.Name).second)
      R.error("buffer.duplicate", "duplicate int buffer name").Buffer =
          B.Name;
    if (!B.isStatic() && B.Count < 1)
      R.error("buffer.shape", "dynamic int buffer has no extent").Buffer =
          B.Name;
  }
  // Alias chains must resolve acyclically to a same-sized owning buffer.
  for (const BufferInfo &B : Prog.Buffers) {
    if (B.AliasOf.empty())
      continue;
    std::set<std::string> Visited{B.Name};
    const BufferInfo *Cur = &B;
    while (!Cur->AliasOf.empty()) {
      const BufferInfo *Next = Prog.findBuffer(Cur->AliasOf);
      if (!Next) {
        R.error("buffer.alias",
                "alias target '" + Cur->AliasOf + "' does not exist")
            .Buffer = B.Name;
        Cur = nullptr;
        break;
      }
      if (!Visited.insert(Next->Name).second) {
        R.error("buffer.alias", "alias chain forms a cycle").Buffer = B.Name;
        Cur = nullptr;
        break;
      }
      Cur = Next;
    }
    if (Cur && Cur->Dims.numElements() != B.Dims.numElements())
      R.error("buffer.alias",
              "aliases '" + Cur->Name + "' of different element count (" +
                  std::to_string(B.Dims.numElements()) + " vs " +
                  std::to_string(Cur->Dims.numElements()) + ")")
          .Buffer = B.Name;
  }
}

void verifyParamBindings(const Program &Prog, DiagnosticReport &R) {
  for (const ParamBinding &P : Prog.Params) {
    const BufferInfo *Param = Prog.findBuffer(P.Param);
    const BufferInfo *Grad = Prog.findBuffer(P.Grad);
    if (!Param || Param->Role != BufferRole::Param) {
      R.error("program.param-bindings",
              "binding references missing or non-Param buffer")
          .Buffer = P.Param;
      continue;
    }
    if (!Grad || Grad->Role != BufferRole::ParamGrad) {
      R.error("program.param-bindings",
              "binding references missing or non-ParamGrad buffer")
          .Buffer = P.Grad;
      continue;
    }
    if (Param->Dims.numElements() != Grad->Dims.numElements())
      R.error("program.param-bindings",
              "parameter and gradient shapes disagree ('" + P.Param +
                  "' vs '" + P.Grad + "')")
          .Buffer = P.Param;
  }
}

void verifyFusionGroups(const Program &Prog, DiagnosticReport &R) {
  for (const std::vector<std::string> &Group : Prog.Report.FusionGroups) {
    bool Covered = false;
    for (const TaskLabel &L : Prog.ForwardTasks) {
      std::set<std::string> Have(L.Ensembles.begin(), L.Ensembles.end());
      bool All = true;
      for (const std::string &E : Group)
        All &= Have.count(E) != 0;
      if (All && !Group.empty()) {
        Covered = true;
        break;
      }
    }
    if (!Covered) {
      std::string Names;
      for (const std::string &E : Group)
        Names += (Names.empty() ? "" : "+") + E;
      R.warning("program.fusion-groups",
                "reported fusion group '" + Names +
                    "' matches no forward task");
    }
  }
}

//===----------------------------------------------------------------------===//
// Per-unit structural walk
//===----------------------------------------------------------------------===//

class UnitVerifier {
public:
  UnitVerifier(const BufferTable &Bufs, const std::string &Task,
               DiagnosticReport &R)
      : Bufs(Bufs), Task(Task), R(R) {}

  void run(const Stmt *Unit) { walkStmt(Unit, /*TopLevel=*/true); }

private:
  Diagnostic &error(const std::string &Code, const std::string &Msg,
                    const Stmt *S) {
    Diagnostic &D = R.error(Code, Msg);
    D.Task = Task;
    D.Snippet = snippetOf(S);
    return D;
  }

  /// Index / loop-bound / kernel-expr position: must be built from integer
  /// constants, bound integer loop variables, and arithmetic.
  void checkIntExpr(const Expr *E, const Stmt *Ctx) {
    if (!E) {
      error("ir.index-type", "missing integer expression", Ctx);
      return;
    }
    switch (E->kind()) {
    case Expr::Kind::IntConst:
      return;
    case Expr::Kind::Var: {
      const std::string &Name = cast<VarExpr>(E)->name();
      if (IntVars.count(Name))
        return;
      error("ir.var-use",
            FloatVars.count(Name)
                ? "float local '" + Name + "' used in an integer position"
                : "use of undefined loop variable '" + Name + "'",
            Ctx);
      return;
    }
    case Expr::Kind::Binary:
      checkIntExpr(cast<BinaryExpr>(E)->lhs(), Ctx);
      checkIntExpr(cast<BinaryExpr>(E)->rhs(), Ctx);
      return;
    default:
      error("ir.index-type",
            "expression is not integer-evaluable: " + printExpr(E), Ctx);
      return;
    }
  }

  /// Float value position: variables must be bound, loads well-formed.
  void checkValueExpr(const Expr *E, const Stmt *Ctx) {
    walkExprs(E, [&](const Expr *Node) {
      if (const auto *V = dyn_cast<VarExpr>(Node)) {
        if (!IntVars.count(V->name()) && !FloatVars.count(V->name()))
          error("ir.var-use", "use of undefined variable '" + V->name() + "'",
                Ctx);
        return;
      }
      const auto *L = dyn_cast<LoadExpr>(Node);
      if (!L)
        return;
      const BufferTable::FloatInfo *FI = Bufs.floatInfo(L->buffer());
      if (!FI) {
        error("ir.unknown-buffer",
              "load from unknown buffer '" + L->buffer() + "'", Ctx)
            .Buffer = L->buffer();
        return;
      }
      if (static_cast<int>(L->indices().size()) != FI->rank())
        error("ir.index-rank",
              "load indexes rank-" + std::to_string(FI->rank()) +
                  " buffer with " + std::to_string(L->indices().size()) +
                  " indices",
              Ctx)
            .Buffer = L->buffer();
      for (const ExprPtr &I : L->indices())
        checkIntExpr(I.get(), Ctx);
    });
  }

  void walkStmt(const Stmt *S, bool TopLevel = false) {
    if (!S)
      return;
    switch (S->kind()) {
    case Stmt::Kind::Block:
      for (const StmtPtr &Child : cast<BlockStmt>(S)->stmts())
        walkStmt(Child.get());
      return;
    case Stmt::Kind::For: {
      const auto *F = cast<ForStmt>(S);
      if (F->extent() < 0)
        error("ir.loop", "loop extent is negative", S);
      checkIntExpr(F->lo(), S);
      const LoopAnnotations &A = F->annotations();
      if (A.Collapse != 1 && A.Collapse != 2)
        error("ir.loop",
              "collapse(" + std::to_string(A.Collapse) +
                  ") is not supported (engine handles 1 and 2)",
              S);
      if (A.Collapse == 2) {
        const auto *B = dyn_cast_if_present<const BlockStmt>(F->body());
        bool SingleTiled =
            B && B->stmts().size() == 1 &&
            isa<TiledLoopStmt>(B->stmts()[0].get());
        if (!A.Parallel || !SingleTiled)
          error("ir.loop",
                "collapse(2) requires a parallel loop over a single tiled "
                "loop",
                S);
      }
      bool Shadowed = IntVars.count(F->var()) != 0;
      IntVars.insert(F->var());
      bool SavedParallel = InParallel;
      InParallel |= A.Parallel;
      ++LoopDepth;
      walkStmt(F->body());
      --LoopDepth;
      InParallel = SavedParallel;
      if (!Shadowed)
        IntVars.erase(F->var());
      return;
    }
    case Stmt::Kind::TiledLoop: {
      const auto *T = cast<TiledLoopStmt>(S);
      if (T->numTiles() < 0 || T->tileSize() < 0)
        error("ir.loop", "tiled loop has negative tile geometry", S);
      bool Shadowed = IntVars.count(T->tileVar()) != 0;
      IntVars.insert(T->tileVar());
      ++LoopDepth;
      walkStmt(T->body());
      --LoopDepth;
      if (!Shadowed)
        IntVars.erase(T->tileVar());
      return;
    }
    case Stmt::Kind::If: {
      const auto *If = cast<IfStmt>(S);
      checkValueExpr(If->cond(), S);
      walkStmt(If->thenStmt());
      walkStmt(If->elseStmt());
      return;
    }
    case Stmt::Kind::Store: {
      const auto *St = cast<StoreStmt>(S);
      const BufferTable::FloatInfo *FI = Bufs.floatInfo(St->buffer());
      if (!FI) {
        error("ir.unknown-buffer",
              "store to unknown buffer '" + St->buffer() + "'", S)
            .Buffer = St->buffer();
      } else if (static_cast<int>(St->indices().size()) != FI->rank()) {
        error("ir.index-rank",
              "store indexes rank-" + std::to_string(FI->rank()) +
                  " buffer with " + std::to_string(St->indices().size()) +
                  " indices",
              S)
            .Buffer = St->buffer();
      }
      for (const ExprPtr &I : St->indices())
        checkIntExpr(I.get(), S);
      checkValueExpr(St->value(), S);
      return;
    }
    case Stmt::Kind::Decl: {
      const auto *D = cast<DeclStmt>(S);
      checkValueExpr(D->init(), S);
      FloatVars.insert(D->name()); // engine scope: visible until unit end
      return;
    }
    case Stmt::Kind::AssignVar: {
      const auto *A = cast<AssignVarStmt>(S);
      if (!FloatVars.count(A->name()))
        error("ir.var-use",
              "assignment to undeclared local '" + A->name() + "'", S);
      checkValueExpr(A->value(), S);
      return;
    }
    case Stmt::Kind::KernelCall: {
      const auto *K = cast<KernelCallStmt>(S);
      const KernelSignature Sig = kernelSignature(K->kernel());
      std::string KName = kernelKindName(K->kernel());
      if (static_cast<int>(K->bufs().size()) != Sig.NumBufs ||
          static_cast<int>(K->intArgs().size()) != Sig.NumInts ||
          static_cast<int>(K->exprArgs().size()) != Sig.NumExprs ||
          static_cast<int>(K->floatArgs().size()) != Sig.NumFloats) {
        error("kernel.arity",
              "kernel '" + KName + "' expects " +
                  std::to_string(Sig.NumBufs) + " buffers, " +
                  std::to_string(Sig.NumInts) + " ints, " +
                  std::to_string(Sig.NumExprs) + " exprs, " +
                  std::to_string(Sig.NumFloats) + " floats; got " +
                  std::to_string(K->bufs().size()) + "/" +
                  std::to_string(K->intArgs().size()) + "/" +
                  std::to_string(K->exprArgs().size()) + "/" +
                  std::to_string(K->floatArgs().size()),
              S);
        return;
      }
      for (size_t I = 0; I < K->bufs().size(); ++I) {
        const KernelBufArg &B = K->bufs()[I];
        bool WantInt = kernelBufArgIsInt(K->kernel(), I);
        bool Known = WantInt ? Bufs.intInfo(B.Buffer) != nullptr
                             : Bufs.floatInfo(B.Buffer) != nullptr;
        if (!Known)
          error("ir.unknown-buffer",
                "kernel '" + KName + "' references unknown " +
                    (WantInt ? "int " : "") + "buffer '" + B.Buffer + "'",
                S)
              .Buffer = B.Buffer;
        if (B.Offset)
          checkIntExpr(B.Offset.get(), S);
      }
      for (const ExprPtr &E : K->exprArgs())
        checkIntExpr(E.get(), S);
      if (K->kernel() == KernelKind::DropoutMask && InParallel)
        error("kernel.rng-in-parallel",
              "stateful dropout RNG inside a parallel loop is "
              "non-deterministic and racy",
              S);
      return;
    }
    case Stmt::Kind::Barrier:
      if (!TopLevel)
        error("ir.barrier-placement",
              "barrier nested inside a unit (must separate top-level "
              "tasks)",
              S);
      return;
    }
  }

  const BufferTable &Bufs;
  const std::string &Task;
  DiagnosticReport &R;
  std::set<std::string> IntVars, FloatVars;
  int LoopDepth = 0;
  bool InParallel = false;
};

//===----------------------------------------------------------------------===//
// Effect-level checks
//===----------------------------------------------------------------------===//

/// Evaluates the [min, one-past-max) element range a footprint may touch,
/// substituting each base coefficient's variable range. Plain variables
/// range over their parallel dim; "v%C" pseudo-variables (the slice-
/// rotation rewrite, see compiler/rotate.h) range over [0, C-1] regardless
/// of v's own extent. Returns false when a variable is unknown or a
/// modulus is malformed — the range is unbounded and not checkable.
bool footprintRange(const Footprint &Fp,
                    const std::vector<ParallelDim> &Dims, int64_t &MinOut,
                    int64_t &EndOut) {
  if (!Fp.Base.Affine)
    return false;
  int64_t Min = Fp.Base.Const;
  int64_t Max = Fp.Base.Const;
  for (const auto &[Var, C] : Fp.Base.Coeffs) {
    int64_t VMin = 0, VMax = -1;
    if (size_t Pct = Var.find('%'); Pct != std::string::npos) {
      int64_t Mod = 0;
      for (size_t I = Pct + 1; I < Var.size(); ++I) {
        if (Var[I] < '0' || Var[I] > '9') {
          Mod = 0;
          break;
        }
        Mod = Mod * 10 + (Var[I] - '0');
      }
      if (Mod <= 0)
        return false;
      VMax = Mod - 1;
    } else {
      const ParallelDim *Dim = nullptr;
      for (const ParallelDim &D : Dims)
        if (D.Var == Var)
          Dim = &D;
      if (!Dim || Dim->Extent <= 0)
        return false;
      VMin = Dim->Lo;
      VMax = Dim->Lo + Dim->Extent - 1;
    }
    Min += C * (C >= 0 ? VMin : VMax);
    Max += C * (C >= 0 ? VMax : VMin);
  }
  MinOut = Min;
  EndOut = Max + Fp.spanEnd();
  return true;
}

void checkBounds(const UnitEffects &UE, const BufferTable &Bufs,
                 const std::string &Task, DiagnosticReport &R) {
  for (const auto &[Buffer, Accesses] : UE.Effects.Buffers) {
    bool IsInt = Buffer.rfind("int:", 0) == 0;
    int64_t Count = 0;
    if (IsInt) {
      const BufferTable::IntInfo *II = Bufs.intInfo(Buffer.substr(4));
      if (!II)
        continue;
      Count = II->Count;
    } else {
      const BufferTable::FloatInfo *FI = Bufs.floatInfo(Buffer);
      if (!FI)
        continue;
      Count = FI->Count;
    }
    for (const Access &A : Accesses) {
      if (!A.Fp.Exact)
        continue; // conservative supersets are not bounds-checked
      int64_t Min = 0, End = 0;
      if (!footprintRange(A.Fp, UE.Dims, Min, End))
        continue;
      if (Min < 0 || End > Count) {
        Diagnostic &D = R.error(
            "ir.bounds", "access may reach elements [" +
                             std::to_string(Min) + ", " +
                             std::to_string(End) + ") of a " +
                             std::to_string(Count) + "-element buffer: " +
                             A.Detail + " [" + A.Fp.str() + "]");
        D.Task = Task;
        D.Buffer = Buffer;
      }
    }
  }
}

void verifyProgramIR(const Stmt *Root, const std::vector<TaskLabel> &Labels,
                     bool IsBackward, const BufferTable &Bufs,
                     const VerifyOptions &Opts,
                     const std::map<int, std::set<std::string>> &RotatedByUnit,
                     int UnitBase, DiagnosticReport &R) {
  if (!Root)
    return;
  const auto *Block = dyn_cast<BlockStmt>(Root);
  if (!Block) {
    R.error("program.structure",
            "assembled program root must be a block of task units")
        .Snippet = snippetOf(Root);
    return;
  }
  const std::vector<StmtPtr> &Units = Block->stmts();
  bool HaveLabels = !Labels.empty() || Units.empty();
  if (HaveLabels && Labels.size() != Units.size())
    R.error("program.task-labels",
            "task labels must stay parallel to assembled units (" +
                std::to_string(Labels.size()) + " labels, " +
                std::to_string(Units.size()) + " units)");
  for (size_t I = 0; I < Units.size(); ++I) {
    const Stmt *Unit = Units[I].get();
    std::string Label = I < Labels.size()
                            ? Labels[I].Name
                            : (IsBackward ? "bwd-task#" : "task#") +
                                  std::to_string(I);
    if (I < Labels.size()) {
      bool IsBarrierUnit = isa<BarrierStmt>(Unit);
      bool IsBarrierLabel = Labels[I].Name.rfind("barrier:", 0) == 0;
      if (IsBarrierUnit != IsBarrierLabel) {
        Diagnostic &D = R.error(
            "program.task-labels",
            IsBarrierUnit
                ? "barrier unit carries non-barrier label '" +
                      Labels[I].Name + "'"
                : "label '" + Labels[I].Name +
                      "' marks a barrier but the unit is not one");
        D.Task = Labels[I].Name;
        D.Snippet = snippetOf(Unit);
      }
    }
    UnitVerifier UV(Bufs, Label, R);
    UV.run(Unit);

    // The structural walk above already reports collection failures
    // (unknown buffers, kernel arity), so effects are collected silently.
    UnitEffects UE = collectUnitEffects(Unit, Bufs, nullptr);
    if (Opts.CheckBounds)
      checkBounds(UE, Bufs, Label, R);
    if (Opts.CheckRaces) {
      const std::set<std::string> *Rotated = nullptr;
      if (auto It = RotatedByUnit.find(UnitBase + static_cast<int>(I));
          It != RotatedByUnit.end())
        Rotated = &It->second;
      detectRaces(UE, IsBackward, Label, R, Rotated);
    }
  }
}

//===----------------------------------------------------------------------===//
// Memory-plan checks
//===----------------------------------------------------------------------===//

/// Validates the compiler's arena plan against the program it was computed
/// from: every alias root has a placed lifetime (plan.offset-missing) whose
/// byte range is aligned (plan.align), inside the arena, and large enough
/// for the buffer's extent (plan.bounds); no two lifetimes that are live at
/// the same time share bytes (plan.overlap); and — cross-checked against
/// analyze::effects — no task unit references a root outside its recorded
/// live range (plan.lifetime, plan.units).
void verifyMemoryPlan(const Program &Prog, const BufferTable &Bufs,
                      DiagnosticReport &R) {
  const MemoryPlan &Plan = Prog.Plan;
  if (!Plan.Valid)
    return; // hand-built programs run eagerly; nothing to check
  auto CountUnits = [](const Stmt *Root) -> int {
    if (!Root)
      return 0;
    const auto *B = dyn_cast<const BlockStmt>(Root);
    return B ? static_cast<int>(B->stmts().size()) : 1;
  };
  const int NumFwd = CountUnits(Prog.Forward.get());
  const int NumBwd = CountUnits(Prog.Backward.get());
  if (Plan.NumForwardUnits != NumFwd || Plan.NumBackwardUnits != NumBwd)
    R.error("plan.units",
            "plan unit counts (" + std::to_string(Plan.NumForwardUnits) +
                "F/" + std::to_string(Plan.NumBackwardUnits) +
                "B) disagree with the program (" + std::to_string(NumFwd) +
                "F/" + std::to_string(NumBwd) + "B)");

  // Every root placed, tables consistent, placements in-bounds.
  for (const BufferInfo &B : Prog.Buffers) {
    const BufferInfo *Root = Prog.resolveAlias(B.Name);
    if (!Root)
      continue; // buffer.alias already reported
    const BufferLifetime *L = Plan.lifetime(Root->Name);
    auto It = Plan.Offsets.find(Root->Name);
    if (!L || It == Plan.Offsets.end()) {
      R.error("plan.offset-missing",
              "alias root has no memory-plan entry")
          .Buffer = Root->Name;
      continue;
    }
    if (L->Offset != It->second)
      R.error("plan.offset-missing",
              "lifetime offset " + std::to_string(L->Offset) +
                  " disagrees with the offset table (" +
                  std::to_string(It->second) + ")")
          .Buffer = Root->Name;
    if (L->Bytes < Root->Dims.numElements() * 4)
      R.error("plan.bounds",
              "planned extent (" + std::to_string(L->Bytes) +
                  " bytes) is smaller than the buffer (" +
                  std::to_string(Root->Dims.numElements() * 4) + " bytes)")
          .Buffer = Root->Name;
  }
  for (const BufferLifetime &L : Plan.Lifetimes) {
    if (L.Bytes > 0 && L.Offset % Plan.Alignment != 0)
      R.error("plan.align",
              "offset " + std::to_string(L.Offset) +
                  " is not aligned to " + std::to_string(Plan.Alignment))
          .Buffer = L.Name;
    if (L.Offset < 0 || L.Offset + L.Bytes > Plan.ArenaBytes)
      R.error("plan.bounds",
              "byte range [" + std::to_string(L.Offset) + ", " +
                  std::to_string(L.Offset + L.Bytes) +
                  ") escapes the arena (" + std::to_string(Plan.ArenaBytes) +
                  " bytes)")
          .Buffer = L.Name;
  }

  // No two simultaneously-live roots may share bytes.
  for (size_t I = 0; I < Plan.Lifetimes.size(); ++I)
    for (size_t J = I + 1; J < Plan.Lifetimes.size(); ++J) {
      const BufferLifetime &A = Plan.Lifetimes[I];
      const BufferLifetime &B = Plan.Lifetimes[J];
      if (A.overlapsLifetime(B) && A.overlapsBytes(B))
        R.error("plan.overlap",
                "'" + A.Name + "' (bytes [" + std::to_string(A.Offset) +
                    ", " + std::to_string(A.Offset + A.Bytes) +
                    "), live [" + std::to_string(A.LiveBegin) + ", " +
                    std::to_string(A.LiveEnd) + "]) collides with '" +
                    B.Name + "' (bytes [" + std::to_string(B.Offset) + ", " +
                    std::to_string(B.Offset + B.Bytes) + "), live [" +
                    std::to_string(B.LiveBegin) + ", " +
                    std::to_string(B.LiveEnd) + "])")
            .Buffer = A.Name;
    }

  // Cross-check against the effect analysis: every reference must fall
  // inside the root's recorded live range.
  std::vector<const Stmt *> Units;
  auto AddUnits = [&Units](const Stmt *Root) {
    if (!Root)
      return;
    if (const auto *B = dyn_cast<const BlockStmt>(Root))
      for (const StmtPtr &S : B->stmts())
        Units.push_back(S.get());
    else
      Units.push_back(Root);
  };
  AddUnits(Prog.Forward.get());
  AddUnits(Prog.Backward.get());
  for (size_t U = 0; U < Units.size(); ++U) {
    UnitEffects UE = collectUnitEffects(Units[U], Bufs, nullptr);
    for (const auto &[Key, Accesses] : UE.Effects.Buffers) {
      if (Key.rfind("int:", 0) == 0)
        continue; // int tables/masks are outside the float plan
      const BufferLifetime *L = Plan.lifetime(Key);
      if (!L)
        continue; // plan.offset-missing already reported
      int G = static_cast<int>(U);
      if (!L->liveAt(G)) {
        std::string Ranges = "[" + std::to_string(L->LiveBegin) + ", " +
                             std::to_string(L->LiveEnd) + "]";
        if (L->Live2Begin >= 0)
          Ranges += " u [" + std::to_string(L->Live2Begin) + ", " +
                    std::to_string(L->Live2End) + "]";
        Diagnostic &D = R.error(
            "plan.lifetime",
            "unit " + std::to_string(G) + " references '" + Key +
                "' outside its recorded live range " + Ranges);
        D.Buffer = Key;
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Recompute checks
//===----------------------------------------------------------------------===//

void forEachKernelCall(const Stmt *S,
                       const std::function<void(const KernelCallStmt *)> &Fn) {
  if (!S)
    return;
  switch (S->kind()) {
  case Stmt::Kind::KernelCall:
    Fn(cast<const KernelCallStmt>(S));
    return;
  case Stmt::Kind::Block:
    for (const StmtPtr &C : cast<const BlockStmt>(S)->stmts())
      forEachKernelCall(C.get(), Fn);
    return;
  case Stmt::Kind::For:
    forEachKernelCall(cast<const ForStmt>(S)->body(), Fn);
    return;
  case Stmt::Kind::TiledLoop:
    forEachKernelCall(cast<const TiledLoopStmt>(S)->body(), Fn);
    return;
  case Stmt::Kind::If: {
    const auto *I = cast<const IfStmt>(S);
    forEachKernelCall(I->thenStmt(), Fn);
    forEachKernelCall(I->elseStmt(), Fn);
    return;
  }
  default:
    return;
  }
}

/// Validates the recompute ledger (Program::Recomputes) against the
/// backward program it claims to describe: the cloned unit exists before
/// its consumer and is the first backward reference to the recomputed
/// buffer (plan.recompute.placement); the clone writes nothing but that
/// buffer (plan.recompute.purity); and every kernel inside the clone is a
/// whitelisted pure gather — never an RNG or other stateful kernel
/// (plan.recompute.stateful).
void verifyRecompute(const Program &Prog, const BufferTable &Bufs,
                     DiagnosticReport &R) {
  if (Prog.Recomputes.empty())
    return;
  const auto *BwdBlock = dyn_cast<const BlockStmt>(Prog.Backward.get());
  if (!BwdBlock) {
    R.error("plan.recompute.placement",
            "program records recomputed buffers but the backward program "
            "is not a unit block");
    return;
  }
  const int NumBwd = static_cast<int>(BwdBlock->stmts().size());
  for (const RecomputeInfo &RI : Prog.Recomputes) {
    auto Bad = [&](const std::string &Code,
                   const std::string &Msg) -> Diagnostic & {
      Diagnostic &D = R.error(Code, Msg);
      D.Buffer = RI.Buffer;
      return D;
    };
    if (RI.BackwardUnit < 0 || RI.ConsumerUnit >= NumBwd ||
        RI.BackwardUnit >= RI.ConsumerUnit) {
      Bad("plan.recompute.placement",
          "recompute clone at backward unit " +
              std::to_string(RI.BackwardUnit) +
              " is not placed before its consumer (unit " +
              std::to_string(RI.ConsumerUnit) + " of " +
              std::to_string(NumBwd) + ")");
      continue;
    }
    const BufferInfo *Root = Prog.resolveAlias(RI.Buffer);
    if (!Root) {
      Bad("plan.recompute.placement",
          "recomputed buffer is not in the buffer table");
      continue;
    }

    // The clone must be the backward definition: it writes the buffer, and
    // no earlier backward unit touches it.
    UnitEffects CloneEff = collectUnitEffects(
        BwdBlock->stmts()[RI.BackwardUnit].get(), Bufs, nullptr);
    auto CloneIt = CloneEff.Effects.Buffers.find(Root->Name);
    bool CloneWrites = false;
    if (CloneIt != CloneEff.Effects.Buffers.end())
      for (const Access &A : CloneIt->second)
        CloneWrites |= A.Write;
    if (!CloneWrites)
      Bad("plan.recompute.placement",
          "backward unit " + std::to_string(RI.BackwardUnit) +
              " does not write the buffer it claims to recompute");
    for (int U = 0; U < RI.BackwardUnit; ++U) {
      UnitEffects UE =
          collectUnitEffects(BwdBlock->stmts()[U].get(), Bufs, nullptr);
      if (UE.Effects.Buffers.count(Root->Name))
        Bad("plan.recompute.placement",
            "backward unit " + std::to_string(U) + " references '" +
                Root->Name + "' before its recompute clone (unit " +
                std::to_string(RI.BackwardUnit) + ")");
    }

    // Purity: the clone may write nothing but the recomputed buffer.
    for (const auto &[Key, Accesses] : CloneEff.Effects.Buffers) {
      if (Key == Root->Name)
        continue;
      for (const Access &A : Accesses)
        if (A.Write) {
          Bad("plan.recompute.purity",
              "recompute clone for '" + Root->Name + "' also writes '" +
                  Key + "'");
          break;
        }
    }

    // Statefulness: only whitelisted pure gathers may be replayed.
    forEachKernelCall(
        BwdBlock->stmts()[RI.BackwardUnit].get(),
        [&](const KernelCallStmt *KC) {
          if (!compiler::isRecomputableKernel(KC->kernel()))
            Bad("plan.recompute.stateful",
                "recompute clone calls non-recomputable kernel '" +
                    std::string(kernelKindName(KC->kernel())) + "'");
        });

    // Coverage: the clone must regenerate exactly what the forward
    // producer wrote. Recomputed roots have *two* live intervals, and a
    // clone whose write footprints are a strict subset of the producer's
    // silently truncates the second interval the consumer reads — compare
    // the full multisets instead of trusting the first interval
    // (plan.recompute.coverage).
    const auto *FwdBlock = dyn_cast<const BlockStmt>(Prog.Forward.get());
    if (FwdBlock && RI.ForwardUnit >= 0 &&
        RI.ForwardUnit < static_cast<int>(FwdBlock->stmts().size())) {
      auto WriteFps = [&](const UnitEffects &UE) {
        std::multiset<std::string> Fps;
        auto It = UE.Effects.Buffers.find(Root->Name);
        if (It != UE.Effects.Buffers.end())
          for (const Access &A : It->second)
            if (A.Write)
              Fps.insert(A.Fp.str());
        return Fps;
      };
      UnitEffects FwdEff = collectUnitEffects(
          FwdBlock->stmts()[RI.ForwardUnit].get(), Bufs, nullptr);
      std::multiset<std::string> FwdFps = WriteFps(FwdEff);
      std::multiset<std::string> CloneFps = WriteFps(CloneEff);
      if (FwdFps != CloneFps) {
        auto Join = [](const std::multiset<std::string> &Fps) {
          std::string Out;
          for (const std::string &F : Fps)
            Out += (Out.empty() ? "" : " ; ") + F;
          return Out.empty() ? std::string("<none>") : Out;
        };
        Bad("plan.recompute.coverage",
            "clone write footprints {" + Join(CloneFps) +
                "} do not cover forward unit " +
                std::to_string(RI.ForwardUnit) + "'s {" + Join(FwdFps) +
                "}");
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Sub-unit slice-rotation checks
//===----------------------------------------------------------------------===//

/// Cross-validates the slice-rotation ledger (Program::Rotations, see
/// compiler/rotate.h) against the rewritten IR it claims to describe: the
/// rotated root exists and its leading dimension equals the recorded pool
/// depth with matching per-slice extent (plan.subunit.shape); the pool is
/// strictly smaller than the batch — otherwise rotation saved nothing and
/// the engine serializes for free (plan.subunit.slices); the recorded
/// timeline unit is a batch loop carrying the matching SliceModulus
/// annotation so the executor actually serializes slice-sharing items
/// (plan.subunit.unit); and — recomputed from analyze::effects, not read
/// from the ledger — every access to the root inside that unit has shed
/// its whole-batch term and lands inside the modular pool
/// (plan.subunit.footprint). A forged ItemPrivate claim or an undersized
/// pool fails these checks even when the planner happily packed the
/// shrunken buffer.
void verifySubUnit(const Program &Prog, const BufferTable &Bufs,
                   DiagnosticReport &R) {
  if (Prog.Rotations.empty())
    return;
  std::vector<const Stmt *> Units;
  auto AddUnits = [&Units](const Stmt *Root) {
    if (const auto *B = dyn_cast_if_present<const BlockStmt>(Root))
      for (const StmtPtr &S : B->stmts())
        Units.push_back(S.get());
    else if (Root)
      Units.push_back(Root);
  };
  AddUnits(Prog.Forward.get());
  AddUnits(Prog.Backward.get());
  for (const RotationInfo &RI : Prog.Rotations) {
    auto Bad = [&](const std::string &Code,
                   const std::string &Msg) -> Diagnostic & {
      Diagnostic &D = R.error(Code, Msg);
      D.Buffer = RI.Buffer;
      return D;
    };
    const BufferInfo *Root = Prog.findBuffer(RI.Buffer);
    if (!Root) {
      Bad("plan.subunit.shape", "rotated buffer is not in the buffer table");
      continue;
    }
    if (RI.Slices < 1 || RI.Slices >= Prog.BatchSize)
      Bad("plan.subunit.slices",
          "pool of " + std::to_string(RI.Slices) +
              " slices is not in [1, batch) for batch size " +
              std::to_string(Prog.BatchSize));
    if (Root->Dims.rank() < 1 || Root->Dims[0] != RI.Slices)
      Bad("plan.subunit.shape",
          "leading dimension " +
              std::to_string(Root->Dims.rank() ? Root->Dims[0] : 0) +
              " disagrees with the recorded pool depth " +
              std::to_string(RI.Slices));
    if (RI.SliceElems <= 0 ||
        Root->Dims.numElements() != RI.Slices * RI.SliceElems)
      Bad("plan.subunit.shape",
          "pool extent " + std::to_string(Root->Dims.numElements()) +
              " disagrees with " + std::to_string(RI.Slices) + " slices x " +
              std::to_string(RI.SliceElems) + " elements");
    if (RI.Unit < 0 || RI.Unit >= static_cast<int>(Units.size())) {
      Bad("plan.subunit.unit",
          "recorded unit index " + std::to_string(RI.Unit) +
              " is outside the " + std::to_string(Units.size()) +
              "-unit timeline");
      continue;
    }
    const auto *F = dyn_cast<const ForStmt>(Units[RI.Unit]);
    if (!F) {
      Bad("plan.subunit.unit",
          "recorded unit " + std::to_string(RI.Unit) +
              " is not a batch loop");
      continue;
    }
    if (F->annotations().SliceModulus != RI.Slices) {
      Bad("plan.subunit.unit",
          "unit " + std::to_string(RI.Unit) + " carries SliceModulus " +
              std::to_string(F->annotations().SliceModulus) +
              " but the ledger records a pool of " +
              std::to_string(RI.Slices));
      continue;
    }

    // Recompute the rotated footprints from the IR: after the rewrite no
    // access may scale with the batch variable, and every reachable
    // element must sit inside the modular pool.
    UnitEffects UE = collectUnitEffects(Units[RI.Unit], Bufs, nullptr);
    auto It = UE.Effects.Buffers.find(Root->Name);
    if (It == UE.Effects.Buffers.end()) {
      Bad("plan.subunit.footprint",
          "recorded unit " + std::to_string(RI.Unit) +
              " never references the rotated buffer");
      continue;
    }
    const int64_t PoolElems = RI.Slices * RI.SliceElems;
    for (const Access &A : It->second) {
      if (!A.Fp.Exact && !A.HasBound) {
        Bad("plan.subunit.footprint",
            "access has no exact or bounded footprint to validate against "
            "the pool: " +
                A.Detail);
        continue;
      }
      const Footprint &Fp = A.Fp.Exact ? A.Fp : A.Bound;
      if (auto CIt = Fp.Base.Coeffs.find(F->var());
          CIt != Fp.Base.Coeffs.end() && CIt->second != 0) {
        Bad("plan.subunit.footprint",
            "access still scales with the whole batch (coefficient " +
                std::to_string(CIt->second) + " on '" + F->var() +
                "'): " + A.Detail + " [" + Fp.str() + "]");
        continue;
      }
      int64_t Min = 0, End = 0;
      if (!footprintRange(Fp, UE.Dims, Min, End))
        continue; // unbounded symbols are ir.bounds' problem, not ours
      if (Min < 0 || End > PoolElems)
        Bad("plan.subunit.footprint",
            "access may reach elements [" + std::to_string(Min) + ", " +
                std::to_string(End) + ") of a " +
                std::to_string(PoolElems) + "-element pool: " + A.Detail +
                " [" + Fp.str() + "]");
    }
  }
}

} // namespace

DiagnosticReport analyze::verifyProgram(const Program &Prog,
                                        const VerifyOptions &Opts) {
  DiagnosticReport R;
  verifyBuffers(Prog, R);
  verifyParamBindings(Prog, R);
  verifyFusionGroups(Prog, R);
  // A broken buffer table poisons every downstream footprint; stop early.
  if (R.hasErrors())
    return R;
  BufferTable Bufs(Prog);
  // Slice-rotated roots intentionally alias across batch iterations that
  // share a pool slice; the race detector whitelists them per global unit
  // (race.rotated-slice) and verifySubUnit validates the rotation instead.
  std::map<int, std::set<std::string>> RotatedByUnit;
  for (const RotationInfo &RI : Prog.Rotations)
    RotatedByUnit[RI.Unit].insert(RI.Buffer);
  int NumFwd = 0;
  if (const auto *B = dyn_cast_if_present<const BlockStmt>(Prog.Forward.get()))
    NumFwd = static_cast<int>(B->stmts().size());
  else if (Prog.Forward)
    NumFwd = 1;
  verifyProgramIR(Prog.Forward.get(), Prog.ForwardTasks, /*IsBackward=*/false,
                  Bufs, Opts, RotatedByUnit, /*UnitBase=*/0, R);
  verifyProgramIR(Prog.Backward.get(), Prog.BackwardTasks,
                  /*IsBackward=*/true, Bufs, Opts, RotatedByUnit,
                  /*UnitBase=*/NumFwd, R);
  verifyRecompute(Prog, Bufs, R);
  verifySubUnit(Prog, Bufs, R);
  verifyMemoryPlan(Prog, Bufs, R);
  return R;
}
